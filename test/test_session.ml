(* Session journal, recovery, and kill-and-resume byte-identity.

   The crash-recovery contract under test: a session is a deterministic
   function of (algorithm, config, data, rng, answers), so replaying a
   write-ahead journal through [Session.resume] must reconstruct the
   interrupted run byte-identically — same output tuples, same question
   count, and a journal continuation that equals the uninterrupted one. *)

module Algo = Indq_core.Algo
module Session = Indq_core.Session
module Counter = Indq_obs.Counter
module Dataset = Indq_dataset.Dataset
module Generator = Indq_dataset.Generator
module Rng = Indq_util.Rng

let vec = Indq_linalg.Vec.of_array
module Utility = Indq_user.Utility

let entry =
  Alcotest.testable
    (fun fmt e -> Format.pp_print_string fmt (Session.journal_entry_to_json e))
    ( = )

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

let expect_mismatch ?reason_part ~round f =
  match f () with
  | _ -> Alcotest.fail "expected Session.Error (Journal_mismatch _)"
  | exception Session.Error (Session.Journal_mismatch { round = r; reason }) ->
    Alcotest.(check int) "mismatch round" round r;
    (match reason_part with
    | None -> ()
    | Some part ->
      if not (contains reason part) then
        Alcotest.failf "mismatch reason %S does not mention %S" reason part)

(* --- Journal encoding -------------------------------------------------- *)

let sample_header =
  Session.Started
    {
      algo = "Squeeze-u";
      s = 2;
      q = 6;
      eps = 0.05;
      delta = 0.;
      trials = 10;
      exact_prune = false;
      n = 40;
      d = 2;
    }

let test_journal_round_trip () =
  let entries =
    [
      sample_header;
      Session.Answered { round = 1; options = 2; choice = 1 };
      Session.Answered { round = 2; options = 3; choice = 0 };
    ]
  in
  let text =
    String.concat "\n" (List.map Session.journal_entry_to_json entries)
  in
  Alcotest.(check (list entry))
    "parse inverts print" entries
    (Session.journal_of_string text);
  (* Blank lines (including a trailing newline) are ignored. *)
  Alcotest.(check (list entry))
    "blank lines skipped" entries
    (Session.journal_of_string ("\n" ^ text ^ "\n\n"))

let test_journal_corrupt () =
  let header_json = Session.journal_entry_to_json sample_header in
  (* Strict mode is the historical contract: the first unparseable line
     raises, even when it is the final one.  Line numbers are 1-based and
     count blank lines. *)
  Alcotest.check_raises "unparseable line"
    (Session.Error (Session.Journal_corrupt { line = 3; text = "not json" }))
    (fun () ->
      ignore
        (Session.journal_of_string ~strict:true
           ("\n" ^ header_json ^ "\nnot json")));
  let missing = {|{"type":"answered","round":1}|} in
  Alcotest.check_raises "missing required field"
    (Session.Error (Session.Journal_corrupt { line = 1; text = missing }))
    (fun () -> ignore (Session.journal_of_string ~strict:true missing));
  let unknown = {|{"type":"paused"}|} in
  Alcotest.check_raises "unknown record type"
    (Session.Error (Session.Journal_corrupt { line = 2; text = unknown }))
    (fun () ->
      ignore
        (Session.journal_of_string ~strict:true (header_json ^ "\n" ^ unknown)));
  (* Default mode drops only the final bad line; damage before the last
     record is real corruption either way, because sequential appends can
     only ever tear the tail. *)
  let answered =
    Session.journal_entry_to_json
      (Session.Answered { round = 1; options = 2; choice = 0 })
  in
  Alcotest.(check (list entry))
    "default drops a bad tail"
    [ sample_header ]
    (Session.journal_of_string (header_json ^ "\nnot json"));
  Alcotest.check_raises "default still raises mid-file"
    (Session.Error (Session.Journal_corrupt { line = 2; text = "not json" }))
    (fun () ->
      ignore
        (Session.journal_of_string (header_json ^ "\nnot json\n" ^ answered)))

(* A crash can truncate the final record at any byte boundary.  Chop the
   last line at every offset: the default parse must always recover to
   exactly the complete records (counting each drop in journal.torn_tail),
   and never misread a prefix as a record — the "choice":12 torn to
   "choice":1 trap.  Strict mode must raise for every chop. *)
let test_journal_torn_tail_chops () =
  let entries =
    [
      sample_header;
      Session.Answered { round = 1; options = 2; choice = 1 };
      Session.Answered { round = 2; options = 2; choice = 12 };
    ]
  in
  let lines = List.map Session.journal_entry_to_json entries in
  let intact = String.concat "\n" lines ^ "\n" in
  let last = List.nth lines (List.length lines - 1) in
  let body = String.concat "\n" [ List.nth lines 0; List.nth lines 1 ] ^ "\n" in
  let kept = [ List.nth entries 0; List.nth entries 1 ] in
  Alcotest.(check (list entry))
    "intact journal parses fully" entries
    (Session.journal_of_string intact);
  for cut = 1 to String.length last - 1 do
    let torn = body ^ String.sub last 0 cut in
    let before = Counter.get "journal.torn_tail" in
    Alcotest.(check (list entry))
      (Printf.sprintf "chop at %d recovers to last complete record" cut)
      kept
      (Session.journal_of_string torn);
    Alcotest.(check (float 0.))
      (Printf.sprintf "chop at %d counted" cut)
      (before +. 1.)
      (Counter.get "journal.torn_tail");
    match Session.journal_of_string ~strict:true torn with
    | _ -> Alcotest.failf "strict parse accepted a chop at byte %d" cut
    | exception Session.Error (Session.Journal_corrupt _) -> ()
  done

(* --- Driving sessions -------------------------------------------------- *)

let u = vec [| 0.7; 0.3 |]

let drive session =
  let rec loop () =
    match Session.current session with
    | Session.Asking options ->
      Session.answer session (Utility.best_index u options);
      loop ()
    | Session.Finished result -> result
  in
  loop ()

let make_data seed = Generator.anti_correlated (Rng.create seed) ~n:40 ~d:2

(* Run a journaled session to completion; the caller reconstructs crashes
   from the captured entries plus identically rebuilt data and rng. *)
let run_reference ~seed algo config =
  let entries = ref [] in
  let session =
    Session.start
      ~journal:(fun e -> entries := e :: !entries)
      algo config ~data:(make_data seed)
      ~rng:(Rng.create (seed + 1))
  in
  let result = drive session in
  (result, List.rev !entries)

let split_journal = function
  | h :: answers -> (h, answers)
  | [] -> Alcotest.fail "reference journal is empty"

let test_journal_write_ahead () =
  let config = { (Algo.default_config ~d:2) with Algo.trials = 2 } in
  let before = Counter.get "journal.records" in
  let result, journal = run_reference ~seed:7 Algo.Squeeze_u config in
  let header, answers = split_journal journal in
  Alcotest.(check entry) "header fingerprints the run"
    (Session.Started
       {
         algo = "Squeeze-u";
         s = config.Algo.s;
         q = config.Algo.q;
         eps = config.Algo.eps;
         delta = config.Algo.delta;
         trials = config.Algo.trials;
         exact_prune = config.Algo.exact_prune;
         n = 40;
         d = 2;
       })
    header;
  Alcotest.(check int)
    "one answer record per question" result.Algo.questions_used
    (List.length answers);
  List.iteri
    (fun i e ->
      match e with
      | Session.Answered { round; _ } ->
        Alcotest.(check int) "rounds are sequential" (i + 1) round
      | Session.Started _ -> Alcotest.fail "second header in journal")
    answers;
  Alcotest.(check (float 0.))
    "journal.records counts every record"
    (float_of_int (List.length journal))
    (Counter.get "journal.records" -. before)

(* --- Mismatch detection ------------------------------------------------ *)

let test_resume_mismatches () =
  let config = { (Algo.default_config ~d:2) with Algo.trials = 2 } in
  let seed = 7 in
  let _, journal = run_reference ~seed Algo.Squeeze_u config in
  let header, answers = split_journal journal in
  let resume ?(algo = Algo.Squeeze_u) ?(config = config) entries () =
    ignore
      (Session.resume entries algo config ~data:(make_data seed)
         ~rng:(Rng.create (seed + 1)))
  in
  expect_mismatch ~round:0 ~reason_part:"empty journal" (resume []);
  expect_mismatch ~round:0 ~reason_part:"does not begin with a session_started"
    (resume answers);
  expect_mismatch ~round:0 ~reason_part:"journal is for algorithm Squeeze-u"
    (resume ~algo:Algo.MinD journal);
  expect_mismatch ~round:0 ~reason_part:"trials"
    (resume ~config:{ config with Algo.trials = 9 } journal);
  expect_mismatch ~round:0 ~reason_part:"eps"
    (resume ~config:{ config with Algo.eps = 0.1 } journal);
  (match answers with
  | first :: second :: rest ->
    expect_mismatch ~round:2 ~reason_part:"expected round 1 next"
      (resume (header :: second :: first :: rest))
  | _ -> Alcotest.fail "expected at least two answers");
  let tampered =
    List.map
      (function
        | Session.Answered { round = 1; options; choice } ->
          Session.Answered { round = 1; options = options + 1; choice }
        | e -> e)
      journal
  in
  expect_mismatch ~round:1 ~reason_part:"options" (resume tampered);
  let n = List.length answers in
  expect_mismatch ~round:(n + 1)
    ~reason_part:"continues after the run finished"
    (resume
       (journal
       @ [ Session.Answered { round = n + 1; options = 2; choice = 0 } ]));
  expect_mismatch ~round:1 ~reason_part:"second session_started"
    (resume (header :: header :: answers))

(* --- Kill-and-resume byte-identity ------------------------------------- *)

(* Kill the reference session after round [k] (keeping the header plus the
   first [k] journaled answers), resume from scratch with identically
   reconstructed data and rng, drive to completion, and demand the exact
   uninterrupted result and journal. *)
let check_kill_resume ~seed algo config =
  let reference, journal = run_reference ~seed algo config in
  let header, answers = split_journal journal in
  let ref_csv = Dataset.to_csv reference.Algo.output in
  let total = List.length answers in
  for k = 0 to total do
    let label s = Printf.sprintf "%s k=%d: %s" (Algo.to_string algo) k s in
    let prefix = header :: List.filteri (fun i _ -> i < k) answers in
    let post = ref [] in
    let replayed_before = Counter.get "journal.replayed" in
    let session =
      Session.resume
        ~journal:(fun e -> post := e :: !post)
        prefix algo config ~data:(make_data seed)
        ~rng:(Rng.create (seed + 1))
    in
    Alcotest.(check (float 0.))
      (label "journal.replayed delta")
      (float_of_int k)
      (Counter.get "journal.replayed" -. replayed_before);
    Alcotest.(check int)
      (label "questions replayed")
      k
      (Session.questions_asked session);
    let result = drive session in
    Alcotest.(check string)
      (label "byte-identical output")
      ref_csv
      (Dataset.to_csv result.Algo.output);
    Alcotest.(check int)
      (label "question count")
      reference.Algo.questions_used result.Algo.questions_used;
    (* Replayed answers are not re-emitted, later ones are: the kept prefix
       plus the post-resume records must reproduce the full journal. *)
    Alcotest.(check (list entry))
      (label "journal continuation")
      journal
      (prefix @ List.rev !post)
  done

let tab3_configs =
  let base = { (Algo.default_config ~d:2) with Algo.trials = 2 } in
  [
    (Algo.Squeeze_u, base);
    (* delta > 0 dispatches Squeeze-u to the robust Algorithm 3 path. *)
    (Algo.Squeeze_u, { base with Algo.delta = 0.05 });
    (Algo.Uh_random, base);
    (Algo.MinD, base);
    (Algo.MinR, base);
  ]

let test_kill_resume_every_round () =
  List.iter
    (fun (algo, config) -> check_kill_resume ~seed:7 algo config)
    tab3_configs

(* Property form: any seed, any algorithm, with and without user error —
   resuming after a random round is indistinguishable from never crashing. *)
let qcheck_kill_resume =
  QCheck2.Test.make ~count:8 ~name:"kill-and-resume at a random round"
    QCheck2.Gen.(triple (int_range 1 10_000) (int_range 0 3) (int_range 0 1))
    (fun (seed, algo_idx, with_delta) ->
      let algo = List.nth Algo.all algo_idx in
      let config =
        {
          (Algo.default_config ~d:2) with
          Algo.trials = 2;
          delta = (if with_delta = 1 then 0.05 else 0.);
        }
      in
      let reference, journal = run_reference ~seed algo config in
      let header, answers = split_journal journal in
      let k = seed mod (List.length answers + 1) in
      let prefix = header :: List.filteri (fun i _ -> i < k) answers in
      let post = ref [] in
      let session =
        Session.resume
          ~journal:(fun e -> post := e :: !post)
          prefix algo config ~data:(make_data seed)
          ~rng:(Rng.create (seed + 1))
      in
      let result = drive session in
      Dataset.to_csv result.Algo.output = Dataset.to_csv reference.Algo.output
      && result.Algo.questions_used = reference.Algo.questions_used
      && prefix @ List.rev !post = journal)

let () =
  Alcotest.run "session"
    [
      ( "journal",
        [
          Alcotest.test_case "round trip" `Quick test_journal_round_trip;
          Alcotest.test_case "corrupt records" `Quick test_journal_corrupt;
          Alcotest.test_case "torn tail chops" `Quick
            test_journal_torn_tail_chops;
          Alcotest.test_case "write-ahead records" `Quick
            test_journal_write_ahead;
        ] );
      ( "resume",
        [
          Alcotest.test_case "mismatch detection" `Quick
            test_resume_mismatches;
          Alcotest.test_case "kill-and-resume after every round" `Quick
            test_kill_resume_every_round;
          QCheck_alcotest.to_alcotest qcheck_kill_resume;
        ] );
    ]
