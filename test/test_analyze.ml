(* indq-analyze fixture suite: each rule gets one racy/allocating snippet
   asserting the expected diagnostic and one safe twin asserting silence,
   plus suppression-scoping cases.  Snippets are typechecked in-process
   with compiler-libs (the same Typedtree the analyzer reads from .cmt
   files in production), so the fixtures exercise the real passes, not a
   mock.  The live tree itself is checked by `dune build @analyze`, which
   @runtest depends on. *)

module Analyze = Indq_analyze.Analyze

(* A stdlib-only stand-in for the repo's Indq_exec.Pool: the analyzer
   matches the [Pool.parallel_map] suffix, so a local module of that name
   marks task spawns without needing the full library in the fixture. *)
let pool_shim =
  {| module Pool = struct
       let parallel_map _pool f arr = Array.map f arr
     end |}

let initialized = lazy (Compmisc.init_path ())

let typecheck ~modname src =
  Lazy.force initialized;
  let env = Compmisc.initial_env () in
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf (modname ^ ".ml");
  let parsed = Parse.implementation lexbuf in
  let str, _sig, _names, _shape, _env = Typemod.type_structure env parsed in
  str

let codes ?(modname = "Fixture") src =
  let structure =
    try typecheck ~modname src
    with exn ->
      Location.report_exception Format.str_formatter exn;
      Alcotest.failf "fixture does not typecheck: %s"
        (Format.flush_str_formatter ())
  in
  let findings, _stats =
    Analyze.run
      [ { Analyze.in_modname = modname;
          in_file = modname ^ ".ml";
          in_structure = structure } ]
  in
  List.map (fun (f : Analyze.finding) -> f.code) findings

let check_codes name ~expect ?modname src () =
  Alcotest.(check (list string)) name expect (codes ?modname src)

(* --- ANA001: toplevel mutable reached from a pool task ------------------- *)

let ana001_racy =
  pool_shim
  ^ {| let cache : (int, int) Hashtbl.t = Hashtbl.create 8
       let task x = Hashtbl.replace cache x x; x
       let run pool xs = Pool.parallel_map pool task xs |}

(* Same shape, but every touch of the table sits under [Mutex.protect]:
   classified mutex-guarded, no finding. *)
let ana001_mutex_safe =
  pool_shim
  ^ {| let cache : (int, int) Hashtbl.t = Hashtbl.create 8
       let lock = Mutex.create ()
       let task x =
         Mutex.protect lock (fun () -> Hashtbl.replace cache x x);
         x
       let run pool xs = Pool.parallel_map pool task xs |}

(* Per-domain state behind a DLS key: classified DLS-keyed, no finding. *)
let ana001_dls_safe =
  pool_shim
  ^ {| let cache_key = Domain.DLS.new_key (fun () -> Hashtbl.create 8)
       let task x =
         Hashtbl.replace (Domain.DLS.get cache_key) x x;
         x
       let run pool xs = Pool.parallel_map pool task xs |}

(* A mutable that no task ever reaches is domain-confined: no finding. *)
let ana001_unreached =
  pool_shim
  ^ {| let stats : (string, int) Hashtbl.t = Hashtbl.create 8
       let bump k =
         Hashtbl.replace stats k
           (1 + Option.value ~default:0 (Hashtbl.find_opt stats k))
       let run pool xs = Pool.parallel_map pool (fun x -> x + 1) xs
       let _ = bump |}

(* The audited escape hatch silences the reachable-mutable report. *)
let ana001_suppressed =
  pool_shim
  ^ {| let cache : (int, int) Hashtbl.t = Hashtbl.create 8
       [@@indq.domain_safe
           "fixture: single-writer protocol documented elsewhere"]
       let task x = Hashtbl.replace cache x x; x
       let run pool xs = Pool.parallel_map pool task xs |}

(* Scoping: a justification on one mutable must not leak to its racy
   neighbor — the unannotated table is still reported. *)
let ana001_scoped =
  pool_shim
  ^ {| let safe : (int, int) Hashtbl.t = Hashtbl.create 8
       [@@indq.domain_safe "fixture: read-only after init"]
       let racy : (int, int) Hashtbl.t = Hashtbl.create 8
       let task x =
         Hashtbl.replace safe x x;
         Hashtbl.replace racy x x;
         x
       let run pool xs = Pool.parallel_map pool task xs |}

(* --- ANA002: allocation inside an [@indq.alloc_free] function ------------ *)

let ana002_tuple =
  {| let pair x = (x, x) [@@indq.alloc_free "fixture: claims wrongly"] |}

let ana002_boxed_float =
  {| let half x = Some (x /. 2.)
       [@@indq.alloc_free "fixture: boxes the float and the option"] |}

let ana002_escaping_call =
  {| let helper x = string_of_int x
     let hot x = helper x [@@indq.alloc_free "fixture: calls out"] |}

let ana002_clean_loop =
  {| let sum (a : float array) =
       let acc = ref 0. in
       for i = 0 to Array.length a - 1 do
         acc := !acc +. a.(i)
       done;
       !acc
     [@@indq.alloc_free "fixture: local accumulator, unboxed by the backend"] |}

(* Annotated callee: calls between [@indq.alloc_free] functions are fine. *)
let ana002_annotated_call =
  {| let double x = x * 2 [@@indq.alloc_free "fixture: int arithmetic"]
     let quad x = double (double x)
       [@@indq.alloc_free "fixture: composes annotated kernels"] |}

(* [@indq.alloc_ok] accepts exactly its subtree; allocation outside the
   audited expression is still reported. *)
let ana002_alloc_ok_scoped =
  {| let cold_path x =
       if x < 0 then
         (failwith (string_of_int x)
          [@indq.alloc_ok "fixture: cold failure path"]);
       (x, x)
     [@@indq.alloc_free "fixture: tuple outside the audited subtree"] |}

let ana002_alloc_ok_clean =
  {| let guarded x =
       if x < 0 then
         (failwith (string_of_int x)
          [@indq.alloc_ok "fixture: cold failure path"]);
       x + 1
     [@@indq.alloc_free "fixture: hot path is pure int arithmetic"] |}

(* --- ANA003: attribute payload hygiene ----------------------------------- *)

let ana003_empty =
  {| let f x = x + 1 [@@indq.alloc_free ""] |}

let ana003_missing =
  {| let tbl : (int, int) Hashtbl.t = Hashtbl.create 8
       [@@indq.domain_safe] |}

(* --- Stats --------------------------------------------------------------- *)

let stats_counted () =
  let structure =
    typecheck ~modname:"Stats" (pool_shim ^ {|
      let cache : (int, int) Hashtbl.t = Hashtbl.create 8
        [@@indq.domain_safe "fixture: counted, not reported"]
      let hot x = x + 1 [@@indq.alloc_free "fixture: int arithmetic"]
      let run pool xs = Pool.parallel_map pool hot xs
      let _ = cache |})
  in
  let findings, stats =
    Analyze.run
      [ { Analyze.in_modname = "Stats"; in_file = "Stats.ml";
          in_structure = structure } ]
  in
  Alcotest.(check (list string)) "clean" [] (List.map (fun (f : Analyze.finding) -> f.code) findings);
  Alcotest.(check int) "modules" 1 stats.Analyze.st_modules;
  Alcotest.(check int) "spawners" 1 stats.st_spawners;
  Alcotest.(check bool) "saw the mutable" true (stats.st_mutables >= 1);
  Alcotest.(check bool) "saw the annotation" true (stats.st_annotated >= 1)

let () =
  Alcotest.run "analyze"
    [ ( "ana001",
        [ Alcotest.test_case "racy hashtbl" `Quick
            (check_codes "toplevel mutable from task" ~expect:[ "ANA001" ]
               ana001_racy);
          Alcotest.test_case "mutex-guarded" `Quick
            (check_codes "guarded twin" ~expect:[] ana001_mutex_safe);
          Alcotest.test_case "dls-keyed" `Quick
            (check_codes "dls twin" ~expect:[] ana001_dls_safe);
          Alcotest.test_case "domain-confined" `Quick
            (check_codes "unreached mutable" ~expect:[] ana001_unreached);
          Alcotest.test_case "suppressed" `Quick
            (check_codes "domain_safe hatch" ~expect:[] ana001_suppressed);
          Alcotest.test_case "suppression scoping" `Quick
            (check_codes "neighbor still reported" ~expect:[ "ANA001" ]
               ana001_scoped)
        ] );
      ( "ana002",
        [ Alcotest.test_case "tuple" `Quick
            (check_codes "tuple allocates" ~expect:[ "ANA002" ] ana002_tuple);
          Alcotest.test_case "boxed float" `Quick
            (check_codes "option of float" ~expect:[ "ANA002" ]
               ana002_boxed_float);
          Alcotest.test_case "escaping call" `Quick
            (check_codes "non-annotated callee" ~expect:[ "ANA002" ]
               ana002_escaping_call);
          Alcotest.test_case "clean loop" `Quick
            (check_codes "local accumulator" ~expect:[] ana002_clean_loop);
          Alcotest.test_case "annotated callee" `Quick
            (check_codes "kernel composition" ~expect:[] ana002_annotated_call);
          Alcotest.test_case "alloc_ok scoping" `Quick
            (check_codes "alloc outside audited subtree" ~expect:[ "ANA002" ]
               ana002_alloc_ok_scoped);
          Alcotest.test_case "alloc_ok clean" `Quick
            (check_codes "audited cold path" ~expect:[] ana002_alloc_ok_clean)
        ] );
      ( "ana003",
        [ Alcotest.test_case "empty justification" `Quick
            (check_codes "empty payload" ~expect:[ "ANA003" ] ana003_empty);
          Alcotest.test_case "missing payload" `Quick
            (check_codes "bare marker" ~expect:[ "ANA003" ] ana003_missing)
        ] );
      ( "stats", [ Alcotest.test_case "counters" `Quick stats_counted ] )
    ]
