(* Tests for halfspaces and the simplex-region polytope. *)

module Halfspace = Indq_geom.Halfspace
module Polytope = Indq_geom.Polytope
module Rng = Indq_util.Rng
module Vec = Indq_linalg.Vec

let vec = Vec.of_array

let test_halfspace_membership () =
  let h = Halfspace.ge (vec [| 1.; -1. |]) 0. in
  Alcotest.(check bool) "inside" true (Halfspace.satisfies h (vec [| 0.7; 0.3 |]));
  Alcotest.(check bool) "boundary" true (Halfspace.satisfies h (vec [| 0.5; 0.5 |]));
  Alcotest.(check bool) "outside" false (Halfspace.satisfies h (vec [| 0.3; 0.7 |]))

let test_halfspace_le () =
  let h = Halfspace.le (vec [| 1.; 0. |]) 0.5 in
  Alcotest.(check bool) "inside" true (Halfspace.satisfies h (vec [| 0.4; 0.6 |]));
  Alcotest.(check bool) "outside" false (Halfspace.satisfies h (vec [| 0.6; 0.4 |]))

let test_halfspace_preference () =
  (* Preferring a = (1,0) over b = (0,1) means u_0 >= u_1. *)
  let h = Halfspace.of_preference ~winner:(vec [| 1.; 0. |]) ~loser:(vec [| 0.; 1. |]) () in
  Alcotest.(check bool) "u0 > u1 ok" true (Halfspace.satisfies h (vec [| 0.8; 0.2 |]));
  Alcotest.(check bool) "u0 < u1 not" false (Halfspace.satisfies h (vec [| 0.2; 0.8 |]))

let test_halfspace_preference_delta () =
  (* With delta = 0.5 the constraint weakens to 1.5 u0 >= u1. *)
  let h =
    Halfspace.of_preference ~delta:0.5 ~winner:(vec [| 1.; 0. |]) ~loser:(vec [| 0.; 1. |]) ()
  in
  Alcotest.(check bool) "u = (0.45,0.55) allowed" true
    (Halfspace.satisfies h (vec [| 0.45; 0.55 |]));
  Alcotest.(check bool) "u = (0.2,0.8) excluded" false
    (Halfspace.satisfies h (vec [| 0.2; 0.8 |]))

let test_halfspace_slack () =
  let h = Halfspace.ge (vec [| 2.; 0. |]) 1. in
  Alcotest.(check (float 1e-9)) "slack" 0.2 (Halfspace.slack h (vec [| 0.6; 0.4 |]))

let test_simplex_not_empty () =
  let r = Polytope.simplex 3 in
  Alcotest.(check bool) "non-empty" false (Polytope.is_empty r);
  Alcotest.(check int) "dim" 3 (Polytope.dim r)

let test_simplex_dim_guard () =
  Alcotest.check_raises "bad dim"
    (Invalid_argument "Polytope.simplex: dimension must be >= 1") (fun () ->
      ignore (Polytope.simplex 0))

let test_cut_to_empty () =
  let r = Polytope.simplex 2 in
  (* u0 >= 0.8 and u1 >= 0.8 cannot hold with u0 + u1 = 1. *)
  let r = Polytope.cut r (Halfspace.ge (vec [| 1.; 0. |]) 0.8) in
  Alcotest.(check bool) "still feasible" false (Polytope.is_empty r);
  let r = Polytope.cut r (Halfspace.ge (vec [| 0.; 1. |]) 0.8) in
  Alcotest.(check bool) "now empty" true (Polytope.is_empty r)

let test_maximize_on_simplex () =
  let r = Polytope.simplex 3 in
  match Polytope.maximize r (vec [| 0.2; 0.9; 0.5 |]) with
  | Some (v, p) ->
    Alcotest.(check (float 1e-6)) "max is best coord" 0.9 v;
    Alcotest.(check (float 1e-6)) "vertex" 1. (Vec.get p 1)
  | None -> Alcotest.fail "simplex is non-empty"

let test_maximize_empty () =
  let r =
    Polytope.cut_many (Polytope.simplex 2)
      [ Halfspace.ge (vec [| 1.; 0. |]) 0.9; Halfspace.ge (vec [| 0.; 1. |]) 0.9 ]
  in
  Alcotest.(check bool) "none" true (Polytope.maximize r (vec [| 1.; 0. |]) = None)

let test_coordinate_bounds_simplex () =
  let r = Polytope.simplex 3 in
  let bounds = Polytope.coordinate_bounds r in
  Array.iter
    (fun (lo, hi) ->
      Alcotest.(check (float 1e-6)) "lo" 0. lo;
      Alcotest.(check (float 1e-6)) "hi" 1. hi)
    bounds

let test_coordinate_bounds_after_cut () =
  let r = Polytope.cut (Polytope.simplex 2) (Halfspace.ge (vec [| 1.; -1. |]) 0.) in
  (* Region: u0 >= u1, u0 + u1 = 1 -> u0 in [0.5, 1]. *)
  let bounds = Polytope.coordinate_bounds r in
  let lo0, hi0 = bounds.(0) in
  Alcotest.(check (float 1e-6)) "u0 lo" 0.5 lo0;
  Alcotest.(check (float 1e-6)) "u0 hi" 1. hi0

let test_width () =
  let r = Polytope.simplex 2 in
  Alcotest.(check (float 1e-6)) "full width" 1. (Polytope.width r);
  let r = Polytope.cut r (Halfspace.ge (vec [| 1.; -1. |]) 0.) in
  Alcotest.(check (float 1e-6)) "half width" 0.5 (Polytope.width r)

let test_support_width () =
  let r = Polytope.simplex 2 in
  (* Along (1,-1) the simplex spans from (0,1) to (1,0): extent 2. *)
  Alcotest.(check (float 1e-6)) "support" 2. (Polytope.support_width r (vec [| 1.; -1. |]))

let test_diameter_simplex_2d () =
  let r = Polytope.simplex 2 in
  (* True diameter: |(1,0)-(0,1)| = sqrt 2; direction (1,-1) is probed. *)
  Alcotest.(check (float 1e-6)) "diameter" (sqrt 2.) (Polytope.diameter r)

let test_diameter_decreases_with_cuts () =
  let r0 = Polytope.simplex 3 in
  let r1 = Polytope.cut r0 (Halfspace.ge (vec [| 1.; -1.; 0. |]) 0.) in
  Alcotest.(check bool) "monotone" true
    (Polytope.diameter r1 <= Polytope.diameter r0 +. 1e-9)

let test_center_estimate_inside () =
  let r = Polytope.cut (Polytope.simplex 3) (Halfspace.ge (vec [| 1.; -1.; 0. |]) 0.) in
  let c = Polytope.center_estimate r in
  Alcotest.(check bool) "inside" true (Polytope.contains ~tol:1e-6 r c)

let test_contains () =
  let r = Polytope.simplex 3 in
  Alcotest.(check bool) "uniform in" true
    (Polytope.contains r (vec [| 1. /. 3.; 1. /. 3.; 1. /. 3. |]));
  Alcotest.(check bool) "off-simplex out" false (Polytope.contains r (vec [| 0.5; 0.5; 0.5 |]));
  Alcotest.(check bool) "negative out" false (Polytope.contains r (vec [| 1.5; -0.5; 0. |]))

let test_random_point_inside () =
  let r = Polytope.cut (Polytope.simplex 4) (Halfspace.ge (vec [| 1.; -1.; 0.; 0. |]) 0.) in
  let rng = Rng.create 77 in
  for _ = 1 to 20 do
    let p = Polytope.random_point r rng ~steps:8 in
    Alcotest.(check bool) "sampled inside" true (Polytope.contains ~tol:1e-6 r p)
  done

let test_empty_region_raises () =
  let r =
    Polytope.cut_many (Polytope.simplex 2)
      [ Halfspace.ge (vec [| 1.; 0. |]) 0.9; Halfspace.ge (vec [| 0.; 1. |]) 0.9 ]
  in
  Alcotest.check_raises "width on empty"
    (Invalid_argument "Polytope.coordinate_bounds: empty region") (fun () ->
      ignore (Polytope.width r))

let test_many_consistent_cuts_stress () =
  (* 60 cuts all consistent with one hidden utility: the region must stay
     non-empty, keep containing the utility, and its width must shrink
     monotonically (numerical-robustness stress for the LP path). *)
  let rng = Rng.create 404 in
  for _ = 1 to 5 do
    let d = 3 + Rng.int rng 3 in
    let raw = Vec.init d (fun _ -> 0.05 +. Rng.uniform rng) in
    let total = Vec.sum raw in
    let u = Vec.map (fun x -> x /. total) raw in
    let region = ref (Polytope.simplex d) in
    let last_width = ref (Polytope.width !region) in
    for _ = 1 to 60 do
      let a = Vec.init d (fun _ -> Rng.uniform rng) in
      let b = Vec.init d (fun _ -> Rng.uniform rng) in
      let du = ref 0. in
      Vec.iteri (fun i x -> du := !du +. ((Vec.get a i -. Vec.get b i) *. x)) u;
      let winner, loser = if !du >= 0. then (a, b) else (b, a) in
      region := Polytope.cut !region (Halfspace.of_preference ~winner ~loser ());
      Alcotest.(check bool) "still non-empty" false (Polytope.is_empty !region);
      let w = Polytope.width !region in
      Alcotest.(check bool) "width monotone" true (w <= !last_width +. 1e-7);
      last_width := w
    done;
    Alcotest.(check bool) "u still inside" true (Polytope.contains ~tol:1e-6 !region u)
  done

(* Property: cutting with a preference halfspace keeps exactly the simplex
   points consistent with that preference. *)
let prop_cut_membership =
  QCheck2.Test.make ~count:100 ~name:"cut membership agrees with halfspace"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 2 + Rng.int rng 4 in
      let a = Vec.init d (fun _ -> Rng.uniform rng) in
      let b = Vec.init d (fun _ -> Rng.uniform rng) in
      let h = Halfspace.of_preference ~winner:a ~loser:b () in
      let r = Polytope.cut (Polytope.simplex d) h in
      (* Random simplex point via exponential normalization. *)
      let raw = Vec.init d (fun _ -> Rng.exponential rng) in
      let total = Vec.sum raw in
      let v = Vec.map (fun x -> x /. total) raw in
      Polytope.contains ~tol:1e-7 r v = Halfspace.satisfies ~tol:1e-7 h v)

(* Property: the complete vertex set (d = 2 interval endpoints, d = 3
   clipped polygon) answers linear extremes like the LP does — every
   vertex lies in the region, and the dot-product max over the vertices
   agrees with [Polytope.maximize] within LP tolerance.  This is the
   soundness contract Lemma 2 pruning relies on when it confirms a prune
   without a confirming LP. *)
let prop_complete_vertices_match_lp =
  QCheck2.Test.make ~count:100 ~name:"complete vertices = LP extremes"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 2 + Rng.int rng 2 in
      let cuts = Rng.int rng 5 in
      let r = ref (Polytope.simplex d) in
      for _ = 1 to cuts do
        let a = Vec.init d (fun _ -> Rng.uniform rng) in
        let b = Vec.init d (fun _ -> Rng.uniform rng) in
        let cut = Polytope.cut !r (Halfspace.of_preference ~winner:a ~loser:b ()) in
        if not (Polytope.is_empty cut) then r := cut
      done;
      match Polytope.complete_vertices !r with
      | None -> d > 3 (* only acceptable beyond the covered dimensions *)
      | Some vs ->
        vs <> []
        && List.for_all (Polytope.contains ~tol:1e-6 !r) vs
        && (let ok = ref true in
            for _ = 1 to 5 do
              let dir = Vec.init d (fun _ -> Rng.uniform rng -. 0.5) in
              let vertex_max =
                List.fold_left
                  (fun acc v -> Float.max acc (Vec.dot dir v))
                  neg_infinity vs
              in
              match Polytope.maximize !r dir with
              | None -> ok := false
              | Some (lp_max, _) ->
                if Float.abs (vertex_max -. lp_max) > 1e-6 then ok := false
            done;
            !ok))

(* Property: width never increases under cuts. *)
let prop_width_monotone =
  QCheck2.Test.make ~count:60 ~name:"width monotone under cuts"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 2 + Rng.int rng 3 in
      let r0 = Polytope.simplex d in
      let a = Vec.init d (fun _ -> Rng.uniform rng) in
      let b = Vec.init d (fun _ -> Rng.uniform rng) in
      let r1 = Polytope.cut r0 (Halfspace.of_preference ~winner:a ~loser:b ()) in
      Polytope.is_empty r1 || Polytope.width r1 <= Polytope.width r0 +. 1e-7)

let () =
  Alcotest.run "geometry"
    [
      ( "halfspace",
        [
          Alcotest.test_case "membership" `Quick test_halfspace_membership;
          Alcotest.test_case "le" `Quick test_halfspace_le;
          Alcotest.test_case "preference" `Quick test_halfspace_preference;
          Alcotest.test_case "preference delta" `Quick test_halfspace_preference_delta;
          Alcotest.test_case "slack" `Quick test_halfspace_slack;
        ] );
      ( "polytope",
        [
          Alcotest.test_case "simplex non-empty" `Quick test_simplex_not_empty;
          Alcotest.test_case "dim guard" `Quick test_simplex_dim_guard;
          Alcotest.test_case "cut to empty" `Quick test_cut_to_empty;
          Alcotest.test_case "maximize simplex" `Quick test_maximize_on_simplex;
          Alcotest.test_case "maximize empty" `Quick test_maximize_empty;
          Alcotest.test_case "coordinate bounds" `Quick test_coordinate_bounds_simplex;
          Alcotest.test_case "bounds after cut" `Quick test_coordinate_bounds_after_cut;
          Alcotest.test_case "width" `Quick test_width;
          Alcotest.test_case "support width" `Quick test_support_width;
          Alcotest.test_case "diameter 2d" `Quick test_diameter_simplex_2d;
          Alcotest.test_case "diameter monotone" `Quick test_diameter_decreases_with_cuts;
          Alcotest.test_case "center inside" `Quick test_center_estimate_inside;
          Alcotest.test_case "contains" `Quick test_contains;
          Alcotest.test_case "random point inside" `Quick test_random_point_inside;
          Alcotest.test_case "empty raises" `Quick test_empty_region_raises;
          Alcotest.test_case "60-cut stress" `Quick test_many_consistent_cuts_stress;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_cut_membership;
          QCheck_alcotest.to_alcotest prop_complete_vertices_match_lp;
          QCheck_alcotest.to_alcotest prop_width_monotone;
        ] );
    ]
