(* Tests for tools/benchdiff: the JSON reader, the finding taxonomy, and
   the gate semantics — most importantly that an injected counter
   regression makes [exit_code] nonzero (the CI perf-gate contract) while
   improvements and in-tolerance timing noise do not. *)

module B = Indq_benchdiff.Benchdiff

(* A minimal but shape-complete BENCH report: header + one sweep with a
   1×1 cell grid. *)
let report ?(seed = 2024) ?(lp_solves = 40.) ?(alpha = 0.01) ?(time = 0.5)
    ?(p99 = 64.) () =
  Printf.sprintf
    {|{"seed":%d,"scale":0.05,"utilities":3,"max_n":10000,"sweeps":[
{"experiment":"tab3","sweep":{"title":"t","x_label":"x","x_values":[1],"algorithms":["Squeeze-u"],"cells":[[{"alpha_mean":%g,"alpha_sd":0,"time_mean":%g,"time_total":%g,"output_size_mean":7,"false_negative_runs":0,"metrics_mean":{"lp.solves":%g,"oracle.questions":12},"hists":{"lp.pivots_per_solve":{"unit":"count","count":40,"sum":227,"p50":8,"p90":32,"p99":%g}}}]]}}
]}|}
    seed alpha time (3. *. time) lp_solves p99

let parse_ok s =
  match B.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let diff ?(strict = false) ?(gate_times = false) ?(critical = []) base cur =
  let findings =
    B.compare_reports ~gate_times ~critical (parse_ok base) (parse_ok cur)
  in
  (findings, B.exit_code ~strict findings)

(* --- parser --- *)

let test_parse_round_trip () =
  let v = parse_ok (report ()) in
  Alcotest.(check (list string))
    "header keys" [ "seed"; "scale"; "utilities"; "max_n"; "sweeps" ]
    (B.obj_keys v);
  (match B.member "seed" v with
  | Some (B.Num f) -> Alcotest.(check (float 0.)) "seed" 2024. f
  | _ -> Alcotest.fail "seed missing");
  List.iter
    (fun s ->
      match B.parse s with
      | Ok _ -> Alcotest.failf "accepted garbage: %s" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; {|{"a":}|}; "nope"; {|{"a":1} trailing|} ]

let test_parse_escapes_and_numbers () =
  match B.parse {|{"a\"b":[-1.5e3,true,false,null,"x\nA"]}|} with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok v -> (
    match B.member "a\"b" v with
    | Some (B.Arr [ B.Num n; B.Bool true; B.Bool false; B.Null; B.Str s ]) ->
      Alcotest.(check (float 0.)) "number" (-1500.) n;
      Alcotest.(check string) "escapes" "x\nA" s
    | _ -> Alcotest.fail "wrong structure")

(* --- gate semantics --- *)

let test_identical_reports_clean () =
  let findings, code = diff (report ()) (report ()) in
  Alcotest.(check int) "no findings" 0 (List.length findings);
  Alcotest.(check int) "exit 0" 0 code

let test_counter_regression_gates () =
  (* The acceptance criterion: an injected counter regression (lp.solves
     40 → 52) must exit nonzero. *)
  let findings, code = diff (report ()) (report ~lp_solves:52. ()) in
  Alcotest.(check bool) "a REGRESSION finding" true
    (List.exists (fun f -> f.B.severity = B.Regression) findings);
  Alcotest.(check int) "exit 1" 1 code

let test_counter_improvement_passes () =
  let findings, code = diff (report ()) (report ~lp_solves:31. ()) in
  Alcotest.(check bool) "an improvement finding" true
    (List.exists (fun f -> f.B.severity = B.Improvement) findings);
  Alcotest.(check int) "exit 0" 0 code;
  (* ... unless -strict gates on any difference at all. *)
  let _, strict_code = diff ~strict:true (report ()) (report ~lp_solves:31. ()) in
  Alcotest.(check int) "strict exit 1" 1 strict_code

let test_alpha_mismatch_gates () =
  let _, code = diff (report ()) (report ~alpha:0.02 ()) in
  Alcotest.(check int) "semantic drift is a Mismatch" 1 code

let test_header_mismatch_gates () =
  let _, code = diff (report ()) (report ~seed:2025 ()) in
  Alcotest.(check int) "incomparable configs refuse to pass" 1 code

let test_hist_percentile_regression_gates () =
  let _, code = diff (report ()) (report ~p99:91. ()) in
  Alcotest.(check int) "count-unit p99 drift gates" 1 code

let test_times_noted_not_gated () =
  (* 3x slower is far beyond the 50% tolerance, but wall time only notes
     by default. *)
  let findings, code = diff (report ()) (report ~time:1.5 ()) in
  Alcotest.(check bool) "a Note finding" true
    (List.exists (fun f -> f.B.severity = B.Note) findings);
  Alcotest.(check int) "exit 0" 0 code;
  let _, gated = diff ~gate_times:true (report ()) (report ~time:1.5 ()) in
  Alcotest.(check int) "-gate-times exit 1" 1 gated

let test_missing_times_ignored () =
  (* A -no-times baseline diffs clean against a timed current run: time
     fields are only compared when present on both sides. *)
  let strip_times s =
    (* Cheap but honest: rebuild the report without time fields. *)
    ignore s;
    Printf.sprintf
      {|{"seed":2024,"scale":0.05,"utilities":3,"max_n":10000,"sweeps":[
{"experiment":"tab3","sweep":{"title":"t","x_label":"x","x_values":[1],"algorithms":["Squeeze-u"],"cells":[[{"alpha_mean":0.01,"alpha_sd":0,"output_size_mean":7,"false_negative_runs":0,"metrics_mean":{"lp.solves":40,"oracle.questions":12},"hists":{"lp.pivots_per_solve":{"unit":"count","count":40,"sum":227,"p50":8,"p90":32,"p99":64}}}]]}}
]}|}
  in
  let _, code = diff (strip_times (report ())) (report ()) in
  Alcotest.(check int) "exit 0" 0 code

let test_malformed_cells_gate () =
  (* A flat cells array (instead of array-of-rows) must register as a
     Mismatch, not compare vacuously clean. *)
  let flat =
    {|{"seed":2024,"scale":0.05,"utilities":3,"max_n":10000,"sweeps":[
{"experiment":"tab3","sweep":{"title":"t","x_label":"x","x_values":[1],"algorithms":["Squeeze-u"],"cells":[{"alpha_mean":0.01}]}}
]}|}
  in
  let _, code = diff flat flat in
  Alcotest.(check int) "malformed rows gate" 1 code

let test_truncated_cell_gates () =
  (* A current cell missing a mandatory field (alpha_mean dropped) must
     gate instead of being skipped. *)
  let truncated =
    {|{"seed":2024,"scale":0.05,"utilities":3,"max_n":10000,"sweeps":[
{"experiment":"tab3","sweep":{"title":"t","x_label":"x","x_values":[1],"algorithms":["Squeeze-u"],"cells":[[{"alpha_sd":0,"output_size_mean":7,"false_negative_runs":0,"metrics_mean":{"lp.solves":40,"oracle.questions":12},"hists":{}}]]}}
]}|}
  in
  let findings, code = diff (report ()) truncated in
  Alcotest.(check bool) "missing-field mismatch" true
    (List.exists
       (fun f -> f.B.severity = B.Mismatch && f.B.path = "tab3.cells[0][0].alpha_mean")
       findings);
  Alcotest.(check int) "exit 1" 1 code

let test_critical_counter_absence_gates () =
  (* A baseline that predates a critical counter (lp.iterations only in
     current here) must gate instead of noting — otherwise a stale
     baseline silently un-gates the exact quantities the perf-gate
     protects.  Non-critical one-sided counters stay Notes. *)
  let with_iters =
    {|{"seed":2024,"scale":0.05,"utilities":3,"max_n":10000,"sweeps":[
{"experiment":"tab3","sweep":{"title":"t","x_label":"x","x_values":[1],"algorithms":["Squeeze-u"],"cells":[[{"alpha_mean":0.01,"alpha_sd":0,"output_size_mean":7,"false_negative_runs":0,"metrics_mean":{"lp.iterations":99,"lp.solves":40,"oracle.questions":12},"hists":{"lp.pivots_per_solve":{"unit":"count","count":40,"sum":227,"p50":8,"p90":32,"p99":64}}}]]}}
]}|}
  in
  let findings, code = diff (report ~time:0. ()) with_iters in
  Alcotest.(check bool) "note only, by default" true
    (List.for_all (fun f -> f.B.severity = B.Note) findings);
  Alcotest.(check int) "default exit 0" 0 code;
  let findings, code =
    diff ~critical:[ "lp.iterations" ] (report ~time:0. ()) with_iters
  in
  Alcotest.(check bool) "critical absence is a Mismatch" true
    (List.exists
       (fun f ->
         f.B.severity = B.Mismatch
         && f.B.path = "tab3.cells[0][0].metrics_mean.lp.iterations")
       findings);
  Alcotest.(check int) "critical exit 1" 1 code;
  (* Present on both sides, a critical counter gates like any other:
     exact match clean, increase fails. *)
  let _, code = diff ~critical:[ "lp.iterations" ] with_iters with_iters in
  Alcotest.(check int) "both sides, equal: exit 0" 0 code

let test_real_report_self_diff () =
  (* A report produced by the real serializer diffs clean against
     itself. *)
  let sweep =
    let rng = Indq_util.Rng.create 5 in
    let data = Indq_dataset.Generator.independent rng ~n:60 ~d:2 in
    let config = Indq_core.Algo.default_config ~d:2 in
    Indq_experiments.Experiments.run_sweep ~title:"t" ~x_label:"x"
      ~algorithms:[ Indq_core.Algo.Squeeze_u ]
      ~points:[ (1., data, config) ] ~utilities:2 ~user_delta:0. ~seed:9 ()
  in
  let body =
    Indq_experiments.Report.sweep_to_json ~with_times:false sweep
  in
  let full =
    Printf.sprintf
      {|{"seed":9,"scale":1,"utilities":2,"max_n":60,"sweeps":[{"experiment":"t","sweep":%s}]}|}
      body
  in
  let findings, code = diff full full in
  Alcotest.(check int) "no findings" 0 (List.length findings);
  Alcotest.(check int) "exit 0" 0 code

let () =
  Alcotest.run "benchdiff"
    [
      ( "parser",
        [
          Alcotest.test_case "round trip" `Quick test_parse_round_trip;
          Alcotest.test_case "escapes and numbers" `Quick
            test_parse_escapes_and_numbers;
        ] );
      ( "gate",
        [
          Alcotest.test_case "identical clean" `Quick test_identical_reports_clean;
          Alcotest.test_case "counter regression gates" `Quick
            test_counter_regression_gates;
          Alcotest.test_case "improvement passes" `Quick
            test_counter_improvement_passes;
          Alcotest.test_case "alpha mismatch gates" `Quick
            test_alpha_mismatch_gates;
          Alcotest.test_case "header mismatch gates" `Quick
            test_header_mismatch_gates;
          Alcotest.test_case "hist percentile regression gates" `Quick
            test_hist_percentile_regression_gates;
          Alcotest.test_case "times noted not gated" `Quick
            test_times_noted_not_gated;
          Alcotest.test_case "missing times ignored" `Quick
            test_missing_times_ignored;
          Alcotest.test_case "malformed cells gate" `Quick
            test_malformed_cells_gate;
          Alcotest.test_case "truncated cell gates" `Quick
            test_truncated_cell_gates;
          Alcotest.test_case "critical counter absence gates" `Quick
            test_critical_counter_absence_gates;
          Alcotest.test_case "real report self-diff" `Quick
            test_real_report_self_diff;
        ] );
    ]
