(* Tests for utility vectors and the user oracle, including the paper's
   delta-error selection protocol. *)

module Utility = Indq_user.Utility
module Oracle = Indq_user.Oracle
module Rng = Indq_util.Rng
module Vec = Indq_linalg.Vec

let vec = Vec.of_array

let test_utility_value () =
  Alcotest.(check (float 1e-9)) "dot" 1.4
    (Utility.value (vec [| 1.; 2. |]) (vec [| 0.4; 0.5 |]))

let test_utility_validate () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Utility.validate: components must be finite and >= 0")
    (fun () -> Utility.validate (vec [| 1.; -0.1 |]));
  Alcotest.check_raises "all zero" (Invalid_argument "Utility.validate: all-zero utility")
    (fun () -> Utility.validate (vec [| 0.; 0. |]));
  Utility.validate (vec [| 0.; 1. |])

let test_normalizations () =
  let u = vec [| 2.; 4. |] in
  let m = Utility.normalize_max u in
  Alcotest.(check (float 1e-9)) "max is 1" 1. (Vec.get m 1);
  Alcotest.(check (float 1e-9)) "ratio kept" 0.5 (Vec.get m 0);
  let s = Utility.normalize_sum u in
  Alcotest.(check (float 1e-9)) "sums to 1" 1. (Vec.get s 0 +. Vec.get s 1)

let test_random_utility () =
  let rng = Rng.create 2 in
  for _ = 1 to 50 do
    let u = Utility.random rng ~d:4 in
    Alcotest.(check (float 1e-9)) "sum 1" 1. (Vec.sum u);
    Vec.iter (fun x -> Alcotest.(check bool) "non-negative" true (x >= 0.)) u
  done

let test_best () =
  let u = vec [| 1.; 0. |] in
  let best =
    Utility.best u
      [ vec [| 0.2; 0.9 |]; vec [| 0.8; 0.1 |]; vec [| 0.5; 0.5 |] ]
  in
  Alcotest.(check (float 1e-9)) "argmax" 0.8 (Vec.get best 0);
  Alcotest.(check int) "best index" 1
    (Utility.best_index u [| vec [| 0.2; 0.9 |]; vec [| 0.8; 0.1 |] |])

let test_exact_oracle_picks_argmax () =
  let oracle = Oracle.exact (vec [| 1.; 2. |]) in
  let options = [| vec [| 1.; 0. |]; vec [| 0.; 1. |]; vec [| 0.4; 0.4 |] |] in
  Alcotest.(check int) "argmax" 1 (Oracle.choose oracle options);
  Alcotest.(check int) "questions" 1 (Oracle.questions_asked oracle);
  Alcotest.(check int) "options" 3 (Oracle.options_shown oracle)

let test_counters_reset () =
  let oracle = Oracle.exact (vec [| 1. |]) in
  ignore (Oracle.choose oracle [| vec [| 1. |]; vec [| 0. |] |]);
  Oracle.reset_counters oracle;
  Alcotest.(check int) "reset" 0 (Oracle.questions_asked oracle)

let test_error_oracle_never_picks_distinguishable () =
  (* With delta = 0.1, an option at less than 1/(1+0.1) of the best shown
     must never be chosen. *)
  let rng = Rng.create 11 in
  let u = vec [| 1.; 1. |] in
  let oracle = Oracle.with_error ~delta:0.1 ~rng u in
  let options = [| vec [| 1.; 0. |]; vec [| 0.85; 0. |]; vec [| 0.5; 0. |] |] in
  for _ = 1 to 200 do
    let c = Oracle.choose oracle options in
    Alcotest.(check bool) "never the bad one" true (c <> 2)
  done

let test_error_oracle_sometimes_errs () =
  (* Options within delta of each other: over many trials both must
     appear. *)
  let rng = Rng.create 12 in
  let oracle = Oracle.with_error ~delta:0.1 ~rng (vec [| 1. |]) in
  let options = [| vec [| 1. |]; vec [| 0.95 |] |] in
  let seen = Array.make 2 false in
  for _ = 1 to 200 do
    seen.(Oracle.choose oracle options) <- true
  done;
  Alcotest.(check bool) "both picked" true (seen.(0) && seen.(1))

let test_error_oracle_delta_zero_is_exact () =
  let rng = Rng.create 13 in
  let oracle = Oracle.with_error ~delta:0. ~rng (vec [| 1.; 0. |]) in
  let options = [| vec [| 0.3; 1. |]; vec [| 0.7; 0. |] |] in
  for _ = 1 to 50 do
    Alcotest.(check int) "always argmax" 1 (Oracle.choose oracle options)
  done

let test_external_chooser () =
  let oracle = Oracle.of_chooser (fun options -> Array.length options - 1) in
  Alcotest.(check int) "last" 2
    (Oracle.choose oracle [| vec [| 1. |]; vec [| 2. |]; vec [| 3. |] |]);
  Alcotest.(check bool) "no hidden utility" true (Oracle.true_utility oracle = None);
  let bad = Oracle.of_chooser (fun _ -> 99) in
  Alcotest.check_raises "bad index"
    (Invalid_argument "Oracle.choose: external chooser returned bad index")
    (fun () -> ignore (Oracle.choose bad [| vec [| 1. |] |]))

let test_oracle_guards () =
  let oracle = Oracle.exact (vec [| 1. |]) in
  Alcotest.check_raises "empty options" (Invalid_argument "Oracle.choose: no options")
    (fun () -> ignore (Oracle.choose oracle [||]));
  Alcotest.check_raises "negative delta" (Invalid_argument "Oracle.with_error: negative delta")
    (fun () -> ignore (Oracle.with_error ~delta:(-0.1) ~rng:(Rng.create 0) (vec [| 1. |])))

let test_true_utility_copies () =
  let oracle = Oracle.exact (vec [| 1.; 2. |]) in
  (match Oracle.true_utility oracle with
  | Some u -> Vec.set u 0 99.
  | None -> Alcotest.fail "has utility");
  match Oracle.true_utility oracle with
  | Some u -> Alcotest.(check (float 1e-9)) "unchanged" 1. (Vec.get u 0)
  | None -> Alcotest.fail "has utility"

let test_delta_accessor () =
  Alcotest.(check (float 0.)) "exact" 0. (Oracle.delta (Oracle.exact (vec [| 1. |])));
  Alcotest.(check (float 0.)) "erring" 0.07
    (Oracle.delta (Oracle.with_error ~delta:0.07 ~rng:(Rng.create 0) (vec [| 1. |])))

let test_recording_and_replay () =
  let base = Oracle.exact (vec [| 1.; 0. |]) in
  let recorder, transcript = Oracle.recording base in
  let rounds =
    [| [| vec [| 1.; 0. |]; vec [| 0.; 1. |] |]; [| vec [| 0.2; 0.1 |]; vec [| 0.9; 0.3 |] |] |]
  in
  let choices = Array.map (Oracle.choose recorder) rounds in
  let log = transcript () in
  Alcotest.(check int) "two rounds" 2 (List.length log);
  List.iteri
    (fun i (r : Oracle.round) ->
      Alcotest.(check int) "choice logged" choices.(i) r.Oracle.choice)
    log;
  (* Replay gives the same choices on the same rounds. *)
  let replayer = Oracle.replay log in
  Array.iteri
    (fun i options ->
      Alcotest.(check int) "replayed" choices.(i) (Oracle.choose replayer options))
    rounds;
  Alcotest.check_raises "exhausted" (Invalid_argument "Oracle.replay: transcript exhausted")
    (fun () -> ignore (Oracle.choose replayer rounds.(0)))

let test_replay_mismatch () =
  let replayer = Oracle.replay [ { Oracle.options = [| vec [| 1. |]; vec [| 2. |] |]; choice = 0 } ] in
  Alcotest.check_raises "mismatch" (Invalid_argument "Oracle.replay: option-count mismatch")
    (fun () -> ignore (Oracle.choose replayer [| vec [| 1. |] |]))

let test_replay_reproduces_algorithm_run () =
  (* Record a full Squeeze-u run, then replay the transcript: identical
     output. *)
  let module Algo = Indq_core.Algo in
  let module Dataset = Indq_dataset.Dataset in
  let rng = Rng.create 301 in
  let data = Indq_dataset.Generator.independent rng ~n:80 ~d:3 in
  let u = Utility.random rng ~d:3 in
  let config = Algo.default_config ~d:3 in
  let recorder, transcript = Oracle.recording (Oracle.exact u) in
  let original = Algo.run Algo.Squeeze_u config ~data ~oracle:recorder ~rng:(Rng.create 1) in
  let replayed =
    Algo.run Algo.Squeeze_u config ~data ~oracle:(Oracle.replay (transcript ()))
      ~rng:(Rng.create 1)
  in
  let ids r =
    List.sort compare
      (List.map Indq_dataset.Tuple.id (Dataset.to_list r.Algo.output))
  in
  Alcotest.(check (list int)) "same output" (ids original) (ids replayed)

(* --- Non-linear utilities (paper open question 3) --- *)

module Nonlinear = Indq_user.Nonlinear

let test_nonlinear_linear_case_agrees () =
  let w = vec [| 0.3; 0.7 |] in
  let lin = Nonlinear.Linear w in
  let pow1 = Nonlinear.Concave_power { weights = w; exponent = 1. } in
  let rng = Rng.create 3 in
  for _ = 1 to 50 do
    let x = vec [| Rng.uniform rng; Rng.uniform rng |] in
    Alcotest.(check (float 1e-9)) "linear = power(1)"
      (Nonlinear.value lin x) (Nonlinear.value pow1 x);
    Alcotest.(check (float 1e-9)) "linear = dot" (Utility.value w x)
      (Nonlinear.value lin x)
  done

let test_nonlinear_concavity_diminishing_returns () =
  (* With exponent 0.5 a balanced tuple beats an extreme one of equal sum. *)
  let f = Nonlinear.Concave_power { weights = vec [| 1.; 1. |]; exponent = 0.5 } in
  Alcotest.(check bool) "balanced wins" true
    (Nonlinear.value f (vec [| 0.5; 0.5 |]) > Nonlinear.value f (vec [| 1.; 0. |]))

let test_nonlinear_ces () =
  (* rho = 1 CES is linear. *)
  let w = vec [| 0.4; 0.6 |] in
  let ces = Nonlinear.Ces { weights = w; rho = 1. } in
  Alcotest.(check (float 1e-9)) "ces(1) linear" (Utility.value w (vec [| 0.3; 0.8 |]))
    (Nonlinear.value ces (vec [| 0.3; 0.8 |]));
  (* rho -> small: strongly complementary; zero coordinate kills value. *)
  let comp = Nonlinear.Ces { weights = vec [| 1.; 1. |]; rho = 0.2 } in
  Alcotest.(check bool) "complementary" true
    (Nonlinear.value comp (vec [| 0.5; 0.5 |]) > Nonlinear.value comp (vec [| 1.0; 0.01 |]))

let test_nonlinear_validate () =
  Alcotest.check_raises "bad exponent"
    (Invalid_argument "Nonlinear.validate: exponent must be in (0, 1]") (fun () ->
      Nonlinear.validate
        (Nonlinear.Concave_power { weights = vec [| 1. |]; exponent = 1.5 }));
  Alcotest.check_raises "rho zero"
    (Invalid_argument "Nonlinear.validate: rho must be non-zero and <= 1")
    (fun () -> Nonlinear.validate (Nonlinear.Ces { weights = vec [| 1. |]; rho = 0. }))

let test_nonlinear_oracle_picks_argmax () =
  let user = Nonlinear.Concave_power { weights = vec [| 1.; 1. |]; exponent = 0.5 } in
  let oracle = Nonlinear.oracle user in
  (* Balanced option wins under the concave utility but would lose under
     the linear one. *)
  let options = [| vec [| 1.0; 0.0 |]; vec [| 0.45; 0.45 |] |] in
  Alcotest.(check int) "concave pick" 1 (Oracle.choose oracle options)

let test_nonlinear_oracle_delta_requires_rng () =
  let user = Nonlinear.Linear (vec [| 1. |]) in
  Alcotest.check_raises "missing rng"
    (Invalid_argument "Nonlinear.oracle: delta > 0 requires an rng") (fun () ->
      ignore (Nonlinear.oracle ~delta:0.1 user))

let prop_nonlinear_delta_pick_close =
  QCheck2.Test.make ~count:60 ~name:"nonlinear delta pick is delta-close"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 1 + Rng.int rng 3 in
      let delta = Rng.float rng 0.2 in
      let user = Nonlinear.random_concave rng ~d ~exponent:(0.3 +. Rng.float rng 0.7) in
      let oracle = Nonlinear.oracle ~delta ~rng:(Rng.split rng) user in
      let options =
        Array.init (2 + Rng.int rng 4) (fun _ ->
            Vec.init d (fun _ -> Rng.uniform rng))
      in
      let c = Oracle.choose oracle options in
      let best =
        Array.fold_left (fun acc p -> Float.max acc (Nonlinear.value user p)) 0. options
      in
      (1. +. delta) *. Nonlinear.value user options.(c) >= best -. 1e-12)

(* Property: the erring oracle's pick is always delta-indistinguishable from
   the best shown option. *)
let prop_error_pick_is_delta_close =
  QCheck2.Test.make ~count:100 ~name:"delta-error pick is delta-close to best"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 1 + Rng.int rng 4 in
      let delta = Rng.float rng 0.2 in
      let u = Utility.random rng ~d in
      let oracle = Oracle.with_error ~delta ~rng:(Rng.split rng) u in
      let k = 2 + Rng.int rng 5 in
      let options =
        Array.init k (fun _ -> Vec.init d (fun _ -> Rng.uniform rng))
      in
      let c = Oracle.choose oracle options in
      let best =
        Array.fold_left (fun acc p -> Float.max acc (Utility.value u p)) 0. options
      in
      (1. +. delta) *. Utility.value u options.(c) >= best -. 1e-12)

let () =
  Alcotest.run "user"
    [
      ( "utility",
        [
          Alcotest.test_case "value" `Quick test_utility_value;
          Alcotest.test_case "validate" `Quick test_utility_validate;
          Alcotest.test_case "normalizations" `Quick test_normalizations;
          Alcotest.test_case "random" `Quick test_random_utility;
          Alcotest.test_case "best" `Quick test_best;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "exact picks argmax" `Quick test_exact_oracle_picks_argmax;
          Alcotest.test_case "counters reset" `Quick test_counters_reset;
          Alcotest.test_case "error never distinguishable" `Quick
            test_error_oracle_never_picks_distinguishable;
          Alcotest.test_case "error sometimes errs" `Quick test_error_oracle_sometimes_errs;
          Alcotest.test_case "delta=0 exact" `Quick test_error_oracle_delta_zero_is_exact;
          Alcotest.test_case "external chooser" `Quick test_external_chooser;
          Alcotest.test_case "guards" `Quick test_oracle_guards;
          Alcotest.test_case "true utility copies" `Quick test_true_utility_copies;
          Alcotest.test_case "delta accessor" `Quick test_delta_accessor;
          Alcotest.test_case "recording and replay" `Quick test_recording_and_replay;
          Alcotest.test_case "replay mismatch" `Quick test_replay_mismatch;
          Alcotest.test_case "replay reproduces run" `Quick
            test_replay_reproduces_algorithm_run;
        ] );
      ( "nonlinear",
        [
          Alcotest.test_case "linear case agrees" `Quick test_nonlinear_linear_case_agrees;
          Alcotest.test_case "diminishing returns" `Quick
            test_nonlinear_concavity_diminishing_returns;
          Alcotest.test_case "ces" `Quick test_nonlinear_ces;
          Alcotest.test_case "validate" `Quick test_nonlinear_validate;
          Alcotest.test_case "oracle argmax" `Quick test_nonlinear_oracle_picks_argmax;
          Alcotest.test_case "oracle delta needs rng" `Quick
            test_nonlinear_oracle_delta_requires_rng;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_error_pick_is_delta_close;
          QCheck_alcotest.to_alcotest prop_nonlinear_delta_pick_close;
        ] );
    ]
