(* Equivalence of the incremental geometry engine against the cold path.

   The refactor's contract: warm-started LPs, cached-artifact revalidation
   and the cross-round prune store change only counters and wall time.
   These properties run the same interaction twice — incremental engine on
   and off — and demand identical outputs, question counts and regions
   across random datasets, configurations and display-pool sizes. *)

module Algo = Indq_core.Algo
module Real_points = Indq_core.Real_points
module Pruning = Indq_core.Pruning
module Region = Indq_core.Region
module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple
module Generator = Indq_dataset.Generator
module Polytope = Indq_geom.Polytope
module Halfspace = Indq_geom.Halfspace
module Utility = Indq_user.Utility
module Oracle = Indq_user.Oracle
module Rng = Indq_util.Rng
module Vec = Indq_linalg.Vec

(* Run [f] with the incremental engine forced to [enabled], restoring the
   ambient setting even on exceptions. *)
let with_incremental enabled f =
  let before = Polytope.incremental_enabled () in
  Polytope.set_incremental enabled;
  Fun.protect ~finally:(fun () -> Polytope.set_incremental before) f

let ids data =
  Dataset.tuples data |> Array.to_list
  |> List.map Tuple.id
  |> List.sort compare

let run_once ~seed ~n ~d ~s ~q ~eps ~trials strategy =
  let rng = Rng.create seed in
  let data = Generator.independent rng ~n ~d in
  let u = Utility.random rng ~d in
  let oracle = Oracle.exact u in
  let result =
    Real_points.run ~trials strategy ~data ~s ~q ~eps ~oracle
      ~rng:(Rng.split rng)
  in
  ( ids result.Real_points.output,
    result.Real_points.questions_used,
    List.length
      (Polytope.halfspaces (Region.polytope result.Real_points.region)) )

let prop_incremental_matches_cold =
  QCheck2.Test.make ~count:20
    ~name:"incremental engine: identical runs with caching on and off"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 2 + Rng.int rng 2 in
      let n = 25 + Rng.int rng 40 in
      let s = 2 + Rng.int rng (d - 1) in
      let q = d + Rng.int rng (2 * d) in
      let eps = 0.02 +. Rng.float rng 0.15 in
      let trials = 1 + Rng.int rng 4 in
      List.for_all
        (fun strategy ->
          let go enabled =
            with_incremental enabled (fun () ->
                run_once ~seed ~n ~d ~s ~q ~eps ~trials strategy)
          in
          go true = go false)
        Real_points.[ Random; MinR; MinD ])

(* The same check through the full dispatcher, exercising Squeeze-u's
   box pruning next to the region-based algorithms. *)
let prop_algo_matches_cold =
  QCheck2.Test.make ~count:10
    ~name:"incremental engine: Algo.run outputs unchanged"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 2 + Rng.int rng 2 in
      let data = Generator.independent rng ~n:(30 + Rng.int rng 30) ~d in
      let u = Utility.random rng ~d in
      let config = { (Algo.default_config ~d) with Algo.trials = 2 } in
      List.for_all
        (fun name ->
          let go enabled =
            with_incremental enabled (fun () ->
                let oracle = Oracle.exact u in
                let result =
                  Algo.run name config ~data ~oracle ~rng:(Rng.create (seed + 1))
                in
                (ids result.Algo.output, result.Algo.questions_used))
          in
          go true = go false)
        Algo.all)

(* Geometry-level equivalence: verdicts and canonical artifacts match
   exactly; value-grade metrics match to round-off. *)
let prop_polytope_matches_cold =
  QCheck2.Test.make ~count:50
    ~name:"polytope queries: cached vs cold"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 2 + Rng.int rng 3 in
      let cuts =
        List.init
          (1 + Rng.int rng 4)
          (fun _ ->
            let normal =
              Vec.init d (fun _ -> Rng.float rng 2. -. 1.)
            in
            Halfspace.ge normal (Rng.float rng 0.4 -. 0.2))
      in
      let query enabled =
        with_incremental enabled (fun () ->
            let r = Polytope.cut_many (Polytope.simplex d) cuts in
            (* Query twice so the second round hits the caches. *)
            let probe () =
              if Polytope.is_empty r then None
              else
                Some
                  ( Polytope.coordinate_bounds r,
                    Polytope.center_estimate r,
                    Polytope.width r,
                    Polytope.diameter r )
            in
            let first = probe () in
            let second = probe () in
            (first, second))
      in
      let approx (b1, c1, w1, d1) (b2, c2, w2, d2) =
        let close x y = Float.abs (x -. y) <= 1e-7 in
        Array.for_all2 (fun (l1, h1) (l2, h2) -> close l1 l2 && close h1 h2) b1 b2
        && Vec.approx_equal ~tol:1e-7 c1 c2
        && close w1 w2 && close d1 d2
      in
      let pair_ok a b =
        match (a, b) with
        | None, None -> true
        | Some x, Some y -> approx x y
        | _ -> false
      in
      let warm1, warm2 = query true in
      let cold1, cold2 = query false in
      pair_ok warm1 cold1 && pair_ok warm2 cold2 && pair_ok warm1 warm2)

(* The prune store must never change which candidates survive a round
   sequence — only how many LPs are issued. *)
let prop_store_preserves_prune_decisions =
  QCheck2.Test.make ~count:30
    ~name:"prune store: same survivors with and without"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 2 + Rng.int rng 2 in
      let data = Generator.independent rng ~n:(20 + Rng.int rng 30) ~d in
      let eps = 0.02 +. Rng.float rng 0.2 in
      let u = Utility.random rng ~d in
      (* A shrinking region chain from synthetic preference answers. *)
      let answers =
        List.init (2 + Rng.int rng 3) (fun _ ->
            let a = Vec.init d (fun _ -> Rng.float rng 1.) in
            let b = Vec.init d (fun _ -> Rng.float rng 1.) in
            if Utility.value u a >= Utility.value u b then (a, [ b ])
            else (b, [ a ]))
      in
      let prune_chain store =
        let region = ref (Region.initial ~d) in
        let survivors = ref data in
        List.iter
          (fun (winner, losers) ->
            let updated = Region.observe !region ~winner ~losers in
            if not (Region.is_empty updated) then begin
              region := updated;
              survivors := Pruning.region_prune ?store ~eps !region !survivors
            end)
          answers;
        ids !survivors
      in
      prune_chain (Some (Pruning.Store.create ())) = prune_chain None)

let () =
  Alcotest.run "incremental"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_incremental_matches_cold;
          QCheck_alcotest.to_alcotest prop_algo_matches_cold;
          QCheck_alcotest.to_alcotest prop_polytope_matches_cold;
          QCheck_alcotest.to_alcotest prop_store_preserves_prune_decisions;
        ] );
    ]
