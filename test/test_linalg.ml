(* Tests for the flat-Bigarray vector/matrix kernels.

   The property suite checks the abstract [Vec]/[Mat] operations against a
   plain [float array] reference model coordinate by coordinate with
   [Float.equal] — the kernels document left-to-right traversal, so every
   reduction must compute the {i same} float expression as the historical
   array code, bit for bit, not merely within a tolerance. *)

module Vec = Indq_linalg.Vec
module Mat = Indq_linalg.Mat
module Rng = Indq_util.Rng

let vec = Vec.of_array

let vecf = Alcotest.(array (float 1e-9))

let check_vec msg expected v = Alcotest.check vecf msg expected (Vec.to_array v)

let test_basis () =
  check_vec "basis" [| 0.; 1.; 0. |] (Vec.basis 3 1);
  Alcotest.check_raises "out of range" (Invalid_argument "Vec.basis: index out of range")
    (fun () -> ignore (Vec.basis 3 3))

let test_dot () =
  Alcotest.(check (float 1e-9)) "dot" 32.
    (Vec.dot (vec [| 1.; 2.; 3. |]) (vec [| 4.; 5.; 6. |]));
  Alcotest.check_raises "mismatch" (Invalid_argument "Vec.dot: dimension mismatch")
    (fun () -> ignore (Vec.dot (vec [| 1. |]) (vec [| 1.; 2. |])))

let test_arith () =
  check_vec "add" [| 5.; 7. |] (Vec.add (vec [| 1.; 2. |]) (vec [| 4.; 5. |]));
  check_vec "sub" [| -3.; -3. |] (Vec.sub (vec [| 1.; 2. |]) (vec [| 4.; 5. |]));
  check_vec "scale" [| 2.; 4. |] (Vec.scale 2. (vec [| 1.; 2. |]));
  check_vec "axpy" [| 6.; 9. |] (Vec.axpy 2. (vec [| 1.; 2. |]) (vec [| 4.; 5. |]))

let test_norms () =
  Alcotest.(check (float 1e-9)) "norm2" 5. (Vec.norm2 (vec [| 3.; 4. |]));
  Alcotest.(check (float 1e-9)) "norm_inf" 4. (Vec.norm_inf (vec [| 3.; -4. |]));
  Alcotest.(check (float 1e-9)) "dist2" 5.
    (Vec.dist2 (vec [| 0.; 0. |]) (vec [| 3.; 4. |]));
  check_vec "normalize" [| 0.6; 0.8 |] (Vec.normalize (vec [| 3.; 4. |]));
  Alcotest.check_raises "normalize zero" (Invalid_argument "Vec.normalize: zero vector")
    (fun () -> ignore (Vec.normalize (vec [| 0.; 0. |])))

let test_extrema () =
  Alcotest.(check (float 1e-9)) "sum" 6. (Vec.sum (vec [| 1.; 2.; 3. |]));
  Alcotest.(check (float 1e-9)) "max" 3. (Vec.max_coord (vec [| 1.; 3.; 2. |]));
  Alcotest.(check (float 1e-9)) "min" 1. (Vec.min_coord (vec [| 1.; 3.; 2. |]));
  Alcotest.(check int) "argmax" 1 (Vec.argmax (vec [| 1.; 3.; 2. |]));
  Alcotest.(check int) "argmax first tie" 0 (Vec.argmax (vec [| 3.; 3.; 2. |]))

let test_approx_equal () =
  Alcotest.(check bool) "equal" true
    (Vec.approx_equal (vec [| 1.; 2. |]) (vec [| 1. +. 1e-12; 2. |]));
  Alcotest.(check bool) "different dims" false
    (Vec.approx_equal (vec [| 1. |]) (vec [| 1.; 2. |]));
  Alcotest.(check bool) "different values" false
    (Vec.approx_equal (vec [| 1.; 2. |]) (vec [| 1.; 2.1 |]))

let test_sub_view_aliasing () =
  let v = vec [| 0.; 1.; 2.; 3.; 4. |] in
  let w = Vec.sub_view v ~pos:1 ~len:3 in
  check_vec "view reads through" [| 1.; 2.; 3. |] w;
  Vec.set w 0 9.;
  Alcotest.(check (float 0.)) "view writes through" 9. (Vec.get v 1);
  Vec.scale_ip 2. w;
  check_vec "in-place kernel through view" [| 0.; 18.; 4.; 6.; 4. |] v

let test_mat_basic () =
  let m = Mat.of_rows [| vec [| 1.; 2. |]; vec [| 3.; 4. |] |] in
  Alcotest.(check int) "rows" 2 (Mat.rows m);
  Alcotest.(check int) "cols" 2 (Mat.cols m);
  Alcotest.(check (float 1e-9)) "get" 3. (Mat.get m 1 0);
  check_vec "row" [| 3.; 4. |] (Mat.row m 1);
  check_vec "col" [| 2.; 4. |] (Mat.col m 1);
  check_vec "mul_vec" [| 5.; 11. |] (Mat.mul_vec m (vec [| 1.; 2. |]))

let test_mat_transpose () =
  let m = Mat.of_rows [| vec [| 1.; 2.; 3. |]; vec [| 4.; 5.; 6. |] |] in
  let mt = Mat.transpose m in
  Alcotest.(check int) "rows" 3 (Mat.rows mt);
  check_vec "row of transpose" [| 2.; 5. |] (Mat.row mt 1)

let test_mat_row_ops () =
  let m = Mat.of_rows [| vec [| 1.; 2. |]; vec [| 3.; 4. |] |] in
  Mat.swap_rows m 0 1;
  check_vec "swapped" [| 3.; 4. |] (Mat.row m 0);
  Mat.scale_row m 0 2.;
  check_vec "scaled" [| 6.; 8. |] (Mat.row m 0);
  Mat.add_scaled_row m ~src:0 ~dst:1 1.;
  check_vec "added" [| 7.; 10. |] (Mat.row m 1);
  (* src = dst aliasing: row += c * row must read pre-update values. *)
  Mat.add_scaled_row m ~src:0 ~dst:0 1.;
  check_vec "self-add doubles" [| 12.; 16. |] (Mat.row m 0)

let test_mat_row_view_aliasing () =
  let m = Mat.of_rows [| vec [| 1.; 2. |]; vec [| 3.; 4. |] |] in
  let r1 = Mat.row_view m 1 in
  Vec.axpy_ip 10. (Mat.row_view m 0) r1;
  check_vec "axpy through views" [| 13.; 24. |] (Mat.row m 1);
  Alcotest.(check (float 0.)) "row 0 untouched" 1. (Mat.get m 0 0)

let test_mat_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Mat.of_rows: ragged rows")
    (fun () -> ignore (Mat.of_rows [| vec [| 1. |]; vec [| 1.; 2. |] |]))

(* --- The float-array reference model ----------------------------------- *)

let random_array rng d = Array.init d (fun _ -> Rng.in_range rng (-10.) 10.)

let bit_equal_arrays a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.equal x y) a b

(* Left-to-right reductions, exactly as the kernels document. *)
let model_dot a b =
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

let model_sum a = Array.fold_left ( +. ) 0. a

let prop_vec_kernels_match_model =
  QCheck2.Test.make ~count:200 ~name:"Vec kernels = float-array model (bit-exact)"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 1 + Rng.int rng 8 in
      let a = random_array rng d and b = random_array rng d in
      let c = Rng.in_range rng (-3.) 3. in
      let va = vec a and vb = vec b in
      bit_equal_arrays (Vec.to_array (Vec.add va vb))
        (Array.mapi (fun i x -> x +. b.(i)) a)
      && bit_equal_arrays (Vec.to_array (Vec.sub va vb))
           (Array.mapi (fun i x -> x -. b.(i)) a)
      && bit_equal_arrays (Vec.to_array (Vec.scale c va))
           (Array.map (fun x -> c *. x) a)
      && bit_equal_arrays (Vec.to_array (Vec.axpy c va vb))
           (Array.mapi (fun i x -> (c *. x) +. b.(i)) a)
      && Float.equal (Vec.dot va vb) (model_dot a b)
      && Float.equal (Vec.sum va) (model_sum a)
      && Float.equal (Vec.norm_inf va)
           (Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0. a))

let prop_vec_inplace_matches_pure =
  QCheck2.Test.make ~count:200 ~name:"in-place kernels = allocating kernels"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 1 + Rng.int rng 8 in
      let a = random_array rng d and b = random_array rng d in
      let c = Rng.in_range rng (-3.) 3. in
      let y1 = vec b in
      Vec.axpy_ip c (vec a) y1;
      let y2 = vec b in
      Vec.scale_ip c y2;
      let y3 = vec b in
      Vec.add_ip y3 (vec a);
      Vec.equal y1 (Vec.axpy c (vec a) (vec b))
      && Vec.equal y2 (Vec.scale c (vec b))
      && Vec.equal y3 (Vec.add (vec b) (vec a)))

let prop_vec_views_alias =
  QCheck2.Test.make ~count:100 ~name:"sub_view writes alias the parent"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 2 + Rng.int rng 8 in
      let a = random_array rng d in
      let pos = Rng.int rng (d - 1) in
      let len = 1 + Rng.int rng (d - pos - 1) in
      let c = Rng.in_range rng (-3.) 3. in
      let v = vec a in
      Vec.scale_ip c (Vec.sub_view v ~pos ~len);
      let expected =
        Array.mapi (fun i x -> if i >= pos && i < pos + len then c *. x else x) a
      in
      bit_equal_arrays (Vec.to_array v) expected)

let prop_mat_row_ops_match_model =
  QCheck2.Test.make ~count:100 ~name:"Mat pivots = float-matrix model (bit-exact)"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let r = 1 + Rng.int rng 5 and cdim = 1 + Rng.int rng 5 in
      let model = Array.init r (fun _ -> random_array rng cdim) in
      let m = Mat.of_rows (Array.map vec model) in
      let c = Rng.in_range rng (-3.) 3. in
      let src = Rng.int rng r and dst = Rng.int rng r in
      (* The pivot step: scale one row, fold it into another (possibly
         itself — the aliasing case the tableau relies on). *)
      Mat.scale_row m src c;
      Array.iteri (fun j x -> model.(src).(j) <- c *. x) (Array.copy model.(src));
      Mat.add_scaled_row m ~src ~dst c;
      let frozen = Array.copy model.(src) in
      Array.iteri
        (fun j x -> model.(dst).(j) <- (c *. frozen.(j)) +. x)
        (Array.copy model.(dst));
      let ok = ref true in
      for i = 0 to r - 1 do
        for j = 0 to cdim - 1 do
          if not (Float.equal (Mat.get m i j) model.(i).(j)) then ok := false
        done
      done;
      !ok)

let prop_dot_symmetric =
  QCheck2.Test.make ~count:100 ~name:"dot is symmetric"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 1 + Rng.int rng 6 in
      let a = Vec.init d (fun _ -> Rng.in_range rng (-10.) 10.) in
      let b = Vec.init d (fun _ -> Rng.in_range rng (-10.) 10.) in
      Float.abs (Vec.dot a b -. Vec.dot b a) < 1e-9)

let prop_triangle_inequality =
  QCheck2.Test.make ~count:100 ~name:"triangle inequality"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 1 + Rng.int rng 6 in
      let a = Vec.init d (fun _ -> Rng.in_range rng (-10.) 10.) in
      let b = Vec.init d (fun _ -> Rng.in_range rng (-10.) 10.) in
      Vec.norm2 (Vec.add a b) <= Vec.norm2 a +. Vec.norm2 b +. 1e-9)

let prop_transpose_involution =
  QCheck2.Test.make ~count:50 ~name:"transpose . transpose = id"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let r = 1 + Rng.int rng 4 and c = 1 + Rng.int rng 4 in
      let m =
        Mat.of_rows
          (Array.init r (fun _ -> Vec.init c (fun _ -> Rng.uniform rng)))
      in
      let mtt = Mat.transpose (Mat.transpose m) in
      let same = ref true in
      for i = 0 to r - 1 do
        for j = 0 to c - 1 do
          if Float.abs (Mat.get m i j -. Mat.get mtt i j) > 0. then same := false
        done
      done;
      !same)

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "basis" `Quick test_basis;
          Alcotest.test_case "dot" `Quick test_dot;
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "norms" `Quick test_norms;
          Alcotest.test_case "extrema" `Quick test_extrema;
          Alcotest.test_case "approx equal" `Quick test_approx_equal;
          Alcotest.test_case "sub_view aliasing" `Quick test_sub_view_aliasing;
        ] );
      ( "mat",
        [
          Alcotest.test_case "basic" `Quick test_mat_basic;
          Alcotest.test_case "transpose" `Quick test_mat_transpose;
          Alcotest.test_case "row ops" `Quick test_mat_row_ops;
          Alcotest.test_case "row_view aliasing" `Quick test_mat_row_view_aliasing;
          Alcotest.test_case "ragged" `Quick test_mat_ragged;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_vec_kernels_match_model;
          QCheck_alcotest.to_alcotest prop_vec_inplace_matches_pure;
          QCheck_alcotest.to_alcotest prop_vec_views_alias;
          QCheck_alcotest.to_alcotest prop_mat_row_ops_match_model;
          QCheck_alcotest.to_alcotest prop_dot_symmetric;
          QCheck_alcotest.to_alcotest prop_triangle_inequality;
          QCheck_alcotest.to_alcotest prop_transpose_involution;
        ] );
    ]
