(* indq-lint fixture suite: one known-bad snippet per rule code asserting
   the expected diagnostic, one known-good twin asserting silence, plus
   suppression-hygiene and doc cross-check cases.  The live tree itself is
   linted by `dune build @lint`, which @runtest depends on. *)

module Lint = Indq_lint.Lint

let codes ?(path = "lib/core/fixture.ml") src =
  let report = Lint.lint_source ~path src in
  List.map (fun (f : Lint.finding) -> f.code) report.findings

let check_codes name ~expect ?path src () =
  Alcotest.(check (list string)) name expect (codes ?path src)

(* --- IND001: hash-order consumption ------------------------------------ *)

let ind001_bad =
  {| let leak tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |}

let ind001_good =
  {| let ok tbl =
       Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
       |> List.sort String.compare |}

(* --- IND002: ambient stdlib Random -------------------------------------- *)

let ind002_bad =
  {| let seed () = Random.self_init (); Random.int 10 |}

let ind002_good = {| let draw rng = Rng.int rng 10 |}

(* --- IND003: process clock outside the timer layer ---------------------- *)

let ind003_bad = {| let t0 () = Unix.gettimeofday () |}

let ind003_good = {| let t0 () = Indq_util.Timer.wall () |}

(* --- IND004: polymorphic comparison on floats --------------------------- *)

let ind004_bad = {| let z x = x = 0. |}

let ind004_bad_min = {| let m a b = min (a *. 2.) b |}

let ind004_good = {| let z x = Float.equal x 0.
                     let m a b = Float.min (a *. 2.) b
                     let ints a b = min a (b : int) |}

(* --- IND005: Lp.Live tableau outside the audited wrapper ---------------- *)

let ind005_bad =
  {| let sneaky live cut = Lp.Live.add_cut live cut |}

let ind005_good =
  {| let cold n objective cs = Lp.solve ~n ~objective `Maximize cs |}

(* --- IND006: obs name discipline ---------------------------------------- *)

let ind006_dynamic = {| let c name = Counter.make ("dyn." ^ name) |}

let ind006_literal = {| let c = Counter.make "lp.solves" |}

(* --- IND007 / suppression ----------------------------------------------- *)

let suppressed_ok =
  {| let leak tbl =
       (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
        [@lint.allow ("IND001", "summed through a commutative merge")]) |}

let suppressed_binding =
  {| let leak tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
       [@@lint.allow ("IND001", "fixture: consumed commutatively")] |}

let suppressed_file =
  {| [@@@lint.allow ("IND003", "fixture: this whole file is timing plumbing")]
     let t0 () = Unix.gettimeofday ()
     let t1 () = Sys.time () |}

let missing_justification =
  {| let leak tbl =
       (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] [@lint.allow "IND001"]) |}

let wrong_code_suppression =
  {| let t0 () = (Unix.gettimeofday () [@lint.allow ("IND001", "wrong code")]) |}

(* --- Path scoping -------------------------------------------------------- *)

let clock_in_timer () =
  Alcotest.(check (list string))
    "Timer may read the clock" []
    (codes ~path:"lib/util/timer.ml" {| let wall () = Unix.gettimeofday () |});
  Alcotest.(check (list string))
    "obs may read the clock" []
    (codes ~path:"lib/obs/span.ml" {| let now () = Unix.gettimeofday () |})

let live_in_polytope () =
  Alcotest.(check (list string))
    "polytope wrapper may hold tableaux" []
    (codes ~path:"lib/geometry/polytope.ml" ind005_bad);
  Alcotest.(check (list string))
    "the LP layer implements Live" []
    (codes ~path:"lib/lp/lp.ml" {| let fork t = Live.copy t |})

(* --- IND009: unchecked access outside lib/linalg ------------------------- *)

let ind009_bad =
  {| let peek a i = Bigarray.Array1.unsafe_get a i |}

let ind009_bad_array =
  {| let peek a i = Array.unsafe_get a i |}

let ind009_good =
  {| let peek a i = Bigarray.Array1.get a i |}

let unsafe_in_linalg () =
  Alcotest.(check (list string))
    "linalg kernels may skip bounds checks" []
    (codes ~path:"lib/linalg/vec.ml" ind009_bad)

(* --- IND010: analyzer-attribute hygiene ---------------------------------- *)

let ind010_bare =
  {| let f x = x + 1 [@@indq.alloc_free] |}

let ind010_empty =
  {| let f x = x + 1 [@@indq.alloc_free "  "] |}

let ind010_nonstring =
  {| let tbl : (int, int) Hashtbl.t = Hashtbl.create 8
       [@@indq.domain_safe 42] |}

let ind010_expr_marker =
  {| let g xs = List.iter (fun x -> ignore (x, x) [@indq.alloc_ok]) xs |}

let ind010_good =
  {| let f x = x + 1
       [@@indq.alloc_free "fixture: pure integer arithmetic"]
     let tbl : (int, int) Hashtbl.t = Hashtbl.create 8
       [@@indq.domain_safe "fixture: confined to the main domain"]
     let g x = ignore ((x, x) [@indq.alloc_ok "fixture: cold path"]) |}

(* --- Doc cross-check ----------------------------------------------------- *)

let obs_name name line : Lint.obs_name =
  { obs_name = name; obs_file = "lib/x.ml"; obs_line = line }

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let doc_check () =
  let doc = "counters: `lp.solves` and `lp.pivots` (see `run_result.metrics`)" in
  let doc_tokens = Lint.doc_tokens_of_line ~file:"README.md" ~line:1 doc in
  Alcotest.(check (list string))
    "token extraction"
    [ "lp.solves"; "lp.pivots"; "run_result.metrics" ]
    (List.map (fun (t : Lint.doc_token) -> t.tok) doc_tokens);
  let findings =
    Lint.check_docs ~doc_tokens
      ~obs_names:[ obs_name "lp.solves" 3; obs_name "lp.iterations" 4 ]
  in
  (* lp.iterations is undocumented; lp.pivots is stale (namespace `lp` is
     live in the code).  run_result.metrics has no live namespace: ignored. *)
  Alcotest.(check (list string))
    "doc findings" [ "IND006"; "IND006" ]
    (List.map (fun (f : Lint.finding) -> f.code) findings);
  Alcotest.(check bool)
    "mentions the stale name" true
    (List.exists
       (fun (f : Lint.finding) ->
         f.file = "README.md" && contains ~sub:"lp.pivots" f.message)
       findings);
  let clean =
    Lint.check_docs ~doc_tokens:(Lint.doc_tokens_of_line ~file:"d" ~line:1 "`lp.solves`")
      ~obs_names:[ obs_name "lp.solves" 3 ]
  in
  Alcotest.(check int) "matched set is clean" 0 (List.length clean)

let () =
  Alcotest.run "lint"
    [ ( "rules",
        [ Alcotest.test_case "IND001 bad" `Quick
            (check_codes "hash order" ~expect:[ "IND001" ] ind001_bad);
          Alcotest.test_case "IND001 good" `Quick
            (check_codes "adjacent sort" ~expect:[] ind001_good);
          Alcotest.test_case "IND002 bad" `Quick
            (check_codes "stdlib random" ~expect:[ "IND002"; "IND002" ] ind002_bad);
          Alcotest.test_case "IND002 good" `Quick
            (check_codes "rng" ~expect:[] ind002_good);
          Alcotest.test_case "IND003 bad" `Quick
            (check_codes "clock" ~expect:[ "IND003" ] ind003_bad);
          Alcotest.test_case "IND003 good" `Quick
            (check_codes "timer" ~expect:[] ind003_good);
          Alcotest.test_case "IND004 bad" `Quick
            (check_codes "poly eq" ~expect:[ "IND004" ] ind004_bad);
          Alcotest.test_case "IND004 bad min" `Quick
            (check_codes "poly min" ~expect:[ "IND004" ] ind004_bad_min);
          Alcotest.test_case "IND004 good" `Quick
            (check_codes "float fns" ~expect:[] ind004_good);
          Alcotest.test_case "IND005 bad" `Quick
            (check_codes "stray tableau" ~expect:[ "IND005" ] ind005_bad);
          Alcotest.test_case "IND005 good" `Quick
            (check_codes "cold solve" ~expect:[] ind005_good);
          Alcotest.test_case "IND009 bad" `Quick
            (check_codes "unsafe bigarray" ~expect:[ "IND009" ] ind009_bad);
          Alcotest.test_case "IND009 bad array" `Quick
            (check_codes "unsafe array" ~expect:[ "IND009" ] ind009_bad_array);
          Alcotest.test_case "IND009 good" `Quick
            (check_codes "checked access" ~expect:[] ind009_good);
          Alcotest.test_case "IND006 dynamic name" `Quick
            (check_codes "dynamic obs name" ~expect:[ "IND006" ] ind006_dynamic);
          Alcotest.test_case "IND006 literal name" `Quick
            (check_codes "literal obs name" ~expect:[] ind006_literal);
          Alcotest.test_case "IND010 bare marker" `Quick
            (check_codes "bare alloc_free" ~expect:[ "IND010" ] ind010_bare);
          Alcotest.test_case "IND010 empty justification" `Quick
            (check_codes "empty alloc_free" ~expect:[ "IND010" ] ind010_empty);
          Alcotest.test_case "IND010 non-string payload" `Quick
            (check_codes "non-string domain_safe" ~expect:[ "IND010" ]
               ind010_nonstring);
          Alcotest.test_case "IND010 expression marker" `Quick
            (check_codes "bare alloc_ok" ~expect:[ "IND010" ]
               ind010_expr_marker);
          Alcotest.test_case "IND010 justified markers" `Quick
            (check_codes "justified markers" ~expect:[] ind010_good)
        ] );
      ( "suppression",
        [ Alcotest.test_case "expression allow" `Quick
            (check_codes "allow" ~expect:[] suppressed_ok);
          Alcotest.test_case "binding allow" `Quick
            (check_codes "binding allow" ~expect:[] suppressed_binding);
          Alcotest.test_case "file allow" `Quick
            (check_codes "file allow" ~expect:[] suppressed_file);
          Alcotest.test_case "missing justification" `Quick
            (check_codes "needs why" ~expect:[ "IND007"; "IND001" ]
               missing_justification);
          Alcotest.test_case "wrong code does not suppress" `Quick
            (check_codes "wrong code" ~expect:[ "IND003" ] wrong_code_suppression)
        ] );
      ( "scoping",
        [ Alcotest.test_case "clock allowlist" `Quick clock_in_timer;
          Alcotest.test_case "live allowlist" `Quick live_in_polytope;
          Alcotest.test_case "unsafe allowlist" `Quick unsafe_in_linalg
        ] );
      ( "docs", [ Alcotest.test_case "cross-check" `Quick doc_check ] )
    ]
