(* Tests for dominance predicates and skyline operators, including the
   BNL-vs-SFS equivalence property. *)

module Dominance = Indq_dominance.Dominance
module Skyline = Indq_dominance.Skyline
module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple
module Generator = Indq_dataset.Generator
module Rng = Indq_util.Rng
module Vec = Indq_linalg.Vec

let vec = Vec.of_array

let test_dominates () =
  Alcotest.(check bool) "strict" true (Dominance.dominates (vec [| 1.; 1. |]) (vec [| 0.5; 0.5 |]));
  Alcotest.(check bool) "partial tie" true (Dominance.dominates (vec [| 1.; 0.5 |]) (vec [| 0.5; 0.5 |]));
  Alcotest.(check bool) "equal" false (Dominance.dominates (vec [| 0.5; 0.5 |]) (vec [| 0.5; 0.5 |]));
  Alcotest.(check bool) "incomparable" false (Dominance.dominates (vec [| 1.; 0. |]) (vec [| 0.; 1. |]));
  Alcotest.(check bool) "reverse" false (Dominance.dominates (vec [| 0.5; 0.5 |]) (vec [| 1.; 1. |]))

let test_c_dominates () =
  (* a = (1, 1), b = (0.9, 0.9): a dominates 1.05*b = (0.945, 0.945). *)
  Alcotest.(check bool) "c-dominated" true
    (Dominance.c_dominates ~c:1.05 (vec [| 1.; 1. |]) (vec [| 0.9; 0.9 |]));
  (* b = (0.97, 0.97): 1.05*b = (1.0185, ...) escapes. *)
  Alcotest.(check bool) "escapes" false
    (Dominance.c_dominates ~c:1.05 (vec [| 1.; 1. |]) (vec [| 0.97; 0.97 |]));
  Alcotest.check_raises "c < 1" (Invalid_argument "Dominance.c_dominates: c must be >= 1")
    (fun () -> ignore (Dominance.c_dominates ~c:0.9 (vec [| 1. |]) (vec [| 1. |])))

let test_c_dominates_zero_tuple () =
  Alcotest.(check bool) "anything beats zero" true
    (Dominance.c_dominates ~c:1.05 (vec [| 0.1; 0. |]) (vec [| 0.; 0. |]))

let test_incomparable () =
  Alcotest.(check bool) "incomparable" true
    (Dominance.incomparable (vec [| 1.; 0. |]) (vec [| 0.; 1. |]));
  Alcotest.(check bool) "comparable" false
    (Dominance.incomparable (vec [| 1.; 1. |]) (vec [| 0.; 0. |]))

let ids data = List.map Tuple.id (Dataset.to_list data) |> List.sort compare

let test_skyline_small () =
  let data =
    Dataset.create
      [| [| 1.; 0. |]; [| 0.; 1. |]; [| 0.8; 0.8 |]; [| 0.5; 0.5 |]; [| 0.7; 0.7 |] |]
  in
  (* (0.5,0.5) and (0.7,0.7) are dominated by (0.8,0.8). *)
  Alcotest.(check (list int)) "skyline ids" [ 0; 1; 2 ] (ids (Skyline.skyline data))

let test_skyline_duplicates_kept () =
  let data = Dataset.create [| [| 0.5; 0.5 |]; [| 0.5; 0.5 |] |] in
  Alcotest.(check int) "both duplicates kept" 2 (Dataset.size (Skyline.skyline data))

let test_c_skyline_prunes_more () =
  let data =
    Dataset.create [| [| 1.; 1. |]; [| 0.97; 0.97 |]; [| 0.9; 0.9 |] |]
  in
  (* Plain skyline keeps only (1,1)'s non-dominated set = {(1,1)}; here both
     others are dominated.  The 1.05-skyline keeps (0.97,0.97) because
     1.05*(0.97) > 1. *)
  Alcotest.(check (list int)) "skyline" [ 0 ] (ids (Skyline.skyline data));
  Alcotest.(check (list int)) "1.05-skyline" [ 0; 1 ]
    (ids (Skyline.c_skyline ~c:1.05 data))

let test_prune_eps_keeps_dominated_but_close () =
  (* The indistinguishability query must retain dominated tuples that are
     not (1+eps)-dominated (Section I discussion). *)
  let data = Dataset.create [| [| 1.; 1. |]; [| 0.98; 0.99 |] |] in
  Alcotest.(check int) "dominated tuple survives" 2
    (Dataset.size (Skyline.prune_eps_dominated ~eps:0.05 data))

let test_empty_dataset () =
  let empty = Dataset.create [||] in
  Alcotest.(check int) "skyline of empty" 0 (Dataset.size (Skyline.skyline empty))

let test_is_dominated_by_any () =
  let data = Dataset.create [| [| 1.; 1. |]; [| 0.5; 0.5 |] |] in
  Alcotest.(check bool) "dominated" true
    (Skyline.is_dominated_by_any data (Dataset.get data 1));
  Alcotest.(check bool) "not dominated" false
    (Skyline.is_dominated_by_any data (Dataset.get data 0))

let test_k_skyband () =
  let data =
    Dataset.create
      [| [| 1.; 1. |]; [| 0.9; 0.9 |]; [| 0.8; 0.8 |]; [| 0.95; 0.1 |] |]
  in
  (* Dominance counts: id0 by none, id1 by {0}, id2 by {0,1}, id3 by {0}. *)
  Alcotest.(check (array int)) "counts" [| 0; 1; 2; 1 |]
    (Skyline.dominance_counts data);
  Alcotest.(check (list int)) "1-skyband = skyline" [ 0 ]
    (ids (Skyline.k_skyband ~k:1 data));
  Alcotest.(check (list int)) "2-skyband" [ 0; 1; 3 ]
    (ids (Skyline.k_skyband ~k:2 data));
  Alcotest.(check (list int)) "3-skyband all" [ 0; 1; 2; 3 ]
    (ids (Skyline.k_skyband ~k:3 data));
  Alcotest.check_raises "k guard" (Invalid_argument "Skyline.k_skyband: k must be >= 1")
    (fun () -> ignore (Skyline.k_skyband ~k:0 data))

let random_dataset rng =
  let n = 1 + Rng.int rng 150 in
  let d = 1 + Rng.int rng 4 in
  let kind = Rng.int rng 3 in
  match kind with
  | 0 -> Generator.independent rng ~n ~d
  | 1 -> Generator.correlated rng ~n ~d
  | _ -> Generator.anti_correlated rng ~n ~d

let prop_sfs_equals_bnl =
  QCheck2.Test.make ~count:80 ~name:"SFS c-skyline = BNL c-skyline"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let data = random_dataset rng in
      let c = 1. +. Rng.float rng 0.3 in
      ids (Skyline.c_skyline_sfs ~c data) = ids (Skyline.c_skyline_bnl ~c data))

let prop_skyline_members_undominated =
  QCheck2.Test.make ~count:60 ~name:"skyline members are undominated"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let data = random_dataset rng in
      let sky = Skyline.skyline data in
      Array.for_all
        (fun p -> not (Skyline.is_dominated_by_any data p))
        (Dataset.tuples sky))

let prop_c_skyline_monotone_in_c =
  QCheck2.Test.make ~count:60 ~name:"larger c keeps at least as much"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let data = random_dataset rng in
      let c1 = 1. +. Rng.float rng 0.1 in
      let c2 = c1 +. Rng.float rng 0.2 in
      let s1 = ids (Skyline.c_skyline ~c:c1 data) in
      let s2 = ids (Skyline.c_skyline ~c:c2 data) in
      (* Larger c makes c-domination harder, so the c-skyline grows:
         s1 ⊆ s2. *)
      List.for_all (fun id -> List.mem id s2) s1)

let prop_rtree_equals_bnl =
  QCheck2.Test.make ~count:60 ~name:"R-tree c-skyline = BNL"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let data = random_dataset rng in
      let c = 1. +. Rng.float rng 0.3 in
      ids (Skyline.c_skyline_rtree ~c data) = ids (Skyline.c_skyline_bnl ~c data))

(* --- persisted skyline artifacts --- *)

module Artifact = Indq_dominance.Artifact

let with_temp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "indq-artifact-%d" (Unix.getpid ()))
  in
  let rec cleanup path =
    if Sys.file_exists path then
      if Sys.is_directory path then begin
        Array.iter (fun e -> cleanup (Filename.concat path e)) (Sys.readdir path);
        Sys.rmdir path
      end
      else Sys.remove path
  in
  cleanup dir;
  Fun.protect ~finally:(fun () -> cleanup dir) (fun () -> f dir)

let test_artifact_roundtrip () =
  with_temp_dir @@ fun dir ->
  let rng = Rng.create 11 in
  let data = Generator.anti_correlated rng ~n:400 ~d:3 in
  let eps = 0.05 in
  let direct = Skyline.prune_eps_dominated ~eps data in
  (* Cold: no artifact yet. *)
  Alcotest.(check (option unit)) "cold lookup misses" None
    (Option.map ignore (Artifact.lookup ~dir ~c:(1. +. eps) data));
  let first = Artifact.prune_eps_dominated_cached ~dir ~eps data in
  Alcotest.(check (list int)) "first run = direct" (ids direct) (ids first);
  (* Warm: the lookup must now succeed and reproduce the result exactly. *)
  (match Artifact.lookup ~dir ~c:(1. +. eps) data with
  | None -> Alcotest.fail "expected an artifact hit"
  | Some cached ->
    Alcotest.(check (list int)) "cached = direct" (ids direct) (ids cached));
  let second = Artifact.prune_eps_dominated_cached ~dir ~eps data in
  Alcotest.(check (list int)) "second run = direct" (ids direct) (ids second);
  (* A different eps is a different key, never a false hit. *)
  Alcotest.(check (option unit)) "other eps misses" None
    (Option.map ignore (Artifact.lookup ~dir ~c:1.2 data))

let test_artifact_corrupt_recomputes () =
  with_temp_dir @@ fun dir ->
  let rng = Rng.create 23 in
  let data = Generator.independent rng ~n:300 ~d:3 in
  let eps = 0.05 in
  let direct = Skyline.prune_eps_dominated ~eps data in
  ignore (Artifact.prune_eps_dominated_cached ~dir ~eps data);
  let path =
    Artifact.path ~dir ~fingerprint:(Dataset.fingerprint data) ~c:(1. +. eps)
  in
  Alcotest.(check bool) "artifact written" true (Sys.file_exists path);
  (* Scribble over the artifact: positions out of range, garbage lines.
     Robustness contract: treated as a miss, recomputed, correct. *)
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc "garbage\n999999999\nnot-a-number\n");
  Alcotest.(check (option unit)) "corrupt lookup misses" None
    (Option.map ignore (Artifact.lookup ~dir ~c:(1. +. eps) data));
  let recomputed = Artifact.prune_eps_dominated_cached ~dir ~eps data in
  Alcotest.(check (list int)) "recomputed = direct" (ids direct)
    (ids recomputed)

let prop_store_equals_bnl =
  QCheck2.Test.make ~count:60 ~name:"columnar c-skyline = BNL"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let data = random_dataset rng in
      let c = 1. +. Rng.float rng 0.3 in
      ids (Skyline.c_skyline_store ~c data) = ids (Skyline.c_skyline_bnl ~c data))

let prop_sweep_2d_equals_bnl =
  QCheck2.Test.make ~count:120 ~name:"2D sweep c-skyline = BNL"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 200 in
      (* Include exact duplicates, zeros and boundary values on purpose. *)
      let coarse () = float_of_int (Rng.int rng 8) /. 7. in
      let data =
        Dataset.create (Array.init n (fun _ -> [| coarse (); coarse () |]))
      in
      let c = if Rng.bool rng then 1. else 1. +. Rng.float rng 0.3 in
      ids (Skyline.c_skyline_sweep_2d ~c data) = ids (Skyline.c_skyline_bnl ~c data))

let test_rtree_path_counts_nodes () =
  (* BENCH_003.json showed rtree.nodes_visited = 0: the c_skyline
     dispatcher only takes the R-tree path above 50_000 tuples (see
     skyline.ml), and the -quick bench datasets are all smaller, so the
     counter is reachable-but-idle there.  Exercise the indexed path
     directly and pin that it really does account its node traffic. *)
  let rng = Rng.create 515 in
  let data = random_dataset rng in
  let before = Indq_obs.Counter.get "rtree.nodes_visited" in
  let s = ids (Skyline.c_skyline_rtree ~c:1.05 data) in
  Alcotest.(check bool) "skyline nonempty" true (s <> []);
  Alcotest.(check bool) "rtree.nodes_visited incremented" true
    (Indq_obs.Counter.get "rtree.nodes_visited" > before);
  (* The generic entry point leaves the counter untouched below the
     dispatch threshold — the observed-zero is by design, not a broken
     wire. *)
  let mid = Indq_obs.Counter.get "rtree.nodes_visited" in
  ignore (Skyline.c_skyline ~c:1.05 data);
  Alcotest.(check (float 0.)) "small inputs skip the index" mid
    (Indq_obs.Counter.get "rtree.nodes_visited")

let test_sweep_2d_dimension_guard () =
  let data = Dataset.create [| [| 1.; 2.; 3. |] |] in
  Alcotest.check_raises "3D rejected"
    (Invalid_argument "Skyline.c_skyline_sweep_2d: data must be 2-dimensional")
    (fun () -> ignore (Skyline.c_skyline_sweep_2d ~c:1.05 data))

let prop_dominance_transitive =
  QCheck2.Test.make ~count:100 ~name:"dominance is transitive"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 1 + Rng.int rng 4 in
      let p () = Vec.init d (fun _ -> Rng.uniform rng) in
      let a = p () and b = p () and c = p () in
      if Dominance.dominates a b && Dominance.dominates b c then
        Dominance.dominates a c
      else true)

let () =
  Alcotest.run "dominance"
    [
      ( "predicates",
        [
          Alcotest.test_case "dominates" `Quick test_dominates;
          Alcotest.test_case "c-dominates" `Quick test_c_dominates;
          Alcotest.test_case "zero tuple" `Quick test_c_dominates_zero_tuple;
          Alcotest.test_case "incomparable" `Quick test_incomparable;
        ] );
      ( "skyline",
        [
          Alcotest.test_case "small example" `Quick test_skyline_small;
          Alcotest.test_case "duplicates kept" `Quick test_skyline_duplicates_kept;
          Alcotest.test_case "c-skyline prunes more" `Quick test_c_skyline_prunes_more;
          Alcotest.test_case "keeps dominated-but-close" `Quick
            test_prune_eps_keeps_dominated_but_close;
          Alcotest.test_case "empty dataset" `Quick test_empty_dataset;
          Alcotest.test_case "is dominated by any" `Quick test_is_dominated_by_any;
          Alcotest.test_case "sweep 2d guard" `Quick test_sweep_2d_dimension_guard;
          Alcotest.test_case "rtree path counts nodes" `Quick
            test_rtree_path_counts_nodes;
          Alcotest.test_case "k-skyband" `Quick test_k_skyband;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "roundtrip" `Quick test_artifact_roundtrip;
          Alcotest.test_case "corrupt recomputes" `Quick
            test_artifact_corrupt_recomputes;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_sfs_equals_bnl;
          QCheck_alcotest.to_alcotest prop_sweep_2d_equals_bnl;
          QCheck_alcotest.to_alcotest prop_rtree_equals_bnl;
          QCheck_alcotest.to_alcotest prop_store_equals_bnl;
          QCheck_alcotest.to_alcotest prop_skyline_members_undominated;
          QCheck_alcotest.to_alcotest prop_c_skyline_monotone_in_c;
          QCheck_alcotest.to_alcotest prop_dominance_transitive;
        ] );
    ]
