(* The session server: wire codec totality, typed error surface, LRU
   eviction transparency, deadline/idle degradation, and the
   kill-and-restart drill against the real [indq serve] binary — plain,
   with the torn-write plan armed, and with the sync-failure plan armed.
   Byte-identity of the final [done] lines against an uninterrupted
   in-process reference is the acceptance bar throughout. *)

module Algo = Indq_core.Algo
module Counter = Indq_obs.Counter
module Wire = Indq_server.Wire
module Journal_store = Indq_server.Journal_store
module Engine = Indq_server.Engine
module Server = Indq_server.Server
module Sclient = Indq_server.Client

let temp_dir prefix =
  let base = Filename.temp_file prefix "" in
  Sys.remove base;
  Unix.mkdir base 0o700;
  base

let mk_hello ?(algo = Algo.Squeeze_u) ?(data = "independent") ?(n = 60)
    ?(d = 2) ?(seed = 11) ?(s = 0) ?(q = 0) ?(eps = 0.) ?(delta = 0.) id =
  { Wire.id; algo; data; n; d; seed; s; q; eps; delta }

let mk_engine ?(fsync = Journal_store.Never) ?(max_hydrated = 1024)
    ?(idle_timeout = 0.) ?(deadline = 0.) ?(allow_shutdown = false) ?clock dir
    =
  let base = Engine.default_config ~dir in
  Engine.create
    {
      base with
      Engine.fsync;
      max_hydrated;
      idle_timeout;
      deadline;
      allow_shutdown;
      clock = (match clock with Some c -> c | None -> base.Engine.clock);
    }

let reply = function
  | Engine.Reply r -> r
  | Engine.Disconnect -> Alcotest.fail "unexpected Disconnect outcome"
  | Engine.Stop _ -> Alcotest.fail "unexpected Stop outcome"

let check_error what expected outcome =
  match reply outcome with
  | Wire.R_error { code; _ } ->
    Alcotest.(check string) what
      (Wire.code_string expected)
      (Wire.code_string code)
  | r ->
    Alcotest.fail
      (Printf.sprintf "%s: expected %s error, got %s" what
         (Wire.code_string expected)
         (Wire.response_to_line r))

(* The one deterministic answer policy shared by every run in this file:
   a pure function of (session index, round), so an interrupted run and
   its uninterrupted reference make identical choices at every round. *)
let choice_for i round options = (round + (3 * i)) mod Array.length options

(* Drive one session through a bare engine to completion; the final
   [done] line's exact bytes are the reference artifact. *)
let engine_finish engine i first =
  let rec loop = function
    | Wire.R_done _ as r -> Wire.response_to_line r
    | Wire.R_ask { id; round; options } ->
      loop
        (reply
           (Engine.handle engine
              (Wire.Answer { id; round; choice = choice_for i round options })))
    | r -> Alcotest.fail ("engine session: " ^ Wire.response_to_line r)
  in
  loop first

let reference_lines hellos =
  let dir = temp_dir "indq-serve-ref" in
  let engine = mk_engine dir in
  let lines =
    List.mapi
      (fun i h -> engine_finish engine i (reply (Engine.handle engine (Wire.Hello h))))
      hellos
  in
  Engine.shutdown engine;
  lines

(* --- Wire codec --------------------------------------------------------- *)

let test_wire_roundtrip () =
  let requests =
    [
      Wire.Hello (mk_hello ~s:3 ~q:9 ~eps:0.1 ~delta:0.05 "alpha");
      Wire.Resume { id = "a-b.c_9" };
      Wire.Ask { id = "x" };
      Wire.Answer { id = "x"; round = 4; choice = 2 };
      Wire.Bye { id = "x" };
      Wire.Stats;
      Wire.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      let line = Wire.request_to_line req in
      match Wire.parse_request line with
      | Ok req' ->
        Alcotest.(check string) "request round-trip" line (Wire.request_to_line req')
      | Error (_, msg) -> Alcotest.fail ("request did not re-parse: " ^ msg))
    requests;
  let responses =
    [
      Wire.R_ask
        { id = "x"; round = 2; options = [| [| 0.25; 1. |]; [| 0.1; 0.5 |] |] };
      Wire.R_done
        { id = "x"; questions = 6; output = [ (3, [| 0.5; 0.125 |]); (9, [| 1.; 0. |]) ] };
      Wire.R_ok { id = Some "x" };
      Wire.R_ok { id = None };
      Wire.R_stats
        {
          counters = [ ("serve.requests", 12.) ];
          round_latency = { Wire.p_count = 3; p50 = 0.001; p90 = 0.002; p99 = 0.01 };
        };
      Wire.R_error { id = None; code = Wire.Torn_write; message = "torn" };
    ]
  in
  List.iter
    (fun resp ->
      let line = Wire.response_to_line resp in
      match Wire.parse_response line with
      | Ok resp' ->
        Alcotest.(check string) "response round-trip" line
          (Wire.response_to_line resp')
      | Error msg -> Alcotest.fail ("response did not re-parse: " ^ msg))
    responses

let test_wire_parse_errors () =
  let code line =
    match Wire.parse_request line with
    | Ok _ -> "ok"
    | Error (c, _) -> Wire.code_string c
  in
  Alcotest.(check string) "not json" "bad_json" (code "]junk[");
  Alcotest.(check string) "not an object" "bad_json" (code "[1,2]");
  Alcotest.(check string) "trailing bytes" "bad_json" (code "{\"op\":\"stats\"} x");
  Alcotest.(check string) "unknown op" "unknown_op" (code "{\"op\":\"zap\"}");
  Alcotest.(check string) "missing op" "bad_field" (code "{}");
  Alcotest.(check string) "missing id" "bad_field" (code "{\"op\":\"ask\"}");
  Alcotest.(check string) "path-escaping id" "bad_field"
    (code "{\"op\":\"ask\",\"id\":\"../evil\"}");
  Alcotest.(check string) "missing choice" "bad_field"
    (code "{\"op\":\"answer\",\"id\":\"a\",\"round\":1}");
  Alcotest.(check string) "ill-typed round" "bad_field"
    (code "{\"op\":\"answer\",\"id\":\"a\",\"round\":\"one\",\"choice\":0}");
  (* Abusive nesting must come back as a typed parse error, not a stack
     overflow. *)
  let deep = String.concat "" (List.init 80 (fun _ -> "[")) in
  (match Wire.parse_json deep with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "deep nesting accepted");
  Alcotest.(check bool) "valid id" true (Wire.valid_id "ok-1._X");
  Alcotest.(check bool) "empty id" false (Wire.valid_id "");
  Alcotest.(check bool) "slash id" false (Wire.valid_id "a/b");
  Alcotest.(check bool) "oversized id" false (Wire.valid_id (String.make 65 'a'))

let test_fsync_policy_parse () =
  (match Journal_store.fsync_policy_of_string "batch:4" with
  | Ok (Journal_store.Batch 4) -> ()
  | _ -> Alcotest.fail "batch:4 did not parse");
  (match Journal_store.fsync_policy_of_string "batch:0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "batch:0 accepted");
  (match Journal_store.fsync_policy_of_string "sometimes" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown policy accepted");
  Alcotest.(check string) "round trip" "batch:4"
    (Journal_store.fsync_policy_to_string (Journal_store.Batch 4))

(* --- Typed wire errors out of the engine -------------------------------- *)

let test_engine_protocol_errors () =
  let dir = temp_dir "indq-serve-proto" in
  let engine = mk_engine dir in
  check_error "bad json line" Wire.Bad_json (Engine.handle_line engine "@@@");
  check_error "unknown op line" Wire.Unknown_op
    (Engine.handle_line engine "{\"op\":\"frobnicate\"}");
  check_error "unknown session" Wire.Unknown_session
    (Engine.handle engine (Wire.Ask { id = "ghost" }));
  check_error "resume of unknown session" Wire.Unknown_session
    (Engine.handle engine (Wire.Resume { id = "ghost" }));
  check_error "bye of unknown session" Wire.Unknown_session
    (Engine.handle engine (Wire.Bye { id = "ghost" }));
  check_error "shutdown forbidden" Wire.Forbidden (Engine.handle engine Wire.Shutdown);
  check_error "oversized dataset" Wire.Bad_field
    (Engine.handle engine (Wire.Hello (mk_hello ~n:10_000_000 "big")));
  check_error "unknown generator" Wire.Bad_field
    (Engine.handle engine (Wire.Hello (mk_hello ~data:"/etc/passwd" "file")));
  (match reply (Engine.handle engine (Wire.Hello (mk_hello "a")))
   with
  | Wire.R_ask { round = 1; _ } -> ()
  | r -> Alcotest.fail ("hello: " ^ Wire.response_to_line r));
  check_error "duplicate hello" Wire.Session_exists
    (Engine.handle engine (Wire.Hello (mk_hello "a")));
  check_error "stale round" Wire.Round_mismatch
    (Engine.handle engine (Wire.Answer { id = "a"; round = 7; choice = 0 }));
  Engine.shutdown engine

(* All four [Session.Error] cases must surface as their wire codes. *)
let test_session_error_mapping () =
  let dir = temp_dir "indq-serve-sess" in
  let engine = mk_engine ~fsync:Journal_store.Always dir in
  (* Choice_out_of_range: an index past the pending options. *)
  (match reply (Engine.handle engine (Wire.Hello (mk_hello "a"))) with
  | Wire.R_ask _ -> ()
  | r -> Alcotest.fail ("hello: " ^ Wire.response_to_line r));
  check_error "choice out of range" Wire.Choice_out_of_range
    (Engine.handle engine (Wire.Answer { id = "a"; round = 1; choice = 99 }));
  (* Already_finished: answering after the run returned. *)
  let final =
    engine_finish engine 0 (reply (Engine.handle engine (Wire.Ask { id = "a" })))
  in
  Alcotest.(check bool) "finished" true
    (String.length final > 0);
  check_error "answer after done" Wire.Already_finished
    (Engine.handle engine (Wire.Answer { id = "a"; round = 99; choice = 0 }));
  (* Journal_mismatch: a record after the run finished contradicts the
     replay.  Tamper the finished journal on disk, then force a
     rehydration. *)
  let _ = reply (Engine.handle engine (Wire.Bye { id = "a" })) in
  let file = Journal_store.path ~dir "a" in
  let oc = open_out_gen [ Open_append ] 0o644 file in
  output_string oc "{\"type\":\"answered\",\"round\":99,\"options\":2,\"choice\":0}\n";
  close_out oc;
  check_error "record past the end" Wire.Journal_mismatch
    (Engine.handle engine (Wire.Ask { id = "a" }));
  (* Journal_corrupt: an unparseable record in the middle of the file.
     (A bad *final* line is torn-tail recovery's business; mid-file rot
     must be refused loudly.) *)
  let corrupt = Journal_store.path ~dir "rotten" in
  let oc = open_out corrupt in
  output_string oc
    (Wire.request_to_line (Wire.Hello (mk_hello "rotten"))
    ^ "\n{\"type\":\"no_such_record\"}\n{\"type\":\"no_such_record\"}\n");
  close_out oc;
  check_error "garbage journal line" Wire.Journal_corrupt
    (Engine.handle engine (Wire.Resume { id = "rotten" }));
  (* A corrupt header is also a journal_corrupt, not a crash. *)
  let headerless = Journal_store.path ~dir "headerless" in
  let oc = open_out headerless in
  output_string oc "{\"op\":\"stats\"}\n";
  close_out oc;
  check_error "non-hello header" Wire.Journal_corrupt
    (Engine.handle engine (Wire.Ask { id = "headerless" }));
  Engine.shutdown engine

(* --- Degradation: deadlines and idle timeouts --------------------------- *)

let test_deadline_degrades () =
  let dir = temp_dir "indq-serve-deadline" in
  (* Every clock() call advances a full second against a 0.5 s deadline:
     the first answered round must blow the budget. *)
  let t = ref 0. in
  let clock () =
    t := !t +. 1.;
    !t
  in
  let engine = mk_engine ~deadline:0.5 ~clock dir in
  (match reply (Engine.handle engine (Wire.Hello (mk_hello "slow"))) with
  | Wire.R_ask { round = 1; _ } -> ()
  | r -> Alcotest.fail ("hello: " ^ Wire.response_to_line r));
  check_error "deadline exceeded" Wire.Deadline_exceeded
    (Engine.handle engine (Wire.Answer { id = "slow"; round = 1; choice = 0 }));
  (* Degradation, not loss: the answer was applied, so the session moved
     to round 2 and keeps serving. *)
  (match reply (Engine.handle engine (Wire.Ask { id = "slow" })) with
  | Wire.R_ask { round = 2; _ } | Wire.R_done _ -> ()
  | r -> Alcotest.fail ("post-deadline ask: " ^ Wire.response_to_line r));
  Engine.shutdown engine

let test_idle_eviction () =
  let dir = temp_dir "indq-serve-idle" in
  let now = ref 0. in
  let engine = mk_engine ~idle_timeout:10. ~clock:(fun () -> !now) dir in
  let before = Counter.snapshot () in
  let ask1 id =
    match reply (Engine.handle engine (Wire.Hello (mk_hello id))) with
    | Wire.R_ask { round = 1; options; _ } -> options
    | r -> Alcotest.fail ("hello: " ^ Wire.response_to_line r)
  in
  let options_a = ask1 "a" in
  let _ = ask1 "b" in
  Alcotest.(check int) "both hydrated" 2 (Engine.hydrated engine);
  now := 5.;
  Engine.sweep engine;
  Alcotest.(check int) "nothing idle yet" 2 (Engine.hydrated engine);
  now := 100.;
  Engine.sweep engine;
  Alcotest.(check int) "both idle-evicted" 0 (Engine.hydrated engine);
  let delta = Counter.since before in
  let v name = match List.assoc_opt name delta with Some x -> x | None -> 0. in
  Alcotest.(check (float 0.)) "evictions counted" 2. (v "serve.evictions");
  (* Rehydration is transparent: the same pending round comes back. *)
  (match reply (Engine.handle engine (Wire.Ask { id = "a" })) with
  | Wire.R_ask { round = 1; options; _ } ->
    Alcotest.(check bool) "same options after rehydration" true
      (options = options_a)
  | r -> Alcotest.fail ("rehydrated ask: " ^ Wire.response_to_line r));
  let delta = Counter.since before in
  let v name = match List.assoc_opt name delta with Some x -> x | None -> 0. in
  Alcotest.(check (float 0.)) "hydration counted" 1. (v "serve.hydrations");
  Engine.shutdown engine

(* --- LRU eviction transparency ------------------------------------------ *)

let test_eviction_transparency () =
  let hellos =
    List.init 6 (fun i ->
        mk_hello ~n:80 ~seed:(100 + (7 * i)) (Printf.sprintf "lru-%d" i))
  in
  let reference = reference_lines hellos in
  let dir = temp_dir "indq-serve-lru" in
  let engine = mk_engine ~max_hydrated:2 dir in
  let before = Counter.snapshot () in
  let finals = Array.make (List.length hellos) "" in
  List.iteri
    (fun i h ->
      match reply (Engine.handle engine (Wire.Hello h)) with
      | Wire.R_done _ as r -> finals.(i) <- Wire.response_to_line r
      | Wire.R_ask _ -> ()
      | r -> Alcotest.fail ("hello: " ^ Wire.response_to_line r))
    hellos;
  Alcotest.(check int) "capacity respected" 2 (Engine.hydrated engine);
  (* One answer per session per pass: every pass churns all six sessions
     through the two available slots. *)
  let progress = ref true in
  while !progress do
    progress := false;
    List.iteri
      (fun i h ->
        if finals.(i) = "" then begin
          progress := true;
          match reply (Engine.handle engine (Wire.Ask { id = h.Wire.id })) with
          | Wire.R_done _ as r -> finals.(i) <- Wire.response_to_line r
          | Wire.R_ask { id; round; options } -> (
            match
              reply
                (Engine.handle engine
                   (Wire.Answer
                      { id; round; choice = choice_for i round options }))
            with
            | Wire.R_done _ as r -> finals.(i) <- Wire.response_to_line r
            | Wire.R_ask _ -> ()
            | r -> Alcotest.fail ("answer: " ^ Wire.response_to_line r))
          | r -> Alcotest.fail ("ask: " ^ Wire.response_to_line r)
        end)
      hellos
  done;
  Engine.shutdown engine;
  let delta = Counter.since before in
  let v name = match List.assoc_opt name delta with Some x -> x | None -> 0. in
  Alcotest.(check bool) "evictions happened" true (v "serve.evictions" > 0.);
  Alcotest.(check bool) "rehydrations happened" true (v "serve.hydrations" > 0.);
  List.iteri
    (fun i expected ->
      Alcotest.(check string)
        (Printf.sprintf "final line of lru-%d byte-identical" i)
        expected finals.(i))
    reference

(* --- The kill-and-restart drill against the real binary ------------------ *)

(* The test binary lives in _build/default/test; the server binary it
   drills is its sibling at _build/default/bin, wherever dune set the
   working directory. *)
let indq_exe =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "indq.exe")

let spawn_server ?(faults = []) ~sock ~dir () =
  let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
  let args =
    [ "indq"; "serve"; "--socket"; sock; "--dir"; dir; "--fsync"; "batch:4" ]
    @ List.concat_map (fun f -> [ "--fault"; f ]) faults
  in
  let pid = Unix.create_process indq_exe (Array.of_list args) null null null in
  Unix.close null;
  pid

let kill_server pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

(* Send one hello, absorbing a torn header (the typed [journal_torn_write]
   error tells the client the hello simply did not happen). *)
let rec client_hello c h =
  match Sclient.rpc c (Wire.Hello h) with
  | Wire.R_ask _ | Wire.R_done _ -> ()
  | Wire.R_error { code = Wire.Torn_write; _ } -> client_hello c h
  | r -> Alcotest.fail ("drill hello: " ^ Wire.response_to_line r)

(* Advance session [i] by at most [budget] answered rounds, recovering
   from torn-write errors by re-asking (which rehydrates and rewrites).
   Returns the final encoded [done] line once the run finishes. *)
let client_advance c i id ~budget =
  let answered = ref 0 in
  let attempts = ref 0 in
  let rec loop () =
    incr attempts;
    if !attempts > 500 then Alcotest.fail ("drill: no progress on " ^ id);
    match Sclient.rpc c (Wire.Ask { id }) with
    | Wire.R_done _ as r -> Some (Wire.response_to_line r)
    | Wire.R_ask { id; round; options } ->
      if !answered >= budget then None
      else (
        (match
           Sclient.rpc c
             (Wire.Answer { id; round; choice = choice_for i round options })
         with
        | Wire.R_ask _ | Wire.R_done _ -> incr answered
        | Wire.R_error { code = Wire.Torn_write; _ } -> ()
        | r -> Alcotest.fail ("drill answer: " ^ Wire.response_to_line r));
        loop ())
    | Wire.R_error { code = Wire.Torn_write; _ } -> loop ()
    | r -> Alcotest.fail ("drill ask: " ^ Wire.response_to_line r)
  in
  loop ()

let run_drill ~faults ~label =
  let sessions = 50 in
  let hellos =
    List.init sessions (fun i ->
        mk_hello ~n:60 ~seed:(900 + i) (Printf.sprintf "drill-%02d" i))
  in
  let reference = reference_lines hellos in
  let root = temp_dir "indq-serve-drill" in
  let sock = Filename.concat root "indq.sock" in
  let dir = Filename.concat root "journals" in
  (* Interrupted depths: deterministic pseudo-random, including zero. *)
  let depth i = (i * 13 mod 9) in
  let pid = ref (spawn_server ~faults ~sock ~dir ()) in
  Fun.protect
    ~finally:(fun () -> kill_server !pid)
    (fun () ->
      let c = Sclient.connect (Server.Unix_path sock) in
      List.iteri
        (fun i h ->
          client_hello c h;
          ignore (client_advance c i h.Wire.id ~budget:(depth i)))
        hellos;
      (* The stats op must answer over the wire before the crash. *)
      (match Sclient.rpc c Wire.Stats with
      | Wire.R_stats { counters; _ } ->
        Alcotest.(check (float 0.))
          (label ^ ": sessions counted over the wire")
          (float_of_int sessions)
          (match List.assoc_opt "serve.sessions" counters with
          | Some v -> v
          | None -> 0.)
      | r -> Alcotest.fail ("drill stats: " ^ Wire.response_to_line r));
      Sclient.close c;
      (* SIGKILL mid-interview: no shutdown handler runs, the journals are
         all that survives. *)
      kill_server !pid;
      pid := spawn_server ~faults ~sock ~dir ();
      let c = Sclient.connect (Server.Unix_path sock) in
      let finals =
        List.mapi
          (fun i h ->
            (* Resume must rehydrate from the journal alone. *)
            (match Sclient.rpc c (Wire.Resume { id = h.Wire.id }) with
            | Wire.R_ask _ | Wire.R_done _ -> ()
            | Wire.R_error { code = Wire.Torn_write; _ } -> ()
            | r -> Alcotest.fail ("drill resume: " ^ Wire.response_to_line r));
            match client_advance c i h.Wire.id ~budget:max_int with
            | Some line -> line
            | None -> Alcotest.fail ("drill: " ^ h.Wire.id ^ " never finished"))
          hellos
      in
      Sclient.close c;
      List.iteri
        (fun i expected ->
          Alcotest.(check string)
            (Printf.sprintf "%s: drill-%02d byte-identical after crash" label i)
            expected (List.nth finals i))
        reference)

let test_drill_plain () = run_drill ~faults:[] ~label:"plain"

let test_drill_torn () =
  run_drill
    ~faults:[ "inject.journal_torn_write=every:35" ]
    ~label:"torn-write armed"

let test_drill_sync () =
  run_drill ~faults:[ "inject.journal_sync=every:5" ] ~label:"sync-failure armed"

(* Abusive input against the real server: an over-long line must come back
   as a typed [line_too_long] error (followed by the server closing the
   connection), never a crash — the server must keep serving after. *)
let test_line_too_long () =
  let root = temp_dir "indq-serve-long" in
  let sock = Filename.concat root "indq.sock" in
  let dir = Filename.concat root "journals" in
  let pid = spawn_server ~sock ~dir () in
  Fun.protect
    ~finally:(fun () -> kill_server pid)
    (fun () ->
      let c = Sclient.connect (Server.Unix_path sock) in
      Sclient.close c;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      let junk = Bytes.make 100_000 'x' in
      (try
         let off = ref 0 in
         while !off < Bytes.length junk do
           off := !off + Unix.write fd junk !off (Bytes.length junk - !off)
         done
       with Unix.Unix_error _ -> ());
      let buf = Bytes.create 4096 in
      let n = try Unix.read fd buf 0 4096 with Unix.Unix_error _ -> 0 in
      let got = Bytes.sub_string buf 0 n in
      Unix.close fd;
      Alcotest.(check bool) "typed line_too_long reply" true
        (n > 0
        &&
        match String.index_opt got '\n' with
        | Some nl -> (
          match Wire.parse_response (String.sub got 0 nl) with
          | Ok (Wire.R_error { code = Wire.Line_too_long; _ }) -> true
          | _ -> false)
        | None -> false);
      (* The connection died; the server did not. *)
      let c = Sclient.connect (Server.Unix_path sock) in
      (match Sclient.rpc c Wire.Stats with
      | Wire.R_stats _ -> ()
      | r -> Alcotest.fail ("post-abuse stats: " ^ Wire.response_to_line r));
      Sclient.close c)

let () =
  Alcotest.run "serve"
    [
      ( "wire",
        [
          Alcotest.test_case "canonical round-trips" `Quick test_wire_roundtrip;
          Alcotest.test_case "typed parse errors" `Quick test_wire_parse_errors;
          Alcotest.test_case "fsync policy parse" `Quick test_fsync_policy_parse;
        ] );
      ( "engine",
        [
          Alcotest.test_case "protocol errors are typed" `Quick
            test_engine_protocol_errors;
          Alcotest.test_case "session errors map to wire codes" `Quick
            test_session_error_mapping;
          Alcotest.test_case "deadline degrades gracefully" `Quick
            test_deadline_degrades;
          Alcotest.test_case "idle sessions evict and rehydrate" `Quick
            test_idle_eviction;
          Alcotest.test_case "LRU eviction is byte-transparent" `Quick
            test_eviction_transparency;
        ] );
      ( "drill",
        [
          Alcotest.test_case "kill-and-restart, 50 sessions" `Quick
            test_drill_plain;
          Alcotest.test_case "kill-and-restart under torn writes" `Quick
            test_drill_torn;
          Alcotest.test_case "kill-and-restart under sync failures" `Quick
            test_drill_sync;
          Alcotest.test_case "over-long line is a typed error" `Quick
            test_line_too_long;
        ] );
    ]
