(* Tests for the deterministic fault-injection layer (Indq_fault) and for
   every armed site's recovery path: typed LP failures with the Bland
   fallback, dataset load errors, oracle contradictions absorbed by the
   region machinery, and worker-death chunk retries in the pool.

   The fault matrix at the bottom is also the CI entry point: the plan seed
   comes from INDQ_FAULT_SEED when set, so the workflow can sweep seeds
   without rebuilding. *)

module Fault = Indq_fault.Fault
module Counter = Indq_obs.Counter
module Lp = Indq_lp.Lp
module Dataset = Indq_dataset.Dataset
module Generator = Indq_dataset.Generator
module Oracle = Indq_user.Oracle
module Utility = Indq_user.Utility
module Algo = Indq_core.Algo
module Pool = Indq_exec.Pool
module Rng = Indq_util.Rng
module Vec = Indq_linalg.Vec
module Session = Indq_core.Session
module Wire = Indq_server.Wire
module Journal_store = Indq_server.Journal_store
module Engine = Indq_server.Engine

let vec = Vec.of_array

let temp_dir prefix =
  let base = Filename.temp_file prefix "" in
  Sys.remove base;
  Unix.mkdir base 0o700;
  base

let sample_hello id =
  {
    Wire.id;
    algo = Algo.Squeeze_u;
    data = "independent";
    n = 30;
    d = 2;
    seed = 5;
    s = 0;
    q = 0;
    eps = 0.;
    delta = 0.;
  }

(* Per-test counter deltas, all on the test's own domain (the pool folds
   worker counters back here before parallel_map returns). *)
let counted f =
  let names =
    [
      "fault.injected"; "retry.attempts"; "retry.exhausted"; "lp.failures";
      "region.collapses"; "prune.degraded"; "squeeze_u2.widened_restarts";
      "oracle.questions"; "serve.sync_failures"; "journal.torn_tail";
    ]
  in
  let before = List.map (fun n -> (n, Counter.get n)) names in
  let result = f () in
  let delta name =
    Counter.get name -. List.assoc name before
  in
  (result, delta)

let check_delta what expected delta = Alcotest.(check (float 0.)) what expected delta

(* --- plan and trigger semantics --------------------------------------- *)

let fires_of trigger reaches =
  Fault.with_plan
    (Fault.plan [ ("inject.dataset_load", trigger) ])
    (fun () ->
      List.init reaches (fun _ -> Fault.fire "inject.dataset_load"))

let test_triggers () =
  Alcotest.(check (list bool))
    "never" [ false; false; false ] (fires_of Fault.Never 3);
  Alcotest.(check (list bool))
    "once@2" [ false; true; false; false ]
    (fires_of (Fault.Once 2) 4);
  Alcotest.(check (list bool))
    "every 2" [ false; true; false; true ]
    (fires_of (Fault.Every 2) 4);
  Alcotest.(check (list bool))
    "after 2" [ false; false; true; true ]
    (fires_of (Fault.After 2) 4);
  Alcotest.(check (list bool)) "always" [ true; true ] (fires_of Fault.Always 2)

let test_plan_basics () =
  (* Unarmed process: every site is quiet. *)
  Alcotest.(check bool) "disarmed" false (Fault.fire "inject.dataset_load");
  Alcotest.(check bool) "not armed" false (Fault.armed ());
  (* Unknown sites are rejected at plan construction and at armed fire. *)
  Alcotest.check_raises "bad plan site"
    (Invalid_argument "Fault.plan: unknown site inject.nonsense") (fun () ->
      ignore (Fault.plan [ ("inject.nonsense", Fault.Always) ]));
  Fault.with_plan (Fault.plan [])
    (fun () ->
      Alcotest.check_raises "bad fire site"
        (Invalid_argument "Fault.fire: unknown site inject.nonsense")
        (fun () -> ignore (Fault.fire "inject.nonsense")));
  (* Nesting restores the outer plan; injections are tracked per plan. *)
  Fault.with_plan (Fault.plan [ ("inject.dataset_load", Fault.Always) ])
    (fun () ->
      ignore (Fault.fire "inject.dataset_load");
      Alcotest.(check int) "counted" 1
        (Fault.injections "inject.dataset_load");
      Fault.with_plan (Fault.plan []) (fun () ->
          Alcotest.(check bool) "inner quiet" false
            (Fault.fire "inject.dataset_load");
          Alcotest.(check int) "inner fresh" 0
            (Fault.injections "inject.dataset_load"));
      Alcotest.(check bool) "outer restored" true
        (Fault.fire "inject.dataset_load");
      Alcotest.(check int) "outer kept counting" 2
        (Fault.injections "inject.dataset_load"));
  Alcotest.(check bool) "disarmed again" false (Fault.armed ())

let test_random_plan_deterministic () =
  let p1 = Fault.random_plan ~seed:42 and p2 = Fault.random_plan ~seed:42 in
  Alcotest.(check bool) "same seed same plan" true (p1 = p2);
  Alcotest.(check (list string)) "arms every site" Fault.site_names
    (List.map fst p1.Fault.arms);
  List.iter
    (fun (_, trigger) ->
      match trigger with
      | Fault.Once k ->
        Alcotest.(check bool) "reachable reach" true (k >= 1 && k <= 4)
      | _ -> Alcotest.fail "random plans arm Once triggers")
    p1.Fault.arms

(* --- LP: budget exhaustion, Bland fallback, typed failures ------------- *)

let lp_constraints =
  [
    { Lp.coeffs = vec [| 1.; 2. |]; relation = Lp.Le; rhs = 4. };
    { Lp.coeffs = vec [| 3.; 1. |]; relation = Lp.Le; rhs = 6. };
  ]

let lp_solve ?max_pivots () =
  Lp.solve ?max_pivots ~n:2 ~objective:(vec [| 1.; 1. |]) `Maximize lp_constraints

let test_lp_iteration_cap_recovers () =
  let clean =
    match lp_solve () with
    | Lp.Optimal s -> s
    | _ -> Alcotest.fail "clean solve must be optimal"
  in
  let result, delta =
    counted (fun () ->
        Fault.with_plan
          (Fault.plan [ ("inject.lp_iteration_cap", Fault.Once 1) ])
          (fun () -> lp_solve ()))
  in
  (match result with
  | Lp.Optimal s ->
    Alcotest.(check (float 0.)) "same objective" clean.Lp.objective
      s.Lp.objective;
    Alcotest.(check (array (float 0.))) "same point"
      (Vec.to_array clean.Lp.point) (Vec.to_array s.Lp.point)
  | _ -> Alcotest.fail "Bland fallback must recover the optimum");
  check_delta "one injection" 1. (delta "fault.injected");
  check_delta "one fallback" 1. (delta "retry.attempts");
  check_delta "not exhausted" 0. (delta "retry.exhausted");
  check_delta "no failure" 0. (delta "lp.failures")

let test_lp_nan_pivot_fails_typed () =
  let result, delta =
    counted (fun () ->
        Fault.with_plan
          (Fault.plan [ ("inject.lp_nan_pivot", Fault.Once 1) ])
          (fun () -> lp_solve ()))
  in
  (match result with
  | Lp.Failed (Lp.Numerical _) -> ()
  | _ -> Alcotest.fail "planted NaN must surface as Failed (Numerical _)");
  check_delta "one injection" 1. (delta "fault.injected");
  check_delta "one failure" 1. (delta "lp.failures")

let test_lp_budget_exhaustion_typed () =
  let result, delta = counted (fun () -> lp_solve ~max_pivots:0 ()) in
  (match result with
  | Lp.Failed (Lp.Iteration_limit { budget = 0 }) -> ()
  | _ -> Alcotest.fail "zero budget must surface as Iteration_limit");
  check_delta "fallback tried" 1. (delta "retry.attempts");
  check_delta "fallback exhausted" 1. (delta "retry.exhausted");
  check_delta "one failure" 1. (delta "lp.failures");
  check_delta "no injection" 0. (delta "fault.injected");
  (* feasible_point treats Failed as unknown, not as infeasible. *)
  Alcotest.(check bool) "feasible_point unknown" true
    (Lp.feasible_point ~n:2 lp_constraints <> None)

let test_lp_error_messages () =
  Alcotest.(check bool) "iteration message" true
    (String.length (Lp.error_message (Lp.Iteration_limit { budget = 7 })) > 0);
  Alcotest.(check bool) "numerical message" true
    (String.length (Lp.error_message (Lp.Numerical { detail = "x" })) > 0)

(* --- dataset load ------------------------------------------------------- *)

let test_dataset_load_injection () =
  let csv = "0,1,0.5\n1,0.25,1\n" in
  let results, delta =
    counted (fun () ->
        Fault.with_plan
          (Fault.plan [ ("inject.dataset_load", Fault.Once 2) ])
          (fun () ->
            List.init 3 (fun _ ->
                match Dataset.of_csv csv with
                | d -> `Loaded (Dataset.size d)
                | exception Dataset.Load_error e -> `Error e.Dataset.reason)))
  in
  (match results with
  | [ `Loaded 2; `Error reason; `Loaded 2 ] ->
    Alcotest.(check string) "reason" "injected fault: source unreadable" reason
  | _ -> Alcotest.fail "exactly the second load must fail");
  check_delta "one injection" 1. (delta "fault.injected")

(* --- oracle contradiction: region degradation --------------------------- *)

let contradiction_run ?(algo = Algo.Uh_random) ?(delta = 0.) ~seed trigger =
  let rng = Rng.create seed in
  let data = Generator.anti_correlated rng ~n:120 ~d:2 in
  let d = Dataset.dim data in
  let u = Utility.random rng ~d in
  let oracle =
    if delta > 0. then Oracle.with_error ~delta ~rng:(Rng.split rng) u
    else Oracle.exact u
  in
  let config = { (Algo.default_config ~d) with Algo.delta } in
  Fault.with_plan
    (Fault.plan [ ("inject.oracle_contradiction", trigger) ])
    (fun () -> Algo.run algo config ~data ~oracle ~rng:(Rng.split rng))

let test_oracle_contradiction_degrades () =
  (* A user who always picks the *worst* option produces answers that are
     jointly infeasible within a few rounds; the run must complete with a
     non-empty output and count the collapsed rounds it refused to commit. *)
  let result, delta =
    counted (fun () -> contradiction_run ~seed:11 Fault.Always)
  in
  Alcotest.(check bool) "completed with output" true
    (Dataset.size result.Algo.output >= 1);
  check_delta "every question lied" (delta "oracle.questions")
    (delta "fault.injected");
  Alcotest.(check bool) "collapses detected and absorbed" true
    (delta "region.collapses" >= 1.)

let test_oracle_single_lie_recovers () =
  let result, delta =
    counted (fun () -> contradiction_run ~seed:13 (Fault.Once 2))
  in
  Alcotest.(check bool) "completed with output" true
    (Dataset.size result.Algo.output >= 1);
  check_delta "one injection" 1. (delta "fault.injected")

let test_squeeze_widened_restart () =
  (* Squeeze-u2's interval ladder: a lying user drives lo past hi, which
     must trigger the ε-widened restart instead of an inverted interval. *)
  let result, delta =
    counted (fun () ->
        contradiction_run ~algo:Algo.Squeeze_u ~delta:0.05 ~seed:5 Fault.Always)
  in
  Alcotest.(check bool) "completed with output" true
    (Dataset.size result.Algo.output >= 1);
  Alcotest.(check bool) "widened restarts fired" true
    (delta "squeeze_u2.widened_restarts" >= 1.)

(* --- pool worker death: chunk retry, bit-identical output --------------- *)

let pool_input = Array.init 48 (fun i -> i)

let pool_f i = (i * 31) mod 97

let test_worker_death_retries () =
  let expected = Array.map pool_f pool_input in
  Pool.with_pool ~domains:2 (fun pool ->
      let out, delta =
        counted (fun () ->
            Fault.with_plan
              (Fault.plan [ ("inject.worker_death", Fault.Once 3) ])
              (fun () -> Pool.parallel_map ~chunks:8 pool pool_f pool_input))
      in
      Alcotest.(check (array int)) "bit-identical output" expected out;
      check_delta "one death" 1. (delta "fault.injected");
      check_delta "one retry" 1. (delta "retry.attempts");
      check_delta "not exhausted" 0. (delta "retry.exhausted"))

let test_worker_death_exhaustion () =
  Pool.with_pool ~domains:2 (fun pool ->
      let result, delta =
        counted (fun () ->
            Fault.with_plan
              (Fault.plan [ ("inject.worker_death", Fault.Always) ])
              (fun () ->
                match Pool.parallel_map ~chunks:4 pool pool_f pool_input with
                | _ -> `Completed
                | exception Fault.Injected site -> `Died site))
      in
      Alcotest.(check bool) "typed exhaustion" true
        (result = `Died "inject.worker_death");
      (* 4 chunks x 3 attempts each, all exhausted: the accounting is exact
         and deterministic. *)
      check_delta "deaths" 12. (delta "fault.injected");
      check_delta "retries" 8. (delta "retry.attempts");
      check_delta "exhaustions" 4. (delta "retry.exhausted"))

let test_worker_death_seeded_identical () =
  (* parallel_map_seeded under a mid-run death must reproduce the fault-free
     results exactly: per-task RNGs are pre-split, so the retried chunk
     replays the same streams. *)
  let f rng x = float_of_int x +. Rng.float rng 1.0 in
  let run plan =
    Pool.with_pool ~domains:2 (fun pool ->
        Fault.with_plan_opt plan (fun () ->
            Pool.parallel_map_seeded ~chunks:6 pool ~rng:(Rng.create 99) f
              pool_input))
  in
  let clean = run None in
  let faulted =
    run (Some (Fault.plan [ ("inject.worker_death", Fault.Once 2) ]))
  in
  Alcotest.(check (array (float 0.))) "bit-identical streams" clean faulted

(* --- the fault matrix: every site, exact plan accounting ---------------- *)

(* CI sweeps plan seeds via the environment; local runs get the default. *)
let matrix_seed =
  match Sys.getenv_opt "INDQ_FAULT_SEED" with
  | Some s -> int_of_string s
  | None -> 2024

let reaches_for_once = 6

let test_fault_matrix () =
  let plan = Fault.random_plan ~seed:matrix_seed in
  List.iter
    (fun (site, trigger) ->
      let single = Fault.plan ~seed:matrix_seed [ (site, trigger) ] in
      let outcome_ok, delta =
        counted (fun () ->
            Fault.with_plan single (fun () ->
                match site with
                | "inject.dataset_load" ->
                  let results =
                    List.init reaches_for_once (fun _ ->
                        match Dataset.of_csv "0,1,2\n1,3,4\n" with
                        | _ -> `Ok
                        | exception Dataset.Load_error _ -> `Typed)
                  in
                  List.length (List.filter (( = ) `Typed) results) = 1
                | "inject.lp_iteration_cap" ->
                  List.for_all
                    (fun r -> match r with Lp.Optimal _ -> true | _ -> false)
                    (List.init reaches_for_once (fun _ -> lp_solve ()))
                | "inject.lp_nan_pivot" ->
                  let results =
                    List.init reaches_for_once (fun _ -> lp_solve ())
                  in
                  List.length
                    (List.filter
                       (fun r ->
                         match r with Lp.Failed (Lp.Numerical _) -> true | _ -> false)
                       results)
                  = 1
                | "inject.oracle_contradiction" ->
                  (* Re-arm inside: contradiction_run installs its own plan,
                     so drive the oracle directly here. *)
                  let u = vec [| 0.75; 0.25 |] in
                  let oracle = Oracle.exact u in
                  let options =
                    [| vec [| 1.; 0. |]; vec [| 0.; 1. |]; vec [| 0.5; 0.5 |] |]
                  in
                  let choices =
                    List.init reaches_for_once (fun _ ->
                        Oracle.choose oracle options)
                  in
                  (* The honest answer is index 0; the lie is the worst
                     option, index 1 — exactly once. *)
                  List.length (List.filter (( = ) 1) choices) = 1
                  && List.length (List.filter (( = ) 0) choices)
                     = reaches_for_once - 1
                | "inject.worker_death" ->
                  Pool.with_pool ~domains:2 (fun pool ->
                      Pool.parallel_map ~chunks:reaches_for_once pool pool_f
                        pool_input
                      = Array.map pool_f pool_input)
                | "inject.journal_sync" ->
                  (* Every fsync failure is absorbed: appends keep
                     succeeding and the records all land on disk. *)
                  let dir = temp_dir "indq-sync" in
                  let sink =
                    Journal_store.create ~dir ~fsync:Journal_store.Always
                      (sample_hello "sync")
                  in
                  let entries =
                    List.init (reaches_for_once - 1) (fun i ->
                        Session.Answered { round = i + 1; options = 2; choice = 0 })
                  in
                  List.iter (Journal_store.append sink) entries;
                  Journal_store.close sink;
                  (match Journal_store.load ~dir "sync" with
                  | Ok l ->
                    l.Journal_store.entries = entries
                    && not l.Journal_store.torn_tail
                  | Error _ -> false)
                | "inject.journal_torn_write" ->
                  (* A torn append poisons the sink; recovery is a reload
                     (dropping the torn tail) plus a rewriting reopen, after
                     which the failed record is appended again.  The final
                     journal must hold every record exactly once. *)
                  let dir = temp_dir "indq-torn" in
                  let torn = ref 0 in
                  (* A tear can land on the header write itself; creation is
                     atomic, so the recovery there is delete-and-retry. *)
                  let rec fresh () =
                    match
                      Journal_store.create ~dir ~fsync:Journal_store.Never
                        (sample_hello "torn")
                    with
                    | sink -> sink
                    | exception Journal_store.Torn _ ->
                      incr torn;
                      Sys.remove (Journal_store.path ~dir "torn");
                      fresh ()
                  in
                  let sink = ref (fresh ()) in
                  let entries =
                    List.init reaches_for_once (fun i ->
                        Session.Answered
                          { round = i + 1; options = 2; choice = 10 + i })
                  in
                  List.iter
                    (fun e ->
                      match Journal_store.append !sink e with
                      | () -> ()
                      | exception Journal_store.Torn _ -> (
                        incr torn;
                        Journal_store.close !sink;
                        match Journal_store.load ~dir "torn" with
                        | Ok loaded ->
                          sink :=
                            Journal_store.reopen ~dir
                              ~fsync:Journal_store.Never
                              ~rewrite:loaded.Journal_store.torn_tail loaded
                              "torn";
                          Journal_store.append !sink e
                        | Error _ ->
                          Alcotest.fail "torn journal failed to load"))
                    entries;
                  Journal_store.close !sink;
                  !torn = 1
                  &&
                  (match Journal_store.load ~dir "torn" with
                  | Ok l ->
                    l.Journal_store.entries = entries
                    && not l.Journal_store.torn_tail
                  | Error _ -> false)
                | "inject.client_disconnect" ->
                  (* The engine swallows the reply exactly once; session
                     state stays intact, so the following request sees the
                     same pending round. *)
                  let dir = temp_dir "indq-disc" in
                  let engine =
                    Engine.create
                      {
                        (Engine.default_config ~dir) with
                        Engine.fsync = Journal_store.Never;
                      }
                  in
                  let outcomes =
                    List.init reaches_for_once (fun i ->
                        Engine.handle engine
                          (if i = 0 then Wire.Hello (sample_hello "c")
                           else Wire.Ask { id = "c" }))
                  in
                  Engine.shutdown engine;
                  let dropped =
                    List.filter
                      (fun o -> match o with Engine.Disconnect -> true | _ -> false)
                      outcomes
                  in
                  List.length dropped = 1
                  && List.for_all
                       (fun o ->
                         match o with
                         | Engine.Disconnect
                         | Engine.Reply (Wire.R_ask _ | Wire.R_done _) ->
                           true
                         | _ -> false)
                       outcomes
                | other -> Alcotest.fail ("unknown site " ^ other)))
      in
      Alcotest.(check bool)
        (site ^ " recovered or surfaced typed error")
        true outcome_ok;
      check_delta (site ^ " injected exactly once") 1. (delta "fault.injected");
      if site = "inject.worker_death" then begin
        check_delta "death retried" 1. (delta "retry.attempts");
        check_delta "death not exhausted" 0. (delta "retry.exhausted")
      end;
      if site = "inject.journal_sync" then
        check_delta "sync failure absorbed" 1. (delta "serve.sync_failures"))
    plan.Fault.arms

let () =
  Alcotest.run "fault"
    [
      ( "plans",
        [
          Alcotest.test_case "trigger semantics" `Quick test_triggers;
          Alcotest.test_case "plan basics" `Quick test_plan_basics;
          Alcotest.test_case "random plan deterministic" `Quick
            test_random_plan_deterministic;
        ] );
      ( "lp",
        [
          Alcotest.test_case "iteration cap recovers" `Quick
            test_lp_iteration_cap_recovers;
          Alcotest.test_case "nan pivot fails typed" `Quick
            test_lp_nan_pivot_fails_typed;
          Alcotest.test_case "budget exhaustion typed" `Quick
            test_lp_budget_exhaustion_typed;
          Alcotest.test_case "error messages" `Quick test_lp_error_messages;
        ] );
      ( "dataset",
        [ Alcotest.test_case "load injection" `Quick test_dataset_load_injection ] );
      ( "oracle",
        [
          Alcotest.test_case "contradictions degrade" `Quick
            test_oracle_contradiction_degrades;
          Alcotest.test_case "single lie recovers" `Quick
            test_oracle_single_lie_recovers;
          Alcotest.test_case "squeeze widened restart" `Quick
            test_squeeze_widened_restart;
        ] );
      ( "pool",
        [
          Alcotest.test_case "worker death retries" `Quick
            test_worker_death_retries;
          Alcotest.test_case "worker death exhaustion" `Quick
            test_worker_death_exhaustion;
          Alcotest.test_case "seeded map identical" `Quick
            test_worker_death_seeded_identical;
        ] );
      ( "matrix",
        [ Alcotest.test_case "all sites" `Quick test_fault_matrix ] );
    ]
