(* Tests for the domain pool (lib/exec): order preservation, exception
   propagation, counter-delta merging, and the headline determinism
   contract — a sweep on 4 domains is bit-identical to the sequential one.
   Also checks statistical independence of Rng.split streams, which the
   per-trial seeding leans on. *)

module Pool = Indq_exec.Pool
module Counter = Indq_obs.Counter
module Experiments = Indq_experiments.Experiments
module Algo = Indq_core.Algo
module Generator = Indq_dataset.Generator
module Rng = Indq_util.Rng

(* --- pool basics --- *)

let test_map_preserves_order () =
  let input = Array.init 101 (fun i -> i) in
  let expect = Array.map (fun i -> (i * i) + 1) input in
  Pool.with_pool ~domains:4 (fun pool ->
      List.iter
        (fun chunks ->
          let got =
            Pool.parallel_map ?chunks pool (fun i -> (i * i) + 1) input
          in
          Alcotest.(check (array int))
            (Printf.sprintf "chunks=%s"
               (match chunks with None -> "default" | Some c -> string_of_int c))
            expect got)
        [ None; Some 1; Some 5; Some 101; Some 1000 ])

let test_size_one_pool_runs_inline () =
  Pool.with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "size" 1 (Pool.size pool);
      let here = Domain.self () in
      let domains =
        Pool.parallel_map pool (fun _ -> Domain.self ()) (Array.make 8 ())
      in
      Array.iter
        (fun d -> Alcotest.(check bool) "caller's domain" true (d = here))
        domains)

let test_empty_and_singleton () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check (array int)) "empty" [||]
        (Pool.parallel_map pool (fun i -> i) [||]);
      Alcotest.(check (array int)) "singleton" [| 14 |]
        (Pool.parallel_map pool (fun i -> i * 2) [| 7 |]))

let test_exception_propagates () =
  Pool.with_pool ~domains:2 (fun pool ->
      Alcotest.check_raises "first failure re-raised" (Failure "task 7")
        (fun () ->
          ignore
            (Pool.parallel_map pool
               (fun i -> if i = 7 then failwith "task 7" else i)
               (Array.init 16 (fun i -> i))));
      (* The pool survives a failing batch. *)
      Alcotest.(check (array int)) "pool still works" [| 0; 2; 4 |]
        (Pool.parallel_map pool (fun i -> 2 * i) [| 0; 1; 2 |]))

let test_counter_deltas_merge () =
  let c = Counter.make "test.exec.work" in
  let before = Counter.value c in
  Pool.with_pool ~domains:3 (fun pool ->
      ignore
        (Pool.parallel_map pool
           (fun i ->
             Counter.add c 2.;
             i)
           (Array.init 20 (fun i -> i))));
  Alcotest.(check (float 0.)) "worker bumps land on the caller" (before +. 40.)
    (Counter.value c)

let test_shutdown_idempotent () =
  let pool = Pool.create ~domains:2 in
  ignore (Pool.parallel_map pool (fun i -> i) [| 1; 2; 3 |]);
  Pool.shutdown pool;
  Pool.shutdown pool

(* --- determinism of seeded fan-out --- *)

let seeded_run ~domains =
  let rng = Rng.create 99 in
  let out =
    Pool.with_pool ~domains (fun pool ->
        Pool.parallel_map_seeded pool ~rng
          (fun task_rng x -> float_of_int x +. Rng.uniform task_rng)
          (Array.init 33 (fun i -> i)))
  in
  (* The caller's generator must have advanced identically too. *)
  (out, Rng.uniform rng)

let test_seeded_map_pool_invariant () =
  let seq, seq_next = seeded_run ~domains:1 in
  let par, par_next = seeded_run ~domains:4 in
  Alcotest.(check bool) "same outputs" true (seq = par);
  Alcotest.(check (float 0.)) "same rng advancement" seq_next par_next

(* The headline qcheck property: a full experiment sweep on a 4-domain pool
   equals the sequential sweep bit for bit — α mean and sd, output sizes,
   false-negative counts, and the merged per-run counter deltas.  Only
   wall-clock [time_mean] may differ. *)

let tiny_points ~seed =
  let rng = Rng.create seed in
  let data = Generator.independent rng ~n:60 ~d:2 in
  let config = Algo.default_config ~d:2 in
  [ (1., data, config); (2., data, { config with Algo.q = 4 }) ]

let cell_equal (a : Experiments.cell) (b : Experiments.cell) =
  a.Experiments.alpha_mean = b.Experiments.alpha_mean
  && a.Experiments.alpha_sd = b.Experiments.alpha_sd
  && a.Experiments.output_size_mean = b.Experiments.output_size_mean
  && a.Experiments.false_negative_runs = b.Experiments.false_negative_runs
  && a.Experiments.metrics_mean = b.Experiments.metrics_mean

let sweep_equal (a : Experiments.sweep) (b : Experiments.sweep) =
  Array.length a.Experiments.cells = Array.length b.Experiments.cells
  && Array.for_all2
       (fun ra rb -> Array.for_all2 cell_equal ra rb)
       a.Experiments.cells b.Experiments.cells

let parallel_sweep_bit_identical =
  QCheck.Test.make ~count:4 ~name:"-j 4 sweep is bit-identical to -j 1"
    QCheck.(pair (int_range 1 1000) (int_range 1 1000))
    (fun (data_seed, sweep_seed) ->
      let run pool =
        Experiments.run_sweep ?pool ~title:"prop" ~x_label:"x"
          ~algorithms:[ Algo.Squeeze_u; Algo.MinR ]
          ~points:(tiny_points ~seed:data_seed)
          ~utilities:2 ~user_delta:0.02 ~seed:sweep_seed ()
      in
      let seq = run None in
      let par = Pool.with_pool ~domains:4 (fun p -> run (Some p)) in
      sweep_equal seq par)

(* --- Rng.split stream independence --- *)

(* The pool's determinism contract seeds every task by splitting one
   generator, so split streams must be statistically independent: uniform
   marginals and no cross-correlation.  Thresholds sit at ~5 standard
   errors, so the (deterministic, fixed-seed) test is far from flaky. *)
let test_split_streams_independent () =
  let rng = Rng.create 20240805 in
  let a = Rng.split rng in
  let b = Rng.split rng in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.uniform a) in
  let ys = Array.init n (fun _ -> Rng.uniform b) in
  let fn = float_of_int n in
  let mean arr = Array.fold_left ( +. ) 0. arr /. fn in
  let mx = mean xs and my = mean ys in
  (* se(mean) = 1/sqrt(12 n) ~ 0.002 *)
  Alcotest.(check bool) "a uniform mean" true (Float.abs (mx -. 0.5) < 0.011);
  Alcotest.(check bool) "b uniform mean" true (Float.abs (my -. 0.5) < 0.011);
  let cov = ref 0. and va = ref 0. and vb = ref 0. in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx and dy = ys.(i) -. my in
    cov := !cov +. (dx *. dy);
    va := !va +. (dx *. dx);
    vb := !vb +. (dy *. dy)
  done;
  let corr = !cov /. sqrt (!va *. !vb) in
  (* se(corr) ~ 1/sqrt(n) ~ 0.007 *)
  Alcotest.(check bool) "uncorrelated" true (Float.abs corr < 0.036);
  (* Splitting must not echo the parent's own stream. *)
  let parent = Array.init 100 (fun _ -> Rng.uniform rng) in
  Alcotest.(check bool) "distinct from parent" true
    (parent <> Array.sub xs 0 100)

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_preserves_order;
          Alcotest.test_case "size-1 pool inline" `Quick test_size_one_pool_runs_inline;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "counter deltas merge" `Quick test_counter_deltas_merge;
          Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "seeded map pool-invariant" `Quick
            test_seeded_map_pool_invariant;
          QCheck_alcotest.to_alcotest parallel_sweep_bit_identical;
        ] );
      ( "rng",
        [
          Alcotest.test_case "split streams independent" `Quick
            test_split_streams_independent;
        ] );
    ]
