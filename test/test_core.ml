(* Tests for the core definitions: the indistinguishability query itself,
   regret equivalence (Obs. 2), the feasible region, the pruning testers and
   the Theorem 1 impossibility construction. *)

module Indist = Indq_core.Indist
module Regret = Indq_core.Regret
module Region = Indq_core.Region
module Pruning = Indq_core.Pruning
module Impossibility = Indq_core.Impossibility
module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple
module Generator = Indq_dataset.Generator
module Skyline = Indq_dominance.Skyline
module Utility = Indq_user.Utility
module Rng = Indq_util.Rng
module Vec = Indq_linalg.Vec

let vec = Vec.of_array

let ids data = List.map Tuple.id (Dataset.to_list data) |> List.sort compare

(* Table I of the paper: five cars, u = (MPG-weight 1, SR-weight 20),
   eps = 0.05 must select {c1, c3, c5}.  The paper's utility column gives
   c5 the value 158, i.e. MPG 98 (the "95" in some renderings of the table
   is inconsistent with its own utility column and with the claimed answer
   set: 95 + 60 = 155 < 164/1.05). *)
let car_table =
  Dataset.create
    [| [| 59.; 5. |]; [| 36.; 4. |]; [| 104.; 3. |]; [| 34.; 5. |]; [| 98.; 3. |] |]

let car_utility = vec [| 1.; 20. |]

let test_paper_car_example () =
  let result = Indist.query_exact ~eps:0.05 car_utility car_table in
  Alcotest.(check (list int)) "cars c1,c3,c5" [ 0; 2; 4 ] (ids result)

let test_indistinguishable_symmetric () =
  let u = vec [| 1.; 1. |] in
  Alcotest.(check bool) "close pair" true
    (Indist.indistinguishable ~eps:0.05 u (vec [| 0.5; 0.5 |]) (vec [| 0.49; 0.49 |]));
  Alcotest.(check bool) "far pair" false
    (Indist.indistinguishable ~eps:0.05 u (vec [| 0.5; 0.5 |]) (vec [| 0.4; 0.4 |]));
  (* Symmetry. *)
  Alcotest.(check bool) "symmetric" true
    (Indist.indistinguishable ~eps:0.05 u (vec [| 0.49; 0.49 |]) (vec [| 0.5; 0.5 |]))

let test_query_contains_optimum () =
  let rng = Rng.create 4 in
  let data = Generator.independent rng ~n:100 ~d:3 in
  let u = Utility.random rng ~d:3 in
  let result = Indist.query_exact ~eps:0.05 u data in
  let best, _ = Dataset.max_utility data u in
  Alcotest.(check bool) "p* in I" true
    (List.mem (Tuple.id best) (ids result))

let test_alpha_zero_for_exact_answer () =
  let result = Indist.query_exact ~eps:0.05 car_utility car_table in
  Alcotest.(check (float 1e-9)) "alpha 0" 0.
    (Indist.alpha ~eps:0.05 car_utility ~data:car_table ~output:result)

let test_alpha_positive_for_overfull_answer () =
  (* Returning everything: c2 (utility 116) is far off; alpha must be
     164 - 1.05 * 116 = 42.2. *)
  let a =
    Indist.alpha ~eps:0.05 car_utility ~data:car_table ~output:car_table
  in
  Alcotest.(check (float 1e-6)) "alpha" (164. -. (1.05 *. 116.)) a

let test_false_negative_detection () =
  let missing_best = Dataset.filter car_table (fun p -> Tuple.id p <> 2) in
  Alcotest.(check bool) "detects" true
    (Indist.has_false_negatives ~eps:0.05 car_utility ~data:car_table
       ~output:missing_best);
  Alcotest.(check bool) "full set fine" false
    (Indist.has_false_negatives ~eps:0.05 car_utility ~data:car_table
       ~output:car_table)

let test_observation4_monotone () =
  Alcotest.(check bool) "I(eps') subset I(eps)" true
    (Indist.monotone_subset_check ~eps:0.05 ~eps':0.01 car_utility car_table)

let test_eps_guard () =
  Alcotest.check_raises "eps 0" (Invalid_argument "Indist: eps must be positive")
    (fun () -> ignore (Indist.query_exact ~eps:0. car_utility car_table))

(* Observation 1: if |I| = k then I = top-k. *)
let test_observation1_topk () =
  let result = Indist.query_exact ~eps:0.05 car_utility car_table in
  let k = Dataset.size result in
  let topk = Dataset.top_k car_table car_utility k in
  Alcotest.(check (list int)) "I = top-k"
    (ids result)
    (List.sort compare (List.map Tuple.id topk))

let test_regret_values () =
  let r = Regret.tuple_regret ~data:car_table car_utility (Dataset.get car_table 1) in
  Alcotest.(check (float 1e-9)) "c2 regret" (1. -. (116. /. 164.)) r;
  let r0 = Regret.tuple_regret ~data:car_table car_utility (Dataset.get car_table 2) in
  Alcotest.(check (float 1e-9)) "optimal regret 0" 0. r0

let test_set_regret () =
  let subset = [ Dataset.get car_table 0; Dataset.get car_table 1 ] in
  Alcotest.(check (float 1e-9)) "best of subset" (1. -. (159. /. 164.))
    (Regret.set_regret ~data:car_table car_utility subset)

let test_observation2_regret_equivalence () =
  Alcotest.(check bool) "cars" true
    (Regret.matches_indistinguishability ~eps:0.05 car_utility car_table);
  let rng = Rng.create 6 in
  for _ = 1 to 10 do
    let data = Generator.anti_correlated rng ~n:80 ~d:3 in
    let u = Utility.random rng ~d:3 in
    Alcotest.(check bool) "random data" true
      (Regret.matches_indistinguishability ~eps:0.1 u data)
  done

let test_max_regret_ratio () =
  let us = [ vec [| 1.; 0. |]; vec [| 0.; 1. |] ] in
  let subset = [ Dataset.get car_table 2 ] in
  (* c3=(104,3): for u=(0,1) optimum is 5 (c1/c4), regret 1-3/5 = 0.4. *)
  let data = car_table in
  Alcotest.(check (float 1e-9)) "max regret" 0.4
    (Regret.max_regret_ratio ~data ~sample_utilities:us subset)

(* Region tests. *)

let test_region_observe_narrows () =
  let r0 = Region.initial ~d:2 in
  Alcotest.(check (float 1e-6)) "initial width" 1. (Region.width r0);
  let r1 =
    Region.observe r0 ~winner:(vec [| 1.; 0. |]) ~losers:[ vec [| 0.; 1. |] ]
  in
  Alcotest.(check (float 1e-6)) "narrowed" 0.5 (Region.width r1);
  Alcotest.(check int) "counted" 1 (Region.questions_recorded r1)

let test_region_no_losers_no_cut () =
  let r0 = Region.initial ~d:2 in
  let r1 = Region.observe r0 ~winner:(vec [| 1.; 0. |]) ~losers:[] in
  Alcotest.(check int) "not counted" 0 (Region.questions_recorded r1)

let test_region_delta_weaker () =
  let r_strict =
    Region.observe (Region.initial ~d:2) ~winner:(vec [| 1.; 0. |]) ~losers:[ vec [| 0.; 1. |] ]
  in
  let r_weak =
    Region.observe ~delta:0.2 (Region.initial ~d:2) ~winner:(vec [| 1.; 0. |])
      ~losers:[ vec [| 0.; 1. |] ]
  in
  Alcotest.(check bool) "delta region wider" true
    (Region.width r_weak >= Region.width r_strict -. 1e-9)

let test_region_consistency_with_true_utility () =
  (* Simulating an exact user, the true utility must stay in the region. *)
  let rng = Rng.create 17 in
  for _ = 1 to 20 do
    let d = 2 + Rng.int rng 3 in
    let u = Utility.random rng ~d in
    let region = ref (Region.initial ~d) in
    for _ = 1 to 5 do
      let options = Array.init 3 (fun _ -> Vec.init d (fun _ -> Rng.uniform rng)) in
      let best = Utility.best_index u options in
      let losers = ref [] in
      Array.iteri (fun i p -> if i <> best then losers := p :: !losers) options;
      region := Region.observe !region ~winner:options.(best) ~losers:!losers
    done;
    let poly = Region.polytope !region in
    Alcotest.(check bool) "u in region" true
      (Indq_geom.Polytope.contains ~tol:1e-7 poly (Utility.normalize_sum u))
  done

(* Pruning tests. *)

let test_box_prune_fast_keeps_ground_truth () =
  let rng = Rng.create 23 in
  for _ = 1 to 20 do
    let d = 2 + Rng.int rng 3 in
    let data = Generator.independent rng ~n:120 ~d in
    let u = Utility.random_max_normalized rng ~d in
    (* A box that genuinely contains u. *)
    let lo = Vec.map (fun x -> Float.max 0. (x -. 0.1)) u in
    let hi = Vec.map (fun x -> Float.min 1. (x +. 0.1)) u in
    let eps = 0.05 in
    let pruned = Pruning.box_prune_fast ~eps ~lo ~hi data in
    Alcotest.(check bool) "no false negatives" false
      (Indist.has_false_negatives ~eps u ~data ~output:pruned)
  done

let test_box_prune_exact_subset_of_fast_input () =
  let rng = Rng.create 29 in
  let data = Generator.independent rng ~n:80 ~d:3 in
  let u = Utility.random_max_normalized rng ~d:3 in
  let lo = Vec.map (fun x -> Float.max 0. (x -. 0.05)) u in
  let hi = Vec.map (fun x -> Float.min 1. (x +. 0.05)) u in
  let eps = 0.05 in
  let exact = Pruning.box_prune_exact ~eps ~lo ~hi data in
  (* The exact test prunes at least as hard as the fast heuristic and never
     drops ground truth. *)
  Alcotest.(check bool) "no false negatives" false
    (Indist.has_false_negatives ~eps u ~data ~output:exact)

let test_box_prune_degenerate_box_is_sharp () =
  (* With lo = hi = u the fast prune computes I exactly (V = optimum). *)
  let u = vec [| 1.; 0.5 |] in
  let data =
    Dataset.create [| [| 1.; 1. |]; [| 0.97; 0.97 |]; [| 0.1; 0.1 |] |]
  in
  let pruned = Pruning.box_prune_fast ~eps:0.05 ~lo:u ~hi:u data in
  Alcotest.(check (list int)) "exact I" (ids (Indist.query_exact ~eps:0.05 u data))
    (ids pruned)

let test_region_prune_no_false_negatives () =
  let rng = Rng.create 31 in
  for _ = 1 to 10 do
    let d = 2 + Rng.int rng 2 in
    let data = Generator.anti_correlated rng ~n:60 ~d in
    let u = Utility.random rng ~d in
    (* Region narrowed by a few true-preference cuts. *)
    let region = ref (Region.initial ~d) in
    for _ = 1 to 3 do
      let pool = Dataset.tuples data in
      let opts = Rng.sample_without_replacement rng (min 3 (Array.length pool)) pool in
      let values = Array.map Tuple.values opts in
      let best = Utility.best_index u values in
      let losers = ref [] in
      Array.iteri (fun i v -> if i <> best then losers := v :: !losers) values;
      region := Region.observe !region ~winner:values.(best) ~losers:!losers
    done;
    let eps = 0.05 in
    let pruned = Pruning.region_prune ~eps !region data in
    Alcotest.(check bool) "no false negatives" false
      (Indist.has_false_negatives ~eps u ~data ~output:pruned)
  done

let test_region_prune_actually_prunes () =
  (* A sharply-narrowed region prunes obviously bad tuples. *)
  let data =
    Dataset.create [| [| 1.; 0.5 |]; [| 0.05; 0.55 |]; [| 0.99; 0.49 |] |]
  in
  (* User strongly prefers attribute 0: region near u = (1,0)... cut with a
     decisive comparison. *)
  let region =
    Region.observe (Region.initial ~d:2) ~winner:(vec [| 1.; 0. |])
      ~losers:[ vec [| 0.; 0.9 |] ]
  in
  let pruned = Pruning.region_prune ~eps:0.05 region data in
  Alcotest.(check bool) "bad tuple pruned" false (List.mem 1 (ids pruned));
  Alcotest.(check bool) "good tuples kept" true
    (List.mem 0 (ids pruned) && List.mem 2 (ids pruned))

let test_utility_floor_bounds_optimum () =
  let rng = Rng.create 37 in
  let data = Generator.independent rng ~n:50 ~d:3 in
  let u = Utility.random rng ~d:3 in
  let region = Region.initial ~d:3 in
  let floor_value = Pruning.utility_floor region data in
  let _, best = Dataset.max_utility data u in
  Alcotest.(check bool) "floor <= optimum" true (floor_value <= best +. 1e-9)

let test_generic_utility_query () =
  (* query_exact_fn with a linear evaluator must equal query_exact. *)
  let u = car_utility in
  let f p = Indq_linalg.Vec.dot u p in
  Alcotest.(check (list int)) "linear agreement"
    (ids (Indist.query_exact ~eps:0.05 u car_table))
    (ids (Indist.query_exact_fn ~eps:0.05 f car_table));
  Alcotest.(check (float 1e-9)) "alpha agreement"
    (Indist.alpha ~eps:0.05 u ~data:car_table ~output:car_table)
    (Indist.alpha_fn ~eps:0.05 f ~data:car_table ~output:car_table)

let test_generic_utility_nonlinear () =
  (* A concave user can rank a dominated-in-sum tuple first; the generic
     query must follow the evaluator, not linearity. *)
  let data = Dataset.create [| [| 1.0; 0.0 |]; [| 0.45; 0.45 |] |] in
  let f p = sqrt (Vec.get p 0) +. sqrt (Vec.get p 1) in
  let result = Indist.query_exact_fn ~eps:0.05 f data in
  (* sqrt(0.45)*2 = 1.342 > 1, so the balanced tuple is optimal and the
     extreme one is excluded at eps = 0.05 (1.05 < 1.342). *)
  Alcotest.(check (list int)) "balanced only" [ 1 ] (ids result);
  Alcotest.(check bool) "false negatives detected" true
    (Indist.has_false_negatives_fn ~eps:0.05 f ~data
       ~output:(Dataset.filter data (fun p -> Tuple.id p = 0)))

(* Baselines (top-k / skyline / greedy k-regret + coverage metrics). *)

module Baselines = Indq_core.Baselines

let test_baselines_topk_and_skyline () =
  let top2 = Baselines.top_k car_table car_utility ~k:2 in
  Alcotest.(check (list int)) "top-2" [ 2; 0 ] (List.map Tuple.id top2);
  let sky = Baselines.skyline car_table in
  (* c2 (36,4) and c4 (34,5) are dominated by c1 (59,5); c5 (98,3) is
     dominated by c3 (104,3) — which is exactly why the skyline cannot
     answer the indistinguishability query (c5 is in I but off-skyline). *)
  Alcotest.(check (list int)) "skyline" [ 0; 2 ]
    (List.sort compare (List.map Tuple.id sky))

let test_greedy_regret_set () =
  let rng = Rng.create 59 in
  let data = Generator.anti_correlated rng ~n:100 ~d:3 in
  let sample = List.init 20 (fun _ -> Utility.random rng ~d:3) in
  let set = Baselines.greedy_regret_set data ~size:5 ~sample_utilities:sample in
  Alcotest.(check bool) "non-empty" true (List.length set >= 1);
  Alcotest.(check bool) "within size" true (List.length set <= 5);
  (* Greedy is monotone: a larger budget never increases sampled regret. *)
  let regret set = Regret.max_regret_ratio ~data ~sample_utilities:sample set in
  let bigger = Baselines.greedy_regret_set data ~size:10 ~sample_utilities:sample in
  Alcotest.(check bool) "monotone improvement" true
    (regret bigger <= regret set +. 1e-9)

let test_greedy_regret_set_guards () =
  let data = Dataset.create [| [| 1. |] |] in
  Alcotest.check_raises "size" (Invalid_argument "Baselines.greedy_regret_set: size must be positive")
    (fun () ->
      ignore (Baselines.greedy_regret_set data ~size:0 ~sample_utilities:[ vec [| 1. |] ]));
  Alcotest.check_raises "sample" (Invalid_argument "Baselines.greedy_regret_set: empty utility sample")
    (fun () -> ignore (Baselines.greedy_regret_set data ~size:1 ~sample_utilities:[]))

let test_compare_with_truth () =
  let u = car_utility in
  (* The true I is {0,2,4}; offer {0,2,1}: 2 covered, 1 false positive. *)
  let result = [ Dataset.get car_table 0; Dataset.get car_table 2; Dataset.get car_table 1 ] in
  let c = Baselines.compare_with_truth ~eps:0.05 u ~data:car_table result in
  Alcotest.(check int) "truth size" 3 c.Baselines.truth_size;
  Alcotest.(check int) "covered" 2 c.Baselines.covered;
  Alcotest.(check int) "false positives" 1 c.Baselines.false_positives;
  Alcotest.(check (float 1e-9)) "coverage" (2. /. 3.) c.Baselines.coverage

let test_skyline_baseline_misses_indistinguishable () =
  (* The motivating failure mode: a dominated-but-indistinguishable tuple
     is invisible to the skyline baseline. *)
  let data = Dataset.create [| [| 1.; 1. |]; [| 0.99; 0.99 |] |] in
  let u = vec [| 0.5; 0.5 |] in
  let c = Baselines.compare_with_truth ~eps:0.05 u ~data (Baselines.skyline data) in
  Alcotest.(check int) "I has both" 2 c.Baselines.truth_size;
  Alcotest.(check bool) "skyline misses one" true (c.Baselines.coverage < 1.)

(* Impossibility (Theorem 1). *)

let test_impossibility_m () =
  Alcotest.(check int) "m = ceil(1.05*10)" 11 (Impossibility.m ~f:10 ~eps:0.05);
  Alcotest.(check int) "m exact multiple" 3 (Impossibility.m ~f:2 ~eps:0.5)

let test_impossibility_database_shape () =
  let data = Impossibility.database ~f:5 ~eps:0.1 in
  let m = Impossibility.m ~f:5 ~eps:0.1 in
  Alcotest.(check int) "size m+1" (m + 1) (Dataset.size data);
  (* Every tuple sums to 1. *)
  Array.iter
    (fun p ->
      Alcotest.(check (float 1e-9)) "x + y = 1" 1.
        (Tuple.get p 0 +. Tuple.get p 1))
    (Dataset.tuples data)

let test_impossibility_identical_rankings () =
  List.iter
    (fun (f, eps) ->
      Alcotest.(check bool) "indistinguishable users" true
        (Impossibility.identical_rankings ~f ~eps))
    [ (5, 0.05); (10, 0.1); (3, 0.5); (20, 0.01) ]

let test_impossibility_forced_false_positives () =
  List.iter
    (fun (f, eps) ->
      let forced = Impossibility.forced_false_positives ~f ~eps in
      Alcotest.(check bool)
        (Printf.sprintf "at least f=%d forced (got %d)" f forced)
        true (forced >= f))
    [ (5, 0.05); (10, 0.1); (3, 0.5); (7, 0.01) ]

let test_impossibility_u'_wants_everything () =
  let f = 6 and eps = 0.1 in
  let data = Impossibility.database ~f ~eps in
  let all = Indist.query_exact ~eps (Impossibility.utility_u' ~eps) data in
  Alcotest.(check int) "I(u') = D" (Dataset.size data) (Dataset.size all)

let test_impossibility_guards () =
  Alcotest.check_raises "f = 1" (Invalid_argument "Impossibility: f must be > 1")
    (fun () -> ignore (Impossibility.database ~f:1 ~eps:0.1))

(* Property: query_exact output = brute-force filter by definition. *)
let prop_query_matches_definition =
  QCheck2.Test.make ~count:60 ~name:"query matches Definition 2"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 1 + Rng.int rng 4 in
      let n = 1 + Rng.int rng 100 in
      let data = Generator.independent rng ~n ~d in
      let u = Utility.random rng ~d in
      let eps = 0.01 +. Rng.float rng 0.3 in
      let result = ids (Indist.query_exact ~eps u data) in
      let best, _ = Dataset.max_utility data u in
      let expected =
        Dataset.to_list data
        |> List.filter (fun p ->
               Indist.indistinguishable ~eps u (Tuple.values p) (Tuple.values best))
        |> List.map Tuple.id |> List.sort compare
      in
      result = expected)

(* Property: I is always a subset of the (1+eps)-skyline (Observation 3). *)
let prop_obs3_skyline_superset =
  QCheck2.Test.make ~count:60 ~name:"I subset of (1+eps)-skyline"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 1 + Rng.int rng 4 in
      let data = Generator.anti_correlated rng ~n:(20 + Rng.int rng 100) ~d in
      let u = Utility.random rng ~d in
      let eps = 0.01 +. Rng.float rng 0.2 in
      let truth = ids (Indist.query_exact ~eps u data) in
      let sky = ids (Skyline.prune_eps_dominated ~eps data) in
      List.for_all (fun id -> List.mem id sky) truth)

let () =
  Alcotest.run "core"
    [
      ( "indist",
        [
          Alcotest.test_case "paper car example" `Quick test_paper_car_example;
          Alcotest.test_case "symmetric" `Quick test_indistinguishable_symmetric;
          Alcotest.test_case "contains optimum" `Quick test_query_contains_optimum;
          Alcotest.test_case "alpha zero" `Quick test_alpha_zero_for_exact_answer;
          Alcotest.test_case "alpha positive" `Quick test_alpha_positive_for_overfull_answer;
          Alcotest.test_case "false negatives" `Quick test_false_negative_detection;
          Alcotest.test_case "observation 4" `Quick test_observation4_monotone;
          Alcotest.test_case "observation 1 top-k" `Quick test_observation1_topk;
          Alcotest.test_case "eps guard" `Quick test_eps_guard;
          Alcotest.test_case "generic utility linear" `Quick test_generic_utility_query;
          Alcotest.test_case "generic utility nonlinear" `Quick
            test_generic_utility_nonlinear;
        ] );
      ( "regret",
        [
          Alcotest.test_case "tuple regret" `Quick test_regret_values;
          Alcotest.test_case "set regret" `Quick test_set_regret;
          Alcotest.test_case "observation 2" `Quick test_observation2_regret_equivalence;
          Alcotest.test_case "max regret ratio" `Quick test_max_regret_ratio;
        ] );
      ( "region",
        [
          Alcotest.test_case "observe narrows" `Quick test_region_observe_narrows;
          Alcotest.test_case "no losers no cut" `Quick test_region_no_losers_no_cut;
          Alcotest.test_case "delta weaker" `Quick test_region_delta_weaker;
          Alcotest.test_case "true utility stays" `Quick
            test_region_consistency_with_true_utility;
        ] );
      ( "pruning",
        [
          Alcotest.test_case "fast keeps truth" `Quick test_box_prune_fast_keeps_ground_truth;
          Alcotest.test_case "exact keeps truth" `Quick
            test_box_prune_exact_subset_of_fast_input;
          Alcotest.test_case "degenerate box sharp" `Quick
            test_box_prune_degenerate_box_is_sharp;
          Alcotest.test_case "region prune keeps truth" `Quick
            test_region_prune_no_false_negatives;
          Alcotest.test_case "region prune prunes" `Quick test_region_prune_actually_prunes;
          Alcotest.test_case "utility floor" `Quick test_utility_floor_bounds_optimum;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "top-k and skyline" `Quick test_baselines_topk_and_skyline;
          Alcotest.test_case "greedy regret set" `Quick test_greedy_regret_set;
          Alcotest.test_case "greedy guards" `Quick test_greedy_regret_set_guards;
          Alcotest.test_case "compare with truth" `Quick test_compare_with_truth;
          Alcotest.test_case "skyline misses indistinguishable" `Quick
            test_skyline_baseline_misses_indistinguishable;
        ] );
      ( "impossibility",
        [
          Alcotest.test_case "m" `Quick test_impossibility_m;
          Alcotest.test_case "database shape" `Quick test_impossibility_database_shape;
          Alcotest.test_case "identical rankings" `Quick test_impossibility_identical_rankings;
          Alcotest.test_case "forced false positives" `Quick
            test_impossibility_forced_false_positives;
          Alcotest.test_case "u' wants everything" `Quick test_impossibility_u'_wants_everything;
          Alcotest.test_case "guards" `Quick test_impossibility_guards;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_query_matches_definition;
          QCheck_alcotest.to_alcotest prop_obs3_skyline_superset;
        ] );
    ]
