(* Tests for the evaluation harness (lib/experiments) and for algorithm
   robustness under adversarial / inconsistent users (failure injection). *)

module Experiments = Indq_experiments.Experiments
module Report = Indq_experiments.Report
module Algo = Indq_core.Algo
module Real_points = Indq_core.Real_points
module Dataset = Indq_dataset.Dataset
module Generator = Indq_dataset.Generator
module Oracle = Indq_user.Oracle
module Utility = Indq_user.Utility
module Rng = Indq_util.Rng

let tiny_points ~seed =
  let rng = Rng.create seed in
  let data = Generator.independent rng ~n:60 ~d:2 in
  let config = Algo.default_config ~d:2 in
  [ (1., data, config); (2., data, { config with Algo.q = 4 }) ]

let test_run_sweep_shape () =
  let sweep =
    Experiments.run_sweep ~title:"t" ~x_label:"x" ~algorithms:Algo.all
      ~points:(tiny_points ~seed:3) ~utilities:2 ~user_delta:0. ~seed:5 ()
  in
  Alcotest.(check int) "x count" 2 (List.length sweep.Experiments.x_values);
  Alcotest.(check int) "rows" 2 (Array.length sweep.Experiments.cells);
  Alcotest.(check int) "cols" (List.length Algo.all)
    (Array.length sweep.Experiments.cells.(0));
  Array.iter
    (Array.iter (fun c ->
         Alcotest.(check bool) "alpha >= 0" true (c.Experiments.alpha_mean >= 0.);
         Alcotest.(check bool) "sizes >= 1" true (c.Experiments.output_size_mean >= 1.)))
    sweep.Experiments.cells

let test_sweep_no_false_negatives () =
  let sweep =
    Experiments.run_sweep ~title:"t" ~x_label:"x" ~algorithms:Algo.all
      ~points:(tiny_points ~seed:11) ~utilities:3 ~user_delta:0. ~seed:13 ()
  in
  Alcotest.(check int) "audit zero" 0 (Report.false_negative_total sweep)

let test_sweep_deterministic () =
  let run () =
    Experiments.run_sweep ~title:"t" ~x_label:"x" ~algorithms:[ Algo.Squeeze_u ]
      ~points:(tiny_points ~seed:17) ~utilities:2 ~user_delta:0.05 ~seed:19 ()
  in
  let a = run () and b = run () in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j c ->
          Alcotest.(check (float 0.)) "same alpha" c.Experiments.alpha_mean
            b.Experiments.cells.(i).(j).Experiments.alpha_mean)
        row)
    a.Experiments.cells

let test_load_scaling () =
  let small = Experiments.load ~scale:0.02 ~seed:1 Experiments.Nba_like in
  Alcotest.(check int) "scaled size" (max 500 (int_of_float (0.02 *. 21961.)))
    (Dataset.size small);
  Alcotest.check_raises "scale guard"
    (Invalid_argument "Experiments.load: scale must be positive") (fun () ->
      ignore (Experiments.load ~scale:0. ~seed:1 Experiments.Nba_like))

let test_dataset_names () =
  Alcotest.(check string) "island" "Island" (Experiments.dataset_name Experiments.Island_like);
  Alcotest.(check string) "nba" "NBA" (Experiments.dataset_name Experiments.Nba_like);
  Alcotest.(check string) "house" "House" (Experiments.dataset_name Experiments.House_like)

let test_report_tables_render () =
  let sweep =
    Experiments.run_sweep ~title:"render check" ~x_label:"x"
      ~algorithms:[ Algo.Squeeze_u; Algo.MinR ] ~points:(tiny_points ~seed:23)
      ~utilities:1 ~user_delta:0. ~seed:29 ()
  in
  let contains hay needle =
    let hl = String.length hay and nl = String.length needle in
    let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
    scan 0
  in
  let alpha = Indq_util.Tabulate.render (Report.alpha_table sweep) in
  Alcotest.(check bool) "has title" true (contains alpha "render check");
  Alcotest.(check bool) "has algorithms" true
    (contains alpha "Squeeze-u" && contains alpha "MinR");
  let time = Indq_util.Tabulate.render (Report.time_table sweep) in
  Alcotest.(check bool) "time table" true (contains time "time (s)")

(* --- failure injection: users the model does not cover --- *)

(* An adversarial chooser that always picks the worst option must still
   produce a structurally valid run (and cannot crash the region logic,
   even though its answers may be mutually inconsistent). *)
let test_adversarial_worst_picker () =
  let rng = Rng.create 31 in
  let data = Generator.anti_correlated rng ~n:50 ~d:3 in
  let u = Utility.random rng ~d:3 in
  let worst options =
    let worst = ref 0 in
    Array.iteri
      (fun i p -> if Utility.value u p < Utility.value u options.(!worst) then worst := i)
      options;
    !worst
  in
  List.iter
    (fun strategy ->
      let oracle = Oracle.of_chooser worst in
      let result =
        Real_points.run ~trials:3 strategy ~data ~s:3 ~q:9 ~eps:0.05 ~oracle
          ~rng:(Rng.split rng)
      in
      Alcotest.(check bool) "non-empty output" true
        (Dataset.size result.Real_points.output >= 1))
    [ Real_points.Random; Real_points.MinR; Real_points.MinD ]

(* A random (uniform, utility-free) clicker: outputs remain valid subsets
   of the candidates and runs terminate. *)
let test_random_clicker () =
  let rng = Rng.create 37 in
  let data = Generator.independent rng ~n:80 ~d:3 in
  let click_rng = Rng.create 41 in
  let oracle = Oracle.of_chooser (fun options -> Rng.int click_rng (Array.length options)) in
  let config = Algo.default_config ~d:3 in
  List.iter
    (fun name ->
      let result = Algo.run name config ~data ~oracle ~rng:(Rng.split rng) in
      Alcotest.(check bool)
        (Algo.to_string name ^ " output non-empty")
        true
        (Dataset.size result.Algo.output >= 1))
    Algo.all

(* A user whose real error exceeds the modeled delta: soundness is not
   guaranteed (the paper's model excludes this), but runs must complete and
   report coherent sizes. *)
let test_under_modeled_error () =
  let rng = Rng.create 43 in
  let data = Generator.independent rng ~n:60 ~d:3 in
  let u = Utility.random rng ~d:3 in
  let oracle = Oracle.with_error ~delta:0.3 ~rng:(Rng.split rng) u in
  let config = { (Algo.default_config ~d:3) with Algo.delta = 0.01 } in
  List.iter
    (fun name ->
      let result = Algo.run name config ~data ~oracle ~rng:(Rng.split rng) in
      Alcotest.(check bool) "completes" true (Dataset.size result.Algo.output >= 0))
    Algo.all

let () =
  Alcotest.run "experiments"
    [
      ( "harness",
        [
          Alcotest.test_case "sweep shape" `Quick test_run_sweep_shape;
          Alcotest.test_case "no false negatives" `Quick test_sweep_no_false_negatives;
          Alcotest.test_case "deterministic" `Quick test_sweep_deterministic;
          Alcotest.test_case "load scaling" `Quick test_load_scaling;
          Alcotest.test_case "dataset names" `Quick test_dataset_names;
          Alcotest.test_case "report renders" `Quick test_report_tables_render;
        ] );
      ( "failure-injection",
        [
          Alcotest.test_case "adversarial worst picker" `Quick test_adversarial_worst_picker;
          Alcotest.test_case "random clicker" `Quick test_random_clicker;
          Alcotest.test_case "under-modeled error" `Quick test_under_modeled_error;
        ] );
    ]
