(* Tests for Indq_obs.Profile: span-tree reconstruction from causal trace
   events, exact self-time attribution (the per-phase self column must
   telescope back to the traced wall time), the folded-stack and
   speedscope renderings, and the JSONL round trip of the span events a
   real run emits. *)

module Trace = Indq_obs.Trace
module Span = Indq_obs.Span
module Profile = Indq_obs.Profile
module Algo = Indq_core.Algo
module Generator = Indq_dataset.Generator
module Utility = Indq_user.Utility
module Oracle = Indq_user.Oracle
module Rng = Indq_util.Rng

(* Two "a" roots, the first with children "b" then "c":
     a: [0, 5]   b: [1, 3]   c: [3, 4]      a: [6, 8]
   Self times: a = (5-3) + 2 = 4, b = 2, c = 1; total = 7. *)
let sample_events =
  [
    Trace.Span_started { id = 1; parent = 0; name = "a"; at = 0. };
    Trace.Span_started { id = 2; parent = 1; name = "b"; at = 1. };
    Trace.Span_finished { id = 2; at = 3. };
    Trace.Span_started { id = 3; parent = 1; name = "c"; at = 3. };
    Trace.Span_finished { id = 3; at = 4. };
    Trace.Span_finished { id = 1; at = 5. };
    Trace.Span_started { id = 4; parent = 0; name = "a"; at = 6. };
    Trace.Span_finished { id = 4; at = 8. };
  ]

let phase_by name t =
  match
    List.find_opt (fun p -> String.equal p.Profile.phase_name name) t.Profile.phases
  with
  | Some p -> p
  | None -> Alcotest.failf "phase %s missing" name

let test_tree_reconstruction () =
  let t = Profile.of_events sample_events in
  Alcotest.(check int) "two roots" 2 (List.length t.Profile.roots);
  let first = List.hd t.Profile.roots in
  Alcotest.(check string) "root name" "a" first.Profile.node_name;
  Alcotest.(check (list string)) "children in start order" [ "b"; "c" ]
    (List.map (fun n -> n.Profile.node_name) first.Profile.n_children);
  Alcotest.(check (float 0.)) "total" 7. t.Profile.total

let test_self_times_telescope () =
  let t = Profile.of_events sample_events in
  Alcotest.(check (float 0.)) "a self" 4. (phase_by "a" t).Profile.self;
  Alcotest.(check (float 0.)) "b self" 2. (phase_by "b" t).Profile.self;
  Alcotest.(check (float 0.)) "c self" 1. (phase_by "c" t).Profile.self;
  Alcotest.(check int) "a calls" 2 (phase_by "a" t).Profile.calls;
  let self_sum =
    List.fold_left (fun acc p -> acc +. p.Profile.self) 0. t.Profile.phases
  in
  Alcotest.(check (float 0.)) "selves sum to total" t.Profile.total self_sum

let test_folded_output () =
  let t = Profile.of_events sample_events in
  (* The two root "a" frames squash into one folded line; weights are
     self-µs. *)
  Alcotest.(check string) "folded stacks"
    "a 4000000\na;b 2000000\na;c 1000000\n" (Profile.folded t)

let test_speedscope_output () =
  let t = Profile.of_events sample_events in
  let s = Profile.speedscope ~name:"unit" t in
  let contains needle =
    let hl = String.length s and nl = String.length needle in
    let rec scan i =
      i + nl <= hl && (String.sub s i nl = needle || scan (i + 1))
    in
    scan 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains needle))
    [
      {|"type":"evented"|};
      {|"unit":"seconds"|};
      (* endValue is the last root stop (8), not the 7s of root self time:
         the gap between the roots is real trace time. *)
      {|"endValue":8|};
      {|{"name":"a"}|};
      {|{"type":"O","frame":0,"at":0}|};
      {|{"type":"C","frame":0,"at":8}|};
    ]

let test_unclosed_span_closed_at_t_max () =
  let t =
    Profile.of_events
      [
        Trace.Span_started { id = 1; parent = 0; name = "a"; at = 0. };
        Trace.Span_started { id = 2; parent = 1; name = "b"; at = 1. };
        Trace.Span_finished { id = 2; at = 4. };
        (* id 1 never finishes: a truncated trace. *)
      ]
  in
  let a = List.hd t.Profile.roots in
  Alcotest.(check (float 0.)) "closed at last timestamp" 4. a.Profile.n_stop;
  Alcotest.(check (float 0.)) "total still telescopes" 4. t.Profile.total

let test_of_lines_skips_garbage () =
  let lines =
    [
      "not json";
      {|{"type":"span_started","id":1,"parent":0,"name":"a","at":0}|};
      {|{"type":"round_started","round":1,"candidates":5}|};
      "";
      {|{"type":"span_finished","id":1,"at":2}|};
      {|{"type":"span_finished"}|};
    ]
  in
  let t = Profile.of_lines lines in
  Alcotest.(check int) "one root" 1 (List.length t.Profile.roots);
  Alcotest.(check (float 0.)) "total" 2. t.Profile.total

let test_span_event_json_round_trip () =
  List.iter
    (fun event ->
      let line = Trace.to_json event in
      match Trace.of_json_line line with
      | None -> Alcotest.failf "unparsable: %s" line
      | Some back ->
        Alcotest.(check string) "stable round trip" line (Trace.to_json back))
    [
      Trace.Span_started
        { id = 12; parent = 3; name = "squeeze_u.ladder"; at = 1754640000.25 };
      Trace.Span_finished { id = 12; at = 1754640000.625 };
      (* Full-precision timestamps must survive: %g would truncate an
         epoch-scale float. *)
      Trace.Span_started
        { id = 1; parent = 0; name = "x"; at = 1754640000.1234567 };
    ]

let test_profile_of_real_run () =
  let lines = ref [] in
  Trace.set_sink (fun e -> lines := Trace.to_json e :: !lines);
  Span.enable ();
  let rng = Rng.create 4242 in
  let d = 3 in
  let data = Generator.independent rng ~n:80 ~d in
  let u = Utility.random rng ~d in
  ignore
    (Algo.run Algo.Squeeze_u (Algo.default_config ~d) ~data
       ~oracle:(Oracle.exact u) ~rng:(Rng.split rng));
  Span.disable ();
  Trace.clear_sink ();
  let t = Profile.of_lines (List.rev !lines) in
  Alcotest.(check bool) "spans traced" true (t.Profile.roots <> []);
  Alcotest.(check bool) "positive wall time" true (t.Profile.total > 0.);
  let self_sum =
    List.fold_left (fun acc p -> acc +. p.Profile.self) 0. t.Profile.phases
  in
  Alcotest.(check (float 1e-9)) "selves sum to traced total" t.Profile.total
    self_sum;
  (* Every phase a real run emits must be documented in the catalog
     (IND006 holds the catalog itself against the docs). *)
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (p.Profile.phase_name ^ " documented")
        true
        (Profile.phase_doc p.Profile.phase_name <> None))
    t.Profile.phases

let test_catalog_sorted_unique () =
  let names = List.map fst Profile.catalog in
  Alcotest.(check (list string)) "sorted"
    (List.sort_uniq String.compare names)
    names

let () =
  Alcotest.run "profile"
    [
      ( "tree",
        [
          Alcotest.test_case "reconstruction" `Quick test_tree_reconstruction;
          Alcotest.test_case "self times telescope" `Quick
            test_self_times_telescope;
          Alcotest.test_case "unclosed span" `Quick
            test_unclosed_span_closed_at_t_max;
          Alcotest.test_case "of_lines skips garbage" `Quick
            test_of_lines_skips_garbage;
        ] );
      ( "render",
        [
          Alcotest.test_case "folded" `Quick test_folded_output;
          Alcotest.test_case "speedscope" `Quick test_speedscope_output;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span event round trip" `Quick
            test_span_event_json_round_trip;
          Alcotest.test_case "profile of real run" `Quick
            test_profile_of_real_run;
          Alcotest.test_case "catalog sorted" `Quick test_catalog_sorted_unique;
        ] );
    ]
