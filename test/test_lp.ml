(* Unit and property tests for the two-phase simplex LP solver. *)

module Lp = Indq_lp.Lp
module Rng = Indq_util.Rng
module Vec = Indq_linalg.Vec

let vec = Vec.of_array

let check_float = Alcotest.(check (float 1e-6))

let solve_max ~n ~objective cs =
  match Lp.maximize ~n ~objective cs with
  | Lp.Optimal s -> s
  | Lp.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Lp.Unbounded -> Alcotest.fail "unexpected unbounded"
  | Lp.Failed e -> Alcotest.fail ("unexpected failure: " ^ Lp.error_message e)

let solve_min ~n ~objective cs =
  match Lp.minimize ~n ~objective cs with
  | Lp.Optimal s -> s
  | Lp.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Lp.Unbounded -> Alcotest.fail "unexpected unbounded"
  | Lp.Failed e -> Alcotest.fail ("unexpected failure: " ^ Lp.error_message e)

(* max x + y st x + 2y <= 4, 3x + y <= 6 -> optimum at (1.6, 1.2), value 2.8 *)
let test_textbook_max () =
  let cs =
    [ Lp.constr (vec [| 1.; 2. |]) Lp.Le 4.; Lp.constr (vec [| 3.; 1. |]) Lp.Le 6. ]
  in
  let s = solve_max ~n:2 ~objective:(vec [| 1.; 1. |]) cs in
  check_float "value" 2.8 s.objective;
  check_float "x" 1.6 (Vec.get s.point 0);
  check_float "y" 1.2 (Vec.get s.point 1)

(* min 2x + 3y st x + y >= 4, x >= 1 -> optimum at (4, 0), value 8 *)
let test_textbook_min () =
  let cs =
    [ Lp.constr (vec [| 1.; 1. |]) Lp.Ge 4.; Lp.constr (vec [| 1.; 0. |]) Lp.Ge 1. ]
  in
  let s = solve_min ~n:2 ~objective:(vec [| 2.; 3. |]) cs in
  check_float "value" 8. s.objective;
  check_float "x" 4. (Vec.get s.point 0);
  check_float "y" 0. (Vec.get s.point 1)

let test_equality_constraint () =
  (* max x st x + y = 1 -> x = 1 *)
  let cs = [ Lp.constr (vec [| 1.; 1. |]) Lp.Eq 1. ] in
  let s = solve_max ~n:2 ~objective:(vec [| 1.; 0. |]) cs in
  check_float "value" 1. s.objective;
  check_float "y" 0. (Vec.get s.point 1)

let test_infeasible () =
  let cs =
    [ Lp.constr (vec [| 1.; 1. |]) Lp.Le 1.; Lp.constr (vec [| 1.; 1. |]) Lp.Ge 2. ]
  in
  match Lp.maximize ~n:2 ~objective:(vec [| 1.; 0. |]) cs with
  | Lp.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  let cs = [ Lp.constr (vec [| 1.; -1. |]) Lp.Le 1. ] in
  match Lp.maximize ~n:2 ~objective:(vec [| 1.; 1. |]) cs with
  | Lp.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_no_constraints_min () =
  match Lp.minimize ~n:3 ~objective:(vec [| 1.; 2.; 3. |]) [] with
  | Lp.Optimal s -> check_float "value" 0. s.objective
  | _ -> Alcotest.fail "expected optimal at origin"

let test_no_constraints_unbounded () =
  match Lp.maximize ~n:2 ~objective:(vec [| 1.; 0. |]) [] with
  | Lp.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_negative_rhs_normalization () =
  (* x - y <= -1 means y >= x + 1; max x st also y <= 2 -> x = 1. *)
  let cs =
    [ Lp.constr (vec [| 1.; -1. |]) Lp.Le (-1.); Lp.constr (vec [| 0.; 1. |]) Lp.Le 2. ]
  in
  let s = solve_max ~n:2 ~objective:(vec [| 1.; 0. |]) cs in
  check_float "value" 1. s.objective

let test_degenerate_vertex () =
  (* Three constraints meeting at one vertex; Bland's rule must not cycle. *)
  let cs =
    [
      Lp.constr (vec [| 1.; 1. |]) Lp.Le 2.;
      Lp.constr (vec [| 1.; 0. |]) Lp.Le 1.;
      Lp.constr (vec [| 0.; 1. |]) Lp.Le 1.;
    ]
  in
  let s = solve_max ~n:2 ~objective:(vec [| 1.; 1. |]) cs in
  check_float "value" 2. s.objective

let test_simplex_vertex_objective () =
  (* Over the probability simplex, max c.x is max_i c_i. *)
  let cs = [ Lp.constr (vec [| 1.; 1.; 1. |]) Lp.Eq 1. ] in
  let s = solve_max ~n:3 ~objective:(vec [| 0.3; 0.9; 0.5 |]) cs in
  check_float "value" 0.9 s.objective;
  check_float "x1" 1. (Vec.get s.point 1)

let test_redundant_equalities () =
  (* Duplicate equality rows leave a basic artificial on a zero row; the
     solver must still answer. *)
  let cs =
    [
      Lp.constr (vec [| 1.; 1. |]) Lp.Eq 1.;
      Lp.constr (vec [| 1.; 1. |]) Lp.Eq 1.;
      Lp.constr (vec [| 2.; 2. |]) Lp.Eq 2.;
    ]
  in
  let s = solve_max ~n:2 ~objective:(vec [| 1.; 2. |]) cs in
  check_float "value" 2. s.objective

let test_feasible_point () =
  let cs =
    [ Lp.constr (vec [| 1.; 1. |]) Lp.Eq 1.; Lp.constr (vec [| 1.; -1. |]) Lp.Ge 0. ]
  in
  match Lp.feasible_point ~n:2 cs with
  | Some p ->
    check_float "sum" 1. (Vec.get p 0 +. Vec.get p 1);
    Alcotest.(check bool) "x >= y" true (Vec.get p 0 >= Vec.get p 1 -. 1e-9)
  | None -> Alcotest.fail "should be feasible"

let test_ge_with_positive_rhs () =
  (* Exercises the artificial-variable path (Ge rows with rhs > 0 cannot be
     rewritten as Le rows). *)
  let cs =
    [ Lp.constr (vec [| 1.; 1. |]) Lp.Ge 2.; Lp.constr (vec [| 1.; 0. |]) Lp.Le 1.5 ]
  in
  let s = solve_min ~n:2 ~objective:(vec [| 3.; 1. |]) cs in
  (* min 3x + y st x + y >= 2, x <= 1.5 -> all weight on y: (0, 2). *)
  check_float "value" 2. s.objective;
  check_float "y" 2. (Vec.get s.point 1)

let test_mixed_equalities_phase1 () =
  (* x + y = 1 and x - y = 0.5 pin (0.75, 0.25); objective irrelevant. *)
  let cs =
    [ Lp.constr (vec [| 1.; 1. |]) Lp.Eq 1.; Lp.constr (vec [| 1.; -1. |]) Lp.Eq 0.5 ]
  in
  let s = solve_max ~n:2 ~objective:(vec [| 1.; 7. |]) cs in
  check_float "x" 0.75 (Vec.get s.point 0);
  check_float "y" 0.25 (Vec.get s.point 1)

let test_zero_rhs_ge_rewrite () =
  (* w . x >= 0 cuts are the hot path; check they behave like constraints,
     not like no-ops: max y st y - x <= 0 (i.e. x - y >= 0), x <= 1. *)
  let cs =
    [ Lp.constr (vec [| 1.; -1. |]) Lp.Ge 0.; Lp.constr (vec [| 1.; 0. |]) Lp.Le 1. ]
  in
  let s = solve_max ~n:2 ~objective:(vec [| 0.; 1. |]) cs in
  check_float "y bounded by x" 1. s.objective

let test_invalid_inputs () =
  Alcotest.check_raises "bad objective length" (Invalid_argument "Lp: objective length <> n")
    (fun () -> ignore (Lp.maximize ~n:2 ~objective:(vec [| 1. |]) []));
  Alcotest.check_raises "bad constraint length"
    (Invalid_argument "Lp: constraint coefficient length <> n") (fun () ->
      ignore (Lp.maximize ~n:2 ~objective:(vec [| 1.; 1. |]) [ Lp.constr (vec [| 1. |]) Lp.Le 1. ]))

(* Property: on random bounded problems, the reported optimum is feasible and
   no random feasible point beats it. *)
let random_bounded_problem rng =
  let n = 2 + Rng.int rng 3 in
  let m = 1 + Rng.int rng 5 in
  (* Box plus random <= cuts keeps the problem bounded and feasible at 0. *)
  let box =
    List.init n (fun i ->
        let coeffs = Vec.init n (fun j -> if i = j then 1. else 0.) in
        Lp.constr coeffs Lp.Le (0.5 +. Rng.uniform rng))
  in
  let cuts =
    List.init m (fun _ ->
        let coeffs = Vec.init n (fun _ -> Rng.uniform rng) in
        Lp.constr coeffs Lp.Le (0.1 +. Rng.uniform rng))
  in
  let objective = Vec.init n (fun _ -> Rng.in_range rng (-1.) 1.) in
  (n, objective, box @ cuts)

let prop_optimal_dominates_samples =
  QCheck2.Test.make ~count:100 ~name:"lp optimum beats random feasible points"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n, objective, cs = random_bounded_problem rng in
      match Lp.maximize ~n ~objective cs with
      | Lp.Unbounded -> false (* impossible: box-bounded *)
      | Lp.Infeasible -> false (* impossible: origin feasible *)
      | Lp.Failed _ -> false (* impossible: tiny well-posed problem *)
      | Lp.Optimal { objective = best; point } ->
        let feasible p =
          List.for_all
            (fun (c : Lp.constr) ->
              match c.relation with
              | Lp.Le -> Vec.dot c.coeffs p <= c.rhs +. 1e-6
              | Lp.Ge -> Vec.dot c.coeffs p >= c.rhs -. 1e-6
              | Lp.Eq -> Float.abs (Vec.dot c.coeffs p -. c.rhs) <= 1e-6)
            cs
          && Vec.for_all (fun x -> x >= -1e-9) p
        in
        if not (feasible point) then false
        else begin
          (* Random feasible candidates obtained by scaling random rays until
             feasible; none may exceed the optimum. *)
          let ok = ref true in
          for _ = 1 to 30 do
            let p = Vec.init n (fun _ -> Rng.uniform rng *. 0.2) in
            if feasible p && Vec.dot objective p > best +. 1e-6 then
              ok := false
          done;
          !ok
        end)

(* The live dual-simplex path must change cost, never answers: optimizing
   any bounded problem through a Live handle returns the same verdict and
   an equal optimum as the cold two-phase solve, both before and after
   adding one halfspace the dual-simplex way. *)
let random_extra_cut rng n =
  let coeffs = Vec.init n (fun _ -> Rng.in_range rng (-0.5) 1.) in
  Lp.constr coeffs Lp.Le (Rng.in_range rng (-0.05) 0.4)

let prop_live_matches_cold =
  QCheck2.Test.make ~count:80 ~name:"live optimize: same verdict and optimum"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n, objective, cs = random_bounded_problem rng in
      match Lp.Live.create ~n cs with
      | `Infeasible | `Failed _ -> false (* impossible: origin feasible *)
      | `Feasible h -> (
        match (Lp.Live.optimize h ~objective `Maximize, Lp.maximize ~n ~objective cs) with
        | Lp.Optimal live, Lp.Optimal cold ->
          Float.abs (live.objective -. cold.objective) < 1e-6
        | _ -> false))

let prop_add_cut_matches_cold =
  QCheck2.Test.make ~count:80
    ~name:"live add_cut: dual verdict and optimum match the cold solve"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n, objective, cs = random_bounded_problem rng in
      let cut = random_extra_cut rng n in
      let cs' = cs @ [ cut ] in
      match Lp.Live.create ~n cs with
      | `Infeasible | `Failed _ -> false
      | `Feasible h -> (
        match Lp.Live.optimize h ~objective `Maximize with
        | Lp.Optimal _ -> (
          match (Lp.Live.add_cut h cut, Lp.maximize ~n ~objective cs') with
          | (`Sat | `Reopt _), Lp.Optimal cold -> (
            match Lp.Live.optimize h ~objective `Maximize with
            | Lp.Optimal live ->
              Float.abs (live.objective -. cold.objective) < 1e-6
            | _ -> false)
          | `Infeasible, Lp.Infeasible -> true
          | _ -> false)
        | _ -> false))

(* Replay determinism: the dual path is a pure function of its inputs, so
   re-running the identical create / optimize / add_cut / optimize sequence
   must reproduce the optimum bit-for-bit. *)
let prop_live_replay_bit_equal =
  QCheck2.Test.make ~count:60 ~name:"live replay is bit-identical"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let run () =
        let rng = Rng.create seed in
        let n, objective, cs = random_bounded_problem rng in
        let cut = random_extra_cut rng n in
        match Lp.Live.create ~n cs with
        | `Infeasible | `Failed _ -> None
        | `Feasible h -> (
          match Lp.Live.add_cut h cut with
          | `Infeasible | `Failed _ -> Some nan
          | `Sat | `Reopt _ -> (
            match Lp.Live.optimize h ~objective `Maximize with
            | Lp.Optimal s -> Some s.objective
            | _ -> None))
      in
      match (run (), run ()) with
      | Some a, Some b ->
        (Float.is_nan a && Float.is_nan b)
        || Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
      | None, None -> true
      | _ -> false)

(* Forking: a copy refines independently and the parent's standing basis
   (hence its answers) is untouched by cuts added to the fork. *)
let test_live_copy_isolation () =
  let cs =
    [ Lp.constr (vec [| 1.; 2. |]) Lp.Le 4.; Lp.constr (vec [| 3.; 1. |]) Lp.Le 6. ]
  in
  match Lp.Live.create ~n:2 cs with
  | `Infeasible | `Failed _ -> Alcotest.fail "textbook problem is feasible"
  | `Feasible parent -> (
    let fork = Lp.Live.copy parent in
    (match Lp.Live.add_cut fork (Lp.constr (vec [| 1.; 0. |]) Lp.Le 0.5) with
    | `Sat | `Reopt _ -> ()
    | `Infeasible | `Failed _ -> Alcotest.fail "fork cut is satisfiable");
    match
      ( Lp.Live.optimize parent ~objective:(vec [| 1.; 1. |]) `Maximize,
        Lp.Live.optimize fork ~objective:(vec [| 1.; 1. |]) `Maximize )
    with
    | Lp.Optimal p, Lp.Optimal f ->
      check_float "parent unchanged" 2.8 p.objective;
      Alcotest.(check bool) "fork tighter" true (f.objective < 2.8 -. 1e-9)
    | _ -> Alcotest.fail "both solves are bounded and feasible")

let prop_minimize_is_negated_maximize =
  QCheck2.Test.make ~count:60 ~name:"min f = -max(-f)"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n, objective, cs = random_bounded_problem rng in
      let neg = Vec.neg objective in
      match (Lp.minimize ~n ~objective cs, Lp.maximize ~n ~objective:neg cs) with
      | Lp.Optimal a, Lp.Optimal b -> Float.abs (a.objective +. b.objective) < 1e-6
      | Lp.Infeasible, Lp.Infeasible -> true
      | Lp.Unbounded, Lp.Unbounded -> true
      | _ -> false)

let () =
  Alcotest.run "lp"
    [
      ( "simplex-solver",
        [
          Alcotest.test_case "textbook max" `Quick test_textbook_max;
          Alcotest.test_case "textbook min" `Quick test_textbook_min;
          Alcotest.test_case "equality" `Quick test_equality_constraint;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "no constraints min" `Quick test_no_constraints_min;
          Alcotest.test_case "no constraints unbounded" `Quick
            test_no_constraints_unbounded;
          Alcotest.test_case "negative rhs" `Quick test_negative_rhs_normalization;
          Alcotest.test_case "degenerate vertex" `Quick test_degenerate_vertex;
          Alcotest.test_case "simplex vertex" `Quick test_simplex_vertex_objective;
          Alcotest.test_case "redundant equalities" `Quick test_redundant_equalities;
          Alcotest.test_case "feasible point" `Quick test_feasible_point;
          Alcotest.test_case "ge with positive rhs" `Quick test_ge_with_positive_rhs;
          Alcotest.test_case "mixed equalities" `Quick test_mixed_equalities_phase1;
          Alcotest.test_case "zero-rhs ge rewrite" `Quick test_zero_rhs_ge_rewrite;
          Alcotest.test_case "invalid inputs" `Quick test_invalid_inputs;
          Alcotest.test_case "live copy isolation" `Quick test_live_copy_isolation;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_optimal_dominates_samples;
          QCheck_alcotest.to_alcotest prop_minimize_is_negated_maximize;
          QCheck_alcotest.to_alcotest prop_live_matches_cold;
          QCheck_alcotest.to_alcotest prop_add_cut_matches_cold;
          QCheck_alcotest.to_alcotest prop_live_replay_bit_equal;
        ] );
    ]
