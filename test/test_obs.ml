(* Tests for the observability layer (Indq_obs): domain-local counters,
   nestable timing spans, and the structured trace stream — including the
   zero-cost-when-disabled contract, the JSONL round trip, and the
   snapshot/merge API that moves deltas between domains. *)

module Counter = Indq_obs.Counter
module Span = Indq_obs.Span
module Trace = Indq_obs.Trace
module Obs = Indq_obs.Obs
module Algo = Indq_core.Algo
module Dataset = Indq_dataset.Dataset
module Generator = Indq_dataset.Generator
module Utility = Indq_user.Utility
module Oracle = Indq_user.Oracle
module Rng = Indq_util.Rng

(* --- counters --- *)

let test_counter_incr_and_add () =
  let c = Counter.make "test.alpha" in
  let v0 = Counter.value c in
  Counter.incr c;
  Counter.incr c;
  Counter.add c 2.5;
  Alcotest.(check (float 1e-9)) "incr + add" (v0 +. 4.5) (Counter.value c);
  Alcotest.(check (float 1e-9)) "get by name" (v0 +. 4.5)
    (Counter.get "test.alpha");
  Alcotest.(check string) "name" "test.alpha" (Counter.name c)

let test_counter_handles_shared () =
  let a = Counter.make "test.shared" in
  let b = Counter.make "test.shared" in
  let v0 = Counter.value a in
  Counter.incr a;
  Alcotest.(check (float 1e-9)) "same cell" (v0 +. 1.) (Counter.value b)

let test_counter_snapshot_sorted () =
  ignore (Counter.make "test.zz");
  ignore (Counter.make "test.aa");
  let names = List.map fst (Counter.snapshot ()) in
  Alcotest.(check (list string)) "sorted" (List.sort compare names) names

let test_counter_since () =
  let c = Counter.make "test.since" in
  let d = Counter.make "test.untouched" in
  ignore d;
  let before = Counter.snapshot () in
  Counter.add c 3.;
  let delta = Counter.since before in
  Alcotest.(check (float 1e-9)) "bumped counter delta" 3.
    (List.assoc "test.since" delta);
  (* Zero deltas are kept, so lookups are total. *)
  Alcotest.(check (float 1e-9)) "untouched counter delta" 0.
    (List.assoc "test.untouched" delta)

let test_counter_since_new_counter () =
  let before = Counter.snapshot () in
  let c = Counter.make "test.born-later" in
  Counter.add c 7.;
  Alcotest.(check (float 1e-9)) "created-after counter reported in full" 7.
    (List.assoc "test.born-later" (Counter.since before))

let test_counter_reset_all () =
  let c = Counter.make "test.reset" in
  Counter.add c 5.;
  Counter.reset_all ();
  Alcotest.(check (float 1e-9)) "zeroed" 0. (Counter.value c);
  List.iter
    (fun (name, v) -> Alcotest.(check (float 1e-9)) (name ^ " zeroed") 0. v)
    (Counter.snapshot ())

(* --- domain isolation and the snapshot/merge protocol --- *)

let test_counter_values_domain_local () =
  let c = Counter.make "test.domain.counter" in
  let before = Counter.value c in
  let child_saw =
    Domain.join
      (Domain.spawn (fun () ->
           let v0 = Counter.value c in
           Counter.add c 5.;
           (v0, Counter.value c)))
  in
  Alcotest.(check (pair (float 1e-9) (float 1e-9)))
    "child starts at 0 and sees only its own bumps" (0., 5.) child_saw;
  Alcotest.(check (float 1e-9)) "parent untouched" before (Counter.value c)

let test_obs_delta_merges_across_domains () =
  let c = Counter.make "test.domain.merge" in
  let before = Counter.value c in
  let delta =
    Domain.join
      (Domain.spawn (fun () ->
           let t0 = Obs.snapshot () in
           Counter.add c 3.;
           Counter.incr c;
           Obs.diff (Obs.snapshot ()) t0))
  in
  Alcotest.(check (float 1e-9)) "before merge, nothing" before
    (Counter.value c);
  Obs.merge delta;
  Alcotest.(check (float 1e-9)) "merge lands the worker's delta" (before +. 4.)
    (Counter.value c);
  (* Merging is additive, not idempotent — exactly what a once-per-chunk
     protocol needs. *)
  Obs.merge delta;
  Alcotest.(check (float 1e-9)) "merge is additive" (before +. 8.)
    (Counter.value c)

let test_trace_sink_domain_local () =
  Trace.set_sink (fun _ -> ());
  let child_active = Domain.join (Domain.spawn (fun () -> Trace.active ())) in
  Trace.clear_sink ();
  Alcotest.(check bool) "parent sink invisible to child" false child_active

let test_trace_with_sink_scoped () =
  let seen = ref 0 in
  Trace.with_sink
    (fun _ -> incr seen)
    (fun () -> Trace.emit (Trace.Round_started { round = 1; candidates = 1 }));
  Alcotest.(check int) "event delivered" 1 !seen;
  Alcotest.(check bool) "sink removed after scope" false (Trace.active ());
  (* A raise inside the scope still restores the previous sink. *)
  Trace.set_sink (fun _ -> ());
  (try Trace.with_sink (fun _ -> ()) (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "previous sink restored on raise" true (Trace.active ());
  Trace.clear_sink ()

(* --- spans --- *)

let test_span_disabled_by_default () =
  Alcotest.(check bool) "disabled" false (Span.enabled ());
  Span.reset ();
  let x = Span.timed "test.noop" (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk still runs" 42 x;
  Alcotest.(check bool) "nothing recorded" true (Span.snapshot () = [])

let test_span_nesting_and_self_time () =
  Span.reset ();
  Span.enable ();
  let spin seconds =
    let start = Indq_util.Timer.wall () in
    while Indq_util.Timer.wall () -. start < seconds do
      ()
    done
  in
  Span.timed "test.outer" (fun () ->
      spin 0.004;
      Span.timed "test.inner" (fun () -> spin 0.004));
  Span.timed "test.outer" (fun () -> spin 0.002);
  Span.disable ();
  let stats = Span.snapshot () in
  let outer = List.assoc "test.outer" stats in
  let inner = List.assoc "test.inner" stats in
  Alcotest.(check int) "outer calls" 2 outer.Span.calls;
  Alcotest.(check int) "inner calls" 1 inner.Span.calls;
  Alcotest.(check bool) "outer cumulative covers inner" true
    (outer.Span.cumulative >= inner.Span.cumulative);
  (* Self excludes the nested span: outer self + inner cumulative should
     recover outer cumulative (up to clock granularity). *)
  Alcotest.(check (float 1e-3)) "self + child = cumulative"
    outer.Span.cumulative
    (outer.Span.self +. inner.Span.cumulative);
  Span.reset ()

let test_span_exception_safe () =
  Span.reset ();
  Span.enable ();
  (try Span.timed "test.raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  let x = Span.timed "test.after" (fun () -> 7) in
  Span.disable ();
  Alcotest.(check int) "spans keep working after a raise" 7 x;
  let stats = Span.snapshot () in
  Alcotest.(check int) "raising span recorded" 1
    (List.assoc "test.raises" stats).Span.calls;
  (* The raising frame was popped: "test.after" is a root span, so its self
     time is its cumulative time. *)
  let after = List.assoc "test.after" stats in
  Alcotest.(check (float 1e-9)) "no dangling parent" after.Span.cumulative
    after.Span.self;
  Span.reset ()

(* --- trace sink --- *)

let test_trace_no_sink_skips_thunk () =
  Trace.clear_sink ();
  Alcotest.(check bool) "inactive" false (Trace.active ());
  let built = ref false in
  Trace.emit_with (fun () ->
      built := true;
      Trace.Round_started { round = 1; candidates = 0 });
  Alcotest.(check bool) "event never built" false !built

let test_trace_sink_receives_events () =
  let seen = ref [] in
  Trace.set_sink (fun e -> seen := e :: !seen);
  Alcotest.(check bool) "active" true (Trace.active ());
  Trace.emit (Trace.Round_started { round = 3; candidates = 17 });
  Trace.emit_with (fun () ->
      Trace.Prune_stage { stage = "skyline"; before = 10; after = 4 });
  Trace.clear_sink ();
  Trace.emit (Trace.Round_started { round = 4; candidates = 1 });
  Alcotest.(check int) "two events, none after clear" 2 (List.length !seen)

let sample_events =
  [
    Trace.Run_started
      { algo = "Squeeze-u"; n = 100; d = 3; s = 3; q = 9; eps = 0.05; delta = 0. };
    Trace.Round_started { round = 1; candidates = 42 };
    Trace.Question_asked { round = 1; options = 3; choice = 2 };
    Trace.Prune_stage { stage = "box_fast"; before = 42; after = 7 };
    Trace.Region_updated { round = 1; halfspaces = 2; empty = false };
    Trace.Region_updated { round = 2; halfspaces = 4; empty = true };
    Trace.Run_finished { questions = 9; output = 7; seconds = 0.125 };
  ]

let test_trace_json_round_trip () =
  List.iter
    (fun event ->
      let line = Trace.to_json event in
      match Trace.of_json_line line with
      | None -> Alcotest.failf "unparsable: %s" line
      | Some back ->
        Alcotest.(check string) "stable round trip" line (Trace.to_json back))
    sample_events

let test_trace_json_escaping () =
  let event =
    Trace.Prune_stage { stage = "we\"ird\\st\nage"; before = 1; after = 0 }
  in
  let line = Trace.to_json event in
  match Trace.of_json_line line with
  | Some (Trace.Prune_stage { stage; _ }) ->
    Alcotest.(check string) "escaped string survives" "we\"ird\\st\nage" stage
  | _ -> Alcotest.fail "round trip failed"

let test_trace_rejects_garbage () =
  List.iter
    (fun line ->
      Alcotest.(check bool) ("rejects " ^ line) true
        (Trace.of_json_line line = None))
    [ ""; "not json"; "{}"; {|{"type":"unknown_event","round":1}|};
      {|{"type":"round_started"}|} ]

(* --- integration with the algorithm stack --- *)

let run_squeeze_u () =
  let rng = Rng.create 4242 in
  let d = 3 in
  let data = Generator.independent rng ~n:80 ~d in
  let u = Utility.random rng ~d in
  let oracle = Oracle.exact u in
  Algo.run Algo.Squeeze_u (Algo.default_config ~d) ~data ~oracle
    ~rng:(Rng.split rng)

let test_run_without_sink_is_silent () =
  Trace.clear_sink ();
  (* Any emit_with reaching a sink would be a contract violation; prove it
     by installing a counting probe around a run... without a sink we can
     only assert the run completes and the API stays inactive. *)
  let result = run_squeeze_u () in
  Alcotest.(check bool) "run completed" true
    (Dataset.size result.Algo.output > 0);
  Alcotest.(check bool) "still inactive" false (Trace.active ())

let test_run_metrics_match_counters () =
  let before = Counter.snapshot () in
  let result = run_squeeze_u () in
  (* The run_result carries exactly the per-run counter deltas. *)
  let delta = result.Algo.metrics in
  List.iter
    (fun (name, v) ->
      let total = Counter.get name in
      let was = match List.assoc_opt name before with Some x -> x | None -> 0. in
      Alcotest.(check (float 1e-9)) (name ^ " delta consistent") (total -. was) v)
    delta;
  Alcotest.(check bool) "asked questions" true
    (List.assoc "oracle.questions" delta > 0.);
  Alcotest.(check bool) "scalar prune fired" true
    (List.assoc "prune.scalar_hits" delta > 0.)

let test_jsonl_trace_of_real_run () =
  (* Stream a real Squeeze-u run through the JSONL serializer and parse it
     back: every line must round-trip verbatim, and the stream must have the
     run/round/question structure the algorithms promise. *)
  let lines = ref [] in
  Trace.set_sink (fun e -> lines := Trace.to_json e :: !lines);
  let result = run_squeeze_u () in
  Trace.clear_sink ();
  let lines = List.rev !lines in
  Alcotest.(check bool) "some events" true (List.length lines > 0);
  let events =
    List.map
      (fun line ->
        match Trace.of_json_line line with
        | Some e ->
          Alcotest.(check string) "verbatim round trip" line (Trace.to_json e);
          e
        | None -> Alcotest.failf "unparsable line: %s" line)
      lines
  in
  let count p = List.length (List.filter p events) in
  Alcotest.(check int) "one run_started" 1
    (count (function Trace.Run_started _ -> true | _ -> false));
  Alcotest.(check int) "one run_finished" 1
    (count (function Trace.Run_finished _ -> true | _ -> false));
  Alcotest.(check int) "a question per round" (result.Algo.questions_used)
    (count (function Trace.Question_asked _ -> true | _ -> false));
  Alcotest.(check int) "rounds match questions" (result.Algo.questions_used)
    (count (function Trace.Round_started _ -> true | _ -> false));
  Alcotest.(check bool) "skyline stage present" true
    (count (function
         | Trace.Prune_stage { stage = "skyline"; _ } -> true
         | _ -> false)
     = 1)

let test_console_sink_smoke () =
  (* The console sink must tolerate a full event stream without raising. *)
  let sink = Trace.console_sink () in
  List.iter sink sample_events

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "incr and add" `Quick test_counter_incr_and_add;
          Alcotest.test_case "handles shared" `Quick test_counter_handles_shared;
          Alcotest.test_case "snapshot sorted" `Quick test_counter_snapshot_sorted;
          Alcotest.test_case "since" `Quick test_counter_since;
          Alcotest.test_case "since new counter" `Quick test_counter_since_new_counter;
          Alcotest.test_case "reset all" `Quick test_counter_reset_all;
        ] );
      ( "domains",
        [
          Alcotest.test_case "counter values domain-local" `Quick
            test_counter_values_domain_local;
          Alcotest.test_case "obs delta merges across domains" `Quick
            test_obs_delta_merges_across_domains;
          Alcotest.test_case "trace sink domain-local" `Quick
            test_trace_sink_domain_local;
          Alcotest.test_case "with_sink scoped" `Quick
            test_trace_with_sink_scoped;
        ] );
      ( "spans",
        [
          Alcotest.test_case "disabled by default" `Quick test_span_disabled_by_default;
          Alcotest.test_case "nesting and self time" `Quick test_span_nesting_and_self_time;
          Alcotest.test_case "exception safe" `Quick test_span_exception_safe;
        ] );
      ( "trace",
        [
          Alcotest.test_case "no sink skips thunk" `Quick test_trace_no_sink_skips_thunk;
          Alcotest.test_case "sink receives events" `Quick test_trace_sink_receives_events;
          Alcotest.test_case "json round trip" `Quick test_trace_json_round_trip;
          Alcotest.test_case "json escaping" `Quick test_trace_json_escaping;
          Alcotest.test_case "rejects garbage" `Quick test_trace_rejects_garbage;
          Alcotest.test_case "console sink smoke" `Quick test_console_sink_smoke;
        ] );
      ( "integration",
        [
          Alcotest.test_case "silent without sink" `Quick test_run_without_sink_is_silent;
          Alcotest.test_case "run metrics match counters" `Quick
            test_run_metrics_match_counters;
          Alcotest.test_case "jsonl trace of real run" `Quick
            test_jsonl_trace_of_real_run;
        ] );
    ]
