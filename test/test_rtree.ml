(* Tests for the R-tree spatial index, including qcheck equivalence with
   brute-force search. *)

module Rect = Indq_rtree.Rect
module Rtree = Indq_rtree.Rtree
module Rng = Indq_util.Rng
module Vec = Indq_linalg.Vec

let vec = Vec.of_array

let test_rect_make_guards () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Rect.make: lo > hi")
    (fun () -> ignore (Rect.make ~lo:(vec [| 1. |]) ~hi:(vec [| 0. |])));
  Alcotest.check_raises "ragged" (Invalid_argument "Rect.make: bad corners")
    (fun () -> ignore (Rect.make ~lo:(vec [| 0. |]) ~hi:(vec [| 1.; 2. |])))

let test_rect_intersects () =
  let a = Rect.make ~lo:(vec [| 0.; 0. |]) ~hi:(vec [| 1.; 1. |]) in
  let b = Rect.make ~lo:(vec [| 0.5; 0.5 |]) ~hi:(vec [| 2.; 2. |]) in
  let c = Rect.make ~lo:(vec [| 1.5; 1.5 |]) ~hi:(vec [| 2.; 2. |]) in
  Alcotest.(check bool) "overlap" true (Rect.intersects a b);
  Alcotest.(check bool) "touch counts" true
    (Rect.intersects a (Rect.make ~lo:(vec [| 1.; 0. |]) ~hi:(vec [| 2.; 1. |])));
  Alcotest.(check bool) "disjoint" false (Rect.intersects a c)

let test_rect_contains () =
  let r = Rect.make ~lo:(vec [| 0.; 0. |]) ~hi:(vec [| 1.; 1. |]) in
  Alcotest.(check bool) "inside" true (Rect.contains_point r (vec [| 0.5; 0.5 |]));
  Alcotest.(check bool) "boundary" true (Rect.contains_point r (vec [| 1.; 0. |]));
  Alcotest.(check bool) "outside" false (Rect.contains_point r (vec [| 1.1; 0.5 |]));
  Alcotest.(check bool) "rect in rect" true
    (Rect.contains_rect ~outer:r
       ~inner:(Rect.make ~lo:(vec [| 0.2; 0.2 |]) ~hi:(vec [| 0.8; 0.8 |])))

let test_rect_union_area () =
  let a = Rect.make ~lo:(vec [| 0.; 0. |]) ~hi:(vec [| 1.; 1. |]) in
  let b = Rect.make ~lo:(vec [| 2.; 2. |]) ~hi:(vec [| 3.; 4. |]) in
  let u = Rect.union a b in
  Alcotest.(check (float 1e-9)) "area a" 1. (Rect.area a);
  Alcotest.(check (float 1e-9)) "area b" 2. (Rect.area b);
  Alcotest.(check (float 1e-9)) "area union" 12. (Rect.area u);
  Alcotest.(check (float 1e-9)) "enlargement" 11. (Rect.enlargement a b);
  Alcotest.(check (float 1e-9)) "margin" 7. (Rect.margin u)

let test_rect_above_corner () =
  let r = Rect.above_corner (vec [| 0.3; 0.6 |]) ~upper:(vec [| 1.; 1. |]) in
  Alcotest.(check bool) "dominator inside" true (Rect.contains_point r (vec [| 0.5; 0.8 |]));
  Alcotest.(check bool) "non-dominator outside" false
    (Rect.contains_point r (vec [| 0.2; 0.9 |]))

let test_insert_search_small () =
  let t = Rtree.create ~dim:2 () in
  Rtree.insert_point t (vec [| 0.1; 0.1 |]) "a";
  Rtree.insert_point t (vec [| 0.9; 0.9 |]) "b";
  Rtree.insert_point t (vec [| 0.5; 0.5 |]) "c";
  Alcotest.(check int) "size" 3 (Rtree.size t);
  let hits =
    Rtree.search t (Rect.make ~lo:(vec [| 0.4; 0.4 |]) ~hi:(vec [| 1.; 1. |]))
  in
  let sorted = List.sort compare hits in
  Alcotest.(check (list string)) "hits" [ "b"; "c" ] sorted

let test_empty_tree () =
  let t : int Rtree.t = Rtree.create ~dim:3 () in
  Alcotest.(check int) "size" 0 (Rtree.size t);
  Alcotest.(check int) "depth" 0 (Rtree.depth t);
  Alcotest.(check (list int)) "search" []
    (Rtree.search t (Rect.make ~lo:(vec [| 0.; 0.; 0. |]) ~hi:(vec [| 1.; 1.; 1. |])));
  Alcotest.(check bool) "invariants" true (Rtree.check_invariants t)

let test_split_grows_depth () =
  let t = Rtree.create ~max_entries:4 ~dim:2 () in
  let rng = Rng.create 5 in
  for i = 1 to 100 do
    Rtree.insert_point t (vec [| Rng.uniform rng; Rng.uniform rng |]) i
  done;
  Alcotest.(check int) "size" 100 (Rtree.size t);
  Alcotest.(check bool) "deeper than a leaf" true (Rtree.depth t > 1);
  Alcotest.(check bool) "invariants" true (Rtree.check_invariants t)

let test_exists_overlapping () =
  let t = Rtree.create ~dim:2 () in
  for i = 0 to 9 do
    Rtree.insert_point t (vec [| float_of_int i /. 10.; float_of_int i /. 10. |]) i
  done;
  let q = Rect.make ~lo:(vec [| 0.75; 0.75 |]) ~hi:(vec [| 1.; 1. |]) in
  Alcotest.(check bool) "found" true (Rtree.exists_overlapping t q ~f:(fun _ _ -> true));
  Alcotest.(check bool) "predicate filters" false
    (Rtree.exists_overlapping t q ~f:(fun _ v -> v > 100));
  let q2 = Rect.make ~lo:(vec [| 0.91; 0.0 |]) ~hi:(vec [| 1.; 0.05 |]) in
  Alcotest.(check bool) "empty zone" false
    (Rtree.exists_overlapping t q2 ~f:(fun _ _ -> true))

let test_iter_visits_all () =
  let t = Rtree.create ~max_entries:4 ~dim:1 () in
  for i = 1 to 50 do
    Rtree.insert_point t (vec [| float_of_int i |]) i
  done;
  let total = ref 0 in
  Rtree.iter t (fun _ v -> total := !total + v);
  Alcotest.(check int) "sum" (50 * 51 / 2) !total

let test_dimension_guard () =
  let t : unit Rtree.t = Rtree.create ~dim:2 () in
  Alcotest.check_raises "bad dim" (Invalid_argument "Rtree.insert: dimension mismatch")
    (fun () -> Rtree.insert t (Rect.of_point (vec [| 1. |])) ())

(* Property: search results match brute force on random point sets. *)
let prop_search_matches_bruteforce =
  QCheck2.Test.make ~count:60 ~name:"rtree search = brute force"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 1 + Rng.int rng 4 in
      let n = 1 + Rng.int rng 300 in
      let points =
        Array.init n (fun i -> (Vec.init d (fun _ -> Rng.uniform rng), i))
      in
      let t = Rtree.of_points ~max_entries:4 ~dim:d (Array.to_list points) in
      let ok = ref (Rtree.check_invariants t) in
      for _ = 1 to 10 do
        let a = Vec.init d (fun _ -> Rng.uniform rng) in
        let b = Vec.init d (fun _ -> Rng.uniform rng) in
        let lo = Vec.init d (fun i -> Float.min (Vec.get a i) (Vec.get b i)) in
        let hi = Vec.init d (fun i -> Float.max (Vec.get a i) (Vec.get b i)) in
        let q = Rect.make ~lo ~hi in
        let expected =
          Array.to_list points
          |> List.filter (fun (p, _) -> Rect.contains_point q p)
          |> List.map snd |> List.sort compare
        in
        let got = Rtree.search t q |> List.sort compare in
        if expected <> got then ok := false
      done;
      !ok)

let prop_size_matches_inserts =
  QCheck2.Test.make ~count:40 ~name:"size and iter agree with inserts"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = Rng.int rng 500 in
      let t = Rtree.create ~max_entries:6 ~dim:2 () in
      for i = 1 to n do
        Rtree.insert_point t (vec [| Rng.uniform rng; Rng.uniform rng |]) i
      done;
      let visited = ref 0 in
      Rtree.iter t (fun _ _ -> incr visited);
      Rtree.size t = n && !visited = n && Rtree.check_invariants t)

(* Property: STR bulk loading answers every search exactly like an
   insert-built tree — same entries, same boxes, different construction. *)
let prop_bulk_load_matches_inserts =
  QCheck2.Test.make ~count:60 ~name:"bulk load = insert-built queries"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 1 + Rng.int rng 4 in
      let n = 1 + Rng.int rng 400 in
      let points =
        List.init n (fun i -> (Vec.init d (fun _ -> Rng.uniform rng), i))
      in
      let bulk = Rtree.bulk_load_points ~max_entries:4 ~dim:d points in
      let incr_t = Rtree.of_points ~max_entries:4 ~dim:d points in
      let ok =
        ref
          (Rtree.check_invariants bulk
          && Rtree.size bulk = n
          && Rtree.size incr_t = n)
      in
      for _ = 1 to 10 do
        let a = Vec.init d (fun _ -> Rng.uniform rng) in
        let b = Vec.init d (fun _ -> Rng.uniform rng) in
        let lo = Vec.init d (fun i -> Float.min (Vec.get a i) (Vec.get b i)) in
        let hi = Vec.init d (fun i -> Float.max (Vec.get a i) (Vec.get b i)) in
        let q = Rect.make ~lo ~hi in
        let sorted t = Rtree.search t q |> List.sort compare in
        if sorted bulk <> sorted incr_t then ok := false
      done;
      !ok)

(* --- packed STR-tree over a flat buffer --- *)

module Strtree = Indq_rtree.Strtree

let flat_of_points d points =
  Vec.init
    (Array.length points * d)
    (fun j -> Vec.get points.(j / d) (j mod d))

let test_strtree_empty () =
  let t = Strtree.build ~dim:2 (Vec.make 0 0.) 0 in
  Alcotest.(check int) "size" 0 (Strtree.size t);
  Alcotest.(check int) "depth" 0 (Strtree.depth t);
  Alcotest.(check bool) "invariants" true (Strtree.check_invariants t);
  Alcotest.(check (list int)) "no rows" []
    (Strtree.collect_in_box t ~lo:(vec [| 0.; 0. |]) ~hi:(vec [| 1.; 1. |]))

let test_strtree_small_box_queries () =
  (* 3x3 integer grid: boxes with known answers. *)
  let points =
    Array.init 9 (fun i -> vec [| float_of_int (i mod 3); float_of_int (i / 3) |])
  in
  let t = Strtree.build ~leaf_cap:2 ~dim:2 (flat_of_points 2 points) 9 in
  Alcotest.(check bool) "invariants" true (Strtree.check_invariants t);
  Alcotest.(check int) "size" 9 (Strtree.size t);
  let rows ~lo ~hi = List.sort compare (Strtree.collect_in_box t ~lo ~hi) in
  Alcotest.(check (list int)) "all" [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]
    (rows ~lo:(vec [| 0.; 0. |]) ~hi:(vec [| 2.; 2. |]));
  Alcotest.(check (list int)) "corner" [ 0 ]
    (rows ~lo:(vec [| 0.; 0. |]) ~hi:(vec [| 0.5; 0.5 |]));
  Alcotest.(check (list int)) "column" [ 1; 4; 7 ]
    (rows ~lo:(vec [| 1.; 0. |]) ~hi:(vec [| 1.; 2. |]));
  Alcotest.(check bool) "exists hit" true
    (Strtree.exists_in_box t ~lo:(vec [| 2.; 2. |]) ~hi:(vec [| 3.; 3. |])
       ~f:(fun pos -> pos = 8));
  Alcotest.(check bool) "exists filter miss" false
    (Strtree.exists_in_box t ~lo:(vec [| 2.; 2. |]) ~hi:(vec [| 3.; 3. |])
       ~f:(fun pos -> pos = 0));
  Alcotest.(check int) "fold counts" 9
    (Strtree.fold_in_box t ~lo:(vec [| 0.; 0. |]) ~hi:(vec [| 2.; 2. |]) ~init:0
       ~f:(fun acc _ -> acc + 1))

(* Property: box queries over the packed tree match a brute-force scan of
   the flat buffer, across dimensions, leaf capacities and fanouts. *)
let prop_strtree_matches_bruteforce =
  QCheck2.Test.make ~count:60 ~name:"strtree box queries = brute force"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 1 + Rng.int rng 4 in
      let n = Rng.int rng 500 in
      let points = Array.init n (fun _ -> Vec.init d (fun _ -> Rng.uniform rng)) in
      let leaf_cap = 2 + Rng.int rng 14 in
      let fanout = 2 + Rng.int rng 10 in
      let t = Strtree.build ~leaf_cap ~fanout ~dim:d (flat_of_points d points) n in
      let ok = ref (Strtree.check_invariants t && Strtree.size t = n) in
      for _ = 1 to 10 do
        let a = Vec.init d (fun _ -> Rng.uniform rng) in
        let b = Vec.init d (fun _ -> Rng.uniform rng) in
        let lo = Vec.init d (fun i -> Float.min (Vec.get a i) (Vec.get b i)) in
        let hi = Vec.init d (fun i -> Float.max (Vec.get a i) (Vec.get b i)) in
        let inside p =
          let all = ref true in
          for i = 0 to d - 1 do
            if Vec.get p i < Vec.get lo i || Vec.get p i > Vec.get hi i then
              all := false
          done;
          !all
        in
        let expected =
          List.init n Fun.id |> List.filter (fun r -> inside points.(r))
        in
        let got = List.sort compare (Strtree.collect_in_box t ~lo ~hi) in
        if expected <> got then ok := false
      done;
      !ok)

let () =
  Alcotest.run "rtree"
    [
      ( "rect",
        [
          Alcotest.test_case "make guards" `Quick test_rect_make_guards;
          Alcotest.test_case "intersects" `Quick test_rect_intersects;
          Alcotest.test_case "contains" `Quick test_rect_contains;
          Alcotest.test_case "union/area" `Quick test_rect_union_area;
          Alcotest.test_case "above corner" `Quick test_rect_above_corner;
        ] );
      ( "rtree",
        [
          Alcotest.test_case "insert/search" `Quick test_insert_search_small;
          Alcotest.test_case "empty tree" `Quick test_empty_tree;
          Alcotest.test_case "split grows depth" `Quick test_split_grows_depth;
          Alcotest.test_case "exists overlapping" `Quick test_exists_overlapping;
          Alcotest.test_case "iter visits all" `Quick test_iter_visits_all;
          Alcotest.test_case "dimension guard" `Quick test_dimension_guard;
        ] );
      ( "strtree",
        [
          Alcotest.test_case "empty" `Quick test_strtree_empty;
          Alcotest.test_case "small box queries" `Quick
            test_strtree_small_box_queries;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_search_matches_bruteforce;
          QCheck_alcotest.to_alcotest prop_size_matches_inserts;
          QCheck_alcotest.to_alcotest prop_bulk_load_matches_inserts;
          QCheck_alcotest.to_alcotest prop_strtree_matches_bruteforce;
        ] );
    ]
