(* Tests for tuples, datasets, normalization, CSV round-trips and the
   synthetic / simulated-real generators. *)

module Tuple = Indq_dataset.Tuple
module Dataset = Indq_dataset.Dataset
module Generator = Indq_dataset.Generator
module Realistic = Indq_dataset.Realistic
module Rng = Indq_util.Rng
module Vec = Indq_linalg.Vec

let vec = Vec.of_array

let test_tuple_basics () =
  let p = Tuple.make ~id:7 (vec [| 0.5; 0.25 |]) in
  Alcotest.(check int) "id" 7 (Tuple.id p);
  Alcotest.(check int) "dim" 2 (Tuple.dim p);
  Alcotest.(check (float 1e-9)) "get" 0.25 (Tuple.get p 1);
  Alcotest.(check (float 1e-9)) "utility" 1.0 (Tuple.utility p (vec [| 1.; 2. |]))

let test_tuple_copy_isolation () =
  let src = vec [| 1.; 2. |] in
  let p = Tuple.make ~id:0 src in
  Vec.set src 0 99.;
  Alcotest.(check (float 1e-9)) "copied on make" 1. (Tuple.get p 0)

let test_dataset_create () =
  let d = Dataset.create [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check int) "size" 2 (Dataset.size d);
  Alcotest.(check int) "dim" 2 (Dataset.dim d);
  Alcotest.(check int) "ids assigned" 1 (Tuple.id (Dataset.get d 1));
  Alcotest.check_raises "ragged" (Invalid_argument "Dataset.create: ragged rows")
    (fun () -> ignore (Dataset.create [| [| 1. |]; [| 1.; 2. |] |]))

let test_find_by_id () =
  let d = Dataset.create [| [| 1. |]; [| 2. |]; [| 3. |] |] in
  (match Dataset.find_by_id d 2 with
  | Some p -> Alcotest.(check (float 1e-9)) "value" 3. (Tuple.get p 0)
  | None -> Alcotest.fail "id 2 exists");
  Alcotest.(check bool) "missing" true (Dataset.find_by_id d 9 = None)

let test_attribute_ranges () =
  let d = Dataset.create [| [| 1.; 10. |]; [| 3.; 4. |]; [| 2.; 7. |] |] in
  let ranges = Dataset.attribute_ranges d in
  Alcotest.(check (float 1e-9)) "min0" 1. (fst ranges.(0));
  Alcotest.(check (float 1e-9)) "max0" 3. (snd ranges.(0));
  Alcotest.(check (float 1e-9)) "min1" 4. (fst ranges.(1));
  Alcotest.(check (float 1e-9)) "max1" 10. (snd ranges.(1))

let test_normalize_global () =
  let d = Dataset.create [| [| 1.; 10. |]; [| 3.; 4. |] |] in
  let n = Dataset.normalize_global d in
  Alcotest.(check (float 1e-9)) "largest is 1" 1. (Tuple.get (Dataset.get n 0) 1);
  Alcotest.(check (float 1e-9)) "scaled" 0.1 (Tuple.get (Dataset.get n 0) 0);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Dataset.normalize_global: negative value") (fun () ->
      ignore (Dataset.normalize_global (Dataset.create [| [| -1. |] |])))

let test_normalize_per_attribute () =
  let d = Dataset.create [| [| 1.; 10. |]; [| 3.; 4. |]; [| 2.; 7. |] |] in
  let n = Dataset.normalize_per_attribute d in
  let ranges = Dataset.attribute_ranges n in
  Array.iter
    (fun (lo, hi) ->
      Alcotest.(check (float 1e-9)) "lo" 0. lo;
      Alcotest.(check (float 1e-9)) "hi" 1. hi)
    ranges

let test_normalize_constant_attribute () =
  let d = Dataset.create [| [| 5.; 1. |]; [| 5.; 2. |] |] in
  let n = Dataset.normalize_per_attribute d in
  Alcotest.(check (float 1e-9)) "constant maps to 0" 0. (Tuple.get (Dataset.get n 0) 0)

let test_scale_to_unit_max () =
  let d = Dataset.create [| [| 50.; 2. |]; [| 100.; 5. |] |] in
  let s = Dataset.scale_to_unit_max d in
  Alcotest.(check (float 1e-9)) "attr0 max 1" 1. (Tuple.get (Dataset.get s 1) 0);
  Alcotest.(check (float 1e-9)) "attr0 ratio" 0.5 (Tuple.get (Dataset.get s 0) 0);
  Alcotest.(check (float 1e-9)) "attr1 max 1" 1. (Tuple.get (Dataset.get s 1) 1);
  Alcotest.(check (float 1e-9)) "attr1 ratio" 0.4 (Tuple.get (Dataset.get s 0) 1);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Dataset.scale_to_unit_max: negative value") (fun () ->
      ignore (Dataset.scale_to_unit_max (Dataset.create [| [| -1. |] |])))

let test_scale_to_unit_max_preserves_query () =
  (* Pure per-attribute scaling preserves I when the utility is rescaled
     reciprocally — the documented contract. *)
  let rng = Rng.create 99 in
  for _ = 1 to 10 do
    let raw =
      Dataset.create
        (Array.init 50 (fun _ ->
             Array.init 3 (fun i -> Rng.float rng (10. ** float_of_int i))))
    in
    let scaled = Dataset.scale_to_unit_max raw in
    let ranges = Dataset.attribute_ranges raw in
    let u = Vec.init 3 (fun _ -> 0.1 +. Rng.uniform rng) in
    let u' = Vec.mapi (fun i w -> w *. snd ranges.(i)) u in
    let ids data =
      List.sort compare (List.map Tuple.id (Dataset.to_list data))
    in
    let module Indist = Indq_core.Indist in
    Alcotest.(check bool) "same I" true
      (ids (Indist.query_exact ~eps:0.05 u raw)
      = ids (Indist.query_exact ~eps:0.05 u' scaled))
  done

let test_invert_attributes () =
  (* Price 100..300: inverted, cheaper is higher. *)
  let d = Dataset.create [| [| 100.; 1. |]; [| 300.; 2. |] |] in
  let inv = Dataset.invert_attributes d ~smaller_is_better:[| true; false |] in
  Alcotest.(check (float 1e-9)) "cheap becomes best" 200. (Tuple.get (Dataset.get inv 0) 0);
  Alcotest.(check (float 1e-9)) "expensive becomes 0" 0. (Tuple.get (Dataset.get inv 1) 0);
  Alcotest.(check (float 1e-9)) "untouched attribute" 2. (Tuple.get (Dataset.get inv 1) 1)

let test_max_utility_and_top_k () =
  let d = Dataset.create [| [| 1.; 0. |]; [| 0.; 1. |]; [| 0.6; 0.6 |] |] in
  let u = vec [| 1.; 1. |] in
  let best, v = Dataset.max_utility d u in
  Alcotest.(check int) "best id" 2 (Tuple.id best);
  Alcotest.(check (float 1e-9)) "best value" 1.2 v;
  let top2 = Dataset.top_k d u 2 in
  Alcotest.(check (list int)) "top-2 ids" [ 2; 0 ] (List.map Tuple.id top2);
  Alcotest.(check int) "k > n" 3 (List.length (Dataset.top_k d u 10))

let test_csv_roundtrip () =
  let d = Dataset.create [| [| 0.25; 0.75 |]; [| 1e-9; 1. |] |] in
  let d' = Dataset.of_csv (Dataset.to_csv d) in
  Alcotest.(check int) "size" (Dataset.size d) (Dataset.size d');
  for i = 0 to Dataset.size d - 1 do
    let a = Dataset.get d i and b = Dataset.get d' i in
    Alcotest.(check int) "id" (Tuple.id a) (Tuple.id b);
    for j = 0 to Dataset.dim d - 1 do
      Alcotest.(check (float 1e-12)) "value" (Tuple.get a j) (Tuple.get b j)
    done
  done

let check_load_error name ~row ~reason text =
  match Dataset.of_csv text with
  | _ -> Alcotest.fail (name ^ ": expected Load_error")
  | exception Dataset.Load_error e ->
    Alcotest.(check int) (name ^ " row") row e.Dataset.row;
    Alcotest.(check string) (name ^ " reason") reason e.Dataset.reason;
    Alcotest.(check bool) (name ^ " no path") true (e.Dataset.path = None)

let test_csv_malformed () =
  check_load_error "bad value" ~row:1 ~reason:"bad value \"notafloat\""
    "0,notafloat\n";
  check_load_error "bad id" ~row:1 ~reason:"bad id \"x\"" "x,1.0\n";
  check_load_error "nan" ~row:2 ~reason:"non-finite value \"nan\""
    "0,1.0\n1,nan\n";
  check_load_error "inf" ~row:2 ~reason:"non-finite value \"inf\""
    "0,1.0\n1,inf\n";
  check_load_error "negative" ~row:1 ~reason:"negative value \"-0.5\""
    "0,-0.5\n";
  (* Row numbers count original lines: the blank separator shifts the bad
     row to line 3. *)
  check_load_error "dim mismatch" ~row:3 ~reason:"row has 2 values, expected 1"
    "0,1.0\n\n1,0.5,0.5\n";
  match Dataset.load_csv "/nonexistent/indq.csv" with
  | _ -> Alcotest.fail "expected Load_error from missing file"
  | exception Dataset.Load_error e ->
    Alcotest.(check bool) "path kept" true
      (e.Dataset.path = Some "/nonexistent/indq.csv")

(* --- columnar binary store round trips and corruption --- *)

let with_temp_store f =
  let path = Filename.temp_file "indq-test" ".store" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_store_roundtrip () =
  with_temp_store @@ fun path ->
  let rng = Rng.create 42 in
  let d = Generator.anti_correlated rng ~n:257 ~d:4 in
  Dataset.save_store d path;
  let d' = Dataset.load_store path in
  Alcotest.(check int) "size" (Dataset.size d) (Dataset.size d');
  Alcotest.(check int) "dim" (Dataset.dim d) (Dataset.dim d');
  Alcotest.(check string) "fingerprint survives"
    (Dataset.fingerprint d) (Dataset.fingerprint d');
  for i = 0 to Dataset.size d - 1 do
    let a = Dataset.get d i and b = Dataset.get d' i in
    Alcotest.(check int) "id" (Tuple.id a) (Tuple.id b);
    for j = 0 to Dataset.dim d - 1 do
      (* Bit-identical, not approximately equal: the payload is blitted,
         never re-encoded. *)
      Alcotest.(check int64) "bits"
        (Int64.bits_of_float (Tuple.get a j))
        (Int64.bits_of_float (Tuple.get b j))
    done
  done

let check_store_load_error name path =
  match Dataset.load_store path with
  | _ -> Alcotest.fail (name ^ ": expected Load_error")
  | exception Dataset.Load_error e ->
    Alcotest.(check bool) (name ^ " path kept") true (e.Dataset.path = Some path)

let test_store_corrupt_files () =
  (* Missing file. *)
  check_store_load_error "missing" "/nonexistent/indq.store";
  let rng = Rng.create 7 in
  let d = Generator.independent rng ~n:64 ~d:3 in
  (* Truncated payload: the header promises more rows than the file holds. *)
  with_temp_store (fun path ->
      Dataset.save_store d path;
      let full = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (String.sub full 0 (String.length full - 16)));
      check_store_load_error "truncated" path);
  (* Foreign magic: not an indq store at all. *)
  with_temp_store (fun path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc "not an indq store, just bytes\n");
      check_store_load_error "bad magic" path);
  (* Empty file: shorter than any header. *)
  with_temp_store (fun path ->
      Out_channel.with_open_bin path (fun _ -> ());
      check_store_load_error "empty file" path)

let test_store_builder_streaming () =
  let module Store = Indq_dataset.Store in
  let b = Store.Builder.create ~capacity:2 ~dim:2 () in
  for i = 0 to 99 do
    Store.Builder.add b ~id:i [| float_of_int i; float_of_int (99 - i) |]
  done;
  Alcotest.(check int) "length while building" 100 (Store.Builder.length b);
  let s = Store.Builder.finish b in
  Alcotest.(check int) "size" 100 (Store.size s);
  Alcotest.(check int) "dim" 2 (Store.dim s);
  Alcotest.(check int) "id" 57 (Store.id s 57);
  Alcotest.(check (float 0.)) "value" 42. (Store.get s 57 1)

let test_generator_shapes () =
  let rng = Rng.create 1 in
  List.iter
    (fun kind ->
      let d = Generator.by_name kind rng ~n:200 ~d:3 in
      Alcotest.(check int) (kind ^ " size") 200 (Dataset.size d);
      Alcotest.(check int) (kind ^ " dim") 3 (Dataset.dim d);
      Array.iter
        (fun p ->
          Vec.iter
            (fun x ->
              Alcotest.(check bool) (kind ^ " in unit box") true (x >= 0. && x <= 1.))
            (Tuple.values p))
        (Dataset.tuples d))
    [ "independent"; "correlated"; "anti_correlated" ]

let pearson xs ys =
  let n = float_of_int (Array.length xs) in
  let mean a = Array.fold_left ( +. ) 0. a /. n in
  let mx = mean xs and my = mean ys in
  let cov = ref 0. and vx = ref 0. and vy = ref 0. in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      cov := !cov +. (dx *. dy);
      vx := !vx +. (dx *. dx);
      vy := !vy +. (dy *. dy))
    xs;
  !cov /. sqrt (!vx *. !vy)

let column data j =
  Array.map (fun p -> Tuple.get p j) (Dataset.tuples data)

let test_generator_correlation_signs () =
  let rng = Rng.create 42 in
  let corr = Generator.correlated rng ~n:3000 ~d:2 in
  let anti = Generator.anti_correlated rng ~n:3000 ~d:2 in
  let r_corr = pearson (column corr 0) (column corr 1) in
  let r_anti = pearson (column anti 0) (column anti 1) in
  Alcotest.(check bool) "correlated r > 0.5" true (r_corr > 0.5);
  Alcotest.(check bool) "anti-correlated r < -0.2" true (r_anti < -0.2)

let test_generator_determinism () =
  let a = Generator.independent (Rng.create 9) ~n:50 ~d:2 in
  let b = Generator.independent (Rng.create 9) ~n:50 ~d:2 in
  for i = 0 to 49 do
    for j = 0 to 1 do
      Alcotest.(check (float 0.)) "same draw"
        (Tuple.get (Dataset.get a i) j)
        (Tuple.get (Dataset.get b i) j)
    done
  done

let test_realistic_shapes () =
  let rng = Rng.create 3 in
  let island = Realistic.island ~n:500 rng in
  Alcotest.(check int) "island dim" 2 (Dataset.dim island);
  Alcotest.(check int) "island size" 500 (Dataset.size island);
  let nba = Realistic.nba ~n:400 rng in
  Alcotest.(check int) "nba dim" 4 (Dataset.dim nba);
  let house = Realistic.house ~n:300 rng in
  Alcotest.(check int) "house dim" 6 (Dataset.dim house);
  (* All normalized: max value across attributes is 1. *)
  List.iter
    (fun data ->
      let m =
        Array.fold_left
          (fun acc p -> Vec.fold_left Float.max acc (Tuple.values p))
          0. (Dataset.tuples data)
      in
      Alcotest.(check (float 1e-9)) "global max is 1" 1. m)
    [ island; nba; house ]

let test_realistic_nba_correlated () =
  let rng = Rng.create 8 in
  let nba = Realistic.nba ~n:3000 rng in
  Alcotest.(check bool) "stats positively correlated" true
    (pearson (column nba 0) (column nba 1) > 0.3)

let test_realistic_defaults () =
  Alcotest.(check int) "island" 63383 (Realistic.default_size "island");
  Alcotest.(check int) "nba" 21961 (Realistic.default_size "nba");
  Alcotest.(check int) "house" 12793 (Realistic.default_size "house")

let test_by_name_unknown () =
  Alcotest.check_raises "unknown dataset"
    (Invalid_argument "Realistic.by_name: unknown data set mars") (fun () ->
      ignore (Realistic.by_name "mars" ~n:10 (Rng.create 0)))

let () =
  Alcotest.run "dataset"
    [
      ( "tuple",
        [
          Alcotest.test_case "basics" `Quick test_tuple_basics;
          Alcotest.test_case "copy isolation" `Quick test_tuple_copy_isolation;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "create" `Quick test_dataset_create;
          Alcotest.test_case "find by id" `Quick test_find_by_id;
          Alcotest.test_case "ranges" `Quick test_attribute_ranges;
          Alcotest.test_case "normalize global" `Quick test_normalize_global;
          Alcotest.test_case "normalize per-attr" `Quick test_normalize_per_attribute;
          Alcotest.test_case "normalize constant" `Quick test_normalize_constant_attribute;
          Alcotest.test_case "scale to unit max" `Quick test_scale_to_unit_max;
          Alcotest.test_case "scaling preserves query" `Quick
            test_scale_to_unit_max_preserves_query;
          Alcotest.test_case "invert attributes" `Quick test_invert_attributes;
          Alcotest.test_case "max utility / top-k" `Quick test_max_utility_and_top_k;
          Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "csv malformed" `Quick test_csv_malformed;
        ] );
      ( "store",
        [
          Alcotest.test_case "binary roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "corrupt files" `Quick test_store_corrupt_files;
          Alcotest.test_case "builder streaming" `Quick
            test_store_builder_streaming;
        ] );
      ( "generator",
        [
          Alcotest.test_case "shapes" `Quick test_generator_shapes;
          Alcotest.test_case "correlation signs" `Quick test_generator_correlation_signs;
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
        ] );
      ( "realistic",
        [
          Alcotest.test_case "shapes" `Quick test_realistic_shapes;
          Alcotest.test_case "nba correlated" `Quick test_realistic_nba_correlated;
          Alcotest.test_case "default sizes" `Quick test_realistic_defaults;
          Alcotest.test_case "unknown name" `Quick test_by_name_unknown;
        ] );
    ]
