(* End-to-end tests of the four interactive algorithms.  The headline
   invariant, from Definition 3: outputs must contain the exact
   indistinguishability set (no false negatives), under both exact and
   delta-erring users. *)

module Algo = Indq_core.Algo
module Squeeze_u = Indq_core.Squeeze_u
module Squeeze_u2 = Indq_core.Squeeze_u2
module Real_points = Indq_core.Real_points
module Indist = Indq_core.Indist
module Region = Indq_core.Region
module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple
module Generator = Indq_dataset.Generator
module Skyline = Indq_dominance.Skyline
module Utility = Indq_user.Utility
module Oracle = Indq_user.Oracle
module Rng = Indq_util.Rng
module Vec = Indq_linalg.Vec

let vec = Vec.of_array

(* Independent data augmented with the d basis rows and the origin, pinning
   every attribute range to exactly [0, 1] — the normalization regime under
   which Algorithm 1's phase-1 inference is exact (see DESIGN.md). *)
let pinned_dataset rng ~n ~d =
  let base = Generator.independent rng ~n ~d in
  let rows =
    Array.append
      (Array.map (fun t -> Vec.to_array (Tuple.values t)) (Dataset.tuples base))
      (Array.init (d + 1) (fun i ->
           if i = d then Array.make d 0.
           else Array.init d (fun j -> if i = j then 1. else 0.)))
  in
  Dataset.create rows

let check_no_false_negatives ~eps ~u ~data ~output what =
  Alcotest.(check bool)
    (what ^ ": no false negatives")
    false
    (Indist.has_false_negatives ~eps u ~data ~output)

(* --- Squeeze-u (Algorithm 1) --- *)

let test_chi_ladder () =
  let chi = Squeeze_u.chi_ladder ~lo:0.2 ~hi:0.7 ~s:5 in
  Alcotest.(check int) "length" 6 (Array.length chi);
  Alcotest.(check (float 1e-9)) "first" 0.2 chi.(0);
  Alcotest.(check (float 1e-9)) "last" 0.7 chi.(5);
  Alcotest.(check (float 1e-9)) "step" 0.3 chi.(1)

let test_ladder_points_shape () =
  let chi = Squeeze_u.chi_ladder ~lo:0. ~hi:1. ~s:3 in
  let pts = Squeeze_u.ladder_points ~d:4 ~s:3 ~i:2 ~i_star:0 ~chi in
  Alcotest.(check int) "s points" 3 (Array.length pts);
  Array.iteri
    (fun k0 p ->
      let k = k0 + 1 in
      Alcotest.(check (float 1e-9)) "coordinate i" (float_of_int k /. 3.) (Vec.get p 2);
      Alcotest.(check (float 1e-9)) "others zero" 0. (Vec.get p 1);
      Alcotest.(check (float 1e-9)) "others zero" 0. (Vec.get p 3))
    pts;
  (* p_s has an empty chi tail in coordinate i*. *)
  Alcotest.(check (float 1e-9)) "tail of p_s" 0. (Vec.get pts.(2) 0)

let test_ladder_choice_brackets_truth () =
  (* For any true ratio r in [0,1], an exact user's ladder choice must
     bracket r: chi_{c-1} <= r <= chi_c. *)
  let rng = Rng.create 41 in
  for _ = 1 to 100 do
    let d = 3 and s = 4 and i = 1 and i_star = 0 in
    let r = Rng.uniform rng in
    let u = vec [| 1.; r; Rng.uniform rng |] in
    let chi = Squeeze_u.chi_ladder ~lo:0. ~hi:1. ~s in
    let pts = Squeeze_u.ladder_points ~d ~s ~i ~i_star ~chi in
    let c = Utility.best_index u pts + 1 in
    Alcotest.(check bool) "bracket low" true (chi.(c - 1) <= r +. 1e-9);
    Alcotest.(check bool) "bracket high" true (r <= chi.(c) +. 1e-9)
  done

let test_squeeze_u_finds_i_star () =
  let rng = Rng.create 43 in
  for _ = 1 to 20 do
    let d = 2 + Rng.int rng 4 in
    let data = pinned_dataset rng ~n:50 ~d in
    let u = Utility.random rng ~d in
    let oracle = Oracle.exact u in
    let result =
      Squeeze_u.run ~data ~s:(max 2 d) ~q:(3 * d) ~eps:0.05 ~oracle ()
    in
    Alcotest.(check int) "i* is argmax"
      (Indq_linalg.Vec.argmax u)
      result.Squeeze_u.i_star
  done

let test_squeeze_u_lemma1_bound () =
  (* Lemma 1: after q questions, |H_i - L_i| <= 1/s^floor((q - phase1)/(d-1)). *)
  let rng = Rng.create 47 in
  for _ = 1 to 10 do
    let d = 3 in
    let s = d in
    let q = 3 * d in
    let data = pinned_dataset rng ~n:60 ~d in
    let u = Utility.random rng ~d in
    let oracle = Oracle.exact u in
    let result = Squeeze_u.run ~data ~s ~q ~eps:0.05 ~oracle () in
    let phase1 = ((d - 2) / (s - 1)) + 1 in
    let updates = (q - phase1) / (d - 1) in
    let bound = 1. /. (float_of_int s ** float_of_int updates) in
    Vec.iteri
      (fun i lo ->
        let width = Vec.get result.Squeeze_u.hi i -. lo in
        Alcotest.(check bool)
          (Printf.sprintf "width %g <= %g" width bound)
          true
          (width <= bound +. 1e-9))
      result.Squeeze_u.lo
  done

let test_squeeze_u_no_false_negatives () =
  let rng = Rng.create 53 in
  for trial = 1 to 20 do
    let d = 2 + Rng.int rng 3 in
    let data = pinned_dataset rng ~n:100 ~d in
    let u = Utility.random rng ~d in
    let oracle = Oracle.exact u in
    let eps = 0.05 in
    let result = Squeeze_u.run ~data ~s:(max 2 d) ~q:(3 * d) ~eps ~oracle () in
    check_no_false_negatives ~eps ~u ~data ~output:result.Squeeze_u.output
      (Printf.sprintf "squeeze-u trial %d" trial)
  done

let test_squeeze_u_bounds_contain_truth () =
  let rng = Rng.create 59 in
  for _ = 1 to 20 do
    let d = 2 + Rng.int rng 3 in
    let data = pinned_dataset rng ~n:60 ~d in
    let u = Utility.random_max_normalized rng ~d in
    let oracle = Oracle.exact u in
    let result = Squeeze_u.run ~data ~s:(max 2 d) ~q:(3 * d) ~eps:0.05 ~oracle () in
    Vec.iteri
      (fun i x ->
        Alcotest.(check bool) "lo <= u_i" true (Vec.get result.Squeeze_u.lo i <= x +. 1e-9);
        Alcotest.(check bool) "u_i <= hi" true (x <= Vec.get result.Squeeze_u.hi i +. 1e-9))
      u
  done

let test_squeeze_u_theorem2_bound () =
  (* Theorem 2: alpha <= tau * d * (2 + eps), where tau bounds the learned
     box widths.  Check the measured alpha against the bound computed from
     the run's own lo/hi. *)
  let rng = Rng.create 307 in
  for _ = 1 to 15 do
    let d = 2 + Rng.int rng 3 in
    let data = pinned_dataset rng ~n:80 ~d in
    let u = Utility.random rng ~d in
    let eps = 0.05 in
    let oracle = Oracle.exact u in
    (* The Theorem 2 proof assumes the exact box test (every surviving p'
       has a witness v in the box with (1+eps) p'.v >= p*.v); the O(n)
       heuristic filter is weaker, so run with exact pruning. *)
    let result =
      Squeeze_u.run ~exact_prune:true ~data ~s:(max 2 d) ~q:(3 * d) ~eps
        ~oracle ()
    in
    let tau = ref 0. in
    Vec.iteri
      (fun i lo -> tau := Float.max !tau (Vec.get result.Squeeze_u.hi i -. lo))
      result.Squeeze_u.lo;
    let bound = !tau *. float_of_int d *. (2. +. eps) in
    let alpha =
      Indq_core.Indist.alpha ~eps u ~data ~output:result.Squeeze_u.output
    in
    (* alpha is measured with the raw (sum-normalized) utility, while the
       theorem normalizes max u_i = 1; scaling u up only scales alpha up,
       so compare in the theorem's normalization. *)
    let alpha_normalized = alpha /. Indq_linalg.Vec.max_coord u in
    Alcotest.(check bool)
      (Printf.sprintf "alpha %.4f within bound %.4f" alpha_normalized bound)
      true
      (alpha_normalized <= bound +. 1e-9)
  done

let test_squeeze_u_question_budget () =
  let rng = Rng.create 61 in
  let d = 4 in
  let data = pinned_dataset rng ~n:40 ~d in
  let u = Utility.random rng ~d in
  let oracle = Oracle.exact u in
  let result = Squeeze_u.run ~data ~s:d ~q:7 ~eps:0.05 ~oracle () in
  Alcotest.(check int) "uses exactly q" 7 result.Squeeze_u.questions_used;
  Alcotest.(check int) "oracle agrees" 7 (Oracle.questions_asked oracle)

let test_squeeze_u_zero_questions () =
  let rng = Rng.create 67 in
  let data = pinned_dataset rng ~n:30 ~d:3 in
  let u = Utility.random rng ~d:3 in
  let oracle = Oracle.exact u in
  let result = Squeeze_u.run ~data ~s:3 ~q:0 ~eps:0.05 ~oracle () in
  (* Without questions the bounds stay [0,1] and nothing of I is lost. *)
  check_no_false_negatives ~eps:0.05 ~u ~data ~output:result.Squeeze_u.output "q=0"

let test_squeeze_u_unequal_ranges_no_false_negatives () =
  (* Regression: attribute 1 spans only [0, 0.05] while attribute 0 spans
     [0, 1].  With the paper's literal H_j = 1 initialization, a user whose
     weight ratio u_1/u_0 exceeds 1 (here 10) breaks the inference and the
     optimal tuple gets pruned; the range-ratio bound keeps it. *)
  let rng = Rng.create 97 in
  let rows =
    Array.init 120 (fun _ -> [| Rng.uniform rng; 0.05 *. Rng.uniform rng |])
  in
  (* Pin the ranges exactly. *)
  let rows =
    Array.append rows [| [| 0.; 0. |]; [| 1.; 0. |]; [| 0.; 0.05 |] |]
  in
  let data = Dataset.create rows in
  let eps = 0.05 in
  for trial = 1 to 10 do
    let trial_rng = Rng.create (trial * 53) in
    (* Weight attribute 1 heavily: ratios from ~2 up to ~40. *)
    let u = vec [| 1.; 2. +. Rng.float trial_rng 38. |] in
    let oracle = Oracle.exact u in
    let result = Squeeze_u.run ~data ~s:2 ~q:8 ~eps ~oracle () in
    check_no_false_negatives ~eps ~u ~data ~output:result.Squeeze_u.output
      (Printf.sprintf "unequal ranges trial %d" trial)
  done

let test_squeeze_u_one_dimension () =
  (* d = 1: no questions are needed; the answer is everything within
     (1+eps) of the single maximum. *)
  let data = Dataset.create [| [| 1.0 |]; [| 0.97 |]; [| 0.5 |] |] in
  let oracle = Oracle.exact (vec [| 1. |]) in
  let result = Squeeze_u.run ~data ~s:2 ~q:5 ~eps:0.05 ~oracle () in
  Alcotest.(check int) "no questions" 0 result.Squeeze_u.questions_used;
  let got = List.sort compare (List.map Tuple.id (Dataset.to_list result.Squeeze_u.output)) in
  Alcotest.(check (list int)) "exactly I" [ 0; 1 ] got

let test_squeeze_u_large_eps () =
  let rng = Rng.create 63 in
  let data = pinned_dataset rng ~n:50 ~d:3 in
  let u = Utility.random rng ~d:3 in
  let oracle = Oracle.exact u in
  let result = Squeeze_u.run ~data ~s:3 ~q:9 ~eps:0.9 ~oracle () in
  check_no_false_negatives ~eps:0.9 ~u ~data ~output:result.Squeeze_u.output "eps=0.9"

let test_squeeze_u_guards () =
  let data = Dataset.create [| [| 1.; 0. |] |] in
  let oracle = Oracle.exact (vec [| 1.; 1. |]) in
  Alcotest.check_raises "s too small" (Invalid_argument "Squeeze_u.run: s must be >= 2")
    (fun () -> ignore (Squeeze_u.run ~data ~s:1 ~q:3 ~eps:0.05 ~oracle ()));
  Alcotest.check_raises "bad eps" (Invalid_argument "Squeeze_u.run: eps must be positive")
    (fun () -> ignore (Squeeze_u.run ~data ~s:2 ~q:3 ~eps:0. ~oracle ()))

(* --- Squeeze-u2 (Algorithm 3) --- *)

let test_robust_bounds_delta_zero () =
  let chi = Squeeze_u.chi_ladder ~lo:0.2 ~hi:0.8 ~s:3 in
  let lo, hi = Squeeze_u2.robust_bounds ~delta:0. ~s:3 ~chi ~c:2 in
  Alcotest.(check (float 1e-9)) "lo = chi_1" chi.(1) lo;
  Alcotest.(check (float 1e-9)) "hi = chi_2" chi.(2) hi

let test_robust_bounds_widen_with_delta () =
  let chi = Squeeze_u.chi_ladder ~lo:0. ~hi:1. ~s:4 in
  let lo0, hi0 = Squeeze_u2.robust_bounds ~delta:0. ~s:4 ~chi ~c:2 in
  let lo1, hi1 = Squeeze_u2.robust_bounds ~delta:0.05 ~s:4 ~chi ~c:2 in
  Alcotest.(check bool) "lo shrinks" true (lo1 <= lo0);
  Alcotest.(check bool) "hi grows" true (hi1 >= hi0)

let test_robust_bounds_degenerate_denominator () =
  let chi = Squeeze_u.chi_ladder ~lo:0. ~hi:1. ~s:3 in
  let _, hi = Squeeze_u2.robust_bounds ~delta:0.5 ~s:3 ~chi ~c:3 in
  Alcotest.(check bool) "H unconstrained" true (hi = infinity)

let test_squeeze_u2_no_false_negatives_with_error () =
  let rng = Rng.create 71 in
  for trial = 1 to 20 do
    let d = 2 + Rng.int rng 3 in
    let data = pinned_dataset rng ~n:80 ~d in
    let u = Utility.random rng ~d in
    let delta = 0.05 in
    let oracle = Oracle.with_error ~delta ~rng:(Rng.split rng) u in
    let eps = 0.05 in
    let result =
      Squeeze_u2.run ~data ~s:(max 2 d) ~q:(3 * d) ~eps ~delta ~oracle ()
    in
    check_no_false_negatives ~eps ~u ~data ~output:result.Squeeze_u2.output
      (Printf.sprintf "squeeze-u2 trial %d" trial)
  done

let test_squeeze_u2_bounds_contain_truth_under_error () =
  let rng = Rng.create 73 in
  for _ = 1 to 20 do
    let d = 2 + Rng.int rng 3 in
    let data = pinned_dataset rng ~n:60 ~d in
    let u = Utility.random rng ~d in
    let delta = 0.03 in
    let oracle = Oracle.with_error ~delta ~rng:(Rng.split rng) u in
    let result =
      Squeeze_u2.run ~data ~s:(max 2 d) ~q:(3 * d) ~eps:0.05 ~delta ~oracle ()
    in
    (* The true ratios u_i / u_{i*} must stay inside the learned box. *)
    let i_star = result.Squeeze_u2.i_star in
    let ratio i = Vec.get u i /. Vec.get u i_star in
    Vec.iteri
      (fun i lo ->
        if i <> i_star then begin
          Alcotest.(check bool) "lo <= ratio" true (lo <= ratio i +. 1e-9);
          Alcotest.(check bool) "ratio <= hi" true
            (ratio i <= Vec.get result.Squeeze_u2.hi i +. 1e-9)
        end)
      result.Squeeze_u2.lo
  done

let test_squeeze_u2_matches_u1_when_delta_zero () =
  (* With delta = 0 and an exact user, Algorithm 3's ladder phase performs
     the Algorithm 1 updates, so the learned boxes coincide (phase-1 display
     points differ but identify the same i* on range-pinned data). *)
  let rng = Rng.create 79 in
  let d = 3 in
  let data = pinned_dataset rng ~n:50 ~d in
  let u = Utility.random rng ~d in
  let r1 = Squeeze_u.run ~data ~s:d ~q:9 ~eps:0.05 ~oracle:(Oracle.exact u) () in
  let r2 =
    Squeeze_u2.run ~data ~s:d ~q:9 ~eps:0.05 ~delta:0. ~oracle:(Oracle.exact u) ()
  in
  Alcotest.(check int) "same i*" r1.Squeeze_u.i_star r2.Squeeze_u2.i_star;
  Vec.iteri
    (fun i lo1 ->
      Alcotest.(check (float 1e-9)) "same lo" lo1 (Vec.get r2.Squeeze_u2.lo i);
      Alcotest.(check (float 1e-9)) "same hi" (Vec.get r1.Squeeze_u.hi i)
        (Vec.get r2.Squeeze_u2.hi i))
    r1.Squeeze_u.lo

(* --- Real-points algorithms (Algorithm 2 + UH-Random) --- *)

let strategies =
  [ ("random", Real_points.Random); ("minr", Real_points.MinR); ("mind", Real_points.MinD) ]

let test_real_points_no_false_negatives () =
  let rng = Rng.create 83 in
  List.iter
    (fun (label, strategy) ->
      for trial = 1 to 8 do
        let d = 2 + Rng.int rng 2 in
        let data = Generator.anti_correlated rng ~n:60 ~d in
        let u = Utility.random rng ~d in
        let oracle = Oracle.exact u in
        let eps = 0.05 in
        let result =
          Real_points.run ~trials:5 strategy ~data ~s:d ~q:(3 * d) ~eps ~oracle
            ~rng:(Rng.split rng)
        in
        check_no_false_negatives ~eps ~u ~data ~output:result.Real_points.output
          (Printf.sprintf "%s trial %d" label trial)
      done)
    strategies

let test_real_points_no_false_negatives_with_error () =
  let rng = Rng.create 89 in
  List.iter
    (fun (label, strategy) ->
      for trial = 1 to 5 do
        let d = 2 + Rng.int rng 2 in
        let data = Generator.anti_correlated rng ~n:50 ~d in
        let u = Utility.random rng ~d in
        let delta = 0.05 in
        let oracle = Oracle.with_error ~delta ~rng:(Rng.split rng) u in
        let eps = 0.05 in
        let result =
          Real_points.run ~delta ~trials:5 strategy ~data ~s:d ~q:(3 * d) ~eps
            ~oracle ~rng:(Rng.split rng)
        in
        check_no_false_negatives ~eps ~u ~data ~output:result.Real_points.output
          (Printf.sprintf "%s with error, trial %d" label trial)
      done)
    strategies

let test_real_points_output_within_skyline () =
  let rng = Rng.create 97 in
  let data = Generator.anti_correlated rng ~n:80 ~d:3 in
  let u = Utility.random rng ~d:3 in
  let eps = 0.05 in
  let sky_ids =
    List.map Tuple.id (Dataset.to_list (Skyline.prune_eps_dominated ~eps data))
  in
  let result =
    Real_points.run Real_points.Random ~data ~s:3 ~q:9 ~eps
      ~oracle:(Oracle.exact u) ~rng:(Rng.split rng)
  in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "output within (1+eps)-skyline" true
        (List.mem (Tuple.id p) sky_ids))
    (Dataset.tuples result.Real_points.output)

let test_real_points_region_contains_truth () =
  let rng = Rng.create 101 in
  let data = Generator.independent rng ~n:60 ~d:3 in
  let u = Utility.random rng ~d:3 in
  let result =
    Real_points.run Real_points.Random ~data ~s:3 ~q:9 ~eps:0.05
      ~oracle:(Oracle.exact u) ~rng:(Rng.split rng)
  in
  let poly = Region.polytope result.Real_points.region in
  Alcotest.(check bool) "true utility in final region" true
    (Indq_geom.Polytope.contains ~tol:1e-7 poly (Utility.normalize_sum u))

let test_real_points_early_stop_single_candidate () =
  (* A dataset where one tuple (1+eps)-dominates everything: the candidate
     set collapses immediately and no questions are needed. *)
  let data = Dataset.create [| [| 1.; 1. |]; [| 0.5; 0.5 |]; [| 0.2; 0.2 |] |] in
  let oracle = Oracle.exact (vec [| 1.; 1. |]) in
  let result =
    Real_points.run Real_points.Random ~data ~s:2 ~q:6 ~eps:0.05 ~oracle
      ~rng:(Rng.create 0)
  in
  Alcotest.(check int) "single candidate" 1 (Dataset.size result.Real_points.output);
  Alcotest.(check int) "no questions" 0 result.Real_points.questions_used

let test_score_display_set_prefers_informative () =
  (* Two identical tuples give no information (region unchanged); two very
     different tuples split the region.  The informative pair must score
     lower. *)
  let region = Region.initial ~d:2 in
  let t v = Tuple.make ~id:0 (vec v) in
  let dull = [| t [| 0.5; 0.5 |]; t [| 0.5; 0.5 |] |] in
  let sharp = [| t [| 1.; 0. |]; t [| 0.; 1. |] |] in
  let score set = Real_points.score_display_set ~delta:0. ~metric:`Width region set in
  Alcotest.(check bool) "sharp beats dull" true (score sharp < score dull)

(* --- Algo dispatcher --- *)

let test_algo_names () =
  List.iter
    (fun name ->
      Alcotest.(check bool) "roundtrip" true
        (Algo.of_string (Algo.to_string name) = name))
    Algo.all;
  Alcotest.(check bool) "case insensitive" true (Algo.of_string "mind" = Algo.MinD);
  Alcotest.check_raises "unknown" (Invalid_argument "Algo.of_string: unknown algorithm nope")
    (fun () -> ignore (Algo.of_string "nope"))

let test_algo_default_config () =
  let c = Algo.default_config ~d:4 in
  Alcotest.(check int) "s" 4 c.Algo.s;
  Alcotest.(check int) "q" 12 c.Algo.q;
  Alcotest.(check (float 1e-9)) "eps" 0.05 c.Algo.eps

let test_algo_run_all () =
  let rng = Rng.create 103 in
  let d = 3 in
  let data = pinned_dataset rng ~n:60 ~d in
  let u = Utility.random rng ~d in
  let config = Algo.default_config ~d in
  List.iter
    (fun name ->
      let oracle = Oracle.exact u in
      let result = Algo.run name config ~data ~oracle ~rng:(Rng.split rng) in
      Alcotest.(check bool)
        (Algo.to_string name ^ " asked some questions")
        true
        (result.Algo.questions_used >= 0 && result.Algo.questions_used <= config.Algo.q);
      check_no_false_negatives ~eps:config.Algo.eps ~u ~data
        ~output:result.Algo.output
        (Algo.to_string name))
    Algo.all

let test_algo_metrics_count_questions () =
  (* The "oracle.questions" counter delta in run_result.metrics must agree
     with the oracle's own accounting for every algorithm. *)
  let rng = Rng.create 109 in
  let d = 3 in
  let data = pinned_dataset rng ~n:60 ~d in
  let u = Utility.random rng ~d in
  let config = Algo.default_config ~d in
  List.iter
    (fun name ->
      let oracle = Oracle.exact u in
      let result = Algo.run name config ~data ~oracle ~rng:(Rng.split rng) in
      let counted =
        match List.assoc_opt "oracle.questions" result.Algo.metrics with
        | Some v -> int_of_float v
        | None -> -1
      in
      Alcotest.(check int)
        (Algo.to_string name ^ ": oracle.questions counter = questions_used")
        result.Algo.questions_used counted)
    Algo.all

let test_algo_metrics_count_questions_recording () =
  (* Wrapping the oracle in Oracle.recording must not double-count. *)
  let rng = Rng.create 113 in
  let d = 3 in
  let data = pinned_dataset rng ~n:40 ~d in
  let u = Utility.random rng ~d in
  let oracle, _rounds = Oracle.recording (Oracle.exact u) in
  let result =
    Algo.run Algo.Squeeze_u (Algo.default_config ~d) ~data ~oracle
      ~rng:(Rng.split rng)
  in
  Alcotest.(check (float 1e-9))
    "recorded oracle counts each question once"
    (float_of_int result.Algo.questions_used)
    (List.assoc "oracle.questions" result.Algo.metrics)

let test_algo_squeeze_dispatches_on_delta () =
  let rng = Rng.create 107 in
  let d = 2 in
  let data = pinned_dataset rng ~n:40 ~d in
  let u = Utility.random rng ~d in
  let config = { (Algo.default_config ~d) with Algo.delta = 0.05 } in
  let oracle = Oracle.with_error ~delta:0.05 ~rng:(Rng.split rng) u in
  let result = Algo.run Algo.Squeeze_u config ~data ~oracle ~rng:(Rng.split rng) in
  check_no_false_negatives ~eps:config.Algo.eps ~u ~data ~output:result.Algo.output
    "dispatched squeeze-u2"

(* --- Session (effects-based incremental driver) --- *)

module Session = Indq_core.Session

let drive_session session u =
  let rec loop () =
    match Session.current session with
    | Session.Asking options ->
      Session.answer session (Utility.best_index u options);
      loop ()
    | Session.Finished result -> result
  in
  loop ()

let test_session_matches_batch_run () =
  (* Driving the coroutine with the same exact-user policy must reproduce
     Algo.run exactly (same questions, same output). *)
  let rng = Rng.create 211 in
  let d = 3 in
  let data = pinned_dataset rng ~n:60 ~d in
  let u = Utility.random rng ~d in
  let config = Algo.default_config ~d in
  List.iter
    (fun name ->
      let algo_rng_a = Rng.create 5 and algo_rng_b = Rng.create 5 in
      let batch = Algo.run name config ~data ~oracle:(Oracle.exact u) ~rng:algo_rng_a in
      let session = Session.start name config ~data ~rng:algo_rng_b in
      let live = drive_session session u in
      let ids r =
        List.sort compare (List.map Tuple.id (Dataset.to_list r.Algo.output))
      in
      Alcotest.(check (list int))
        (Algo.to_string name ^ ": same output")
        (ids batch) (ids live);
      Alcotest.(check int)
        (Algo.to_string name ^ ": same question count")
        batch.Algo.questions_used live.Algo.questions_used)
    Algo.all

let test_session_counts_questions () =
  let rng = Rng.create 223 in
  let d = 2 in
  let data = pinned_dataset rng ~n:40 ~d in
  let u = Utility.random rng ~d in
  let session =
    Session.start Algo.Squeeze_u (Algo.default_config ~d) ~data ~rng:(Rng.split rng)
  in
  let result = drive_session session u in
  Alcotest.(check int) "session count matches result"
    result.Algo.questions_used
    (Session.questions_asked session);
  Alcotest.(check bool) "result accessor" true (Session.result session <> None)

let test_session_answer_guards () =
  let rng = Rng.create 227 in
  let d = 2 in
  let data = pinned_dataset rng ~n:30 ~d in
  let session =
    Session.start Algo.Squeeze_u (Algo.default_config ~d) ~data ~rng
  in
  (match Session.current session with
  | Session.Asking options ->
    Alcotest.check_raises "out of range"
      (Session.Error
         (Session.Choice_out_of_range
            { choice = Array.length options; options = Array.length options }))
      (fun () -> Session.answer session (Array.length options))
  | Session.Finished _ -> Alcotest.fail "should be asking");
  (* Finish it, then answering must fail. *)
  let u = Utility.random (Rng.create 0) ~d in
  ignore (drive_session session u);
  Alcotest.check_raises "already finished"
    (Session.Error Session.Already_finished) (fun () ->
      Session.answer session 0)

(* Property: across random configurations and algorithms, never a false
   negative with exact users. *)
let prop_never_false_negatives =
  QCheck2.Test.make ~count:25 ~name:"all algorithms: I subset of output"
    QCheck2.Gen.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let d = 2 + Rng.int rng 2 in
      let data = pinned_dataset rng ~n:(30 + Rng.int rng 50) ~d in
      let u = Utility.random rng ~d in
      let config =
        {
          Algo.s = max 2 d;
          q = d + Rng.int rng (3 * d);
          eps = 0.02 +. Rng.float rng 0.15;
          delta = 0.;
          trials = 3;
          exact_prune = false;
        }
      in
      List.for_all
        (fun name ->
          let oracle = Oracle.exact u in
          let result = Algo.run name config ~data ~oracle ~rng:(Rng.split rng) in
          not
            (Indist.has_false_negatives ~eps:config.Algo.eps u ~data
               ~output:result.Algo.output))
        Algo.all)

let () =
  Alcotest.run "algorithms"
    [
      ( "squeeze-u",
        [
          Alcotest.test_case "chi ladder" `Quick test_chi_ladder;
          Alcotest.test_case "ladder points" `Quick test_ladder_points_shape;
          Alcotest.test_case "ladder brackets truth" `Quick test_ladder_choice_brackets_truth;
          Alcotest.test_case "finds i*" `Quick test_squeeze_u_finds_i_star;
          Alcotest.test_case "lemma 1 bound" `Quick test_squeeze_u_lemma1_bound;
          Alcotest.test_case "no false negatives" `Quick test_squeeze_u_no_false_negatives;
          Alcotest.test_case "bounds contain truth" `Quick test_squeeze_u_bounds_contain_truth;
          Alcotest.test_case "theorem 2 bound" `Quick test_squeeze_u_theorem2_bound;
          Alcotest.test_case "question budget" `Quick test_squeeze_u_question_budget;
          Alcotest.test_case "zero questions" `Quick test_squeeze_u_zero_questions;
          Alcotest.test_case "unequal ranges" `Quick
            test_squeeze_u_unequal_ranges_no_false_negatives;
          Alcotest.test_case "one dimension" `Quick test_squeeze_u_one_dimension;
          Alcotest.test_case "large eps" `Quick test_squeeze_u_large_eps;
          Alcotest.test_case "guards" `Quick test_squeeze_u_guards;
        ] );
      ( "squeeze-u2",
        [
          Alcotest.test_case "robust bounds delta=0" `Quick test_robust_bounds_delta_zero;
          Alcotest.test_case "bounds widen with delta" `Quick
            test_robust_bounds_widen_with_delta;
          Alcotest.test_case "degenerate denominator" `Quick
            test_robust_bounds_degenerate_denominator;
          Alcotest.test_case "no false negatives (erring user)" `Quick
            test_squeeze_u2_no_false_negatives_with_error;
          Alcotest.test_case "bounds contain ratios (erring user)" `Quick
            test_squeeze_u2_bounds_contain_truth_under_error;
          Alcotest.test_case "delta=0 matches Algorithm 1" `Quick
            test_squeeze_u2_matches_u1_when_delta_zero;
        ] );
      ( "real-points",
        [
          Alcotest.test_case "no false negatives" `Quick test_real_points_no_false_negatives;
          Alcotest.test_case "no false negatives (erring user)" `Quick
            test_real_points_no_false_negatives_with_error;
          Alcotest.test_case "output within skyline" `Quick
            test_real_points_output_within_skyline;
          Alcotest.test_case "region keeps truth" `Quick test_real_points_region_contains_truth;
          Alcotest.test_case "early stop" `Quick test_real_points_early_stop_single_candidate;
          Alcotest.test_case "display scoring" `Quick test_score_display_set_prefers_informative;
        ] );
      ( "session",
        [
          Alcotest.test_case "matches batch run" `Quick test_session_matches_batch_run;
          Alcotest.test_case "counts questions" `Quick test_session_counts_questions;
          Alcotest.test_case "answer guards" `Quick test_session_answer_guards;
        ] );
      ( "dispatcher",
        [
          Alcotest.test_case "names" `Quick test_algo_names;
          Alcotest.test_case "default config" `Quick test_algo_default_config;
          Alcotest.test_case "run all" `Quick test_algo_run_all;
          Alcotest.test_case "metrics count questions" `Quick
            test_algo_metrics_count_questions;
          Alcotest.test_case "recording does not double-count" `Quick
            test_algo_metrics_count_questions_recording;
          Alcotest.test_case "delta dispatch" `Quick test_algo_squeeze_dispatches_on_delta;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_never_false_negatives ]);
    ]
