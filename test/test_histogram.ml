(* Tests for Indq_obs.Histogram: exact log-bucketing, the algebraic laws
   the merge protocol relies on (combine commutes and associates on
   integer-valued observations, sub_snap inverts combine), the
   cross-domain snapshot/since/merge round trip, and the end-to-end
   determinism guarantee — a sweep's JSON report with histograms included
   is byte-identical on a 4-domain pool and on the sequential harness. *)

module Histogram = Indq_obs.Histogram
module Span = Indq_obs.Span
module Experiments = Indq_experiments.Experiments
module Report = Indq_experiments.Report
module Pool = Indq_exec.Pool
module Algo = Indq_core.Algo
module Generator = Indq_dataset.Generator
module Rng = Indq_util.Rng

let h_scratch = Histogram.make "test.hist.scratch"

(* Build a snap through the real observe path, as a delta so qcheck
   iterations don't see each other. *)
let snap_of_list xs =
  let before = Histogram.value h_scratch in
  List.iter (Histogram.observe h_scratch) xs;
  Histogram.sub_snap (Histogram.value h_scratch) before

let snap_testable =
  Alcotest.testable
    (fun ppf (s : Histogram.snap) ->
      Format.fprintf ppf "{count=%d; sum=%g; zeros=%d; buckets=[%s]}" s.count
        s.sum s.zeros
        (String.concat ";"
           (List.map (fun (i, n) -> Printf.sprintf "%d:%d" i n) s.buckets)))
    (fun a b -> a = b)

(* --- bucketing --- *)

let test_bucket_bounds_inverse =
  QCheck2.Test.make ~count:500 ~name:"bucket_bounds inverts bucket_of"
    QCheck2.Gen.(pfloat)
    (fun v ->
      QCheck2.assume (Float.is_finite v && v > 0.);
      let lo, hi = Histogram.bucket_bounds (Histogram.bucket_of v) in
      lo <= v && v < hi)

let test_bucket_monotone =
  QCheck2.Test.make ~count:500 ~name:"bucket_of is monotone"
    QCheck2.Gen.(pair pfloat pfloat)
    (fun (a, b) ->
      QCheck2.assume
        (Float.is_finite a && Float.is_finite b && a > 0. && b > 0.);
      let x = Float.min a b and y = Float.max a b in
      Histogram.bucket_of x <= Histogram.bucket_of y)

let test_bucket_known_values () =
  (* 1.0 has frexp mantissa 0.5, exponent 1 — the first sub-bucket of
     [1, 2). *)
  Alcotest.(check int) "bucket of 1" 4 (Histogram.bucket_of 1.);
  let lo, hi = Histogram.bucket_bounds 4 in
  Alcotest.(check (float 0.)) "lower bound exact" 1. lo;
  Alcotest.(check bool) "width ~ 2^0.25" true (hi > 1.18 && hi < 1.20);
  (* Powers of two always open a fresh quartet. *)
  Alcotest.(check int) "bucket of 2" 8 (Histogram.bucket_of 2.);
  Alcotest.(check int) "bucket of 0.5" 0 (Histogram.bucket_of 0.5)

(* --- snap algebra --- *)

let int_obs_gen =
  (* Integer-valued observations (plus some zeros) — the regime every
     Count-unit histogram lives in, where float sums are exact. *)
  QCheck2.Gen.(list_size (int_bound 40) (map float_of_int (int_bound 1000)))

let test_combine_commutes =
  QCheck2.Test.make ~count:200 ~name:"combine commutes"
    QCheck2.Gen.(pair int_obs_gen int_obs_gen)
    (fun (xs, ys) ->
      let a = snap_of_list xs and b = snap_of_list ys in
      Histogram.combine a b = Histogram.combine b a)

let test_combine_associates =
  QCheck2.Test.make ~count:200 ~name:"combine associates on integer obs"
    QCheck2.Gen.(triple int_obs_gen int_obs_gen int_obs_gen)
    (fun (xs, ys, zs) ->
      let a = snap_of_list xs
      and b = snap_of_list ys
      and c = snap_of_list zs in
      Histogram.combine (Histogram.combine a b) c
      = Histogram.combine a (Histogram.combine b c))

let test_sub_snap_inverts_combine =
  QCheck2.Test.make ~count:200 ~name:"sub_snap inverts combine"
    QCheck2.Gen.(pair int_obs_gen int_obs_gen)
    (fun (xs, ys) ->
      let a = snap_of_list xs and b = snap_of_list ys in
      Histogram.sub_snap (Histogram.combine a b) b = a)

let test_combine_empty_identity =
  QCheck2.Test.make ~count:200 ~name:"empty is the identity"
    int_obs_gen
    (fun xs ->
      let a = snap_of_list xs in
      Histogram.combine a (Histogram.empty Histogram.Count) = a
      && Histogram.combine (Histogram.empty Histogram.Count) a = a)

let test_snap_counts () =
  let s = snap_of_list [ 3.; 0.; 7.; -1.; 3. ] in
  Alcotest.(check int) "count includes non-positive" 5 s.Histogram.count;
  Alcotest.(check int) "zeros" 2 s.Histogram.zeros;
  Alcotest.(check (float 0.)) "sum exact" 12. s.Histogram.sum;
  Alcotest.(check int) "bucket occupancy" 2
    (List.assoc (Histogram.bucket_of 3.) s.Histogram.buckets)

(* --- percentiles --- *)

let test_percentile_monotone =
  QCheck2.Test.make ~count:200 ~name:"p50 <= p90 <= p99"
    int_obs_gen
    (fun xs ->
      let s = snap_of_list xs in
      Histogram.p50 s <= Histogram.p90 s
      && Histogram.p90 s <= Histogram.p99 s)

let test_percentile_single_value () =
  let s = snap_of_list [ 5.; 5.; 5. ] in
  let expected = snd (Histogram.bucket_bounds (Histogram.bucket_of 5.)) in
  List.iter
    (fun p ->
      Alcotest.(check (float 0.)) "all percentiles in 5's bucket" expected
        (Histogram.percentile s p))
    [ 0.5; 0.9; 0.99; 1.0 ];
  Alcotest.(check bool) "upper bound covers the value" true (expected > 5.)

let test_percentile_empty_and_zeros () =
  Alcotest.(check (float 0.)) "empty snap" 0.
    (Histogram.p99 (Histogram.empty Histogram.Count));
  let s = snap_of_list [ 0.; 0.; 0.; 100. ] in
  Alcotest.(check (float 0.)) "rank among zeros" 0. (Histogram.p50 s);
  Alcotest.(check bool) "tail sees the positive obs" true
    (Histogram.p99 s > 100.);
  Alcotest.(check (float 0.)) "mean" 25. (Histogram.mean s)

(* --- registry and cross-domain protocol --- *)

let test_registry_shared_handle () =
  let a = Histogram.make "test.hist.shared" in
  let b = Histogram.make "test.hist.shared" in
  let c0 = (Histogram.value a).Histogram.count in
  Histogram.observe a 2.;
  Alcotest.(check int) "same cell" (c0 + 1) (Histogram.value b).Histogram.count;
  Alcotest.(check string) "name" "test.hist.shared" (Histogram.name b);
  Alcotest.(check bool) "unit fixed by first registration" true
    (Histogram.kind b = Histogram.Count)

let test_snapshot_since_merge_round_trip () =
  let h = Histogram.make "test.hist.domains" in
  let before_local = Histogram.value h in
  let delta =
    Domain.join
      (Domain.spawn (fun () ->
           let t0 = Histogram.snapshot () in
           Histogram.observe h 4.;
           Histogram.observe h 4.;
           Histogram.observe h 9.;
           Histogram.since t0))
  in
  (* The worker's observations are invisible until merged. *)
  Alcotest.check snap_testable "domain-local before merge" before_local
    (Histogram.value h);
  Histogram.merge delta;
  let after = Histogram.sub_snap (Histogram.value h) before_local in
  Alcotest.(check int) "merged count" 3 after.Histogram.count;
  Alcotest.(check (float 0.)) "merged sum" 17. after.Histogram.sum;
  Alcotest.check snap_testable "merge lands the exact delta" after
    (List.assoc "test.hist.domains" delta);
  (* [since] drops untouched histograms entirely. *)
  Alcotest.(check bool) "sparse delta" true
    (not (List.mem_assoc "test.hist.scratch" delta))

(* --- end-to-end: -j 4 report == -j 1 report --- *)

let test_parallel_report_byte_identical () =
  let points =
    let rng = Rng.create 77 in
    let data = Generator.independent rng ~n:60 ~d:3 in
    let config = Algo.default_config ~d:3 in
    [ (1., data, config); (2., data, { config with Algo.q = 4 }) ]
  in
  let run ?pool () =
    Span.enable ();
    Fun.protect ~finally:Span.disable (fun () ->
        Experiments.run_sweep ?pool ~title:"det" ~x_label:"x"
          ~algorithms:Algo.all ~points ~utilities:3 ~user_delta:0.02 ~seed:41
          ())
  in
  let sequential = Report.sweep_to_json ~with_times:false (run ()) in
  let parallel =
    Pool.with_pool ~domains:4 (fun pool ->
        Report.sweep_to_json ~with_times:false (run ~pool ()))
  in
  Alcotest.(check string) "-j 4 == -j 1, histograms included" sequential
    parallel;
  (* The report must actually carry histogram payloads for the identity to
     mean anything. *)
  let contains hay needle =
    let hl = String.length hay and nl = String.length needle in
    let rec scan i =
      i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "pivot histogram present" true
    (contains sequential "lp.pivots_per_reopt");
  Alcotest.(check bool) "region histogram present" true
    (contains sequential "region.halfspaces_per_round");
  Alcotest.(check bool) "seconds histograms filtered" true
    (not (contains sequential "session.round_latency"))

let () =
  Alcotest.run "histogram"
    [
      ( "bucketing",
        [
          QCheck_alcotest.to_alcotest test_bucket_bounds_inverse;
          QCheck_alcotest.to_alcotest test_bucket_monotone;
          Alcotest.test_case "known values" `Quick test_bucket_known_values;
        ] );
      ( "algebra",
        [
          QCheck_alcotest.to_alcotest test_combine_commutes;
          QCheck_alcotest.to_alcotest test_combine_associates;
          QCheck_alcotest.to_alcotest test_sub_snap_inverts_combine;
          QCheck_alcotest.to_alcotest test_combine_empty_identity;
          Alcotest.test_case "snap counts" `Quick test_snap_counts;
        ] );
      ( "percentiles",
        [
          QCheck_alcotest.to_alcotest test_percentile_monotone;
          Alcotest.test_case "single value" `Quick test_percentile_single_value;
          Alcotest.test_case "empty and zeros" `Quick
            test_percentile_empty_and_zeros;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "shared handle" `Quick test_registry_shared_handle;
          Alcotest.test_case "snapshot/since/merge round trip" `Quick
            test_snapshot_since_merge_round_trip;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "-j 4 report byte-identical" `Quick
            test_parallel_report_byte_identical;
        ] );
    ]
