(* indq-lint: repo-specific determinism and invariant rules, checked on the
   surface syntax of every source file.

   The linter is deliberately *syntactic* (ppxlib parsetree, no typing): it
   runs on any file in isolation, needs no build context, and its verdicts
   are stable under refactoring.  The price is that every rule is a
   heuristic — the catalog below documents exactly what each one matches so
   that a clean lint is a meaningful (if not airtight) certificate.

   Rule catalog (see DESIGN.md §8 for rationale):

   IND001  hash-order determinism.  [Hashtbl.iter]/[fold]/[to_seq*] produce
           results in bucket order, which depends on insertion history and
           (under [~random:true] or functorial hashes) on the process.  A
           use is flagged unless the *enclosing top-level definition* also
           applies a sort ([List.sort]/[sort_uniq]/[stable_sort]/
           [Array.sort]/[Seq.sort…]) — the "adjacent sort" discipline — or
           carries an explicit [@lint.allow] with a commutativity argument.

   IND002  randomness source.  All randomness must flow through [Util.Rng]
           (splittable, seeded, deterministic).  Any mention of the stdlib
           [Random] module — [Random.self_init], [Random.int],
           [Random.State.make], … — is flagged unconditionally.

   IND003  wall/CPU clock.  [Sys.time], [Unix.gettimeofday], [Unix.time],
           [Unix.times] may only appear in lib/obs/ and lib/util/timer.ml;
           everything else must go through [Timer]/[Span] so that timing
           never leaks into algorithm results.

   IND004  float hygiene.  Polymorphic [=], [<>], [compare], [min], [max]
           on floats are NaN-unsound ([compare nan nan = 0] but
           [nan = nan] is false) and box their arguments.  An application
           of an *unqualified* (or [Stdlib.]-qualified) one of these is
           flagged when an argument is syntactically float-valued: a float
           literal, a [+.]/[-.]/[*.]/[/.]/[**]/[~-.] application, a
           [Float.…] call (minus the int/bool-returning ones), [sqrt] and
           friends, or a [(… : float)] constraint.

   IND005  incremental-tableau confinement.  The bit-determinism argument
           for the dual-simplex path rests on every [Lp.Live] tableau being
           a pure replay of a region's cut list (DESIGN.md §10): frozen
           handles are only forked, never mutated, and the replay order is
           the cut-tree order.  That discipline is audited once, in
           lib/geometry/polytope.ml; any other use of [Lp.Live] (outside
           lib/lp/ itself) could re-optimize in an order that visits a
           different vertex of a degenerate optimal face, so any mention of
           a [Live]-qualified identifier elsewhere is flagged.

   IND006  observability discipline.  Every counter/span/histogram/phase
           name is a string literal at its [Counter.make]/[Span.timed]/
           [Histogram.make]/[Profile.phase] site (dynamic names cannot be
           doc-checked and are flagged, except inside lib/obs/ itself,
           whose merge plumbing re-registers names by value).  The driver
           then cross-checks the collected name set against the
           backtick-quoted dotted tokens of README.md/DESIGN.md: a code
           name missing from the docs is *undocumented*; a doc token whose
           namespace (prefix before the first dot) is used by the code but
           which no code site registers is *stale*.  The [indq profile]
           phase catalog participates in both directions through its
           [Profile.phase] entries.

   IND007  suppression hygiene.  The only way to silence a finding is
           [@lint.allow ("IND00x", "justification")] on the expression,
           binding, or — as [@@@lint.allow …] — the rest of the file.  A
           payload that is not a (code, non-empty justification) pair of
           string literals is itself a finding, so suppressions stay
           auditable.

   IND008  typed failure channel.  Runtime failures in lib/ must surface
           through a module's typed error (Lp.Failed, Dataset.Load_error,
           Session.Error, Fault.Injected, Polytope.Solver_error, …) that
           callers can match on — never through the anonymous
           [Failure]/[Invalid_argument] channel, whose payload is an
           unmatchable string.  Flagged under lib/: any [failwith]
           application and any explicitly constructed [Failure _] or
           [Invalid_argument _] (so [raise (Failure …)] and
           [raise_notrace (Invalid_argument …)] are both caught).  The
           [invalid_arg] guard remains legal: it marks a caller bug
           (precondition violation) in the stdlib's own idiom, not a
           runtime failure a resilient caller should handle.  Catching
           these exceptions (patterns) is always fine.

   IND009  unchecked-access confinement.  The flat-Bigarray kernels in
           lib/linalg/ are the only code allowed to skip bounds checks:
           their [unsafe_get]/[unsafe_set] loops sit directly behind
           dimension guards, and that pairing is what the kernel review
           audits.  Anywhere else, an identifier ending in
           [unsafe_get]/[unsafe_set] (Bigarray, Array, Bytes, …) trades a
           checked error for silent memory corruption and is flagged.

   IND010  analyzer-attribute hygiene.  The indq-analyze markers —
           [@indq.alloc_free], [@indq.domain_safe], [@indq.alloc_ok] —
           are audit records, not switches: each must carry a single
           non-empty string literal saying why the claim holds (the
           analyzer reads the same payload as ANA003, but the lint runs
           on every source file, with or without a .cmt).  A bare or
           empty-string marker silences a semantic check without leaving
           a reviewable justification and is flagged. *)

open Ppxlib

type finding = {
  file : string;
  line : int;
  col : int;
  code : string;
  message : string;
}

let finding_compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.code b.code

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" f.file f.line f.col f.code f.message

(* An obs name literal registered by the code: [Counter.make "lp.solves"]
   or [Span.timed "squeeze_u.ladder"]. *)
type obs_name = { obs_name : string; obs_file : string; obs_line : int }

type report = { findings : finding list; obs_names : obs_name list }

(* --- Path scoping ------------------------------------------------------- *)

(* Paths are compared repo-relative with '/' separators; the driver is
   responsible for normalizing what it passes as [path]. *)
let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let clock_allowed path =
  has_prefix ~prefix:"lib/obs/" path || path = "lib/util/timer.ml"

let live_allowed path =
  path = "lib/geometry/polytope.ml" || has_prefix ~prefix:"lib/lp/" path

let unsafe_allowed path = has_prefix ~prefix:"lib/linalg/" path

(* lib/obs implements the registry: its merge/replay plumbing re-creates
   counters from runtime values, which is not a doc-discipline violation. *)
let obs_impl path = has_prefix ~prefix:"lib/obs/" path

(* IND008 is scoped to the library stack: tests, tools, bench and bin may
   still fail fast with anonymous exceptions. *)
let typed_errors_required path = has_prefix ~prefix:"lib/" path

(* --- Longident helpers -------------------------------------------------- *)

let fn_path (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (try Some (Longident.flatten_exn txt) with _ -> None)
  | _ -> None

let rec last = function [] -> "" | [ x ] -> x | _ :: tl -> last tl

let modules path = match List.rev path with [] -> [] | _ :: m -> List.rev m

(* --- Rule predicates ---------------------------------------------------- *)

let hash_order_fns = [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]

let is_hash_order_fn path =
  List.mem (last path) hash_order_fns && List.mem "Hashtbl" (modules path)

let sort_fns = [ "sort"; "sort_uniq"; "stable_sort"; "fast_sort"; "sorted_merge" ]

let is_sort_fn path = List.mem (last path) sort_fns

let is_stdlib_random path = List.mem "Random" (modules path)

let clock_fns =
  [ [ "Sys"; "time" ]; [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ]; [ "Unix"; "times" ] ]

let is_clock_fn path =
  let path = match path with "Stdlib" :: tl -> tl | p -> p in
  List.mem path clock_fns

let is_failwith path =
  match path with [ "failwith" ] | [ "Stdlib"; "failwith" ] -> true | _ -> false

(* An explicitly constructed anonymous failure exception ([Failure "…"],
   [Stdlib.Invalid_argument msg], …) — the raising side of IND008. *)
let is_anonymous_failure_construct (lid : Longident.t) =
  match lid with
  | Lident ("Failure" | "Invalid_argument")
  | Ldot (Lident "Stdlib", ("Failure" | "Invalid_argument")) -> true
  | _ -> false

let poly_compare_ops = [ "="; "<>"; "compare"; "min"; "max" ]

let is_poly_compare path =
  match path with
  | [ op ] | [ "Stdlib"; op ] -> List.mem op poly_compare_ops
  | _ -> false

let float_unary_fns =
  [ "sqrt"; "exp"; "log"; "log10"; "log1p"; "expm1"; "abs_float"; "float_of_int";
    "float_of_string"; "ceil"; "floor"; "mod_float"; "ldexp" ]

(* [Float.…] functions that do NOT return float (so an application of them
   is not float-valued evidence). *)
let float_module_non_float =
  [ "compare"; "equal"; "to_int"; "to_string"; "is_nan"; "is_finite";
    "is_integer"; "hash"; "sign_bit"; "classify_float" ]

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let rec floatish (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint (_, { ptyp_desc = Ptyp_constr ({ txt = Lident "float"; _ }, []); _ }) ->
    true
  | Pexp_apply (fn, _) -> (
    match fn_path fn with
    | Some [ op ] when List.mem op float_ops -> true
    | Some [ op ] when List.mem op float_unary_fns -> true
    | Some path when last (modules path) = "Float" ->
      not (List.mem (last path) float_module_non_float)
    | _ -> false)
  | Pexp_ifthenelse (_, e1, Some e2) -> floatish e1 || floatish e2
  | Pexp_sequence (_, e1) -> floatish e1
  | _ -> false

(* A [Live]-qualified identifier: [Lp.Live.add_cut], [Live.copy], … *)
let is_live_use path = List.mem "Live" (modules path)

let is_unsafe_access path =
  match last path with "unsafe_get" | "unsafe_set" -> true | _ -> false

(* [Counter.make]/[Span.timed]/[Histogram.make]/[Profile.phase]
   application: returns the name argument — the first unlabelled one, so
   labelled arguments like [Histogram.make ~unit_:Seconds "…"] still
   resolve to the name. *)
let obs_registration fn args =
  let tail2 path = match List.rev path with b :: a :: _ -> [ a; b ] | _ -> [] in
  match fn_path fn with
  | Some path
    when tail2 path = [ "Counter"; "make" ]
         || tail2 path = [ "Span"; "timed" ]
         || tail2 path = [ "Histogram"; "make" ]
         || tail2 path = [ "Profile"; "phase" ] ->
    List.find_map
      (fun (label, arg) ->
        match label with Nolabel -> Some arg | _ -> None)
      args
  | _ -> None

(* --- Suppression -------------------------------------------------------- *)

type allow = { allow_code : string; allow_why : string }

let string_const (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* The indq-analyze markers checked by IND010 (tools/analyze reads the
   same payloads from the typedtree as ANA003; the lint covers files the
   analyzer never sees a .cmt for). *)
let indq_marker_names =
  [ "indq.alloc_free"; "indq.domain_safe"; "indq.alloc_ok" ]

(* [@lint.allow ("IND00x", "justification")] *)
let parse_allow (attr : attribute) =
  if attr.attr_name.txt <> "lint.allow" then None
  else
    let malformed =
      Error
        "malformed [@lint.allow] payload: expected a (\"IND00x\", \
         \"justification\") pair of string literals"
    in
    let payload_expr =
      match attr.attr_payload with
      | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> Some e
      | _ -> None
    in
    let result =
      match payload_expr with
      | Some { pexp_desc = Pexp_tuple [ a; b ]; _ } -> (
        match (string_const a, string_const b) with
        | Some code, Some why when String.trim why <> "" ->
          Ok { allow_code = code; allow_why = why }
        | Some code, Some _ ->
          Error
            (Printf.sprintf
               "[@lint.allow] for %s has an empty justification: use \
                [@lint.allow (%S, \"why this is sound\")]"
               code code)
        | _ -> malformed)
      | Some e -> (
        match string_const e with
        | Some code ->
          Error
            (Printf.sprintf
               "[@lint.allow] for %s is missing its justification: use \
                [@lint.allow (%S, \"why this is sound\")]"
               code code)
        | None -> malformed)
      | None -> malformed
    in
    Some result

(* --- The per-file checker ----------------------------------------------- *)

let lint_structure ~path (str : structure) : report =
  let findings = ref [] in
  let names = ref [] in
  (* Stack of active suppression scopes, innermost first. *)
  let allows : allow list list ref = ref [] in
  let suppressed code =
    List.exists (List.exists (fun a -> a.allow_code = code)) !allows
  in
  let emit (loc : Location.t) code message =
    if not (suppressed code) then
      findings :=
        { file = path;
          line = loc.loc_start.pos_lnum;
          col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
          code;
          message }
        :: !findings
  in
  (* Attributes at any level: collect well-formed allows, report the rest. *)
  let allows_of_attrs attrs =
    List.filter_map
      (fun attr ->
        match parse_allow attr with
        | None -> None
        | Some (Ok a) -> Some a
        | Some (Error msg) ->
          emit attr.attr_loc "IND007" msg;
          None)
      attrs
  in
  (* Does this top-level item apply a sort anywhere?  (The "adjacent sort"
     discipline for IND001 is scoped to the enclosing definition.) *)
  let item_has_sort item =
    let found = ref false in
    let scan =
      object
        inherit Ast_traverse.iter as super

        method! expression e =
          (match e.pexp_desc with
          | Pexp_ident _ -> (
            match fn_path e with
            | Some p when is_sort_fn p -> found := true
            | _ -> ())
          | _ -> ());
          super#expression e
      end
    in
    scan#structure_item item;
    !found
  in
  let in_sorted_item = ref false in
  let checker =
    object
      inherit Ast_traverse.iter as super

      method! value_binding vb =
        let scope = allows_of_attrs vb.pvb_attributes in
        allows := scope :: !allows;
        super#value_binding vb;
        allows := List.tl !allows

      method! attribute attr =
        (if List.mem attr.attr_name.txt indq_marker_names then
           let reject detail =
             emit attr.attr_loc "IND010"
               (Printf.sprintf
                  "[@%s] %s; the payload is the audit record reviewers \
                   rely on — write [@%s \"why the claim holds\"]"
                  attr.attr_name.txt detail attr.attr_name.txt)
           in
           match attr.attr_payload with
           | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
             match string_const e with
             | Some why when String.trim why <> "" -> ()
             | Some _ -> reject "has an empty justification"
             | None -> reject "needs a string-literal justification")
           | _ -> reject "is missing its justification");
        super#attribute attr

      method! expression e =
        let scope = allows_of_attrs e.pexp_attributes in
        allows := scope :: !allows;
        (match e.pexp_desc with
        | Pexp_apply (fn, args) -> (
          (match fn_path fn with
          | Some p when is_hash_order_fn p ->
            if not !in_sorted_item then
              emit e.pexp_loc "IND001"
                (Printf.sprintf
                   "%s observes hash-bucket order; sort the result \
                    (List.sort/Array.sort in the same definition) or justify \
                    commutative consumption with [@lint.allow]"
                   (String.concat "." p))
          | Some p when is_clock_fn p && not (clock_allowed path) ->
            emit e.pexp_loc "IND003"
              (Printf.sprintf
                 "%s reads the process clock outside lib/obs//lib/util/timer.ml; \
                  route timing through Indq_util.Timer or Indq_obs.Span"
                 (String.concat "." p))
          | Some p when is_poly_compare p && List.exists (fun (_, a) -> floatish a) args ->
            emit e.pexp_loc "IND004"
              (Printf.sprintf
                 "polymorphic %s on a float-valued operand is NaN-unsound; use \
                  Float.compare/Float.equal/Float.min/Float.max"
                 (last p))
          | Some p when is_failwith p && typed_errors_required path ->
            emit e.pexp_loc "IND008"
              "failwith in lib/ raises an unmatchable Failure; surface the \
               failure through the module's typed error instead (or \
               invalid_arg for a caller-bug precondition)"
          | _ -> ());
          match obs_registration fn args with
          | Some { pexp_desc = Pexp_constant (Pconst_string (name, _, _)); pexp_loc; _ } ->
            names := { obs_name = name; obs_file = path; obs_line = pexp_loc.loc_start.pos_lnum } :: !names
          | Some arg ->
            if not (obs_impl path) then
              emit arg.pexp_loc "IND006"
                "counter/span/histogram/phase name must be a string literal \
                 so it can be cross-checked against README/DESIGN"
          | None -> ())
        | Pexp_ident _ -> (
          (* Bare mention of stdlib Random (even partially applied or
             aliased) — all randomness flows through Util.Rng. *)
          match fn_path e with
          | Some p when is_stdlib_random p ->
            emit e.pexp_loc "IND002"
              (Printf.sprintf
                 "%s uses the ambient stdlib Random; all randomness must flow \
                  through Util.Rng (splittable + seeded)"
                 (String.concat "." p))
          | Some p when is_live_use p && not (live_allowed path) ->
            emit e.pexp_loc "IND005"
              (Printf.sprintf
                 "%s touches an incremental Lp.Live tableau outside \
                  lib/geometry/polytope.ml; only the audited replay wrapper \
                  may hold tableau handles (DESIGN.md §10)"
                 (String.concat "." p))
          | Some p when is_unsafe_access p && not (unsafe_allowed path) ->
            emit e.pexp_loc "IND009"
              (Printf.sprintf
                 "%s skips bounds checks outside lib/linalg/; use the checked \
                  accessors — the unchecked kernels are audited only behind \
                  the linalg dimension guards"
                 (String.concat "." p))
          | _ -> ())
        | Pexp_construct ({ txt; _ }, Some _)
          when is_anonymous_failure_construct txt && typed_errors_required path
          ->
          emit e.pexp_loc "IND008"
            (Printf.sprintf
               "constructing %s in lib/ creates an unmatchable anonymous \
                failure; raise the module's typed error instead (or \
                invalid_arg for a caller-bug precondition)"
               (String.concat "." (Longident.flatten_exn txt)))
        | _ -> ());
        super#expression e;
        allows := List.tl !allows
    end
  in
  let file_allows = ref [] in
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_attribute attr when attr.attr_name.txt = "lint.allow" ->
        (match parse_allow attr with
        | Some (Ok a) -> file_allows := a :: !file_allows
        | Some (Error msg) -> emit attr.attr_loc "IND007" msg
        | None -> ())
      | _ ->
        allows := [ !file_allows ];
        in_sorted_item := item_has_sort item;
        checker#structure_item item)
    str;
  { findings = List.rev !findings; obs_names = List.rev !names }

let lint_source ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | str -> lint_structure ~path str
  | exception _ ->
    { findings =
        [ { file = path; line = 1; col = 0; code = "IND000";
            message = "file does not parse; lint skipped" } ];
      obs_names = [] }

(* --- Doc cross-check (IND006, driver-level) ----------------------------- *)

type doc_token = { tok : string; tok_file : string; tok_line : int }

(* Backtick-quoted dotted lowercase tokens: the documentation spelling of
   counter/span names (`lp.solves`, `squeeze_u.ladder`, …). *)
let doc_tokens_of_line ~file ~line s =
  let out = ref [] in
  let n = String.length s in
  let i = ref 0 in
  let is_word c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_' || c = '.' in
  while !i < n do
    if s.[!i] = '`' then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> '`' do incr j done;
      if !j < n then begin
        let t = String.sub s (!i + 1) (!j - !i - 1) in
        if
          String.length t > 0
          && t.[0] >= 'a' && t.[0] <= 'z'
          && String.contains t '.'
          && String.for_all is_word t
          && t.[String.length t - 1] <> '.'
        then out := { tok = t; tok_file = file; tok_line = line } :: !out;
        i := !j + 1
      end
      else i := n
    end
    else incr i
  done;
  List.rev !out

let namespace name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let check_docs ~(doc_tokens : doc_token list) ~(obs_names : obs_name list) =
  let code_names = List.sort_uniq String.compare (List.map (fun o -> o.obs_name) obs_names) in
  let doc_names = List.sort_uniq String.compare (List.map (fun t -> t.tok) doc_tokens) in
  let code_namespaces = List.sort_uniq String.compare (List.map namespace code_names) in
  let undocumented =
    List.filter_map
      (fun o ->
        if List.mem o.obs_name doc_names then None
        else
          Some
            { file = o.obs_file; line = o.obs_line; col = 0; code = "IND006";
              message =
                Printf.sprintf
                  "counter/span/histogram/phase `%s` is not documented in \
                   README.md/DESIGN.md"
                  o.obs_name })
      obs_names
  in
  (* Dedupe by name: one finding per undocumented name (first site). *)
  let undocumented =
    List.fold_left
      (fun acc f -> if List.exists (fun g -> g.message = f.message) acc then acc else f :: acc)
      [] undocumented
    |> List.rev
  in
  let stale =
    List.filter_map
      (fun t ->
        if
          List.mem (namespace t.tok) code_namespaces
          && not (List.mem t.tok code_names)
        then
          Some
            { file = t.tok_file; line = t.tok_line; col = 0; code = "IND006";
              message =
                Printf.sprintf
                  "doc mentions `%s` but no \
                   Counter.make/Span.timed/Histogram.make/Profile.phase \
                   registers it (stale documentation?)"
                  t.tok }
        else None)
      doc_tokens
  in
  let stale =
    List.fold_left
      (fun acc f -> if List.exists (fun g -> g.message = f.message) acc then acc else f :: acc)
      [] stale
    |> List.rev
  in
  undocumented @ stale
