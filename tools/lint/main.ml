(* indq-lint driver: walk the given paths for .ml sources, lint each file,
   cross-check observability names against the given docs, print findings
   as file:line:col diagnostics, and exit nonzero if any survive. *)

module Lint = Indq_lint.Lint

let usage = "indq_lint [--doc FILE]... [--root DIR] PATH..."

let walk root =
  (* Depth-first, name-sorted: diagnostics come out in a stable order. *)
  let rec go acc p =
    if Sys.is_directory p then
      let base = Filename.basename p in
      if base = "_build" || base = ".git" then acc
      else
        Sys.readdir p |> Array.to_list |> List.sort String.compare
        |> List.fold_left (fun acc f -> go acc (Filename.concat p f)) acc
    else if Filename.check_suffix p ".ml" then p :: acc
    else acc
  in
  List.rev (go [] root)

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Paths inside the repo are reported with '/' separators relative to the
   root, which is also what the allowlists in [Lint] match against. *)
let normalize ~root p =
  let p =
    if root <> "" && Lint.has_prefix ~prefix:(root ^ "/") p then
      String.sub p (String.length root + 1) (String.length p - String.length root - 1)
    else p
  in
  String.map (fun c -> if c = '\\' then '/' else c) p

let () =
  let docs = ref [] in
  let roots = ref [] in
  let root = ref "" in
  let spec =
    [ ("--doc", Arg.String (fun f -> docs := f :: !docs),
       "FILE markdown file whose backtick names are cross-checked (IND006)");
      ("--root", Arg.Set_string root, "DIR strip this prefix from reported paths")
    ]
  in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  if !roots = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let files = List.concat_map walk (List.rev !roots) in
  let reports =
    List.map
      (fun p ->
        Lint.lint_source ~path:(normalize ~root:!root p) (read_file p))
      files
  in
  let obs_names = List.concat_map (fun (r : Lint.report) -> r.obs_names) reports in
  let doc_tokens =
    List.concat_map
      (fun doc ->
        String.split_on_char '\n' (read_file doc)
        |> List.mapi (fun i line ->
               Lint.doc_tokens_of_line ~file:(normalize ~root:!root doc)
                 ~line:(i + 1) line)
        |> List.concat)
      (List.rev !docs)
  in
  let findings =
    List.concat_map (fun (r : Lint.report) -> r.findings) reports
    @ (if !docs = [] then [] else Lint.check_docs ~doc_tokens ~obs_names)
  in
  let findings = List.sort Lint.finding_compare findings in
  List.iter (fun f -> Format.printf "%a@." Lint.pp_finding f) findings;
  if findings = [] then
    Format.printf "indq-lint: %d files, %d obs names, clean@."
      (List.length files)
      (List.length (List.sort_uniq compare (List.map (fun o -> o.Lint.obs_name) obs_names)))
  else begin
    Format.printf "indq-lint: %d finding(s)@." (List.length findings);
    exit 1
  end
