(* benchdiff: compare two `bench -json` reports (see Report.sweep_to_json
   and bench/main.ml for the shape).  Deterministic quantities — counter
   means, count-unit histogram statistics — are compared exactly: any
   increase is a perf regression, any decrease an improvement worth a
   baseline refresh.  Result-shaped quantities (alpha, output sizes,
   false-negative counts, sweep geometry) must be identical, full stop: a
   difference there is not a perf change but a semantic one.  Wall-clock
   quantities (time_mean/time_total, seconds-unit histograms) are noisy
   and compared within a relative tolerance — and only when both reports
   carry them, so a times-less baseline gates counters alone.

   Self-contained: includes a minimal JSON reader (objects, arrays,
   strings, numbers, true/false/null) so the tool builds with no
   dependencies, like the rest of the repo. *)

(* --- JSON ---------------------------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : (json, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' when !pos + 1 < n ->
          advance ();
          (match s.[!pos] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' when !pos + 4 < n ->
            (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
            | Some code -> Buffer.add_char buf (Char.chr (code land 0xff))
            | None -> fail "bad \\u escape");
            pos := !pos + 4
          | c -> Buffer.add_char buf c);
          advance ();
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numeric c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numeric s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          fields := (key, value) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let value = parse_value () in
          items := value :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        Arr (List.rev !items)
      end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_num = function Num f -> Some f | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_arr = function Arr xs -> Some xs | _ -> None

let obj_keys = function Obj fields -> List.map fst fields | _ -> []

(* --- Findings ------------------------------------------------------------ *)

type severity =
  | Regression  (** a deterministic perf quantity increased: gate fails *)
  | Mismatch  (** shapes or semantic results differ: gate fails *)
  | Improvement  (** a deterministic perf quantity decreased *)
  | Note  (** informational (new sweeps, counters on one side only) *)

type finding = { severity : severity; path : string; detail : string }

let severity_label = function
  | Regression -> "REGRESSION"
  | Mismatch -> "MISMATCH"
  | Improvement -> "improvement"
  | Note -> "note"

let pp_finding f =
  Printf.sprintf "%-11s %s: %s" (severity_label f.severity) f.path f.detail

let fails = function Regression | Mismatch -> true | Improvement | Note -> false

let exit_code ~strict findings =
  if List.exists (fun f -> fails f.severity) findings then 1
  else if strict && findings <> [] then 1
  else 0

(* --- Comparison ---------------------------------------------------------- *)

let fnum v = match to_num v with Some f -> f | None -> Float.nan

(* Deterministic perf quantity: larger is worse. *)
let compare_perf ~path ~what base cur acc =
  if Float.equal base cur then acc
  else
    let detail = Printf.sprintf "%s %.17g -> %.17g" what base cur in
    if cur > base then { severity = Regression; path; detail } :: acc
    else { severity = Improvement; path; detail } :: acc

(* Deterministic result quantity: any difference is a mismatch. *)
let compare_exact ~path ~what base cur acc =
  if Float.equal base cur then acc
  else
    {
      severity = Mismatch;
      path;
      detail = Printf.sprintf "%s %.17g <> %.17g" what base cur;
    }
    :: acc

(* Wall-clock quantity: only an increase beyond the relative tolerance is
   reported, and only as a Note-severity observation unless [gate_times]
   (times are noisy; the CI gate runs on times-less reports). *)
let compare_time ~tol ~gate_times ~path ~what base cur acc =
  if base > 0. && cur > base *. (1. +. tol) then
    {
      severity = (if gate_times then Regression else Note);
      path;
      detail =
        Printf.sprintf "%s %.6fs -> %.6fs (+%.0f%%, tolerance %.0f%%)" what
          base cur
          (100. *. ((cur /. base) -. 1.))
          (100. *. tol);
    }
    :: acc
  else acc

let union_keys a b =
  List.sort_uniq String.compare (obj_keys a @ obj_keys b)

(* [critical] counters (e.g. lp.iterations, lp.dual_pivots) are the
   quantities the perf-gate exists to protect: a critical counter present
   on only one side is a Mismatch, not a Note — otherwise a baseline that
   predates the counter (or a current run that silently dropped it) would
   let any regression through the gate vacuously. *)
let compare_metrics ~critical ~path base cur acc =
  List.fold_left
    (fun acc key ->
      let p = path ^ ".metrics_mean." ^ key in
      let one_sided where =
        if List.mem key critical then
          {
            severity = Mismatch;
            path = p;
            detail =
              Printf.sprintf "critical counter only in %s (refresh the baseline)"
                where;
          }
        else
          { severity = Note; path = p; detail = "counter only in " ^ where }
      in
      match (member key base, member key cur) with
      | Some b, Some c -> compare_perf ~path:p ~what:"counter mean" (fnum b) (fnum c) acc
      | Some _, None -> one_sided "baseline" :: acc
      | None, Some _ -> one_sided "current" :: acc
      | None, None -> acc)
    acc
    (union_keys base cur)

let hist_unit h = match member "unit" h with Some (Str u) -> u | _ -> "count"

let compare_hist ~tol ~gate_times ~path base cur acc =
  let deterministic = hist_unit base = "count" && hist_unit cur = "count" in
  if hist_unit base <> hist_unit cur then
    {
      severity = Mismatch;
      path;
      detail =
        Printf.sprintf "histogram unit %s <> %s" (hist_unit base)
          (hist_unit cur);
    }
    :: acc
  else
    let cmp what acc =
      let b = Option.bind (member what base) to_num in
      let c = Option.bind (member what cur) to_num in
      match (b, c) with
      | Some b, Some c ->
        let p = path ^ "." ^ what in
        if deterministic then compare_perf ~path:p ~what b c acc
        else compare_time ~tol ~gate_times ~path:p ~what b c acc
      | _ -> acc
    in
    acc |> cmp "count" |> cmp "sum" |> cmp "p50" |> cmp "p90" |> cmp "p99"

let compare_hists ~tol ~gate_times ~path base cur acc =
  List.fold_left
    (fun acc key ->
      let p = path ^ ".hists." ^ key in
      match (member key base, member key cur) with
      | Some b, Some c -> compare_hist ~tol ~gate_times ~path:p b c acc
      | Some b, None ->
        if hist_unit b = "count" then
          { severity = Mismatch; path = p; detail = "histogram only in baseline" }
          :: acc
        else acc
      | None, Some c ->
        if hist_unit c = "count" then
          { severity = Note; path = p; detail = "histogram only in current" }
          :: acc
        else acc
      | None, None -> acc)
    acc
    (union_keys base cur)

let compare_cell ~tol ~gate_times ~critical ~path base cur acc =
  let num what v = match Option.bind (member what v) to_num with
    | Some f -> Some f
    | None -> None
  in
  let both what = (num what base, num what cur) in
  let acc =
    List.fold_left
      (fun acc what ->
        match both what with
        | Some b, Some c -> compare_exact ~path:(path ^ "." ^ what) ~what b c acc
        | None, None -> acc
        (* A mandatory result field present on only one side means a
           truncated or malformed report; skipping it silently would let
           anything through the gate. *)
        | _ ->
          {
            severity = Mismatch;
            path = path ^ "." ^ what;
            detail = "field missing on one side";
          }
          :: acc)
      acc
      [ "alpha_mean"; "alpha_sd"; "output_size_mean"; "false_negative_runs" ]
  in
  let acc =
    List.fold_left
      (fun acc what ->
        match both what with
        | Some b, Some c ->
          compare_time ~tol ~gate_times ~path:(path ^ "." ^ what) ~what b c acc
        | _ -> acc)
      acc [ "time_mean"; "time_total" ]
  in
  let missing what =
    { severity = Mismatch; path = path ^ "." ^ what;
      detail = "field missing on one side" }
  in
  let acc =
    match (member "metrics_mean" base, member "metrics_mean" cur) with
    | Some b, Some c -> compare_metrics ~critical ~path b c acc
    | None, None -> acc
    | _ -> missing "metrics_mean" :: acc
  in
  match (member "hists" base, member "hists" cur) with
  | Some b, Some c -> compare_hists ~tol ~gate_times ~path b c acc
  | None, None -> acc
  | _ -> missing "hists" :: acc

let compare_sweep ~tol ~gate_times ~critical ~path base cur acc =
  let shape what acc =
    let b = member what base and c = member what cur in
    if b = c then acc
    else
      {
        severity = Mismatch;
        path = path ^ "." ^ what;
        detail = "sweep geometry differs (x values / algorithms / labels)";
      }
      :: acc
  in
  let acc = acc |> shape "x_values" |> shape "algorithms" in
  let rows v = match member "cells" v with Some (Arr rows) -> rows | _ -> [] in
  let brows = rows base and crows = rows cur in
  if List.length brows <> List.length crows then
    { severity = Mismatch; path = path ^ ".cells"; detail = "row count differs" }
    :: acc
  else
    List.fold_left2
      (fun (xi, acc) brow crow ->
        match (to_arr brow, to_arr crow) with
        | None, _ | _, None ->
          (* Anything but an array of cells is a malformed report;
             comparing it as zero cells would pass the gate vacuously. *)
          ( xi + 1,
            {
              severity = Mismatch;
              path = Printf.sprintf "%s.cells[%d]" path xi;
              detail = "malformed row (expected an array of cells)";
            }
            :: acc )
        | Some bcells, Some ccells ->
        if List.length bcells <> List.length ccells then
          ( xi + 1,
            {
              severity = Mismatch;
              path = Printf.sprintf "%s.cells[%d]" path xi;
              detail = "cell count differs";
            }
            :: acc )
        else
          ( xi + 1,
            snd
              (List.fold_left2
                 (fun (ai, acc) b c ->
                   ( ai + 1,
                     compare_cell ~tol ~gate_times ~critical
                       ~path:(Printf.sprintf "%s.cells[%d][%d]" path xi ai)
                       b c acc ))
                 (0, acc) bcells ccells) ))
      (0, acc) brows crows
    |> snd

(* [compare_reports baseline current] — the full BENCH-JSON comparison.
   [tol] is the relative wall-clock tolerance; [gate_times] promotes
   tolerance-exceeding time growth from Note to Regression; [critical]
   names counters whose one-sided absence is a Mismatch rather than a
   Note (see [compare_metrics]). *)
let compare_reports ?(tol = 0.5) ?(gate_times = false) ?(critical = []) base cur
    =
  let acc =
    List.fold_left
      (fun acc what ->
        match (member what base, member what cur) with
        | Some b, Some c when b <> c ->
          {
            severity = Mismatch;
            path = what;
            detail = "run configuration differs; reports are not comparable";
          }
          :: acc
        | _ -> acc)
      []
      [ "seed"; "scale"; "utilities"; "max_n" ]
  in
  let sweeps v =
    match member "sweeps" v with
    | Some (Arr entries) ->
      List.filter_map
        (fun e ->
          match (Option.bind (member "experiment" e) to_str, member "sweep" e) with
          | Some name, Some sweep -> Some (name, sweep)
          | _ -> None)
        entries
    | _ -> []
  in
  let bsweeps = sweeps base and csweeps = sweeps cur in
  let acc =
    List.fold_left
      (fun acc (name, bsweep) ->
        match List.assoc_opt name csweeps with
        | Some csweep ->
          compare_sweep ~tol ~gate_times ~critical ~path:name bsweep csweep acc
        | None ->
          {
            severity = Mismatch;
            path = name;
            detail = "sweep present in baseline but missing from current";
          }
          :: acc)
      acc bsweeps
  in
  let acc =
    List.fold_left
      (fun acc (name, _) ->
        if List.mem_assoc name bsweeps then acc
        else
          {
            severity = Note;
            path = name;
            detail = "new sweep, not in baseline (refresh to gate it)";
          }
          :: acc)
      acc csweeps
  in
  List.rev acc
