(* benchdiff driver: compare a committed baseline BENCH JSON against a
   fresh one and exit nonzero on counter regressions or result mismatches.

     benchdiff [-time-tol R] [-gate-times] [-strict] [-critical NAME]
               [-no-critical] BASELINE.json CURRENT.json

   Critical counters (default: lp.iterations and lp.dual_pivots — the LP
   work the dual-simplex refactor exists to reduce — plus
   rtree.nodes_visited and the skyline.path_* dispatch counters from the
   columnar data tier) hard-fail when present on only one side, so a
   stale baseline cannot un-gate them.

   Exit codes: 0 clean (improvements and notes allowed), 1 regression or
   mismatch (or, under -strict, any finding at all), 2 usage/IO/parse
   error. *)

module B = Indq_benchdiff.Benchdiff

let usage =
  "benchdiff [-time-tol R] [-gate-times] [-strict] [-critical NAME] \
   [-no-critical] BASELINE CURRENT"

let default_critical =
  [
    "lp.iterations";
    "lp.dual_pivots";
    (* The columnar-tier wins: R-tree traversal volume and the skyline
       path dispatch (sweep / SFS / rtree / store).  Critical for the
       same reason as the LP pair — losing one from a report means the
       optimization it measures silently stopped being exercised. *)
    "rtree.nodes_visited";
    "skyline.path_sweep";
    "skyline.path_sfs";
    "skyline.path_rtree";
    "skyline.path_store";
    (* The dynamic half of the ANA002 allocation-freedom story: minor
       words allocated inside the [@indq.alloc_free] flat-sweep kernel.
       Must stay exactly 0; one-sided absence means the probe was
       dropped and the static claim is no longer cross-checked. *)
    "prune.sweep_minor_words";
    (* The session server's crash-tolerance story: eviction/rehydration
       round trips and torn-tail recoveries must keep being exercised —
       a report that silently loses one of these is a gate failure, not
       a cleanup. *)
    "serve.evictions";
    "serve.hydrations";
    "journal.torn_tail";
  ]

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let tol = ref 0.5 in
  let gate_times = ref false in
  let strict = ref false in
  let critical = ref default_critical in
  let files = ref [] in
  let spec =
    [
      ( "-time-tol",
        Arg.Set_float tol,
        "R relative wall-clock tolerance (default 0.5 = +50%)" );
      ( "-gate-times",
        Arg.Set gate_times,
        " fail (not just note) when times exceed the tolerance" );
      ("-strict", Arg.Set strict, " fail on any difference, even improvements");
      ( "-critical",
        Arg.String (fun name -> critical := name :: !critical),
        "NAME counter whose one-sided absence is a gate failure (repeatable; \
         default lp.iterations, lp.dual_pivots)" );
      ( "-no-critical",
        Arg.Unit (fun () -> critical := []),
        " clear the critical-counter set (including the defaults)" );
    ]
  in
  Arg.parse spec (fun p -> files := p :: !files) usage;
  match List.rev !files with
  | [ baseline_path; current_path ] -> (
    let load path =
      match B.parse (read_file path) with
      | Ok v -> v
      | Error msg ->
        Printf.eprintf "benchdiff: %s: %s\n" path msg;
        exit 2
      | exception Sys_error msg ->
        Printf.eprintf "benchdiff: %s\n" msg;
        exit 2
    in
    let baseline = load baseline_path in
    let current = load current_path in
    let findings =
      B.compare_reports ~tol:!tol ~gate_times:!gate_times ~critical:!critical
        baseline current
    in
    List.iter (fun f -> print_endline (B.pp_finding f)) findings;
    let code = B.exit_code ~strict:!strict findings in
    (match (findings, code) with
    | [], _ -> Printf.printf "benchdiff: no differences\n"
    | fs, 0 ->
      Printf.printf "benchdiff: %d finding(s), none gating\n" (List.length fs)
    | fs, _ ->
      Printf.printf "benchdiff: %d finding(s), gate FAILED\n" (List.length fs));
    exit code)
  | _ ->
    prerr_endline usage;
    exit 2
