(* indq-analyze driver: walk the given directories for .cmt files (the
   typed trees dune writes under *.objs/byte/ as part of @check), feed
   every implementation to the analyzer, print findings as
   file:line:col diagnostics, and exit nonzero if any survive.

   Run via the root alias: `dune build @analyze`. *)

module Analyze = Indq_analyze.Analyze

let usage = "indq_analyze DIR..."

let walk root =
  (* Depth-first, name-sorted; descends into dot-directories because the
     .cmt files live under .<lib>.objs/byte/. *)
  let rec go acc p =
    if Sys.is_directory p then
      Sys.readdir p |> Array.to_list |> List.sort String.compare
      |> List.fold_left (fun acc f -> go acc (Filename.concat p f)) acc
    else if Filename.check_suffix p ".cmt" then p :: acc
    else acc
  in
  List.rev (go [] root)

let load_cmt path =
  match Cmt_format.read_cmt path with
  | { cmt_annots = Implementation str; cmt_modname; cmt_sourcefile; _ } ->
    let file = Option.value cmt_sourcefile ~default:(cmt_modname ^ ".ml") in
    Some { Analyze.in_modname = cmt_modname; in_file = file; in_structure = str }
  | _ -> None
  | exception _ ->
    Printf.eprintf "indq-analyze: warning: unreadable cmt %s (skipped)\n" path;
    None

let () =
  let roots = ref [] in
  Arg.parse [] (fun p -> roots := p :: !roots) usage;
  if !roots = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let cmts = List.concat_map walk (List.rev !roots) in
  (* One input per module name: byte/native builds may both leave a cmt. *)
  let seen = Hashtbl.create 128 in
  let inputs =
    List.filter_map
      (fun p ->
        match load_cmt p with
        | Some i when not (Hashtbl.mem seen i.Analyze.in_modname) ->
          Hashtbl.add seen i.Analyze.in_modname ();
          Some i
        | _ -> None)
      cmts
  in
  let findings, stats = Analyze.run inputs in
  List.iter (fun f -> Format.printf "%a@." Analyze.pp_finding f) findings;
  let count code =
    List.length (List.filter (fun f -> f.Analyze.code = code) findings)
  in
  if findings = [] then
    Format.printf
      "indq-analyze: %d modules, %d task spawners, %d toplevel mutables, %d \
       alloc-free functions, clean@."
      stats.Analyze.st_modules stats.st_spawners stats.st_mutables
      stats.st_annotated
  else begin
    Format.printf
      "indq-analyze: %d finding(s) (ANA001=%d ANA002=%d ANA003=%d)@."
      (List.length findings) (count "ANA001") (count "ANA002") (count "ANA003");
    exit 1
  end
