(* indq-analyze: typedtree-level domain-safety and allocation-freedom
   analysis over the project's .cmt files.

   Where indq-lint (tools/lint) is deliberately syntactic, this analyzer is
   semantic: it consumes the *typed* tree the compiler wrote next to each
   object file (Cmt_format), so it sees resolved paths (through module
   aliases and opens), value kinds (is this ident a %-primitive or a real
   call?), type heads (is this toplevel binding a Hashtbl.t?) and record
   representations (does this field store box floats?).  Two passes run
   over a per-module call graph:

   ANA001  domain-safety / race detection.  Every *toplevel* mutable value
           (ref, array, bytes, Hashtbl.t, Buffer.t, Queue.t, Stack.t, or a
           record literal with mutable fields) is classified as
             - DLS-keyed     (defined as [Domain.DLS.new_key …]),
             - atomic        (type head [Atomic.t]),
             - mutex-guarded (every reference anywhere in the scanned tree
                              sits inside a [Mutex.protect …] thunk),
             - audited       ([@@indq.domain_safe "why"]), or
             - domain-confined (not reachable from any parallel task).
           A mutable that is none of these *and* is reachable from a
           [Pool.parallel_map]/[parallel_map_seeded] task body is reported
           as a potential race.  Reachability: any toplevel function whose
           body spawns a parallel map is a task spawner; the closure it
           passes can capture anything the function references, so the
           spawner's reference set seeds a BFS over the global call graph
           (toplevel function -> referenced toplevel functions).  DLS-key
           init closures also run on worker domains, so a reachable key
           propagates into its initializer's references.

   ANA002  allocation-freedom.  A function annotated
           [@@indq.alloc_free "why"] promises its body performs no heap
           allocation in steady state.  The checker walks the body and
           reports: closure creation (fun/let rec/letop/lazy), tuple,
           record, non-empty array and argument-carrying constructor
           builds, partial applications (result type is an arrow), calls
           into functions that are neither [@indq.alloc_free]-annotated,
           %-primitives, [@@noalloc] externals nor whitelisted
           (Stdlib.invalid_arg — the audited caller-bug guard idiom,
           cold by construction), float returns across non-[@inline]
           annotated calls (the result is boxed), float stores into
           non-float-record mutable fields or captured refs, and float
           reads out of float records.  Local [let r = ref …] accumulators
           are allowed — the backend unboxes non-escaping refs — but an
           accumulator escaping as an argument to a non-primitive call is
           reported because that defeats the unboxing.

   ANA003  attribute grammar.  [@indq.alloc_free]/[@indq.domain_safe]/
           [@indq.alloc_ok] payloads must be a single non-empty string
           literal (the justification).  Malformed payloads are findings
           themselves, so escape hatches stay auditable.  (indq-lint rule
           IND010 enforces the same grammar syntactically at lint time.)

   Escape hatches: [@@indq.domain_safe "why"] on a toplevel mutable
   binding accepts the race risk after audit; [@indq.alloc_ok "why"] on an
   expression inside an annotated function accepts that one allocation
   site (cold failure paths, one-time growth, O(1) setup).

   Known approximations (documented, cross-checked dynamically by the
   `prune.sweep_minor_words` bench probe): boxed-integer intermediates
   (Int64 read out of a Bigarray then [Int64.to_int]) are treated as free
   because cmmgen fuses the box/unbox pair; [@inline] is trusted without
   proving the backend actually inlines; toplevel mutables built by
   function calls (not literal record/ref/creation syntax) whose type head
   is not one of the known mutable containers are not classified. *)

module SSet = Set.Make (String)

type finding = {
  file : string;
  line : int;
  col : int;
  code : string;
  message : string;
}

let finding_compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.code b.code

let pp_finding fmt f =
  Format.fprintf fmt "%s:%d:%d: [%s] %s" f.file f.line f.col f.code f.message

type stats = {
  st_modules : int;
  st_annotated : int;  (* [@indq.alloc_free] functions checked *)
  st_mutables : int;   (* toplevel mutable values classified *)
  st_spawners : int;   (* toplevel functions spawning parallel tasks *)
}

(* One compilation unit to analyze: the module name as the compiler knows
   it ("Indq_core__Pruning"), the source path for diagnostics, and the
   implementation typedtree. *)
type input = {
  in_modname : string;
  in_file : string;
  in_structure : Typedtree.structure;
}

(* --- Attributes --------------------------------------------------------- *)

let attr_alloc_free = "indq.alloc_free"
let attr_domain_safe = "indq.domain_safe"
let attr_alloc_ok = "indq.alloc_ok"

let find_attr name attrs =
  List.find_opt (fun (a : Parsetree.attribute) -> a.attr_name.txt = name) attrs

(* The payload must be exactly one non-empty string literal. *)
let justification (attr : Parsetree.attribute) =
  let malformed =
    Error
      (Printf.sprintf
         "malformed [@%s] payload: expected a single non-empty string \
          literal justifying the exemption"
         attr.attr_name.txt)
  in
  match attr.attr_payload with
  | PStr
      [ { pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _ } ] ->
    if String.trim s = "" then
      Error
        (Printf.sprintf "[@%s] has an empty justification string"
           attr.attr_name.txt)
    else Ok s
  | _ -> malformed

let has_inline attrs =
  List.exists
    (fun (a : Parsetree.attribute) ->
      a.attr_name.txt = "inline" || a.attr_name.txt = "ocaml.inline")
    attrs

(* --- Canonical names ---------------------------------------------------- *)

(* Dune name-mangles wrapped library modules ("Indq_core__Pruning"); split
   the dunder back out so references through the wrapper alias
   ("Indq_core.Pruning.f") and direct ones agree on one spelling. *)
let split_dunder s =
  let out = ref [] in
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '_' && s.[!i + 1] = '_' && Buffer.length buf > 0
    then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf;
      i := !i + 2
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  if Buffer.length buf > 0 then out := Buffer.contents buf :: !out;
  List.rev !out

(* Canonical components of a path, resolving local idents (module aliases
   and toplevel values of the module being scanned) through [resolve]. *)
let rec canon_path ~resolve (p : Path.t) =
  match p with
  | Path.Pident id -> (
    match resolve id with
    | Some c -> c
    | None -> split_dunder (Ident.name id))
  | Path.Pdot (p, s) -> canon_path ~resolve p @ [ s ]
  | Path.Papply (p, _) -> canon_path ~resolve p
  | Path.Pextra_ty (p, _) -> canon_path ~resolve p

let dotted = String.concat "."

let suffix_is components suffix =
  let rec drop l n = if n <= 0 then l else match l with [] -> [] | _ :: t -> drop t (n - 1) in
  let lc = List.length components and ls = List.length suffix in
  lc >= ls && drop components (lc - ls) = suffix

(* --- Global analysis state ---------------------------------------------- *)

type cls =
  | Unclassified
  | Safe of string     (* DLS-keyed / atomic / lock / mutex-guarded *)
  | Audited of string  (* [@@indq.domain_safe "why"] *)

type node = {
  n_canon : string;
  n_file : string;
  n_loc : Location.t;
  mutable n_refs : SSet.t;
  n_is_fun : bool;
  n_dls_refs : SSet.t option;  (* refs of the DLS.new_key init closure *)
  n_mut : string option;       (* Some kind-description when mutable *)
  mutable n_cls : cls;
}

type acc = {
  nodes : (string, node) Hashtbl.t;
  (* multi-binding: canonical name -> was this use under Mutex.protect? *)
  uses : (string, bool) Hashtbl.t;
  mutable seeds : SSet.t;     (* refs appearing in parallel_map arguments *)
  mutable spawners : SSet.t;  (* toplevel bindings containing a parallel_map *)
  annotated : (string, bool) Hashtbl.t;  (* canon -> has [@inline] *)
  mutable findings : finding list;
}

let emit acc ~file (loc : Location.t) code message =
  acc.findings <-
    { file;
      line = loc.Location.loc_start.Lexing.pos_lnum;
      col = loc.Location.loc_start.Lexing.pos_cnum - loc.Location.loc_start.Lexing.pos_bol;
      code;
      message }
    :: acc.findings

(* --- Type heads --------------------------------------------------------- *)

let rec type_head ~resolve ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (canon_path ~resolve p)
  | Types.Tpoly (t, _) -> type_head ~resolve t
  | _ -> None

let is_float_ty ~resolve ty =
  match type_head ~resolve ty with Some [ "float" ] -> true | _ -> false

let is_arrow_ty ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

let mutable_type_kind head =
  if suffix_is head [ "Stdlib"; "ref" ] || head = [ "ref" ] then Some "ref cell"
  else if head = [ "array" ] then Some "array"
  else if head = [ "bytes" ] then Some "bytes"
  else if suffix_is head [ "Hashtbl"; "t" ] then Some "Hashtbl.t"
  else if suffix_is head [ "Buffer"; "t" ] then Some "Buffer.t"
  else if suffix_is head [ "Queue"; "t" ] then Some "Queue.t"
  else if suffix_is head [ "Stack"; "t" ] then Some "Stack.t"
  else None

let safe_type_kind head =
  if suffix_is head [ "Atomic"; "t" ] then Some "Atomic.t"
  else if suffix_is head [ "Mutex"; "t" ] then Some "Mutex.t"
  else if suffix_is head [ "Condition"; "t" ] then Some "Condition.t"
  else None

let is_function_expr (e : Typedtree.expression) =
  match e.exp_desc with Texp_function _ -> true | _ -> false

(* The bound ident of a simple binding.  [let x : t = e] elaborates to
   [Tpat_alias (Tpat_any, x, …)], so both shapes name a value. *)
let pat_ident (p : Typedtree.pattern) =
  match p.pat_desc with
  | Tpat_var (id, _) -> Some id
  | Tpat_alias (_, id, _) -> Some id
  | _ -> None

(* --- Phase A: per-module scan ------------------------------------------- *)

(* The per-module name environment survives into phase B so ANA002 sees the
   same alias resolution. *)
type menv = (string, string list) Hashtbl.t

let scan_module acc ~modname ~file (str : Typedtree.structure) : menv =
  let menv : menv = Hashtbl.create 64 in
  let resolve id = Hashtbl.find_opt menv (Ident.unique_name id) in
  let canon p = canon_path ~resolve p in
  let protect_depth = ref 0 in
  let current : node option ref = ref None in
  let collect_refs e =
    let out = ref SSet.empty in
    let it =
      { Tast_iterator.default_iterator with
        expr =
          (fun sub e ->
            (match e.Typedtree.exp_desc with
            | Texp_ident (p, _, _) -> out := SSet.add (dotted (canon p)) !out
            | _ -> ());
            Tast_iterator.default_iterator.expr sub e) }
    in
    it.expr it e;
    !out
  in
  let record_use c =
    Hashtbl.add acc.uses c (!protect_depth > 0);
    match !current with
    | Some n -> n.n_refs <- SSet.add c n.n_refs
    | None -> ()
  in
  let visit sub (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) -> record_use (dotted (canon p))
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
      let c = canon p in
      record_use (dotted c);
      let iter_args () =
        List.iter (fun (_, a) -> Option.iter (sub.Tast_iterator.expr sub) a) args
      in
      if suffix_is c [ "Mutex"; "protect" ] then begin
        incr protect_depth;
        iter_args ();
        decr protect_depth
      end
      else begin
        if
          suffix_is c [ "Pool"; "parallel_map" ]
          || suffix_is c [ "Pool"; "parallel_map_seeded" ]
        then begin
          (* The task closure can capture anything its argument (or, when
             the closure is a local binding, the enclosing toplevel
             function) references. *)
          List.iter
            (fun (_, a) ->
              Option.iter
                (fun a -> acc.seeds <- SSet.union acc.seeds (collect_refs a))
                a)
            args;
          match !current with
          | Some n -> acc.spawners <- SSet.add n.n_canon acc.spawners
          | None -> ()
        end;
        iter_args ()
      end
    | _ -> Tast_iterator.default_iterator.expr sub e
  in
  let expr_iter = { Tast_iterator.default_iterator with expr = visit } in
  let visit_expr e = visit expr_iter e in
  let scan_vb prefix (vb : Typedtree.value_binding) =
    match pat_ident vb.vb_pat with
    | Some id ->
      let components = prefix @ [ Ident.name id ] in
      Hashtbl.replace menv (Ident.unique_name id) components;
      let cname = dotted components in
      let attrs = vb.vb_attributes @ vb.vb_expr.exp_attributes in
      (match find_attr attr_alloc_free attrs with
      | Some a ->
        (match justification a with
        | Ok _ -> ()
        | Error m -> emit acc ~file a.attr_loc "ANA003" m);
        (* Register even when the payload is malformed so transitive
           ANA002 checking still works; ANA003 reports the payload. *)
        Hashtbl.replace acc.annotated cname (has_inline attrs)
      | None -> ());
      let body = vb.vb_expr in
      let dls_refs =
        match body.exp_desc with
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
          when suffix_is (canon p) [ "DLS"; "new_key" ] ->
          Some
            (List.fold_left
               (fun s (_, a) ->
                 match a with
                 | Some a -> SSet.union s (collect_refs a)
                 | None -> s)
               SSet.empty args)
        | _ -> None
      in
      let head = type_head ~resolve body.exp_type in
      let mut =
        if is_function_expr body then None
        else
          match body.exp_desc with
          | Texp_record { fields; _ }
            when Array.exists
                   (fun ((ld : Types.label_description), _) ->
                     ld.lbl_mut = Asttypes.Mutable)
                   fields -> Some "record with mutable fields"
          | _ -> Option.bind head mutable_type_kind
      in
      let cls =
        if dls_refs <> None then Safe "DLS-keyed"
        else
          match find_attr attr_domain_safe attrs with
          | Some a -> (
            match justification a with
            | Ok why -> Audited why
            | Error m ->
              emit acc ~file a.attr_loc "ANA003" m;
              Unclassified)
          | None -> (
            match Option.bind head safe_type_kind with
            | Some k -> Safe k
            | None -> Unclassified)
      in
      let node =
        { n_canon = cname;
          n_file = file;
          n_loc = vb.vb_loc;
          n_refs = SSet.empty;
          n_is_fun = is_function_expr body;
          n_dls_refs = dls_refs;
          n_mut = mut;
          n_cls = cls }
      in
      Hashtbl.replace acc.nodes cname node;
      current := Some node;
      visit_expr body;
      current := None
    | None ->
      current := None;
      visit_expr vb.vb_expr
  in
  let rec scan_str prefix (str : Typedtree.structure) =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) -> List.iter (scan_vb prefix) vbs
        | Tstr_module mb -> scan_mb prefix mb
        | Tstr_recmodule mbs -> List.iter (scan_mb prefix) mbs
        | Tstr_eval (e, _) ->
          current := None;
          visit_expr e
        | _ -> ())
      str.str_items
  and scan_mb prefix (mb : Typedtree.module_binding) =
    let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
    let rec unwrap (me : Typedtree.module_expr) =
      match me.mod_desc with
      | Tmod_constraint (me, _, _, _) -> unwrap me
      | d -> d
    in
    match unwrap mb.mb_expr with
    | Tmod_ident (p, _) -> (
      match mb.mb_id with
      | Some id -> Hashtbl.replace menv (Ident.unique_name id) (canon p)
      | None -> ())
    | Tmod_structure s ->
      (match mb.mb_id with
      | Some id -> Hashtbl.replace menv (Ident.unique_name id) (prefix @ [ name ])
      | None -> ());
      scan_str (prefix @ [ name ]) s
    | _ -> ()
  in
  scan_str (split_dunder modname) str;
  menv

(* --- Phase B: ANA002 allocation-freedom --------------------------------- *)

(* Functions whose calls are accepted without annotation: the audited
   caller-bug guard (cold path by construction). *)
let builtin_allow = [ "Stdlib.invalid_arg" ]

type ctx = {
  fname : string;  (* display name of the annotated function being checked *)
  local_refs : (string, unit) Hashtbl.t;  (* unboxable local accumulators *)
}

let check_module acc ~file ~(menv : menv) (str : Typedtree.structure) =
  let resolve id = Hashtbl.find_opt menv (Ident.unique_name id) in
  let canon p = canon_path ~resolve p in
  (* Local [@indq.alloc_free] bindings, by stamp. *)
  let local_annot : (string, bool) Hashtbl.t = Hashtbl.create 16 in
  let is_ref_make (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_apply
        ( { exp_desc =
              Texp_ident
                (_, _, { val_kind = Val_prim { prim_name = "%makemutable"; _ }; _ });
            _ },
          [ (_, Some _) ] ) -> true
    | _ -> false
  in
  let ref_arg (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_apply (_, [ (_, Some a) ]) -> Some a
    | _ -> None
  in
  let rec check ctx (e : Typedtree.expression) =
    let report ?(loc = e.exp_loc) msg =
      emit acc ~file loc "ANA002"
        (Printf.sprintf "in [@indq.alloc_free] %s: %s" ctx.fname msg)
    in
    match find_attr attr_alloc_ok e.exp_attributes with
    | Some a -> (
      match justification a with
      | Ok _ -> ()  (* audited allocation site: subtree accepted *)
      | Error m ->
        emit acc ~file a.attr_loc "ANA003" m;
        check_inner ctx report e)
    | None -> check_inner ctx report e
  and check_inner ctx report (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_ident _ | Texp_constant _ | Texp_unreachable -> ()
    | Texp_let (_, vbs, body) ->
      List.iter (check_local_vb ctx) vbs;
      check ctx body
    | Texp_function _ ->
      report
        "closure allocation: a function expression materializes a heap \
         closure; lift it out of the hot path or [@indq.alloc_ok] it"
    | Texp_apply (fn, args) -> check_apply ctx report e fn args
    | Texp_tuple _ ->
      report "tuple construction allocates"
    | Texp_construct (_, _, []) -> ()
    | Texp_construct (lid, _, args) ->
      report
        (Printf.sprintf "constructor %s with arguments allocates"
           (String.concat "." (Longident.flatten lid.txt)));
      List.iter (check ctx) args
    | Texp_variant (_, None) -> ()
    | Texp_variant (_, Some a) ->
      report "polymorphic-variant argument allocates";
      check ctx a
    | Texp_record _ -> report "record construction allocates"
    | Texp_array [] -> ()
    | Texp_array es ->
      report "array literal allocates";
      List.iter (check ctx) es
    | Texp_field (r, _, ld) ->
      if ld.lbl_repres = Types.Record_float then
        report "reading a float field out of a float record boxes the float";
      check ctx r
    | Texp_setfield (r, _, ld, v) ->
      (match ld.lbl_repres with
      | Types.Record_float -> ()  (* flat float block: unboxed store *)
      | _ ->
        if is_float_ty ~resolve v.exp_type then
          report
            "storing a float into a boxed mutable field allocates the box");
      check ctx r;
      check ctx v
    | Texp_sequence (a, b) | Texp_while (a, b) ->
      check ctx a;
      check ctx b
    | Texp_ifthenelse (c, t, eo) ->
      check ctx c;
      check ctx t;
      Option.iter (check ctx) eo
    | Texp_for (_, _, lo, hi, _, body) ->
      check ctx lo;
      check ctx hi;
      check ctx body
    | Texp_match (scrut, cases, _) ->
      check ctx scrut;
      List.iter
        (fun (c : Typedtree.computation Typedtree.case) ->
          Option.iter (check ctx) c.c_guard;
          check ctx c.c_rhs)
        cases
    | Texp_try (b, cases) ->
      check ctx b;
      List.iter
        (fun (c : Typedtree.value Typedtree.case) ->
          Option.iter (check ctx) c.c_guard;
          check ctx c.c_rhs)
        cases
    | Texp_assert (c, _) -> check ctx c  (* failure path is cold *)
    | Texp_open (_, b) -> check ctx b
    | Texp_lazy _ -> report "lazy suspension allocates"
    | Texp_letop _ -> report "binding operators allocate closures"
    | _ ->
      report
        "construct not allowed in [@indq.alloc_free] code (object/module/\
         class-level expression)"
  and check_local_vb ctx (vb : Typedtree.value_binding) =
    let attrs = vb.vb_attributes @ vb.vb_expr.exp_attributes in
    match pat_ident vb.vb_pat, find_attr attr_alloc_free attrs with
    | Some id, Some a ->
      (match justification a with
      | Ok _ -> ()
      | Error m -> emit acc ~file a.attr_loc "ANA003" m);
      Hashtbl.replace local_annot (Ident.unique_name id) (has_inline attrs);
      (* The nested definition is itself a closure in an alloc-free body;
         its own body is checked as a fresh target. *)
      check_target ~name:(Ident.name id) vb.vb_expr
    | Some id, None when is_ref_make vb.vb_expr ->
      (* let r = ref e — a local accumulator the backend unboxes as long
         as it never escapes. *)
      Hashtbl.replace ctx.local_refs (Ident.unique_name id) ();
      Option.iter (check ctx) (ref_arg vb.vb_expr)
    | _, _ -> check ctx vb.vb_expr
  and check_apply ctx report (e : Typedtree.expression)
      (fn : Typedtree.expression) args =
    let iter_args ~escape_check () =
      List.iter
        (fun (_, a) ->
          Option.iter
            (fun (a : Typedtree.expression) ->
              (if escape_check then
                 match a.exp_desc with
                 | Texp_ident (Path.Pident id, _, _)
                   when Hashtbl.mem ctx.local_refs (Ident.unique_name id) ->
                   report ~loc:a.exp_loc
                     "local ref accumulator escapes as an argument, which \
                      defeats its unboxing"
                 | _ -> ());
              check ctx a)
            a)
        args
    in
    let partial () =
      if is_arrow_ty e.exp_type then
        report "partial application allocates a closure"
    in
    match fn.exp_desc with
    | Texp_ident (p, _, vd) -> (
      match vd.val_kind with
      | Val_prim prim ->
        (if String.length prim.prim_name > 0 && prim.prim_name.[0] = '%' then
           begin match prim.prim_name with
           | "%makemutable" ->
             report
               "ref allocation: bind it as a local `let r = ref …` \
                accumulator (unboxed) or lift it out of the hot path"
           | "%revapply" | "%apply" ->
             report
               "|> / @@ obscure the callee from the allocation checker; \
                use direct application"
           | "%setfield0" -> (
             match args with
             | [ (_, Some r); (_, Some v) ] ->
               let local =
                 match r.exp_desc with
                 | Texp_ident (Path.Pident id, _, _) ->
                   Hashtbl.mem ctx.local_refs (Ident.unique_name id)
                 | _ -> false
               in
               if (not local) && is_float_ty ~resolve v.exp_type then
                 report
                   "float := into a captured/non-local ref boxes the float";
               check ctx v
             | _ -> ())
           | _ -> ()
           end
         else if prim.prim_alloc then
           report
             (Printf.sprintf
                "external %s is not [@@noalloc]; it may allocate or raise"
                prim.prim_name));
        (match prim.prim_name with
        | "%setfield0" -> ()  (* argument handling above *)
        | _ -> iter_args ~escape_check:false ());
        partial ()
      | _ ->
        let c = dotted (canon p) in
        let annotated_info =
          match p with
          | Path.Pident id
            when Hashtbl.mem local_annot (Ident.unique_name id) ->
            Some (Hashtbl.find local_annot (Ident.unique_name id))
          | _ -> Hashtbl.find_opt acc.annotated c
        in
        (match annotated_info with
        | Some inline ->
          if is_float_ty ~resolve e.exp_type && not inline then
            report
              (Printf.sprintf
                 "%s returns float across a non-[@inline] call boundary; \
                  the result is boxed"
                 c)
        | None ->
          if not (List.mem c builtin_allow) then
            report
              (Printf.sprintf
                 "call into non-annotated function %s; annotate it \
                  [@@indq.alloc_free \"…\"] or audit the call with \
                  [@indq.alloc_ok \"…\"]"
                 c));
        iter_args ~escape_check:true ();
        partial ())
    | _ ->
      report
        "indirect call through a computed function value cannot be \
         verified allocation-free";
      check ctx fn;
      iter_args ~escape_check:true ()
  and check_target ~name (body : Typedtree.expression) =
    let ctx = { fname = name; local_refs = Hashtbl.create 8 } in
    let rec strip (e : Typedtree.expression) =
      match e.exp_desc with
      | Texp_function { cases = [ c ]; _ } when c.c_guard = None ->
        strip c.c_rhs
      | Texp_function { cases; _ } ->
        List.iter
          (fun (c : Typedtree.value Typedtree.case) ->
            Option.iter (check ctx) c.c_guard;
            check ctx c.c_rhs)
          cases
      | _ -> check ctx e
    in
    strip body
  in
  (* Find every annotated binding (toplevel or local) and check its body;
     everything else recurses generically. *)
  let vb_override sub (vb : Typedtree.value_binding) =
    let attrs = vb.vb_attributes @ vb.vb_expr.exp_attributes in
    match pat_ident vb.vb_pat, find_attr attr_alloc_free attrs with
    | Some id, Some _ ->
      (* Payload validity was reported in phase A (toplevel) or will be by
         check_local_vb when nested; avoid double ANA003 here. *)
      Hashtbl.replace local_annot (Ident.unique_name id) (has_inline attrs);
      check_target ~name:(Ident.name id) vb.vb_expr
    | _, Some _ -> check_target ~name:"<binding>" vb.vb_expr
    | _, None -> Tast_iterator.default_iterator.value_binding sub vb
  in
  let it = { Tast_iterator.default_iterator with value_binding = vb_override } in
  it.structure it str

(* --- Classification + reachability (ANA001) ----------------------------- *)

let finalize acc =
  (* Mutex-guarded: every recorded use of the mutable sits under a
     Mutex.protect thunk (and there is at least one use). *)
  Hashtbl.iter
    (fun _ n ->
      if n.n_mut <> None && n.n_cls = Unclassified then begin
        let uses = Hashtbl.find_all acc.uses n.n_canon in
        if uses <> [] && List.for_all Fun.id uses then
          n.n_cls <- Safe "mutex-guarded"
      end)
    acc.nodes;
  (* BFS over the call graph from everything a parallel task can reach. *)
  let roots =
    SSet.fold
      (fun s acc_refs ->
        match Hashtbl.find_opt acc.nodes s with
        | Some n -> SSet.union acc_refs n.n_refs
        | None -> acc_refs)
      acc.spawners acc.seeds
  in
  let visited = ref SSet.empty in
  let queue = Queue.create () in
  SSet.iter (fun s -> Queue.add s queue) roots;
  while not (Queue.is_empty queue) do
    let c = Queue.pop queue in
    if not (SSet.mem c !visited) then begin
      visited := SSet.add c !visited;
      match Hashtbl.find_opt acc.nodes c with
      | Some n ->
        let next = if n.n_is_fun then n.n_refs else SSet.empty in
        let next =
          match n.n_dls_refs with
          | Some r -> SSet.union next r
          | None -> next
        in
        SSet.iter
          (fun s -> if not (SSet.mem s !visited) then Queue.add s queue)
          next
      | None -> ()
    end
  done;
  Hashtbl.iter
    (fun _ n ->
      match n.n_mut, n.n_cls with
      | Some kind, Unclassified when SSet.mem n.n_canon !visited ->
        emit acc ~file:n.n_file n.n_loc "ANA001"
          (Printf.sprintf
             "toplevel mutable %s (%s) is reachable from a \
              Pool.parallel_map task body but is neither DLS-keyed, \
              Atomic, mutex-guarded, nor audited; guard it or annotate \
              [@@indq.domain_safe \"why\"]"
             n.n_canon kind)
      | _ -> ())
    acc.nodes;
  !visited

(* --- Entry point -------------------------------------------------------- *)

let run (inputs : input list) : finding list * stats =
  let acc =
    { nodes = Hashtbl.create 512;
      uses = Hashtbl.create 4096;
      seeds = SSet.empty;
      spawners = SSet.empty;
      annotated = Hashtbl.create 64;
      findings = [] }
  in
  let inputs =
    List.sort (fun a b -> String.compare a.in_file b.in_file) inputs
  in
  let menvs =
    List.map
      (fun i ->
        (i, scan_module acc ~modname:i.in_modname ~file:i.in_file i.in_structure))
      inputs
  in
  let _reachable = finalize acc in
  List.iter
    (fun (i, menv) -> check_module acc ~file:i.in_file ~menv i.in_structure)
    menvs;
  let mutables =
    Hashtbl.fold (fun _ n k -> if n.n_mut <> None then k + 1 else k) acc.nodes 0
  in
  let stats =
    { st_modules = List.length inputs;
      st_annotated = Hashtbl.length acc.annotated;
      st_mutables = mutables;
      st_spawners = SSet.cardinal acc.spawners }
  in
  (List.sort finding_compare acc.findings, stats)
