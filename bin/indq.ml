(* indq: command-line front end for the indistinguishability-query library.

   Subcommands:
     generate     write a synthetic / simulated data set as CSV
     ingest       stream a data source into a columnar binary .store file
     precompute   persist a data set's (1+eps)-skyline artifact
     exact        ground-truth I(f, eps) for a known utility vector
     simulate     run an interactive algorithm against a simulated user
     run          alias of simulate
     interactive  run an algorithm with YOU as the user (choices on stdin)
     experiment   run one of the paper's evaluation experiments
     profile      replay a JSONL trace into a per-phase profile
     serve        crash-tolerant multi-session server over a line protocol *)

open Cmdliner

module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple
module Generator = Indq_dataset.Generator
module Realistic = Indq_dataset.Realistic
module Algo = Indq_core.Algo
module Indist = Indq_core.Indist
module Region = Indq_core.Region
module Session = Indq_core.Session
module Utility = Indq_user.Utility
module Oracle = Indq_user.Oracle
module Rng = Indq_util.Rng
module Tabulate = Indq_util.Tabulate
module Counter = Indq_obs.Counter
module Span = Indq_obs.Span
module Trace = Indq_obs.Trace
module Histogram = Indq_obs.Histogram
module Profile = Indq_obs.Profile
module Artifact = Indq_dominance.Artifact
module Experiments = Indq_experiments.Experiments
module Report = Indq_experiments.Report
module Pool = Indq_exec.Pool
module Fault = Indq_fault.Fault
module Server = Indq_server.Server
module Engine = Indq_server.Engine
module Journal_store = Indq_server.Journal_store

(* --- shared arguments --- *)

let seed_arg =
  let doc = "Random seed (all randomness in indq is reproducible)." in
  Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"SEED" ~doc)

let eps_arg =
  let doc = "Indistinguishability parameter eps (> 0)." in
  Arg.(value & opt float 0.05 & info [ "eps"; "e" ] ~docv:"EPS" ~doc)

let delta_arg =
  let doc = "User error parameter delta (>= 0)." in
  Arg.(value & opt float 0. & info [ "delta" ] ~docv:"DELTA" ~doc)

let s_arg =
  let doc = "Tuples shown per question (0 = use the dimension d)." in
  Arg.(value & opt int 0 & info [ "s" ] ~docv:"S" ~doc)

let q_arg =
  let doc = "Question budget (0 = use 3d)." in
  Arg.(value & opt int 0 & info [ "q" ] ~docv:"Q" ~doc)

let algo_arg =
  let doc = "Algorithm: squeeze-u, uh-random, mind or minr." in
  let parse s =
    try Ok (Algo.of_string s) with Invalid_argument m -> Error (`Msg m)
  in
  let print ppf a = Format.pp_print_string ppf (Algo.to_string a) in
  Arg.(
    value
    & opt (conv (parse, print)) Algo.Squeeze_u
    & info [ "algo"; "a" ] ~docv:"ALGO" ~doc)

let data_arg =
  let doc =
    "Data source: a CSV path, a binary $(b,.store) path (see $(b,indq \
     ingest)), or one of island, nba, house, independent, correlated, \
     anti_correlated."
  in
  Arg.(value & opt string "independent" & info [ "data" ] ~docv:"DATA" ~doc)

let n_arg =
  let doc = "Number of tuples for generated data (0 = source default)." in
  Arg.(value & opt int 0 & info [ "n" ] ~docv:"N" ~doc)

let d_arg =
  let doc = "Dimensions for synthetic data." in
  Arg.(value & opt int 3 & info [ "d" ] ~docv:"D" ~doc)

let load_data ~source ~n ~d ~seed =
  let rng = Rng.create seed in
  match String.lowercase_ascii source with
  | "island" | "nba" | "house" ->
    let n = if n > 0 then Some n else None in
    Realistic.by_name source ?n rng
  | "independent" | "correlated" | "anti_correlated" | "anti-correlated" ->
    let n = if n > 0 then n else 10_000 in
    Generator.by_name source rng ~n ~d
  | path ->
    if Filename.check_suffix path ".store" then Dataset.load_store path
    else Dataset.load_csv path

(* The library's typed failures become one-line diagnostics and exit
   code 2 instead of a backtrace. *)
let with_typed_errors f =
  match f () with
  | status -> status
  | exception Dataset.Load_error e ->
    Printf.eprintf "indq: %s\n" (Dataset.load_error_message e);
    2
  | exception Session.Error e ->
    Printf.eprintf "indq: %s\n" (Session.error_message e);
    2

let trace_arg =
  let doc =
    "Stream trace events of the run: $(b,-) renders a live per-round table, \
     any other value is a path receiving one JSON object per line."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "After the run, print work counters (run delta and process total), span \
     timings and an audit of the utility region implied by the transcript."
  in
  Arg.(value & flag & info [ "metrics" ] ~doc)

(* Build the requested trace sink and hand it to [f]; the run passes it
   explicitly to [Algo.run ?trace], which scopes it to the run's duration on
   the executing domain — no global sink state. *)
let with_trace_sink trace f =
  match trace with
  | None -> f None
  | Some "-" -> f (Some (Trace.console_sink ()))
  | Some path ->
    let oc =
      try open_out path
      with Sys_error msg ->
        Printf.eprintf "indq: cannot open trace file: %s\n" msg;
        exit 2
    in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> f (Some (Trace.jsonl_sink oc)))

(* Replay a recorded transcript through the region machinery: the audit both
   reports what the answers imply about the hidden utility and exercises the
   LP stack even for algorithms (Squeeze-u) that never build a region
   themselves. *)
let print_region_audit ~delta ~d rounds =
  let region = ref (Region.initial ~d) in
  List.iter
    (fun { Oracle.options; choice } ->
      let winner = options.(choice) in
      let losers = ref [] in
      Array.iteri (fun i v -> if i <> choice then losers := v :: !losers) options;
      let updated = Region.observe ~delta !region ~winner ~losers:!losers in
      if not (Region.is_empty updated) then region := updated)
    rounds;
  let r = !region in
  Format.printf
    "implied utility region: %d halfspaces, width %.4f, diameter %.4f@."
    (List.length (Indq_geom.Polytope.halfspaces (Region.polytope r)))
    (Region.width r) (Region.diameter r)

let counter_cell v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.1f" v

(* [run_metrics] are the per-run deltas from [Algo.run_result.metrics]; the
   process totals are read afterwards so they include the audit's LP work. *)
let print_counter_table run_metrics =
  let t =
    Tabulate.create ~title:"counters"
      ~columns:[ "counter"; "run"; "process total" ]
  in
  List.iter
    (fun (name, total) ->
      let run =
        match List.assoc_opt name run_metrics with Some v -> v | None -> 0.
      in
      Tabulate.add_row t [ name; counter_cell run; counter_cell total ])
    (Counter.snapshot ());
  Tabulate.print t

let print_span_table () =
  match Span.snapshot () with
  | [] -> ()
  | stats ->
    let t =
      Tabulate.create ~title:"spans"
        ~columns:[ "span"; "calls"; "total (s)"; "self (s)" ]
    in
    List.iter
      (fun (name, st) ->
        Tabulate.add_row t
          [
            name;
            string_of_int st.Span.calls;
            Printf.sprintf "%.4f" st.Span.cumulative;
            Printf.sprintf "%.4f" st.Span.self;
          ])
      stats;
    Tabulate.print t

(* [run_hists] are the per-run deltas from [Algo.run_result.hists]; count-
   unit values render like counters, seconds-unit ones in microsecond
   precision. *)
let print_hist_table run_hists =
  match run_hists with
  | [] -> ()
  | hists ->
    let t =
      Tabulate.create ~title:"histograms"
        ~columns:[ "histogram"; "count"; "mean"; "p50"; "p90"; "p99" ]
    in
    List.iter
      (fun (name, s) ->
        let fmt v =
          match s.Histogram.s_unit with
          | Histogram.Seconds -> Printf.sprintf "%.6f" v
          | Histogram.Count -> counter_cell v
        in
        Tabulate.add_row t
          [
            name;
            string_of_int s.Histogram.count;
            fmt (Histogram.mean s);
            fmt (Histogram.p50 s);
            fmt (Histogram.p90 s);
            fmt (Histogram.p99 s);
          ])
      hists;
    Tabulate.print t

let config_of ~data ~s ~q ~eps ~delta =
  let d = Dataset.dim data in
  let base = Algo.default_config ~d in
  {
    base with
    Algo.s = (if s > 0 then s else base.Algo.s);
    q = (if q > 0 then q else base.Algo.q);
    eps;
    delta;
  }

let print_tuples ?(limit = 25) data =
  let n = Dataset.size data in
  Array.iteri
    (fun i p ->
      if i < limit then Format.printf "  %a@." Tuple.pp p
      else if i = limit then Format.printf "  ... (%d more)@." (n - limit))
    (Dataset.tuples data)

(* --- generate --- *)

let generate_cmd =
  let run source n d seed output =
    with_typed_errors @@ fun () ->
    let data = load_data ~source ~n ~d ~seed in
    (match output with
    | Some path ->
      Dataset.save_csv data path;
      Printf.printf "wrote %d tuples (%d-dimensional) to %s\n" (Dataset.size data)
        (Dataset.dim data) path
    | None -> print_string (Dataset.to_csv data));
    0
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"PATH" ~doc:"Output CSV path (default stdout).")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a data set as CSV.")
    Term.(const run $ data_arg $ n_arg $ d_arg $ seed_arg $ output)

(* --- ingest --- *)

let ingest_cmd =
  let run source n d seed output =
    with_typed_errors @@ fun () ->
    let data = load_data ~source ~n ~d ~seed in
    Dataset.save_store data output;
    Printf.printf "wrote %d rows x %d dims to %s (fingerprint %s)\n"
      (Dataset.size data) (Dataset.dim data) output (Dataset.fingerprint data);
    0
  in
  let output =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OUT.store"
          ~doc:
            "Destination for the columnar binary store (conventionally \
             $(b,.store); $(b,--data) then opens it without re-parsing).")
  in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:
         "Stream a data source (CSV or generator) into a columnar binary \
          .store file for O(1) reopening.")
    Term.(const run $ data_arg $ n_arg $ d_arg $ seed_arg $ output)

(* --- precompute --- *)

let precompute_cmd =
  let run source n d seed eps cache =
    with_typed_errors @@ fun () ->
    if eps <= 0. then begin
      Printf.eprintf "indq: eps must be > 0\n";
      2
    end
    else begin
      let data = load_data ~source ~n ~d ~seed in
      let pruned = Artifact.prune_eps_dominated_cached ~dir:cache ~eps data in
      let c = 1. +. eps in
      Printf.printf
        "(1+eps)-skyline of %s: %d of %d rows (eps %g)\nartifact: %s\n" source
        (Dataset.size pruned) (Dataset.size data) eps
        (Artifact.path ~dir:cache ~fingerprint:(Dataset.fingerprint data) ~c);
      0
    end
  in
  let cache =
    Arg.(
      value
      & opt string Artifact.default_dir
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Artifact cache directory (created if needed; default \
             $(b,.indq-cache)).  A later run over the same data and eps — \
             including $(b,bench -cache DIR scale) — reuses the artifact \
             instead of recomputing the skyline.")
  in
  Cmd.v
    (Cmd.info "precompute"
       ~doc:
         "Compute a data set's (1+eps)-skyline and persist it as a reusable \
          artifact keyed by (fingerprint, eps).")
    Term.(const run $ data_arg $ n_arg $ d_arg $ seed_arg $ eps_arg $ cache)

(* --- exact --- *)

let utility_arg =
  let doc = "Utility vector as comma-separated weights, e.g. 1,20." in
  Arg.(required & opt (some string) None & info [ "utility"; "u" ] ~docv:"U" ~doc)

let parse_utility s =
  String.split_on_char ',' s
  |> List.map (fun x -> float_of_string (String.trim x))
  |> Array.of_list
  |> Indq_linalg.Vec.of_array

let exact_cmd =
  let run source n d seed eps utility =
    with_typed_errors @@ fun () ->
    let data = load_data ~source ~n ~d ~seed in
    let u = parse_utility utility in
    let result = Indist.query_exact ~eps u data in
    let best, value = Dataset.max_utility data u in
    Format.printf "optimum: %a (utility %.6g)@." Tuple.pp best value;
    Format.printf "I(f, %.3g) has %d of %d tuples:@." eps (Dataset.size result)
      (Dataset.size data);
    print_tuples result;
    0
  in
  Cmd.v
    (Cmd.info "exact" ~doc:"Ground-truth indistinguishability query for a known utility.")
    Term.(const run $ data_arg $ n_arg $ d_arg $ seed_arg $ eps_arg $ utility_arg)

(* --- simulate --- *)

let simulate_run source n d seed eps delta s q algo trace metrics =
  with_typed_errors @@ fun () ->
  let data = load_data ~source ~n ~d ~seed in
  let rng = Rng.create (seed + 1) in
  let u = Utility.random rng ~d:(Dataset.dim data) in
  let base_oracle =
    if delta > 0. then Oracle.with_error ~delta ~rng:(Rng.split rng) u
    else Oracle.exact u
  in
  let oracle, transcript =
    if metrics then
      let o, rounds = Oracle.recording base_oracle in
      (o, Some rounds)
    else (base_oracle, None)
  in
  (* A file trace is profiler fodder: spans must be live so the stream
     carries span_started/span_finished causality for `indq profile`. *)
  let file_trace = match trace with Some t -> t <> "-" | None -> false in
  if metrics || file_trace then Span.enable ();
  let config = config_of ~data ~s ~q ~eps ~delta in
  let result =
    with_trace_sink trace (fun sink ->
        Algo.run ?trace:sink algo config ~data ~oracle ~rng:(Rng.split rng))
  in
  let alpha = Indist.alpha ~eps u ~data ~output:result.Algo.output in
  let truth = Indist.query_exact ~eps u data in
  Format.printf "hidden utility: %a@." Indq_linalg.Vec.pp u;
  Format.printf "%s: %d questions, %.3fs, output %d tuples (exact I has %d)@."
    (Algo.to_string algo) result.Algo.questions_used result.Algo.seconds
    (Dataset.size result.Algo.output) (Dataset.size truth);
  Format.printf "alpha = %.6f, false negatives: %b@." alpha
    (Indist.has_false_negatives ~eps u ~data ~output:result.Algo.output);
  print_tuples result.Algo.output;
  (match transcript with
  | Some rounds ->
    Format.printf "@.";
    print_region_audit ~delta ~d:(Dataset.dim data) (rounds ());
    Format.printf "@.";
    print_counter_table result.Algo.metrics;
    print_span_table ();
    print_hist_table result.Algo.hists
  | None -> ());
  if metrics || file_trace then Span.disable ();
  0

let simulate_term =
  Term.(
    const simulate_run $ data_arg $ n_arg $ d_arg $ seed_arg $ eps_arg
    $ delta_arg $ s_arg $ q_arg $ algo_arg $ trace_arg $ metrics_arg)

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"Run an algorithm against a simulated random user.")
    simulate_term

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run an algorithm against a simulated random user (alias of \
          simulate).")
    simulate_term

(* --- interactive --- *)

let interactive_cmd =
  let run source n d seed eps s q algo journal_path resume_path =
    with_typed_errors @@ fun () ->
    let data = load_data ~source ~n ~d ~seed in
    let config = config_of ~data ~s ~q ~eps ~delta:0. in
    let rng = Rng.create (seed + 2) in
    (* Read any journal to replay *before* opening the append sink: with
       --journal and --resume on the same file, the continued session just
       extends it. *)
    let replay =
      match resume_path with
      | None -> None
      | Some path ->
        let text =
          try In_channel.with_open_text path In_channel.input_all
          with Sys_error msg ->
            Printf.eprintf "indq: cannot read journal: %s\n" msg;
            exit 2
        in
        Some (Session.journal_of_string text)
    in
    let journal_oc =
      Option.map
        (fun path ->
          try open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
          with Sys_error msg ->
            Printf.eprintf "indq: cannot open journal: %s\n" msg;
            exit 2)
        journal_path
    in
    Fun.protect
      ~finally:(fun () -> Option.iter close_out journal_oc)
      (fun () ->
        (* Write-ahead: each record is on disk (flushed) before the next
           prompt, so killing the process mid-session loses at most the
           question currently on screen — never an accepted answer. *)
        let journal =
          Option.map
            (fun oc entry ->
              output_string oc (Session.journal_entry_to_json entry);
              output_char oc '\n';
              flush oc)
            journal_oc
        in
        let session =
          match replay with
          | None -> Session.start ?journal algo config ~data ~rng
          | Some entries ->
            let sess = Session.resume ?journal entries algo config ~data ~rng in
            Format.printf "Resumed session: %d answer(s) replayed.@."
              (Session.questions_asked sess);
            sess
        in
        let ask options =
          Format.printf "@.Which do you prefer?@.";
          Array.iteri
            (fun i p ->
              Format.printf "  [%d] %a@." (i + 1) Indq_linalg.Vec.pp p)
            options;
          let rec loop () =
            Format.printf "choice (1-%d): %!" (Array.length options);
            match int_of_string_opt (String.trim (input_line stdin)) with
            | Some k when k >= 1 && k <= Array.length options -> k - 1
            | _ ->
              Format.printf "please enter a number between 1 and %d@."
                (Array.length options);
              loop ()
          in
          loop ()
        in
        let rec drive () =
          match Session.current session with
          | Session.Asking options ->
            (match ask options with
            | choice ->
              Session.answer session choice;
              drive ()
            | exception End_of_file ->
              Format.printf "@.Input closed after %d answered question(s).@."
                (Session.questions_asked session);
              (match journal_path with
              | Some path ->
                Format.printf
                  "The session is journaled; continue it with --resume %s@."
                  path
              | None -> ());
              1)
          | Session.Finished result ->
            Format.printf
              "@.Done after %d questions.  These %d tuples are within %.1f%% \
               of your optimum:@."
              result.Algo.questions_used
              (Dataset.size result.Algo.output)
              (100. *. (1. -. (1. /. (1. +. eps))));
            print_tuples ~limit:50 result.Algo.output;
            0
        in
        drive ())
  in
  let journal_arg =
    let doc =
      "Write-ahead journal: append one JSON record per accepted answer to \
       $(docv), so a crashed or interrupted session can be reconstructed \
       with $(b,--resume)."
    in
    Arg.(
      value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc =
      "Resume a journaled session: replay the answers recorded in $(docv) \
       (written by $(b,--journal)) and continue from the next question.  All \
       other options must match the original invocation."
    in
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "interactive" ~doc:"Run an algorithm with you answering the questions.")
    Term.(
      const run $ data_arg $ n_arg $ d_arg $ seed_arg $ eps_arg $ s_arg $ q_arg
      $ algo_arg $ journal_arg $ resume_arg)

(* --- experiment --- *)

let experiment_cmd =
  let run name seed scale utilities max_n jobs with_metrics =
    if jobs < 1 then begin
      Printf.eprintf "indq: -j must be >= 1 (got %d)\n" jobs;
      exit 2
    end;
    let dataset_labels = [ "Island"; "NBA"; "House" ] in
    Pool.with_pool ~domains:jobs @@ fun p ->
    (* Results are bit-identical for every -j, so a size-1 pool and a real
       one print the same report. *)
    let pool = if Pool.size p > 1 then Some p else None in
    let print_sweep = Report.print_sweep ~with_metrics in
    let per_dataset f =
      List.iter
        (fun kind -> print_sweep (f kind))
        Experiments.[ Island_like; Nba_like; House_like ]
    in
    (match String.lowercase_ascii name with
    | "fig1" -> print_sweep (Experiments.fig1 ~utilities ~scale ?pool ~seed ())
    | "fig2" -> per_dataset (Experiments.fig2 ~utilities ~scale ?pool ~seed)
    | "fig3" -> per_dataset (Experiments.fig3 ~utilities ~scale ?pool ~seed)
    | "fig4" -> per_dataset (Experiments.fig4 ~utilities ~scale ?pool ~seed)
    | "fig5" -> per_dataset (Experiments.fig5 ~utilities ~scale ?pool ~seed)
    | "tab3" ->
      Report.print_time_sweep ~with_metrics ~labels:dataset_labels
        (Experiments.tab3 ~utilities ~scale ?pool ~seed ())
    | "tab4" ->
      Report.print_time_sweep ~with_metrics ~labels:dataset_labels
        (Experiments.tab4 ~utilities ~scale ?pool ~seed ())
    | "fig6" -> print_sweep (Experiments.fig6 ~utilities ~max_n ?pool ~seed ())
    | "fig7" -> print_sweep (Experiments.fig7 ~utilities ?pool ~seed ())
    | other ->
      Printf.eprintf "unknown experiment %S (fig1-fig7, tab3, tab4)\n" other;
      exit 2);
    0
  in
  let experiment_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT" ~doc:"fig1..fig7, tab3 or tab4.")
  in
  let scale =
    Arg.(
      value & opt float 1.0
      & info [ "scale" ] ~docv:"S"
          ~doc:"Data-set size scale, > 0 (values above 1 super-size).")
  in
  let utilities =
    Arg.(
      value & opt int 10
      & info [ "utilities" ] ~docv:"K" ~doc:"Random utilities per cell.")
  in
  let max_n =
    Arg.(
      value & opt int 1_000_000
      & info [ "max-n" ] ~docv:"N" ~doc:"Cap for the fig6 size sweep.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains running the sweep's trials.  Results are \
             bit-identical for every value; only wall-clock times change.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Run one of the paper's evaluation experiments.")
    Term.(
      const run $ experiment_name $ seed_arg $ scale $ utilities $ max_n $ jobs
      $ metrics_arg)

(* --- profile --- *)

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let profile_run trace_file folded_out speedscope_out =
  with_typed_errors @@ fun () ->
  match read_lines trace_file with
  | exception Sys_error msg ->
    Printf.eprintf "indq: cannot read trace file: %s\n" msg;
    2
  | lines ->
    let prof = Profile.of_lines lines in
    if prof.Profile.roots = [] then begin
      Printf.eprintf
        "indq: no span events in %s (record one with: indq simulate --trace \
         FILE, which enables spans)\n"
        trace_file;
      2
    end
    else begin
      let t =
        Tabulate.create ~title:"phases"
          ~columns:
            [ "phase"; "calls"; "total (s)"; "self (s)"; "self %"; "what" ]
      in
      let phases =
        (* Hottest self time first; ties (and zero-width spans) by name. *)
        List.stable_sort
          (fun a b -> Float.compare b.Profile.self a.Profile.self)
          prof.Profile.phases
      in
      List.iter
        (fun (p : Profile.phase) ->
          Tabulate.add_row t
            [
              p.Profile.phase_name;
              string_of_int p.Profile.calls;
              Printf.sprintf "%.6f" p.Profile.total;
              Printf.sprintf "%.6f" p.Profile.self;
              (if prof.Profile.total > 0. then
                 Printf.sprintf "%.1f"
                   (100. *. p.Profile.self /. prof.Profile.total)
               else "-");
              (match Profile.phase_doc p.Profile.phase_name with
              | Some doc -> doc
              | None -> "-");
            ])
        phases;
      Tabulate.print t;
      let self_sum =
        List.fold_left
          (fun acc p -> acc +. p.Profile.self)
          0. prof.Profile.phases
      in
      Printf.printf
        "total traced: %.6fs; per-phase self times sum to %.6fs\n"
        prof.Profile.total self_sum;
      let folded_path =
        match folded_out with Some p -> p | None -> trace_file ^ ".folded"
      in
      let speedscope_path =
        match speedscope_out with
        | Some p -> p
        | None -> trace_file ^ ".speedscope.json"
      in
      (try
         write_file folded_path (Profile.folded prof);
         write_file speedscope_path
           (Profile.speedscope ~name:(Filename.basename trace_file) prof)
       with Sys_error msg ->
         Printf.eprintf "indq: cannot write profile output: %s\n" msg;
         exit 2);
      Printf.printf "wrote %s (flamegraph.pl folded stacks) and %s \
                     (speedscope JSON)\n"
        folded_path speedscope_path;
      0
    end

let profile_cmd =
  let trace_file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE.jsonl"
          ~doc:
            "JSONL trace recorded with $(b,indq simulate --trace FILE) (a \
             file trace records span events automatically).")
  in
  let folded_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"PATH"
          ~doc:
            "Where to write the flamegraph.pl folded stacks (default: \
             TRACE.folded).")
  in
  let speedscope_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "speedscope" ] ~docv:"PATH"
          ~doc:
            "Where to write the speedscope JSON (default: \
             TRACE.speedscope.json).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Replay a JSONL trace into per-phase self-time attribution, \
          folded-stack and speedscope exports.")
    Term.(const profile_run $ trace_file $ folded_out $ speedscope_out)

(* --- serve --- *)

(* SITE=TRIGGER with TRIGGER one of once:K, every:K, after:K, always —
   matching the trigger grammar of bench/main.exe -faults. *)
let parse_fault_arm text =
  let fail msg = Error (`Msg msg) in
  match String.index_opt text '=' with
  | None -> fail "expected SITE=TRIGGER (e.g. inject.journal_torn_write=once:3)"
  | Some eq -> (
    let site = String.sub text 0 eq in
    let spec =
      String.lowercase_ascii
        (String.sub text (eq + 1) (String.length text - eq - 1))
    in
    if not (List.mem site Fault.site_names) then
      fail
        (Printf.sprintf "unknown fault site %S (sites: %s)" site
           (String.concat ", " Fault.site_names))
    else
      let with_count prefix k =
        match
          int_of_string_opt
            (String.sub spec (String.length prefix)
               (String.length spec - String.length prefix))
        with
        | Some n when n >= 1 -> Ok (site, k n)
        | Some _ | None -> fail ("bad trigger count in " ^ spec)
      in
      let has p =
        String.length spec > String.length p
        && String.sub spec 0 (String.length p) = p
      in
      if spec = "always" then Ok (site, Fault.Always)
      else if has "once:" then with_count "once:" (fun n -> Fault.Once n)
      else if has "every:" then with_count "every:" (fun n -> Fault.Every n)
      else if has "after:" then with_count "after:" (fun n -> Fault.After n)
      else fail ("unknown trigger " ^ spec ^ " (once:K, every:K, after:K, always)"))

let serve_cmd =
  let socket_arg =
    let doc = "Listen on a Unix domain socket at $(docv)." in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let port_arg =
    let doc = "Listen on TCP localhost:$(docv) (ignored when --socket is given)." in
    Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)
  in
  let dir_arg =
    let doc = "Session journal directory (created if missing): the server's \
               only persistent state, one $(b,ID.journal) file per session." in
    Arg.(value & opt string "indq-sessions" & info [ "dir" ] ~docv:"DIR" ~doc)
  in
  let max_hydrated_arg =
    let doc = "Keep at most $(docv) sessions live in memory; colder sessions \
               are evicted to their journals and rehydrated on demand." in
    Arg.(value & opt int 1024 & info [ "max-hydrated" ] ~docv:"K" ~doc)
  in
  let fsync_arg =
    let doc = "Journal durability: $(b,always), $(b,batch:K), or $(b,never)." in
    let parse s = Result.map_error (fun m -> `Msg m) (Journal_store.fsync_policy_of_string s) in
    let print ppf p =
      Format.pp_print_string ppf (Journal_store.fsync_policy_to_string p)
    in
    Arg.(
      value
      & opt (conv (parse, print)) (Journal_store.Batch 8)
      & info [ "fsync" ] ~docv:"POLICY" ~doc)
  in
  let idle_arg =
    let doc = "Evict sessions idle longer than $(docv) seconds (0 disables)." in
    Arg.(value & opt float 0. & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let deadline_arg =
    let doc = "Per-answer compute budget in seconds; an over-budget round \
               returns a typed $(b,deadline_exceeded) error (0 disables)." in
    Arg.(value & opt float 0. & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let max_line_arg =
    let doc = "Reject request lines longer than $(docv) bytes." in
    Arg.(value & opt int Server.default_max_line & info [ "max-line" ] ~docv:"BYTES" ~doc)
  in
  let max_n_arg =
    let doc = "Largest dataset size a hello may request." in
    Arg.(value & opt int 200_000 & info [ "max-n" ] ~docv:"N" ~doc)
  in
  let max_d_arg =
    let doc = "Largest dimension a hello may request." in
    Arg.(value & opt int 16 & info [ "max-d" ] ~docv:"D" ~doc)
  in
  let fault_arg =
    let doc =
      "Arm a deterministic fault for the whole run (repeatable): \
       $(b,SITE=once:K|every:K|after:K|always), e.g. \
       $(b,inject.journal_torn_write=once:3)."
    in
    let parse s = parse_fault_arm s in
    let print ppf (site, _) = Format.pp_print_string ppf site in
    Arg.(value & opt_all (conv (parse, print)) [] & info [ "fault" ] ~docv:"ARM" ~doc)
  in
  let allow_shutdown_arg =
    let doc = "Honor the $(b,shutdown) op (off by default: clients get a \
               typed $(b,forbidden) error)." in
    Arg.(value & flag & info [ "allow-shutdown" ] ~doc)
  in
  let run socket port dir max_hydrated fsync idle deadline max_line max_n max_d
      arms allow_shutdown =
    let transport =
      match (socket, port) with
      | Some path, _ -> Server.Unix_path path
      | None, Some p -> Server.Tcp p
      | None, None ->
        Printf.eprintf "indq: serve needs --socket PATH or --port PORT\n";
        exit 2
    in
    if max_hydrated < 1 then begin
      Printf.eprintf "indq: --max-hydrated must be >= 1\n";
      exit 2
    end;
    let config =
      {
        (Engine.default_config ~dir) with
        Engine.fsync;
        max_hydrated;
        idle_timeout = idle;
        deadline;
        max_n;
        max_d;
        allow_shutdown;
      }
    in
    let plan = match arms with [] -> None | arms -> Some (Fault.plan arms) in
    Server.run ?plan ~max_line config transport;
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve interactive sessions over a line-delimited JSON protocol, \
          one crash-recoverable journal per session.")
    Term.(
      const run $ socket_arg $ port_arg $ dir_arg $ max_hydrated_arg
      $ fsync_arg $ idle_arg $ deadline_arg $ max_line_arg $ max_n_arg
      $ max_d_arg $ fault_arg $ allow_shutdown_arg)

let main_cmd =
  let doc = "interactive indistinguishability queries (ICDE 2024 reproduction)" in
  Cmd.group (Cmd.info "indq" ~version:"1.0.0" ~doc)
    [
      generate_cmd;
      ingest_cmd;
      precompute_cmd;
      exact_cmd;
      simulate_cmd;
      run_cmd;
      interactive_cmd;
      experiment_cmd;
      profile_cmd;
      serve_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
