(* Quickstart: the paper's running example (Table I).

   Alice shops for a car by fuel efficiency (MPG) and safety rating (SR).
   Her hidden utility is f(MPG, SR) = MPG + 20 SR.  We first compute the
   ground-truth indistinguishability set for eps = 0.05, then show that the
   interactive Squeeze-u algorithm recovers it without ever being told the
   utility function — it only watches Alice pick favorites.

   Run with:  dune exec examples/quickstart.exe *)

module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple
module Indist = Indq_core.Indist
module Squeeze_u = Indq_core.Squeeze_u
module Oracle = Indq_user.Oracle

let car_names = [| "c1"; "c2"; "c3"; "c4"; "c5" |]

(* MPG and safety rating, straight from Table I (c5's MPG reconstructed
   from its stated utility of 158). *)
let raw_cars =
  Dataset.create
    [| [| 59.; 5. |]; [| 36.; 4. |]; [| 104.; 3. |]; [| 34.; 5. |]; [| 98.; 3. |] |]

let alice_raw = Indq_linalg.Vec.of_array [| 1.; 20. |]
(* hidden from the algorithm *)

(* The paper normalizes data before querying.  We scale each attribute so
   its maximum is 1 — a pure rescaling, so the indistinguishability set is
   unchanged when Alice's weights are rescaled the same way: her effective
   utility on the scaled data is u'_i = u_i * max_i = (104, 100). *)
let cars = Dataset.scale_to_unit_max raw_cars

let alice =
  let ranges = Dataset.attribute_ranges raw_cars in
  Indq_linalg.Vec.mapi (fun i w -> w *. snd ranges.(i)) alice_raw

let print_result title result =
  Printf.printf "%s:\n" title;
  Array.iter
    (fun p ->
      let raw = Dataset.get raw_cars (Tuple.id p) in
      Printf.printf "  %s  MPG=%3.0f  SR=%1.0f  (utility %.0f)\n"
        car_names.(Tuple.id p) (Tuple.get raw 0) (Tuple.get raw 1)
        (Tuple.utility raw alice_raw))
    (Dataset.tuples result);
  print_newline ()

let () =
  let eps = 0.05 in
  (* Ground truth: what a clairvoyant system would return.  Identical on
     raw and scaled data (pure rescaling). *)
  let truth = Indist.query_exact ~eps alice cars in
  assert (
    Dataset.size truth = Dataset.size (Indist.query_exact ~eps alice_raw raw_cars));
  print_result "Ground truth I(f, 0.05) - cars within ~5% of Alice's optimum" truth;

  (* The interactive algorithm: Alice only answers 'which do you prefer?'
     questions; Squeeze-u narrows her utility and prunes the rest. *)
  let oracle = Oracle.exact alice in
  let result = Squeeze_u.run ~data:cars ~s:2 ~q:6 ~eps ~oracle () in
  let other = if result.Squeeze_u.i_star = 0 then 1 else 0 in
  Printf.printf "Squeeze-u asked Alice %d questions (2 options each).\n"
    result.Squeeze_u.questions_used;
  Printf.printf
    "It learned her relative weight for attribute %d to within [%.4f, %.4f].\n\n"
    other
    (Indq_linalg.Vec.get result.Squeeze_u.lo other)
    (Indq_linalg.Vec.get result.Squeeze_u.hi other);
  print_result "Squeeze-u output" result.Squeeze_u.output;

  let alpha = Indist.alpha ~eps alice ~data:cars ~output:result.Squeeze_u.output in
  Printf.printf "approximation value alpha = %.6f (0 = no false positive is far off)\n"
    alpha;
  Printf.printf "false negatives: %b (Definition 3 forbids them)\n"
    (Indist.has_false_negatives ~eps alice ~data:cars ~output:result.Squeeze_u.output)
