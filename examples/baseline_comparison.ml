(* Why interaction is necessary: the paper's introduction argues that the
   classical non-interactive queries cannot answer the indistinguishability
   query.  This example quantifies each failure mode on one synthetic
   market, comparing against the exact I(f, eps):

   - top-k needs the exact utility function (we give it a *perturbed* one,
     simulating an imperfect elicitation);
   - the skyline misses dominated-but-indistinguishable tuples and returns
     uninteresting ones;
   - a greedy k-regret set guarantees only that SOME member is good;
   - interactive Squeeze-u gets the whole set with twelve comparisons.

   Run with:  dune exec examples/baseline_comparison.exe *)

module Dataset = Indq_dataset.Dataset
module Generator = Indq_dataset.Generator
module Baselines = Indq_core.Baselines
module Algo = Indq_core.Algo
module Indist = Indq_core.Indist
module Oracle = Indq_user.Oracle
module Utility = Indq_user.Utility
module Rng = Indq_util.Rng
module Tabulate = Indq_util.Tabulate

let () =
  let rng = Rng.create 23 in
  let data = Generator.anti_correlated rng ~n:8000 ~d:4 in
  let d = Dataset.dim data in
  let eps = 0.05 in
  let user = Utility.random rng ~d in
  let truth = Indist.query_exact ~eps user data in
  Printf.printf "market: %d anti-correlated tuples; the user's I(f, %.2f) has %d tuples\n\n"
    (Dataset.size data) eps (Dataset.size truth);

  let table =
    Tabulate.create ~title:"baselines vs the exact indistinguishability set"
      ~columns:[ "method"; "|result|"; "covered"; "coverage"; "false+" ]
  in
  let row label result =
    let c = Baselines.compare_with_truth ~eps user ~data result in
    Tabulate.add_row table
      [
        label;
        string_of_int c.Baselines.result_size;
        string_of_int c.Baselines.covered;
        Printf.sprintf "%.0f%%" (100. *. c.Baselines.coverage);
        string_of_int c.Baselines.false_positives;
      ]
  in

  (* Top-k with a slightly-wrong utility: elicitation is never exact. *)
  let k = Dataset.size truth in
  let perturbed =
    Utility.normalize_sum
      (Indq_linalg.Vec.map
         (fun w -> Float.max 1e-6 (w *. (1. +. Rng.gaussian ~sigma:0.15 rng)))
         user)
  in
  row (Printf.sprintf "top-%d (perturbed utility)" k)
    (Baselines.top_k data perturbed ~k);

  row "skyline" (Baselines.skyline data);

  let sample = List.init 50 (fun _ -> Utility.random rng ~d) in
  row "greedy 10-regret set" (Baselines.greedy_regret_set data ~size:10 ~sample_utilities:sample);

  let config = Algo.default_config ~d in
  let result =
    Algo.run Algo.Squeeze_u config ~data ~oracle:(Oracle.exact user) ~rng:(Rng.split rng)
  in
  row
    (Printf.sprintf "Squeeze-u (%d questions)" result.Algo.questions_used)
    (Dataset.to_list result.Algo.output);

  Tabulate.print table;
  print_endline "Only the interactive algorithm reaches 100% coverage with a";
  print_endline "small result set: top-k misses under utility error, the skyline";
  print_endline "misses dominated-but-indistinguishable tuples while returning";
  print_endline "many irrelevant ones, and the regret set only covers one winner."
