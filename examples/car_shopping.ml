(* Car shopping at scale: a synthetic market of 5,000 cars with four
   criteria — fuel efficiency, safety, price (smaller is better, so it gets
   inverted) and comfort.  One simulated buyer answers questions for each of
   the four algorithms; we compare how tightly each approximates the buyer's
   true indistinguishability set.

   Run with:  dune exec examples/car_shopping.exe *)

module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple
module Algo = Indq_core.Algo
module Indist = Indq_core.Indist
module Oracle = Indq_user.Oracle
module Utility = Indq_user.Utility
module Rng = Indq_util.Rng
module Tabulate = Indq_util.Tabulate

(* Build the market: correlated quality factors plus a price that rises
   with quality (realistically anti-correlated once inverted). *)
let build_market rng n =
  let row () =
    let quality = Rng.uniform rng in
    let mpg = 15. +. (40. *. quality) +. Rng.gaussian ~sigma:6. rng in
    let safety = 1. +. (4. *. quality) +. Rng.gaussian ~sigma:0.7 rng in
    let price = 8000. +. (45000. *. quality) +. Rng.gaussian ~sigma:4000. rng in
    let comfort = 1. +. (9. *. Rng.uniform rng) in
    [| Float.max 5. mpg; Float.max 1. safety; Float.max 5000. price; comfort |]
  in
  let raw = Dataset.create (Array.init n (fun _ -> row ())) in
  (* Price: smaller is better, so invert it.  Then scale each attribute to
     max 1 — unlike a single global divisor, this keeps a $45k price range
     from drowning out a 5-point safety scale, so the buyer's weights mean
     what they say. *)
  let inverted =
    Dataset.invert_attributes raw
      ~smaller_is_better:[| false; false; true; false |]
  in
  Dataset.scale_to_unit_max inverted

let () =
  let rng = Rng.create 7 in
  let market = build_market rng 5000 in
  let d = Dataset.dim market in
  let eps = 0.05 in

  (* The buyer cares mostly about price and safety. *)
  let buyer =
    Utility.normalize_sum
      (Indq_linalg.Vec.of_array [| 0.15; 0.35; 0.4; 0.1 |])
  in
  let truth = Indist.query_exact ~eps buyer market in
  Printf.printf
    "Market: %d cars, %d criteria (MPG, safety, inverted price, comfort).\n"
    (Dataset.size market) d;
  Printf.printf "The buyer's exact I(f, %.2f) holds %d cars.\n\n" eps
    (Dataset.size truth);

  let config = { (Algo.default_config ~d) with Algo.eps } in
  let table =
    Tabulate.create ~title:"algorithm comparison (same buyer, fresh questions each)"
      ~columns:[ "algorithm"; "questions"; "|output|"; "alpha"; "seconds" ]
  in
  List.iter
    (fun name ->
      let oracle = Oracle.exact buyer in
      let result = Algo.run name config ~data:market ~oracle ~rng:(Rng.split rng) in
      let alpha = Indist.alpha ~eps buyer ~data:market ~output:result.Algo.output in
      assert (not (Indist.has_false_negatives ~eps buyer ~data:market
                     ~output:result.Algo.output));
      Tabulate.add_row table
        [
          Algo.to_string name;
          string_of_int result.Algo.questions_used;
          string_of_int (Dataset.size result.Algo.output);
          Printf.sprintf "%.4f" alpha;
          Printf.sprintf "%.3f" result.Algo.seconds;
        ])
    Algo.all;
  Tabulate.print table;

  (* Show the buyer what Squeeze-u found. *)
  let oracle = Oracle.exact buyer in
  let result = Algo.run Algo.Squeeze_u config ~data:market ~oracle ~rng in
  Printf.printf "Squeeze-u's shortlist for the buyer (top 10 by true utility):\n";
  let scored =
    Dataset.to_list result.Algo.output
    |> List.map (fun p -> (Tuple.utility p buyer, p))
    |> List.sort (fun (a, _) (b, _) -> Float.compare b a)
  in
  List.iteri
    (fun i (v, p) ->
      if i < 10 then
        Printf.printf "  #%-5d utility %.4f  %s\n" (Tuple.id p) v
          (Indq_linalg.Vec.to_string (Tuple.values p)))
    scored
