(* Housing search with real listings only: some interfaces cannot show a
   made-up house, so we use the MinD heuristic (Algorithm 2), which only
   ever displays genuine rows of the data set.  Theorem 1 says no such
   algorithm can bound its false positives — this example shows what that
   means in practice: the shortlist is bigger than the true I, but never
   misses a house the buyer would want.

   Run with:  dune exec examples/housing_search.exe *)

module Dataset = Indq_dataset.Dataset
module Realistic = Indq_dataset.Realistic
module Skyline = Indq_dominance.Skyline
module Real_points = Indq_core.Real_points
module Indist = Indq_core.Indist
module Oracle = Indq_user.Oracle
module Utility = Indq_user.Utility
module Rng = Indq_util.Rng

let () =
  let rng = Rng.create 19 in
  let listings = Realistic.house ~n:4000 rng in
  let d = Dataset.dim listings in
  let eps = 0.05 in
  Printf.printf "Browsing %d listings with %d (inverted) cost attributes.\n"
    (Dataset.size listings) d;
  let candidates = Skyline.prune_eps_dominated ~eps listings in
  Printf.printf
    "Observation 3 narrows the market to %d candidates before any question.\n\n"
    (Dataset.size candidates);

  let buyer = Utility.random rng ~d in
  let truth = Indist.query_exact ~eps buyer listings in

  (* Interview the buyer round by round, logging the transcript. *)
  let shown = ref 0 in
  let log_chooser options =
    incr shown;
    let pick = Utility.best_index buyer options in
    Printf.printf "round %d: shown %d real listings -> buyer picks option %d\n"
      !shown (Array.length options) (pick + 1);
    pick
  in
  let oracle = Oracle.of_chooser log_chooser in
  let result =
    Real_points.run Real_points.MinD ~data:listings ~s:4 ~q:12 ~eps ~oracle
      ~rng:(Rng.split rng)
  in
  let output = result.Real_points.output in
  let alpha = Indist.alpha ~eps buyer ~data:listings ~output in
  Printf.printf
    "\nafter %d rounds: shortlist %d listings (exact I has %d), alpha = %.4f\n"
    result.Real_points.questions_used (Dataset.size output) (Dataset.size truth)
    alpha;
  Printf.printf "every house of I is present: %b\n"
    (not (Indist.has_false_negatives ~eps buyer ~data:listings ~output));

  (* How much better informed are we than a non-interactive system?  The
     non-interactive baseline must keep the whole (1+eps)-skyline. *)
  Printf.printf
    "\nwithout interaction the system could only say: 'one of these %d'.\n"
    (Dataset.size candidates);
  Printf.printf "twelve questions shrank that to %d (%.1f%%).\n"
    (Dataset.size output)
    (100.
    *. float_of_int (Dataset.size output)
    /. float_of_int (Dataset.size candidates))
