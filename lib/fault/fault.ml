module Counter = Indq_obs.Counter
module Rng = Indq_util.Rng

let c_injected = Counter.make "fault.injected"

type trigger = Never | Once of int | Every of int | After of int | Always

type plan = { seed : int; arms : (string * trigger) list }

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected site -> Some (Printf.sprintf "Indq_fault.Fault.Injected(%s)" site)
    | _ -> None)

let sites =
  [
    ("inject.client_disconnect",
     "the session server drops a client connection instead of delivering a \
      response");
    ("inject.dataset_load", "Dataset.of_csv fails as if the source were unreadable");
    ("inject.journal_sync",
     "a session-journal fsync fails as if the device returned EIO");
    ("inject.journal_torn_write",
     "a session-journal append is torn mid-record, as if the process died \
      mid-write");
    ("inject.lp_iteration_cap", "Lp.solve primary pivot budget collapses to zero");
    ("inject.lp_nan_pivot", "a non-finite value is planted in the simplex tableau");
    ("inject.oracle_contradiction", "the simulated user picks the worst option");
    ("inject.worker_death", "a Pool.parallel_map chunk dies before computing");
  ]

let site_names = List.map fst sites

let site_description name =
  match List.assoc_opt name sites with
  | Some d -> d
  | None -> invalid_arg ("Fault.site_description: unknown site " ^ name)

let none = { seed = 0; arms = [] }

let plan ?(seed = 0) arms =
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name sites) then
        invalid_arg ("Fault.plan: unknown site " ^ name))
    arms;
  { seed; arms = List.sort (fun (a, _) (b, _) -> String.compare a b) arms }

let random_plan ~seed =
  let rng = Rng.create seed in
  { seed; arms = List.map (fun name -> (name, Once (1 + Rng.int rng 4))) site_names }

(* The installed plan plus per-site reach/injection counts, per domain. *)
type active = {
  active_plan : plan;
  reaches : (string, int ref) Hashtbl.t;
  injected : (string, int ref) Hashtbl.t;
}

let state_key : active option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let state () = Domain.DLS.get state_key

let armed () = Option.is_some !(state ())

let current () = Option.map (fun a -> a.active_plan) !(state ())

let with_plan p f =
  let r = state () in
  let prev = !r in
  r :=
    Some
      { active_plan = p; reaches = Hashtbl.create 8; injected = Hashtbl.create 8 };
  Fun.protect ~finally:(fun () -> r := prev) f

let with_plan_opt p f = match p with None -> f () | Some p -> with_plan p f

let bump tbl site =
  match Hashtbl.find_opt tbl site with
  | Some r ->
    incr r;
    !r
  | None ->
    Hashtbl.replace tbl site (ref 1);
    1

let matches trigger reach =
  match trigger with
  | Never -> false
  | Always -> true
  | Once k -> reach = k
  | Every k -> k > 0 && reach mod k = 0
  | After k -> reach > k

let fire site =
  match !(state ()) with
  | None -> false
  | Some a ->
    if not (List.mem_assoc site sites) then
      invalid_arg ("Fault.fire: unknown site " ^ site);
    (match List.assoc_opt site a.active_plan.arms with
    | None -> false
    | Some trigger ->
      let reach = bump a.reaches site in
      if matches trigger reach then begin
        ignore (bump a.injected site);
        Counter.incr c_injected;
        true
      end
      else false)

let scheduled site ~index ~attempt =
  match !(state ()) with
  | None -> false
  | Some a ->
    if not (List.mem_assoc site sites) then
      invalid_arg ("Fault.scheduled: unknown site " ^ site);
    (match List.assoc_opt site a.active_plan.arms with
    | None -> false
    | Some Always -> true
    | Some trigger -> attempt = 0 && matches trigger (index + 1))

let injections site =
  match !(state ()) with
  | None -> 0
  | Some a ->
    (match Hashtbl.find_opt a.injected site with Some r -> !r | None -> 0)
