(** Deterministic fault injection.

    A fault {e plan} arms a subset of the named injection {e sites} compiled
    into the stack (the LP solver, the user oracle, the dataset loader, the
    domain pool).  Armed code asks {!fire} at the site; the answer is a pure
    function of the plan and the number of times the site has been reached
    since the plan was installed, so a faulted run is exactly reproducible —
    the same plan over the same workload injects the same faults.

    Plans are domain-local (installed with {!with_plan}); with no plan
    installed every site is dormant and costs one thread-local read.  The
    eight sites and what each one exercises:

    - [inject.lp_iteration_cap] — collapses [Lp.solve]'s primary pivot
      budget to zero, forcing the Bland's-rule anti-cycling fallback;
    - [inject.lp_nan_pivot] — plants a non-finite value in the simplex
      tableau, forcing the typed [Lp.Failed (Numerical _)] outcome;
    - [inject.oracle_contradiction] — makes the simulated user pick the
      {e worst} option, producing contradictory cuts that collapse the
      feasible region;
    - [inject.dataset_load] — fails [Dataset.of_csv] as if the source were
      unreadable, surfacing the typed [Dataset.Load_error];
    - [inject.worker_death] — kills a [Pool.parallel_map] chunk before it
      computes, exercising the per-chunk retry;
    - [inject.journal_torn_write] — tears a session-journal append
      mid-record (a byte-truncated line, no newline), exercising the
      torn-tail recovery in [Session.journal_of_string] and the server's
      crashed-session eviction;
    - [inject.journal_sync] — fails a journal fsync as if the device
      returned EIO; the durable sink absorbs it, counts it and retries on
      the next record;
    - [inject.client_disconnect] — makes the session server drop the
      connection instead of delivering a response, exercising the
      client-side reconnect-and-resume path mid-round. *)

type trigger =
  | Never
  | Once of int  (** inject on the [k]-th time the site is reached (1-based) *)
  | Every of int  (** inject on every [k]-th reach *)
  | After of int  (** inject on every reach past the [k]-th *)
  | Always

type plan = {
  seed : int;  (** provenance only: the seed the plan was derived from *)
  arms : (string * trigger) list;  (** site name -> trigger, sorted by name *)
}

exception Injected of string
(** [Injected site] is the typed exception raised where an injected fault
    cannot be absorbed locally (today: only the simulated worker death,
    when retries are exhausted). *)

val site_names : string list
(** The registry of valid injection sites, sorted. *)

val site_description : string -> string
(** One-line description of a registered site.  Raises [Invalid_argument]
    on an unknown name. *)

val none : plan
(** The empty plan: installs fine, never fires. *)

val plan : ?seed:int -> (string * trigger) list -> plan
(** Validates every site name against the registry (raises
    [Invalid_argument] on an unknown one) and sorts the arms. *)

val random_plan : seed:int -> plan
(** A seed-derived plan arming {e every} site with [Once k], [k] in 1–4,
    drawn from [Util.Rng].  The same seed always yields the same plan; used
    by the CI fault matrix to vary {e when} each site trips. *)

val with_plan : plan -> (unit -> 'a) -> 'a
(** [with_plan p f] installs [p] for the calling domain with fresh per-site
    reach counts, runs [f], and restores the previous plan (if any) on the
    way out, exception or not.  Nests. *)

val with_plan_opt : plan option -> (unit -> 'a) -> 'a
(** [with_plan_opt None f] is [f ()]; [with_plan_opt (Some p) f] is
    [with_plan p f].  Lets the pool re-install the caller's captured plan
    on worker domains. *)

val armed : unit -> bool
(** A plan is installed on this domain (it may still have no arms). *)

val current : unit -> plan option
(** The installed plan, for propagation to other domains. *)

val fire : string -> bool
(** [fire site] — the site has been reached; inject here?  Bumps the
    site's reach count and evaluates its trigger; [true] increments the
    ["fault.injected"] counter.  Always [false] with no plan installed.
    Raises [Invalid_argument] if a plan is installed and [site] is not in
    the registry (a misspelled site would otherwise never fire). *)

val scheduled : string -> index:int -> attempt:int -> bool
(** [scheduled site ~index ~attempt] — reach-count-free variant for sites
    indexed by an external position (pool chunks): the trigger is evaluated
    against [index + 1] instead of a running count, and (except for
    [Always], which fires on every attempt so retries can be exhausted)
    only on [attempt = 0].  Touches no counters — the pool accounts for
    injections itself, in deterministic chunk order on the calling
    domain. *)

val injections : string -> int
(** How many times [fire] returned [true] for the site under the currently
    installed plan ([0] with no plan). *)
