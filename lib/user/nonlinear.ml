module Rng = Indq_util.Rng

module Vec = Indq_linalg.Vec

type t =
  | Linear of Utility.t
  | Concave_power of { weights : Utility.t; exponent : float }
  | Ces of { weights : Utility.t; rho : float }

let validate = function
  | Linear w -> Utility.validate w
  | Concave_power { weights; exponent } ->
    Utility.validate weights;
    if not (exponent > 0. && exponent <= 1.) then
      invalid_arg "Nonlinear.validate: exponent must be in (0, 1]"
  | Ces { weights; rho } ->
    Utility.validate weights;
    if Float.equal rho 0. || rho > 1. then
      invalid_arg "Nonlinear.validate: rho must be non-zero and <= 1"

let value t x =
  match t with
  | Linear w -> Utility.value w x
  | Concave_power { weights; exponent } ->
    let acc = ref 0. in
    Vec.iteri (fun i w -> acc := !acc +. (w *. (Vec.get x i ** exponent))) weights;
    !acc
  | Ces { weights; rho } ->
    let acc = ref 0. in
    Vec.iteri (fun i w -> acc := !acc +. (w *. (Vec.get x i ** rho))) weights;
    if !acc <= 0. then 0. else !acc ** (1. /. rho)

let best_index t options =
  if Array.length options = 0 then invalid_arg "Nonlinear.best_index: empty array";
  let best = ref 0 in
  for i = 1 to Array.length options - 1 do
    if value t options.(i) > value t options.(!best) then best := i
  done;
  !best

let oracle ?(delta = 0.) ?rng t =
  validate t;
  if delta < 0. then invalid_arg "Nonlinear.oracle: negative delta";
  if Float.equal delta 0. then Oracle.of_chooser (best_index t)
  else begin
    match rng with
    | None -> invalid_arg "Nonlinear.oracle: delta > 0 requires an rng"
    | Some rng ->
      Oracle.of_chooser (fun options ->
          let values = Array.map (value t) options in
          let best = Array.fold_left Float.max values.(0) values in
          let candidates = ref [] in
          Array.iteri
            (fun i v ->
              if (1. +. delta) *. v >= best then candidates := i :: !candidates)
            values;
          match !candidates with
          | [] -> best_index t options
          | cs -> List.nth cs (Rng.int rng (List.length cs)))
  end

let random_concave rng ~d ~exponent =
  let t = Concave_power { weights = Utility.random rng ~d; exponent } in
  validate t;
  t
