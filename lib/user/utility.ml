module Rng = Indq_util.Rng
module Vec = Indq_linalg.Vec

type t = Vec.t

let value u p = Vec.dot u p

let validate u =
  if Vec.dim u = 0 then invalid_arg "Utility.validate: empty vector";
  Vec.iter
    (fun x ->
      if not (Float.is_finite x) || x < 0. then
        invalid_arg "Utility.validate: components must be finite and >= 0")
    u;
  if Vec.for_all (fun x -> Float.equal x 0.) u then
    invalid_arg "Utility.validate: all-zero utility"

let normalize_max u =
  validate u;
  let m = Vec.max_coord u in
  Vec.scale (1. /. m) u

let normalize_sum u =
  validate u;
  let s = Vec.sum u in
  Vec.scale (1. /. s) u

let random rng ~d =
  if d <= 0 then invalid_arg "Utility.random: dimension must be positive";
  let raw = Vec.init d (fun _ -> Rng.exponential rng) in
  normalize_sum raw

let random_max_normalized rng ~d = normalize_max (random rng ~d)

let best u = function
  | [] -> invalid_arg "Utility.best: empty list"
  | first :: rest ->
    let pick (best_p, best_v) p =
      let v = value u p in
      if v > best_v then (p, v) else (best_p, best_v)
    in
    fst (List.fold_left pick (first, value u first) rest)

let best_index u options =
  if Array.length options = 0 then invalid_arg "Utility.best_index: empty array";
  let best = ref 0 in
  for i = 1 to Array.length options - 1 do
    if value u options.(i) > value u options.(!best) then best := i
  done;
  !best
