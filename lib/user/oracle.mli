(** The interactive user.

    Algorithms interact with the user only through {!choose}: show a round
    of [s] options (attribute vectors — real tuples or the artificial points
    of Algorithms 1 and 3) and receive the index of the user's favorite.
    The oracle counts rounds and options so experiments can report
    interaction effort.

    Three constructors:
    - {!exact}: always picks the true argmax of the hidden utility;
    - {!with_error}: the paper's δ-error protocol (Section VII-B) — collect
      every shown option δ-indistinguishable from the best shown, pick one
      uniformly at random;
    - {!of_chooser}: wraps an external decision procedure (e.g. a human on
      stdin), for which no hidden utility is available. *)

type t

val exact : Utility.t -> t
(** Error-free user ([delta = 0]) with the given hidden utility. *)

val with_error : delta:float -> rng:Indq_util.Rng.t -> Utility.t -> t
(** δ-error user.  [delta = 0.] behaves like {!exact} (modulo random tie
    breaking among exactly-equal options).  Raises [Invalid_argument] for
    negative [delta]. *)

val of_chooser : (Indq_linalg.Vec.t array -> int) -> t
(** An external chooser; it must return a valid index into the shown
    array. *)

val choose : t -> Indq_linalg.Vec.t array -> int
(** Ask one round.  Raises [Invalid_argument] on an empty option array, or
    if an external chooser returns an out-of-range index. *)

val questions_asked : t -> int
(** Rounds so far. *)

val options_shown : t -> int
(** Total options across all rounds. *)

val reset_counters : t -> unit

val true_utility : t -> Utility.t option
(** The hidden utility, for {i evaluation only} ([None] for external
    choosers).  Algorithms must not call this. *)

val delta : t -> float
(** The user's error parameter (0 for exact and external users). *)

(** {2 Transcripts} *)

type round = {
  options : Indq_linalg.Vec.t array;  (** what the user was shown *)
  choice : int;  (** the index they picked *)
}

val recording : t -> t * (unit -> round list)
(** [recording oracle] wraps an oracle so every round is logged.  Returns
    the wrapped oracle and a function producing the rounds so far in
    chronological order.  Useful for auditing an interaction, replaying it
    ({!replay}), or rendering a session summary. *)

val replay : round list -> t
(** An oracle that answers with the recorded choices in order, verifying at
    each round that it is shown the same number of options; raises
    [Invalid_argument] on mismatch or when the transcript runs out.
    Replaying a recorded run of a deterministic algorithm reproduces it
    exactly. *)
