(** Linear utility functions [f(p) = u . p] with [u >= 0] (Section III).

    Two normalizations appear in the paper and are both provided:
    {!normalize_max} scales so [max_i u_i = 1] (used by the Squeeze-u
    analysis) and {!normalize_sum} scales so [sum_i u_i = 1] (used by the
    real-points algorithms' feasible region).  Neither changes the relative
    order of tuples, hence neither changes the query answer. *)

type t = Indq_linalg.Vec.t
(** The utility vector [u]. *)

val value : t -> Indq_linalg.Vec.t -> float
(** [value u p] is [u . p]. *)

val validate : t -> unit
(** Raises [Invalid_argument] unless all components are non-negative, finite
    and at least one is positive. *)

val normalize_max : t -> t
(** Scale so the largest component is 1. *)

val normalize_sum : t -> t
(** Scale so the components sum to 1. *)

val random : Indq_util.Rng.t -> d:int -> t
(** A random utility drawn uniformly from the simplex (exponential trick),
    then sum-normalized — the paper evaluates on "ten independently random
    utility functions". *)

val random_max_normalized : Indq_util.Rng.t -> d:int -> t
(** As {!random} but max-normalized. *)

val best : t -> Indq_linalg.Vec.t list -> Indq_linalg.Vec.t
(** The argmax of [value u] over a non-empty list (first on ties). *)

val best_index : t -> Indq_linalg.Vec.t array -> int
(** Argmax index over a non-empty array (first on ties). *)
