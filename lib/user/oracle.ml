module Rng = Indq_util.Rng
module Counter = Indq_obs.Counter
module Fault = Indq_fault.Fault
module Trace = Indq_obs.Trace

let c_questions = Counter.make "oracle.questions"

type chooser =
  | Exact of Utility.t
  | Erring of { utility : Utility.t; delta : float; rng : Rng.t }
  | External of (Indq_linalg.Vec.t array -> int)

type t = {
  chooser : chooser;
  mutable questions : int;
  mutable options : int;
}

let exact utility =
  Utility.validate utility;
  { chooser = Exact (Indq_linalg.Vec.copy utility); questions = 0; options = 0 }

let with_error ~delta ~rng utility =
  Utility.validate utility;
  if delta < 0. then invalid_arg "Oracle.with_error: negative delta";
  {
    chooser = Erring { utility = Indq_linalg.Vec.copy utility; delta; rng };
    questions = 0;
    options = 0;
  }

let of_chooser f = { chooser = External f; questions = 0; options = 0 }

(* Paper protocol: among the shown options, find the best utility, collect
   everything delta-indistinguishable from it, pick uniformly. *)
let erring_pick ~utility ~delta ~rng options =
  let values = Array.map (Utility.value utility) options in
  let best = Array.fold_left Float.max values.(0) values in
  let candidates = ref [] in
  Array.iteri
    (fun i v -> if (1. +. delta) *. v >= best then candidates := i :: !candidates)
    values;
  match !candidates with
  | [] -> Utility.best_index utility options (* unreachable: best qualifies *)
  | cs -> List.nth cs (Rng.int rng (List.length cs))

(* The armed [inject.oracle_contradiction] fault flips a simulated user's
   answer to the *worst* option, the strongest contradiction a single round
   can produce: its halfspaces contradict every previous honest answer, so
   downstream region updates must detect the collapse and degrade instead
   of pruning from garbage. *)
let worst_index utility options =
  let values = Array.map (Utility.value utility) options in
  let worst = ref 0 in
  Array.iteri (fun i v -> if v < values.(!worst) then worst := i) values;
  !worst

(* The selection logic alone, with no interaction accounting: shared by
   [choose] and by [recording], which must not count the inner oracle's
   answer as a second question.  Only simulated users (choosers that know
   the utility) have injectable contradictions; an [External] chooser's
   answers come from outside the process. *)
let select t options =
  match t.chooser with
  | Exact utility ->
    if Fault.fire "inject.oracle_contradiction" then
      worst_index utility options
    else Utility.best_index utility options
  | Erring { utility; delta; rng } ->
    if Fault.fire "inject.oracle_contradiction" then
      worst_index utility options
    else erring_pick ~utility ~delta ~rng options
  | External f ->
    let i = f options in
    if i < 0 || i >= Array.length options then
      invalid_arg "Oracle.choose: external chooser returned bad index";
    i

let choose t options =
  if Array.length options = 0 then invalid_arg "Oracle.choose: no options";
  t.questions <- t.questions + 1;
  t.options <- t.options + Array.length options;
  Counter.incr c_questions;
  let i = select t options in
  Trace.emit_with (fun () ->
      Trace.Question_asked
        { round = t.questions; options = Array.length options; choice = i });
  i

let questions_asked t = t.questions

let options_shown t = t.options

let reset_counters t =
  t.questions <- 0;
  t.options <- 0

let true_utility t =
  match t.chooser with
  | Exact u | Erring { utility = u; _ } -> Some (Indq_linalg.Vec.copy u)
  | External _ -> None

let delta t =
  match t.chooser with
  | Exact _ | External _ -> 0.
  | Erring { delta; _ } -> delta

type round = { options : Indq_linalg.Vec.t array; choice : int }

let recording inner =
  let log = ref [] in
  let wrapped =
    of_chooser (fun options ->
        (* [select], not [choose]: the wrapper's own [choose] call already
           does the per-question accounting (question counters, trace). *)
        let choice = select inner options in
        log := { options = Array.map Indq_linalg.Vec.copy options; choice } :: !log;
        choice)
  in
  (wrapped, fun () -> List.rev !log)

let replay rounds =
  let remaining = ref rounds in
  of_chooser (fun options ->
      match !remaining with
      | [] -> invalid_arg "Oracle.replay: transcript exhausted"
      | r :: rest ->
        if Array.length r.options <> Array.length options then
          invalid_arg "Oracle.replay: option-count mismatch";
        remaining := rest;
        r.choice)
