(** Non-linear utility functions — the paper's open question 3.

    The algorithms assume a linear utility; this module provides the
    standard non-linear families used in the regret literature (Kessler
    Faulkner et al., VLDB 2015) so the repository can {i measure} how the
    linear-assuming algorithms degrade when the real user is non-linear
    (see the [ablation-nonlinear] bench):

    - {b concave power}: [f(x) = sum_i w_i x_i^e] with [0 < e <= 1]
      (diminishing returns per attribute; [e = 1] is linear);
    - {b CES}: [f(x) = (sum_i w_i x_i^rho)^(1/rho)] with [rho <= 1],
      [rho <> 0] (constant elasticity of substitution). *)

type t =
  | Linear of Utility.t
  | Concave_power of { weights : Utility.t; exponent : float }
  | Ces of { weights : Utility.t; rho : float }

val validate : t -> unit
(** Raises [Invalid_argument] on non-positive weights vectors, exponents
    outside (0, 1], or [rho] outside [(-inf, 1] \ {0}]. *)

val value : t -> Indq_linalg.Vec.t -> float
(** Evaluate on a non-negative tuple. *)

val best_index : t -> Indq_linalg.Vec.t array -> int
(** Argmax over a non-empty array (first on ties). *)

val oracle :
  ?delta:float -> ?rng:Indq_util.Rng.t -> t -> Oracle.t
(** A user oracle driven by this utility.  With [delta > 0] (requires
    [rng]) the user errs among options delta-indistinguishable {i under
    this utility}, mirroring {!Oracle.with_error}. *)

val random_concave :
  Indq_util.Rng.t -> d:int -> exponent:float -> t
(** Random simplex weights with the given exponent. *)
