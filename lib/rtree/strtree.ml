(* A packed, static STR-tree over the rows of a flat columnar buffer.
   Nothing here is a per-node heap object: the row permutation is one int
   array, each level's bounding boxes are two flat Float64 buffers, and
   children are addressed implicitly (node [j]'s children are nodes
   [j*fanout ..] of the level below).  A 10^7-point tree is a handful of
   allocations, and builds in a few sorting passes.

   Counter names are shared with the pointer-based {!Rtree}
   ([Counter.make]/[Histogram.make] are idempotent per name), so bench
   cells see one [rtree.nodes_visited] stream regardless of which index
   served the query. *)

module Counter = Indq_obs.Counter
module Histogram = Indq_obs.Histogram
module Vec = Indq_linalg.Vec

let c_nodes_visited = Counter.make "rtree.nodes_visited"

let c_bulk_nodes = Counter.make "rtree.bulk_nodes"

let h_leaf_fill = Histogram.make "rtree.leaf_fill"

type level = { l_lo : Vec.t; l_hi : Vec.t; l_count : int }

type t = {
  t_dim : int;
  t_n : int;
  t_data : Vec.t;  (* the flat row-major buffer the tree indexes into *)
  t_order : int array;  (* permutation of row positions, leaves = runs *)
  t_leaf_start : int array;  (* leaf j spans order[start.(j) .. start.(j+1)) *)
  t_fanout : int;
  t_levels : level array;  (* levels.(0) = leaves, last level has 1 node *)
}

let dim t = t.t_dim

let size t = t.t_n

let depth t = Array.length t.t_levels

let leaf_count t =
  if Array.length t.t_levels = 0 then 0 else t.t_levels.(0).l_count

(* Smallest s >= 1 with s^k >= pages — exact integer arithmetic so slab
   counts (hence tree shape and visit counters) cannot drift with libm
   rounding. *)
let int_kth_root_ceil ~k pages =
  let pow s =
    let p = ref 1 in
    for _ = 1 to k do
      p := !p * s
    done;
    !p
  in
  let s = ref 1 in
  while pow !s < pages do
    incr s
  done;
  !s

(* Sort order[lo..hi) by coordinate [axis] of the rows it names. *)
let sort_range data ~dim order lo hi axis =
  let len = hi - lo in
  let tmp = Array.sub order lo len in
  Array.sort
    (fun i j ->
      Float.compare (Vec.get data ((i * dim) + axis)) (Vec.get data ((j * dim) + axis)))
    tmp;
  Array.blit tmp 0 order lo len

let build ?(leaf_cap = 32) ?(fanout = 8) ~dim data n =
  if dim <= 0 then invalid_arg "Strtree.build: dimension must be positive";
  if n < 0 then invalid_arg "Strtree.build: negative row count";
  if leaf_cap < 1 then invalid_arg "Strtree.build: leaf_cap must be >= 1";
  if fanout < 2 then invalid_arg "Strtree.build: fanout must be >= 2";
  if n * dim > Vec.dim data then invalid_arg "Strtree.build: buffer too short";
  let order = Array.init n Fun.id in
  if n = 0 then
    {
      t_dim = dim;
      t_n = 0;
      t_data = data;
      t_order = order;
      t_leaf_start = [| 0 |];
      t_fanout = fanout;
      t_levels = [||];
    }
  else begin
    (* Tile the permutation in place; slabs are processed left to right, so
       leaves come out as ascending consecutive runs. *)
    let bounds = ref [ 0 ] in
    let rec tile lo hi axis =
      let len = hi - lo in
      if len <= leaf_cap then bounds := hi :: !bounds
      else if axis >= dim - 1 then begin
        sort_range data ~dim order lo hi axis;
        let i = ref lo in
        while !i < hi do
          let step = min leaf_cap (hi - !i) in
          i := !i + step;
          bounds := !i :: !bounds
        done
      end
      else begin
        let pages = (len + leaf_cap - 1) / leaf_cap in
        let slabs = int_kth_root_ceil ~k:(dim - axis) pages in
        let per_slab = (len + slabs - 1) / slabs in
        sort_range data ~dim order lo hi axis;
        let i = ref lo in
        while !i < hi do
          let step = min per_slab (hi - !i) in
          tile !i (!i + step) (axis + 1);
          i := !i + step
        done
      end
    in
    tile 0 n 0;
    let leaf_start = Array.of_list (List.rev !bounds) in
    let leaves = Array.length leaf_start - 1 in
    (* Leaf-level bounding boxes. *)
    let lo0 = Vec.make (leaves * dim) infinity in
    let hi0 = Vec.make (leaves * dim) neg_infinity in
    for j = 0 to leaves - 1 do
      Counter.incr c_bulk_nodes;
      Histogram.observe h_leaf_fill
        (float_of_int (leaf_start.(j + 1) - leaf_start.(j)));
      for s = leaf_start.(j) to leaf_start.(j + 1) - 1 do
        let base = order.(s) * dim in
        for i = 0 to dim - 1 do
          let x = Vec.get data (base + i) in
          let k = (j * dim) + i in
          if x < Vec.get lo0 k then Vec.set lo0 k x;
          if x > Vec.get hi0 k then Vec.set hi0 k x
        done
      done
    done;
    (* Upper levels: fanout consecutive children per node, until one root.
       Leaves arrive in tile order, so consecutive runs stay spatially
       tight. *)
    let levels = ref [ { l_lo = lo0; l_hi = hi0; l_count = leaves } ] in
    let rec pack prev =
      if prev.l_count > 1 then begin
        let count = (prev.l_count + fanout - 1) / fanout in
        let lo = Vec.make (count * dim) infinity in
        let hi = Vec.make (count * dim) neg_infinity in
        for j = 0 to count - 1 do
          Counter.incr c_bulk_nodes;
          let first = j * fanout in
          let last = min (first + fanout) prev.l_count - 1 in
          for k = first to last do
            for i = 0 to dim - 1 do
              let src = (k * dim) + i and dst = (j * dim) + i in
              let x = Vec.get prev.l_lo src in
              if x < Vec.get lo dst then Vec.set lo dst x;
              let y = Vec.get prev.l_hi src in
              if y > Vec.get hi dst then Vec.set hi dst y
            done
          done
        done;
        let level = { l_lo = lo; l_hi = hi; l_count = count } in
        levels := level :: !levels;
        pack level
      end
    in
    pack (List.hd !levels);
    {
      t_dim = dim;
      t_n = n;
      t_data = data;
      t_order = order;
      t_leaf_start = leaf_start;
      t_fanout = fanout;
      t_levels = Array.of_list (List.rev !levels);
    }
  end

let check_box t lo hi name =
  if Vec.dim lo <> t.t_dim || Vec.dim hi <> t.t_dim then
    invalid_arg (name ^ ": dimension mismatch")

let node_intersects t level j ~lo ~hi =
  Counter.incr c_nodes_visited;
  let d = t.t_dim in
  let ok = ref true in
  for i = 0 to d - 1 do
    if
      Vec.get level.l_lo ((j * d) + i) > Vec.get hi i
      || Vec.get lo i > Vec.get level.l_hi ((j * d) + i)
    then ok := false
  done;
  !ok
[@@indq.alloc_free
  "query-probe kernel: Bigarray box compares against the flat level \
   arrays, with a local bool accumulator the backend keeps in a register"]

let point_in_box t pos ~lo ~hi =
  let d = t.t_dim in
  let base = pos * d in
  let ok = ref true in
  for i = 0 to d - 1 do
    let x = Vec.get t.t_data (base + i) in
    if x < Vec.get lo i || x > Vec.get hi i then ok := false
  done;
  !ok
[@@indq.alloc_free
  "query-probe kernel: leaf-point containment test over the flat \
   coordinate array; no boxing on the compare path"]

exception Found

let exists_in_box t ~lo ~hi ~f =
  check_box t lo hi "Strtree.exists_in_box";
  let nlevels = Array.length t.t_levels in
  if nlevels = 0 then false
  else begin
    let rec go lev j =
      if node_intersects t t.t_levels.(lev) j ~lo ~hi then begin
        if lev = 0 then begin
          for s = t.t_leaf_start.(j) to t.t_leaf_start.(j + 1) - 1 do
            let pos = t.t_order.(s) in
            if point_in_box t pos ~lo ~hi && f pos then raise Found
          done
        end
        else begin
          let first = j * t.t_fanout in
          let last =
            min (first + t.t_fanout) t.t_levels.(lev - 1).l_count - 1
          in
          for k = first to last do
            go (lev - 1) k
          done
        end
      end
    in
    try
      go (nlevels - 1) 0;
      false
    with Found -> true
  end

let fold_in_box t ~lo ~hi ~init ~f =
  check_box t lo hi "Strtree.fold_in_box";
  let nlevels = Array.length t.t_levels in
  if nlevels = 0 then init
  else begin
    let acc = ref init in
    let rec go lev j =
      if node_intersects t t.t_levels.(lev) j ~lo ~hi then begin
        if lev = 0 then
          for s = t.t_leaf_start.(j) to t.t_leaf_start.(j + 1) - 1 do
            let pos = t.t_order.(s) in
            if point_in_box t pos ~lo ~hi then acc := f !acc pos
          done
        else begin
          let first = j * t.t_fanout in
          let last =
            min (first + t.t_fanout) t.t_levels.(lev - 1).l_count - 1
          in
          for k = first to last do
            go (lev - 1) k
          done
        end
      end
    in
    go (nlevels - 1) 0;
    !acc
  end

let collect_in_box t ~lo ~hi =
  List.rev (fold_in_box t ~lo ~hi ~init:[] ~f:(fun acc pos -> pos :: acc))

let check_invariants t =
  let ok = ref true in
  let d = t.t_dim in
  (* The permutation covers every row exactly once. *)
  let seen = Array.make t.t_n false in
  Array.iter
    (fun pos ->
      if pos < 0 || pos >= t.t_n || seen.(pos) then ok := false
      else seen.(pos) <- true)
    t.t_order;
  Array.iter (fun b -> if not b then ok := false) seen;
  if Array.length t.t_levels > 0 then begin
    (* Leaf boxes contain their points. *)
    let l0 = t.t_levels.(0) in
    if Array.length t.t_leaf_start <> l0.l_count + 1 then ok := false;
    for j = 0 to l0.l_count - 1 do
      for s = t.t_leaf_start.(j) to t.t_leaf_start.(j + 1) - 1 do
        let base = t.t_order.(s) * d in
        for i = 0 to d - 1 do
          let x = Vec.get t.t_data (base + i) in
          if
            x < Vec.get l0.l_lo ((j * d) + i)
            || x > Vec.get l0.l_hi ((j * d) + i)
          then ok := false
        done
      done
    done;
    (* Every upper node's box contains its children's boxes, and the top
       level is a single root. *)
    for lev = 1 to Array.length t.t_levels - 1 do
      let up = t.t_levels.(lev) and down = t.t_levels.(lev - 1) in
      for j = 0 to up.l_count - 1 do
        let first = j * t.t_fanout in
        let last = min (first + t.t_fanout) down.l_count - 1 in
        if first > last then ok := false;
        for k = first to last do
          for i = 0 to d - 1 do
            if
              Vec.get down.l_lo ((k * d) + i) < Vec.get up.l_lo ((j * d) + i)
              || Vec.get down.l_hi ((k * d) + i)
                 > Vec.get up.l_hi ((j * d) + i)
            then ok := false
          done
        done
      done
    done;
    if t.t_levels.(Array.length t.t_levels - 1).l_count <> 1 then ok := false
  end
  else if t.t_n <> 0 then ok := false;
  !ok
