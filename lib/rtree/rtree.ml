(* Guttman R-tree (quadratic split).  Nodes keep children in plain lists —
   fanout is small (<= max_entries) so list traversal is fine. *)

module Counter = Indq_obs.Counter
module Histogram = Indq_obs.Histogram
module Vec = Indq_linalg.Vec

let c_nodes_visited = Counter.make "rtree.nodes_visited"

let c_bulk_nodes = Counter.make "rtree.bulk_nodes"

let h_leaf_fill = Histogram.make "rtree.leaf_fill"

type 'a node = {
  mutable mbr : Rect.t;
  mutable contents : 'a contents;
}

and 'a contents =
  | Leaf of (Rect.t * 'a) list
  | Internal of 'a node list

type 'a t = {
  dimension : int;
  max_entries : int;
  min_entries : int;
  mutable root : 'a node option;
  mutable count : int;
}

let create ?(max_entries = 8) ~dim () =
  if dim <= 0 then invalid_arg "Rtree.create: dimension must be positive";
  if max_entries < 4 then invalid_arg "Rtree.create: max_entries must be >= 4";
  {
    dimension = dim;
    max_entries;
    min_entries = max_entries / 2;
    root = None;
    count = 0;
  }

let dim t = t.dimension

let size t = t.count

let node_mbr_of_children = function
  | Leaf entries -> Rect.union_many (List.map fst entries)
  | Internal kids -> Rect.union_many (List.map (fun n -> n.mbr) kids)

let refresh_mbr node = node.mbr <- node_mbr_of_children node.contents

(* Quadratic split over an abstract item list with rectangle accessor. *)
let quadratic_split ~min_entries ~rect_of items =
  (* Pick the two seeds wasting the most area if grouped together. *)
  let arr = Array.of_list items in
  let n = Array.length arr in
  let seed_a = ref 0 and seed_b = ref 1 and worst = ref neg_infinity in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ri = rect_of arr.(i) and rj = rect_of arr.(j) in
      let waste = Rect.area (Rect.union ri rj) -. Rect.area ri -. Rect.area rj in
      if waste > !worst then begin
        worst := waste;
        seed_a := i;
        seed_b := j
      end
    done
  done;
  let group_a = ref [ arr.(!seed_a) ] and group_b = ref [ arr.(!seed_b) ] in
  let mbr_a = ref (rect_of arr.(!seed_a)) and mbr_b = ref (rect_of arr.(!seed_b)) in
  let remaining = ref [] in
  for i = n - 1 downto 0 do
    if i <> !seed_a && i <> !seed_b then remaining := arr.(i) :: !remaining
  done;
  let assign_to_a item =
    group_a := item :: !group_a;
    mbr_a := Rect.union !mbr_a (rect_of item)
  and assign_to_b item =
    group_b := item :: !group_b;
    mbr_b := Rect.union !mbr_b (rect_of item)
  in
  let rec distribute todo =
    match todo with
    | [] -> ()
    | _ ->
      let left = List.length todo in
      (* Force-assign when one group must absorb the rest to reach the
         minimum fill. *)
      if List.length !group_a + left <= min_entries then begin
        List.iter assign_to_a todo
      end
      else if List.length !group_b + left <= min_entries then begin
        List.iter assign_to_b todo
      end
      else begin
        (* Pick the item with the strongest preference (max enlargement
           difference), classic Guttman PickNext. *)
        let best = ref (List.hd todo) and best_diff = ref neg_infinity in
        List.iter
          (fun item ->
            let r = rect_of item in
            let da = Rect.enlargement !mbr_a r in
            let db = Rect.enlargement !mbr_b r in
            let diff = Float.abs (da -. db) in
            if diff > !best_diff then begin
              best_diff := diff;
              best := item
            end)
          todo;
        let item = !best in
        let rest = List.filter (fun x -> x != item) todo in
        let da = Rect.enlargement !mbr_a (rect_of item) in
        let db = Rect.enlargement !mbr_b (rect_of item) in
        let prefer_a =
          da < db
          || (da = db
             && (Rect.area !mbr_a < Rect.area !mbr_b
                || (Rect.area !mbr_a = Rect.area !mbr_b
                   && List.length !group_a <= List.length !group_b)))
        in
        if prefer_a then assign_to_a item else assign_to_b item;
        distribute rest
      end
  in
  distribute !remaining;
  (!group_a, !group_b)

(* Insert an entry; on overflow returns the sibling node created by the
   split. *)
let rec insert_into t node rect payload =
  match node.contents with
  | Leaf entries ->
    let entries = (rect, payload) :: entries in
    node.contents <- Leaf entries;
    node.mbr <- Rect.union node.mbr rect;
    if List.length entries <= t.max_entries then None
    else begin
      let ga, gb =
        quadratic_split ~min_entries:t.min_entries ~rect_of:fst entries
      in
      node.contents <- Leaf ga;
      refresh_mbr node;
      let sibling =
        { mbr = Rect.union_many (List.map fst gb); contents = Leaf gb }
      in
      Some sibling
    end
  | Internal kids ->
    (* ChooseSubtree: least enlargement, ties by smaller area. *)
    let best = ref (List.hd kids) and best_cost = ref infinity and best_area = ref infinity in
    List.iter
      (fun kid ->
        let cost = Rect.enlargement kid.mbr rect in
        let a = Rect.area kid.mbr in
        if cost < !best_cost || (cost = !best_cost && a < !best_area) then begin
          best := kid;
          best_cost := cost;
          best_area := a
        end)
      kids;
    let overflow = insert_into t !best rect payload in
    node.mbr <- Rect.union node.mbr rect;
    (match overflow with
    | None -> None
    | Some sibling ->
      let kids = sibling :: kids in
      node.contents <- Internal kids;
      refresh_mbr node;
      if List.length kids <= t.max_entries then None
      else begin
        let ga, gb =
          quadratic_split ~min_entries:t.min_entries
            ~rect_of:(fun n -> n.mbr) kids
        in
        node.contents <- Internal ga;
        refresh_mbr node;
        Some
          {
            mbr = Rect.union_many (List.map (fun n -> n.mbr) gb);
            contents = Internal gb;
          }
      end)

let insert t rect payload =
  if Rect.dim rect <> t.dimension then invalid_arg "Rtree.insert: dimension mismatch";
  (match t.root with
  | None -> t.root <- Some { mbr = rect; contents = Leaf [ (rect, payload) ] }
  | Some root ->
    (match insert_into t root rect payload with
    | None -> ()
    | Some sibling ->
      let new_root =
        {
          mbr = Rect.union root.mbr sibling.mbr;
          contents = Internal [ root; sibling ];
        }
      in
      t.root <- Some new_root));
  t.count <- t.count + 1

let insert_point t p payload = insert t (Rect.of_point p) payload

let of_points ?max_entries ~dim points =
  let t = create ?max_entries ~dim () in
  List.iter (fun (p, v) -> insert_point t p v) points;
  t

(* --- STR (sort-tile-recursive) bulk loading. *)

(* Smallest s >= 1 with s^k >= pages, by exact integer search: slab counts
   must not depend on libm pow rounding, or tree shapes (and the visit
   counters the perf gate compares) could drift across platforms. *)
let int_kth_root_ceil ~k pages =
  let pow s =
    let p = ref 1 in
    for _ = 1 to k do
      p := !p * s
    done;
    !p
  in
  let s = ref 1 in
  while pow !s < pages do
    incr s
  done;
  !s

(* Partition [items] (each paired with its precomputed MBR center) into
   consecutive groups of at most [cap]: sort by the current axis, cut into
   ceil(pages^(1/axes_left)) slabs, recurse on the next axis inside each
   slab.  Every group except possibly the last one per slab comes out
   full — the near-perfect packing that makes one-pass loading worth it. *)
let str_groups ~dim ~cap items =
  let groups = ref [] in
  let sort_axis axis arr =
    Array.sort (fun (ca, _) (cb, _) -> Float.compare ca.(axis) cb.(axis)) arr
  in
  let rec go arr axis =
    let n = Array.length arr in
    if n <= cap then groups := arr :: !groups
    else if axis >= dim - 1 then begin
      sort_axis axis arr;
      let i = ref 0 in
      while !i < n do
        let len = min cap (n - !i) in
        groups := Array.sub arr !i len :: !groups;
        i := !i + len
      done
    end
    else begin
      let pages = (n + cap - 1) / cap in
      let slabs = int_kth_root_ceil ~k:(dim - axis) pages in
      let per_slab = (n + slabs - 1) / slabs in
      sort_axis axis arr;
      let i = ref 0 in
      while !i < n do
        let len = min per_slab (n - !i) in
        go (Array.sub arr !i len) (axis + 1);
        i := !i + len
      done
    end
  in
  go items 0;
  List.rev !groups

let rect_center ~dim (r : Rect.t) =
  Array.init dim (fun i -> (Vec.get r.Rect.lo i +. Vec.get r.Rect.hi i) /. 2.)

let bulk_load ?(max_entries = 8) ~dim entries =
  if dim <= 0 then invalid_arg "Rtree.bulk_load: dimension must be positive";
  if max_entries < 4 then invalid_arg "Rtree.bulk_load: max_entries must be >= 4";
  List.iter
    (fun (r, _) ->
      if Rect.dim r <> dim then
        invalid_arg "Rtree.bulk_load: dimension mismatch")
    entries;
  let t =
    {
      dimension = dim;
      max_entries;
      min_entries = max_entries / 2;
      root = None;
      count = 0;
    }
  in
  match entries with
  | [] -> t
  | _ ->
    let keyed =
      Array.of_list
        (List.map (fun ((r, _) as e) -> (rect_center ~dim r, e)) entries)
    in
    let leaves =
      List.map
        (fun group ->
          let es = Array.to_list (Array.map snd group) in
          Counter.incr c_bulk_nodes;
          Histogram.observe h_leaf_fill (float_of_int (List.length es));
          { mbr = Rect.union_many (List.map fst es); contents = Leaf es })
        (str_groups ~dim ~cap:max_entries keyed)
    in
    (* Pack upper levels with the same tiling over node-MBR centers until a
       single root remains. *)
    let rec pack nodes =
      match nodes with
      | [ root ] -> root
      | _ ->
        let keyed =
          Array.of_list
            (List.map (fun node -> (rect_center ~dim node.mbr, node)) nodes)
        in
        let parents =
          List.map
            (fun group ->
              let kids = Array.to_list (Array.map snd group) in
              Counter.incr c_bulk_nodes;
              {
                mbr = Rect.union_many (List.map (fun n -> n.mbr) kids);
                contents = Internal kids;
              })
            (str_groups ~dim ~cap:max_entries keyed)
        in
        pack parents
    in
    t.root <- Some (pack leaves);
    t.count <- List.length entries;
    t

let bulk_load_points ?max_entries ~dim points =
  bulk_load ?max_entries ~dim
    (List.map (fun (p, v) -> (Rect.of_point p, v)) points)

let fold_overlapping t query ~init ~f =
  let rec go acc node =
    Counter.incr c_nodes_visited;
    if not (Rect.intersects node.mbr query) then acc
    else
      match node.contents with
      | Leaf entries ->
        List.fold_left
          (fun acc (r, v) -> if Rect.intersects r query then f acc r v else acc)
          acc entries
      | Internal kids -> List.fold_left go acc kids
  in
  match t.root with None -> init | Some root -> go init root

let search t query =
  fold_overlapping t query ~init:[] ~f:(fun acc _ v -> v :: acc)

exception Found

let exists_overlapping t query ~f =
  let rec go node =
    Counter.incr c_nodes_visited;
    if Rect.intersects node.mbr query then
      match node.contents with
      | Leaf entries ->
        List.iter
          (fun (r, v) -> if Rect.intersects r query && f r v then raise Found)
          entries
      | Internal kids -> List.iter go kids
  in
  match t.root with
  | None -> false
  | Some root -> ( try go root; false with Found -> true)

let iter t f =
  let rec go node =
    match node.contents with
    | Leaf entries -> List.iter (fun (r, v) -> f r v) entries
    | Internal kids -> List.iter go kids
  in
  match t.root with None -> () | Some root -> go root

let depth t =
  let rec go node =
    match node.contents with
    | Leaf _ -> 1
    | Internal kids -> 1 + go (List.hd kids)
  in
  match t.root with None -> 0 | Some root -> go root

let check_invariants t =
  let ok = ref true in
  let rec leaf_depths node d =
    (match node.contents with
    | Leaf entries ->
      List.iter
        (fun (r, _) ->
          if not (Rect.contains_rect ~outer:node.mbr ~inner:r) then ok := false)
        entries;
      [ d ]
    | Internal kids ->
      List.iter
        (fun kid ->
          if not (Rect.contains_rect ~outer:node.mbr ~inner:kid.mbr) then
            ok := false)
        kids;
      List.concat_map (fun kid -> leaf_depths kid (d + 1)) kids)
  in
  let fanout_ok node is_root =
    let n =
      match node.contents with
      | Leaf entries -> List.length entries
      | Internal kids -> List.length kids
    in
    if is_root then n <= t.max_entries
    else n <= t.max_entries && n >= 1
  in
  let rec check_fanout node is_root =
    if not (fanout_ok node is_root) then ok := false;
    match node.contents with
    | Leaf _ -> ()
    | Internal kids -> List.iter (fun kid -> check_fanout kid false) kids
  in
  (match t.root with
  | None -> ()
  | Some root ->
    check_fanout root true;
    let depths = leaf_depths root 0 in
    (match depths with
    | [] -> ()
    | d0 :: rest -> if List.exists (fun d -> d <> d0) rest then ok := false));
  !ok
