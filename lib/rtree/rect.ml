module Vec = Indq_linalg.Vec

type t = { lo : Vec.t; hi : Vec.t }

let make ~lo ~hi =
  let d = Vec.dim lo in
  if d = 0 || Vec.dim hi <> d then invalid_arg "Rect.make: bad corners";
  for i = 0 to d - 1 do
    if Vec.get lo i > Vec.get hi i then invalid_arg "Rect.make: lo > hi"
  done;
  { lo = Vec.copy lo; hi = Vec.copy hi }

let of_point p = make ~lo:p ~hi:p

let dim r = Vec.dim r.lo

let lo r = Vec.copy r.lo

let hi r = Vec.copy r.hi

let intersects a b =
  let d = dim a in
  if dim b <> d then invalid_arg "Rect.intersects: dimension mismatch";
  let ok = ref true in
  for i = 0 to d - 1 do
    if Vec.get a.lo i > Vec.get b.hi i || Vec.get b.lo i > Vec.get a.hi i then
      ok := false
  done;
  !ok

let contains_point r p =
  let d = dim r in
  if Vec.dim p <> d then invalid_arg "Rect.contains_point: dimension mismatch";
  let ok = ref true in
  for i = 0 to d - 1 do
    if Vec.get p i < Vec.get r.lo i || Vec.get p i > Vec.get r.hi i then
      ok := false
  done;
  !ok

let contains_rect ~outer ~inner =
  let d = dim outer in
  if dim inner <> d then invalid_arg "Rect.contains_rect: dimension mismatch";
  let ok = ref true in
  for i = 0 to d - 1 do
    if
      Vec.get inner.lo i < Vec.get outer.lo i
      || Vec.get inner.hi i > Vec.get outer.hi i
    then ok := false
  done;
  !ok

let union a b =
  let d = dim a in
  if dim b <> d then invalid_arg "Rect.union: dimension mismatch";
  {
    lo = Vec.init d (fun i -> Float.min (Vec.get a.lo i) (Vec.get b.lo i));
    hi = Vec.init d (fun i -> Float.max (Vec.get a.hi i) (Vec.get b.hi i));
  }

let union_many = function
  | [] -> invalid_arg "Rect.union_many: empty list"
  | r :: rest -> List.fold_left union r rest

let area r =
  let acc = ref 1. in
  for i = 0 to dim r - 1 do
    acc := !acc *. (Vec.get r.hi i -. Vec.get r.lo i)
  done;
  !acc

let margin r =
  let acc = ref 0. in
  for i = 0 to dim r - 1 do
    acc := !acc +. (Vec.get r.hi i -. Vec.get r.lo i)
  done;
  !acc

let enlargement r extra = area (union r extra) -. area r

let above_corner p ~upper =
  let d = Vec.dim p in
  if Vec.dim upper <> d then invalid_arg "Rect.above_corner: dimension mismatch";
  let lo = Vec.init d (fun i -> Float.min (Vec.get p i) (Vec.get upper i)) in
  { lo; hi = Vec.copy upper }

let pp ppf r = Format.fprintf ppf "[%a .. %a]" Vec.pp r.lo Vec.pp r.hi
