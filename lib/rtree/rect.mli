(** Axis-aligned minimum bounding rectangles in R^d. *)

type t = private { lo : Indq_linalg.Vec.t; hi : Indq_linalg.Vec.t }

val make : lo:Indq_linalg.Vec.t -> hi:Indq_linalg.Vec.t -> t
(** Raises [Invalid_argument] when lengths differ or some [lo_i > hi_i]. *)

val of_point : Indq_linalg.Vec.t -> t
(** The degenerate rectangle containing exactly one point. *)

val dim : t -> int

val lo : t -> Indq_linalg.Vec.t
(** A copy of the lower corner. *)

val hi : t -> Indq_linalg.Vec.t
(** A copy of the upper corner. *)

val intersects : t -> t -> bool
(** Closed-interval overlap in every dimension. *)

val contains_point : t -> Indq_linalg.Vec.t -> bool

val contains_rect : outer:t -> inner:t -> bool

val union : t -> t -> t
(** Smallest rectangle covering both. *)

val union_many : t list -> t
(** Raises [Invalid_argument] on the empty list. *)

val area : t -> float
(** Product of side lengths (0 for degenerate rectangles). *)

val margin : t -> float
(** Sum of side lengths. *)

val enlargement : t -> t -> float
(** [enlargement r extra] is [area (union r extra) - area r]: the classic
    Guttman insertion cost. *)

val above_corner : Indq_linalg.Vec.t -> upper:Indq_linalg.Vec.t -> t
(** [above_corner p ~upper] is the box [[p, upper]] — the region of points
    with every coordinate at least [p]'s, used for dominance queries.
    Coordinates of [p] above [upper] are clamped so the box is valid (such a
    box contains only points that would dominate [p] in the clamped space;
    with data normalized into the unit box this never triggers). *)

val pp : Format.formatter -> t -> unit
