(** A packed, static STR-tree over the rows of a flat columnar buffer.

    Where {!Rtree} keeps pointer-linked nodes (right for incremental
    insertion at moderate sizes), this index is built once, bottom-up, from
    a {!Indq_linalg.Vec.t} holding [n] rows of [dim] coordinates — the
    buffer a columnar store exposes.  Its entire structure is a row
    permutation (one int array) plus two flat Float64 bound buffers per
    level with implicit [fanout]-ary child addressing, so a 10^7-point tree
    is a handful of allocations and never touches a per-node heap object.

    Queries report into the same observability stream as {!Rtree}: every
    node test increments [rtree.nodes_visited]; building increments
    [rtree.bulk_nodes] per node and observes leaf occupancy in the
    [rtree.leaf_fill] histogram. *)

type t

val build : ?leaf_cap:int -> ?fanout:int -> dim:int -> Indq_linalg.Vec.t -> int -> t
(** [build ~dim data n] indexes rows [0 .. n-1] of the row-major flat
    buffer [data] (which must hold at least [n * dim] coordinates; the
    tree aliases it — no copy).  Sort-tile-recursive: the row permutation
    is tiled axis by axis into leaves of at most [leaf_cap] (default 32)
    rows, then each level packs [fanout] (default 8) consecutive nodes
    under one parent until a single root remains.  Deterministic: slab
    counts use exact integer arithmetic, never libm [pow]. *)

val dim : t -> int

val size : t -> int
(** Number of indexed rows. *)

val depth : t -> int
(** Number of levels (0 when empty, 1 when a single leaf is the root). *)

val leaf_count : t -> int

val exists_in_box :
  t -> lo:Indq_linalg.Vec.t -> hi:Indq_linalg.Vec.t -> f:(int -> bool) -> bool
(** [exists_in_box t ~lo ~hi ~f] — true as soon as [f pos] accepts some row
    position whose point lies in the closed box [[lo, hi]].  Early exit;
    the workhorse of columnar dominance tests. *)

val fold_in_box :
  t ->
  lo:Indq_linalg.Vec.t ->
  hi:Indq_linalg.Vec.t ->
  init:'a ->
  f:('a -> int -> 'a) ->
  'a
(** Fold [f] over every row position inside the box, in traversal order. *)

val collect_in_box :
  t -> lo:Indq_linalg.Vec.t -> hi:Indq_linalg.Vec.t -> int list
(** All row positions inside the box, in traversal order (tests compare
    this against a brute-force scan). *)

val check_invariants : t -> bool
(** Structural sanity: the permutation is a bijection on rows, every box
    contains its children (points at leaves, boxes above), the top level is
    a single root.  For tests. *)
