(** A Guttman R-tree with quadratic split.

    The paper prunes candidate tuples "in O(n) time using an R-tree"
    (Section V-A); we use the index for dominance-style queries: "is there a
    point whose coordinates all exceed this corner?" maps to a rectangle
    search with early exit ({!exists_overlapping}). *)

type 'a t
(** A mutable R-tree storing payloads of type ['a] under bounding
    rectangles. *)

val create : ?max_entries:int -> dim:int -> unit -> 'a t
(** [create ~dim ()] is an empty tree for [dim]-dimensional rectangles.
    [max_entries] (default 8, minimum 4) bounds node fanout; the minimum
    fill is [max_entries / 2]. *)

val dim : 'a t -> int

val size : 'a t -> int
(** Number of stored entries. *)

val insert : 'a t -> Rect.t -> 'a -> unit

val insert_point : 'a t -> Indq_linalg.Vec.t -> 'a -> unit
(** [insert tree (Rect.of_point p) v]. *)

val of_points : ?max_entries:int -> dim:int -> (Indq_linalg.Vec.t * 'a) list -> 'a t

val bulk_load : ?max_entries:int -> dim:int -> (Rect.t * 'a) list -> 'a t
(** One-pass STR (sort-tile-recursive) construction: entries are sorted by
    MBR center and tiled axis by axis into full leaves, then upper levels
    are packed the same way until a single root remains.  The result
    answers every query identically to an insert-built tree over the same
    entries (set semantics; visit counts differ) and satisfies
    {!check_invariants}.  Increments the [rtree.bulk_nodes] counter per
    node built and observes each leaf's occupancy in the
    [rtree.leaf_fill] histogram. *)

val bulk_load_points :
  ?max_entries:int -> dim:int -> (Indq_linalg.Vec.t * 'a) list -> 'a t
(** {!bulk_load} over degenerate point rectangles. *)

val search : 'a t -> Rect.t -> 'a list
(** All payloads whose rectangle intersects the query (closed intervals). *)

val fold_overlapping : 'a t -> Rect.t -> init:'b -> f:('b -> Rect.t -> 'a -> 'b) -> 'b

val exists_overlapping : 'a t -> Rect.t -> f:(Rect.t -> 'a -> bool) -> bool
(** Early-exit search: true as soon as [f] accepts one overlapping entry. *)

val iter : 'a t -> (Rect.t -> 'a -> unit) -> unit

val depth : 'a t -> int
(** Height of the tree (0 when empty); exposed for tests. *)

val check_invariants : 'a t -> bool
(** Structural sanity: every node's MBR covers its children, fanout within
    bounds (root excepted), all leaves at equal depth.  For tests. *)
