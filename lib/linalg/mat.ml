(* One flat Float64 buffer, row-major: row i occupies cells
   [i*cols, (i+1)*cols).  [row_view] is [Vec.sub_view] over that range —
   the LP pivot kernels mutate rows through such views, touching one
   contiguous cache line stream per row operation. *)

type t = { nrows : int; ncols : int; data : Vec.t }

let create nrows ncols =
  if nrows <= 0 || ncols <= 0 then invalid_arg "Mat.create: non-positive size";
  { nrows; ncols; data = Vec.make (nrows * ncols) 0. }

let rows m = m.nrows

let cols m = m.ncols

let row_view m i =
  if i < 0 || i >= m.nrows then invalid_arg "Mat.row_view: row out of range";
  Vec.sub_view m.data ~pos:(i * m.ncols) ~len:m.ncols

let of_rows rs =
  if Array.length rs = 0 then invalid_arg "Mat.of_rows: no rows";
  let width = Vec.dim rs.(0) in
  Array.iter
    (fun r -> if Vec.dim r <> width then invalid_arg "Mat.of_rows: ragged rows")
    rs;
  let m = create (Array.length rs) width in
  Array.iteri (fun i r -> Vec.blit ~src:r ~dst:(row_view m i)) rs;
  m

let get m i j =
  if j < 0 || j >= m.ncols then invalid_arg "Mat.get: column out of range";
  Vec.get m.data ((i * m.ncols) + j)
[@@inline]
[@@indq.alloc_free
  "bounds-checked flat read: a column guard over the annotated Vec.get"]

let set m i j x =
  if j < 0 || j >= m.ncols then invalid_arg "Mat.set: column out of range";
  Vec.set m.data ((i * m.ncols) + j) x
[@@inline]
[@@indq.alloc_free
  "bounds-checked flat write: a column guard over the annotated Vec.set"]

let row m i = Vec.copy (row_view m i)

let col m j = Vec.init m.nrows (fun i -> get m i j)

let mul_vec m v =
  if Vec.dim v <> m.ncols then invalid_arg "Mat.mul_vec: dimension mismatch";
  Vec.init m.nrows (fun i -> Vec.dot (row_view m i) v)

let transpose m =
  let t = create m.ncols m.nrows in
  for i = 0 to m.nrows - 1 do
    for j = 0 to m.ncols - 1 do
      set t j i (get m i j)
    done
  done;
  t

let copy m = { m with data = Vec.copy m.data }

let swap_rows m i j =
  if i <> j then begin
    let ri = row_view m i and rj = row_view m j in
    let tmp = Vec.copy ri in
    Vec.blit ~src:rj ~dst:ri;
    Vec.blit ~src:tmp ~dst:rj
  end

let scale_row m i c = Vec.scale_ip c (row_view m i)

let add_scaled_row m ~src ~dst c =
  Vec.axpy_ip c (row_view m src) (row_view m dst)

let pp ppf m =
  for i = 0 to m.nrows - 1 do
    Format.fprintf ppf "[";
    Vec.iteri
      (fun j x ->
        if j > 0 then Format.fprintf ppf " ";
        Format.fprintf ppf "%8.4f" x)
      (row_view m i);
    Format.fprintf ppf "]@."
  done
