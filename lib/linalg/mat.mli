(** Dense row-major matrices over one flat [Bigarray] buffer, sized for the
    small LP tableaux used by the utility-region geometry (at most a few
    dozen rows/columns).  Rows are contiguous, so {!row_view} exposes a row
    as a zero-copy mutable {!Vec.t} — the simplex pivot kernels
    ([Vec.scale_ip], [Vec.axpy_ip]) then stream cache-contiguous memory. *)

type t
(** A mutable [rows x cols] matrix of floats. *)

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val of_rows : Vec.t array -> t
(** Build from row vectors (copied).  All rows must have equal length and
    there must be at least one row. *)

val rows : t -> int

val cols : t -> int

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val row : t -> int -> Vec.t
(** A copy of row [i]. *)

val row_view : t -> int -> Vec.t
(** A mutable zero-copy view of row [i]: writes through the view hit the
    matrix.  O(1). *)

val col : t -> int -> Vec.t
(** A copy of column [j]. *)

val mul_vec : t -> Vec.t -> Vec.t
(** Matrix-vector product.  The vector length must equal [cols]. *)

val transpose : t -> t

val copy : t -> t

val swap_rows : t -> int -> int -> unit

val scale_row : t -> int -> float -> unit
(** [scale_row m i c] multiplies row [i] by [c] in place. *)

val add_scaled_row : t -> src:int -> dst:int -> float -> unit
(** [add_scaled_row m ~src ~dst c] does [row dst += c * row src] in place. *)

val pp : Format.formatter -> t -> unit
