(* Flat Bigarray backing: one contiguous Float64 buffer per vector, C
   layout.  IEEE double arithmetic on Bigarray cells is the same operation
   as on [float array] cells, so every kernel below computes bit-identical
   results to the historical array code as long as the traversal order
   (left to right) is preserved — which it is, in every loop.

   [Array1.unsafe_get]/[unsafe_set] are confined to this library by lint
   rule IND009: each kernel validates dimensions once up front, after
   which in-range indexing is structural. *)

open Bigarray

type t = (float, float64_elt, c_layout) Array1.t

type buffer = (float, float64_elt, c_layout) Array1.t

let of_buffer (b : buffer) : t = b

let buffer (v : t) : buffer = v

let dim = Array1.dim [@@indq.alloc_free "alias of the %caml_ba_dim_1 primitive"]

let create d =
  if d < 0 then invalid_arg "Vec.create: negative dimension";
  Array1.create Float64 c_layout d

let make d x =
  let v = create d in
  Array1.fill v x;
  v

let init d f =
  let v = create d in
  for i = 0 to d - 1 do
    Array1.unsafe_set v i (f i)
  done;
  v

let basis d i =
  if i < 0 || i >= d then invalid_arg "Vec.basis: index out of range";
  init d (fun j -> if j = i then 1. else 0.)

let of_array a = init (Array.length a) (Array.unsafe_get a)

let of_list l = of_array (Array.of_list l)

let to_array v = Array.init (dim v) (Array1.unsafe_get v)

let to_list v = Array.to_list (to_array v)

let copy v =
  let w = create (dim v) in
  Array1.blit v w;
  w

let get (v : t) i = Array1.get v i
[@@inline] [@@indq.alloc_free "bounds-checked Bigarray read primitive"]

let set (v : t) i x = Array1.set v i x
[@@inline] [@@indq.alloc_free "bounds-checked Bigarray write primitive"]

let fill (v : t) x = Array1.fill v x

let check_same_dim name a b =
  if dim a <> dim b then
    (invalid_arg (name ^ ": dimension mismatch")
    [@indq.alloc_ok "cold caller-bug path: the message concat and raise \
                     run only on a precondition violation"])
[@@indq.alloc_free "dimension guard shared by every kernel"]

let blit ~src ~dst =
  check_same_dim "Vec.blit" src dst;
  Array1.blit src dst

let sub_view v ~pos ~len = Array1.sub v pos len

let dot a b =
  check_same_dim "Vec.dot" a b;
  let acc = ref 0. in
  for i = 0 to dim a - 1 do
    acc := !acc +. (Array1.unsafe_get a i *. Array1.unsafe_get b i)
  done;
  !acc
[@@indq.alloc_free "hot kernel: local float accumulator is unboxed"]

let dot_slice flat ~pos u =
  let k = dim u in
  if pos < 0 || pos + k > dim flat then
    invalid_arg "Vec.dot_slice: slice out of range";
  let acc = ref 0. in
  for i = 0 to k - 1 do
    acc := !acc +. (Array1.unsafe_get flat (pos + i) *. Array1.unsafe_get u i)
  done;
  !acc
[@@indq.alloc_free "hot kernel of the flat prune sweep and anchor top-k"]

let add a b =
  check_same_dim "Vec.add" a b;
  init (dim a) (fun i -> Array1.unsafe_get a i +. Array1.unsafe_get b i)

let sub a b =
  check_same_dim "Vec.sub" a b;
  init (dim a) (fun i -> Array1.unsafe_get a i -. Array1.unsafe_get b i)

let scale c a = init (dim a) (fun i -> c *. Array1.unsafe_get a i)

let neg a = init (dim a) (fun i -> -.Array1.unsafe_get a i)

let axpy c x y =
  check_same_dim "Vec.axpy" x y;
  init (dim x) (fun i -> (c *. Array1.unsafe_get x i) +. Array1.unsafe_get y i)

let add_ip y x =
  check_same_dim "Vec.add_ip" y x;
  for i = 0 to dim y - 1 do
    Array1.unsafe_set y i (Array1.unsafe_get y i +. Array1.unsafe_get x i)
  done
[@@indq.alloc_free "in-place pivot-row update kernel"]

let axpy_ip c x y =
  check_same_dim "Vec.axpy_ip" x y;
  for i = 0 to dim x - 1 do
    Array1.unsafe_set y i
      ((c *. Array1.unsafe_get x i) +. Array1.unsafe_get y i)
  done
[@@indq.alloc_free "in-place row elimination kernel of Lp.Live pivots"]

let scale_ip c y =
  for i = 0 to dim y - 1 do
    Array1.unsafe_set y i (c *. Array1.unsafe_get y i)
  done
[@@indq.alloc_free "in-place row scaling kernel of Lp.Live pivots"]

let norm2 a = sqrt (dot a a)

let fold_left f acc a =
  let acc = ref acc in
  for i = 0 to dim a - 1 do
    acc := f !acc (Array1.unsafe_get a i)
  done;
  !acc

let norm_inf a = fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. a

let dist2 a b = norm2 (sub a b)

let normalize a =
  let n = norm2 a in
  if n < 1e-12 then invalid_arg "Vec.normalize: zero vector";
  scale (1. /. n) a

let sum a = fold_left ( +. ) 0. a

let max_coord a =
  if dim a = 0 then invalid_arg "Vec.max_coord: empty vector";
  fold_left Float.max (Array1.unsafe_get a 0) a

let min_coord a =
  if dim a = 0 then invalid_arg "Vec.min_coord: empty vector";
  fold_left Float.min (Array1.unsafe_get a 0) a

let argmax a =
  if dim a = 0 then invalid_arg "Vec.argmax: empty vector";
  let best = ref 0 in
  for i = 1 to dim a - 1 do
    if Array1.unsafe_get a i > Array1.unsafe_get a !best then best := i
  done;
  !best

let map f a = init (dim a) (fun i -> f (Array1.unsafe_get a i))

let mapi f a = init (dim a) (fun i -> f i (Array1.unsafe_get a i))

let iter f a =
  for i = 0 to dim a - 1 do
    f (Array1.unsafe_get a i)
  done

let iteri f a =
  for i = 0 to dim a - 1 do
    f i (Array1.unsafe_get a i)
  done

let for_all f a =
  let ok = ref true in
  (try
     for i = 0 to dim a - 1 do
       if not (f (Array1.unsafe_get a i)) then begin
         ok := false;
         raise Exit
       end
     done
   with Exit -> ());
  !ok

let exists f a = not (for_all (fun x -> not (f x)) a)

let equal a b =
  dim a = dim b
  &&
  let ok = ref true in
  for i = 0 to dim a - 1 do
    if not (Float.equal (Array1.unsafe_get a i) (Array1.unsafe_get b i)) then
      ok := false
  done;
  !ok

let approx_equal ?tol a b =
  dim a = dim b
  && begin
       let ok = ref true in
       for i = 0 to dim a - 1 do
         if
           not
             (Indq_util.Floatx.approx_equal ?tol (Array1.unsafe_get a i)
                (Array1.unsafe_get b i))
         then ok := false
       done;
       !ok
     end

let pp ppf a =
  Format.fprintf ppf "(";
  iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%.4f" x)
    a;
  Format.fprintf ppf ")"

let to_string a = Format.asprintf "%a" pp a
