type t = float array

let dim = Array.length

let make d x = Array.make d x

let basis d i =
  if i < 0 || i >= d then invalid_arg "Vec.basis: index out of range";
  Array.init d (fun j -> if j = i then 1. else 0.)

let copy = Array.copy

let check_same_dim name a b =
  if Array.length a <> Array.length b then
    invalid_arg (name ^ ": dimension mismatch")

let dot a b =
  check_same_dim "Vec.dot" a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let add a b =
  check_same_dim "Vec.add" a b;
  Array.init (Array.length a) (fun i -> a.(i) +. b.(i))

let sub a b =
  check_same_dim "Vec.sub" a b;
  Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let scale c a = Array.map (fun x -> c *. x) a

let axpy c x y =
  check_same_dim "Vec.axpy" x y;
  Array.init (Array.length x) (fun i -> (c *. x.(i)) +. y.(i))

let add_ip y x =
  check_same_dim "Vec.add_ip" y x;
  for i = 0 to Array.length y - 1 do
    y.(i) <- y.(i) +. x.(i)
  done

let axpy_ip c x y =
  check_same_dim "Vec.axpy_ip" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (c *. x.(i)) +. y.(i)
  done

let scale_ip c y =
  for i = 0 to Array.length y - 1 do
    y.(i) <- c *. y.(i)
  done

let norm2 a = sqrt (dot a a)

let norm_inf a = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. a

let dist2 a b = norm2 (sub a b)

let normalize a =
  let n = norm2 a in
  if n < 1e-12 then invalid_arg "Vec.normalize: zero vector";
  scale (1. /. n) a

let sum a = Array.fold_left ( +. ) 0. a

let max_coord a =
  if Array.length a = 0 then invalid_arg "Vec.max_coord: empty vector";
  Array.fold_left Float.max a.(0) a

let min_coord a =
  if Array.length a = 0 then invalid_arg "Vec.min_coord: empty vector";
  Array.fold_left Float.min a.(0) a

let argmax a =
  if Array.length a = 0 then invalid_arg "Vec.argmax: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best

let approx_equal ?tol a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       for i = 0 to Array.length a - 1 do
         if not (Indq_util.Floatx.approx_equal ?tol a.(i) b.(i)) then ok := false
       done;
       !ok
     end

let pp ppf a =
  Format.fprintf ppf "(";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%.4f" x)
    a;
  Format.fprintf ppf ")"

let to_string a = Format.asprintf "%a" pp a
