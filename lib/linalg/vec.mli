(** Dense float vectors over a flat [Bigarray] (Float64, C layout).

    Tuples, utility vectors, halfspace normals and LP rows all hold one of
    these.  The representation is abstract: construct with {!make},
    {!init}, {!basis} or {!of_array}, read with {!get} / {!to_array}.
    Functions that combine two vectors require equal lengths and raise
    [Invalid_argument] otherwise.

    The kernels ([dot], [axpy_ip], [scale_ip], ...) run bounds-check-free
    over the flat buffer after a single dimension check; coordinate
    traversal order is left-to-right, so every reduction computes the same
    float expression as the historical [float array] code. *)

type t

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The concrete backing type, exposed for the storage tier: a columnar
    store maps a file region as a flat [Array1] and wraps it without a
    copy. *)

val of_buffer : buffer -> t
(** Zero-copy adoption of an existing flat Float64 buffer (e.g. an
    [Unix.map_file] region).  The vector aliases the buffer: writes through
    either are visible in both. *)

val buffer : t -> buffer
(** The backing buffer, zero-copy (the inverse of {!of_buffer}).  Exists
    for the [@indq.alloc_free] kernels outside this library: a
    cross-module [get] call is never inlined under the dev profile
    (dune compiles with [-opaque]) and so boxes its float return, while
    the checked [Bigarray.Array1] primitives compile to plain loads in
    every profile.  Reading through the buffer keeps the exact same
    bounds checks and IEEE semantics as {!get}. *)

val dim : t -> int
(** Number of coordinates. *)

val make : int -> float -> t
(** [make d x] is the d-vector with every coordinate [x]. *)

val init : int -> (int -> float) -> t
(** [init d f] is the vector [f 0; f 1; ...; f (d-1)]. *)

val basis : int -> int -> t
(** [basis d i] is the i-th standard basis vector of R^d (0-indexed). *)

val of_array : float array -> t
(** Copy of a plain float array. *)

val of_list : float list -> t

val to_array : t -> float array
(** Fresh plain-array copy of the coordinates. *)

val to_list : t -> float list

val copy : t -> t

val get : t -> int -> float
(** Bounds-checked coordinate read. *)

val set : t -> int -> float -> unit
(** Bounds-checked coordinate write. *)

val fill : t -> float -> unit
(** Set every coordinate. *)

val blit : src:t -> dst:t -> unit
(** Copy [src] over [dst] (equal dimensions). *)

val sub_view : t -> pos:int -> len:int -> t
(** [sub_view v ~pos ~len] is a mutable {i view} of coordinates
    [pos .. pos+len-1]: writes through the view are visible in [v].
    Used for flat-matrix row views; O(1), no copy. *)

val dot : t -> t -> float
(** Inner product. *)

val dot_slice : t -> pos:int -> t -> float
(** [dot_slice flat ~pos u] is the inner product of [u] with the slice
    [flat[pos .. pos + dim u - 1]] — {!dot} against {!sub_view} without
    materializing the view.  Coordinate order is left-to-right, so the
    result is bit-identical to [dot (sub_view flat ~pos ~len:(dim u)) u].
    The row-major columnar store uses this for zero-allocation utility
    scans.  Raises [Invalid_argument] when the slice escapes [flat]. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val neg : t -> t
(** Coordinate-wise negation (fresh vector). *)

val axpy : float -> t -> t -> t
(** [axpy a x y] is [a*x + y] (fresh vector). *)

(* In-place variants for hot loops (the simplex row operations run millions
   of these per solve); each coordinate computes exactly the same float
   expression as its allocating counterpart, so switching is bit-neutral. *)

val add_ip : t -> t -> unit
(** [add_ip y x] sets [y.(i) <- y.(i) +. x.(i)] for every coordinate. *)

val axpy_ip : float -> t -> t -> unit
(** [axpy_ip a x y] sets [y.(i) <- a *. x.(i) +. y.(i)] — [axpy] without the
    allocation. *)

val scale_ip : float -> t -> unit
(** [scale_ip c y] sets [y.(i) <- c *. y.(i)]. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Max absolute coordinate. *)

val dist2 : t -> t -> float
(** Euclidean distance. *)

val normalize : t -> t
(** Scale to unit Euclidean norm.  Raises [Invalid_argument] on the zero
    vector. *)

val sum : t -> float

val max_coord : t -> float
(** Largest coordinate value.  Raises [Invalid_argument] on empty input. *)

val min_coord : t -> float

val argmax : t -> int
(** Index of the largest coordinate (first on ties). *)

val map : (float -> float) -> t -> t

val mapi : (int -> float -> float) -> t -> t

val iter : (float -> unit) -> t -> unit

val iteri : (int -> float -> unit) -> t -> unit

val fold_left : ('a -> float -> 'a) -> 'a -> t -> 'a

val for_all : (float -> bool) -> t -> bool

val exists : (float -> bool) -> t -> bool

val equal : t -> t -> bool
(** Exact (bitwise, via [Float.equal]) coordinate-wise equality. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Coordinate-wise comparison with tolerance. *)

val pp : Format.formatter -> t -> unit
(** Renders as [(x1, x2, ...)] with 4 decimals. *)

val to_string : t -> string
