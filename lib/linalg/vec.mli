(** Dense float vectors.

    Tuples, utility vectors and LP rows are all plain [float array]s; this
    module collects the operations used throughout the codebase.  Functions
    that combine two vectors require equal lengths and raise
    [Invalid_argument] otherwise. *)

type t = float array

val dim : t -> int
(** Number of coordinates. *)

val make : int -> float -> t
(** [make d x] is the d-vector with every coordinate [x]. *)

val basis : int -> int -> t
(** [basis d i] is the i-th standard basis vector of R^d (0-indexed). *)

val copy : t -> t

val dot : t -> t -> float
(** Inner product. *)

val add : t -> t -> t

val sub : t -> t -> t

val scale : float -> t -> t

val axpy : float -> t -> t -> t
(** [axpy a x y] is [a*x + y] (fresh vector). *)

(* In-place variants for hot loops (the simplex row operations run millions
   of these per solve); each coordinate computes exactly the same float
   expression as its allocating counterpart, so switching is bit-neutral. *)

val add_ip : t -> t -> unit
(** [add_ip y x] sets [y.(i) <- y.(i) +. x.(i)] for every coordinate. *)

val axpy_ip : float -> t -> t -> unit
(** [axpy_ip a x y] sets [y.(i) <- a *. x.(i) +. y.(i)] — [axpy] without the
    allocation. *)

val scale_ip : float -> t -> unit
(** [scale_ip c y] sets [y.(i) <- c *. y.(i)]. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Max absolute coordinate. *)

val dist2 : t -> t -> float
(** Euclidean distance. *)

val normalize : t -> t
(** Scale to unit Euclidean norm.  Raises [Invalid_argument] on the zero
    vector. *)

val sum : t -> float

val max_coord : t -> float
(** Largest coordinate value.  Raises [Invalid_argument] on empty input. *)

val min_coord : t -> float

val argmax : t -> int
(** Index of the largest coordinate (first on ties). *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Coordinate-wise comparison with tolerance. *)

val pp : Format.formatter -> t -> unit
(** Renders as [(x1, x2, ...)] with 4 decimals. *)

val to_string : t -> string
