(** A fixed-size domain pool with a deterministic, chunked [parallel_map].

    The pool exists so the experiment harness (and every future sharding /
    batching layer) can fan independent tasks across OCaml 5 domains while
    keeping results {b bit-identical to the sequential run}:

    - the task decomposition (chunk boundaries) is computed up-front from
      the input length and chunk count alone, never from scheduling;
    - per-task RNG streams ({!parallel_map_seeded}) are split from the
      caller's generator sequentially, in index order, before anything
      runs;
    - results land in an array slot per input index;
    - each chunk's observability delta ({!Indq_obs.Obs}: counter and span
      increments, captured on whichever worker domain ran it) merges into
      the calling domain {i in chunk-index order} on join, so counter
      totals equal the sequential ones exactly (counters hold exactly
      representable integer sums).

    A pool of size 1 spawns no domains: every [parallel_map] runs inline on
    the caller, byte-for-byte today's sequential behavior.  Trace sinks are
    domain-local and {b not} inherited by workers — a task that must trace
    installs its own sink (e.g. via [Algo.run ?trace]).

    {b Fault resilience.}  The caller's {!Indq_fault.Fault} plan (if any) is
    re-installed on the worker for each chunk attempt, so injection sites
    inside tasks fire deterministically regardless of scheduling.  A
    simulated worker death ([inject.worker_death], keyed by chunk index) is
    caught and the whole chunk retried — same inputs, same pre-split RNGs —
    up to 3 attempts, keeping output and merged counters bit-identical to
    the fault-free run (only the successful attempt's observability delta is
    kept; [fault.injected] / [retry.attempts] / [retry.exhausted] accounting
    happens on the caller in chunk order).  A chunk whose retries are
    exhausted re-raises the typed [Fault.Injected] like any task exception.
    Real task exceptions are never retried.  The inline (size-1) path runs
    no injection or retry machinery.

    Pools are not reentrant from their own workers: submit from the domain
    that created the pool (nested submission would deadlock a fully busy
    pool). *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains] worker domains ([domains >= 1];
    size 1 spawns none and runs everything inline).  Workers idle on a
    condition variable between calls. *)

val size : t -> int
(** The configured domain count. *)

val shutdown : t -> unit
(** Stop and join every worker.  Idempotent.  Outstanding work finishes
    first; the pool must not be used afterwards. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] brackets [f] with {!create}/{!shutdown}
    (shutdown runs even when [f] raises). *)

val parallel_map : ?chunks:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f arr] is [Array.map f arr] computed by the pool's
    workers in [chunks] contiguous chunks (default: 4 per worker, capped at
    the array length).  Results are in input order.  If any [f] raises, the
    first failing chunk's exception is re-raised on the caller (with its
    backtrace) after all chunks finish and observability deltas merge.
    Counter/span work from every chunk is folded into the calling domain in
    chunk order — see {!Indq_obs.Obs}. *)

val parallel_map_seeded :
  ?chunks:int ->
  t ->
  rng:Indq_util.Rng.t ->
  (Indq_util.Rng.t -> 'a -> 'b) ->
  'a array ->
  'b array
(** [parallel_map_seeded pool ~rng f arr] gives each task its own RNG,
    split from [rng] sequentially in index order {i before} any task runs:
    task [i] receives a stream that depends only on [rng]'s state and [i],
    so outputs are identical for every pool size and schedule.  [rng]
    advances by exactly [Array.length arr] splits. *)
