module Counter = Indq_obs.Counter
module Fault = Indq_fault.Fault
module Obs = Indq_obs.Obs
module Rng = Indq_util.Rng

(* Injection/retry accounting is done on the *calling* domain after the
   join, in chunk order (worker-domain counter bumps between attempt
   snapshots would be lost with the failed attempt's delta). *)
let c_fault_injected = Counter.make "fault.injected"
let c_retry_attempts = Counter.make "retry.attempts"
let c_retry_exhausted = Counter.make "retry.exhausted"

(* A simulated worker death ([inject.worker_death]) is retried this many
   times in total; a chunk armed [Always] exhausts them and the typed
   [Fault.Injected] propagates like any task exception. *)
let max_chunk_attempts = 3

type job = unit -> unit

type t = {
  size : int;
  queue : job Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

let size pool = pool.size

(* Workers block on the queue until shutdown.  Jobs never escape an
   exception: [parallel_map] wraps each chunk so failures travel back to
   the submitting domain. *)
let rec worker_loop pool =
  Mutex.lock pool.lock;
  let rec next () =
    match Queue.take_opt pool.queue with
    | Some job ->
      Mutex.unlock pool.lock;
      job ();
      worker_loop pool
    | None ->
      if pool.stopping then Mutex.unlock pool.lock
      else begin
        Condition.wait pool.work_available pool.lock;
        next ()
      end
  in
  next ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let pool =
    {
      size = domains;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      stopping = false;
      workers = [||];
    }
  in
  if domains > 1 then
    pool.workers <-
      Array.init domains (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown pool =
  if Array.length pool.workers > 0 then begin
    Mutex.lock pool.lock;
    pool.stopping <- true;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Enough chunks that an uneven workload still balances, few enough that
   per-chunk bookkeeping stays invisible. *)
let chunks_per_worker = 4

let parallel_map ?chunks pool f arr =
  let n = Array.length arr in
  (match chunks with
  | Some c when c < 1 -> invalid_arg "Pool.parallel_map: chunks must be >= 1"
  | _ -> ());
  if Array.length pool.workers = 0 || n <= 1 then Array.map f arr
  else begin
    (* The decomposition is fixed up-front from (n, chunk count) alone —
       never from scheduling — so a run is reproducible for any -j. *)
    let chunks =
      match chunks with
      | Some c -> min c n
      | None -> min n (pool.size * chunks_per_worker)
    in
    let results = Array.make n None in
    let deltas = Array.make chunks None in
    let failures = Array.make chunks None in
    let deaths = Array.make chunks 0 in
    let exhausted = Array.make chunks false in
    (* Workers get the caller's fault plan re-installed per chunk attempt
       (fresh reach counts each time), so whether an *inner* site fires
       inside [f] depends only on the plan and the chunk's own work — never
       on which worker ran it or what ran before. *)
    let plan = Fault.current () in
    let finish_lock = Mutex.create () in
    let finished = Condition.create () in
    let remaining = ref chunks in
    let job ci () =
      let lo = ci * n / chunks and hi = (ci + 1) * n / chunks in
      (* Each attempt re-runs the whole chunk on the same inputs (and, via
         [parallel_map_seeded], the same pre-split per-task RNGs), so a
         retried chunk rewrites every slot with identical values: output
         stays bit-identical to the fault-free run.  Only the successful
         attempt's observability delta is kept — a half-done attempt's
         counters would make totals depend on where the fault struck. *)
      let rec attempt k =
        let before = Obs.snapshot () in
        match
          Fault.with_plan_opt plan (fun () ->
              if Fault.scheduled "inject.worker_death" ~index:ci ~attempt:k
              then begin
                deaths.(ci) <- deaths.(ci) + 1;
                raise (Fault.Injected "inject.worker_death")
              end;
              for i = lo to hi - 1 do
                results.(i) <- Some (f arr.(i))
              done)
        with
        | () -> deltas.(ci) <- Some (Obs.diff (Obs.snapshot ()) before)
        | exception Fault.Injected _ when k + 1 < max_chunk_attempts ->
          attempt (k + 1)
        | exception e ->
          (match e with
          | Fault.Injected _ -> exhausted.(ci) <- true
          | _ -> ());
          failures.(ci) <- Some (e, Printexc.get_raw_backtrace ());
          deltas.(ci) <- Some (Obs.diff (Obs.snapshot ()) before)
      in
      attempt 0;
      Mutex.lock finish_lock;
      decr remaining;
      if !remaining = 0 then Condition.signal finished;
      Mutex.unlock finish_lock
    in
    Mutex.lock pool.lock;
    for ci = 0 to chunks - 1 do
      Queue.add (job ci) pool.queue
    done;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.lock;
    Mutex.lock finish_lock;
    while !remaining > 0 do
      Condition.wait finished finish_lock
    done;
    Mutex.unlock finish_lock;
    (* Deterministic join: every chunk's counter/span delta folds into the
       caller's domain in chunk-index order, regardless of which worker ran
       what, so merged totals are bit-identical to a sequential run (all
       counters hold exactly representable integer sums). *)
    Array.iter (function Some d -> Obs.merge d | None -> ()) deltas;
    (* Fault/retry accounting, on the caller, in chunk order: every
       simulated death counts as an injection; each death that was retried
       (all but the one that exhausted the attempts) counts as a retry. *)
    Array.iteri
      (fun ci d ->
        if d > 0 then begin
          Counter.add c_fault_injected (float_of_int d);
          let retries = if exhausted.(ci) then d - 1 else d in
          Counter.add c_retry_attempts (float_of_int retries);
          if exhausted.(ci) then Counter.incr c_retry_exhausted
        end)
      deaths;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures;
    Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_map_seeded ?chunks pool ~rng f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    (* Seeds are drawn sequentially from [rng] before anything runs, in
       index order: task i's stream depends only on (rng, i). *)
    let tasks = Array.make n (Rng.split rng, arr.(0)) in
    for i = 1 to n - 1 do
      tasks.(i) <- (Rng.split rng, arr.(i))
    done;
    parallel_map ?chunks pool (fun (task_rng, x) -> f task_rng x) tasks
  end
