module Obs = Indq_obs.Obs
module Rng = Indq_util.Rng

type job = unit -> unit

type t = {
  size : int;
  queue : job Queue.t;
  lock : Mutex.t;
  work_available : Condition.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t array;
}

let size pool = pool.size

(* Workers block on the queue until shutdown.  Jobs never escape an
   exception: [parallel_map] wraps each chunk so failures travel back to
   the submitting domain. *)
let rec worker_loop pool =
  Mutex.lock pool.lock;
  let rec next () =
    match Queue.take_opt pool.queue with
    | Some job ->
      Mutex.unlock pool.lock;
      job ();
      worker_loop pool
    | None ->
      if pool.stopping then Mutex.unlock pool.lock
      else begin
        Condition.wait pool.work_available pool.lock;
        next ()
      end
  in
  next ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let pool =
    {
      size = domains;
      queue = Queue.create ();
      lock = Mutex.create ();
      work_available = Condition.create ();
      stopping = false;
      workers = [||];
    }
  in
  if domains > 1 then
    pool.workers <-
      Array.init domains (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown pool =
  if Array.length pool.workers > 0 then begin
    Mutex.lock pool.lock;
    pool.stopping <- true;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Enough chunks that an uneven workload still balances, few enough that
   per-chunk bookkeeping stays invisible. *)
let chunks_per_worker = 4

let parallel_map ?chunks pool f arr =
  let n = Array.length arr in
  (match chunks with
  | Some c when c < 1 -> invalid_arg "Pool.parallel_map: chunks must be >= 1"
  | _ -> ());
  if Array.length pool.workers = 0 || n <= 1 then Array.map f arr
  else begin
    (* The decomposition is fixed up-front from (n, chunk count) alone —
       never from scheduling — so a run is reproducible for any -j. *)
    let chunks =
      match chunks with
      | Some c -> min c n
      | None -> min n (pool.size * chunks_per_worker)
    in
    let results = Array.make n None in
    let deltas = Array.make chunks None in
    let failures = Array.make chunks None in
    let finish_lock = Mutex.create () in
    let finished = Condition.create () in
    let remaining = ref chunks in
    let job ci () =
      let lo = ci * n / chunks and hi = (ci + 1) * n / chunks in
      let before = Obs.snapshot () in
      (try
         for i = lo to hi - 1 do
           results.(i) <- Some (f arr.(i))
         done
       with e -> failures.(ci) <- Some (e, Printexc.get_raw_backtrace ()));
      deltas.(ci) <- Some (Obs.diff (Obs.snapshot ()) before);
      Mutex.lock finish_lock;
      decr remaining;
      if !remaining = 0 then Condition.signal finished;
      Mutex.unlock finish_lock
    in
    Mutex.lock pool.lock;
    for ci = 0 to chunks - 1 do
      Queue.add (job ci) pool.queue
    done;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.lock;
    Mutex.lock finish_lock;
    while !remaining > 0 do
      Condition.wait finished finish_lock
    done;
    Mutex.unlock finish_lock;
    (* Deterministic join: every chunk's counter/span delta folds into the
       caller's domain in chunk-index order, regardless of which worker ran
       what, so merged totals are bit-identical to a sequential run (all
       counters hold exactly representable integer sums). *)
    Array.iter (function Some d -> Obs.merge d | None -> ()) deltas;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures;
    Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_map_seeded ?chunks pool ~rng f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    (* Seeds are drawn sequentially from [rng] before anything runs, in
       index order: task i's stream depends only on (rng, i). *)
    let tasks = Array.make n (Rng.split rng, arr.(0)) in
    for i = 1 to n - 1 do
      tasks.(i) <- (Rng.split rng, arr.(i))
    done;
    parallel_map ?chunks pool (fun (task_rng, x) -> f task_rng x) tasks
  end
