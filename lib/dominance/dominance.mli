(** Dominance predicates (Definitions 4–5 of the paper).

    A tuple [a] dominates [b] when it is at least as good in every attribute
    and strictly better in at least one.  For [c >= 1], [a] {i c-dominates}
    [b] when [a] dominates the scaled tuple [c * b]; Observation 3 shows a
    tuple that is [(1+eps)]-dominated can never be in the
    indistinguishability set, which is the pre-processing filter all
    algorithms apply. *)

val dominates : Indq_linalg.Vec.t -> Indq_linalg.Vec.t -> bool
(** [dominates a b]: [a_i >= b_i] for all [i] and [a_i > b_i] for some [i]. *)

val c_dominates : c:float -> Indq_linalg.Vec.t -> Indq_linalg.Vec.t -> bool
(** [c_dominates ~c a b] is [dominates a (c * b)].  Requires [c >= 1]. *)

val dominates_tuple : Indq_dataset.Tuple.t -> Indq_dataset.Tuple.t -> bool

val c_dominates_tuple :
  c:float -> Indq_dataset.Tuple.t -> Indq_dataset.Tuple.t -> bool

val incomparable : Indq_linalg.Vec.t -> Indq_linalg.Vec.t -> bool
(** Neither dominates the other. *)
