module Tuple = Indq_dataset.Tuple
module Vec = Indq_linalg.Vec

let dominates a b =
  let d = Vec.dim a in
  if Vec.dim b <> d then invalid_arg "Dominance.dominates: dimension mismatch";
  let all_geq = ref true and some_gt = ref false in
  for i = 0 to d - 1 do
    if Vec.get a i < Vec.get b i then all_geq := false;
    if Vec.get a i > Vec.get b i then some_gt := true
  done;
  !all_geq && !some_gt

let c_dominates ~c a b =
  if c < 1. then invalid_arg "Dominance.c_dominates: c must be >= 1";
  let d = Vec.dim a in
  if Vec.dim b <> d then invalid_arg "Dominance.c_dominates: dimension mismatch";
  let all_geq = ref true and some_gt = ref false in
  for i = 0 to d - 1 do
    let scaled = c *. Vec.get b i in
    if Vec.get a i < scaled then all_geq := false;
    if Vec.get a i > scaled then some_gt := true
  done;
  !all_geq && !some_gt

let dominates_tuple a b = dominates (Tuple.values a) (Tuple.values b)

let c_dominates_tuple ~c a b = c_dominates ~c (Tuple.values a) (Tuple.values b)

let incomparable a b = (not (dominates a b)) && not (dominates b a)
