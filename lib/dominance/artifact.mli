(** Persisted [(1+eps)]-skyline artifacts.

    An artifact stores the row positions of a dataset's c-skyline in a
    small text file keyed by [(store fingerprint, exact bits of c)] — the
    fingerprint pins the data content, the raw float bits pin the
    threshold, so a hit can simply select rows positionally and is
    guaranteed to reproduce the computed skyline exactly.

    Robustness over cleverness: any unreadable, mismatched, or implausible
    artifact is treated as a miss and recomputed (then rewritten); writes
    are atomic (temp file + rename).  A corrupt cache can cost time, never
    correctness.

    Cache traffic is counted in [skyline.artifact_hits],
    [skyline.artifact_misses] and [skyline.artifact_writes].

    {b Determinism}: the deterministic experiment sweeps never call into
    this module — a cache hit would depend on what previous runs left on
    disk.  Callers are the scale bench, the [indq precompute]/[ingest]
    CLI, and CI's large-scale smoke job. *)

val default_dir : string
(** [".indq-cache"] — the conventional artifact directory. *)

val path : dir:string -> fingerprint:string -> c:float -> string
(** Where the artifact for this key lives. *)

val lookup :
  dir:string -> c:float -> Indq_dataset.Dataset.t -> Indq_dataset.Dataset.t option
(** The cached c-skyline of the dataset, if a valid artifact exists.
    Validates the full key (fingerprint, c bits, row count) and every
    position; returns [None] on any doubt. *)

val store :
  dir:string ->
  c:float ->
  result:Indq_dataset.Dataset.t ->
  Indq_dataset.Dataset.t ->
  unit
(** [store ~dir ~c ~result data] persists [result] (the computed c-skyline
    of [data]) atomically.  Creates [dir] if needed; all I/O failures are
    swallowed — caching is best-effort. *)

val c_skyline_cached :
  dir:string -> c:float -> Indq_dataset.Dataset.t -> Indq_dataset.Dataset.t
(** {!lookup}, falling back to {!Skyline.c_skyline} + {!store} on a miss.
    Bit-identical results either way. *)

val prune_eps_dominated_cached :
  dir:string -> eps:float -> Indq_dataset.Dataset.t -> Indq_dataset.Dataset.t
(** The Observation 3 filter, cached: [c_skyline_cached ~c:(1 +. eps)]. *)
