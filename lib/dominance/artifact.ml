(* Persisted (1+eps)-skyline artifacts.

   An artifact records the row POSITIONS of a dataset's c-skyline, keyed
   by (store fingerprint, exact bits of c), so repeated experiments and
   interactive sessions over the same data never rescan it.  The format is
   a small text file:

     INDQART1
     <fingerprint> <c bits, 16 hex digits> <n> <count>
     <position>          (count lines, strictly ascending)

   Lookups are paranoid: any parse failure, key mismatch, or implausible
   position list yields a miss and a recompute — a corrupt cache can cost
   time, never correctness.  Writes go through a temp file + rename so a
   crashed writer leaves no torn artifact behind. *)

module Dataset = Indq_dataset.Dataset
module Store = Indq_dataset.Store
module Vec = Indq_linalg.Vec
module Counter = Indq_obs.Counter

let c_hits = Counter.make "skyline.artifact_hits"

let c_misses = Counter.make "skyline.artifact_misses"

let c_writes = Counter.make "skyline.artifact_writes"

let default_dir = ".indq-cache"

let magic = "INDQART1"

let c_bits c = Printf.sprintf "%016Lx" (Int64.bits_of_float c)

let path ~dir ~fingerprint ~c =
  Filename.concat dir (Printf.sprintf "%s-%s.skyline" fingerprint (c_bits c))

let ensure_dir dir =
  match Sys.is_directory dir with
  | true -> true
  | false -> false
  | exception Sys_error _ -> ( try Sys.mkdir dir 0o755; true with Sys_error _ -> false)

(* The positions of [result]'s rows inside [data], relying on both being in
   original dataset order (every skyline variant preserves it).  Rows are
   matched by id and exact values, so duplicate ids cannot mis-map.  [None]
   when [result] is not an ordered subset of [data]. *)
let positions_of_result data result =
  let ds = Dataset.store data and rs = Dataset.store result in
  let n = Store.size ds and m = Store.size rs in
  let pos = Array.make (max m 1) 0 in
  let j = ref 0 and i = ref 0 in
  while !j < m && !i < n do
    if
      Store.id ds !i = Store.id rs !j
      && Vec.equal (Store.row ds !i) (Store.row rs !j)
    then begin
      pos.(!j) <- !i;
      incr j
    end;
    incr i
  done;
  if !j < m then None else Some (Array.sub pos 0 m)

let lookup ~dir ~c data =
  let file = path ~dir ~fingerprint:(Dataset.fingerprint data) ~c in
  match open_in file with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let n = Dataset.size data in
        let line () = In_channel.input_line ic in
        match line () with
        | Some m when String.equal m magic -> (
          match line () with
          | None -> None
          | Some header -> (
            match String.split_on_char ' ' header with
            | [ fp; cb; n_str; count_str ] ->
              if
                (not (String.equal fp (Dataset.fingerprint data)))
                || not (String.equal cb (c_bits c))
              then None
              else begin
                match (int_of_string_opt n_str, int_of_string_opt count_str) with
                | Some n', Some count
                  when n' = n && count >= 0 && count <= n -> (
                  let positions = Array.make (max count 1) 0 in
                  let ok = ref true and prev = ref (-1) in
                  (try
                     for k = 0 to count - 1 do
                       match line () with
                       | None -> ok := false; raise Exit
                       | Some l -> (
                         match int_of_string_opt (String.trim l) with
                         | Some p when p > !prev && p < n ->
                           positions.(k) <- p;
                           prev := p
                         | _ -> ok := false; raise Exit)
                     done
                   with Exit -> ());
                  match (!ok, line ()) with
                  | true, None ->
                    Some (Dataset.select_rows data (Array.sub positions 0 count))
                  | _ -> None)
                | _ -> None
              end
            | _ -> None))
        | _ -> None)

let write_file ~file ~fingerprint ~c ~n positions =
  let tmp = file ^ ".tmp" in
  match open_out tmp with
  | exception Sys_error _ -> false
  | oc ->
    let written =
      match
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            Printf.fprintf oc "%s\n%s %s %d %d\n" magic fingerprint (c_bits c)
              n (Array.length positions);
            Array.iter (fun p -> Printf.fprintf oc "%d\n" p) positions)
      with
      | () -> true
      | exception Sys_error _ -> false
    in
    written
    &&
    (match Sys.rename tmp file with
    | () -> true
    | exception Sys_error _ -> false)

let store ~dir ~c ~result data =
  match positions_of_result data result with
  | None -> ()
  | Some positions ->
    if ensure_dir dir then begin
      let fingerprint = Dataset.fingerprint data in
      let file = path ~dir ~fingerprint ~c in
      if write_file ~file ~fingerprint ~c ~n:(Dataset.size data) positions
      then Counter.incr c_writes
    end

let c_skyline_cached ~dir ~c data =
  match lookup ~dir ~c data with
  | Some result ->
    Counter.incr c_hits;
    result
  | None ->
    Counter.incr c_misses;
    let result = Skyline.c_skyline ~c data in
    store ~dir ~c ~result data;
    result

let prune_eps_dominated_cached ~dir ~eps data =
  if eps < 0. then
    invalid_arg "Artifact.prune_eps_dominated_cached: negative eps";
  c_skyline_cached ~dir ~c:(1. +. eps) data
