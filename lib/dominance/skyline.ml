module Dataset = Indq_dataset.Dataset
module Store = Indq_dataset.Store
module Tuple = Indq_dataset.Tuple
module Vec = Indq_linalg.Vec
module Counter = Indq_obs.Counter

(* Which variant the {!c_skyline} dispatch chose — the perf gate watches
   these (together with [rtree.nodes_visited]) so a silent fallback to the
   linear-window scan shows up as a counter regression, not just a slow
   cell. *)
let c_path_sweep = Counter.make "skyline.path_sweep"

let c_path_sfs = Counter.make "skyline.path_sfs"

let c_path_rtree = Counter.make "skyline.path_rtree"

let c_path_store = Counter.make "skyline.path_store"

let c_skyline_bnl ~c data =
  if c < 1. then invalid_arg "Skyline.c_skyline_bnl: c must be >= 1";
  Dataset.filter data (fun p ->
      not
        (Array.exists
           (fun q ->
             Tuple.id q <> Tuple.id p && Dominance.c_dominates_tuple ~c q p)
           (Dataset.tuples data)))

let c_skyline_sfs ~c data =
  if c < 1. then invalid_arg "Skyline.c_skyline_sfs: c must be >= 1";
  let n = Dataset.size data in
  if n = 0 then data
  else begin
    (* Sort by decreasing coordinate sum: any c-dominator (c >= 1, data
       >= 0) has a strictly larger sum, so one window pass suffices. *)
    let scored =
      Array.map (fun p -> (Vec.sum (Tuple.values p), p)) (Dataset.tuples data)
    in
    Array.sort
      (fun (sa, pa) (sb, pb) ->
        match Float.compare sb sa with
        | 0 -> Tuple.compare_id pa pb
        | cmp -> cmp)
      scored;
    let window = ref [] in
    Array.iter
      (fun (_, p) ->
        let dominated =
          List.exists (fun q -> Dominance.c_dominates_tuple ~c q p) !window
        in
        if not dominated then window := p :: !window)
      scored;
    (* Restore the original dataset order for stable downstream behaviour. *)
    let keep = Hashtbl.create (List.length !window) in
    List.iter (fun p -> Hashtbl.replace keep (Tuple.id p) ()) !window;
    Dataset.filter data (fun p -> Hashtbl.mem keep (Tuple.id p))
  end

(* Plane sweep for d = 2.  A point p is c-dominated iff some q satisfies
   [q.x >= c p.x && q.y > c p.y] or [q.x > c p.x && q.y >= c p.y]; with the
   points sorted by decreasing x, both existential tests become prefix
   queries answered by a prefix-maximum of y. *)
let c_skyline_sweep_2d ~c data =
  if c < 1. then invalid_arg "Skyline.c_skyline_sweep_2d: c must be >= 1";
  if Dataset.size data > 0 && Dataset.dim data <> 2 then
    invalid_arg "Skyline.c_skyline_sweep_2d: data must be 2-dimensional";
  let n = Dataset.size data in
  if n = 0 then data
  else begin
    let pts = Array.map Tuple.values (Dataset.tuples data) in
    let order = Array.init n Fun.id in
    Array.sort
      (fun i j -> Float.compare (Vec.get pts.(j) 0) (Vec.get pts.(i) 0))
      order;
    (* xs sorted descending; prefix_max_y.(k) = max y among the first k. *)
    let xs = Array.map (fun i -> Vec.get pts.(i) 0) order in
    let prefix_max_y = Array.make (n + 1) neg_infinity in
    Array.iteri
      (fun k i ->
        prefix_max_y.(k + 1) <- Float.max prefix_max_y.(k) (Vec.get pts.(i) 1))
      order;
    (* Count of leading entries with x >= bound (weak) or x > bound
       (strict), by binary search on the descending xs. *)
    let count_with ~strict bound =
      let keep x = if strict then x > bound else x >= bound in
      let lo = ref 0 and hi = ref n in
      (* invariant: all indices < lo satisfy keep, all >= hi do not *)
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if keep xs.(mid) then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    let dominated p =
      let cx = c *. Vec.get p 0 and cy = c *. Vec.get p 1 in
      let weak = count_with ~strict:false cx in
      let strict = count_with ~strict:true cx in
      prefix_max_y.(weak) > cy || prefix_max_y.(strict) >= cy
    in
    Dataset.filter data (fun p -> not (dominated (Tuple.values p)))
  end

let c_skyline_rtree ~c data =
  if c < 1. then invalid_arg "Skyline.c_skyline_rtree: c must be >= 1";
  let n = Dataset.size data in
  if n = 0 then data
  else begin
    let d = Dataset.dim data in
    (* Upper corner of the data, for the dominance query boxes. *)
    let upper = Vec.make d neg_infinity in
    let entries = ref [] in
    for i = n - 1 downto 0 do
      let p = Dataset.get data i in
      let v = Tuple.values p in
      for j = 0 to d - 1 do
        if Vec.get v j > Vec.get upper j then Vec.set upper j (Vec.get v j)
      done;
      entries := (v, p) :: !entries
    done;
    let tree = Indq_rtree.Rtree.bulk_load_points ~dim:d !entries in
    let dominated p =
      let v = Tuple.values p in
      let corner = Vec.map (fun x -> c *. x) v in
      (* Outside the data envelope, nothing can c-dominate. *)
      let escapes = ref false in
      for i = 0 to d - 1 do
        if Vec.get corner i > Vec.get upper i then escapes := true
      done;
      if !escapes then false
      else begin
        let query = Indq_rtree.Rect.above_corner corner ~upper in
        Indq_rtree.Rtree.exists_overlapping tree query ~f:(fun _ q ->
            Tuple.id q <> Tuple.id p && Dominance.c_dominates_tuple ~c q p)
      end
    in
    Dataset.filter data (fun p -> not (dominated p))
  end

(* Fully columnar variant: a packed STR-tree over the dataset's flat store
   buffer answers each c-domination test as an early-exit box probe, and
   the result materializes through positional selection — no per-tuple
   views on the hot path, so this is the variant that scales to 10^7
   rows. *)
let c_skyline_store ~c data =
  if c < 1. then invalid_arg "Skyline.c_skyline_store: c must be >= 1";
  let n = Dataset.size data in
  if n = 0 then data
  else begin
    let d = Dataset.dim data in
    let flat = Store.data (Dataset.store data) in
    let tree = Indq_rtree.Strtree.build ~dim:d flat n in
    let upper = Vec.make d neg_infinity in
    for pos = 0 to n - 1 do
      let base = pos * d in
      for i = 0 to d - 1 do
        let x = Vec.get flat (base + i) in
        if x > Vec.get upper i then Vec.set upper i x
      done
    done;
    let corner = Vec.make d 0. in
    let dominated pos =
      let base = pos * d in
      (* Same float expressions as [Dominance.c_dominates]: the box's lower
         corner is [c *. p_i], membership gives the all-geq half, and [f]
         checks the strict half. *)
      let escapes = ref false in
      for i = 0 to d - 1 do
        let ci = c *. Vec.get flat (base + i) in
        Vec.set corner i ci;
        (* Outside the data envelope, nothing can c-dominate. *)
        if ci > Vec.get upper i then escapes := true
      done;
      if !escapes then false
      else
        Indq_rtree.Strtree.exists_in_box tree ~lo:corner ~hi:upper
          ~f:(fun qpos ->
            qpos <> pos
            &&
            let qbase = qpos * d in
            let some_gt = ref false in
            for i = 0 to d - 1 do
              if Vec.get flat (qbase + i) > Vec.get corner i then
                some_gt := true
            done;
            !some_gt)
    in
    let keep = Array.make n false in
    let count = ref 0 in
    for pos = 0 to n - 1 do
      if not (dominated pos) then begin
        keep.(pos) <- true;
        incr count
      end
    done;
    let positions = Array.make !count 0 in
    let j = ref 0 in
    for pos = 0 to n - 1 do
      if keep.(pos) then begin
        positions.(!j) <- pos;
        incr j
      end
    done;
    Dataset.select_rows data positions
  end

(* Dispatch thresholds, overridable for experiments: above [store] rows the
   fully columnar {!c_skyline_store} runs; above [rtree] rows (default 512,
   low enough that every realistic bench cell exercises the index) the
   bulk-loaded R-tree variant runs; below, the SFS window pass.  All
   variants return the same set in the same (original) order, so dispatch
   changes never alter query outputs — only counters. *)
let rtree_threshold = Atomic.make 512

let store_threshold = Atomic.make 200_000

let set_dispatch_thresholds ?rtree ?store () =
  (match rtree with
  | Some v ->
    if v < 0 then invalid_arg "Skyline.set_dispatch_thresholds: negative rtree";
    Atomic.set rtree_threshold v
  | None -> ());
  match store with
  | Some v ->
    if v < 0 then invalid_arg "Skyline.set_dispatch_thresholds: negative store";
    Atomic.set store_threshold v
  | None -> ()

let dispatch_thresholds () = (Atomic.get rtree_threshold, Atomic.get store_threshold)

(* Dispatch: the 2-D sweep is always best for d = 2; the SFS window pass
   wins while inputs are small, but on data whose c-skyline grows with n
   (anti-correlated) it degenerates to O(n * |skyline|), so larger inputs
   go to the bulk-loaded R-tree variant, and store-scale inputs to the
   packed columnar index. *)
let c_skyline ~c data =
  if Dataset.size data > 0 && Dataset.dim data = 2 then begin
    Counter.incr c_path_sweep;
    c_skyline_sweep_2d ~c data
  end
  else if Dataset.size data > Atomic.get store_threshold then begin
    Counter.incr c_path_store;
    c_skyline_store ~c data
  end
  else if Dataset.size data > Atomic.get rtree_threshold then begin
    Counter.incr c_path_rtree;
    c_skyline_rtree ~c data
  end
  else begin
    Counter.incr c_path_sfs;
    c_skyline_sfs ~c data
  end

let skyline data = c_skyline ~c:1. data

let prune_eps_dominated ~eps data =
  if eps < 0. then invalid_arg "Skyline.prune_eps_dominated: negative eps";
  c_skyline ~c:(1. +. eps) data

let is_dominated_by_any data p =
  Array.exists
    (fun q -> Tuple.id q <> Tuple.id p && Dominance.dominates_tuple q p)
    (Dataset.tuples data)

let dominance_counts data =
  let tuples = Dataset.tuples data in
  Array.map
    (fun p ->
      Array.fold_left
        (fun acc q ->
          if Tuple.id q <> Tuple.id p && Dominance.dominates_tuple q p then
            acc + 1
          else acc)
        0 tuples)
    tuples

let k_skyband ~k data =
  if k < 1 then invalid_arg "Skyline.k_skyband: k must be >= 1";
  let counts = dominance_counts data in
  let index = ref (-1) in
  Dataset.filter data (fun _ ->
      incr index;
      counts.(!index) < k)
