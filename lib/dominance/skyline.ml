module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple
module Vec = Indq_linalg.Vec

let c_skyline_bnl ~c data =
  if c < 1. then invalid_arg "Skyline.c_skyline_bnl: c must be >= 1";
  Dataset.filter data (fun p ->
      not
        (Array.exists
           (fun q ->
             Tuple.id q <> Tuple.id p && Dominance.c_dominates_tuple ~c q p)
           (Dataset.tuples data)))

let c_skyline_sfs ~c data =
  if c < 1. then invalid_arg "Skyline.c_skyline_sfs: c must be >= 1";
  let n = Dataset.size data in
  if n = 0 then data
  else begin
    (* Sort by decreasing coordinate sum: any c-dominator (c >= 1, data
       >= 0) has a strictly larger sum, so one window pass suffices. *)
    let scored =
      Array.map (fun p -> (Vec.sum (Tuple.values p), p)) (Dataset.tuples data)
    in
    Array.sort
      (fun (sa, pa) (sb, pb) ->
        match Float.compare sb sa with
        | 0 -> Tuple.compare_id pa pb
        | cmp -> cmp)
      scored;
    let window = ref [] in
    Array.iter
      (fun (_, p) ->
        let dominated =
          List.exists (fun q -> Dominance.c_dominates_tuple ~c q p) !window
        in
        if not dominated then window := p :: !window)
      scored;
    (* Restore the original dataset order for stable downstream behaviour. *)
    let keep = Hashtbl.create (List.length !window) in
    List.iter (fun p -> Hashtbl.replace keep (Tuple.id p) ()) !window;
    Dataset.filter data (fun p -> Hashtbl.mem keep (Tuple.id p))
  end

(* Plane sweep for d = 2.  A point p is c-dominated iff some q satisfies
   [q.x >= c p.x && q.y > c p.y] or [q.x > c p.x && q.y >= c p.y]; with the
   points sorted by decreasing x, both existential tests become prefix
   queries answered by a prefix-maximum of y. *)
let c_skyline_sweep_2d ~c data =
  if c < 1. then invalid_arg "Skyline.c_skyline_sweep_2d: c must be >= 1";
  if Dataset.size data > 0 && Dataset.dim data <> 2 then
    invalid_arg "Skyline.c_skyline_sweep_2d: data must be 2-dimensional";
  let n = Dataset.size data in
  if n = 0 then data
  else begin
    let pts = Array.map Tuple.values (Dataset.tuples data) in
    let order = Array.init n Fun.id in
    Array.sort
      (fun i j -> Float.compare (Vec.get pts.(j) 0) (Vec.get pts.(i) 0))
      order;
    (* xs sorted descending; prefix_max_y.(k) = max y among the first k. *)
    let xs = Array.map (fun i -> Vec.get pts.(i) 0) order in
    let prefix_max_y = Array.make (n + 1) neg_infinity in
    Array.iteri
      (fun k i ->
        prefix_max_y.(k + 1) <- Float.max prefix_max_y.(k) (Vec.get pts.(i) 1))
      order;
    (* Count of leading entries with x >= bound (weak) or x > bound
       (strict), by binary search on the descending xs. *)
    let count_with ~strict bound =
      let keep x = if strict then x > bound else x >= bound in
      let lo = ref 0 and hi = ref n in
      (* invariant: all indices < lo satisfy keep, all >= hi do not *)
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if keep xs.(mid) then lo := mid + 1 else hi := mid
      done;
      !lo
    in
    let dominated p =
      let cx = c *. Vec.get p 0 and cy = c *. Vec.get p 1 in
      let weak = count_with ~strict:false cx in
      let strict = count_with ~strict:true cx in
      prefix_max_y.(weak) > cy || prefix_max_y.(strict) >= cy
    in
    Dataset.filter data (fun p -> not (dominated (Tuple.values p)))
  end

let c_skyline_rtree ~c data =
  if c < 1. then invalid_arg "Skyline.c_skyline_rtree: c must be >= 1";
  let n = Dataset.size data in
  if n = 0 then data
  else begin
    let d = Dataset.dim data in
    let tree = Indq_rtree.Rtree.create ~dim:d () in
    (* Upper corner of the data, for the dominance query boxes. *)
    let upper = Vec.make d neg_infinity in
    Array.iter
      (fun p ->
        let v = Tuple.values p in
        for i = 0 to d - 1 do
          if Vec.get v i > Vec.get upper i then Vec.set upper i (Vec.get v i)
        done;
        Indq_rtree.Rtree.insert_point tree v p)
      (Dataset.tuples data);
    let dominated p =
      let v = Tuple.values p in
      let corner = Vec.map (fun x -> c *. x) v in
      (* Outside the data envelope, nothing can c-dominate. *)
      let escapes = ref false in
      for i = 0 to d - 1 do
        if Vec.get corner i > Vec.get upper i then escapes := true
      done;
      if !escapes then false
      else begin
        let query = Indq_rtree.Rect.above_corner corner ~upper in
        Indq_rtree.Rtree.exists_overlapping tree query ~f:(fun _ q ->
            Tuple.id q <> Tuple.id p && Dominance.c_dominates_tuple ~c q p)
      end
    in
    Dataset.filter data (fun p -> not (dominated p))
  end

(* Dispatch: the 2-D sweep is always best for d = 2; the SFS window pass
   wins while the c-skyline is small, but on data whose c-skyline grows
   with n (anti-correlated) it degenerates to O(n * |skyline|), so large
   inputs go to the R-tree variant instead. *)
let c_skyline ~c data =
  if Dataset.size data > 0 && Dataset.dim data = 2 then
    c_skyline_sweep_2d ~c data
  else if Dataset.size data > 50_000 then c_skyline_rtree ~c data
  else c_skyline_sfs ~c data

let skyline data = c_skyline ~c:1. data

let prune_eps_dominated ~eps data =
  if eps < 0. then invalid_arg "Skyline.prune_eps_dominated: negative eps";
  c_skyline ~c:(1. +. eps) data

let is_dominated_by_any data p =
  Array.exists
    (fun q -> Tuple.id q <> Tuple.id p && Dominance.dominates_tuple q p)
    (Dataset.tuples data)

let dominance_counts data =
  let tuples = Dataset.tuples data in
  Array.map
    (fun p ->
      Array.fold_left
        (fun acc q ->
          if Tuple.id q <> Tuple.id p && Dominance.dominates_tuple q p then
            acc + 1
          else acc)
        0 tuples)
    tuples

let k_skyband ~k data =
  if k < 1 then invalid_arg "Skyline.k_skyband: k must be >= 1";
  let counts = dominance_counts data in
  let index = ref (-1) in
  Dataset.filter data (fun _ ->
      incr index;
      counts.(!index) < k)
