(** Skyline (Pareto-optimal subset) and c-skyline operators.

    The c-skyline (Definition 5) keeps every tuple not c-dominated by
    another; with [c = 1 + eps] it is exactly the pre-processing filter of
    Observation 3 (Line 1 of Algorithms 1–3).  Two algorithms are provided:
    block-nested-loops (the obviously correct baseline, used as ground truth
    in tests) and sort-filter-skyline (sort by coordinate sum, single
    window pass), which is the default. *)

val skyline : Indq_dataset.Dataset.t -> Indq_dataset.Dataset.t
(** The classic skyline ([c = 1]), via {!c_skyline_sfs}. *)

val c_skyline : c:float -> Indq_dataset.Dataset.t -> Indq_dataset.Dataset.t
(** Default algorithm (SFS).  Requires [c >= 1]. *)

val c_skyline_bnl : c:float -> Indq_dataset.Dataset.t -> Indq_dataset.Dataset.t
(** Block-nested-loops: compares every pair.  O(n² d) — small inputs and
    tests only. *)

val c_skyline_sfs : c:float -> Indq_dataset.Dataset.t -> Indq_dataset.Dataset.t
(** Sort-filter-skyline: tuples sorted by decreasing coordinate sum can only
    be c-dominated by earlier window entries (valid for any [c >= 1] because
    [c]-domination implies plain domination on normalized non-negative
    data). *)

val c_skyline_sweep_2d :
  c:float -> Indq_dataset.Dataset.t -> Indq_dataset.Dataset.t
(** O(n log n) plane-sweep for [d = 2]: sort by the first coordinate, use
    prefix maxima of the second to answer each c-domination test in
    O(log n).  Raises [Invalid_argument] unless the data is 2-dimensional.
    {!c_skyline} dispatches here automatically for 2-D inputs. *)

val c_skyline_rtree :
  c:float -> Indq_dataset.Dataset.t -> Indq_dataset.Dataset.t
(** Index-assisted variant (Section V-A mentions R-tree pruning): every
    c-domination test becomes an early-exit rectangle query
    [\[c * p, upper\]] against an STR-bulk-loaded R-tree of the data.
    Best when the c-skyline is small relative to [n]; compared against the
    other variants in the ablation bench. *)

val c_skyline_store :
  c:float -> Indq_dataset.Dataset.t -> Indq_dataset.Dataset.t
(** Fully columnar variant: a packed {!Indq_rtree.Strtree} over the
    dataset's flat store buffer answers each c-domination test as an
    early-exit box probe; the result is selected positionally.  No
    per-tuple heap objects anywhere on the hot path — the variant that
    scales to 10^7 rows.  Same result set and order as every other
    variant. *)

val set_dispatch_thresholds : ?rtree:int -> ?store:int -> unit -> unit
(** Override the {!c_skyline} dispatch: inputs larger than [store]
    (default 200_000) use {!c_skyline_store}; larger than [rtree]
    (default 512) use {!c_skyline_rtree}; 2-D inputs always use the plane
    sweep.  Dispatch never changes results — only which counters move.
    Set once at startup (before bench worker domains spawn). *)

val dispatch_thresholds : unit -> int * int
(** Current [(rtree, store)] thresholds. *)

val prune_eps_dominated : eps:float -> Indq_dataset.Dataset.t -> Indq_dataset.Dataset.t
(** Observation 3 filter: [c_skyline ~c:(1 +. eps)]. *)

val is_dominated_by_any : Indq_dataset.Dataset.t -> Indq_dataset.Tuple.t -> bool
(** Whether any {i other} tuple (different id) dominates the given one. *)

val k_skyband : k:int -> Indq_dataset.Dataset.t -> Indq_dataset.Dataset.t
(** The k-skyband: tuples dominated by fewer than [k] others ([k = 1] is
    the skyline).  Related work the paper contrasts against; useful as a
    non-interactive baseline that, like the indistinguishability query,
    retains some dominated tuples.  O(n²d).  Requires [k >= 1]. *)

val dominance_counts : Indq_dataset.Dataset.t -> int array
(** For each tuple (positional order), how many other tuples dominate it.
    0 exactly for skyline members. *)
