module Dataset = Indq_dataset.Dataset
module Fault = Indq_fault.Fault
module Skyline = Indq_dominance.Skyline
module Oracle = Indq_user.Oracle
module Vec = Indq_linalg.Vec
module Counter = Indq_obs.Counter
module Span = Indq_obs.Span
module Trace = Indq_obs.Trace

let c_widened = Counter.make "squeeze_u2.widened_restarts"

type result = {
  output : Dataset.t;
  lo : Vec.t;
  hi : Vec.t;
  i_star : int;
  questions_used : int;
}

let robust_bounds ~delta ~s ~chi ~c =
  if c < 1 || c > s then invalid_arg "Squeeze_u2.robust_bounds: c out of range";
  let tail = ref 0. in
  for j = c to s - 1 do
    tail := !tail +. chi.(j)
  done;
  let cf = float_of_int c in
  let new_lo = (chi.(c - 1) -. (delta *. !tail)) /. (1. +. (cf *. delta)) in
  let denominator = 1. -. (cf *. delta) in
  let new_hi =
    if denominator <= 0. then infinity
    else (chi.(c) +. (delta *. !tail)) /. denominator
  in
  (new_lo, new_hi)

let run ?(exact_prune = false) ~data ~s ~q ~eps ~delta ~oracle () =
  if s < 2 then invalid_arg "Squeeze_u2.run: s must be >= 2";
  if q < 0 then invalid_arg "Squeeze_u2.run: negative question budget";
  if eps <= 0. then invalid_arg "Squeeze_u2.run: eps must be positive";
  if delta < 0. then invalid_arg "Squeeze_u2.run: negative delta";
  if Dataset.size data = 0 then invalid_arg "Squeeze_u2.run: empty dataset";
  let questions_before = Oracle.questions_asked oracle in
  let d = Dataset.dim data in
  (* Line 1: Observation 3 pre-filter. *)
  let candidates =
    Span.timed "squeeze_u2.skyline" (fun () ->
        Skyline.prune_eps_dominated ~eps data)
  in
  Trace.emit_with (fun () ->
      Trace.Prune_stage
        {
          stage = "skyline";
          before = Dataset.size data;
          after = Dataset.size candidates;
        });
  let n_candidates = Dataset.size candidates in
  (* Line 2: unit display points. *)
  let make_point i = Vec.basis d i in
  let i_star, remaining =
    if d = 1 then (0, q)
    else
      (* Same tournament as Algorithm 1, but over unit vectors. *)
      Span.timed "squeeze_u2.phase1" (fun () ->
          let i_star = ref 0 in
          let i = ref 1 in
          let budget = ref q in
          let round = ref 0 in
          while !i < d && !budget > 0 do
            incr round;
            Trace.emit_with (fun () ->
                Trace.Round_started
                  { round = !round; candidates = n_candidates });
            let count = min (s - 1) (d - !i) in
            let display =
              Array.init (count + 1) (fun k ->
                  if k = 0 then make_point !i_star else make_point (!i + k - 1))
            in
            let choice = Oracle.choose oracle display in
            if choice > 0 then i_star := !i + choice - 1;
            i := !i + count;
            decr budget
          done;
          (!i_star, !budget))
  in
  (* Line 8: the discovered u_{i*} may be short of the maximum by up to
     (1+delta) per tournament round, so widen the other upper bounds. *)
  let tournament_rounds =
    if d = 1 then 0 else (d - 2) / (s - 1) + 1 (* = ceil((d-1)/(s-1)) *)
  in
  (* If the budget cut the tournament short, nothing bounds the other
     coefficients relative to u_{i*}. *)
  let initial_hi =
    if q >= tournament_rounds then (1. +. delta) ** float_of_int tournament_rounds
    else 1e6
  in
  let lo = Array.make d 0. and hi = Array.make d initial_hi in
  lo.(i_star) <- 1.;
  hi.(i_star) <- 1.;
  (* Lines 9-17: delta-robust ladder rounds. *)
  let remaining = ref remaining in
  let round = ref (q - !remaining) in
  let i = ref (if i_star = 0 && d > 1 then 1 else 0) in
  Span.timed "squeeze_u2.ladder" (fun () ->
      while d > 1 && !remaining > 0 do
        incr round;
        Trace.emit_with (fun () ->
            Trace.Round_started { round = !round; candidates = n_candidates });
        let chi = Squeeze_u.chi_ladder ~lo:lo.(!i) ~hi:hi.(!i) ~s in
        let display = Squeeze_u.ladder_points ~d ~s ~i:!i ~i_star ~chi in
        let c = Oracle.choose oracle display + 1 in
        let new_lo, new_hi = robust_bounds ~delta ~s ~chi ~c in
        let lo' = Float.max lo.(!i) (Float.max 0. new_lo) in
        let hi' = Float.min hi.(!i) new_hi in
        (* Because the χ rungs are built on the accumulated interval, an
           answer's Theorem 3 interval always nests inside it — so a real
           inversion here means numeric corruption of the bounds, not a
           mere lie.  The armed adversarial-user fault forces the same
           degradation path so its recovery invariant is exercisable. *)
        let corrupted = lo' -. hi' > 1e-9 *. Float.max 1. lo' in
        if Fault.fire "inject.oracle_contradiction" || corrupted then begin
          (* Degrading instead of keeping a collapsed (or suspect) interval:
             restart this coordinate on the disagreement zone widened by
             (1+eps) each way.  Every value consistent with either side
             survives — a superset of the sound interval — so the Theorem 3
             no-false-negatives guarantee is preserved relative to
             whichever answers were honest. *)
          Counter.incr c_widened;
          lo.(!i) <- Float.max 0. (Float.min lo' hi' /. (1. +. eps));
          hi.(!i) <- Float.min initial_hi (Float.max lo' hi' *. (1. +. eps))
        end
        else begin
          (* Line 16: only ever tighten, and keep the interval well-formed
             under float noise. *)
          lo.(!i) <- lo';
          hi.(!i) <- hi';
          if lo.(!i) > hi.(!i) then lo.(!i) <- hi.(!i)
        end;
        decr remaining;
        let next = ref ((!i + 1) mod d) in
        if !next = i_star then next := (!next + 1) mod d;
        i := !next
      done);
  (* Lines 18-21: prune with the learned box. *)
  let lo = Vec.of_array lo and hi = Vec.of_array hi in
  let output =
    Span.timed "squeeze_u2.box_prune" (fun () ->
        if exact_prune then Pruning.box_prune_exact ~eps ~lo ~hi candidates
        else Pruning.box_prune_fast ~eps ~lo ~hi candidates)
  in
  {
    output;
    lo;
    hi;
    i_star;
    questions_used = Oracle.questions_asked oracle - questions_before;
  }
