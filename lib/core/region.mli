(** The feasible region [R_j] of the user's utility vector, maintained by
    the real-points algorithms (Section V) and by UH-Random.

    A thin wrapper over {!Indq_geom.Polytope} that speaks in terms of user
    choices: {!observe} records "the user chose [winner] out of a display
    set", adding one utility hyperplane per loser — the δ-weakened version
    [((1+delta) winner - loser) . v >= 0] when the user may err
    (Section VI-B). *)

type t

val initial : d:int -> t
(** [R_0], the whole utility simplex (sum-normalized utilities). *)

val dim : t -> int

val observe :
  ?delta:float ->
  t ->
  winner:Indq_linalg.Vec.t ->
  losers:Indq_linalg.Vec.t list ->
  t
(** Cut with the hyperplanes learned from one round.  [delta] defaults
    to 0. *)

val polytope : t -> Indq_geom.Polytope.t

val is_empty : t -> bool
(** An empty region means recorded answers were mutually inconsistent
    (possible when a δ-erring user is processed with too small a [delta]). *)

val width : ?stop_when:(float -> bool) -> t -> float
(** MinR metric; see {!Indq_geom.Polytope.width}. *)

val diameter : ?stop_when:(float -> bool) -> t -> float
(** MinD metric; see {!Indq_geom.Polytope.diameter}. *)

val center : t -> Indq_linalg.Vec.t
(** Representative utility estimate. *)

val questions_recorded : t -> int
(** Number of {!observe} calls that produced at least one cut. *)
