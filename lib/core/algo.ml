module Dataset = Indq_dataset.Dataset
module Timer = Indq_util.Timer
module Counter = Indq_obs.Counter
module Histogram = Indq_obs.Histogram
module Trace = Indq_obs.Trace

type name = Squeeze_u | Uh_random | MinD | MinR

type config = {
  s : int;
  q : int;
  eps : float;
  delta : float;
  trials : int;
  exact_prune : bool;
}

type run_result = {
  output : Dataset.t;
  questions_used : int;
  seconds : float;
  metrics : (string * float) list;
  hists : (string * Histogram.snap) list;
}

let default_config ~d =
  {
    s = max 2 d;
    q = 3 * d;
    eps = 0.05;
    delta = 0.;
    trials = 10;
    exact_prune = false;
  }

let all = [ Squeeze_u; Uh_random; MinD; MinR ]

let to_string = function
  | Squeeze_u -> "Squeeze-u"
  | Uh_random -> "UH-Random"
  | MinD -> "MinD"
  | MinR -> "MinR"

let of_string s =
  match String.lowercase_ascii s with
  | "squeeze-u" | "squeeze_u" | "squeezeu" -> Squeeze_u
  | "uh-random" | "uh_random" | "uhrandom" -> Uh_random
  | "mind" -> MinD
  | "minr" -> MinR
  | other -> invalid_arg ("Algo.of_string: unknown algorithm " ^ other)

let run_traced name config ~data ~oracle ~rng =
  let { s; q; eps; delta; trials; exact_prune } = config in
  Trace.emit_with (fun () ->
      Trace.Run_started
        {
          algo = to_string name;
          n = Dataset.size data;
          d = Dataset.dim data;
          s;
          q;
          eps;
          delta;
        });
  let before = Counter.snapshot () in
  let before_h = Histogram.snapshot () in
  let execute () =
    match name with
    | Squeeze_u ->
      if delta > 0. then begin
        let r =
          Squeeze_u2.run ~exact_prune ~data ~s ~q ~eps ~delta ~oracle ()
        in
        (r.Squeeze_u2.output, r.Squeeze_u2.questions_used)
      end
      else begin
        let r = Squeeze_u.run ~exact_prune ~data ~s ~q ~eps ~oracle () in
        (r.Squeeze_u.output, r.Squeeze_u.questions_used)
      end
    | Uh_random ->
      let r = Real_points.uh_random ~delta ~data ~s ~q ~eps ~oracle ~rng () in
      (r.Real_points.output, r.Real_points.questions_used)
    | MinD ->
      let r =
        Real_points.run ~delta ~trials Real_points.MinD ~data ~s ~q ~eps
          ~oracle ~rng
      in
      (r.Real_points.output, r.Real_points.questions_used)
    | MinR ->
      let r =
        Real_points.run ~delta ~trials Real_points.MinR ~data ~s ~q ~eps
          ~oracle ~rng
      in
      (r.Real_points.output, r.Real_points.questions_used)
  in
  let (output, questions_used), seconds = Timer.time execute in
  let metrics = Counter.since before in
  let hists = Histogram.since before_h in
  Trace.emit_with (fun () ->
      Trace.Run_finished
        { questions = questions_used; output = Dataset.size output; seconds });
  { output; questions_used; seconds; metrics; hists }

let run ?trace name config ~data ~oracle ~rng =
  match trace with
  | None -> run_traced name config ~data ~oracle ~rng
  | Some sink ->
    Trace.with_sink sink (fun () -> run_traced name config ~data ~oracle ~rng)
