module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple
module Skyline_op = Indq_dominance.Skyline
module Span = Indq_obs.Span

let top_k data u ~k = Dataset.top_k data u k

let skyline data = Dataset.to_list (Skyline_op.skyline data)

let greedy_regret_set data ~size ~sample_utilities =
  Span.timed "baselines.greedy_regret_set" @@ fun () ->
  if Dataset.size data = 0 then invalid_arg "Baselines.greedy_regret_set: empty dataset";
  if size <= 0 then invalid_arg "Baselines.greedy_regret_set: size must be positive";
  if sample_utilities = [] then
    invalid_arg "Baselines.greedy_regret_set: empty utility sample";
  let utilities = Array.of_list sample_utilities in
  (* optima.(i): the best utility value in the whole dataset for u_i. *)
  let optima =
    Array.map (fun u -> snd (Dataset.max_utility data u)) utilities
  in
  (* best_in_set.(i): best value covered by the chosen set so far. *)
  let best_in_set = Array.make (Array.length utilities) 0. in
  let max_regret () =
    let worst = ref 0. in
    Array.iteri
      (fun i opt ->
        if opt > 0. then
          worst := Float.max !worst (1. -. (best_in_set.(i) /. opt)))
      optima;
    !worst
  in
  let chosen = ref [] in
  let chosen_ids = Hashtbl.create size in
  let pick_next () =
    (* The tuple minimizing the resulting max regret when added. *)
    let best_tuple = ref None and best_score = ref infinity in
    Array.iter
      (fun p ->
        if not (Hashtbl.mem chosen_ids (Tuple.id p)) then begin
          let worst = ref 0. in
          Array.iteri
            (fun i opt ->
              if opt > 0. then begin
                let covered =
                  Float.max best_in_set.(i) (Tuple.utility p utilities.(i))
                in
                worst := Float.max !worst (1. -. (covered /. opt))
              end)
            optima;
          if !worst < !best_score then begin
            best_score := !worst;
            best_tuple := Some p
          end
        end)
      (Dataset.tuples data);
    !best_tuple
  in
  let rec grow () =
    if List.length !chosen < size && max_regret () > 1e-12 then begin
      match pick_next () with
      | None -> ()
      | Some p ->
        chosen := p :: !chosen;
        Hashtbl.replace chosen_ids (Tuple.id p) ();
        Array.iteri
          (fun i u ->
            best_in_set.(i) <- Float.max best_in_set.(i) (Tuple.utility p u))
          utilities;
        grow ()
    end
  in
  grow ();
  List.rev !chosen

let uh_random = Real_points.uh_random

type comparison = {
  truth_size : int;
  result_size : int;
  covered : int;
  coverage : float;
  false_positives : int;
}

let compare_with_truth ~eps u ~data result =
  let truth = Indist.query_exact ~eps u data in
  let truth_ids = Hashtbl.create (Dataset.size truth) in
  Array.iter
    (fun p -> Hashtbl.replace truth_ids (Tuple.id p) ())
    (Dataset.tuples truth);
  let covered =
    List.length (List.filter (fun p -> Hashtbl.mem truth_ids (Tuple.id p)) result)
  in
  let truth_size = Dataset.size truth in
  {
    truth_size;
    result_size = List.length result;
    covered;
    coverage =
      (if truth_size = 0 then 1. else float_of_int covered /. float_of_int truth_size);
    false_positives = List.length result - covered;
  }

let pp_comparison ppf c =
  Format.fprintf ppf "|I|=%d |result|=%d covered=%d (%.0f%%) false-positives=%d"
    c.truth_size c.result_size c.covered (100. *. c.coverage) c.false_positives
