(** Non-interactive baselines the paper's introduction argues against —
    top-k, skyline and regret-minimizing sets — plus coverage metrics for
    comparing any result set against the exact indistinguishability set.

    None of these can solve the indistinguishability query: top-k needs the
    exact utility; the skyline discards dominated-but-indistinguishable
    tuples and keeps arbitrarily many uninteresting ones; a k-regret set
    guarantees only that {i some} member is near-optimal.  The
    [baseline_comparison] example quantifies each failure mode with these
    functions. *)

val top_k :
  Indq_dataset.Dataset.t -> Indq_user.Utility.t -> k:int -> Indq_dataset.Tuple.t list
(** The top-k tuples for a {i known} utility (clairvoyant baseline). *)

val skyline : Indq_dataset.Dataset.t -> Indq_dataset.Tuple.t list
(** The Pareto-optimal tuples. *)

val greedy_regret_set :
  Indq_dataset.Dataset.t ->
  size:int ->
  sample_utilities:Indq_user.Utility.t list ->
  Indq_dataset.Tuple.t list
(** A k-regret-minimizing set in the style of Nanongkai et al. (VLDB
    2010), built greedily: seed with the best tuple for the first sampled
    utility, then repeatedly add the tuple that most reduces the maximum
    regret ratio over the utility sample.  Stops early when regret reaches
    0.  Raises [Invalid_argument] on an empty dataset, empty sample or
    non-positive size. *)

val uh_random :
  ?delta:float ->
  ?anchors:int ->
  ?store:Pruning.Store.t ->
  data:Indq_dataset.Dataset.t ->
  s:int ->
  q:int ->
  eps:float ->
  oracle:Indq_user.Oracle.t ->
  rng:Indq_util.Rng.t ->
  unit ->
  Real_points.result
(** The interactive UH-Random baseline — {!Real_points.uh_random} under its
    evaluation-section name, sharing the store-backed Lemma 2 pruning loop
    with MinR/MinD so baseline numbers exercise the same code path. *)

(** {2 Comparing a result set against the exact query} *)

type comparison = {
  truth_size : int;  (** |I| *)
  result_size : int;
  covered : int;  (** |result ∩ I| *)
  coverage : float;  (** covered / |I| — 1.0 means no false negatives *)
  false_positives : int;  (** |result \ I| *)
}

val compare_with_truth :
  eps:float ->
  Indq_user.Utility.t ->
  data:Indq_dataset.Dataset.t ->
  Indq_dataset.Tuple.t list ->
  comparison
(** Score a candidate result set against [I(f, eps)] computed on [data]. *)

val pp_comparison : Format.formatter -> comparison -> unit
