module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple

let check ~f ~eps =
  if f <= 1 then invalid_arg "Impossibility: f must be > 1";
  if eps <= 0. then invalid_arg "Impossibility: eps must be positive"

let m ~f ~eps =
  check ~f ~eps;
  int_of_float (Float.ceil ((1. +. eps) *. float_of_int f))

let database ~f ~eps =
  let m = m ~f ~eps in
  let mf = float_of_int m in
  Dataset.create
    (Array.init (m + 1) (fun i ->
         let x = float_of_int i /. mf in
         [| x; 1. -. x |]))

let utility_u = Indq_linalg.Vec.of_array [| 1.; 0. |]

let utility_u' ~eps =
  if eps <= 0. then invalid_arg "Impossibility.utility_u': eps must be positive";
  Indq_linalg.Vec.of_array [| 1.; 1. /. (1. +. eps) |]

let identical_rankings ~f ~eps =
  let data = database ~f ~eps in
  let u = utility_u and u' = utility_u' ~eps in
  let tuples = Dataset.tuples data in
  let consistent = ref true in
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          let order u = Float.compare (Tuple.utility a u) (Tuple.utility b u) in
          if order u <> order u' then consistent := false)
        tuples)
    tuples;
  !consistent

let forced_false_positives ~f ~eps =
  let data = database ~f ~eps in
  let size_for u = Dataset.size (Indist.query_exact ~eps u data) in
  size_for (utility_u' ~eps) - size_for utility_u
