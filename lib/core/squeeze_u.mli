(** Squeeze-u (Algorithm 1): the provable-bound algorithm with artificial
    tuples and an error-free user.

    Phase 1 discovers [i* = argmax_i u_i] with [ceil((d-1)/(s-1))] questions
    built from the data ranges ([e_i] has the midpoint of attribute [i]'s
    range in position [i] and the minima elsewhere).  Phase 2 repeatedly
    shows the [chi]-ladder points of Line 14, shrinking one coordinate
    bound [H_i - L_i] by a factor of [s] per question (Lemma 1).  Finally
    the learned box [L <= u <= H] prunes the candidates (Section IV-A).

    Guarantees (Theorem 2): the output is an
    [O(d / s^((q-1)/(d-1)))]-approximation of [I].  The paper's listing
    initializes every upper bound to 1, which is valid only when all
    attributes span equal ranges; this implementation instead uses the
    bound the phase-1 tournament actually proves,
    [u_j / u_{i*} <= spread(i_star) / spread(j)], so the no-false-negative
    contract holds on arbitrarily normalized inputs (see DESIGN.md,
    "Design notes").  On equal-range data the two coincide. *)

type result = {
  output : Indq_dataset.Dataset.t;
  lo : Indq_linalg.Vec.t;
      (** learned lower bounds [L] (relative to [u_{i*}] = 1) *)
  hi : Indq_linalg.Vec.t;  (** learned upper bounds [H] *)
  i_star : int;  (** discovered largest-coefficient attribute *)
  questions_used : int;
}

val run :
  ?exact_prune:bool ->
  data:Indq_dataset.Dataset.t ->
  s:int ->
  q:int ->
  eps:float ->
  oracle:Indq_user.Oracle.t ->
  unit ->
  result
(** [run ~data ~s ~q ~eps ~oracle ()] asks at most [q] questions of [s]
    options each.  [exact_prune] (default false) switches the final filter
    from the O(n) heuristic to the exact box-corner test.

    Raises [Invalid_argument] when [s < 2], [q < 0], [eps <= 0] or the
    dataset is empty. *)

val chi_ladder : lo:float -> hi:float -> s:int -> float array
(** The display thresholds [chi_0 .. chi_s] of Line 13 (exposed for
    tests). *)

val ladder_points :
  d:int ->
  s:int ->
  i:int ->
  i_star:int ->
  chi:float array ->
  Indq_linalg.Vec.t array
(** The artificial display tuples [p_1 .. p_s] of Line 14 (exposed for
    tests). *)
