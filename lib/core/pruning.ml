module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple
module Vec = Indq_linalg.Vec
module Polytope = Indq_geom.Polytope
module Halfspace = Indq_geom.Halfspace
module Counter = Indq_obs.Counter
module Trace = Indq_obs.Trace

let c_scalar_hits = Counter.make "prune.scalar_hits"
let c_corner_hits = Counter.make "prune.corner_hits"
let c_lp_calls = Counter.make "prune.lp_calls"
let c_witness_hits = Counter.make "prune.witness_hits"
let c_store_hits = Counter.make "prune.store_hits"

let emit_stage ~stage ~before result =
  Trace.emit_with (fun () ->
      Trace.Prune_stage { stage; before; after = Dataset.size result });
  result

let check_box ~lo ~hi d =
  if Vec.dim lo <> d || Vec.dim hi <> d then
    invalid_arg "Pruning: bound dimension mismatch";
  for i = 0 to d - 1 do
    if Vec.get lo i > Vec.get hi i then invalid_arg "Pruning: lo > hi"
  done

let box_prune_fast ~eps ~lo ~hi data =
  if eps <= 0. then invalid_arg "Pruning.box_prune_fast: eps must be positive";
  if Dataset.size data = 0 then data
  else begin
    check_box ~lo ~hi (Dataset.dim data);
    let floor_value =
      Array.fold_left
        (fun acc p -> Float.max acc (Vec.dot (Tuple.values p) lo))
        neg_infinity (Dataset.tuples data)
    in
    (* Relative slack so float-rounding can never drop a tuple sitting
       exactly on the threshold. *)
    let slack = 1e-9 *. Float.max 1. (Float.abs floor_value) in
    Dataset.filter data (fun p ->
        let keep =
          (1. +. eps) *. Vec.dot (Tuple.values p) hi >= floor_value -. slack
        in
        if not keep then Counter.incr c_scalar_hits;
        keep)
    |> emit_stage ~stage:"box_fast" ~before:(Dataset.size data)
  end

(* Minimum of the linear form w . v over the box [lo, hi]: the coordinates
   separate, so pick per coordinate whichever corner of [lo_i, hi_i]
   minimizes w_i v_i.  This evaluates the paper's "check all 2^d corners"
   test in O(d). *)
let min_over_box w ~lo ~hi =
  let acc = ref 0. in
  for i = 0 to Vec.dim w - 1 do
    let wi = Vec.get w i in
    acc :=
      !acc +. Float.min (wi *. Vec.get lo i) (wi *. Vec.get hi i)
  done;
  !acc

let box_prune_exact ~eps ~lo ~hi data =
  if eps <= 0. then invalid_arg "Pruning.box_prune_exact: eps must be positive";
  if Dataset.size data = 0 then data
  else begin
    let d = Dataset.dim data in
    if d > 20 then invalid_arg "Pruning.box_prune_exact: dimension too large";
    check_box ~lo ~hi d;
    let tuples = Dataset.tuples data in
    let eliminated q =
      let qv = Tuple.values q in
      Array.exists
        (fun p ->
          Tuple.id p <> Tuple.id q
          &&
          let w =
            Vec.init d (fun i -> Tuple.get p i -. ((1. +. eps) *. Vec.get qv i))
          in
          min_over_box w ~lo ~hi > 1e-9)
        tuples
    in
    Dataset.filter data (fun q ->
        let out = eliminated q in
        if out then Counter.incr c_corner_hits;
        not out)
    |> emit_stage ~stage:"box_exact" ~before:(Dataset.size data)
  end

(* --- Lemma 2 region pruning and its persistent cross-round store ------- *)

module Store = struct
  (* Certificates carried across rounds of one interaction.  Sound because
     the region only ever shrinks: a cached point that still satisfies
     every cut is still a region point, so whatever it certified (an
     anchor's utility floor, a candidate's non-prunability against an
     anchor) it still certifies — a scalar product decides, and an LP is
     re-issued only when the certificate died.  Pruned candidates never
     re-enter (the filtered dataset is what flows to the next round), so
     prune decisions are monotone by construction. *)
  type t = {
    pair_witnesses : (int * int, Vec.t) Hashtbl.t;
        (* (candidate id, anchor id) -> region point v with
           ((1+eps) b - a) . v >= -tol, i.e. "a cannot prune b" *)
    floor_witnesses : (int, float * Vec.t) Hashtbl.t;
        (* anchor id -> (min a.v over the region, minimizing point) *)
  }

  let create () =
    { pair_witnesses = Hashtbl.create 64; floor_witnesses = Hashtbl.create 8 }
end

(* Is this cached point still inside the region?  (Cached points came from
   LP solves over an ancestor region, so they are on the simplex already;
   only the cuts can invalidate them.) *)
let point_in_cuts poly p =
  List.for_all (fun h -> Halfspace.satisfies h p) (Polytope.halfspaces poly)

let anchor_pool ~anchors region data =
  let center = Region.center region in
  let scored =
    Array.map (fun p -> (Vec.dot (Tuple.values p) center, p)) (Dataset.tuples data)
  in
  Array.sort (fun (a, _) (b, _) -> Float.compare b a) scored;
  let k = min anchors (Array.length scored) in
  List.init k (fun i -> snd scored.(i))

(* The shared utility-floor computation: [max_a min_{v in R} a . v] over an
   anchor pool.  One LP per anchor, except that a store remembers each
   anchor's minimizing point from the previous round — if it survived
   every cut since, the cached minimum is still exact (the point attains
   it inside the shrunken region, and shrinking can only raise the
   minimum to that value). *)
let floor_over_pool ?store poly pool =
  let use_store = Polytope.incremental_enabled () in
  (* d = 2 analytic floor: on the simplex line the region is an interval
     whose profile witnesses are its complete vertex set, so an anchor's
     minimum is a dot-product min over them — no LP.  Verdict-grade like
     the rest of the cascade (the floor only feeds threshold tests). *)
  let vertices =
    if use_store && Polytope.dim poly = 2 then
      snd (Polytope.coordinate_profile poly)
    else []
  in
  List.fold_left
    (fun acc a ->
      let cached =
        match store with
        | Some (s : Store.t) when use_store ->
          (match Hashtbl.find_opt s.floor_witnesses (Tuple.id a) with
          | Some (v, p) when point_in_cuts poly p ->
            Counter.incr c_store_hits;
            Some v
          | _ -> None)
        | _ -> None
      in
      match cached with
      | Some v -> Float.max acc v
      | None -> (
        match vertices with
        | v0 :: rest ->
          Counter.incr c_witness_hits;
          let av = Tuple.values a in
          let min_v, min_p =
            List.fold_left
              (fun (bv, bp) p ->
                let dv = Vec.dot av p in
                if dv < bv then (dv, p) else (bv, bp))
              (Vec.dot av v0, v0) rest
          in
          (match store with
          | Some s ->
            Hashtbl.replace s.floor_witnesses (Tuple.id a) (min_v, min_p)
          | None -> ());
          Float.max acc min_v
        | [] -> (
          Counter.incr c_lp_calls;
          match Polytope.minimize poly (Tuple.values a) with
          | Some (v, p) ->
            (match store with
            | Some s -> Hashtbl.replace s.floor_witnesses (Tuple.id a) (v, p)
            | None -> ());
            Float.max acc v
          | None -> acc)))
    neg_infinity pool

let utility_floor ?store region data =
  if Dataset.size data = 0 then invalid_arg "Pruning.utility_floor: empty dataset";
  if Region.is_empty region then invalid_arg "Pruning.utility_floor: empty region";
  let poly = Region.polytope region in
  let pool = anchor_pool ~anchors:4 region data in
  floor_over_pool ?store poly pool

let region_prune ?(anchors = 4) ?store ~eps region data =
  if eps <= 0. then invalid_arg "Pruning.region_prune: eps must be positive";
  if anchors <= 0 then invalid_arg "Pruning.region_prune: anchors must be positive";
  if Dataset.size data = 0 || Region.is_empty region then data
  else begin
    let poly = Region.polytope region in
    let pool = anchor_pool ~anchors region data in
    let floor_value = floor_over_pool ?store poly pool in
    (* Margin above the LP solver's own accuracy: pruning must only fire
       with clear daylight, keeping the no-false-negative contract under
       float noise. *)
    let tol = 1e-7 in
    (* Witness points of the region (coordinate-extreme vertices plus the
       center): if some witness v has w . v >= 0, then max w . v >= 0 and
       the candidate is provably not prunable via that test — no LP
       needed.  Early rounds, when almost nothing is prunable, then cost
       only dot products. *)
    let bounds, vertex_witnesses = Polytope.coordinate_profile poly in
    let witnesses = Region.center region :: vertex_witnesses in
    let hi_corner = Vec.init (Array.length bounds) (fun i -> snd bounds.(i)) in
    let disproved_by_witness w =
      List.exists (fun v -> Vec.dot w v >= -.tol) witnesses
    in
    let use_store = Polytope.incremental_enabled () in
    (* "Anchor a cannot prune candidate b", certified by a cached region
       point from an earlier round when possible. *)
    let stored_witness b_id a_id w =
      match store with
      | Some (s : Store.t) when use_store ->
        (match Hashtbl.find_opt s.pair_witnesses (b_id, a_id) with
        | Some p when point_in_cuts poly p && Vec.dot w p >= -.tol ->
          Counter.incr c_store_hits;
          true
        | Some _ ->
          Hashtbl.remove s.pair_witnesses (b_id, a_id);
          false
        | None -> false)
      | _ -> false
    in
    let remember b_id a_id p =
      match store with
      | Some s when use_store -> Hashtbl.replace s.pair_witnesses (b_id, a_id) p
      | _ -> ()
    in
    let prunable b =
      let b_id = Tuple.id b in
      let scaled = Vec.scale (1. +. eps) (Tuple.values b) in
      (* Cheap sound prune: max (1+eps) b . v <= (1+eps) b . hi_corner. *)
      if Vec.dot scaled hi_corner < floor_value -. tol then begin
        Counter.incr c_scalar_hits;
        true
      end
      else
        List.exists
          (fun a ->
            Tuple.id a <> b_id
            &&
            let w = Vec.sub scaled (Tuple.values a) in
            if stored_witness b_id (Tuple.id a) w then false
            else if disproved_by_witness w then begin
              Counter.incr c_witness_hits;
              (match List.find_opt (fun v -> Vec.dot w v >= -.tol) witnesses with
              | Some v -> remember b_id (Tuple.id a) v
              | None -> ());
              false
            end
            else if use_store && Polytope.dim poly = 2 then begin
              (* d = 2: [witnesses] contains both interval endpoints — the
                 complete vertex set — so the failed disproof already
                 evaluated max w . v over every vertex and found it below
                 -tol: prunable with no confirming LP. *)
              Counter.incr c_witness_hits;
              true
            end
            else begin
              Counter.incr c_lp_calls;
              match Polytope.maximize poly w with
              | Some (m, p) ->
                if m < -.tol then true
                else begin
                  remember b_id (Tuple.id a) p;
                  false
                end
              | None -> false
            end)
          pool
    in
    Dataset.filter data (fun b -> not (prunable b))
    |> emit_stage ~stage:"lemma2" ~before:(Dataset.size data)
  end
