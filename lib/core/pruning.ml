module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple
module Vec = Indq_linalg.Vec
module Polytope = Indq_geom.Polytope
module Halfspace = Indq_geom.Halfspace
module Counter = Indq_obs.Counter
module Trace = Indq_obs.Trace

let c_scalar_hits = Counter.make "prune.scalar_hits"
let c_corner_hits = Counter.make "prune.corner_hits"
let c_lp_calls = Counter.make "prune.lp_calls"
let c_witness_hits = Counter.make "prune.witness_hits"
let c_store_hits = Counter.make "prune.store_hits"

(* Minor-heap words allocated inside the flat-sweep kernel, measured
   around every [sweep_rows] run.  The kernel is annotated
   [@indq.alloc_free] and checked statically by indq-analyze (ANA002);
   this counter is the dynamic cross-check — it must stay exactly 0, and
   the benchdiff gate treats it as critical. *)
let c_sweep_minor = Counter.make "prune.sweep_minor_words"

let emit_stage ~stage ~before result =
  Trace.emit_with (fun () ->
      Trace.Prune_stage { stage; before; after = Dataset.size result });
  result

let check_box ~lo ~hi d =
  if Vec.dim lo <> d || Vec.dim hi <> d then
    invalid_arg "Pruning: bound dimension mismatch";
  for i = 0 to d - 1 do
    if Vec.get lo i > Vec.get hi i then invalid_arg "Pruning: lo > hi"
  done

let box_prune_fast ~eps ~lo ~hi data =
  if eps <= 0. then invalid_arg "Pruning.box_prune_fast: eps must be positive";
  if Dataset.size data = 0 then data
  else begin
    check_box ~lo ~hi (Dataset.dim data);
    let floor_value =
      Array.fold_left
        (fun acc p -> Float.max acc (Vec.dot (Tuple.values p) lo))
        neg_infinity (Dataset.tuples data)
    in
    (* Relative slack so float-rounding can never drop a tuple sitting
       exactly on the threshold. *)
    let slack = 1e-9 *. Float.max 1. (Float.abs floor_value) in
    Dataset.filter data (fun p ->
        let keep =
          (1. +. eps) *. Vec.dot (Tuple.values p) hi >= floor_value -. slack
        in
        if not keep then Counter.incr c_scalar_hits;
        keep)
    |> emit_stage ~stage:"box_fast" ~before:(Dataset.size data)
  end

(* Minimum of the linear form w . v over the box [lo, hi]: the coordinates
   separate, so pick per coordinate whichever corner of [lo_i, hi_i]
   minimizes w_i v_i.  This evaluates the paper's "check all 2^d corners"
   test in O(d). *)
let min_over_box w ~lo ~hi =
  let acc = ref 0. in
  for i = 0 to Vec.dim w - 1 do
    let wi = Vec.get w i in
    acc :=
      !acc +. Float.min (wi *. Vec.get lo i) (wi *. Vec.get hi i)
  done;
  !acc

let box_prune_exact ~eps ~lo ~hi data =
  if eps <= 0. then invalid_arg "Pruning.box_prune_exact: eps must be positive";
  if Dataset.size data = 0 then data
  else begin
    let d = Dataset.dim data in
    if d > 20 then invalid_arg "Pruning.box_prune_exact: dimension too large";
    check_box ~lo ~hi d;
    let tuples = Dataset.tuples data in
    let eliminated q =
      let qv = Tuple.values q in
      Array.exists
        (fun p ->
          Tuple.id p <> Tuple.id q
          &&
          let w =
            Vec.init d (fun i -> Tuple.get p i -. ((1. +. eps) *. Vec.get qv i))
          in
          min_over_box w ~lo ~hi > 1e-9)
        tuples
    in
    Dataset.filter data (fun q ->
        let out = eliminated q in
        if out then Counter.incr c_corner_hits;
        not out)
    |> emit_stage ~stage:"box_exact" ~before:(Dataset.size data)
  end

(* --- Lemma 2 region pruning and its persistent cross-round store ------- *)

module Store = struct
  (* Certificates carried across rounds of one interaction.  Sound because
     the region only ever shrinks: a cached point that still satisfies
     every cut is still a region point, so whatever it certified (an
     anchor's utility floor, a candidate's non-prunability against an
     anchor) it still certifies — a scalar product decides, and an LP is
     re-issued only when the certificate died.  Pruned candidates never
     re-enter (the filtered dataset is what flows to the next round), so
     prune decisions are monotone by construction. *)
  type t = {
    pair_witnesses : (int * int, Vec.t) Hashtbl.t;
        (* (candidate id, anchor id) -> region point v with
           ((1+eps) b - a) . v >= -tol, i.e. "a cannot prune b" *)
    floor_witnesses : (int, float * Vec.t) Hashtbl.t;
        (* anchor id -> (min a.v over the region, minimizing point) *)
  }

  let create () =
    { pair_witnesses = Hashtbl.create 64; floor_witnesses = Hashtbl.create 8 }
end

(* Is this cached point still inside the region?  (Cached points came from
   LP solves over an ancestor region, so they are on the simplex already;
   only the cuts can invalidate them.) *)
let point_in_cuts poly p =
  List.for_all (fun h -> Halfspace.satisfies h p) (Polytope.halfspaces poly)

(* Above this size the anchor sort is replaced by a top-k selection scan
   over the columnar store (no boxed (score, tuple) array, no O(n log n)
   comparator pass).  The selection returns the same anchor set whenever
   the top-k scores are distinct — the generic case for continuous data —
   with ties resolved to the earliest row; below the threshold the
   historical sort path runs bit-for-bit, so every committed baseline
   keeps its exact tie behavior. *)
let anchor_sort_threshold = 100_000

let anchor_pool ~anchors region data =
  let center = Region.center region in
  let n = Dataset.size data in
  if n <= anchor_sort_threshold then begin
    let scored =
      Array.map
        (fun p -> (Vec.dot (Tuple.values p) center, p))
        (Dataset.tuples data)
    in
    Array.sort (fun (a, _) (b, _) -> Float.compare b a) scored;
    let k = min anchors (Array.length scored) in
    List.init k (fun i -> snd scored.(i))
  end
  else begin
    let flat = Indq_dataset.Store.data (Dataset.store data) in
    let d = Dataset.dim data in
    let k = min anchors n in
    let best_pos = Array.make k (-1) in
    let best_score = Array.make k neg_infinity in
    for pos = 0 to n - 1 do
      (* Identical floats to [Vec.dot (Tuple.values p) center]: same
         elements, same left-to-right accumulation. *)
      let s = Vec.dot_slice flat ~pos:(pos * d) center in
      (* Insert into the descending top-k; strict [>] keeps earlier rows
         ahead on ties. *)
      if s > best_score.(k - 1) then begin
        let j = ref (k - 1) in
        while !j > 0 && s > best_score.(!j - 1) do
          best_score.(!j) <- best_score.(!j - 1);
          best_pos.(!j) <- best_pos.(!j - 1);
          decr j
        done;
        best_score.(!j) <- s;
        best_pos.(!j) <- pos
      end
    done;
    List.init k (fun i -> Dataset.get data best_pos.(i))
  end

(* The shared utility-floor computation: [max_a min_{v in R} a . v] over an
   anchor pool.  One LP per anchor, except that a store remembers each
   anchor's minimizing point from the previous round — if it survived
   every cut since, the cached minimum is still exact (the point attains
   it inside the shrunken region, and shrinking can only raise the
   minimum to that value). *)
let floor_over_pool ?store poly pool =
  let use_store = Polytope.incremental_enabled () in
  (* Complete-vertex floor: when the region's whole vertex set is cheaply
     known (the d = 2 interval endpoints, the d = 3 clipped polygon), an
     anchor's minimum is a dot-product min over it — no LP.  Verdict-grade
     like the rest of the cascade (the floor only feeds threshold
     tests). *)
  let vertices =
    if use_store then
      match Polytope.complete_vertices poly with Some vs -> vs | None -> []
    else []
  in
  List.fold_left
    (fun acc a ->
      let cached =
        match store with
        | Some (s : Store.t) when use_store ->
          (match Hashtbl.find_opt s.floor_witnesses (Tuple.id a) with
          | Some (v, p) when point_in_cuts poly p ->
            Counter.incr c_store_hits;
            Some v
          | _ -> None)
        | _ -> None
      in
      match cached with
      | Some v -> Float.max acc v
      | None -> (
        match vertices with
        | v0 :: rest ->
          Counter.incr c_witness_hits;
          let av = Tuple.values a in
          let min_v, min_p =
            List.fold_left
              (fun (bv, bp) p ->
                let dv = Vec.dot av p in
                if dv < bv then (dv, p) else (bv, bp))
              (Vec.dot av v0, v0) rest
          in
          (match store with
          | Some s ->
            Hashtbl.replace s.floor_witnesses (Tuple.id a) (min_v, min_p)
          | None -> ());
          Float.max acc min_v
        | [] -> (
          Counter.incr c_lp_calls;
          match Polytope.minimize poly (Tuple.values a) with
          | Some (v, p) ->
            (match store with
            | Some s -> Hashtbl.replace s.floor_witnesses (Tuple.id a) (v, p)
            | None -> ());
            Float.max acc v
          | None -> acc)))
    neg_infinity pool

let utility_floor ?store region data =
  if Dataset.size data = 0 then invalid_arg "Pruning.utility_floor: empty dataset";
  if Region.is_empty region then invalid_arg "Pruning.utility_floor: empty region";
  let poly = Region.polytope region in
  let pool = anchor_pool ~anchors:4 region data in
  floor_over_pool ?store poly pool

let region_prune ?(anchors = 4) ?store ~eps region data =
  if eps <= 0. then invalid_arg "Pruning.region_prune: eps must be positive";
  if anchors <= 0 then invalid_arg "Pruning.region_prune: anchors must be positive";
  if Dataset.size data = 0 || Region.is_empty region then data
  else begin
    let poly = Region.polytope region in
    let pool = anchor_pool ~anchors region data in
    let floor_value = floor_over_pool ?store poly pool in
    (* Margin above the LP solver's own accuracy: pruning must only fire
       with clear daylight, keeping the no-false-negative contract under
       float noise. *)
    let tol = 1e-7 in
    let use_store = Polytope.incremental_enabled () in
    (* Witness points of the region: if some witness v has w . v >= 0,
       then max w . v >= 0 and the candidate is provably not prunable via
       that test — no LP needed.  With a complete vertex set (d = 2
       interval endpoints, d = 3 clipped polygon) the witness scan is
       decisive in {i both} directions: a failed disproof evaluated
       max w . v over every vertex, so the candidate is prunable with no
       confirming LP either.  Otherwise the list holds the
       coordinate-extreme vertices and disproof-failures confirm by
       LP. *)
    let bounds, vertex_witnesses = Polytope.coordinate_profile poly in
    let complete =
      if use_store then Polytope.complete_vertices poly else None
    in
    let witnesses =
      match complete with
      | Some vs -> Region.center region :: vs
      | None -> Region.center region :: vertex_witnesses
    in
    let has_complete = Option.is_some complete in
    let hi_corner = Vec.init (Array.length bounds) (fun i -> snd bounds.(i)) in
    let disproved_by_witness w =
      List.exists (fun v -> Vec.dot w v >= -.tol) witnesses
    in
    (* The pair-witness store pays off when a disproof would otherwise
       need an LP.  Beyond d = 2 a complete vertex scan is cheaper than
       the store lookup it replaces — and at 10^7-row scale the store
       would hold millions of entries — so only d = 2 (historical
       behavior) and the LP dimensions use it.  Decisions are unchanged:
       the store only ever short-circuits tests whose outcome the witness
       scan reproduces. *)
    let use_pair_store =
      use_store && (Polytope.dim poly = 2 || not has_complete)
    in
    (* "Anchor a cannot prune candidate b", certified by a cached region
       point from an earlier round when possible. *)
    let stored_witness b_id a_id w =
      match store with
      | Some (s : Store.t) when use_store ->
        (match Hashtbl.find_opt s.pair_witnesses (b_id, a_id) with
        | Some p when point_in_cuts poly p && Vec.dot w p >= -.tol ->
          Counter.incr c_store_hits;
          true
        | Some _ ->
          Hashtbl.remove s.pair_witnesses (b_id, a_id);
          false
        | None -> false)
      | _ -> false
    in
    let remember b_id a_id p =
      match store with
      | Some s when use_store -> Hashtbl.replace s.pair_witnesses (b_id, a_id) p
      | _ -> ()
    in
    (* Hot-loop scratch: [scaled] and [w] are filled in place per
       candidate / per anchor with the exact per-element expressions of
       [Vec.scale] and [Vec.sub], so no Bigarray is allocated per tuple
       (the 10^7-scale rounds live or die on this).  Neither buffer
       escapes: witness tests read them transiently, and the LP branch
       rebuilds its direction freshly (the solver may retain it). *)
    let d = Dataset.dim data in
    let scaled = Vec.make d 0. in
    let w = Vec.make d 0. in
    let c = 1. +. eps in
    (* Positional flat sweep for the complete-vertex dimensions whenever
       the pair store is off (it would be skipped anyway): the same
       per-element expressions in the same order as the generic [prunable]
       below — [scaled_i = c * b_i] from the flat buffer, the hi-corner
       dot, [w_i = scaled_i - a_i] per anchor in pool order, witness dots
       accumulated left to right over [center :: vertices] with the same
       early exits — so every decision is the float-identical Lemma 2
       test.  What it drops is the per-candidate machinery: no tuple
       view / Bigarray-slice allocation per row, no closure per witness,
       and counters bumped once per sweep instead of per test.  The
       10^7-row rounds live or die on this. *)
    let flat_sweep () =
      let n = Dataset.size data in
      let st = Dataset.store data in
      let flat = Vec.buffer (Indq_dataset.Store.data st) in
      let hi = Array.init d (Vec.get hi_corner) in
      let wit =
        Array.of_list
          (List.map (fun v -> Array.init d (Vec.get v)) witnesses)
      in
      let m = Array.length wit in
      let pool_arr = Array.of_list pool in
      let k = Array.length pool_arr in
      let anchor_vals =
        Array.map (fun a -> Array.init d (Tuple.get a)) pool_arr
      in
      let anchor_ids = Array.map Tuple.id pool_arr in
      (* Id column hoisted into a flat int array: [Store.id] boxes an
         int64 per call, so reading it inside [sweep_rows] would put 3
         words per row on the minor heap (the probe counter below caught
         exactly that).  One O(n) pass here keeps the kernel itself
         allocation-free while comparing the very same ids. *)
      let ids = Array.init n (fun pos -> Indq_dataset.Store.id st pos) in
      let scaled = Array.make d 0. in
      let w = Array.make d 0. in
      let scalar_hits = ref 0 in
      let witness_hits = ref 0 in
      let keep_pos = Array.make (max n 1) 0 in
      let kept = ref 0 in
      (* The enforced kernel: every word the per-row Lemma 2 test touches
         lives in the flat buffers and scratch arrays prepared above, so
         the loop itself never allocates.  indq-analyze checks this
         statically (ANA002); [c_sweep_minor] below checks it
         dynamically. *)
      let sweep_rows () =
        for pos = 0 to n - 1 do
        let b_id = ids.(pos) in
        let base = pos * d in
        for i = 0 to d - 1 do
          (* Direct checked Bigarray read, not [Vec.get]: the wrapper is a
             cross-module call, and dev-profile builds (-opaque) never
             inline those, so each call would box its float return — 6
             words per row, caught by the minor-words probe.  The
             primitive compiles to a plain load in every profile. *)
          scaled.(i) <- c *. Bigarray.Array1.get flat (base + i)
        done;
        let hi_dot = ref 0. in
        for i = 0 to d - 1 do
          hi_dot := !hi_dot +. (scaled.(i) *. hi.(i))
        done;
        let prunable =
          if !hi_dot < floor_value -. tol then begin
            incr scalar_hits;
            true
          end
          else begin
            let decided = ref false in
            let ai = ref 0 in
            while (not !decided) && !ai < k do
              if anchor_ids.(!ai) <> b_id then begin
                let av = anchor_vals.(!ai) in
                for i = 0 to d - 1 do
                  w.(i) <- scaled.(i) -. av.(i)
                done;
                let disproved = ref false in
                let j = ref 0 in
                while (not !disproved) && !j < m do
                  let v = wit.(!j) in
                  let acc = ref 0. in
                  for i = 0 to d - 1 do
                    acc := !acc +. (w.(i) *. v.(i))
                  done;
                  if !acc >= -.tol then disproved := true else incr j
                done;
                incr witness_hits;
                if not !disproved then decided := true
              end;
              incr ai
            done;
            !decided
          end
        in
          if not prunable then begin
            keep_pos.(!kept) <- pos;
            incr kept
          end
        done
      [@@indq.alloc_free
        "the 10^7-row hot loop: flat Bigarray reads, scratch-array \
         stores, and local accumulators the backend keeps unboxed; all \
         per-candidate machinery is hoisted into the setup above"]
      in
      let minor_before = Gc.minor_words () in
      sweep_rows ();
      Counter.add c_sweep_minor (Gc.minor_words () -. minor_before);
      Counter.add c_scalar_hits (float_of_int !scalar_hits);
      Counter.add c_witness_hits (float_of_int !witness_hits);
      if !kept = n then data
      else Dataset.select_rows data (Array.sub keep_pos 0 !kept)
    in
    let prunable b =
      let b_id = Tuple.id b in
      let bv = Tuple.values b in
      for i = 0 to d - 1 do
        Vec.set scaled i (c *. Vec.get bv i)
      done;
      (* Cheap sound prune: max (1+eps) b . v <= (1+eps) b . hi_corner. *)
      if Vec.dot scaled hi_corner < floor_value -. tol then begin
        Counter.incr c_scalar_hits;
        true
      end
      else
        List.exists
          (fun a ->
            Tuple.id a <> b_id
            &&
            let av = Tuple.values a in
            let () =
              for i = 0 to d - 1 do
                Vec.set w i (Vec.get scaled i -. Vec.get av i)
              done
            in
            if use_pair_store && stored_witness b_id (Tuple.id a) w then
              false
            else if disproved_by_witness w then begin
              Counter.incr c_witness_hits;
              if use_pair_store then
                (match
                   List.find_opt (fun v -> Vec.dot w v >= -.tol) witnesses
                 with
                | Some v -> remember b_id (Tuple.id a) v
                | None -> ());
              false
            end
            else if has_complete then begin
              (* [witnesses] is the region's complete vertex set, so the
                 failed disproof already evaluated max w . v over every
                 vertex and found it below -tol: prunable with no
                 confirming LP. *)
              Counter.incr c_witness_hits;
              true
            end
            else begin
              Counter.incr c_lp_calls;
              match Polytope.maximize poly (Vec.sub scaled av) with
              | Some (m, p) ->
                if m < -.tol then true
                else begin
                  remember b_id (Tuple.id a) p;
                  false
                end
              | None -> false
            end)
          pool
    in
    (if has_complete && not use_pair_store then flat_sweep ()
     else Dataset.filter data (fun b -> not (prunable b)))
    |> emit_stage ~stage:"lemma2" ~before:(Dataset.size data)
  end
