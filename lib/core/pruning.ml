module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple
module Vec = Indq_linalg.Vec
module Polytope = Indq_geom.Polytope
module Counter = Indq_obs.Counter
module Trace = Indq_obs.Trace

let c_scalar_hits = Counter.make "prune.scalar_hits"
let c_corner_hits = Counter.make "prune.corner_hits"
let c_lp_calls = Counter.make "prune.lp_calls"
let c_witness_hits = Counter.make "prune.witness_hits"

let emit_stage ~stage ~before result =
  Trace.emit_with (fun () ->
      Trace.Prune_stage { stage; before; after = Dataset.size result });
  result

let check_box ~lo ~hi d =
  if Array.length lo <> d || Array.length hi <> d then
    invalid_arg "Pruning: bound dimension mismatch";
  for i = 0 to d - 1 do
    if lo.(i) > hi.(i) then invalid_arg "Pruning: lo > hi"
  done

let box_prune_fast ~eps ~lo ~hi data =
  if eps <= 0. then invalid_arg "Pruning.box_prune_fast: eps must be positive";
  if Dataset.size data = 0 then data
  else begin
    check_box ~lo ~hi (Dataset.dim data);
    let floor_value =
      Array.fold_left
        (fun acc p -> Float.max acc (Vec.dot (Tuple.values p) lo))
        neg_infinity (Dataset.tuples data)
    in
    (* Relative slack so float-rounding can never drop a tuple sitting
       exactly on the threshold. *)
    let slack = 1e-9 *. Float.max 1. (Float.abs floor_value) in
    Dataset.filter data (fun p ->
        let keep =
          (1. +. eps) *. Vec.dot (Tuple.values p) hi >= floor_value -. slack
        in
        if not keep then Counter.incr c_scalar_hits;
        keep)
    |> emit_stage ~stage:"box_fast" ~before:(Dataset.size data)
  end

(* Minimum of the linear form w . v over the box [lo, hi]: the coordinates
   separate, so pick per coordinate whichever corner of [lo_i, hi_i]
   minimizes w_i v_i.  This evaluates the paper's "check all 2^d corners"
   test in O(d). *)
let min_over_box w ~lo ~hi =
  let acc = ref 0. in
  for i = 0 to Array.length w - 1 do
    acc := !acc +. Float.min (w.(i) *. lo.(i)) (w.(i) *. hi.(i))
  done;
  !acc

let box_prune_exact ~eps ~lo ~hi data =
  if eps <= 0. then invalid_arg "Pruning.box_prune_exact: eps must be positive";
  if Dataset.size data = 0 then data
  else begin
    let d = Dataset.dim data in
    if d > 20 then invalid_arg "Pruning.box_prune_exact: dimension too large";
    check_box ~lo ~hi d;
    let tuples = Dataset.tuples data in
    let eliminated q =
      let qv = Tuple.values q in
      Array.exists
        (fun p ->
          Tuple.id p <> Tuple.id q
          &&
          let w =
            Array.init d (fun i -> Tuple.get p i -. ((1. +. eps) *. qv.(i)))
          in
          min_over_box w ~lo ~hi > 1e-9)
        tuples
    in
    Dataset.filter data (fun q ->
        let out = eliminated q in
        if out then Counter.incr c_corner_hits;
        not out)
    |> emit_stage ~stage:"box_exact" ~before:(Dataset.size data)
  end

let anchor_pool ~anchors region data =
  let center = Region.center region in
  let scored =
    Array.map (fun p -> (Vec.dot (Tuple.values p) center, p)) (Dataset.tuples data)
  in
  Array.sort (fun (a, _) (b, _) -> Float.compare b a) scored;
  let k = min anchors (Array.length scored) in
  List.init k (fun i -> snd scored.(i))

let utility_floor region data =
  if Dataset.size data = 0 then invalid_arg "Pruning.utility_floor: empty dataset";
  if Region.is_empty region then invalid_arg "Pruning.utility_floor: empty region";
  let poly = Region.polytope region in
  let pool = anchor_pool ~anchors:4 region data in
  List.fold_left
    (fun acc a ->
      Counter.incr c_lp_calls;
      match Polytope.minimize poly (Tuple.values a) with
      | Some (v, _) -> Float.max acc v
      | None -> acc)
    neg_infinity pool

let region_prune ?(anchors = 4) ~eps region data =
  if eps <= 0. then invalid_arg "Pruning.region_prune: eps must be positive";
  if anchors <= 0 then invalid_arg "Pruning.region_prune: anchors must be positive";
  if Dataset.size data = 0 || Region.is_empty region then data
  else begin
    let poly = Region.polytope region in
    let pool = anchor_pool ~anchors region data in
    let floor_value =
      List.fold_left
        (fun acc a ->
          Counter.incr c_lp_calls;
          match Polytope.minimize poly (Tuple.values a) with
          | Some (v, _) -> Float.max acc v
          | None -> acc)
        neg_infinity pool
    in
    (* Margin above the LP solver's own accuracy: pruning must only fire
       with clear daylight, keeping the no-false-negative contract under
       float noise. *)
    let tol = 1e-7 in
    (* Witness points of the region (coordinate-extreme vertices plus the
       center): if some witness v has w . v >= 0, then max w . v >= 0 and
       the candidate is provably not prunable via that test — no LP
       needed.  Early rounds, when almost nothing is prunable, then cost
       only dot products. *)
    let bounds, vertex_witnesses = Polytope.coordinate_profile poly in
    let witnesses = Region.center region :: vertex_witnesses in
    let hi_corner = Array.map snd bounds in
    let disproved_by_witness w =
      List.exists (fun v -> Vec.dot w v >= -.tol) witnesses
    in
    let prunable b =
      let scaled = Vec.scale (1. +. eps) (Tuple.values b) in
      (* Cheap sound prune: max (1+eps) b . v <= (1+eps) b . hi_corner. *)
      if Vec.dot scaled hi_corner < floor_value -. tol then begin
        Counter.incr c_scalar_hits;
        true
      end
      else
        List.exists
          (fun a ->
            Tuple.id a <> Tuple.id b
            &&
            let w = Vec.sub scaled (Tuple.values a) in
            if disproved_by_witness w then begin
              Counter.incr c_witness_hits;
              false
            end
            else begin
              Counter.incr c_lp_calls;
              match Polytope.maximize poly w with
              | Some (m, _) -> m < -.tol
              | None -> false
            end)
          pool
    in
    Dataset.filter data (fun b -> not (prunable b))
    |> emit_stage ~stage:"lemma2" ~before:(Dataset.size data)
  end
