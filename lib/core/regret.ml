module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple

let optimum ~data u =
  if Dataset.size data = 0 then invalid_arg "Regret: empty dataset";
  let _, best = Dataset.max_utility data u in
  if best <= 0. then invalid_arg "Regret: optimum has non-positive utility";
  best

let tuple_regret ~data u p =
  let best = optimum ~data u in
  1. -. (Tuple.utility p u /. best)

let set_regret ~data u subset =
  if subset = [] then invalid_arg "Regret.set_regret: empty subset";
  let best = optimum ~data u in
  let best_in_subset =
    List.fold_left (fun acc p -> Float.max acc (Tuple.utility p u)) 0. subset
  in
  1. -. (best_in_subset /. best)

let max_regret_ratio ~data ~sample_utilities subset =
  if sample_utilities = [] then
    invalid_arg "Regret.max_regret_ratio: no sample utilities";
  List.fold_left
    (fun acc u -> Float.max acc (set_regret ~data u subset))
    0. sample_utilities

let matches_indistinguishability ~eps u data =
  let threshold = eps /. (1. +. eps) in
  let truth = Indist.query_exact ~eps u data in
  let in_truth = Hashtbl.create (Dataset.size truth) in
  Array.iter (fun p -> Hashtbl.replace in_truth (Tuple.id p) ()) (Dataset.tuples truth);
  Array.for_all
    (fun p ->
      let by_regret = tuple_regret ~data u p <= threshold +. 1e-12 in
      let by_query = Hashtbl.mem in_truth (Tuple.id p) in
      by_regret = by_query)
    (Dataset.tuples data)
