(** The real-tuple interactive algorithms (Algorithm 2) and the UH-Random
    baseline of the evaluation.

    All three share the same skeleton: keep a candidate set [C] (initially
    the [(1+eps)]-skyline, Observation 3), show the user [s] real tuples of
    [C] per round, cut the feasible utility region with the learned
    preference hyperplanes (δ-weakened when the user may err), and prune
    [C] by Lemma 2.  They differ only in how the displayed set is chosen:

    - {b Random} (UH-Random, Xie et al. SIGMOD'19 adapted as in
      Section VII): a uniformly random s-subset of [C];
    - {b MinR}: of [T] random s-subsets, the one minimizing the expected
      post-answer region {i width};
    - {b MinD}: the same with the region {i diameter}.

    Theorem 1 shows no algorithm restricted to real tuples can bound the
    number of false positives, so these are heuristics — but they never
    produce false negatives: every pruning step is justified by Lemma 2. *)

type strategy = Random | MinR | MinD

type result = {
  output : Indq_dataset.Dataset.t;  (** surviving candidates [C] *)
  region : Region.t;  (** final feasible region [R_q] *)
  questions_used : int;
}

val run :
  ?delta:float ->
  ?trials:int ->
  ?anchors:int ->
  ?store:Pruning.Store.t ->
  strategy ->
  data:Indq_dataset.Dataset.t ->
  s:int ->
  q:int ->
  eps:float ->
  oracle:Indq_user.Oracle.t ->
  rng:Indq_util.Rng.t ->
  result
(** [run strategy ~data ~s ~q ~eps ~oracle ~rng] asks at most [q] rounds of
    at most [s] tuples.  [delta] (default 0) selects the weakened update
    rule of Section VI-B and must be an upper bound on the user's real
    error for the no-false-negative guarantee to hold.  [trials] is the
    paper's [T] (default 10, ignored by [Random]).  [anchors] tunes Lemma 2
    pruning (see {!Pruning.region_prune}).  [store] (default: a fresh one
    per call) carries Lemma 2 certificates across the rounds; supply your
    own only to share it across runs over the {i same} shrinking region,
    e.g. when resuming an interaction.

    Rounds end early when one candidate remains.  Raises [Invalid_argument]
    when [s < 2], [q < 0], [eps <= 0], [delta < 0], [trials < 1] or the
    dataset is empty. *)

val uh_random :
  ?delta:float ->
  ?anchors:int ->
  ?store:Pruning.Store.t ->
  data:Indq_dataset.Dataset.t ->
  s:int ->
  q:int ->
  eps:float ->
  oracle:Indq_user.Oracle.t ->
  rng:Indq_util.Rng.t ->
  unit ->
  result
(** [run Random] under its evaluation-section name. *)

val score_display_set :
  ?stop_above:float ->
  delta:float ->
  metric:[ `Width | `Diameter ] ->
  Region.t ->
  Indq_dataset.Tuple.t array ->
  float
(** The MinR/MinD objective for one candidate display set: the average
    metric of the region over each possible user answer (empty posterior
    regions contribute 0).  With [stop_above] (and the incremental engine
    on), scoring aborts — returning [infinity] — as soon as the
    non-negative partial sum proves the final score cannot be strictly
    below the given bound, skipping the remaining posteriors' LPs.
    Exposed for tests. *)
