(** Candidate pruning — the machinery that turns learned utility bounds into
    a small output set while never discarding a member of [I(f, eps)].

    Three testers, matching DESIGN.md:

    - {b box, fast} (Section IV-A): with per-coordinate utility bounds
      [L <= u <= H], compute the utility floor [V = max_p p . L] and drop
      every [p] with [(1+eps) p . H < V].  O(n); the default inside
      Squeeze-u.
    - {b box, exact}: drop [q] when some [p] has
      [(p - (1+eps) q) . v > 0] on all [2^d] corners of the box — the
      paper's full test, exponential in [d]; used on small inputs and as
      ground truth in tests.
    - {b region} (Lemma 2): over a feasible region [R], drop [b] when some
      anchor tuple [a] has [max_{v in R} ((1+eps) b - a) . v < 0].  One LP
      per (candidate, anchor) pair plus a shared scalar floor pre-test.

    The region tester additionally accepts a {!Store.t} that persists across
    the rounds of one interaction.  Because the region only shrinks and
    pruned candidates never re-enter, LP certificates from earlier rounds
    (anchor utility-floor minimizers, per-pair non-prunability witnesses)
    stay valid as long as the witness point survives every later cut — a
    dot product per cut to check — so most re-tests cost no LP at all
    (counted in ["prune.store_hits"]). *)

val box_prune_fast :
  eps:float ->
  lo:Indq_linalg.Vec.t ->
  hi:Indq_linalg.Vec.t ->
  Indq_dataset.Dataset.t ->
  Indq_dataset.Dataset.t
(** The O(n) heuristic filter.  [lo]/[hi] are the [L]/[H] bounds of
    Algorithm 1; requires [lo <= hi] component-wise. *)

val box_prune_exact :
  eps:float ->
  lo:Indq_linalg.Vec.t ->
  hi:Indq_linalg.Vec.t ->
  Indq_dataset.Dataset.t ->
  Indq_dataset.Dataset.t
(** The [2^d n^2] corner test.  Raises [Invalid_argument] for [d > 20]. *)

module Store : sig
  type t
  (** Cross-round prune certificates for one interaction: per-anchor
      utility-floor minimizers and per-(candidate, anchor) non-prunability
      witness points.  Sound to reuse because regions only shrink; see the
      module preamble.  Not thread-safe — use one store per session. *)

  val create : unit -> t
end

val region_prune :
  ?anchors:int ->
  ?store:Store.t ->
  eps:float ->
  Region.t ->
  Indq_dataset.Dataset.t ->
  Indq_dataset.Dataset.t
(** Lemma 2 pruning of a candidate set against a feasible region.
    [anchors] (default 4) is how many high-value tuples are tried as the
    dominating witness [a].  An empty region returns the input unchanged
    (no sound inference is possible from inconsistent answers).
    [store] carries certificates between successive calls over a shrinking
    region; it never changes which candidates survive, only how many LPs
    are issued (and is ignored when {!Indq_geom.Polytope.set_incremental}
    is off). *)

val utility_floor :
  ?store:Store.t -> Region.t -> Indq_dataset.Dataset.t -> float
(** [max_a min_{v in R} a . v] over the anchor pool — a lower bound on the
    utility the user's optimum achieves, used by the scalar pre-test.
    Exposed for tests; shares its implementation (and optional certificate
    store) with {!region_prune}. *)
