(** Uniform front door to the four evaluated algorithms.

    The experiment harness, CLI and examples all run algorithms through this
    module so that configuration, interaction accounting and timing are
    identical across Squeeze-u, UH-Random, MinD and MinR — mirroring the
    "Algorithms" paragraph of Section VII.  When [delta > 0], [Squeeze_u]
    dispatches to Algorithm 3 (the paper also labels those results
    "Squeeze-u"). *)

type name = Squeeze_u | Uh_random | MinD | MinR

type config = {
  s : int;  (** tuples shown per round *)
  q : int;  (** question budget *)
  eps : float;  (** indistinguishability parameter *)
  delta : float;  (** modeled user error (0 = error-free updates) *)
  trials : int;  (** the paper's T, for MinR/MinD *)
  exact_prune : bool;  (** Squeeze-u: exact box-corner final filter *)
}

type run_result = {
  output : Indq_dataset.Dataset.t;
  questions_used : int;
  seconds : float;
      (** wall-clock algorithm time ([Timer.wall]), excluding any real
          user's thinking time only insofar as the oracle answers
          synchronously *)
  metrics : (string * float) list;
      (** per-run deltas of every {!Indq_obs.Counter} (sorted by name):
          what this run added to each of the executing domain's counters *)
  hists : (string * Indq_obs.Histogram.snap) list;
      (** per-run {!Indq_obs.Histogram} deltas (sorted by name), dropping
          histograms this run never observed — e.g. [lp.pivots_per_solve]
          and, when spans are enabled, each span's duration distribution *)
}

val default_config : d:int -> config
(** The paper's defaults: [s = d], [q = 3d], [eps = 0.05], [delta = 0],
    [trials = 10], heuristic pruning. *)

val all : name list
(** In the paper's reporting order:
    [Squeeze_u; Uh_random; MinD; MinR]. *)

val to_string : name -> string
(** Paper spelling: ["Squeeze-u"], ["UH-Random"], ["MinD"], ["MinR"]. *)

val of_string : string -> name
(** Case-insensitive; also accepts ["squeeze_u"], ["uh_random"].  Raises
    [Invalid_argument] on unknown names. *)

val run :
  ?trace:Indq_obs.Trace.sink ->
  name ->
  config ->
  data:Indq_dataset.Dataset.t ->
  oracle:Indq_user.Oracle.t ->
  rng:Indq_util.Rng.t ->
  run_result
(** Execute one algorithm once.  The [rng] drives only algorithmic
    randomness (display-set sampling); user error randomness lives inside
    the oracle.

    The run's whole execution context is explicit: the user via [oracle],
    randomness via [rng], and tracing via [trace] — when given, the sink
    is installed on the calling domain for exactly the duration of the run
    ({!Indq_obs.Trace.with_sink}) and the previous sink is restored after,
    so concurrent runs on different domains trace independently.  Without
    [trace], events flow to the calling domain's ambient sink (usually
    none).  [metrics] are the calling domain's counter deltas — exact under
    domain-parallelism because counters are domain-local. *)
