module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple
module Skyline = Indq_dominance.Skyline
module Oracle = Indq_user.Oracle
module Rng = Indq_util.Rng
module Span = Indq_obs.Span
module Trace = Indq_obs.Trace
module Counter = Indq_obs.Counter

(* Shares the geometry layer's cache counter: a memoized display-set score
   is an incremental-engine hit like any other. *)
let c_cache_hits = Counter.make "poly.cache_hits"

(* Rounds whose posterior region came back empty (contradictory answers
   beyond the modeled delta) or unverifiable (solver failure): the round's
   answer is dropped and the previous sound region kept. *)
let c_collapses = Counter.make "region.collapses"

(* Rounds whose Lemma 2 prune was skipped because the solver failed
   mid-prune; the unpruned candidate set (a superset — always sound) is
   carried to the next round instead. *)
let c_prune_degraded = Counter.make "prune.degraded"

type strategy = Random | MinR | MinD

type result = {
  output : Dataset.t;
  region : Region.t;
  questions_used : int;
}

(* [scored] also returns the posterior regions it built, indexed like
   [display]: when the trial wins the round, the posterior matching the
   oracle's answer becomes the next committed region, carrying its
   memoized cold-exact artifacts instead of being rebuilt from scratch.
   On an aborted trial the tail entries keep the placeholder (the parent
   region); aborted trials score [infinity] and can never win, so those
   entries are never read. *)
let scored ?stop_above ~delta ~metric region display =
  let n = Array.length display in
  if n = 0 then invalid_arg "Real_points.score_display_set: empty display";
  let posteriors = Array.make n region in
  (* Contributions are non-negative, so the running float total is
     monotone nondecreasing (rounding is monotone) and so is division by
     the positive [n]: once [partial /. n >= best], the finished score —
     computed through the very same division — is at least the partial
     mean and fails the caller's strict [<] test.  Aborting there is
     decision-exact, not merely approximate: the trial loses either way,
     only its LPs are skipped.  Only used on the incremental path: the
     cold path must replay the historical computation exactly. *)
  let best_to_beat =
    match stop_above with
    | Some best when Indq_geom.Polytope.incremental_enabled () -> best
    | _ -> infinity
  in
  let nf = float_of_int n in
  let total = ref 0. in
  (* Monotone doom test, shared with the metric folds: width / diameter
     accumulate a running maximum that only grows, so once even the
     partial metric pushes the would-be score past [best_to_beat] the
     remaining directions (and posteriors) cannot rescue the trial. *)
  let doomed acc = (!total +. acc) /. nf >= best_to_beat in
  (try
     for winner_index = 0 to n - 1 do
       let winner = Tuple.values display.(winner_index) in
       let losers = ref [] in
       Array.iteri
         (fun i p ->
           if i <> winner_index then losers := Tuple.values p :: !losers)
         display;
       let posterior = Region.observe ~delta region ~winner ~losers:!losers in
       posteriors.(winner_index) <- posterior;
       let contribution =
         if Region.is_empty posterior then 0.
         else
           match metric with
           | `Width -> Region.width ~stop_when:doomed posterior
           | `Diameter -> Region.diameter ~stop_when:doomed posterior
       in
       total := !total +. contribution;
       if !total /. nf >= best_to_beat then raise Exit
     done;
     total := !total /. nf
   with
  | Exit -> total := infinity
  | Indq_geom.Polytope.Solver_error _ ->
    (* A posterior's metric could not be computed: score the trial
       unusable.  Like an abort, the placeholder posteriors are never
       read because an infinite score cannot win the round. *)
    total := infinity);
  (!total, posteriors)

let score_display_set ?stop_above ~delta ~metric region display =
  fst (scored ?stop_above ~delta ~metric region display)

let pick_display ~strategy ~trials ~delta ~rng region candidates s =
  let n = Dataset.size candidates in
  let count = min s n in
  (* Positional sampling: identical draws and row choices as sampling from
     [Dataset.tuples candidates], but only the [count] sampled views are
     ever built — the 10^7-row rounds cannot afford an n-sized view
     array (or the dense Fisher–Yates behind it) per trial. *)
  let sample () =
    Array.map
      (Dataset.get candidates)
      (Rng.sample_positions_without_replacement rng count n)
  in
  match strategy with
  | Random -> (sample (), [||])
  | MinR | MinD ->
    let metric = if strategy = MinR then `Width else `Diameter in
    (* Prime the committed region's extreme caches once per round: every
       posterior scored below is a cut of [region], so its width /
       diameter queries inherit the parent's ranges as upper-bound hints
       and skip the directions that cannot attain the maximum.  Hint-cache
       only — no effect on which display set wins. *)
    if Indq_geom.Polytope.incremental_enabled () then
      (match metric with
      | `Width -> ignore (Region.width region)
      | `Diameter -> ignore (Region.diameter region));
    (* Per-round score memo: sampling with replacement across trials can
       redraw a display set, and the score is a pure function of (region,
       display), so replaying it from the memo is bit-exact.  A memoized
       [infinity] (aborted trial) stays safe on reuse: the abort certified
       the score is >= the best at that time, and the best only decreases,
       so the repeat would lose its strict [<] test either way. *)
    let seen = Hashtbl.create 16 in
    let key display =
      Array.to_list (Array.map Tuple.id display) |> List.sort compare
    in
    let score_of ?stop_above candidate =
      if not (Indq_geom.Polytope.incremental_enabled ()) then
        (score_display_set ?stop_above ~delta ~metric region candidate, [||])
      else
        let k = key candidate in
        match Hashtbl.find_opt seen k with
        | Some cached ->
          Counter.incr c_cache_hits;
          cached
        | None ->
          let result = scored ?stop_above ~delta ~metric region candidate in
          Hashtbl.replace seen k result;
          result
    in
    let best = ref (sample ()) in
    let best_score, best_posts =
      let score, posts = score_of !best in
      (ref score, ref posts)
    in
    for _ = 2 to trials do
      let candidate = sample () in
      let score, posts = score_of ~stop_above:!best_score candidate in
      if score < !best_score then begin
        best := candidate;
        best_score := score;
        best_posts := posts
      end
    done;
    (!best, !best_posts)

let run ?(delta = 0.) ?(trials = 10) ?(anchors = 4) ?store strategy ~data ~s ~q
    ~eps ~oracle ~rng =
  if s < 2 then invalid_arg "Real_points.run: s must be >= 2";
  if q < 0 then invalid_arg "Real_points.run: negative question budget";
  if eps <= 0. then invalid_arg "Real_points.run: eps must be positive";
  if delta < 0. then invalid_arg "Real_points.run: negative delta";
  if trials < 1 then invalid_arg "Real_points.run: trials must be >= 1";
  if Dataset.size data = 0 then invalid_arg "Real_points.run: empty dataset";
  let questions_before = Oracle.questions_asked oracle in
  let d = Dataset.dim data in
  (* Line 1: Observation 3 pre-filter. *)
  let candidates =
    ref
      (Span.timed "real_points.skyline" (fun () ->
           Skyline.prune_eps_dominated ~eps data))
  in
  Trace.emit_with (fun () ->
      Trace.Prune_stage
        {
          stage = "skyline";
          before = Dataset.size data;
          after = Dataset.size !candidates;
        });
  let region = ref (Region.initial ~d) in
  (* One certificate store for the whole interaction: the region only
     shrinks across rounds, so prune certificates carry over (see
     {!Pruning.Store}). *)
  let store =
    match store with Some s -> s | None -> Pruning.Store.create ()
  in
  let rounds_left = ref q in
  while !rounds_left > 0 && Dataset.size !candidates > 1 do
    let round = q - !rounds_left + 1 in
    Trace.emit_with (fun () ->
        Trace.Round_started { round; candidates = Dataset.size !candidates });
    let display, posteriors =
      Span.timed "real_points.pick_display" (fun () ->
          pick_display ~strategy ~trials ~delta ~rng !region !candidates s)
    in
    if Array.length display >= 2 then begin
      let values = Array.map Tuple.values display in
      let choice = Oracle.choose oracle values in
      (* Line 12: cut the region; keep the old one if the answers were
         inconsistent beyond the modeled delta (empty region admits no
         sound inference).  On the incremental path the winning trial
         already built this exact posterior (same [observe] call), so its
         region — with the memoized cold-exact artifacts paid for during
         scoring — is adopted instead of being rebuilt. *)
      let updated =
        if
          Indq_geom.Polytope.incremental_enabled ()
          && Array.length posteriors = Array.length display
        then posteriors.(choice)
        else begin
          let winner = values.(choice) in
          let losers = ref [] in
          Array.iteri
            (fun i v -> if i <> choice then losers := v :: !losers)
            values;
          Span.timed "real_points.observe" (fun () ->
              Region.observe ~delta !region ~winner ~losers:!losers)
        end
      in
      let empty = Region.is_empty updated in
      Trace.emit_with (fun () ->
          Trace.Region_updated
            {
              round;
              halfspaces =
                List.length
                  (Indq_geom.Polytope.halfspaces (Region.polytope updated));
              empty;
            });
      if not empty then begin
        region := updated;
        (* Line 13: Lemma 2 pruning.  A solver failure mid-prune degrades
           to not pruning this round: the unpruned candidate set is a
           superset of the correctly pruned one, so no tuple the user
           could want is lost. *)
        match
          Span.timed "real_points.lemma2_prune" (fun () ->
              Pruning.region_prune ~anchors ~store ~eps !region !candidates)
        with
        | pruned -> candidates := pruned
        | exception Indq_geom.Polytope.Solver_error _ ->
          Counter.incr c_prune_degraded
      end
      else Counter.incr c_collapses
    end;
    decr rounds_left
  done;
  {
    output = !candidates;
    region = !region;
    questions_used = Oracle.questions_asked oracle - questions_before;
  }

let uh_random ?delta ?anchors ?store ~data ~s ~q ~eps ~oracle ~rng () =
  run ?delta ?anchors ?store Random ~data ~s ~q ~eps ~oracle ~rng
