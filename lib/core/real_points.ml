module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple
module Skyline = Indq_dominance.Skyline
module Oracle = Indq_user.Oracle
module Rng = Indq_util.Rng
module Span = Indq_obs.Span
module Trace = Indq_obs.Trace

type strategy = Random | MinR | MinD

type result = {
  output : Dataset.t;
  region : Region.t;
  questions_used : int;
}

let score_display_set ~delta ~metric region display =
  let n = Array.length display in
  if n = 0 then invalid_arg "Real_points.score_display_set: empty display";
  let total = ref 0. in
  for winner_index = 0 to n - 1 do
    let winner = Tuple.values display.(winner_index) in
    let losers = ref [] in
    Array.iteri
      (fun i p -> if i <> winner_index then losers := Tuple.values p :: !losers)
      display;
    let posterior = Region.observe ~delta region ~winner ~losers:!losers in
    let contribution =
      if Region.is_empty posterior then 0.
      else
        match metric with
        | `Width -> Region.width posterior
        | `Diameter -> Region.diameter posterior
    in
    total := !total +. contribution
  done;
  !total /. float_of_int n

let pick_display ~strategy ~trials ~delta ~rng region candidates s =
  let pool = Dataset.tuples candidates in
  let count = min s (Array.length pool) in
  let sample () = Rng.sample_without_replacement rng count pool in
  match strategy with
  | Random -> sample ()
  | MinR | MinD ->
    let metric = if strategy = MinR then `Width else `Diameter in
    let best = ref (sample ()) in
    let best_score = ref (score_display_set ~delta ~metric region !best) in
    for _ = 2 to trials do
      let candidate = sample () in
      let score = score_display_set ~delta ~metric region candidate in
      if score < !best_score then begin
        best := candidate;
        best_score := score
      end
    done;
    !best

let run ?(delta = 0.) ?(trials = 10) ?(anchors = 4) strategy ~data ~s ~q ~eps
    ~oracle ~rng =
  if s < 2 then invalid_arg "Real_points.run: s must be >= 2";
  if q < 0 then invalid_arg "Real_points.run: negative question budget";
  if eps <= 0. then invalid_arg "Real_points.run: eps must be positive";
  if delta < 0. then invalid_arg "Real_points.run: negative delta";
  if trials < 1 then invalid_arg "Real_points.run: trials must be >= 1";
  if Dataset.size data = 0 then invalid_arg "Real_points.run: empty dataset";
  let questions_before = Oracle.questions_asked oracle in
  let d = Dataset.dim data in
  (* Line 1: Observation 3 pre-filter. *)
  let candidates =
    ref
      (Span.timed "real_points.skyline" (fun () ->
           Skyline.prune_eps_dominated ~eps data))
  in
  Trace.emit_with (fun () ->
      Trace.Prune_stage
        {
          stage = "skyline";
          before = Dataset.size data;
          after = Dataset.size !candidates;
        });
  let region = ref (Region.initial ~d) in
  let rounds_left = ref q in
  while !rounds_left > 0 && Dataset.size !candidates > 1 do
    let round = q - !rounds_left + 1 in
    Trace.emit_with (fun () ->
        Trace.Round_started { round; candidates = Dataset.size !candidates });
    let display =
      Span.timed "real_points.pick_display" (fun () ->
          pick_display ~strategy ~trials ~delta ~rng !region !candidates s)
    in
    if Array.length display >= 2 then begin
      let values = Array.map Tuple.values display in
      let choice = Oracle.choose oracle values in
      let winner = values.(choice) in
      let losers = ref [] in
      Array.iteri (fun i v -> if i <> choice then losers := v :: !losers) values;
      (* Line 12: cut the region; keep the old one if the answers were
         inconsistent beyond the modeled delta (empty region admits no
         sound inference). *)
      let updated =
        Span.timed "real_points.observe" (fun () ->
            Region.observe ~delta !region ~winner ~losers:!losers)
      in
      let empty = Region.is_empty updated in
      Trace.emit_with (fun () ->
          Trace.Region_updated
            {
              round;
              halfspaces =
                List.length
                  (Indq_geom.Polytope.halfspaces (Region.polytope updated));
              empty;
            });
      if not empty then begin
        region := updated;
        (* Line 13: Lemma 2 pruning. *)
        candidates :=
          Span.timed "real_points.lemma2_prune" (fun () ->
              Pruning.region_prune ~anchors ~eps !region !candidates)
      end
    end;
    decr rounds_left
  done;
  {
    output = !candidates;
    region = !region;
    questions_used = Oracle.questions_asked oracle - questions_before;
  }

let uh_random ?delta ?anchors ~data ~s ~q ~eps ~oracle ~rng () =
  run ?delta ?anchors Random ~data ~s ~q ~eps ~oracle ~rng
