module Polytope = Indq_geom.Polytope
module Halfspace = Indq_geom.Halfspace
module Counter = Indq_obs.Counter
module Histogram = Indq_obs.Histogram

let c_halfspaces = Counter.make "region.halfspaces"

(* Cuts added per observed answer — integer-valued, so the distribution
   (and its sum) merges exactly across worker domains. *)
let h_halfspaces_per_round = Histogram.make "region.halfspaces_per_round"

type t = { polytope : Polytope.t; questions : int }

let initial ~d = { polytope = Polytope.simplex d; questions = 0 }

let dim t = Polytope.dim t.polytope

let observe ?(delta = 0.) t ~winner ~losers =
  let cuts =
    List.map
      (fun loser -> Halfspace.of_preference ~delta ~winner ~loser ())
      losers
  in
  match cuts with
  | [] -> t
  | _ ->
    Counter.add c_halfspaces (float_of_int (List.length cuts));
    Histogram.observe h_halfspaces_per_round
      (float_of_int (List.length cuts));
    {
      polytope = Polytope.cut_many t.polytope cuts;
      questions = t.questions + 1;
    }

let polytope t = t.polytope

let is_empty t = Polytope.is_empty t.polytope

let width ?stop_when t = Polytope.width ?stop_when t.polytope

let diameter ?stop_when t = Polytope.diameter ?stop_when t.polytope

let center t = Polytope.center_estimate t.polytope

let questions_recorded t = t.questions
