module Dataset = Indq_dataset.Dataset
module Vec = Indq_linalg.Vec
module Skyline = Indq_dominance.Skyline
module Oracle = Indq_user.Oracle
module Span = Indq_obs.Span
module Trace = Indq_obs.Trace

type result = {
  output : Dataset.t;
  lo : Vec.t;
  hi : Vec.t;
  i_star : int;
  questions_used : int;
}

let chi_ladder ~lo ~hi ~s =
  if s < 1 then invalid_arg "Squeeze_u.chi_ladder: s must be >= 1";
  Array.init (s + 1) (fun j ->
      lo +. (float_of_int j *. (hi -. lo) /. float_of_int s))

(* Line 14: p_k has k/s in coordinate i, the tail-average of the chi ladder
   in coordinate i*, and 0 elsewhere (k is 1-based). *)
let ladder_points ~d ~s ~i ~i_star ~chi =
  if i = i_star then invalid_arg "Squeeze_u.ladder_points: i = i*";
  Array.init s (fun k0 ->
      let k = k0 + 1 in
      let p = Vec.make d 0. in
      let tail = ref 0. in
      for l = k to s - 1 do
        tail := !tail +. chi.(l)
      done;
      Vec.set p i_star (!tail /. float_of_int s);
      Vec.set p i (float_of_int k /. float_of_int s);
      p)

(* Phase 1 (Lines 2-8): tournament over the e_i points to find i*.
   [questions] is the remaining budget; returns (i_star, questions_left).
   [candidates] (default 0) is only reported in trace events. *)
let discover_i_star ?(candidates = 0) ~d ~s ~make_point ~oracle ~budget () =
  let i_star = ref 0 in
  let i = ref 1 in
  let budget = ref budget in
  let round = ref 0 in
  while !i < d && !budget > 0 do
    incr round;
    Trace.emit_with (fun () ->
        Trace.Round_started { round = !round; candidates });
    let count = min (s - 1) (d - !i) in
    let display =
      Array.init (count + 1) (fun k ->
          if k = 0 then make_point !i_star else make_point (!i + k - 1))
    in
    let choice = Oracle.choose oracle display in
    if choice > 0 then i_star := !i + choice - 1;
    i := !i + count;
    decr budget
  done;
  (!i_star, !budget)

(* Phase 2 round for dimension [i]: show the ladder, narrow [L_i, H_i] by a
   factor of s (Lines 13-16).  [update] receives the 1-based choice. *)
let ladder_round ~d ~s ~i ~i_star ~lo ~hi ~oracle ~update =
  let chi = chi_ladder ~lo:lo.(i) ~hi:hi.(i) ~s in
  let display = ladder_points ~d ~s ~i ~i_star ~chi in
  let c = Oracle.choose oracle display + 1 in
  update ~chi ~c

let run ?(exact_prune = false) ~data ~s ~q ~eps ~oracle () =
  if s < 2 then invalid_arg "Squeeze_u.run: s must be >= 2";
  if q < 0 then invalid_arg "Squeeze_u.run: negative question budget";
  if eps <= 0. then invalid_arg "Squeeze_u.run: eps must be positive";
  if Dataset.size data = 0 then invalid_arg "Squeeze_u.run: empty dataset";
  let questions_before = Oracle.questions_asked oracle in
  let d = Dataset.dim data in
  (* Line 1: Observation 3 pre-filter. *)
  let candidates =
    Span.timed "squeeze_u.skyline" (fun () ->
        Skyline.prune_eps_dominated ~eps data)
  in
  Trace.emit_with (fun () ->
      Trace.Prune_stage
        {
          stage = "skyline";
          before = Dataset.size data;
          after = Dataset.size candidates;
        });
  let n_candidates = Dataset.size candidates in
  (* Lines 2-3: the e_i display points from the data ranges. *)
  let ranges = Dataset.attribute_ranges candidates in
  let make_point i =
    Vec.init d (fun j ->
        let m_j, big_m_j = ranges.(j) in
        if j = i then m_j +. ((big_m_j -. m_j) /. 2.) else m_j)
  in
  let i_star, remaining =
    if d = 1 then (0, q)
    else
      Span.timed "squeeze_u.phase1" (fun () ->
          discover_i_star ~candidates:n_candidates ~d ~s ~make_point ~oracle
            ~budget:q ())
  in
  (* Line 9: initial bounds relative to u_{i*} = 1.  The paper sets
     H_j = 1, which is only valid when every attribute spans the same
     range: the phase-1 tournament actually establishes
     u_{i_star} * spread(i_star) >= u_j (M_j - m_j), i.e.
     u_j / u_{i*} <= spread(i_star) / spread(j).  We use that provable bound
     (equal to 1 on equal-range data), so the no-false-negative contract
     holds on arbitrarily normalized inputs.  If the question budget cut
     the tournament short, nothing is known and the bound stays at the
     cap. *)
  let spread j =
    let m_j, big_m_j = ranges.(j) in
    big_m_j -. m_j
  in
  let phase1_questions = if d = 1 then 0 else ((d - 2) / (s - 1)) + 1 in
  let phase1_complete = q >= phase1_questions in
  let ratio_cap = 1e6 in
  let initial_hi j =
    if not phase1_complete then ratio_cap
    else if spread j <= 1e-12 then ratio_cap
    else Float.min ratio_cap (spread i_star /. spread j)
  in
  let lo = Array.make d 0. in
  let hi = Array.init d initial_hi in
  lo.(i_star) <- 1.;
  hi.(i_star) <- 1.;
  (* Lines 10-17: cycle through the other dimensions. *)
  let remaining = ref remaining in
  let round = ref (q - !remaining) in
  let i = ref (if i_star = 0 && d > 1 then 1 else 0) in
  Span.timed "squeeze_u.ladder" (fun () ->
      while d > 1 && !remaining > 0 do
        incr round;
        Trace.emit_with (fun () ->
            Trace.Round_started { round = !round; candidates = n_candidates });
        ladder_round ~d ~s ~i:!i ~i_star ~lo ~hi ~oracle
          ~update:(fun ~chi ~c ->
            lo.(!i) <- chi.(c - 1);
            hi.(!i) <- chi.(c));
        decr remaining;
        (* Advance to the next dimension, skipping i*. *)
        let next = ref ((!i + 1) mod d) in
        if !next = i_star then next := (!next + 1) mod d;
        i := !next
      done);
  (* Lines 18-21: prune with the learned box. *)
  let lo = Vec.of_array lo and hi = Vec.of_array hi in
  let output =
    Span.timed "squeeze_u.box_prune" (fun () ->
        if exact_prune then Pruning.box_prune_exact ~eps ~lo ~hi candidates
        else Pruning.box_prune_fast ~eps ~lo ~hi candidates)
  in
  {
    output;
    lo;
    hi;
    i_star;
    questions_used = Oracle.questions_asked oracle - questions_before;
  }
