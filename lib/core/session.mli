(** Incremental driver for building interactive front ends.

    {!Algo.run} drives the whole interaction loop itself, which suits
    simulations; a UI instead wants to {i be} the user: receive one round of
    options, render them, send back a choice, repeat.  [Session] inverts
    control over the unchanged, fully-tested algorithms using OCaml 5
    effects — the algorithm runs as a coroutine that suspends at every
    question.

    {[
      let session = Session.start Algo.Squeeze_u config ~data ~rng in
      let rec loop () =
        match Session.current session with
        | Session.Asking options ->
          let choice = render_and_ask options in
          Session.answer session choice;
          loop ()
        | Session.Finished result -> result
      in
      loop ()
    ]} *)

type t

type state =
  | Asking of float array array
      (** the options to show for the current question *)
  | Finished of Algo.run_result

val start :
  ?trace:Indq_obs.Trace.sink ->
  Algo.name ->
  Algo.config ->
  data:Indq_dataset.Dataset.t ->
  rng:Indq_util.Rng.t ->
  t
(** Begin a run.  The algorithm executes up to its first question (or to
    completion if it never needs one).  [trace] receives the run's
    structured events, exactly as {!Algo.run}[ ?trace] would — note the
    sink fires from inside the suspended coroutine, i.e. during {!start}
    and each {!answer} call. *)

val current : t -> state

val answer : t -> int -> unit
(** Answer the pending question with the index of the chosen option.
    Raises [Invalid_argument] if the session is finished or the index is
    out of range for the pending options. *)

val questions_asked : t -> int

val result : t -> Algo.run_result option
(** [Some] once finished. *)
