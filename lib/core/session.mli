(** Incremental driver for building interactive front ends.

    {!Algo.run} drives the whole interaction loop itself, which suits
    simulations; a UI instead wants to {i be} the user: receive one round of
    options, render them, send back a choice, repeat.  [Session] inverts
    control over the unchanged, fully-tested algorithms using OCaml 5
    effects — the algorithm runs as a coroutine that suspends at every
    question.

    {[
      let session = Session.start Algo.Squeeze_u config ~data ~rng in
      let rec loop () =
        match Session.current session with
        | Session.Asking options ->
          let choice = render_and_ask options in
          Session.answer session choice;
          loop ()
        | Session.Finished result -> result
      in
      loop ()
    ]}

    {b Crash recovery.}  A session started with [?journal] writes one
    record {i ahead} of every state change: a header fingerprinting the run
    (algorithm, config, data shape) and then each accepted answer, as one
    JSON object per line (the trace stream's JSONL idiom).  {!resume}
    replays a journal through the same coroutine machinery to reconstruct a
    crashed session — and because every algorithm is a deterministic
    function of (config, data, rng, answers), the reconstruction is
    byte-identical to the uninterrupted run.  Journal writes are counted in
    ["journal.records"], replayed answers in ["journal.replayed"], and the
    replay runs under the ["session.replay"] span. *)

type t

type error =
  | Already_finished
      (** {!answer} on a session whose algorithm already returned *)
  | Choice_out_of_range of { choice : int; options : int }
      (** {!answer} with an index outside the pending options *)
  | Journal_corrupt of { line : int; text : string }
      (** a journal line that does not parse as a journal record *)
  | Journal_mismatch of { round : int; reason : string }
      (** a parsed journal that contradicts the resume arguments or the
          replayed session (wrong algorithm or config fingerprint, wrong
          option count at a round, records after the run finished) *)

exception Error of error
(** The one exception this module raises for misuse and recovery failures. *)

val error_message : error -> string

type state =
  | Asking of Indq_linalg.Vec.t array
      (** the options to show for the current question *)
  | Finished of Algo.run_result

type journal_entry =
  | Started of {
      algo : string;
      s : int;
      q : int;
      eps : float;
      delta : float;
      trials : int;
      exact_prune : bool;
      n : int;
      d : int;
    }  (** run fingerprint, written once when the session starts *)
  | Answered of { round : int; options : int; choice : int }
      (** an accepted answer, written before the coroutine consumes it *)

val journal_entry_to_json : journal_entry -> string
(** One JSON object, no trailing newline. *)

val journal_of_string : ?strict:bool -> string -> journal_entry list
(** Parse a journal read back from disk (one record per line; blank lines
    ignored).  A record line must be a complete flat JSON object (closing
    brace included) — a byte-truncated record never parses, even when the
    chopped text would scan, so crash recovery can never replay an answer
    the user did not give.

    A crash mid-append leaves exactly one truncated final line.  By
    default ([strict = false]) that torn tail is dropped, counted in
    ["journal.torn_tail"], and parsing recovers to the last complete
    record.  Unparseable lines {e before} the last record always raise
    {!Error} ([Journal_corrupt]) — sequential appends cannot tear mid-file,
    so that is real corruption.  [~strict:true] keeps the historical
    behavior: the first unparseable line raises, tail included. *)

val start :
  ?trace:Indq_obs.Trace.sink ->
  ?journal:(journal_entry -> unit) ->
  Algo.name ->
  Algo.config ->
  data:Indq_dataset.Dataset.t ->
  rng:Indq_util.Rng.t ->
  t
(** Begin a run.  The algorithm executes up to its first question (or to
    completion if it never needs one).  [trace] receives the run's
    structured events, exactly as {!Algo.run}[ ?trace] would — note the
    sink fires from inside the suspended coroutine, i.e. during {!start}
    and each {!answer} call.  [journal] receives the write-ahead journal
    records; persist each one (with a newline) before showing the user the
    next question and the session survives any crash. *)

val resume :
  ?trace:Indq_obs.Trace.sink ->
  ?journal:(journal_entry -> unit) ->
  journal_entry list ->
  Algo.name ->
  Algo.config ->
  data:Indq_dataset.Dataset.t ->
  rng:Indq_util.Rng.t ->
  t
(** [resume entries name config ~data ~rng] reconstructs a session from a
    journal: validates the header against the supplied arguments (which
    must be the originals — the journal stores only a fingerprint, not the
    dataset or the RNG), starts the coroutine afresh and replays every
    journaled answer.  The resulting session is byte-identical to one that
    ran the same answers without interruption — same pending options or
    final result, same question count.  Replayed answers are not re-emitted
    to [journal]; answers given after the resume are.  Raises {!Error} on
    any inconsistency. *)

val current : t -> state

val answer : t -> int -> unit
(** Answer the pending question with the index of the chosen option.
    Raises {!Error} ([Already_finished] / [Choice_out_of_range]) on
    misuse. *)

val questions_asked : t -> int

val result : t -> Algo.run_result option
(** [Some] once finished. *)
