module Oracle = Indq_user.Oracle

type state =
  | Asking of float array array
  | Finished of Algo.run_result

(* The algorithm coroutine performs [Ask] at each question; the session
   stores the one-shot continuation and resumes it on [answer]. *)
type _ Effect.t += Ask : float array array -> int Effect.t

type suspended =
  | Pending of (int, state) Effect.Deep.continuation
  | Done

type t = {
  mutable state : state;
  mutable resume : suspended;
  mutable questions : int;
}

let start ?trace name config ~data ~rng =
  let session =
    { state = Asking [||]; resume = Done; questions = 0 }
  in
  let oracle = Oracle.of_chooser (fun options -> Effect.perform (Ask options)) in
  let final =
    Effect.Deep.match_with
      (fun () -> Algo.run ?trace name config ~data ~oracle ~rng)
      ()
      {
        retc = (fun result -> Finished result);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Ask options ->
              Some
                (fun (k : (a, state) Effect.Deep.continuation) ->
                  session.resume <- Pending k;
                  Asking options)
            | _ -> None);
      }
  in
  session.state <- final;
  session

let current t = t.state

let questions_asked t = t.questions

let result t = match t.state with Finished r -> Some r | Asking _ -> None

let answer t choice =
  match (t.state, t.resume) with
  | Finished _, _ | _, Done ->
    invalid_arg "Session.answer: session already finished"
  | Asking options, Pending k ->
    if choice < 0 || choice >= Array.length options then
      invalid_arg "Session.answer: choice out of range";
    t.resume <- Done;
    t.questions <- t.questions + 1;
    let next = Effect.Deep.continue k choice in
    t.state <- next
