module Oracle = Indq_user.Oracle
module Dataset = Indq_dataset.Dataset
module Counter = Indq_obs.Counter
module Span = Indq_obs.Span
module Histogram = Indq_obs.Histogram
module Timer = Indq_util.Timer

let c_records = Counter.make "journal.records"
let c_replayed = Counter.make "journal.replayed"
let c_torn_tail = Counter.make "journal.torn_tail"

(* Wall seconds between accepting an answer and yielding the next question
   (or finishing) — the interactive round latency the ROADMAP's session
   server will serve p99s from. *)
let h_round_latency = Histogram.make ~unit_:Seconds "session.round_latency"

type error =
  | Already_finished
  | Choice_out_of_range of { choice : int; options : int }
  | Journal_corrupt of { line : int; text : string }
  | Journal_mismatch of { round : int; reason : string }

exception Error of error

let error_message = function
  | Already_finished -> "Session.answer: session already finished"
  | Choice_out_of_range { choice; options } ->
    Printf.sprintf
      "Session.answer: choice %d out of range for %d options" choice options
  | Journal_corrupt { line; text } ->
    Printf.sprintf "Session journal: unparseable record on line %d: %s" line
      text
  | Journal_mismatch { round; reason } ->
    Printf.sprintf "Session.resume: journal mismatch at round %d: %s" round
      reason

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Indq_core.Session.Error: " ^ error_message e)
    | _ -> None)

(* --- Write-ahead journal ------------------------------------------------ *)

type journal_entry =
  | Started of {
      algo : string;
      s : int;
      q : int;
      eps : float;
      delta : float;
      trials : int;
      exact_prune : bool;
      n : int;
      d : int;
    }
  | Answered of { round : int; options : int; choice : int }

(* One JSON object per line, mirroring the trace stream's hand-rolled
   format (lib/obs/trace.ml).  Floats print with %.17g so [eps]/[delta]
   survive the round-trip bit-exactly — resume compares them against the
   caller's config. *)
let float_token x = Printf.sprintf "%.17g" x

let journal_entry_to_json = function
  | Started { algo; s; q; eps; delta; trials; exact_prune; n; d } ->
    Printf.sprintf
      {|{"type":"session_started","algo":"%s","s":%d,"q":%d,"eps":%s,"delta":%s,"trials":%d,"exact_prune":%b,"n":%d,"d":%d}|}
      algo s q (float_token eps) (float_token delta) trials exact_prune n d
  | Answered { round; options; choice } ->
    Printf.sprintf
      {|{"type":"answered","round":%d,"options":%d,"choice":%d}|} round
      options choice

(* Minimal field scanners in the trace parser's idiom: locate ["key":] and
   read the token after it.  Algorithm names contain no quotes or escapes,
   so string values run to the next double quote. *)
let find_key line key =
  let pat = "\"" ^ key ^ "\":" in
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pat then Some (i + m)
    else go (i + 1)
  in
  go 0

let scalar_field line key =
  match find_key line key with
  | None -> None
  | Some start ->
    let n = String.length line in
    let stop = ref start in
    while
      !stop < n && (match line.[!stop] with ',' | '}' -> false | _ -> true)
    do
      incr stop
    done;
    Some (String.sub line start (!stop - start))

let string_field line key =
  match find_key line key with
  | None -> None
  | Some start when start < String.length line && line.[start] = '"' ->
    let stop = ref (start + 1) in
    let n = String.length line in
    while !stop < n && line.[!stop] <> '"' do
      incr stop
    done;
    if !stop < n then Some (String.sub line (start + 1) (!stop - start - 1))
    else None
  | Some _ -> None

let int_field line key = Option.bind (scalar_field line key) int_of_string_opt

let float_field line key =
  Option.bind (scalar_field line key) float_of_string_opt

let bool_field line key =
  Option.bind (scalar_field line key) bool_of_string_opt

let journal_entry_of_json_line ~line text =
  let corrupt () = raise (Error (Journal_corrupt { line; text })) in
  let req = function Some v -> v | None -> corrupt () in
  (* Completeness fence: every record is a single flat object, so a line
     that does not close its brace is a torn append, never a valid record.
     Without this check a record chopped inside its final numeric field
     ("choice":12 torn to "choice":1) would parse to a DIFFERENT record —
     fatal for crash recovery, which must only ever replay answers the
     user actually gave. *)
  let n = String.length text in
  if n < 2 || text.[0] <> '{' || text.[n - 1] <> '}' then corrupt ();
  match string_field text "type" with
  | Some "session_started" ->
    Started
      {
        algo = req (string_field text "algo");
        s = req (int_field text "s");
        q = req (int_field text "q");
        eps = req (float_field text "eps");
        delta = req (float_field text "delta");
        trials = req (int_field text "trials");
        exact_prune = req (bool_field text "exact_prune");
        n = req (int_field text "n");
        d = req (int_field text "d");
      }
  | Some "answered" ->
    Answered
      {
        round = req (int_field text "round");
        options = req (int_field text "options");
        choice = req (int_field text "choice");
      }
  | Some _ | None -> corrupt ()

(* A crash mid-append leaves a truncated final line.  By default that tail
   is dropped and counted in ["journal.torn_tail"] — the journal recovers
   to the last complete record, which write-ahead ordering guarantees is a
   state the user actually reached.  Unparseable lines anywhere BEFORE the
   last record can only mean real corruption (appends are sequential), so
   they always raise.  [~strict:true] restores the raise-on-any-bad-line
   behavior for callers that need tampering to be loud. *)
let journal_of_string ?(strict = false) text =
  let numbered =
    String.split_on_char '\n' text
    |> List.mapi (fun i line -> (i + 1, String.trim line))
    |> List.filter (fun (_, line) -> line <> "")
  in
  let rec go = function
    | [] -> []
    | [ (line, last) ] -> (
      match journal_entry_of_json_line ~line last with
      | entry -> [ entry ]
      | exception Error (Journal_corrupt _) when not strict ->
        Counter.incr c_torn_tail;
        [])
    | (line, text) :: rest ->
      journal_entry_of_json_line ~line text :: go rest
  in
  go numbered

(* --- The session coroutine --------------------------------------------- *)

type state =
  | Asking of Indq_linalg.Vec.t array
  | Finished of Algo.run_result

(* The algorithm coroutine performs [Ask] at each question; the session
   stores the one-shot continuation and resumes it on [answer]. *)
type _ Effect.t += Ask : Indq_linalg.Vec.t array -> int Effect.t

type suspended =
  | Pending of (int, state) Effect.Deep.continuation
  | Done

type t = {
  mutable state : state;
  mutable resume : suspended;
  mutable questions : int;
  mutable journal : (journal_entry -> unit) option;
}

let record t entry =
  match t.journal with
  | None -> ()
  | Some emit ->
    Counter.incr c_records;
    emit entry

let header name (config : Algo.config) ~data =
  Started
    {
      algo = Algo.to_string name;
      s = config.Algo.s;
      q = config.Algo.q;
      eps = config.Algo.eps;
      delta = config.Algo.delta;
      trials = config.Algo.trials;
      exact_prune = config.Algo.exact_prune;
      n = Dataset.size data;
      d = Dataset.dim data;
    }

let start ?trace ?journal name config ~data ~rng =
  let session =
    { state = Asking [||]; resume = Done; questions = 0; journal }
  in
  record session (header name config ~data);
  let oracle = Oracle.of_chooser (fun options -> Effect.perform (Ask options)) in
  let final =
    Effect.Deep.match_with
      (fun () -> Algo.run ?trace name config ~data ~oracle ~rng)
      ()
      {
        retc = (fun result -> Finished result);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Ask options ->
              Some
                (fun (k : (a, state) Effect.Deep.continuation) ->
                  session.resume <- Pending k;
                  Asking options)
            | _ -> None);
      }
  in
  session.state <- final;
  session

let current t = t.state

let questions_asked t = t.questions

let result t = match t.state with Finished r -> Some r | Asking _ -> None

let answer t choice =
  match (t.state, t.resume) with
  | Finished _, _ | _, Done -> raise (Error Already_finished)
  | Asking options, Pending k ->
    if choice < 0 || choice >= Array.length options then
      raise
        (Error
           (Choice_out_of_range { choice; options = Array.length options }));
    (* Write-ahead: journal the answer before the coroutine consumes it, so
       a crash at any point during the resulting computation replays to a
       state at least as advanced as this round. *)
    record t
      (Answered
         {
           round = t.questions + 1;
           options = Array.length options;
           choice;
         });
    t.resume <- Done;
    t.questions <- t.questions + 1;
    let started = Timer.wall () in
    t.state <- Effect.Deep.continue k choice;
    Histogram.observe h_round_latency (Timer.wall () -. started)

let mismatch ~round reason = raise (Error (Journal_mismatch { round; reason }))

(* Validate a journal header against the arguments of the resume call.  The
   journal cannot carry the dataset or the RNG, so the caller must supply
   the originals; the header fingerprint catches the obvious drifts. *)
let check_header h name (config : Algo.config) ~data =
  match h with
  | Answered _ ->
    mismatch ~round:0 "journal does not begin with a session_started record"
  | Started { algo; s; q; eps; delta; trials; exact_prune; n; d } ->
    let want fmt = Printf.sprintf fmt in
    if algo <> Algo.to_string name then
      mismatch ~round:0
        (want "journal is for algorithm %s, resume requested %s" algo
           (Algo.to_string name));
    if s <> config.Algo.s || q <> config.Algo.q then
      mismatch ~round:0
        (want "journal config (s=%d, q=%d) differs from (s=%d, q=%d)" s q
           config.Algo.s config.Algo.q);
    if
      (not (Float.equal eps config.Algo.eps))
      || not (Float.equal delta config.Algo.delta)
    then
      mismatch ~round:0
        (want "journal config (eps=%g, delta=%g) differs from (eps=%g, delta=%g)"
           eps delta config.Algo.eps config.Algo.delta);
    if trials <> config.Algo.trials then
      mismatch ~round:0
        (want "journal config (trials=%d) differs from (trials=%d)" trials
           config.Algo.trials);
    if exact_prune <> config.Algo.exact_prune then
      mismatch ~round:0 "journal config exact_prune flag differs";
    if n <> Dataset.size data || d <> Dataset.dim data then
      mismatch ~round:0
        (want "journal data shape (n=%d, d=%d) differs from (n=%d, d=%d)" n d
           (Dataset.size data) (Dataset.dim data))

let resume ?trace ?journal entries name config ~data ~rng =
  match entries with
  | [] -> mismatch ~round:0 "empty journal"
  | h :: answers ->
    check_header h name config ~data;
    (* Start without the journal sink: replayed answers must not be
       re-recorded (the caller typically appends to the same file). *)
    let t = start ?trace name config ~data ~rng in
    Span.timed "session.replay" (fun () ->
        List.iter
          (fun entry ->
            match entry with
            | Started _ ->
              mismatch ~round:(t.questions + 1)
                "unexpected second session_started record"
            | Answered { round; options; choice } -> (
              if round <> t.questions + 1 then
                mismatch ~round
                  (Printf.sprintf "expected round %d next" (t.questions + 1));
              match t.state with
              | Finished _ ->
                mismatch ~round "journal continues after the run finished"
              | Asking opts ->
                if Array.length opts <> options then
                  mismatch ~round
                    (Printf.sprintf
                       "journal shows %d options, session asks %d" options
                       (Array.length opts));
                Counter.incr c_replayed;
                answer t choice))
          answers);
    (* Future answers journal normally. *)
    t.journal <- journal;
    t
