(** Squeeze-u2 (Algorithm 3): artificial tuples with a δ-erring user.

    The structure mirrors {!Squeeze_u} with three changes that make the
    inference sound when the user may pick any option
    δ-indistinguishable from their true favorite (Section VI-A):

    - phase 1 displays the {i unit} vectors [e_i], and the discovered [i*]
      may undershoot the true maximum by a [(1+delta)^ceil((d-1)/(s-1))]
      factor, so every other upper bound starts at that value rather than 1;
    - the ladder updates use the δ-robust bounds of Theorem 3:
      [L_i >= (chi_{c-1} - delta * sum_{j>=c} chi_j) / (1 + c delta)] and
      [H_i <= (chi_c + delta * sum_{j>=c} chi_j) / (1 - c delta)]
      (the [H] update is skipped in the degenerate case [1 - c delta <= 0]);
    - bounds only ever tighten (max/min with the previous value), so the
      interval stalls once the δ-noise floor of Theorem 3 is reached.

    Guarantee (Theorem 3): an [O(d delta s)]-approximation of [I]. *)

type result = {
  output : Indq_dataset.Dataset.t;
  lo : Indq_linalg.Vec.t;
  hi : Indq_linalg.Vec.t;
  i_star : int;
  questions_used : int;
}

val run :
  ?exact_prune:bool ->
  data:Indq_dataset.Dataset.t ->
  s:int ->
  q:int ->
  eps:float ->
  delta:float ->
  oracle:Indq_user.Oracle.t ->
  unit ->
  result
(** Raises [Invalid_argument] when [s < 2], [q < 0], [eps <= 0],
    [delta < 0] or the dataset is empty.  [delta = 0.] reduces exactly to
    the Algorithm 1 updates (with unit-vector phase-1 points). *)

val robust_bounds :
  delta:float -> s:int -> chi:float array -> c:int -> float * float
(** The Theorem 3 interval implied by 1-based choice [c]
    ([(new_lo, new_hi)], before intersecting with the previous bounds;
    [new_hi = infinity] when [1 - c delta <= 0]).  Exposed for tests. *)
