(** The indistinguishability query: definitions 1–3 and observations 1–4.

    Ground truth is computed against a {i known} utility function; the
    interactive algorithms of this library approximate it without that
    knowledge.  The approximation quality measure [alpha] (Definition 3) is
    what every experiment in Section VII reports. *)

val indistinguishable :
  eps:float -> Indq_user.Utility.t -> Indq_linalg.Vec.t -> Indq_linalg.Vec.t -> bool
(** Definition 1: [f(p1) <= (1+eps) f(p2)] and [f(p2) <= (1+eps) f(p1)]. *)

val query_exact :
  eps:float ->
  Indq_user.Utility.t ->
  Indq_dataset.Dataset.t ->
  Indq_dataset.Dataset.t
(** Definition 2: the set [I] of tuples eps-indistinguishable from the
    optimal [p* = argmax u . p].  O(n).  Raises [Invalid_argument] on an
    empty dataset or non-positive [eps]. *)

val in_query :
  eps:float ->
  Indq_user.Utility.t ->
  data:Indq_dataset.Dataset.t ->
  Indq_dataset.Tuple.t ->
  bool
(** Membership of one tuple in [I] (against the optimum of [data]). *)

val alpha :
  eps:float ->
  Indq_user.Utility.t ->
  data:Indq_dataset.Dataset.t ->
  output:Indq_dataset.Dataset.t ->
  float
(** Definition 3 quality of an algorithm output [S]:
    [max (0, max_{p' in S} (p* . u - (1+eps) p' . u))].  Tuples of [I]
    contribute 0, so this is the worst-case shortfall of the false
    positives.  Smaller is better; 0 iff [S] contains only tuples of [I]. *)

val has_false_negatives :
  eps:float ->
  Indq_user.Utility.t ->
  data:Indq_dataset.Dataset.t ->
  output:Indq_dataset.Dataset.t ->
  bool
(** True when some tuple of the exact [I] is missing from [output] — the
    failure mode Definition 3 forbids. *)

val monotone_subset_check :
  eps:float -> eps':float -> Indq_user.Utility.t -> Indq_dataset.Dataset.t -> bool
(** Observation 4 as an executable check: for [eps' < eps],
    [I(eps') ⊆ I(eps)].  Used by tests and the epsilon-refinement example. *)

(** {2 Generic (possibly non-linear) utilities}

    Definitions 1–3 never use linearity; these variants take an arbitrary
    utility evaluator, enabling the non-linear ablation (see
    {!Indq_user.Nonlinear}). *)

val query_exact_fn :
  eps:float ->
  (Indq_linalg.Vec.t -> float) ->
  Indq_dataset.Dataset.t ->
  Indq_dataset.Dataset.t
(** [I(f, eps)] for an arbitrary non-negative utility evaluator. *)

val alpha_fn :
  eps:float ->
  (Indq_linalg.Vec.t -> float) ->
  data:Indq_dataset.Dataset.t ->
  output:Indq_dataset.Dataset.t ->
  float
(** Definition 3 measured under an arbitrary utility evaluator. *)

val has_false_negatives_fn :
  eps:float ->
  (Indq_linalg.Vec.t -> float) ->
  data:Indq_dataset.Dataset.t ->
  output:Indq_dataset.Dataset.t ->
  bool
