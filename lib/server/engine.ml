module Session = Indq_core.Session
module Algo = Indq_core.Algo
module Generator = Indq_dataset.Generator
module Dataset = Indq_dataset.Dataset
module Tuple = Indq_dataset.Tuple
module Vec = Indq_linalg.Vec
module Rng = Indq_util.Rng
module Timer = Indq_util.Timer
module Counter = Indq_obs.Counter
module Histogram = Indq_obs.Histogram
module Fault = Indq_fault.Fault

let c_sessions = Counter.make "serve.sessions"
let c_resumes = Counter.make "serve.resumes"
let c_hydrations = Counter.make "serve.hydrations"
let c_evictions = Counter.make "serve.evictions"
let c_requests = Counter.make "serve.requests"
let c_wire_errors = Counter.make "serve.wire_errors"
let h_round = Histogram.make ~unit_:Seconds "serve.round_latency"

type config = {
  dir : string;
  fsync : Journal_store.fsync_policy;
  max_hydrated : int;
  idle_timeout : float;
  deadline : float;
  max_n : int;
  max_d : int;
  allow_shutdown : bool;
  clock : unit -> float;
}

let default_config ~dir =
  {
    dir;
    fsync = Journal_store.Batch 8;
    max_hydrated = 1024;
    idle_timeout = 0.;
    deadline = 0.;
    max_n = 200_000;
    max_d = 16;
    allow_shutdown = false;
    clock = Timer.wall;
  }

(* A hydrated session: the live coroutine plus its open journal sink, on
   an intrusive LRU list (most recent at [head]).  Cold sessions have no
   in-memory representation at all — the journal file is the registry. *)
type entry = {
  e_id : string;
  e_session : Session.t;
  e_sink : Journal_store.t;
  mutable e_touched : float;
  mutable e_prev : entry option;  (** toward the MRU head *)
  mutable e_next : entry option;  (** toward the LRU tail *)
}

type t = {
  cfg : config;
  table : (string, entry) Hashtbl.t;  (** hydrated sessions only *)
  mutable head : entry option;
  mutable tail : entry option;
  mutable count : int;
}

type outcome = Reply of Wire.response | Disconnect | Stop of Wire.response

(* Typed early exit: every refusal carries its wire error code and is
   turned into an [R_error] reply at the [handle] boundary. *)
exception Err of Wire.error_code * string

let err code fmt = Printf.ksprintf (fun msg -> raise (Err (code, msg))) fmt

let create cfg =
  if cfg.max_hydrated < 1 then
    invalid_arg "Engine.create: max_hydrated must be >= 1";
  if cfg.max_n < 1 || cfg.max_d < 1 then
    invalid_arg "Engine.create: max_n and max_d must be >= 1";
  Journal_store.ensure_dir cfg.dir;
  { cfg; table = Hashtbl.create 64; head = None; tail = None; count = 0 }

(* --- LRU list ----------------------------------------------------------- *)

let unlink t e =
  (match e.e_prev with Some p -> p.e_next <- e.e_next | None -> t.head <- e.e_next);
  (match e.e_next with Some n -> n.e_prev <- e.e_prev | None -> t.tail <- e.e_prev);
  e.e_prev <- None;
  e.e_next <- None;
  t.count <- t.count - 1

let push_front t e =
  e.e_prev <- None;
  e.e_next <- t.head;
  (match t.head with Some h -> h.e_prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e;
  t.count <- t.count + 1

let touch t e =
  e.e_touched <- t.cfg.clock ();
  match t.head with
  | Some h when h == e -> ()
  | Some _ | None ->
    unlink t e;
    push_front t e

(* Drop a hydrated session from memory.  [counted] marks transparent
   evictions (capacity or idleness) that the client never observes;
   explicit releases ([bye]) and torn-sink drops are not evictions. *)
let drop t e ~counted =
  Journal_store.close e.e_sink;
  Hashtbl.remove t.table e.e_id;
  unlink t e;
  if counted then Counter.incr c_evictions

let rec evict_overflow t =
  if t.count > t.cfg.max_hydrated then
    match t.tail with
    | Some e ->
      drop t e ~counted:true;
      evict_overflow t
    | None -> ()

let sweep t =
  if t.cfg.idle_timeout > 0. then begin
    let now = t.cfg.clock () in
    let rec go () =
      match t.tail with
      | Some e when now -. e.e_touched > t.cfg.idle_timeout ->
        drop t e ~counted:true;
        go ()
      | Some _ | None -> ()
    in
    go ()
  end

let hydrated t = t.count

let shutdown t =
  let rec go () =
    match t.head with
    | Some e ->
      drop t e ~counted:false;
      go ()
    | None -> ()
  in
  go ()

(* --- Deterministic session reconstruction ------------------------------- *)

let builtin_generators = [ "independent"; "correlated"; "anti_correlated" ]

(* Resolve the hello's zero-able fields against the paper defaults.  Pure
   in the hello, so the resolution at [create] time and at every rehydrate
   agrees — the journal header fingerprint depends on it. *)
let resolve (h : Wire.hello) =
  let n = if h.n > 0 then h.n else 1000 in
  let defaults = Algo.default_config ~d:h.d in
  let config =
    {
      Algo.s = (if h.s > 0 then h.s else defaults.Algo.s);
      q = (if h.q > 0 then h.q else defaults.Algo.q);
      eps = (if h.eps > 0. then h.eps else defaults.Algo.eps);
      delta = h.delta;
      trials = defaults.Algo.trials;
      exact_prune = defaults.Algo.exact_prune;
    }
  in
  (n, config)

let validate_hello t (h : Wire.hello) =
  let generator = String.lowercase_ascii h.data in
  let generator =
    if generator = "anti-correlated" then "anti_correlated" else generator
  in
  if not (List.mem generator builtin_generators) then
    err Wire.Bad_field
      "field \"data\" must be a builtin generator (independent, correlated, \
       anti_correlated): the server loads no files";
  let n, config = resolve h in
  if h.n < 0 || n > t.cfg.max_n then
    err Wire.Bad_field "field \"n\" must be in [0, %d]" t.cfg.max_n;
  if h.d < 1 || h.d > t.cfg.max_d then
    err Wire.Bad_field "field \"d\" must be in [1, %d]" t.cfg.max_d;
  if h.s < 0 || config.Algo.s > 64 || config.Algo.s > n then
    err Wire.Bad_field "field \"s\" must be in [0, min (64, n)]";
  if h.q < 0 || config.Algo.q > 100_000 then
    err Wire.Bad_field "field \"q\" must be in [0, 100000]";
  if (not (Float.is_finite h.eps)) || h.eps < 0. then
    err Wire.Bad_field "field \"eps\" must be a non-negative finite number";
  if (not (Float.is_finite h.delta)) || h.delta < 0. || h.delta >= 1. then
    err Wire.Bad_field "field \"delta\" must be in [0, 1)"

(* Both the dataset and the session RNG derive from the hello's seed, so a
   rehydrated session sees bit-identical inputs: data from [seed], the
   algorithm's own randomness from [seed + 1]. *)
let build_data (h : Wire.hello) =
  let n, _ = resolve h in
  Generator.by_name h.data (Rng.create h.seed) ~n ~d:h.d

let session_rng (h : Wire.hello) = Rng.create (h.seed + 1)

let code_of_session_error = function
  | Session.Already_finished -> Wire.Already_finished
  | Session.Choice_out_of_range _ -> Wire.Choice_out_of_range
  | Session.Journal_corrupt _ -> Wire.Journal_corrupt
  | Session.Journal_mismatch _ -> Wire.Journal_mismatch

let session_err e = raise (Err (code_of_session_error e, Session.error_message e))

(* --- Hydration ---------------------------------------------------------- *)

let insert t e =
  Hashtbl.replace t.table e.e_id e;
  push_front t e;
  evict_overflow t

let hydrate t id =
  match Hashtbl.find_opt t.table id with
  | Some e ->
    touch t e;
    e
  | None -> (
    match Journal_store.load ~dir:t.cfg.dir id with
    | Error Journal_store.No_session ->
      err Wire.Unknown_session "no session %S on this server" id
    | Error (Journal_store.Bad_header msg) ->
      err Wire.Journal_corrupt "session %S journal header: %s" id msg
    | Error (Journal_store.Bad_journal e) -> session_err e
    | Ok loaded -> (
      let hello = loaded.Journal_store.hello in
      let _, config = resolve hello in
      let sink =
        Journal_store.reopen ~dir:t.cfg.dir ~fsync:t.cfg.fsync
          ~rewrite:loaded.Journal_store.torn_tail loaded id
      in
      match
        Session.resume
          ~journal:(fun entry -> Journal_store.append sink entry)
          loaded.Journal_store.entries hello.Wire.algo config
          ~data:(build_data hello) ~rng:(session_rng hello)
      with
      | session ->
        Counter.incr c_hydrations;
        let e =
          {
            e_id = id;
            e_session = session;
            e_sink = sink;
            e_touched = t.cfg.clock ();
            e_prev = None;
            e_next = None;
          }
        in
        insert t e;
        e
      | exception Session.Error e ->
        Journal_store.close sink;
        session_err e))

(* --- Request handling --------------------------------------------------- *)

let state_reply e =
  match Session.current e.e_session with
  | Session.Asking options ->
    Reply
      (Wire.R_ask
         {
           id = e.e_id;
           round = Session.questions_asked e.e_session + 1;
           options = Array.map Vec.to_array options;
         })
  | Session.Finished result ->
    let output =
      List.map
        (fun tuple -> (Tuple.id tuple, Vec.to_array (Tuple.values tuple)))
        (Dataset.to_list result.Algo.output)
    in
    Reply
      (Wire.R_done
         {
           id = e.e_id;
           questions = Session.questions_asked e.e_session;
           output;
         })

let do_hello t (h : Wire.hello) =
  if Hashtbl.mem t.table h.id || Journal_store.exists ~dir:t.cfg.dir h.id then
    err Wire.Session_exists "session %S already exists; resume it" h.id;
  validate_hello t h;
  let _, config = resolve h in
  match
    let sink = Journal_store.create ~dir:t.cfg.dir ~fsync:t.cfg.fsync h in
    match
      Session.start
        ~journal:(fun entry -> Journal_store.append sink entry)
        h.algo config ~data:(build_data h) ~rng:(session_rng h)
    with
    | session -> (sink, session)
    | exception e ->
      Journal_store.close sink;
      raise e
  with
  | sink, session ->
    Counter.incr c_sessions;
    let e =
      {
        e_id = h.id;
        e_session = session;
        e_sink = sink;
        e_touched = t.cfg.clock ();
        e_prev = None;
        e_next = None;
      }
    in
    insert t e;
    state_reply e
  | exception Journal_store.Torn _ ->
    (* Torn while journaling the header or the session's first record:
       creation is atomic, so remove the stub file — the client may simply
       retry the hello. *)
    (try Sys.remove (Journal_store.path ~dir:t.cfg.dir h.id)
     with Sys_error _ -> ());
    err Wire.Torn_write "journal append torn during hello; retry"

let do_answer t id ~round ~choice =
  let e = hydrate t id in
  match Session.current e.e_session with
  | Session.Finished _ ->
    err Wire.Already_finished "%s" (Session.error_message Session.Already_finished)
  | Session.Asking _ ->
    let expected = Session.questions_asked e.e_session + 1 in
    if round <> expected then
      err Wire.Round_mismatch
        "answer names round %d but round %d is pending (ask to refetch)" round
        expected;
    let started = t.cfg.clock () in
    (match Session.answer e.e_session choice with
    | () -> ()
    | exception Session.Error se -> session_err se
    | exception Journal_store.Torn _ ->
      (* The append tore before the coroutine consumed the answer, so the
         in-memory state never advanced — but the file now has a torn tail.
         Treat the session as crashed: drop it, and let the client's resume
         run torn-tail recovery.  The journal is the truth. *)
      drop t e ~counted:false;
      err Wire.Torn_write
        "journal append torn; session %S evicted, resume to recover" id);
    let elapsed = t.cfg.clock () -. started in
    Histogram.observe h_round elapsed;
    if t.cfg.deadline > 0. && elapsed > t.cfg.deadline then
      err Wire.Deadline_exceeded
        "round took %.3fs against a %.3fs deadline; the answer was applied, \
         ask to refetch" elapsed t.cfg.deadline;
    state_reply e

let do_bye t id =
  match Hashtbl.find_opt t.table id with
  | Some e ->
    drop t e ~counted:false;
    Reply (Wire.R_ok { id = Some id })
  | None ->
    if Journal_store.exists ~dir:t.cfg.dir id then
      Reply (Wire.R_ok { id = Some id })
    else err Wire.Unknown_session "no session %S on this server" id

let stats_reply () =
  let snap = Histogram.value h_round in
  Reply
    (Wire.R_stats
       {
         counters = Counter.snapshot ();
         round_latency =
           {
             Wire.p_count = snap.Histogram.count;
             p50 = Histogram.p50 snap;
             p90 = Histogram.p90 snap;
             p99 = Histogram.p99 snap;
           };
       })

let dispatch t req =
  match req with
  | Wire.Hello h -> do_hello t h
  | Wire.Resume { id } ->
    let e = hydrate t id in
    Counter.incr c_resumes;
    state_reply e
  | Wire.Ask { id } -> state_reply (hydrate t id)
  | Wire.Answer { id; round; choice } -> do_answer t id ~round ~choice
  | Wire.Bye { id } -> do_bye t id
  | Wire.Stats -> stats_reply ()
  | Wire.Shutdown ->
    if t.cfg.allow_shutdown then Stop (Wire.R_ok { id = None })
    else err Wire.Forbidden "shutdown is disabled on this server"

let request_id = function
  | Wire.Hello { id; _ }
  | Wire.Resume { id }
  | Wire.Ask { id }
  | Wire.Answer { id; _ }
  | Wire.Bye { id } -> Some id
  | Wire.Stats | Wire.Shutdown -> None

let error_reply id code message =
  Counter.incr c_wire_errors;
  Reply (Wire.R_error { id; code; message })

let handle t req =
  Counter.incr c_requests;
  let out =
    try dispatch t req
    with Err (code, message) -> error_reply (request_id req) code message
  in
  match out with
  | Reply r ->
    (* The transport drops the connection instead of delivering the reply —
       the client's next move (reconnect, resume, ask) is the recovery path
       this fault exists to exercise. *)
    if Fault.fire "inject.client_disconnect" then Disconnect else Reply r
  | Disconnect | Stop _ -> out

let handle_line t line =
  match Wire.parse_request line with
  | Ok req -> handle t req
  | Error (code, message) ->
    Counter.incr c_requests;
    error_reply None code message
