(** The [indq serve] wire protocol: one JSON object per line, both ways.

    A client speaks five session verbs — [hello] (create), [resume]
    (rehydrate after a crash or reconnect), [ask] (re-fetch the pending
    round idempotently), [answer], [bye] (release) — plus two server verbs,
    [stats] and [shutdown].  The server replies to every request with
    exactly one line: [ask] (the pending round), [done] (the final result),
    [ok], [stats], or [error {code, message}].

    This module is the codec only: parsing is total (malformed bytes come
    back as a typed {!error_code}, never an exception) and printing is
    canonical — field order is fixed and floats print with [%.17g], so a
    response encodes to the same bytes on every run.  Byte-identical
    results across crash/restart are asserted on these encoded lines. *)

(** A minimal JSON tree.  Object fields keep their wire order. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

val parse_json : string -> (json, string) result
(** Strict recursive-descent parse of one JSON value (the whole string).
    Rejects trailing bytes, unterminated literals, and nesting deeper than
    64 levels (abusive input must not overflow the stack). *)

val print_json : json -> string
(** Canonical one-line rendering; floats as [%.17g] (integral values print
    with no decimal point, so round-trips are exact both ways). *)

(** Typed protocol errors; the wire [code] field is {!code_string}. *)
type error_code =
  | Bad_json  (** the line is not a JSON object *)
  | Unknown_op  (** unrecognized [op] *)
  | Bad_field  (** missing, ill-typed or out-of-bounds field *)
  | Session_exists  (** [hello] with an id that already has a journal *)
  | Unknown_session  (** no journal for this id *)
  | Already_finished  (** [answer] after the run returned *)
  | Choice_out_of_range  (** [answer] outside the pending options *)
  | Round_mismatch  (** [answer] for a round that is not the pending one *)
  | Journal_corrupt  (** the session's journal does not parse *)
  | Journal_mismatch  (** the journal contradicts its own header on replay *)
  | Torn_write  (** a journal append was torn; resume to recover *)
  | Deadline_exceeded  (** the round exceeded the per-request deadline *)
  | Line_too_long  (** request line over the server's byte cap *)
  | Forbidden  (** the operation is disabled on this server *)
  | Internal  (** unexpected server-side failure *)

val code_string : error_code -> string
(** Stable wire spelling, e.g. [Choice_out_of_range] is
    ["choice_out_of_range"] and [Torn_write] is ["journal_torn_write"]. *)

val code_of_string : string -> error_code option

type hello = {
  id : string;
  algo : Indq_core.Algo.name;
  data : string;  (** builtin generator name; the server loads no files *)
  n : int;  (** tuples; 0 = server default *)
  d : int;  (** dimensions *)
  seed : int;  (** derives both the dataset and the session RNG *)
  s : int;  (** options per round; 0 = paper default for [d] *)
  q : int;  (** question budget; 0 = paper default *)
  eps : float;  (** 0 = paper default *)
  delta : float;  (** modeled user error *)
}
(** Everything needed to rebuild a session deterministically.  The server
    persists the encoded [hello] line as the first record of the session's
    journal, so a journal alone (plus the algorithms) reconstructs the
    run. *)

type request =
  | Hello of hello
  | Resume of { id : string }
  | Ask of { id : string }
  | Answer of { id : string; round : int; choice : int }
  | Bye of { id : string }
  | Stats
  | Shutdown

type percentiles = { p_count : int; p50 : float; p90 : float; p99 : float }

type response =
  | R_ask of { id : string; round : int; options : float array array }
      (** the pending question: option index -> attribute values *)
  | R_done of { id : string; questions : int; output : (int * float array) list }
      (** the final result: (tuple id, values) per output tuple *)
  | R_ok of { id : string option }
  | R_stats of {
      counters : (string * float) list;  (** sorted by name *)
      round_latency : percentiles;  (** ["serve.round_latency"], seconds *)
    }
  | R_error of { id : string option; code : error_code; message : string }

val valid_id : string -> bool
(** Session ids are 1–64 bytes of [A-Za-z0-9_.-] — they name journal files,
    so path separators and empty names are rejected at the wire. *)

val request_to_line : request -> string
(** Canonical encoding, no trailing newline. *)

val parse_request : string -> (request, error_code * string) result
(** Decode one request line.  Every failure is typed: unparseable bytes are
    [Bad_json], an unknown [op] is [Unknown_op], anything missing or
    ill-typed in a known op is [Bad_field] (ids are {!valid_id}-checked
    here). *)

val response_to_line : response -> string
(** Canonical encoding, no trailing newline. *)

val parse_response : string -> (response, string) result
(** Decode one response line (the client side of the codec).  Round-trips
    {!response_to_line} exactly. *)
