module Algo = Indq_core.Algo

(* --- JSON ------------------------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

(* The parser must be total over attacker-controlled bytes: every failure
   is a message, never an exception escaping [parse_json], and nesting is
   capped so a line of ten thousand '[' cannot overflow the stack. *)
exception Parse_fail of string

let max_depth = 64

let parse_json text =
  let n = String.length text in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail msg) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match text.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some k when k = c -> advance ()
    | Some k -> fail (Printf.sprintf "expected '%c', found '%c'" c k)
    | None -> fail (Printf.sprintf "expected '%c', found end of input" c)
  in
  let literal word value =
    let m = String.length word in
    if !pos + m <= n && String.sub text !pos m = word then begin
      pos := !pos + m;
      value
    end
    else fail ("bad literal at byte " ^ string_of_int !pos)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = text.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub text !pos 4 in
          pos := !pos + 4;
          let cp =
            match int_of_string_opt ("0x" ^ hex) with
            | Some cp -> cp
            | None -> fail ("bad \\u escape: " ^ hex)
          in
          (* Encode the code point as UTF-8; surrogates are passed through
             as three-byte sequences, which is enough for a codec whose
             string fields are ids, op names and error messages. *)
          if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
          else if cp < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
          end
        | _ -> fail (Printf.sprintf "bad escape '\\%c'" e));
        go ()
      end
      else if Char.code c < 0x20 then fail "raw control byte in string"
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match text.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      advance ()
    done;
    let token = String.sub text start (!pos - start) in
    match float_of_string_opt token with
    | Some x when Float.is_finite x -> Num x
    | Some _ | None -> fail ("bad number: " ^ token)
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "empty input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value (depth + 1) in
          fields := (key, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}' in object"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value (depth + 1) in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']' in array"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after value";
    v
  with
  | v -> Ok v
  | exception Parse_fail msg -> Error msg

(* [%.17g] round-trips every finite float and renders integral values
   without a decimal point, so encoding is canonical: the same response
   value always produces the same bytes. *)
let float_token x = Printf.sprintf "%.17g" x

let print_json v =
  let buf = Buffer.create 128 in
  let add_string s =
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"'
  in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num x -> Buffer.add_string buf (float_token x)
    | Str s -> add_string s
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          go v)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_string k;
          Buffer.add_char buf ':';
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- Error codes ------------------------------------------------------- *)

type error_code =
  | Bad_json
  | Unknown_op
  | Bad_field
  | Session_exists
  | Unknown_session
  | Already_finished
  | Choice_out_of_range
  | Round_mismatch
  | Journal_corrupt
  | Journal_mismatch
  | Torn_write
  | Deadline_exceeded
  | Line_too_long
  | Forbidden
  | Internal

let code_table =
  [
    (Bad_json, "bad_json");
    (Unknown_op, "unknown_op");
    (Bad_field, "bad_field");
    (Session_exists, "session_exists");
    (Unknown_session, "unknown_session");
    (Already_finished, "already_finished");
    (Choice_out_of_range, "choice_out_of_range");
    (Round_mismatch, "round_mismatch");
    (Journal_corrupt, "journal_corrupt");
    (Journal_mismatch, "journal_mismatch");
    (Torn_write, "journal_torn_write");
    (Deadline_exceeded, "deadline_exceeded");
    (Line_too_long, "line_too_long");
    (Forbidden, "forbidden");
    (Internal, "internal");
  ]

let code_string c = List.assoc c code_table

let code_of_string s =
  List.find_map (fun (c, str) -> if str = s then Some c else None) code_table

(* --- Requests ---------------------------------------------------------- *)

type hello = {
  id : string;
  algo : Algo.name;
  data : string;
  n : int;
  d : int;
  seed : int;
  s : int;
  q : int;
  eps : float;
  delta : float;
}

type request =
  | Hello of hello
  | Resume of { id : string }
  | Ask of { id : string }
  | Answer of { id : string; round : int; choice : int }
  | Bye of { id : string }
  | Stats
  | Shutdown

type percentiles = { p_count : int; p50 : float; p90 : float; p99 : float }

type response =
  | R_ask of { id : string; round : int; options : float array array }
  | R_done of { id : string; questions : int; output : (int * float array) list }
  | R_ok of { id : string option }
  | R_stats of {
      counters : (string * float) list;
      round_latency : percentiles;
    }
  | R_error of { id : string option; code : error_code; message : string }

let valid_id id =
  let len = String.length id in
  len >= 1 && len <= 64
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '-' -> true
         | _ -> false)
       id

let num x = Num x

let int_ i = Num (float_of_int i)

let vec_json values = List (Array.to_list (Array.map num values))

let request_to_line req =
  print_json
    (match req with
    | Hello { id; algo; data; n; d; seed; s; q; eps; delta } ->
      Obj
        [
          ("op", Str "hello");
          ("id", Str id);
          ("algo", Str (Algo.to_string algo));
          ("data", Str data);
          ("n", int_ n);
          ("d", int_ d);
          ("seed", int_ seed);
          ("s", int_ s);
          ("q", int_ q);
          ("eps", num eps);
          ("delta", num delta);
        ]
    | Resume { id } -> Obj [ ("op", Str "resume"); ("id", Str id) ]
    | Ask { id } -> Obj [ ("op", Str "ask"); ("id", Str id) ]
    | Answer { id; round; choice } ->
      Obj
        [
          ("op", Str "answer");
          ("id", Str id);
          ("round", int_ round);
          ("choice", int_ choice);
        ]
    | Bye { id } -> Obj [ ("op", Str "bye"); ("id", Str id) ]
    | Stats -> Obj [ ("op", Str "stats") ]
    | Shutdown -> Obj [ ("op", Str "shutdown") ])

(* Decoding: one local exception turns every shape problem into a typed
   (code, message) pair at the [parse_request] boundary. *)
exception Reject of error_code * string

let reject code msg = raise (Reject (code, msg))

let obj_fields = function
  | Obj fields -> fields
  | _ -> reject Bad_json "request is not a JSON object"

let field fields key = List.assoc_opt key fields

let get_string fields key =
  match field fields key with
  | Some (Str s) -> s
  | Some _ -> reject Bad_field (Printf.sprintf "field %S must be a string" key)
  | None -> reject Bad_field (Printf.sprintf "missing field %S" key)

let get_int_opt fields key ~default =
  match field fields key with
  | None -> default
  | Some (Num x) when Float.is_integer x && Float.abs x <= 1e15 ->
    int_of_float x
  | Some _ ->
    reject Bad_field (Printf.sprintf "field %S must be an integer" key)

let get_int fields key =
  match field fields key with
  | None -> reject Bad_field (Printf.sprintf "missing field %S" key)
  | Some _ -> get_int_opt fields key ~default:0

let get_float_opt fields key ~default =
  match field fields key with
  | None -> default
  | Some (Num x) -> x
  | Some _ -> reject Bad_field (Printf.sprintf "field %S must be a number" key)

let get_id fields =
  let id = get_string fields "id" in
  if valid_id id then id
  else
    reject Bad_field
      "field \"id\" must be 1-64 characters of [A-Za-z0-9_.-]"

let parse_request text =
  match
    let fields = obj_fields (match parse_json text with
      | Ok v -> v
      | Error msg -> reject Bad_json msg)
    in
    match get_string fields "op" with
    | "hello" ->
      let id = get_id fields in
      let algo_name = get_string fields "algo" in
      let algo =
        try Algo.of_string algo_name
        with Invalid_argument _ ->
          reject Bad_field ("unknown algorithm: " ^ algo_name)
      in
      let data =
        match field fields "data" with
        | None -> "independent"
        | Some _ -> get_string fields "data"
      in
      Hello
        {
          id;
          algo;
          data;
          n = get_int_opt fields "n" ~default:0;
          d = get_int_opt fields "d" ~default:3;
          seed = get_int fields "seed";
          s = get_int_opt fields "s" ~default:0;
          q = get_int_opt fields "q" ~default:0;
          eps = get_float_opt fields "eps" ~default:0.;
          delta = get_float_opt fields "delta" ~default:0.;
        }
    | "resume" -> Resume { id = get_id fields }
    | "ask" -> Ask { id = get_id fields }
    | "answer" ->
      Answer
        {
          id = get_id fields;
          round = get_int fields "round";
          choice = get_int fields "choice";
        }
    | "bye" -> Bye { id = get_id fields }
    | "stats" -> Stats
    | "shutdown" -> Shutdown
    | op -> reject Unknown_op ("unknown op: " ^ op)
  with
  | req -> Ok req
  | exception Reject (code, msg) -> Error (code, msg)

(* --- Responses --------------------------------------------------------- *)

let response_to_line resp =
  print_json
    (match resp with
    | R_ask { id; round; options } ->
      Obj
        [
          ("op", Str "ask");
          ("id", Str id);
          ("round", int_ round);
          ("options", List (Array.to_list (Array.map vec_json options)));
        ]
    | R_done { id; questions; output } ->
      (* Each output row is [tuple id, v1, ..., vd] — compact, and the id
         keeps the result traceable to the original dataset row. *)
      let row (tid, values) =
        List (int_ tid :: Array.to_list (Array.map num values))
      in
      Obj
        [
          ("op", Str "done");
          ("id", Str id);
          ("questions", int_ questions);
          ("output", List (List.map row output));
        ]
    | R_ok { id } ->
      Obj
        (("op", Str "ok")
        :: (match id with Some id -> [ ("id", Str id) ] | None -> []))
    | R_stats { counters; round_latency = { p_count; p50; p90; p99 } } ->
      Obj
        [
          ("op", Str "stats");
          ("counters", Obj (List.map (fun (k, v) -> (k, num v)) counters));
          ( "round_latency",
            Obj
              [
                ("count", int_ p_count);
                ("p50", num p50);
                ("p90", num p90);
                ("p99", num p99);
              ] );
        ]
    | R_error { id; code; message } ->
      Obj
        (("op", Str "error")
        :: ((match id with Some id -> [ ("id", Str id) ] | None -> [])
           @ [ ("code", Str (code_string code)); ("message", Str message) ])))

let get_float fields key =
  match field fields key with
  | Some (Num x) -> x
  | Some _ | None ->
    reject Bad_field (Printf.sprintf "missing number field %S" key)

let get_values = function
  | Num x -> x
  | _ -> reject Bad_field "option values must be numbers"

let parse_response text =
  match
    let fields = obj_fields (match parse_json text with
      | Ok v -> v
      | Error msg -> reject Bad_json msg)
    in
    match get_string fields "op" with
    | "ask" ->
      let options =
        match field fields "options" with
        | Some (List rows) ->
          List.map
            (function
              | List vs -> Array.of_list (List.map get_values vs)
              | _ -> reject Bad_field "each option must be an array")
            rows
          |> Array.of_list
        | Some _ | None -> reject Bad_field "missing field \"options\""
      in
      R_ask { id = get_string fields "id"; round = get_int fields "round"; options }
    | "done" ->
      let output =
        match field fields "output" with
        | Some (List rows) ->
          List.map
            (function
              | List (Num tid :: vs)
                when Float.is_integer tid && Float.abs tid <= 1e15 ->
                (int_of_float tid, Array.of_list (List.map get_values vs))
              | _ -> reject Bad_field "each output row must be [id, v...]")
            rows
        | Some _ | None -> reject Bad_field "missing field \"output\""
      in
      R_done
        {
          id = get_string fields "id";
          questions = get_int fields "questions";
          output;
        }
    | "ok" ->
      R_ok
        {
          id =
            (match field fields "id" with Some (Str s) -> Some s | _ -> None);
        }
    | "stats" ->
      let counters =
        match field fields "counters" with
        | Some (Obj kvs) -> List.map (fun (k, v) -> (k, get_values v)) kvs
        | Some _ | None -> reject Bad_field "missing field \"counters\""
      in
      let round_latency =
        match field fields "round_latency" with
        | Some (Obj kvs) ->
          {
            p_count = get_int kvs "count";
            p50 = get_float kvs "p50";
            p90 = get_float kvs "p90";
            p99 = get_float kvs "p99";
          }
        | Some _ | None -> reject Bad_field "missing field \"round_latency\""
      in
      R_stats { counters; round_latency }
    | "error" ->
      let code_text = get_string fields "code" in
      let code =
        match code_of_string code_text with
        | Some c -> c
        | None -> reject Bad_field ("unknown error code: " ^ code_text)
      in
      R_error
        {
          id =
            (match field fields "id" with Some (Str s) -> Some s | _ -> None);
          code;
          message = get_string fields "message";
        }
    | op -> reject Unknown_op ("unknown response op: " ^ op)
  with
  | resp -> Ok resp
  | exception Reject (_, msg) -> Error msg
