(** Per-session journals on disk: the server's only session registry.

    Each session [id] owns one file, [DIR/id.journal]:

    - line 1 is the encoded [hello] request that created the session
      (see {!Wire.request_to_line}) — the full recipe for rebuilding its
      dataset and configuration deterministically;
    - every following line is one {!Indq_core.Session.journal_entry},
      written {e ahead} of the state change it records.

    A hydrated session holds an open append {!t} (the durable sink); a cold
    session is {e only} its file.  {!load} + [Session.resume] reconstructs
    the live session byte-identically, which is what lets the engine evict
    any session at any time.

    {b Durability.}  The header line is fsynced unconditionally at
    {!create} — a session the server acknowledged must survive a crash —
    and subsequent appends follow the {!fsync_policy}.  An fsync failure
    (real [EIO] or the [inject.journal_sync] fault) is absorbed: counted in
    ["serve.sync_failures"], records kept pending, retried on the next
    append.  Successful syncs count in ["serve.journal_syncs"].

    {b Torn writes.}  The [inject.journal_torn_write] fault makes
    {!append} write a byte-truncated prefix of the record — exactly what a
    crash mid-[write] leaves — then raises {!Torn} with the sink marked
    broken.  Recovery is {!load}'s job: a torn final line is dropped (and
    counted in ["journal.torn_tail"]) and {!reopen} with [rewrite:true]
    replaces the file with its canonical re-serialization (tmp + atomic
    rename) before appending resumes, so a torn tail can never be appended
    after. *)

type fsync_policy =
  | Always  (** fsync after every record *)
  | Batch of int  (** fsync after every [k] pending records *)
  | Never  (** rely on the kernel; crash may lose recent records *)

val fsync_policy_of_string : string -> (fsync_policy, string) result
(** ["always" | "never" | "batch:K"] (K >= 1). *)

val fsync_policy_to_string : fsync_policy -> string

type t
(** An open append sink for one session's journal. *)

exception Torn of string
(** [Torn id]: the append was torn mid-record (fault-injected or a short
    [write]).  The sink is broken — the caller must treat the session as
    crashed: {!close} the sink, drop the hydrated state, and let the next
    [resume] recover from the journal. *)

val ensure_dir : string -> unit
(** Create the journal directory (and parents) if missing. *)

val path : dir:string -> string -> string
(** [path ~dir id] is [DIR/id.journal]. *)

val exists : dir:string -> string -> bool
(** A journal file for this session id exists. *)

type loaded = {
  hello : Wire.hello;
  entries : Indq_core.Session.journal_entry list;
  torn_tail : bool;
      (** the final line was a torn append and was dropped; {!reopen} must
          be called with [rewrite:true] before appending *)
}

type load_error =
  | No_session  (** no journal file for this id *)
  | Bad_header of string  (** line 1 unreadable or not a [hello] *)
  | Bad_journal of Indq_core.Session.error
      (** a record line before the tail is corrupt, or the journal
          contradicts itself — real corruption, never a crash artifact *)

val load : dir:string -> string -> (loaded, load_error) result

val create : dir:string -> fsync:fsync_policy -> Wire.hello -> t
(** Create [DIR/id.journal] with the encoded hello as its header line,
    fsynced unconditionally.  Raises [Sys_error] via the underlying I/O if
    the directory is unwritable; the caller guards [exists] first. *)

val reopen :
  dir:string -> fsync:fsync_policy -> rewrite:bool -> loaded -> string -> t
(** [reopen ~dir ~fsync ~rewrite loaded id] opens the append sink of an
    existing journal.  With [rewrite:true] the file is first replaced by
    its canonical re-serialization (header + every entry), written to a
    temp file, fsynced and renamed into place — the recovery step that
    physically removes a torn tail. *)

val append : t -> Indq_core.Session.journal_entry -> unit
(** Write one record line and apply the fsync policy.  Raises {!Torn} when
    the write is torn (see above); absorbs sync failures. *)

val sink_id : t -> string

val close : t -> unit
(** Flush pending durability (unless the sink is broken or the policy is
    [Never]) and close the descriptor.  Idempotent. *)
