type t = {
  fd : Unix.file_descr;
  mutable pending : string;
  mutable closed : bool;
}

exception Closed

exception Protocol of string

let () =
  Printexc.register_printer (function
    | Closed -> Some "Indq_server.Client.Closed"
    | Protocol msg -> Some ("Indq_server.Client.Protocol: " ^ msg)
    | _ -> None)

let sockaddr = function
  | Server.Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Server.Tcp port ->
    (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))

let connect ?(attempts = 50) transport =
  let domain, addr = sockaddr transport in
  let rec go remaining =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> { fd; pending = ""; closed = false }
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when remaining > 1 ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.1;
      go (remaining - 1)
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  go (max 1 attempts)

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let rec write_all fd bytes off len =
  if len > 0 then
    let written = Unix.write fd bytes off len in
    write_all fd bytes (off + written) (len - written)

let send t req =
  if t.closed then raise Closed;
  let bytes = Bytes.of_string (Wire.request_to_line req ^ "\n") in
  match write_all t.fd bytes 0 (Bytes.length bytes) with
  | () -> ()
  | exception Unix.Unix_error _ ->
    close t;
    raise Closed

let rec recv_line t =
  match String.index_opt t.pending '\n' with
  | Some nl ->
    let line = String.sub t.pending 0 nl in
    t.pending <-
      String.sub t.pending (nl + 1) (String.length t.pending - nl - 1);
    line
  | None -> (
    if t.closed then raise Closed;
    let chunk = Bytes.create 8192 in
    match Unix.read t.fd chunk 0 (Bytes.length chunk) with
    | 0 ->
      close t;
      raise Closed
    | len ->
      t.pending <- t.pending ^ Bytes.sub_string chunk 0 len;
      recv_line t
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> recv_line t
    | exception Unix.Unix_error _ ->
      close t;
      raise Closed)

let rpc t req =
  send t req;
  let line = recv_line t in
  match Wire.parse_response line with
  | Ok resp -> resp
  | Error msg -> raise (Protocol (msg ^ ": " ^ line))
