module Fault = Indq_fault.Fault

type transport = Unix_path of string | Tcp of int

(* One connected client: its descriptor plus the bytes received that do not
   yet end in a newline.  Connections are deliberately dumb — all protocol
   state lives in the engine, keyed by session id, so a client may drop its
   connection (or have it dropped by the [inject.client_disconnect] fault)
   and carry on over a fresh one. *)
type conn = { c_fd : Unix.file_descr; mutable c_pending : string }

type t = {
  engine : Engine.t;
  listener : Unix.file_descr;
  max_line : int;
  cleanup : unit -> unit;
  mutable conns : conn list;
  mutable stop : bool;
}

let default_max_line = 65_536

let rec write_all fd bytes off len =
  if len > 0 then
    let written = Unix.write fd bytes off len in
    write_all fd bytes (off + written) (len - written)

(* A reply that cannot be delivered (peer gone, send buffer jammed past the
   timeout) just costs the connection; the session survives on disk. *)
let try_send conn text =
  let bytes = Bytes.of_string (text ^ "\n") in
  match write_all conn.c_fd bytes 0 (Bytes.length bytes) with
  | () -> true
  | exception Unix.Unix_error _ -> false

let close_conn t conn =
  (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
  t.conns <- List.filter (fun c -> c != conn) t.conns

let listen_on transport =
  match transport with
  | Unix_path path ->
    if Sys.file_exists path then Sys.remove path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 128;
    (fd, fun () -> try Sys.remove path with Sys_error _ -> ())
  | Tcp port ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen fd 128;
    (fd, fun () -> ())

let create ?(max_line = default_max_line) config transport =
  let engine = Engine.create config in
  let listener, cleanup = listen_on transport in
  { engine; listener; max_line; cleanup; conns = []; stop = false }

let accept_conn t =
  match Unix.accept t.listener with
  | fd, _ ->
    (* Bound the damage of a peer that stops reading: a reply write that
       stalls this long drops the connection instead of wedging the loop. *)
    (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 10. with Unix.Unix_error _ -> ());
    t.conns <- { c_fd = fd; c_pending = "" } :: t.conns
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
    -> ()

let handle_one_line t conn line =
  match Engine.handle_line t.engine line with
  | Engine.Reply r ->
    if not (try_send conn (Wire.response_to_line r)) then begin
      close_conn t conn;
      false
    end
    else true
  | Engine.Disconnect ->
    close_conn t conn;
    false
  | Engine.Stop r ->
    ignore (try_send conn (Wire.response_to_line r));
    t.stop <- true;
    false

(* Split the pending bytes on newlines and feed each complete line to the
   engine; the remainder (if any) waits for more bytes. *)
let rec drain_lines t conn =
  match String.index_opt conn.c_pending '\n' with
  | None ->
    if String.length conn.c_pending > t.max_line then begin
      ignore
        (try_send conn
           (Wire.response_to_line
              (Wire.R_error
                 {
                   id = None;
                   code = Wire.Line_too_long;
                   message =
                     Printf.sprintf "request line exceeds %d bytes" t.max_line;
                 })));
      close_conn t conn
    end
  | Some nl ->
    let line = String.sub conn.c_pending 0 nl in
    conn.c_pending <-
      String.sub conn.c_pending (nl + 1)
        (String.length conn.c_pending - nl - 1);
    if String.trim line = "" then drain_lines t conn
    else if handle_one_line t conn line then drain_lines t conn

let read_conn t conn =
  let chunk = Bytes.create 8192 in
  match Unix.read conn.c_fd chunk 0 (Bytes.length chunk) with
  | 0 -> close_conn t conn
  | len ->
    conn.c_pending <- conn.c_pending ^ Bytes.sub_string chunk 0 len;
    drain_lines t conn
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
    -> ()
  | exception Unix.Unix_error _ -> close_conn t conn

let step t timeout =
  let fds = t.listener :: List.map (fun c -> c.c_fd) t.conns in
  (match Unix.select fds [] [] timeout with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | ready, _, _ ->
    if List.memq t.listener ready then accept_conn t;
    (* Iterate a snapshot: handling a line may close the connection and
       replace [t.conns], but each ready descriptor is visited once. *)
    let snapshot = t.conns in
    List.iter
      (fun conn -> if List.memq conn.c_fd ready then read_conn t conn)
      snapshot);
  Engine.sweep t.engine

let close t =
  List.iter (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ()) t.conns;
  t.conns <- [];
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  t.cleanup ();
  Engine.shutdown t.engine

let run ?plan ?max_line ?on_ready config transport =
  let t = create ?max_line config transport in
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let request_stop _ = t.stop <- true in
  let prev_term = Sys.signal Sys.sigterm (Sys.Signal_handle request_stop) in
  let prev_int = Sys.signal Sys.sigint (Sys.Signal_handle request_stop) in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int;
      close t)
    (fun () ->
      Fault.with_plan_opt plan (fun () ->
          (match on_ready with Some f -> f () | None -> ());
          while not t.stop do
            step t 0.25
          done))
