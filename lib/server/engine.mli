(** The session server's transport-agnostic core: a pure request-in /
    response-out state machine over a bounded pool of hydrated sessions.

    The engine owns no sockets — {!Server} feeds it decoded lines, tests
    and the bench fault drivers call {!handle} directly — and it treats the
    journal directory as the only session registry: a session is {e the
    file} [DIR/id.journal], and memory holds at most [max_hydrated] live
    coroutines at a time on an LRU.  Any session can be evicted (sink
    closed, coroutine dropped) and rehydrated later by replaying its
    journal; determinism of the algorithm stack makes the round trip
    byte-identical, which ["serve.evictions"] / ["serve.hydrations"]
    exist to prove.

    Failures never escape: every misuse, corrupt journal, torn write or
    over-limit request maps to a typed {!Wire.response} error.  The four
    [Session.Error] cases each have a wire code ([already_finished],
    [choice_out_of_range], [journal_corrupt], [journal_mismatch]).

    Counters (all domain-local, all documented in DESIGN.md §13):
    ["serve.sessions"] created, ["serve.resumes"] explicit resume
    requests, ["serve.hydrations"] journal replays into memory,
    ["serve.evictions"] LRU/idle evictions of resumable sessions,
    ["serve.requests"] requests handled, ["serve.wire_errors"] typed error
    replies, and the ["serve.round_latency"] histogram of wall seconds per
    answered round (journal append included). *)

type config = {
  dir : string;  (** journal directory (created if missing) *)
  fsync : Journal_store.fsync_policy;
  max_hydrated : int;  (** LRU capacity, >= 1 *)
  idle_timeout : float;  (** evict sessions idle this long; 0 disables *)
  deadline : float;  (** per-answer compute budget in seconds; 0 disables *)
  max_n : int;  (** largest dataset a [hello] may request *)
  max_d : int;
  allow_shutdown : bool;  (** honor the [shutdown] op *)
  clock : unit -> float;
      (** time source for idle/deadline accounting — injectable so tests
          drive timeouts deterministically; defaults to [Timer.wall] *)
}

val default_config : dir:string -> config
(** [fsync = Batch 8], [max_hydrated = 1024], [idle_timeout = 0.],
    [deadline = 0.], [max_n = 200_000], [max_d = 16],
    [allow_shutdown = false], [clock = Timer.wall]. *)

type t

type outcome =
  | Reply of Wire.response
  | Disconnect
      (** the [inject.client_disconnect] fault fired: the transport must
          drop the connection without replying (session state is intact —
          the client recovers with [resume]/[ask]) *)
  | Stop of Wire.response
      (** a permitted [shutdown]: send the reply, then stop serving *)

val create : config -> t
(** Validates the config (raises [Invalid_argument] on a nonsensical one)
    and ensures the journal directory exists. *)

val handle : t -> Wire.request -> outcome

val handle_line : t -> string -> outcome
(** {!Wire.parse_request} + {!handle}; malformed bytes become a typed
    error reply, never an exception. *)

val sweep : t -> unit
(** Evict sessions idle longer than [idle_timeout].  The transport calls
    this between select wakeups; a no-op when [idle_timeout = 0]. *)

val hydrated : t -> int
(** Number of sessions currently live in memory (tests and stats). *)

val shutdown : t -> unit
(** Close every hydrated session's sink (sessions stay resumable on
    disk). *)
