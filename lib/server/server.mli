(** The socket transport around {!Engine}: a single-threaded
    [Unix.select] loop speaking the line-delimited {!Wire} protocol.

    Connections are stateless carriers — every session lives in the engine
    (and on disk), keyed by its id, so clients can disconnect, reconnect
    and [resume] freely; the [inject.client_disconnect] fault exploits
    exactly this.  A request line over [max_line] bytes gets a typed
    [line_too_long] error and the connection is closed; a reply that cannot
    be written within the send timeout costs the connection, never the
    session.

    [SIGTERM]/[SIGINT] stop the loop gracefully (sinks flushed, socket
    unlinked); [SIGKILL] is the crash the journals exist for. *)

type transport =
  | Unix_path of string  (** Unix domain socket at this path *)
  | Tcp of int  (** TCP on localhost at this port *)

val default_max_line : int
(** 65536 bytes. *)

val run :
  ?plan:Indq_fault.Fault.plan ->
  ?max_line:int ->
  ?on_ready:(unit -> unit) ->
  Engine.config ->
  transport ->
  unit
(** Serve until a permitted [shutdown] request or a termination signal.
    [plan] installs a fault plan on the serving domain for the whole run
    ({!Indq_fault.Fault.with_plan}).  [on_ready] fires once the socket is
    listening — the hook a bench harness uses to start its clients. *)
