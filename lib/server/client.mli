(** A minimal blocking client for the {!Wire} protocol — what the bench
    load generator and the kill-and-restart tests speak through.  One
    request out, one response line back. *)

type t

exception Closed
(** The server closed the connection (EOF mid-read or a failed write) —
    for a client under the [inject.client_disconnect] fault this is the
    expected signal to reconnect and [resume]. *)

exception Protocol of string
(** The peer sent bytes that do not decode as a {!Wire.response}. *)

val connect : ?attempts:int -> Server.transport -> t
(** Connect, retrying [attempts] times (default 50) with a 100 ms pause —
    absorbs the startup race against a server still binding its socket.
    Raises [Unix.Unix_error] once the attempts are exhausted. *)

val rpc : t -> Wire.request -> Wire.response
(** Send one request and block for its reply.  Raises {!Closed} /
    {!Protocol}. *)

val close : t -> unit
