module Session = Indq_core.Session
module Counter = Indq_obs.Counter
module Fault = Indq_fault.Fault

let c_syncs = Counter.make "serve.journal_syncs"
let c_sync_failures = Counter.make "serve.sync_failures"

type fsync_policy = Always | Batch of int | Never

let fsync_policy_of_string text =
  match String.lowercase_ascii text with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | s when String.length s > 6 && String.sub s 0 6 = "batch:" -> (
    match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
    | Some k when k >= 1 -> Ok (Batch k)
    | Some _ | None -> Error "batch count must be a positive integer")
  | _ -> Error "expected always, never, or batch:K"

let fsync_policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Batch k -> Printf.sprintf "batch:%d" k

type t = {
  id : string;
  fd : Unix.file_descr;
  policy : fsync_policy;
  mutable pending : int;  (** records written since the last fsync *)
  mutable broken : bool;  (** a torn append poisoned the sink *)
  mutable closed : bool;
}

exception Torn of string

let () =
  Printexc.register_printer (function
    | Torn id -> Some (Printf.sprintf "Indq_server.Journal_store.Torn(%s)" id)
    | _ -> None)

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let path ~dir id = Filename.concat dir (id ^ ".journal")

let exists ~dir id = Sys.file_exists (path ~dir id)

(* --- Durable writes ---------------------------------------------------- *)

let write_all fd bytes =
  let len = Bytes.length bytes in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

(* One fsync attempt.  Failures — the [inject.journal_sync] fault or a real
   device error — are absorbed by design: the records are already in the
   kernel, durability is retried on the next append, and only the counter
   betrays that anything happened. *)
let try_sync t =
  if t.pending > 0 then begin
    let failed =
      Fault.fire "inject.journal_sync"
      ||
      match Unix.fsync t.fd with
      | () -> false
      | exception Unix.Unix_error _ -> true
    in
    if failed then Counter.incr c_sync_failures
    else begin
      Counter.incr c_syncs;
      t.pending <- 0
    end
  end

let policy_sync t =
  match t.policy with
  | Always -> try_sync t
  | Batch k -> if t.pending >= k then try_sync t
  | Never -> ()

let append_line t line =
  (* A torn append writes a strict prefix of the record and no newline —
     byte-for-byte what a crash between [write] and completion leaves. *)
  if Fault.fire "inject.journal_torn_write" then begin
    let cut = max 1 (String.length line / 2) in
    write_all t.fd (Bytes.of_string (String.sub line 0 cut));
    t.broken <- true;
    raise (Torn t.id)
  end;
  write_all t.fd (Bytes.of_string (line ^ "\n"));
  t.pending <- t.pending + 1

let append t entry =
  if t.broken then raise (Torn t.id);
  append_line t (Session.journal_entry_to_json entry);
  policy_sync t

let sink_id t = t.id

let close t =
  if not t.closed then begin
    t.closed <- true;
    if not t.broken then (match t.policy with Never -> () | _ -> try_sync t);
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* --- Creation and recovery --------------------------------------------- *)

let open_append file =
  Unix.openfile file [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644

let create ~dir ~fsync hello =
  let t =
    {
      id = hello.Wire.id;
      fd = open_append (path ~dir hello.Wire.id);
      policy = fsync;
      pending = 0;
      broken = false;
      closed = false;
    }
  in
  match
    append_line t (Wire.request_to_line (Wire.Hello hello));
    (* The header is the session's registry entry: fsync it regardless of
       policy, so a session the server acknowledged survives any crash. *)
    try_sync t
  with
  | () -> t
  | exception e ->
    (* A tear on the very first write: close the descriptor here — the
       caller never saw a sink — and leave the stub file to the caller's
       cleanup. *)
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    raise e

type loaded = {
  hello : Wire.hello;
  entries : Session.journal_entry list;
  torn_tail : bool;
}

type load_error =
  | No_session
  | Bad_header of string
  | Bad_journal of Session.error

let read_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~dir id =
  let file = path ~dir id in
  if not (Sys.file_exists file) then Error No_session
  else
    let text = read_file file in
    match String.index_opt text '\n' with
    | None ->
      (* No complete first line: the process died inside [create], before
         the header fsync returned.  The session was never acknowledged. *)
      Error (Bad_header "truncated header line")
    | Some nl -> (
      let header = String.sub text 0 nl in
      let rest = String.sub text (nl + 1) (String.length text - nl - 1) in
      match Wire.parse_request header with
      | Ok (Wire.Hello hello) when hello.Wire.id = id -> (
        let body_lines =
          String.split_on_char '\n' rest
          |> List.filter (fun l -> String.trim l <> "")
          |> List.length
        in
        match Session.journal_of_string rest with
        | entries ->
          (* [journal_of_string] silently drops a torn final record; the
             line count betrays whether it did, and a torn tail obliges the
             caller to rewrite before appending. *)
          Ok { hello; entries; torn_tail = body_lines <> List.length entries }
        | exception Session.Error e -> Error (Bad_journal e))
      | Ok (Wire.Hello hello) ->
        Error
          (Bad_header
             (Printf.sprintf "header names session %S, file is for %S"
                hello.Wire.id id))
      | Ok _ -> Error (Bad_header "first line is not a hello record")
      | Error (_, msg) -> Error (Bad_header msg))

(* Canonical re-serialization, written aside and renamed into place: the
   one way a journal is ever modified other than appending, and the step
   that physically removes a torn tail so it cannot be appended after. *)
let rewrite_file ~dir loaded id =
  let file = path ~dir id in
  let tmp = file ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let buf = Buffer.create 1024 in
      Buffer.add_string buf (Wire.request_to_line (Wire.Hello loaded.hello));
      Buffer.add_char buf '\n';
      List.iter
        (fun entry ->
          Buffer.add_string buf (Session.journal_entry_to_json entry);
          Buffer.add_char buf '\n')
        loaded.entries;
      write_all fd (Bytes.of_string (Buffer.contents buf));
      (try Unix.fsync fd with Unix.Unix_error _ -> ()));
  Unix.rename tmp file

let reopen ~dir ~fsync ~rewrite loaded id =
  if rewrite then rewrite_file ~dir loaded id;
  {
    id;
    fd = open_append (path ~dir id);
    policy = fsync;
    pending = 0;
    broken = false;
    closed = false;
  }
