module Counter = Indq_obs.Counter
module Histogram = Indq_obs.Histogram
module Fault = Indq_fault.Fault
module Vec = Indq_linalg.Vec

let c_solves = Counter.make "lp.solves"
let c_iterations = Counter.make "lp.iterations"
let c_warm_starts = Counter.make "lp.warm_starts"
let c_warm_iterations_saved = Counter.make "lp.warm_iterations_saved"
let c_failures = Counter.make "lp.failures"
let c_retry_attempts = Counter.make "retry.attempts"
let c_retry_exhausted = Counter.make "retry.exhausted"

(* Simplex pivots per [solve] call (all attempts: warm, Dantzig, Bland
   retry), observed as the [lp.iterations] delta around the call.  Pivot
   counts are integers, so the histogram — including its float sum —
   merges exactly across domains. *)
let h_pivots_per_solve = Histogram.make "lp.pivots_per_solve"

type relation = Le | Ge | Eq

type constr = { coeffs : float array; relation : relation; rhs : float }

type solution = { objective : float; point : float array }

type error =
  | Iteration_limit of { budget : int }
  | Numerical of { detail : string }

type outcome = Optimal of solution | Infeasible | Unbounded | Failed of error

(* An optimal basis of a previous solve over the *same* constraint list:
   the basic column per tableau row (no artificials), plus the phase-1
   pivot count the originating cold solve paid — what a warm reuse saves. *)
type basis = { cols : int array; phase1_iters : int }

let constr coeffs relation rhs = { coeffs; relation; rhs }

let error_message = function
  | Iteration_limit { budget } ->
    Printf.sprintf
      "iteration budget of %d pivots exhausted under both pivot rules" budget
  | Numerical { detail } -> "numerical failure: " ^ detail

(* Internal escape hatch for corrupted arithmetic: raised where the tableau
   turns out to hold a non-finite value, caught in [solve] and surfaced as
   [Failed (Numerical _)].  Never leaves this module. *)
exception Bad_pivot of string

(* Internal mutable tableau for the two-phase simplex.

   Columns: [0, n) structural vars, [n, n+slacks) slack/surplus vars,
   [n+slacks, total) artificial vars.  Each row i carries its constraint
   coefficients in [rows.(i)] and its right-hand side in [rhs.(i)]; the
   variable basic in row i is [basis.(i)].  The objective row [obj] holds
   reduced costs for the current basis and [obj_value] the negated objective
   so far (standard tableau bookkeeping). *)
type tableau = {
  n : int;  (* structural variables *)
  total : int;  (* all columns *)
  art_start : int;  (* first artificial column *)
  rows : float array array;
  rhs : float array;
  basis : int array;
  mutable obj : float array;
  mutable obj_value : float;
  mutable iters : int;  (* pivots performed on this tableau *)
  tol : float;
}

let check_inputs ~n objective constraints =
  if n <= 0 then invalid_arg "Lp: need at least one variable";
  if Array.length objective <> n then invalid_arg "Lp: objective length <> n";
  List.iter
    (fun (c : constr) ->
      if Array.length c.coeffs <> n then
        invalid_arg "Lp: constraint coefficient length <> n")
    constraints

(* Build the phase-1 tableau.  Every row is first normalized to rhs >= 0. *)
let build ~tol ~n constraints =
  let cs = Array.of_list constraints in
  let m = Array.length cs in
  (* Count extra columns. *)
  let slack_count =
    Array.fold_left
      (fun acc (c : constr) -> match c.relation with Le | Ge -> acc + 1 | Eq -> acc)
      0 cs
  in
  (* Normalize rows so rhs >= 0, which may flip the relation.  A >= row
     with rhs exactly 0 is rewritten as a <= row (negated): its slack can
     start basic at 0, avoiding an artificial variable — the common case
     for preference-hyperplane cuts [(a - b) . v >= 0]. *)
  let normalized =
    Array.map
      (fun (c : constr) ->
        if c.rhs < 0. || (Float.equal c.rhs 0. && c.relation = Ge) then
          let flipped =
            match c.relation with Le -> Ge | Ge -> Le | Eq -> Eq
          in
          { coeffs = Array.map (fun x -> -.x) c.coeffs;
            relation = flipped;
            rhs = -.c.rhs }
        else c)
      cs
  in
  (* A <= row with rhs >= 0 starts with its slack basic; >= and = rows need
     an artificial.  Count artificials. *)
  let art_count =
    Array.fold_left
      (fun acc (c : constr) -> match c.relation with Le -> acc | Ge | Eq -> acc + 1)
      0 normalized
  in
  let art_start = n + slack_count in
  let total = art_start + art_count in
  let rows = Array.init m (fun _ -> Array.make total 0.) in
  let rhs = Array.make m 0. in
  let basis = Array.make m (-1) in
  let next_slack = ref n in
  let next_art = ref art_start in
  Array.iteri
    (fun i (c : constr) ->
      Array.blit c.coeffs 0 rows.(i) 0 n;
      rhs.(i) <- c.rhs;
      (match c.relation with
      | Le ->
        rows.(i).(!next_slack) <- 1.;
        basis.(i) <- !next_slack;
        incr next_slack
      | Ge ->
        rows.(i).(!next_slack) <- -1.;
        incr next_slack;
        rows.(i).(!next_art) <- 1.;
        basis.(i) <- !next_art;
        incr next_art
      | Eq ->
        rows.(i).(!next_art) <- 1.;
        basis.(i) <- !next_art;
        incr next_art))
    normalized;
  (* Phase-1 objective: minimize the sum of artificials.  Express its reduced
     costs for the starting basis by subtracting each artificial's row. *)
  let obj = Array.make total 0. in
  for j = art_start to total - 1 do
    obj.(j) <- 1.
  done;
  let obj_value = ref 0. in
  Array.iteri
    (fun i b ->
      if b >= art_start then begin
        Vec.axpy_ip (-1.) rows.(i) obj;
        obj_value := !obj_value -. rhs.(i)
      end)
    basis;
  { n; total; art_start; rows; rhs; basis; obj; obj_value = !obj_value;
    iters = 0; tol }

let tableau_corrupt t =
  let bad x = not (Float.is_finite x) in
  Array.exists bad t.rhs
  || Array.exists bad t.obj
  || Array.exists (fun r -> Array.exists bad r) t.rows

let pivot t ~row ~col =
  Counter.incr c_iterations;
  t.iters <- t.iters + 1;
  let pivot_value = t.rows.(row).(col) in
  if not (Float.is_finite pivot_value) then
    raise
      (Bad_pivot
         (Printf.sprintf "non-finite pivot element in row %d, column %d" row col));
  let r = t.rows.(row) in
  for j = 0 to t.total - 1 do
    r.(j) <- r.(j) /. pivot_value
  done;
  t.rhs.(row) <- t.rhs.(row) /. pivot_value;
  (* [y -. factor *. x] and [axpy_ip (-.factor) x y] produce the same bits
     (negation is exact), so the in-place rewrite changes no result. *)
  for i = 0 to Array.length t.rows - 1 do
    if i <> row then begin
      let factor = t.rows.(i).(col) in
      if Float.abs factor > 0. then begin
        Vec.axpy_ip (-.factor) r t.rows.(i);
        t.rhs.(i) <- t.rhs.(i) -. (factor *. t.rhs.(row))
      end
    end
  done;
  let factor = t.obj.(col) in
  if Float.abs factor > 0. then begin
    Vec.axpy_ip (-.factor) r t.obj;
    t.obj_value <- t.obj_value -. (factor *. t.rhs.(row))
  end;
  t.basis.(row) <- col

(* Entering column under the requested pivot rule, or -1 at optimality.
   Dantzig picks the most negative reduced cost (smallest index on exact
   ties) — fast, but can cycle on degenerate problems; Bland picks the
   smallest index with a negative reduced cost, which provably terminates. *)
let entering_column t ~rule ~allowed =
  match rule with
  | `Bland ->
    let entering = ref (-1) in
    (try
       for j = 0 to t.total - 1 do
         if allowed j && t.obj.(j) < -.t.tol then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    !entering
  | `Dantzig ->
    let entering = ref (-1) in
    let best = ref (-.t.tol) in
    for j = 0 to t.total - 1 do
      if allowed j && t.obj.(j) < !best then begin
        entering := j;
        best := t.obj.(j)
      end
    done;
    !entering

(* One simplex run on the current objective row.  [allowed j] restricts the
   entering columns (used to freeze artificials in phase 2); [fuel] is the
   remaining pivot budget, shared across phases of one attempt.  Returns
   [`Optimal], [`Unbounded], or [`Budget] when the fuel runs out with the
   tableau still improvable. *)
let solve_phase t ~rule ~allowed ~fuel =
  let m = Array.length t.rows in
  let rec iterate () =
    let col = entering_column t ~rule ~allowed in
    if col < 0 then `Optimal
    else if !fuel <= 0 then `Budget
    else begin
      (* Ratio test; Bland tie-break on smallest basic variable index. *)
      let best_row = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to m - 1 do
        let a = t.rows.(i).(col) in
        if a > t.tol then begin
          let ratio = t.rhs.(i) /. a in
          if
            ratio < !best_ratio -. t.tol
            || (Float.abs (ratio -. !best_ratio) <= t.tol
               && (!best_row < 0 || t.basis.(i) < t.basis.(!best_row)))
          then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        decr fuel;
        pivot t ~row:!best_row ~col;
        iterate ()
      end
    end
  in
  iterate ()

(* Drive any artificial variable that is still basic (necessarily at value
   ~0) out of the basis, or mark its row as redundant by leaving it — the row
   then has all-zero structural coefficients and never constrains phase 2
   because artificial columns are frozen. *)
let expel_artificials t =
  let m = Array.length t.rows in
  for i = 0 to m - 1 do
    if t.basis.(i) >= t.art_start then begin
      let col = ref (-1) in
      (try
         for j = 0 to t.art_start - 1 do
           if Float.abs t.rows.(i).(j) > t.tol then begin
             col := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !col >= 0 then pivot t ~row:i ~col:!col
    end
  done

let extract_point t =
  let x = Array.make t.n 0. in
  Array.iteri
    (fun i b -> if b < t.n then x.(b) <- t.rhs.(i))
    t.basis;
  x

(* The optimal solution of a finished tableau, validated finite: corrupted
   arithmetic that slipped past the per-pivot guard is caught here instead
   of leaking NaN into geometry. *)
let final_solution t =
  let objective = -.t.obj_value in
  let point = extract_point t in
  if Float.is_finite objective && Array.for_all Float.is_finite point then
    Ok { objective; point }
  else Error "non-finite optimal solution"

(* Install a fresh objective (phase 2) and express it in terms of the current
   basis. *)
let install_objective t cost =
  let obj = Array.make t.total 0. in
  Array.blit cost 0 obj 0 t.n;
  let obj_value = ref 0. in
  Array.iteri
    (fun i b ->
      if Float.abs obj.(b) > 0. then begin
        let factor = obj.(b) in
        Vec.axpy_ip (-.factor) t.rows.(i) obj;
        obj_value := !obj_value -. (factor *. t.rhs.(i))
      end)
    t.basis;
  t.obj <- obj;
  t.obj_value <- !obj_value

(* Re-express a fresh tableau in terms of a previously optimal basis of the
   same constraint list, skipping phase 1 entirely.  Pivots are placed
   greedily (any remaining target with a usable pivot element first), which
   handles bases whose row order disagrees with a straight top-down
   elimination.  Returns [false] — leaving the caller to rebuild cold —
   when the basis doesn't fit (wrong row count, artificial columns,
   numerically singular, or not primal feasible for this constraint list). *)
let install_basis t (w : basis) =
  let m = Array.length t.rows in
  if Array.length w.cols <> m then false
  else if Array.exists (fun c -> c < 0 || c >= t.art_start) w.cols then false
  else begin
    let placed = Array.make m false in
    (* Rows already starting with the right basic variable need no pivot. *)
    Array.iteri
      (fun i c -> if t.basis.(i) = c then placed.(i) <- true)
      w.cols;
    let progress = ref true in
    let remaining = ref (Array.fold_left
      (fun acc p -> if p then acc else acc + 1) 0 placed)
    in
    while !remaining > 0 && !progress do
      progress := false;
      for i = 0 to m - 1 do
        if (not placed.(i)) && Float.abs t.rows.(i).(w.cols.(i)) > t.tol then begin
          pivot t ~row:i ~col:w.cols.(i);
          placed.(i) <- true;
          decr remaining;
          progress := true
        end
      done
    done;
    !remaining = 0
    && Array.for_all (fun r -> r >= 0.) t.rhs
  end

(* Default pivot budget: generous for the small problems this solver sees
   (d <= 10 variables, a few dozen constraints need well under a hundred
   pivots), yet finite, so a degenerate cycle under the Dantzig rule is cut
   off and retried under Bland instead of spinning forever. *)
let default_budget ~n ~m = 1000 + (50 * (n + (3 * m)))

let solve_lp ?(tol = 1e-9) ?warm ?max_pivots ~n ~objective direction constraints =
  let cost =
    match direction with
    | `Minimize -> objective
    | `Maximize -> Array.map (fun c -> -.c) objective
  in
  check_inputs ~n objective constraints;
  Counter.incr c_solves;
  let finish outcome =
    match (direction, outcome) with
    | `Maximize, Optimal { objective; point } ->
      Optimal { objective = -.objective; point }
    | _, o -> o
  in
  if constraints = [] then begin
    (* Only x >= 0: the minimum is 0 at the origin unless some objective
       coefficient is negative, in which case the problem is unbounded. *)
    if Array.exists (fun c -> c < -.tol) cost then (finish Unbounded, None)
    else (finish (Optimal { objective = 0.; point = Array.make n 0. }), None)
  end
  else begin
    let m = List.length constraints in
    let budget =
      match max_pivots with Some b -> max 0 b | None -> default_budget ~n ~m
    in
    (* Injection sites.  The iteration-cap site collapses only the *primary*
       budget, so the Bland fallback is what recovers; the NaN site corrupts
       the freshly built tableau, which the corruption scan turns into the
       typed [Failed (Numerical _)]. *)
    let primary_budget =
      if Fault.fire "inject.lp_iteration_cap" then 0 else budget
    in
    let nan_injected = Fault.fire "inject.lp_nan_pivot" in
    let build_tableau () =
      let t = build ~tol ~n constraints in
      if nan_injected then begin
        t.rhs.(0) <- Float.nan;
        if tableau_corrupt t then raise (Bad_pivot "non-finite tableau entry")
      end;
      t
    in
    (* One cold two-phase attempt under [rule].  [`Budget] means the fuel ran
       out mid-pivot; numerical corruption escapes as [Bad_pivot]. *)
    let cold rule fuel =
      let t = build_tableau () in
      match solve_phase t ~rule ~allowed:(fun _ -> true) ~fuel with
      | `Budget -> `Budget
      | `Unbounded ->
        (* Phase-1 objective (sum of artificials, all bounded below by 0) can
           never be unbounded; treat as numerically infeasible. *)
        `Done (finish Infeasible, None)
      | `Optimal ->
        (* obj_value holds the negated phase-1 objective. *)
        if -.t.obj_value > 1e-7 then `Done (finish Infeasible, None)
        else begin
          expel_artificials t;
          let phase1_iters = t.iters in
          install_objective t cost;
          let allowed j = j < t.art_start in
          match solve_phase t ~rule ~allowed ~fuel with
          | `Budget -> `Budget
          | `Unbounded -> `Done (finish Unbounded, None)
          | `Optimal ->
            (match final_solution t with
            | Error detail -> raise (Bad_pivot detail)
            | Ok s ->
              `Done
                ( finish (Optimal s),
                  Some { cols = Array.copy t.basis; phase1_iters } ))
        end
    in
    (* Warm path: adopt the prior optimal basis — a feasible basis for any
       objective over the same constraint list — and go straight to phase 2.
       Any trouble (unusable basis, budget, corruption) falls back to the
       cold two-phase path, so a stale basis can cost time but never
       correctness. *)
    let warm_attempt () =
      match warm with
      | None -> None
      | Some w ->
        let t = build_tableau () in
        if not (install_basis t w) then None
        else begin
          Counter.incr c_warm_starts;
          Counter.add c_warm_iterations_saved (float_of_int w.phase1_iters);
          install_objective t cost;
          let allowed j = j < t.art_start in
          match solve_phase t ~rule:`Dantzig ~allowed ~fuel:(ref primary_budget) with
          | `Budget -> None
          | `Unbounded -> Some (finish Unbounded, None)
          | `Optimal ->
            (match final_solution t with
            | Error _ -> None
            | Ok s ->
              Some
                ( finish (Optimal s),
                  Some
                    { cols = Array.copy t.basis;
                      phase1_iters = w.phase1_iters } ))
        end
    in
    let fail err =
      Counter.incr c_failures;
      (Failed err, None)
    in
    match (try warm_attempt () with Bad_pivot _ -> None) with
    | Some r -> r
    | None ->
      (match cold `Dantzig (ref primary_budget) with
      | `Done r -> r
      | exception Bad_pivot detail -> fail (Numerical { detail })
      | `Budget ->
        (* Anti-cycling fallback: rebuild and rerun under Bland's rule,
           which cannot cycle.  Exhausting the budget even there is
           surfaced as the typed iteration-limit failure. *)
        Counter.incr c_retry_attempts;
        (match cold `Bland (ref budget) with
        | `Done r -> r
        | exception Bad_pivot detail -> fail (Numerical { detail })
        | `Budget ->
          Counter.incr c_retry_exhausted;
          fail (Iteration_limit { budget })))
  end

let solve ?tol ?warm ?max_pivots ~n ~objective direction constraints =
  let pivots_before = Counter.value c_iterations in
  let result = solve_lp ?tol ?warm ?max_pivots ~n ~objective direction constraints in
  Histogram.observe h_pivots_per_solve
    (Counter.value c_iterations -. pivots_before);
  result

let minimize ?tol ~n ~objective constraints =
  fst (solve ?tol ~n ~objective `Minimize constraints)

let maximize ?tol ~n ~objective constraints =
  fst (solve ?tol ~n ~objective `Maximize constraints)

let feasible_point ?tol ~n constraints =
  match minimize ?tol ~n ~objective:(Array.make n 0.) constraints with
  | Optimal { point; _ } -> Some point
  | Infeasible -> None
  | Unbounded -> None
  | Failed _ -> None

let is_feasible ?tol ~n constraints = feasible_point ?tol ~n constraints <> None
