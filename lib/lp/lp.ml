module Counter = Indq_obs.Counter
module Histogram = Indq_obs.Histogram
module Fault = Indq_fault.Fault
module Vec = Indq_linalg.Vec
module Mat = Indq_linalg.Mat

let c_solves = Counter.make "lp.solves"
let c_iterations = Counter.make "lp.iterations"
let c_dual_reopt = Counter.make "lp.dual_reopt"
let c_dual_pivots = Counter.make "lp.dual_pivots"
let c_failures = Counter.make "lp.failures"
let c_retry_attempts = Counter.make "retry.attempts"
let c_retry_exhausted = Counter.make "retry.exhausted"

(* Counters and pivot histograms are split by path, disjointly.  Cold
   two-phase [solve] calls count in [lp.solves], pivot into
   [lp.iterations], and observe [lp.pivots_per_solve] (all attempts:
   Dantzig, Bland retry).  Live-tableau operations — phase-1 setup in
   [Live.create], dual-simplex cut absorption in [add_cut], phase-2-only
   re-optimization in [optimize] — pivot into [lp.dual_pivots], count
   re-optimizations in [lp.dual_reopt], and observe
   [lp.pivots_per_reopt].  A pivot lands in exactly one of
   [lp.iterations] / [lp.dual_pivots] (decided by which tableau it runs
   on), so the two counters compare the legacy and incremental engines
   directly.  Each histogram is measured as the delta of its path's
   counter around the call; pivot counts are integers, so every
   histogram (including its float sum) merges exactly across domains. *)
let h_pivots_per_solve = Histogram.make "lp.pivots_per_solve"
let h_pivots_per_reopt = Histogram.make "lp.pivots_per_reopt"

type relation = Le | Ge | Eq

type constr = { coeffs : Vec.t; relation : relation; rhs : float }

type solution = { objective : float; point : Vec.t }

type error =
  | Iteration_limit of { budget : int }
  | Numerical of { detail : string }

type outcome = Optimal of solution | Infeasible | Unbounded | Failed of error

let constr coeffs relation rhs = { coeffs; relation; rhs }

let error_message = function
  | Iteration_limit { budget } ->
    Printf.sprintf
      "iteration budget of %d pivots exhausted under both pivot rules" budget
  | Numerical { detail } -> "numerical failure: " ^ detail

(* Internal escape hatch for corrupted arithmetic: raised where the tableau
   turns out to hold a non-finite value, caught in [solve] / [Live] and
   surfaced as [Failed (Numerical _)].  Never leaves this module. *)
exception Bad_pivot of string

(* Internal mutable tableau for the simplex.

   Columns: [0, n) structural vars, [n, art_start) slack/surplus vars,
   [art_start, art_end) artificial vars, [art_end, ncols) slacks of rows
   appended later by [Live.add_cut].  The live area is rows [0, m) and
   columns [0, ncols) of a capacity grid: [data] rows keep every cell
   beyond [ncols] at 0 and [obj] likewise, so whole-row kernel sweeps are
   sound and appending a column is O(1) amortized.  Each row i carries its
   right-hand side in [rhs.(i)]; the variable basic in row i is
   [basis.(i)].  The objective row [obj] holds reduced costs for the
   current basis and [obj_value] the negated objective so far (standard
   tableau bookkeeping). *)
type tableau = {
  n : int;  (* structural variables *)
  art_start : int;  (* first artificial column *)
  art_end : int;  (* one past the last artificial column *)
  mutable m : int;  (* live rows *)
  mutable ncols : int;  (* live columns *)
  mutable data : Mat.t;  (* capacity grid; live rows/cols as above *)
  mutable rhs : Vec.t;  (* capacity [Mat.rows data] *)
  mutable basis : int array;  (* capacity [Mat.rows data] *)
  mutable obj : Vec.t;  (* capacity [Mat.cols data] *)
  mutable obj_value : float;
  mutable iters : int;  (* pivots performed on this tableau *)
  tol : float;
  live : bool;  (* pivots count in lp.dual_pivots, not lp.iterations *)
}

let check_inputs ~n objective constraints =
  if n <= 0 then invalid_arg "Lp: need at least one variable";
  if Vec.dim objective <> n then invalid_arg "Lp: objective length <> n";
  List.iter
    (fun (c : constr) ->
      if Vec.dim c.coeffs <> n then
        invalid_arg "Lp: constraint coefficient length <> n")
    constraints

(* Build the phase-1 tableau.  Every row is first normalized to rhs >= 0.
   [reserve] leaves headroom in both dimensions for rows a [Live] handle
   appends later. *)
let build ~tol ~n ?(reserve = 0) ?(live = false) constraints =
  let cs = Array.of_list constraints in
  let m = Array.length cs in
  (* Count extra columns. *)
  let slack_count =
    Array.fold_left
      (fun acc (c : constr) ->
        match c.relation with Le | Ge -> acc + 1 | Eq -> acc)
      0 cs
  in
  (* Normalize rows so rhs >= 0, which may flip the relation.  A >= row
     with rhs exactly 0 is rewritten as a <= row (negated): its slack can
     start basic at 0, avoiding an artificial variable — the common case
     for preference-hyperplane cuts [(a - b) . v >= 0]. *)
  let normalized =
    Array.map
      (fun (c : constr) ->
        if c.rhs < 0. || (Float.equal c.rhs 0. && c.relation = Ge) then
          let flipped =
            match c.relation with Le -> Ge | Ge -> Le | Eq -> Eq
          in
          { coeffs = Vec.neg c.coeffs; relation = flipped; rhs = -.c.rhs }
        else c)
      cs
  in
  (* A <= row with rhs >= 0 starts with its slack basic; >= and = rows need
     an artificial.  Count artificials. *)
  let art_count =
    Array.fold_left
      (fun acc (c : constr) ->
        match c.relation with Le -> acc | Ge | Eq -> acc + 1)
      0 normalized
  in
  let art_start = n + slack_count in
  let art_end = art_start + art_count in
  let cap_rows = m + reserve and cap_cols = art_end + reserve in
  let data = Mat.create (max cap_rows 1) (max cap_cols 1) in
  let rhs = Vec.make (max cap_rows 1) 0. in
  let basis = Array.make (max cap_rows 1) (-1) in
  let next_slack = ref n in
  let next_art = ref art_start in
  Array.iteri
    (fun i (c : constr) ->
      let row = Mat.row_view data i in
      Vec.blit ~src:c.coeffs ~dst:(Vec.sub_view row ~pos:0 ~len:n);
      Vec.set rhs i c.rhs;
      match c.relation with
      | Le ->
        Vec.set row !next_slack 1.;
        basis.(i) <- !next_slack;
        incr next_slack
      | Ge ->
        Vec.set row !next_slack (-1.);
        incr next_slack;
        Vec.set row !next_art 1.;
        basis.(i) <- !next_art;
        incr next_art
      | Eq ->
        Vec.set row !next_art 1.;
        basis.(i) <- !next_art;
        incr next_art)
    normalized;
  (* Phase-1 objective: minimize the sum of artificials.  Express its reduced
     costs for the starting basis by subtracting each artificial's row. *)
  let obj = Vec.make (max cap_cols 1) 0. in
  for j = art_start to art_end - 1 do
    Vec.set obj j 1.
  done;
  let obj_value = ref 0. in
  for i = 0 to m - 1 do
    if basis.(i) >= art_start && basis.(i) < art_end then begin
      Vec.axpy_ip (-1.) (Mat.row_view data i) obj;
      obj_value := !obj_value -. Vec.get rhs i
    end
  done;
  { n; art_start; art_end; m; ncols = art_end; data; rhs; basis; obj;
    obj_value = !obj_value; iters = 0; tol; live }

let tableau_corrupt t =
  let bad x = not (Float.is_finite x) in
  let live_bad v len =
    let hit = ref false in
    for i = 0 to len - 1 do
      if bad (Vec.get v i) then hit := true
    done;
    !hit
  in
  let rows_bad = ref false in
  for i = 0 to t.m - 1 do
    if live_bad (Mat.row_view t.data i) t.ncols then rows_bad := true
  done;
  live_bad t.rhs t.m || live_bad t.obj t.ncols || !rows_bad

let pivot t ~row ~col =
  Counter.incr (if t.live then c_dual_pivots else c_iterations);
  t.iters <- t.iters + 1;
  let pivot_value = Mat.get t.data row col in
  if
    not
      ((Float.is_finite pivot_value)
      [@indq.alloc_ok
        "allocation-free by inspection (x -. x = 0. under the hood) but \
         outside the annotated surface"])
  then
    (raise
       (Bad_pivot
          (Printf.sprintf "non-finite pivot element in row %d, column %d" row
             col))
    [@indq.alloc_ok
      "cold failure path: the exception payload only materializes when \
       the tableau is already corrupt"]);
  let r =
    (Mat.row_view t.data row
    [@indq.alloc_ok
      "one O(1) view descriptor per pivot, amortized over the O(m*n) \
       row sweep it enables; the sweep itself stays in-place"])
  in
  Vec.scale_ip (1. /. pivot_value) r;
  Vec.set t.rhs row (Vec.get t.rhs row /. pivot_value);
  (* Cells beyond [ncols] are zero in every row and in [obj], so the
     full-capacity kernel sweeps below leave them zero. *)
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let factor = Mat.get t.data i col in
      if Float.abs factor > 0. then begin
        Vec.axpy_ip (-.factor) r
          (Mat.row_view t.data i
          [@indq.alloc_ok
            "one O(1) view descriptor per eliminated row, amortized over \
             the O(n) axpy it feeds"]);
        Vec.set t.rhs i (Vec.get t.rhs i -. (factor *. Vec.get t.rhs row))
      end
    end
  done;
  let factor = Vec.get t.obj col in
  if Float.abs factor > 0. then begin
    Vec.axpy_ip (-.factor) r t.obj;
    ((t.obj_value <- t.obj_value -. (factor *. Vec.get t.rhs row))
    [@indq.alloc_ok
      "one boxed float per pivot: obj_value lives in a mixed record, so \
       the store boxes; bounded by the pivot count, not the row sweep"])
  end;
  t.basis.(row) <- col
[@@indq.alloc_free
  "dual-simplex pivot kernel: row normalization and elimination run as \
   in-place Vec kernels over the flat tableau; the audited exceptions \
   are the O(1)-per-pivot view descriptors and the obj_value box"]

(* Columns an entering pivot may use: artificials are frozen once phase 1
   ends, everything else — structural, slack, appended slack — is fair. *)
let col_allowed t j = j < t.art_start || j >= t.art_end

(* Entering column under the requested pivot rule, or -1 at optimality.
   Dantzig picks the most negative reduced cost (smallest index on exact
   ties) — fast, but can cycle on degenerate problems; Bland picks the
   smallest index with a negative reduced cost, which provably terminates. *)
let entering_column t ~rule ~allowed =
  match rule with
  | `Bland ->
    let entering = ref (-1) in
    (try
       for j = 0 to t.ncols - 1 do
         if allowed j && Vec.get t.obj j < -.t.tol then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    !entering
  | `Dantzig ->
    let entering = ref (-1) in
    let best = ref (-.t.tol) in
    for j = 0 to t.ncols - 1 do
      if allowed j && Vec.get t.obj j < !best then begin
        entering := j;
        best := Vec.get t.obj j
      end
    done;
    !entering

(* One simplex run on the current objective row.  [allowed j] restricts the
   entering columns (used to freeze artificials in phase 2); [fuel] is the
   remaining pivot budget, shared across phases of one attempt.  Returns
   [`Optimal], [`Unbounded], or [`Budget] when the fuel runs out with the
   tableau still improvable. *)
let solve_phase t ~rule ~allowed ~fuel =
  let rec iterate () =
    let col = entering_column t ~rule ~allowed in
    if col < 0 then `Optimal
    else if !fuel <= 0 then `Budget
    else begin
      (* Ratio test; Bland tie-break on smallest basic variable index. *)
      let best_row = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to t.m - 1 do
        let a = Mat.get t.data i col in
        if a > t.tol then begin
          let ratio = Vec.get t.rhs i /. a in
          if
            ratio < !best_ratio -. t.tol
            || (Float.abs (ratio -. !best_ratio) <= t.tol
               && (!best_row < 0 || t.basis.(i) < t.basis.(!best_row)))
          then begin
            best_row := i;
            best_ratio := ratio
          end
        end
      done;
      if !best_row < 0 then `Unbounded
      else begin
        decr fuel;
        pivot t ~row:!best_row ~col;
        iterate ()
      end
    end
  in
  iterate ()

(* Drive any artificial variable that is still basic (necessarily at value
   ~0) out of the basis, or mark its row as redundant by leaving it — the row
   then has all-zero structural coefficients and never constrains phase 2
   because artificial columns are frozen. *)
let expel_artificials t =
  for i = 0 to t.m - 1 do
    if t.basis.(i) >= t.art_start && t.basis.(i) < t.art_end then begin
      let col = ref (-1) in
      (try
         for j = 0 to t.art_start - 1 do
           if Float.abs (Mat.get t.data i j) > t.tol then begin
             col := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !col >= 0 then pivot t ~row:i ~col:!col
    end
  done

let extract_point t =
  let x = Vec.make t.n 0. in
  for i = 0 to t.m - 1 do
    let b = t.basis.(i) in
    if b < t.n then Vec.set x b (Vec.get t.rhs i)
  done;
  x

(* The optimal solution of a finished tableau, validated finite: corrupted
   arithmetic that slipped past the per-pivot guard is caught here instead
   of leaking NaN into geometry. *)
let final_solution t =
  let objective = -.t.obj_value in
  let point = extract_point t in
  if Float.is_finite objective && Vec.for_all Float.is_finite point then
    Ok { objective; point }
  else Error "non-finite optimal solution"

(* Install a fresh objective (phase 2) and express it in terms of the current
   basis. *)
let install_objective t cost =
  let obj = Vec.make (Mat.cols t.data) 0. in
  Vec.blit ~src:cost ~dst:(Vec.sub_view obj ~pos:0 ~len:t.n);
  let obj_value = ref 0. in
  for i = 0 to t.m - 1 do
    let b = t.basis.(i) in
    if Float.abs (Vec.get obj b) > 0. then begin
      let factor = Vec.get obj b in
      Vec.axpy_ip (-.factor) (Mat.row_view t.data i) obj;
      obj_value := !obj_value -. (factor *. Vec.get t.rhs i)
    end
  done;
  t.obj <- obj;
  t.obj_value <- !obj_value

(* Default pivot budget: generous for the small problems this solver sees
   (d <= 10 variables, a few dozen constraints need well under a hundred
   pivots), yet finite, so a degenerate cycle under the Dantzig rule is cut
   off and retried under Bland instead of spinning forever. *)
let default_budget ~n ~m = 1000 + (50 * (n + (3 * m)))

let internal_cost direction objective =
  match direction with
  | `Minimize -> objective
  | `Maximize -> Vec.neg objective

let finish direction outcome =
  match (direction, outcome) with
  | `Maximize, Optimal { objective; point } ->
    Optimal { objective = -.objective; point }
  | _, o -> o

let solve_lp ?(tol = 1e-9) ?max_pivots ~n ~objective direction constraints =
  let cost = internal_cost direction objective in
  check_inputs ~n objective constraints;
  Counter.incr c_solves;
  let finish o = finish direction o in
  if constraints = [] then begin
    (* Only x >= 0: the minimum is 0 at the origin unless some objective
       coefficient is negative, in which case the problem is unbounded. *)
    if Vec.exists (fun c -> c < -.tol) cost then finish Unbounded
    else finish (Optimal { objective = 0.; point = Vec.make n 0. })
  end
  else begin
    let m = List.length constraints in
    let budget =
      match max_pivots with Some b -> max 0 b | None -> default_budget ~n ~m
    in
    (* Injection sites.  The iteration-cap site collapses only the *primary*
       budget, so the Bland fallback is what recovers; the NaN site corrupts
       the freshly built tableau, which the corruption scan turns into the
       typed [Failed (Numerical _)]. *)
    let primary_budget =
      if Fault.fire "inject.lp_iteration_cap" then 0 else budget
    in
    let nan_injected = Fault.fire "inject.lp_nan_pivot" in
    let build_tableau () =
      let t = build ~tol ~n constraints in
      if nan_injected then begin
        Vec.set t.rhs 0 Float.nan;
        if tableau_corrupt t then raise (Bad_pivot "non-finite tableau entry")
      end;
      t
    in
    (* One cold two-phase attempt under [rule].  [`Budget] means the fuel ran
       out mid-pivot; numerical corruption escapes as [Bad_pivot]. *)
    let cold rule fuel =
      let t = build_tableau () in
      match solve_phase t ~rule ~allowed:(fun _ -> true) ~fuel with
      | `Budget -> `Budget
      | `Unbounded ->
        (* Phase-1 objective (sum of artificials, all bounded below by 0) can
           never be unbounded; treat as numerically infeasible. *)
        `Done (finish Infeasible)
      | `Optimal ->
        (* obj_value holds the negated phase-1 objective. *)
        if -.t.obj_value > 1e-7 then `Done (finish Infeasible)
        else begin
          expel_artificials t;
          install_objective t cost;
          match solve_phase t ~rule ~allowed:(col_allowed t) ~fuel with
          | `Budget -> `Budget
          | `Unbounded -> `Done (finish Unbounded)
          | `Optimal ->
            (match final_solution t with
            | Error detail -> raise (Bad_pivot detail)
            | Ok s -> `Done (finish (Optimal s)))
        end
    in
    let fail err =
      Counter.incr c_failures;
      Failed err
    in
    match cold `Dantzig (ref primary_budget) with
    | `Done r -> r
    | exception Bad_pivot detail -> fail (Numerical { detail })
    | `Budget ->
      (* Anti-cycling fallback: rebuild and rerun under Bland's rule,
         which cannot cycle.  Exhausting the budget even there is
         surfaced as the typed iteration-limit failure. *)
      Counter.incr c_retry_attempts;
      (match cold `Bland (ref budget) with
      | `Done r -> r
      | exception Bad_pivot detail -> fail (Numerical { detail })
      | `Budget ->
        Counter.incr c_retry_exhausted;
        fail (Iteration_limit { budget }))
  end

let solve ?tol ?max_pivots ~n ~objective direction constraints =
  let pivots_before = Counter.value c_iterations in
  let result = solve_lp ?tol ?max_pivots ~n ~objective direction constraints in
  Histogram.observe h_pivots_per_solve
    (Counter.value c_iterations -. pivots_before);
  result

let minimize ?tol ~n ~objective constraints =
  solve ?tol ~n ~objective `Minimize constraints

let maximize ?tol ~n ~objective constraints =
  solve ?tol ~n ~objective `Maximize constraints

let feasible_point ?tol ~n constraints =
  match minimize ?tol ~n ~objective:(Vec.make n 0.) constraints with
  | Optimal { point; _ } -> Some point
  | Infeasible -> None
  | Unbounded -> None
  | Failed _ -> None

let is_feasible ?tol ~n constraints = feasible_point ?tol ~n constraints <> None

(* --- Live handles: dual-simplex re-optimization ------------------------ *)

module Live = struct
  type handle = {
    tab : tableau;
    max_pivots : int option;
    mutable ok : bool;  (* false once the tableau is mid-pivot garbage *)
  }

  type t = handle

  let n h = h.tab.n

  let usable h = h.ok

  let point h = extract_point h.tab

  let budget h =
    match h.max_pivots with
    | Some b -> max 0 b
    | None -> default_budget ~n:h.tab.n ~m:h.tab.m

  (* Grow the capacity grid.  Fresh cells are zero, preserving the
     "dead area is all zeros" invariant the pivot sweeps rely on. *)
  let ensure_capacity t ~rows ~cols =
    let cap_rows = Mat.rows t.data and cap_cols = Mat.cols t.data in
    if rows > cap_rows || cols > cap_cols then begin
      let new_rows = if rows > cap_rows then max rows (2 * cap_rows) else cap_rows in
      let new_cols = if cols > cap_cols then max cols (2 * cap_cols) else cap_cols in
      let data = Mat.create new_rows new_cols in
      for i = 0 to t.m - 1 do
        Vec.blit
          ~src:(Mat.row_view t.data i)
          ~dst:(Vec.sub_view (Mat.row_view data i) ~pos:0 ~len:cap_cols)
      done;
      t.data <- data;
      let rhs = Vec.make new_rows 0. in
      Vec.blit ~src:t.rhs ~dst:(Vec.sub_view rhs ~pos:0 ~len:cap_rows);
      t.rhs <- rhs;
      let basis = Array.make new_rows (-1) in
      Array.blit t.basis 0 basis 0 cap_rows;
      t.basis <- basis;
      let obj = Vec.make new_cols 0. in
      Vec.blit ~src:t.obj ~dst:(Vec.sub_view obj ~pos:0 ~len:cap_cols);
      t.obj <- obj
    end

  let copy h =
    let t = h.tab in
    {
      h with
      tab =
        {
          t with
          data = Mat.copy t.data;
          rhs = Vec.copy t.rhs;
          basis = Array.copy t.basis;
          obj = Vec.copy t.obj;
        };
    }

  let create ?(tol = 1e-9) ?max_pivots ~n constraints =
    check_inputs ~n (Vec.make n 0.) constraints;
    if constraints = [] then
      invalid_arg "Lp.Live.create: need at least one constraint";
    let m = List.length constraints in
    let budget =
      match max_pivots with
      | Some b -> max 0 b
      | None -> default_budget ~n ~m
    in
    (* Phase 1 to a feasible basis; Bland retry on a Dantzig cycle, like
       the cold path.  Reserve headroom for the cuts a live handle exists
       to absorb. *)
    let attempt rule =
      let t = build ~tol ~n ~reserve:8 ~live:true constraints in
      match solve_phase t ~rule ~allowed:(fun _ -> true) ~fuel:(ref budget) with
      | `Budget -> `Budget
      | `Unbounded -> `Done `Infeasible
      | `Optimal ->
        if -.t.obj_value > 1e-7 then `Done `Infeasible
        else begin
          expel_artificials t;
          install_objective t (Vec.make n 0.);
          `Done (`Feasible { tab = t; max_pivots; ok = true })
        end
    in
    match attempt `Dantzig with
    | `Done r -> r
    | exception Bad_pivot detail -> `Failed (Numerical { detail })
    | `Budget -> (
      Counter.incr c_retry_attempts;
      match attempt `Bland with
      | `Done r -> r
      | exception Bad_pivot detail -> `Failed (Numerical { detail })
      | `Budget ->
        Counter.incr c_retry_exhausted;
        `Failed (Iteration_limit { budget }))

  (* Append one row in <= form with a fresh basic slack, re-expressed in
     the current basis.  Returns the new row's index. *)
  let append_le_row t coeffs rhs =
    ensure_capacity t ~rows:(t.m + 1) ~cols:(t.ncols + 1);
    let row_idx = t.m and slack_col = t.ncols in
    let row = Mat.row_view t.data row_idx in
    Vec.fill row 0.;
    Vec.blit ~src:coeffs ~dst:(Vec.sub_view row ~pos:0 ~len:t.n);
    Vec.set row slack_col 1.;
    Vec.set t.rhs row_idx rhs;
    t.basis.(row_idx) <- slack_col;
    t.m <- t.m + 1;
    t.ncols <- t.ncols + 1;
    (* Eliminate the current basic columns from the fresh row so the
       tableau stays in canonical form; the slack picks up the row's
       infeasibility (its value becomes rhs - coeffs . x̄). *)
    for i = 0 to t.m - 2 do
      let b = t.basis.(i) in
      let f = Vec.get row b in
      if Float.abs f > 0. then begin
        Vec.axpy_ip (-.f) (Mat.row_view t.data i) row;
        Vec.set t.rhs row_idx
          (Vec.get t.rhs row_idx -. (f *. Vec.get t.rhs i))
      end
    done;
    row_idx

  (* Dual simplex: while some row is primal infeasible, pivot it out on the
     column minimizing |reduced cost / element| over negative elements —
     reduced costs stay non-negative (dual feasible), the basis walks back
     to primal feasibility.  A row with no negative element certifies
     infeasibility.  Deterministic tie-breaks: most negative rhs then
     lowest row index; lowest column index on ratio ties. *)
  let dual_restore t ~fuel =
    let rec iterate pivots =
      (* Leaving row: most negative rhs. *)
      let row = ref (-1) in
      let worst = ref (-.t.tol) in
      for i = 0 to t.m - 1 do
        if Vec.get t.rhs i < !worst then begin
          row := i;
          worst := Vec.get t.rhs i
        end
      done;
      if !row < 0 then `Feasible pivots
      else if !fuel <= 0 then `Budget
      else begin
        let r = Mat.row_view t.data !row in
        let col = ref (-1) in
        let best_ratio = ref infinity in
        for j = 0 to t.ncols - 1 do
          if col_allowed t j then begin
            let a = Vec.get r j in
            if a < -.t.tol then begin
              let ratio = Vec.get t.obj j /. -.a in
              if ratio < !best_ratio -. t.tol then begin
                col := j;
                best_ratio := ratio
              end
            end
          end
        done;
        if !col < 0 then `Infeasible
        else begin
          decr fuel;
          pivot t ~row:!row ~col:!col;
          iterate (pivots + 1)
        end
      end
    in
    iterate 0

  let add_cut h (c : constr) =
    if not h.ok then `Failed (Numerical { detail = "unusable live tableau" })
    else if Vec.dim c.coeffs <> h.tab.n then
      invalid_arg "Lp.Live.add_cut: constraint coefficient length <> n"
    else begin
      Counter.incr c_dual_reopt;
      let pivots_before = Counter.value c_dual_pivots in
      let t = h.tab in
      (* Express the cut in <= form; an equality contributes both sides. *)
      (match c.relation with
      | Le -> ignore (append_le_row t c.coeffs c.rhs)
      | Ge -> ignore (append_le_row t (Vec.neg c.coeffs) (-.c.rhs))
      | Eq ->
        ignore (append_le_row t c.coeffs c.rhs);
        ignore (append_le_row t (Vec.neg c.coeffs) (-.c.rhs)));
      let fuel = ref (budget h) in
      let result =
        match dual_restore t ~fuel with
        | `Feasible 0 -> `Sat
        | `Feasible k -> `Reopt k
        | `Infeasible ->
          (* Exact verdict: a primal-infeasible row with no negative
             entry proves the extended system empty.  The tableau is
             abandoned mid-restore. *)
          h.ok <- false;
          `Infeasible
        | `Budget ->
          h.ok <- false;
          `Failed (Iteration_limit { budget = budget h })
        | exception Bad_pivot detail ->
          h.ok <- false;
          `Failed (Numerical { detail })
      in
      Histogram.observe h_pivots_per_reopt
        (Counter.value c_dual_pivots -. pivots_before);
      result
    end

  let optimize h ~objective direction =
    if not h.ok then Failed (Numerical { detail = "unusable live tableau" })
    else if Vec.dim objective <> h.tab.n then
      invalid_arg "Lp.Live.optimize: objective length <> n"
    else begin
      Counter.incr c_dual_reopt;
      let pivots_before = Counter.value c_dual_pivots in
      let t = h.tab in
      let cost = internal_cost direction objective in
      let result =
        match
          install_objective t cost;
          solve_phase t ~rule:`Dantzig ~allowed:(col_allowed t)
            ~fuel:(ref (budget h))
        with
        | `Optimal -> (
          match final_solution t with
          | Ok s -> finish direction (Optimal s)
          | Error detail ->
            h.ok <- false;
            Counter.incr c_failures;
            Failed (Numerical { detail }))
        | `Unbounded ->
          h.ok <- false;
          finish direction Unbounded
        | `Budget ->
          h.ok <- false;
          Counter.incr c_failures;
          Failed (Iteration_limit { budget = budget h })
        | exception Bad_pivot detail ->
          h.ok <- false;
          Counter.incr c_failures;
          Failed (Numerical { detail })
      in
      Histogram.observe h_pivots_per_reopt
        (Counter.value c_dual_pivots -. pivots_before);
      result
    end
end
