(** A dense two-phase primal simplex linear-programming solver with an
    incremental dual-simplex re-optimization path.

    This is the workhorse behind every feasible-utility-region operation in
    the reproduction: emptiness checks after hyperplane updates (Section V),
    the Lemma 2 pruning test, and the width/diameter metrics of the MinR and
    MinD heuristics.  Problems here are small — [d <= 10] variables and a few
    dozen constraints — so a dense tableau is both simple and fast.  The
    tableau lives in one flat row-major {!Indq_linalg.Mat.t} buffer, so each
    pivot streams cache-contiguous rows through the
    {!Indq_linalg.Vec.axpy_ip} / [scale_ip] kernels.

    All structural variables are constrained to be non-negative ([x >= 0]),
    which matches utility vectors [u] in the non-negative orthant.  General
    constraints of the three relations [<=], [>=], [=] are supported via
    slack, surplus and artificial variables.

    {b Incremental path.}  The interactive loop refines a region by adding
    {i one} halfspace at a time — the textbook dual-simplex case.  {!Live}
    keeps a solved tableau alive across such refinements: {!Live.add_cut}
    appends the new row, re-expresses it in the current basis and restores
    primal feasibility by dual pivots (often zero, when the current optimum
    already satisfies the cut), and {!Live.optimize} re-optimizes any new
    objective from the current feasible basis without ever re-running
    phase 1.  Every failure is typed and non-destructive to callers: a
    handle that cannot continue reports it and the caller falls back to the
    cold two-phase {!solve}.  The two paths are metered disjointly: every
    live-tableau pivot (phase-1 setup, cut absorption, re-optimization)
    counts in ["lp.dual_pivots"] with re-optimizations in
    ["lp.dual_reopt"] and the ["lp.pivots_per_reopt"] histogram, while
    cold solves keep ["lp.solves"] / ["lp.iterations"] /
    ["lp.pivots_per_solve"] to themselves — so ["lp.iterations"] vs
    ["lp.dual_pivots"] compares the legacy and incremental engines
    directly.

    {b Failure model.}  Every solve runs under a hard pivot budget with the
    fast Dantzig entering rule; a solve that exhausts it (a degenerate cycle,
    or the armed [inject.lp_iteration_cap] fault) is rebuilt and rerun under
    Bland's anti-cycling rule, which provably terminates (counted in
    ["retry.attempts"]).  A solve that cannot finish even then — budget
    exhausted again, or a non-finite value in the tableau (guarded at every
    pivot, at the final solution, and plantable via [inject.lp_nan_pivot]) —
    returns the typed {!Failed} outcome (counted in ["lp.failures"], with
    fallback exhaustion in ["retry.exhausted"]) instead of looping or
    raising. *)

module Vec := Indq_linalg.Vec

type relation = Le | Ge | Eq

type constr = {
  coeffs : Vec.t;  (** one coefficient per structural variable *)
  relation : relation;
  rhs : float;
}
(** The linear constraint [coeffs . x  <relation>  rhs]. *)

type solution = {
  objective : float;  (** optimal objective value *)
  point : Vec.t;  (** an optimal assignment of the structural variables *)
}

type error =
  | Iteration_limit of { budget : int }
      (** the pivot budget ran out under both the Dantzig and the Bland
          entering rule *)
  | Numerical of { detail : string }
      (** a non-finite value surfaced in the tableau or the optimal
          solution *)

type outcome =
  | Optimal of solution
  | Infeasible  (** no [x >= 0] satisfies the constraints *)
  | Unbounded  (** the objective is unbounded over the feasible set *)
  | Failed of error
      (** the solver could not reach a verdict; see {!error}.  Callers must
          treat the region as {i unknown}, never as empty or feasible. *)

val constr : Vec.t -> relation -> float -> constr
(** Convenience constructor. *)

val error_message : error -> string
(** Human-readable rendering of a solver failure. *)

val solve :
  ?tol:float ->
  ?max_pivots:int ->
  n:int ->
  objective:Vec.t ->
  [ `Minimize | `Maximize ] ->
  constr list ->
  outcome
(** [solve ~n ~objective dir constraints] runs the cold two-phase primal
    simplex: phase 1 finds a feasible basis (artificial variables), phase 2
    optimizes the requested objective.

    [?max_pivots] overrides the pivot budget per attempt (the default is
    ample for this solver's problem sizes); an exhausted budget triggers
    the Bland's-rule fallback described in the module header, and {!Failed}
    only after both attempts exhaust it. *)

val maximize : ?tol:float -> n:int -> objective:Vec.t -> constr list -> outcome
(** [maximize ~n ~objective constraints] solves
    [max objective . x  s.t.  constraints, x >= 0] with [n] structural
    variables.  [tol] (default 1e-9) is the pivoting tolerance.  Raises
    [Invalid_argument] if any coefficient vector does not have length [n]. *)

val minimize : ?tol:float -> n:int -> objective:Vec.t -> constr list -> outcome
(** Same, minimizing. *)

val feasible_point : ?tol:float -> n:int -> constr list -> Vec.t option
(** [feasible_point ~n constraints] is [Some x] for some feasible [x >= 0],
    or [None] when the system is infeasible. *)

val is_feasible : ?tol:float -> n:int -> constr list -> bool
(** [feasible_point <> None]. *)

(** A live simplex tableau kept across one-halfspace refinements.

    The handle owns a tableau standing at a {i primal-feasible} basis of
    its constraint list (optimal for the last objective it optimized).
    {!add_cut} extends the list by one constraint via the dual simplex;
    {!copy} forks the tableau so one parent setup is reused across many
    candidate children (the Lemma 2 batch shape); {!optimize} answers any
    number of objectives over the same list from the standing basis.

    Handles are single-domain mutable state and — like every cache in the
    incremental engine — confined behind {!Indq_geom.Polytope} (lint rule
    IND005).  Values produced by {!optimize} match the cold {!solve} to
    float round-off but are {b not} guaranteed bit-identical (a different
    pivot path may land on a different vertex of a degenerate optimal
    face), so callers must route them into verdict-grade decisions or
    margin-guarded hints only, never into strict value comparisons. *)
module Live : sig
  type t

  val create :
    ?tol:float ->
    ?max_pivots:int ->
    n:int ->
    constr list ->
    [ `Feasible of t | `Infeasible | `Failed of error ]
  (** Build a tableau over the constraint list and run phase 1 to a
      feasible basis (Dantzig with the usual budget, Bland retry on
      exhaustion).  [`Feasible] hands back the live handle. *)

  val copy : t -> t
  (** Fork the tableau: the copy refines independently.  O(rows·cols). *)

  val n : t -> int
  (** Number of structural variables. *)

  val usable : t -> bool
  (** [false] once an operation failed or reported [Unbounded]: the
      tableau is mid-pivot and every later operation answers [`Failed] /
      {!Failed} without touching it.  Callers rebuild via {!create} or
      fall back to {!solve}. *)

  val point : t -> Vec.t
  (** The basic solution at the standing basis — a feasible point of the
      constraint list.  Read-only: the tableau is not touched, so forks of
      this handle pivot identically whether or not [point] was called. *)

  val add_cut : t -> constr -> [ `Sat | `Reopt of int | `Infeasible | `Failed of error ]
  (** Append one constraint and restore primal feasibility by dual-simplex
      pivots on the appended row ([Eq] appends two rows).  [`Sat]: the
      standing vertex already satisfies the cut — zero pivots, and the
      region is certified non-empty.  [`Reopt k]: feasibility restored
      after [k] dual pivots (region non-empty).  [`Infeasible]: the dual
      ratio test certified the extended system infeasible — the verdict is
      exact and final, and the handle becomes unusable.  Counted in
      ["lp.dual_reopt"] / ["lp.dual_pivots"]. *)

  val optimize :
    t -> objective:Vec.t -> [ `Minimize | `Maximize ] -> outcome
  (** Re-optimize a fresh objective from the standing feasible basis
      (phase 2 only, no artificials ever re-enter).  On {!Optimal} the
      handle stands at that optimum, ready for the next {!add_cut} /
      {!optimize}.  Counted in ["lp.dual_reopt"]; pivots land in
      ["lp.dual_pivots"] and the ["lp.pivots_per_reopt"] histogram. *)
end
