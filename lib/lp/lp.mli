(** A dense two-phase primal simplex linear-programming solver.

    This is the workhorse behind every feasible-utility-region operation in
    the reproduction: emptiness checks after hyperplane updates (Section V),
    the Lemma 2 pruning test, and the width/diameter metrics of the MinR and
    MinD heuristics.  Problems here are small — [d <= 10] variables and a few
    dozen constraints — so a dense tableau is both simple and fast.

    All structural variables are constrained to be non-negative ([x >= 0]),
    which matches utility vectors [u] in the non-negative orthant.  General
    constraints of the three relations [<=], [>=], [=] are supported via
    slack, surplus and artificial variables.

    {b Failure model.}  Every solve runs under a hard pivot budget with the
    fast Dantzig entering rule; a solve that exhausts it (a degenerate cycle,
    or the armed [inject.lp_iteration_cap] fault) is rebuilt and rerun under
    Bland's anti-cycling rule, which provably terminates (counted in
    ["retry.attempts"]).  A solve that cannot finish even then — budget
    exhausted again, or a non-finite value in the tableau (guarded at every
    pivot, at the final solution, and plantable via [inject.lp_nan_pivot]) —
    returns the typed {!Failed} outcome (counted in ["lp.failures"], with
    fallback exhaustion in ["retry.exhausted"]) instead of looping or
    raising. *)

type relation = Le | Ge | Eq

type constr = {
  coeffs : float array;  (** one coefficient per structural variable *)
  relation : relation;
  rhs : float;
}
(** The linear constraint [coeffs . x  <relation>  rhs]. *)

type solution = {
  objective : float;  (** optimal objective value *)
  point : float array;  (** an optimal assignment of the structural variables *)
}

type error =
  | Iteration_limit of { budget : int }
      (** the pivot budget ran out under both the Dantzig and the Bland
          entering rule *)
  | Numerical of { detail : string }
      (** a non-finite value surfaced in the tableau or the optimal
          solution *)

type outcome =
  | Optimal of solution
  | Infeasible  (** no [x >= 0] satisfies the constraints *)
  | Unbounded  (** the objective is unbounded over the feasible set *)
  | Failed of error
      (** the solver could not reach a verdict; see {!error}.  Callers must
          treat the region as {i unknown}, never as empty or feasible. *)

type basis
(** The simplex basis at which a solve stopped: which variable is basic in
    each tableau row.  A basis returned by {!solve} is {i feasible} for the
    exact constraint list it was solved over no matter the objective, so it
    can warm-start any later solve over that same list, skipping phase 1.
    Opaque: valid only for a constraint list structurally equal to the one
    that produced it (same constraints, same order). *)

val constr : float array -> relation -> float -> constr
(** Convenience constructor. *)

val error_message : error -> string
(** Human-readable rendering of a solver failure. *)

val solve :
  ?tol:float ->
  ?warm:basis ->
  ?max_pivots:int ->
  n:int ->
  objective:float array ->
  [ `Minimize | `Maximize ] ->
  constr list ->
  outcome * basis option
(** [solve ~n ~objective dir constraints] optimizes like {!minimize} /
    {!maximize} and additionally returns the optimal basis (when one
    exists) for warm-starting later solves over the {b same} constraint
    list.

    With [?warm], the solver first tries to adopt the given basis: the
    tableau is re-expressed in that basis by direct pivoting and, if the
    basis is primal feasible here, phase 1 is skipped entirely (counted in
    ["lp.warm_starts"], with the originating solve's phase-1 pivots
    credited to ["lp.warm_iterations_saved"]).  An unusable basis — wrong
    shape, singular, or infeasible for these constraints — silently falls
    back to the cold two-phase path, so a stale basis can cost time but
    never correctness.  Warm and cold solves agree on feasibility verdicts
    and (to float round-off) on optimal values; with a degenerate optimal
    face they may report different optimal {i points}.

    [?max_pivots] overrides the pivot budget per attempt (the default is
    ample for this solver's problem sizes); an exhausted budget triggers
    the Bland's-rule fallback described in the module header, and {!Failed}
    only after both attempts exhaust it. *)

val maximize :
  ?tol:float -> n:int -> objective:float array -> constr list -> outcome
(** [maximize ~n ~objective constraints] solves
    [max objective . x  s.t.  constraints, x >= 0] with [n] structural
    variables.  [tol] (default 1e-9) is the pivoting tolerance.  Raises
    [Invalid_argument] if any coefficient vector does not have length [n]. *)

val minimize :
  ?tol:float -> n:int -> objective:float array -> constr list -> outcome
(** Same, minimizing. *)

val feasible_point : ?tol:float -> n:int -> constr list -> float array option
(** [feasible_point ~n constraints] is [Some x] for some feasible [x >= 0],
    or [None] when the system is infeasible. *)

val is_feasible : ?tol:float -> n:int -> constr list -> bool
(** [feasible_point <> None]. *)
