(** Deterministic pseudo-random number generation.

    A small, self-contained splitmix64-based PRNG so that every experiment in
    this repository is reproducible from a single integer seed, independent of
    the OCaml stdlib [Random] implementation (which may change across compiler
    releases).  Generators are mutable; use {!split} to derive independent
    streams for parallel or per-trial use. *)

type t
(** A mutable PRNG state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds give equal streams. *)

val split : t -> t
(** [split rng] derives a new generator whose stream is statistically
    independent from further draws of [rng]. *)

val copy : t -> t
(** [copy rng] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** Next raw 64 bits of the stream. *)

val int : t -> int -> int
(** [int rng bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float rng bound] is uniform in [\[0, bound)].  [bound] must be
    positive and finite. *)

val uniform : t -> float
(** [uniform rng] is uniform in [\[0, 1)]. *)

val in_range : t -> float -> float -> float
(** [in_range rng lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val gaussian : ?mu:float -> ?sigma:float -> t -> float
(** [gaussian ~mu ~sigma rng] draws from N(mu, sigma²) via Box–Muller.
    Defaults: [mu = 0.], [sigma = 1.]. *)

val exponential : ?rate:float -> t -> float
(** [exponential ~rate rng] draws from Exp(rate); default [rate = 1.]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle of the array, in place. *)

val choose : t -> 'a array -> 'a
(** [choose rng arr] is a uniformly random element.  [arr] must be
    non-empty. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement rng k arr] picks [k] distinct elements
    uniformly.  Requires [0 <= k <= Array.length arr]. *)

val sample_positions_without_replacement : t -> int -> int -> int array
(** [sample_positions_without_replacement rng k n] picks [k] distinct
    positions from [0 .. n-1] uniformly, drawing the same randoms (and
    returning the same positions) as {!sample_without_replacement} over an
    [n]-element array — but in O(k) space, so callers over columnar
    datasets can sample rows without materializing an array of views.
    Requires [0 <= k <= n]. *)

val direction : t -> int -> float array
(** [direction rng d] is a uniformly random unit vector in R^d (via
    normalized Gaussian draws). *)
