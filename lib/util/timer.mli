(** Timing for the running-time tables (Tables III and IV) and the
    observability spans.

    Two clocks are exposed explicitly so callers never have to guess what a
    number means:

    - {!wall} is real elapsed time ([Unix.gettimeofday]) — what a user
      waiting on an interactive round experiences.  Algorithm results and
      spans report wall time, so runs that include oracle latency (a human
      on stdin, a δ-erring simulator) are accounted honestly.
    - {!cpu} is process CPU seconds ([Sys.time]) — useful for comparing
      algorithmic work on an otherwise idle machine, the way the paper
      reports cost. *)

val wall : unit -> float
(** Wall-clock seconds since the epoch.  Only differences are meaningful. *)

val cpu : unit -> float
(** CPU seconds consumed by this process. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result and elapsed {b wall-clock}
    seconds. *)

val time_cpu : (unit -> 'a) -> 'a * float
(** Like {!time} but measuring {b CPU} seconds. *)

val time_seconds : (unit -> unit) -> float
(** Like {!time} but discards the result. *)
