let wall () = Unix.gettimeofday ()

let cpu () = Sys.time ()

let time_with clock f =
  let start = clock () in
  let result = f () in
  let stop = clock () in
  (result, stop -. start)

let time f = time_with wall f

let time_cpu f = time_with cpu f

let time_seconds f =
  let _, s = time f in
  s
