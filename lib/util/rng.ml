type t = {
  mutable state : int64;
  (* Cached second Box–Muller deviate, if any. *)
  mutable spare_gaussian : float option;
}

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed; spare_gaussian = None }

let copy rng = { state = rng.state; spare_gaussian = rng.spare_gaussian }

(* splitmix64 finalizer: advance by the golden gamma and mix. *)
let bits64 rng =
  rng.state <- Int64.add rng.state golden_gamma;
  let z = rng.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split rng =
  let seed = bits64 rng in
  { state = seed; spare_gaussian = None }

let int rng bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on a 63-bit draw to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int bound64) in
  let rec draw () =
    let raw = Int64.shift_right_logical (bits64 rng) 1 in
    if raw >= limit then draw () else Int64.to_int (Int64.rem raw bound64)
  in
  draw ()

let uniform rng =
  (* 53 uniform mantissa bits. *)
  let raw = Int64.shift_right_logical (bits64 rng) 11 in
  Int64.to_float raw *. (1.0 /. 9007199254740992.0)

let float rng bound =
  if not (bound > 0. && Float.is_finite bound) then
    invalid_arg "Rng.float: bound must be positive and finite";
  uniform rng *. bound

let in_range rng lo hi =
  if not (hi > lo) then invalid_arg "Rng.in_range: need lo < hi";
  lo +. (uniform rng *. (hi -. lo))

let bool rng = Int64.logand (bits64 rng) 1L = 1L

let gaussian ?(mu = 0.) ?(sigma = 1.) rng =
  match rng.spare_gaussian with
  | Some g ->
    rng.spare_gaussian <- None;
    mu +. (sigma *. g)
  | None ->
    (* Box–Muller: u1 in (0,1] to keep log finite. *)
    let u1 = 1.0 -. uniform rng in
    let u2 = uniform rng in
    let r = sqrt (-2.0 *. log u1) in
    let theta = 2.0 *. Float.pi *. u2 in
    rng.spare_gaussian <- Some (r *. sin theta);
    mu +. (sigma *. (r *. cos theta))

let exponential ?(rate = 1.) rng =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  -.log (1.0 -. uniform rng) /. rate

let shuffle_in_place rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose rng arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int rng (Array.length arr))

let sample_positions_without_replacement rng k n =
  if k < 0 || k > n then
    invalid_arg "Rng.sample_positions_without_replacement";
  (* Partial Fisher–Yates, sparsely: only the O(k) displaced slots of the
     virtual index array [0; ...; n-1] are tracked, so sampling a handful
     of rows from 10^7 never allocates an n-sized array.  Draw-for-draw
     identical to the dense shuffle — same [int rng (n - i)] sequence,
     same selected positions. *)
  let moved = Hashtbl.create (4 * max 1 k) in
  let value x =
    match Hashtbl.find_opt moved x with Some v -> v | None -> x
  in
  let out = Array.make k 0 in
  for i = 0 to k - 1 do
    let j = i + int rng (n - i) in
    let vj = value j in
    let vi = value i in
    Hashtbl.replace moved j vi;
    Hashtbl.replace moved i vj;
    out.(i) <- vj
  done;
  out

let sample_without_replacement rng k arr =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  Array.map
    (fun i -> arr.(i))
    (sample_positions_without_replacement rng k n)

let direction rng d =
  if d <= 0 then invalid_arg "Rng.direction: dimension must be positive";
  let rec draw () =
    let v = Array.init d (fun _ -> gaussian rng) in
    let norm = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. v) in
    if norm < 1e-12 then draw ()
    else Array.map (fun x -> x /. norm) v
  in
  draw ()
