module Rng = Indq_util.Rng
module Floatx = Indq_util.Floatx
module Vec = Indq_linalg.Vec

let check_sizes ~n ~d =
  if n < 0 then invalid_arg "Generator: negative n";
  if d <= 0 then invalid_arg "Generator: dimension must be positive"

(* All generators fill the columnar store row by row, ascending, drawing
   from the RNG in exactly the order the historical array-of-rows code did
   ([Array.init] applies its function at indices 0, 1, ...) — so a given
   seed produces bit-identical datasets across the representation change,
   and a 10^7-row dataset materializes no per-row heap rows. *)

let columnar ~d n fill =
  if n = 0 then Dataset.create [||]
  else Dataset.of_store (Store.init ~dim:d n (fun _ dst -> fill dst))

let independent rng ~n ~d =
  check_sizes ~n ~d;
  columnar ~d n (fun dst ->
      for j = 0 to d - 1 do
        Vec.set dst j (Rng.uniform rng)
      done)

(* Both correlated and anti-correlated follow the Borzsony et al. recipe:
   draw an overall "quality" level, then spread the coordinates around it —
   with small symmetric jitter for correlated data, and with value transfers
   between pairs of dimensions (preserving the sum) for anti-correlated
   data. *)

let clamp01 = Floatx.clamp ~lo:0. ~hi:1.

(* A normal deviate clipped into [0,1], redrawn until inside like the
   original generator. *)
let peaked rng ~mu ~sigma =
  let rec draw attempts =
    if attempts = 0 then clamp01 mu
    else begin
      let x = Rng.gaussian ~mu ~sigma rng in
      if x >= 0. && x <= 1. then x else draw (attempts - 1)
    end
  in
  draw 16

let correlated rng ~n ~d =
  check_sizes ~n ~d;
  columnar ~d n (fun dst ->
      let level = peaked rng ~mu:0.5 ~sigma:0.25 in
      for j = 0 to d - 1 do
        Vec.set dst j (clamp01 (peaked rng ~mu:level ~sigma:0.05))
      done)

let anti_correlated rng ~n ~d =
  check_sizes ~n ~d;
  (* One scratch row reused across all n rows. *)
  let v = Array.make d 0. in
  columnar ~d n (fun dst ->
      let level = peaked rng ~mu:0.5 ~sigma:0.12 in
      Array.fill v 0 d level;
      (* Transfer value between random coordinate pairs, keeping the sum
         constant: this creates the negative correlation. *)
      let transfers = 2 * d in
      for _ = 1 to transfers do
        let i = Rng.int rng d and j = Rng.int rng d in
        if i <> j then begin
          let headroom = Float.min (1. -. v.(i)) v.(j) in
          if headroom > 0. then begin
            let amount = Rng.float rng headroom in
            v.(i) <- v.(i) +. amount;
            v.(j) <- v.(j) -. amount
          end
        end
      done;
      for j = 0 to d - 1 do
        Vec.set dst j (clamp01 v.(j))
      done)

let by_name name rng ~n ~d =
  match String.lowercase_ascii name with
  | "independent" | "indep" -> independent rng ~n ~d
  | "correlated" | "corr" -> correlated rng ~n ~d
  | "anti_correlated" | "anti-correlated" | "anti" -> anti_correlated rng ~n ~d
  | other -> invalid_arg ("Generator.by_name: unknown distribution " ^ other)
