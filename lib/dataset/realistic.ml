module Rng = Indq_util.Rng
module Floatx = Indq_util.Floatx

let clamp01 = Floatx.clamp ~lo:0. ~hi:1.

(* Fill the columnar store row by row, ascending — the same RNG draw order
   as the historical [Array.init n (fun _ -> row ())], so seeds reproduce
   bit-identical datasets. *)
let columnar ~d n row =
  if n = 0 then Dataset.create [||]
  else
    Dataset.of_store
      (Store.init ~dim:d n (fun _ dst ->
           let r = row () in
           for j = 0 to d - 1 do
             Indq_linalg.Vec.set dst j r.(j)
           done))

let island ?(n = 63383) rng =
  if n < 0 then invalid_arg "Realistic.island: negative n";
  (* Coastal geography: a dominant outer "shoreline" — a noisy quarter-circle
     arc around the origin, whose points are mutually non-dominated — plus
     inland arcs and background scatter.  The dense convex frontier is what
     makes the real Island data set stress the real-points algorithms: the
     (1+eps)-skyline stays in the thousands, exactly the regime of the
     paper's Table III. *)
  let inland_arc_count = 5 in
  let inland_arcs =
    Array.init inland_arc_count (fun _ ->
        let cx = Rng.in_range rng 0.2 0.7
        and cy = Rng.in_range rng 0.2 0.7
        and radius = Rng.in_range rng 0.1 0.4
        and angle0 = Rng.float rng (2. *. Float.pi)
        and sweep = Rng.in_range rng 0.8 2.5 in
        (cx, cy, radius, angle0, sweep))
  in
  let row () =
    let kind = Rng.uniform rng in
    if kind < 0.25 then begin
      (* Shoreline band: radius within a few percent of the coast. *)
      let angle = Rng.float rng (Float.pi /. 2.) in
      let radius = 0.97 -. Rng.exponential ~rate:40. rng in
      let noise () = Rng.gaussian ~sigma:0.004 rng in
      [|
        clamp01 ((radius *. cos angle) +. noise ());
        clamp01 ((radius *. sin angle) +. noise ());
      |]
    end
    else if kind < 0.35 then [| Rng.uniform rng; Rng.uniform rng |]
    else begin
      let cx, cy, radius, angle0, sweep = Rng.choose rng inland_arcs in
      let angle = angle0 +. Rng.float rng sweep in
      let noise () = Rng.gaussian ~sigma:0.012 rng in
      [|
        clamp01 (cx +. (radius *. cos angle) +. noise ());
        clamp01 (cy +. (radius *. sin angle) +. noise ());
      |]
    end
  in
  Dataset.normalize_global (columnar ~d:2 n row)

let nba ?(n = 21961) rng =
  if n < 0 then invalid_arg "Realistic.nba: negative n";
  (* Latent skill drives all four stats; exponent skews the marginals the
     way season totals are skewed (many journeymen, few superstars). *)
  let row () =
    let skill = Rng.uniform rng ** 1.7 in
    let stat weight sigma =
      let x = (weight *. skill) +. Rng.gaussian ~sigma rng in
      Float.max 0. x
    in
    [| stat 1.0 0.12; stat 0.8 0.15; stat 0.7 0.18; stat 0.5 0.20 |]
  in
  Dataset.normalize_global (columnar ~d:4 n row)

let house ?(n = 12793) rng =
  if n < 0 then invalid_arg "Realistic.house: negative n";
  (* Six spending categories: a shared household-size factor plus per-
     category log-normal variation.  Spending is a cost, so we invert after
     generation; inversion turns the positive correlation into the mild
     anti-correlation that gives House its large skyline. *)
  let d = 6 in
  let row () =
    let household = Rng.gaussian ~mu:0.0 ~sigma:0.55 rng in
    Array.init d (fun i ->
        let category_scale = 0.5 +. (0.12 *. float_of_int i) in
        let ln = household +. Rng.gaussian ~mu:0.0 ~sigma:0.35 rng in
        category_scale *. exp ln)
  in
  let raw = columnar ~d n row in
  let inverted =
    Dataset.invert_attributes raw ~smaller_is_better:(Array.make d true)
  in
  Dataset.normalize_global inverted

let default_size = function
  | "island" -> 63383
  | "nba" -> 21961
  | "house" -> 12793
  | other -> invalid_arg ("Realistic.default_size: unknown data set " ^ other)

let by_name name ?n rng =
  match String.lowercase_ascii name with
  | "island" -> island ?n rng
  | "nba" -> nba ?n rng
  | "house" -> house ?n rng
  | other -> invalid_arg ("Realistic.by_name: unknown data set " ^ other)
