(* A dataset is a thin view layer over the columnar {!Store}: every tuple
   handed out is a zero-copy row view, and every bulk operation below
   traverses the flat buffer in row-major order — the same coordinate
   order as the historical per-tuple array code, so all folds compute
   bit-identical floats. *)

module Fault = Indq_fault.Fault
module Vec = Indq_linalg.Vec

type t = {
  store : Store.t;
  lock : Mutex.t;
  (* Materialized tuple views, built at most once, only for the APIs that
     need a whole array ([tuples]/[to_list]).  Guarded by a mutex rather
     than [Lazy] because datasets are shared across bench domains and
     [Lazy.force] is not domain-safe. *)
  mutable memo : Tuple.t array option;
}

type load_error = Store.load_error = {
  path : string option;
  row : int;
  reason : string;
}

exception Load_error = Store.Load_error

let load_failure = Store.load_failure

let load_error_message = Store.load_error_message

let of_store store = { store; lock = Mutex.create (); memo = None }

let store t = t.store

let size t = Store.size t.store

let dim t = Store.dim t.store

let view t i = Tuple.of_view ~id:(Store.id t.store i) (Store.row t.store i)

let create rows =
  let n = Array.length rows in
  if n = 0 then of_store Store.empty
  else begin
    let d = Array.length rows.(0) in
    if d = 0 then invalid_arg "Dataset.create: zero-dimensional rows";
    Array.iter
      (fun r ->
        if Array.length r <> d then invalid_arg "Dataset.create: ragged rows")
      rows;
    of_store
      (Store.init ~dim:d n (fun i dst ->
           let r = rows.(i) in
           for j = 0 to d - 1 do
             Vec.set dst j r.(j)
           done))
  end

let of_tuples ~dim tuples =
  if dim <= 0 then invalid_arg "Dataset.of_tuples: dimension must be positive";
  List.iter
    (fun p ->
      if Tuple.dim p <> dim then invalid_arg "Dataset.of_tuples: dimension mismatch")
    tuples;
  let s = Store.create ~dim (List.length tuples) in
  List.iteri
    (fun i p ->
      Vec.blit ~src:(Tuple.values p) ~dst:(Store.row s i);
      Store.set_id s i (Tuple.id p))
    tuples;
  of_store s

let get t i = view t i

let tuples t =
  Mutex.protect t.lock (fun () ->
      match t.memo with
      | Some a -> a
      | None ->
        let a = Array.init (size t) (view t) in
        t.memo <- Some a;
        a)

let to_list t = Array.to_list (tuples t)

let find_by_id t id =
  let n = size t in
  let rec go i =
    if i >= n then None
    else if Store.id t.store i = id then Some (view t i)
    else go (i + 1)
  in
  go 0

let map_values t f =
  let n = size t in
  if n = 0 then t
  else begin
    let s = Store.create ~dim:(dim t) n in
    for i = 0 to n - 1 do
      Vec.blit ~src:(f (Store.row t.store i)) ~dst:(Store.row s i);
      Store.set_id s i (Store.id t.store i)
    done;
    of_store s
  end

let select_rows t rows =
  if Array.length rows = 0 && dim t > 0 then
    of_store (Store.create ~dim:(dim t) 0)
  else of_store (Store.select t.store rows)

let filter t keep =
  let n = size t in
  let pos = Array.make (max n 1) 0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    if keep (view t i) then begin
      pos.(!k) <- i;
      incr k
    end
  done;
  if !k = n then t else select_rows t (Array.sub pos 0 !k)

let attribute_ranges t =
  if size t = 0 then invalid_arg "Dataset.attribute_ranges: empty dataset";
  let n = size t in
  Array.init (dim t) (fun i ->
      let lo = ref infinity and hi = ref neg_infinity in
      for r = 0 to n - 1 do
        let x = Store.get t.store r i in
        lo := Float.min !lo x;
        hi := Float.max !hi x
      done;
      (!lo, !hi))

let normalize_global t =
  if size t = 0 then t
  else begin
    (* Row-major traversal of the flat buffer visits values in the exact
       order the per-tuple fold used to. *)
    let max_value =
      Vec.fold_left
        (fun acc x ->
          if x < 0. then invalid_arg "Dataset.normalize_global: negative value"
          else Float.max acc x)
        0. (Store.data t.store)
    in
    if max_value <= 0. then t
    else map_values t (Vec.map (fun x -> x /. max_value))
  end

let normalize_per_attribute t =
  if size t = 0 then t
  else begin
    let ranges = attribute_ranges t in
    map_values t (fun values ->
        Vec.mapi
          (fun i x ->
            let lo, hi = ranges.(i) in
            if hi -. lo <= 0. then 0. else (x -. lo) /. (hi -. lo))
          values)
  end

let scale_to_unit_max t =
  if size t = 0 then t
  else begin
    let ranges = attribute_ranges t in
    Vec.iter
      (fun x ->
        if x < 0. then invalid_arg "Dataset.scale_to_unit_max: negative value")
      (Store.data t.store);
    map_values t (fun values ->
        Vec.mapi
          (fun i x ->
            let _, hi = ranges.(i) in
            if hi <= 0. then x else x /. hi)
          values)
  end

let invert_attributes t ~smaller_is_better =
  if Array.length smaller_is_better <> dim t then
    invalid_arg "Dataset.invert_attributes: flag array length mismatch";
  if size t = 0 then t
  else begin
    let ranges = attribute_ranges t in
    map_values t (fun values ->
        Vec.mapi
          (fun i x ->
            if smaller_is_better.(i) then snd ranges.(i) -. x else x)
          values)
  end

let max_utility t u =
  if size t = 0 then invalid_arg "Dataset.max_utility: empty dataset";
  let d = dim t in
  let data = Store.data t.store in
  (* The row-0 [dot] performs the dimension check; the scan then runs
     allocation-free over the flat buffer (same multiply-accumulate order,
     so the same floats — including the historical row-0 self-compare). *)
  let best = ref 0 in
  let best_value = ref (Vec.dot (Store.row t.store 0) u) in
  for i = 0 to size t - 1 do
    let v = Vec.dot_slice data ~pos:(i * d) u in
    if v > !best_value then begin
      best := i;
      best_value := v
    end
  done;
  (view t !best, !best_value)

let top_k t u k =
  let n = size t in
  let scored =
    Array.init n (fun i ->
        (Vec.dot (Store.row t.store i) u, Store.id t.store i, i))
  in
  Array.sort
    (fun (va, ia, _) (vb, ib, _) ->
      match Float.compare vb va with 0 -> Int.compare ia ib | c -> c)
    scored;
  let k = min k n in
  List.init k (fun i ->
      let _, _, pos = scored.(i) in
      view t pos)

let to_csv t =
  let buf = Buffer.create (size t * 16) in
  for i = 0 to size t - 1 do
    Buffer.add_string buf (string_of_int (Store.id t.store i));
    Vec.iter
      (fun x ->
        Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "%.17g" x))
      (Store.row t.store i);
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* Streaming CSV core: consumes one [(line_number, line)] at a time from
   [next] and appends validated rows to a {!Store.Builder}, so memory is
   bounded by the store itself — never by parse intermediates.  The first
   data row fixes the dimension; every later row must match it. *)
let parse_stream ?path next =
  let builder = ref None in
  let parse_line row line =
    match String.split_on_char ',' line with
    | [] | [ _ ] -> load_failure ?path ~row "malformed line (need id,v1,...)"
    | id :: rest ->
      let id =
        match int_of_string_opt (String.trim id) with
        | Some id -> id
        | None ->
          load_failure ?path ~row
            (Printf.sprintf "bad id %S" (String.trim id))
      in
      let values =
        List.map
          (fun s ->
            match float_of_string_opt (String.trim s) with
            | None ->
              load_failure ?path ~row
                (Printf.sprintf "bad value %S" (String.trim s))
            | Some v when not (Float.is_finite v) ->
              (* NaN or infinity would silently poison every downstream
                 dot product and region cut. *)
              load_failure ?path ~row
                (Printf.sprintf "non-finite value %S" (String.trim s))
            | Some v when v < 0. ->
              (* The algorithms assume the non-negative orthant (utilities
                 are monotone in every attribute); catch it at the border
                 instead of deep inside geometry. *)
              load_failure ?path ~row
                (Printf.sprintf "negative value %S" (String.trim s))
            | Some v -> v)
          rest
      in
      let values = Array.of_list values in
      let b =
        match !builder with
        | Some b -> b
        | None ->
          let b = Store.Builder.create ~dim:(Array.length values) () in
          builder := Some b;
          b
      in
      if Array.length values <> Store.Builder.dim b then
        load_failure ?path ~row
          (Printf.sprintf "row has %d values, expected %d"
             (Array.length values) (Store.Builder.dim b));
      Store.Builder.add b ~id values
  in
  let rec drain () =
    match next () with
    | None -> ()
    | Some (row, line) ->
      let line = String.trim line in
      (* Blank lines are legal separators. *)
      if line <> "" then parse_line row line;
      drain ()
  in
  drain ();
  match !builder with
  | None -> of_store Store.empty
  | Some b -> of_store (Store.Builder.finish b)

let of_csv ?path text =
  if Fault.fire "inject.dataset_load" then
    load_failure ?path ~row:0 "injected fault: source unreadable";
  let lines = ref (String.split_on_char '\n' text) in
  let row = ref 0 in
  parse_stream ?path (fun () ->
      match !lines with
      | [] -> None
      | line :: rest ->
        lines := rest;
        incr row;
        Some (!row, line))

let save_csv t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv t))

let load_csv path =
  match open_in path with
  | exception Sys_error reason -> load_failure ~path ~row:0 reason
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        if Fault.fire "inject.dataset_load" then
          load_failure ~path ~row:0 "injected fault: source unreadable";
        let row = ref 0 in
        parse_stream ~path (fun () ->
            match In_channel.input_line ic with
            | None -> None
            | Some line ->
              incr row;
              Some (!row, line)))

let save_store t path = Store.save t.store path

let load_store path = of_store (Store.load path)

let fingerprint t = Store.fingerprint t.store
