module Fault = Indq_fault.Fault

type t = { tuples : Tuple.t array; dim : int }

type load_error = { path : string option; row : int; reason : string }

exception Load_error of load_error

let load_failure ?path ~row reason = raise (Load_error { path; row; reason })

let load_error_message { path; row; reason } =
  let where = match path with Some p -> p | None -> "<string>" in
  if row > 0 then Printf.sprintf "%s, row %d: %s" where row reason
  else Printf.sprintf "%s: %s" where reason

let () =
  Printexc.register_printer (function
    | Load_error e ->
      Some ("Indq_dataset.Dataset.Load_error: " ^ load_error_message e)
    | _ -> None)

let create rows =
  let n = Array.length rows in
  if n = 0 then { tuples = [||]; dim = 0 }
  else begin
    let d = Array.length rows.(0) in
    if d = 0 then invalid_arg "Dataset.create: zero-dimensional rows";
    Array.iter
      (fun r ->
        if Array.length r <> d then invalid_arg "Dataset.create: ragged rows")
      rows;
    { tuples = Array.mapi (fun i r -> Tuple.of_array ~id:i r) rows; dim = d }
  end

let of_tuples ~dim tuples =
  if dim <= 0 then invalid_arg "Dataset.of_tuples: dimension must be positive";
  List.iter
    (fun p ->
      if Tuple.dim p <> dim then invalid_arg "Dataset.of_tuples: dimension mismatch")
    tuples;
  { tuples = Array.of_list tuples; dim }

let size t = Array.length t.tuples

let dim t = t.dim

let get t i = t.tuples.(i)

let tuples t = t.tuples

let to_list t = Array.to_list t.tuples

let find_by_id t id = Array.find_opt (fun p -> Tuple.id p = id) t.tuples

let map_values t f =
  {
    t with
    tuples =
      Array.map
        (fun p -> Tuple.make ~id:(Tuple.id p) (f (Tuple.values p)))
        t.tuples;
  }

let filter t keep = { t with tuples = Array.of_seq (Seq.filter keep (Array.to_seq t.tuples)) }

let attribute_ranges t =
  if size t = 0 then invalid_arg "Dataset.attribute_ranges: empty dataset";
  Array.init t.dim (fun i ->
      Array.fold_left
        (fun (lo, hi) p ->
          let x = Tuple.get p i in
          (Float.min lo x, Float.max hi x))
        (infinity, neg_infinity) t.tuples)

let normalize_global t =
  if size t = 0 then t
  else begin
    let max_value =
      Array.fold_left
        (fun acc p ->
          Indq_linalg.Vec.fold_left
            (fun acc x ->
              if x < 0. then
                invalid_arg "Dataset.normalize_global: negative value"
              else Float.max acc x)
            acc (Tuple.values p))
        0. t.tuples
    in
    if max_value <= 0. then t
    else map_values t (Indq_linalg.Vec.map (fun x -> x /. max_value))
  end

let normalize_per_attribute t =
  if size t = 0 then t
  else begin
    let ranges = attribute_ranges t in
    map_values t (fun values ->
        Indq_linalg.Vec.mapi
          (fun i x ->
            let lo, hi = ranges.(i) in
            if hi -. lo <= 0. then 0. else (x -. lo) /. (hi -. lo))
          values)
  end

let scale_to_unit_max t =
  if size t = 0 then t
  else begin
    let ranges = attribute_ranges t in
    Array.iter
      (fun p ->
        Indq_linalg.Vec.iter
          (fun x ->
            if x < 0. then invalid_arg "Dataset.scale_to_unit_max: negative value")
          (Tuple.values p))
      t.tuples;
    map_values t (fun values ->
        Indq_linalg.Vec.mapi
          (fun i x ->
            let _, hi = ranges.(i) in
            if hi <= 0. then x else x /. hi)
          values)
  end

let invert_attributes t ~smaller_is_better =
  if Array.length smaller_is_better <> t.dim then
    invalid_arg "Dataset.invert_attributes: flag array length mismatch";
  if size t = 0 then t
  else begin
    let ranges = attribute_ranges t in
    map_values t (fun values ->
        Indq_linalg.Vec.mapi
          (fun i x ->
            if smaller_is_better.(i) then snd ranges.(i) -. x else x)
          values)
  end

let max_utility t u =
  if size t = 0 then invalid_arg "Dataset.max_utility: empty dataset";
  let best = ref t.tuples.(0) in
  let best_value = ref (Tuple.utility t.tuples.(0) u) in
  Array.iter
    (fun p ->
      let v = Tuple.utility p u in
      if v > !best_value then begin
        best := p;
        best_value := v
      end)
    t.tuples;
  (!best, !best_value)

let top_k t u k =
  let scored =
    Array.map (fun p -> (Tuple.utility p u, p)) t.tuples
  in
  Array.sort
    (fun (va, pa) (vb, pb) ->
      match Float.compare vb va with
      | 0 -> Tuple.compare_id pa pb
      | c -> c)
    scored;
  let k = min k (Array.length scored) in
  List.init k (fun i -> snd scored.(i))

let to_csv t =
  let buf = Buffer.create (size t * 16) in
  Array.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (Tuple.id p));
      Indq_linalg.Vec.iter
        (fun x ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "%.17g" x))
        (Tuple.values p);
      Buffer.add_char buf '\n')
    t.tuples;
  Buffer.contents buf

let of_csv ?path text =
  if Fault.fire "inject.dataset_load" then
    load_failure ?path ~row:0 "injected fault: source unreadable";
  (* Keep original line numbers for error context; blank lines are legal
     separators and skipped. *)
  let lines = String.split_on_char '\n' text in
  let parse_line row line =
    match String.split_on_char ',' line with
    | [] | [ _ ] -> load_failure ?path ~row "malformed line (need id,v1,...)"
    | id :: rest ->
      let id =
        match int_of_string_opt (String.trim id) with
        | Some id -> id
        | None ->
          load_failure ?path ~row
            (Printf.sprintf "bad id %S" (String.trim id))
      in
      let values =
        List.map
          (fun s ->
            match float_of_string_opt (String.trim s) with
            | None ->
              load_failure ?path ~row
                (Printf.sprintf "bad value %S" (String.trim s))
            | Some v when not (Float.is_finite v) ->
              (* NaN or infinity would silently poison every downstream
                 dot product and region cut. *)
              load_failure ?path ~row
                (Printf.sprintf "non-finite value %S" (String.trim s))
            | Some v when v < 0. ->
              (* The algorithms assume the non-negative orthant (utilities
                 are monotone in every attribute); catch it at the border
                 instead of deep inside geometry. *)
              load_failure ?path ~row
                (Printf.sprintf "negative value %S" (String.trim s))
            | Some v -> v)
          rest
      in
      Tuple.of_array ~id (Array.of_list values)
  in
  let parsed =
    List.concat
      (List.mapi
         (fun i line ->
           if String.trim line = "" then []
           else [ (i + 1, parse_line (i + 1) (String.trim line)) ])
         lines)
  in
  match parsed with
  | [] -> { tuples = [||]; dim = 0 }
  | (_, first) :: _ ->
    let d = Tuple.dim first in
    List.iter
      (fun (row, t) ->
        if Tuple.dim t <> d then
          load_failure ?path ~row
            (Printf.sprintf "row has %d values, expected %d" (Tuple.dim t) d))
      parsed;
    of_tuples ~dim:d (List.map snd parsed)

let save_csv t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv t))

let load_csv path =
  match open_in path with
  | exception Sys_error reason -> load_failure ~path ~row:0 reason
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_csv ~path (In_channel.input_all ic))
