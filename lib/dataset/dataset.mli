(** An in-memory collection of tuples with the preprocessing steps the paper
    applies before any algorithm runs (Section III):

    - attributes where smaller is better are inverted by subtracting from the
      maximum ({!invert_attributes});
    - values are normalized so the largest value across all dimensions is 1
      ({!normalize_global}), or per attribute into [0,1]
      ({!normalize_per_attribute}, used when each attribute should span its
      full range). *)

type t

type load_error = Store.load_error = {
  path : string option;  (** [None] when parsing an in-memory string *)
  row : int;  (** 1-based original line number; 0 when not row-specific *)
  reason : string;
}

exception Load_error of load_error
(** The typed error of the CSV and binary loaders (the same exception as
    {!Store.Load_error}): I/O failures, unparseable rows, and values the
    algorithm stack cannot accept (NaN, infinite, or negative coordinates —
    which would silently corrupt downstream geometry). *)

val load_error_message : load_error -> string
(** Human-readable one-liner with path and row context. *)

val create : float array array -> t
(** Rows become tuples with ids [0, 1, ...].  All rows must share one
    positive dimension; raises [Invalid_argument] otherwise. *)

val of_tuples : dim:int -> Tuple.t list -> t
(** Keeps the given ids.  All tuples must have dimension [dim]. *)

val of_store : Store.t -> t
(** Adopt a columnar store (no copy) — the fast path for generators,
    binary loads and bulk ingest. *)

val store : t -> Store.t
(** The columnar backing.  Algorithms that scan the flat buffer (skyline,
    bulk R-tree builds, utility scans) go through this; treat it as
    read-only. *)

val select_rows : t -> int array -> t
(** [select_rows t rows] copies the given row {i positions} (not ids), in
    the given order, into a fresh dataset — ids preserved.  How columnar
    algorithms materialize "the subset at these positions" without going
    through per-tuple predicates. *)

val size : t -> int

val dim : t -> int

val get : t -> int -> Tuple.t
(** Positional access (not by id). *)

val tuples : t -> Tuple.t array
(** The live array — treat as read-only. *)

val to_list : t -> Tuple.t list

val find_by_id : t -> int -> Tuple.t option

val map_values : t -> (Indq_linalg.Vec.t -> Indq_linalg.Vec.t) -> t
(** Transform every tuple's values, keeping ids. *)

val filter : t -> (Tuple.t -> bool) -> t

val attribute_ranges : t -> (float * float) array
(** [(min_i, max_i)] per attribute (the [m_i], [M_i] of Algorithm 1).
    Raises [Invalid_argument] on an empty dataset. *)

val normalize_global : t -> t
(** Divide every value by the single largest value across all attributes, so
    the maximum over the dataset is exactly 1 (paper Section III).  Values
    must be non-negative; raises otherwise.  The empty dataset and the
    all-zero dataset are returned unchanged. *)

val normalize_per_attribute : t -> t
(** Min-max scale each attribute into [0,1].  Constant attributes map
    to 0.  {b Warning}: the shift by the minimum changes utility values by
    an additive constant, so this changes which tuples are
    eps-indistinguishable; use {!scale_to_unit_max} when the query result
    must be preserved. *)

val scale_to_unit_max : t -> t
(** Divide each attribute by its own maximum, so every attribute tops out
    at 1.  A pure per-attribute scaling: for any utility [u] over the
    original data, the utility [u'_i = u_i * max_i] over the scaled data
    gives identical tuple rankings {i and} identical indistinguishability
    sets.  This is the practical preprocessing for Squeeze-u, whose phase-1
    inference assumes comparable attribute ranges.  Values must be
    non-negative; all-zero attributes are left unchanged. *)

val invert_attributes : t -> smaller_is_better:bool array -> t
(** Replace marked attributes [x] by [max_attr - x] so that bigger is always
    better. *)

val max_utility : t -> Indq_linalg.Vec.t -> Tuple.t * float
(** The optimal tuple [p* = argmax u . p] and its utility.  Raises
    [Invalid_argument] on an empty dataset. *)

val top_k : t -> Indq_linalg.Vec.t -> int -> Tuple.t list
(** The k highest-utility tuples, best first (ties by id).  [k] larger than
    the dataset returns everything. *)

val to_csv : t -> string
(** One line per tuple: [id,v1,...,vd]. *)

val of_csv : ?path:string -> string -> t
(** Inverse of {!to_csv}.  Validates as it parses: every value must be a
    finite, non-negative float and every row must share the first row's
    dimension.  Raises {!Load_error} (with [?path] and the offending
    1-based row) on any violation. *)

val save_csv : t -> string -> unit

val load_csv : string -> t
(** Reads a file through the streaming parser — one line in memory at a
    time, rows accumulated in a columnar builder, so memory is bounded by
    the resulting store.  All failures — including the file being
    unreadable — surface as {!Load_error}. *)

val save_store : t -> string -> unit
(** Write the columnar binary format (see {!Store.save}). *)

val load_store : string -> t
(** Map a binary store file in O(1) (see {!Store.load}).  Raises
    {!Load_error} on a missing, foreign, or truncated file. *)

val fingerprint : t -> string
(** The backing store's content hash (see {!Store.fingerprint}) — keys
    persisted skyline artifacts. *)
