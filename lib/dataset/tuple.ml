module Vec = Indq_linalg.Vec

type t = { id : int; values : Vec.t }

let make ~id values = { id; values = Vec.copy values }

let of_view ~id values = { id; values }

let of_array ~id values = { id; values = Vec.of_array values }

let id t = t.id

let values t = t.values

let get t i = Vec.get t.values i

let dim t = Vec.dim t.values

let utility t u = Vec.dot t.values u

let equal_id a b = a.id = b.id

let compare_id a b = Int.compare a.id b.id

let pp ppf t = Format.fprintf ppf "#%d%a" t.id Vec.pp t.values
