(** A database tuple: a stable identifier plus the user-selected attribute
    values (the [d] dimensions of Section III).

    Identifiers survive normalization, pruning and skyline filtering, so a
    query result can always be traced back to the original row. *)

type t = { id : int; values : Indq_linalg.Vec.t }

val make : id:int -> Indq_linalg.Vec.t -> t
(** Copies the value vector. *)

val of_view : id:int -> Indq_linalg.Vec.t -> t
(** Adopts the vector {i without} copying — the tuple aliases it.  This is
    how a columnar {!Dataset.t} hands out zero-copy row views; do not
    mutate the vector afterwards. *)

val of_array : id:int -> float array -> t
(** {!make} from a plain float array (serialization edges). *)

val id : t -> int

val values : t -> Indq_linalg.Vec.t
(** The live vector — do not mutate.  Use {!get} for single coordinates. *)

val get : t -> int -> float

val dim : t -> int

val utility : t -> Indq_linalg.Vec.t -> float
(** [utility p u] is the linear utility [u . p] (Section III). *)

val equal_id : t -> t -> bool

val compare_id : t -> t -> int

val pp : Format.formatter -> t -> unit
