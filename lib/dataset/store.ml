(* Columnar backing for datasets: one flat Float64 Vec for every attribute
   value (row-major) plus an Int64 id column, both Bigarray-backed so a
   saved store is exactly its in-memory bytes and can be mapped back with
   [Unix.map_file] in O(1).  See store.mli for the file format. *)

module Fault = Indq_fault.Fault
module Vec = Indq_linalg.Vec

type id_column = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  s_dim : int;
  s_n : int;
  s_data : Vec.t;  (* length s_n * s_dim, row-major *)
  s_ids : id_column;
  (* Content hash, memoized: computed at most once per store, and read
     straight from the header for mapped stores. *)
  mutable s_fp : string option;
}

let make_ids n : id_column =
  Bigarray.Array1.create Bigarray.Int64 Bigarray.c_layout n

let empty =
  { s_dim = 0; s_n = 0; s_data = Vec.make 0 0.; s_ids = make_ids 0; s_fp = None }
[@@indq.domain_safe
  "the only mutable field, s_fp, is an idempotent memo: a single pointer \
   write of the content-determined fingerprint, so concurrent writers \
   store equal values and readers see None or a complete string"]

let create ~dim n =
  if dim <= 0 then invalid_arg "Store.create: dimension must be positive";
  if n < 0 then invalid_arg "Store.create: negative row count";
  let ids = make_ids n in
  for i = 0 to n - 1 do
    Bigarray.Array1.set ids i (Int64.of_int i)
  done;
  { s_dim = dim; s_n = n; s_data = Vec.make (n * dim) 0.; s_ids = ids; s_fp = None }

let dim t = t.s_dim

let size t = t.s_n

let check_row t i name =
  if i < 0 || i >= t.s_n then
    (invalid_arg (name ^ ": row out of range")
    [@indq.alloc_ok
      "cold caller-bug path: the message concat only runs when the \
       bounds check is about to raise"])
[@@indq.alloc_free "hot guard: one compare pair on the row index"]

let row t i =
  check_row t i "Store.row";
  Vec.sub_view t.s_data ~pos:(i * t.s_dim) ~len:t.s_dim

let get t i j =
  check_row t i "Store.get";
  if j < 0 || j >= t.s_dim then invalid_arg "Store.get: column out of range";
  Vec.get t.s_data ((i * t.s_dim) + j)

let data t = t.s_data

(* Not [@indq.alloc_free]: the int64 Bigarray read boxes its result (3
   words, measured by the bench minor-words probe), so allocation-free
   kernels must hoist the id column into an int array first — see the
   flat sweep in [Pruning.region_prune]. *)
let id t i =
  check_row t i "Store.id";
  Int64.to_int (Bigarray.Array1.get t.s_ids i)

let set_id t i id =
  check_row t i "Store.set_id";
  Bigarray.Array1.set t.s_ids i (Int64.of_int id)

let init ~dim n f =
  let t = create ~dim n in
  for i = 0 to n - 1 do
    f i (row t i)
  done;
  t

let select t rows =
  let k = Array.length rows in
  if k = 0 then empty
  else begin
    let out = create ~dim:t.s_dim k in
    Array.iteri
      (fun j i ->
        check_row t i "Store.select";
        Vec.blit ~src:(row t i) ~dst:(row out j);
        Bigarray.Array1.set out.s_ids j (Bigarray.Array1.get t.s_ids i))
      rows;
    out
  end

let copy t =
  if t.s_n = 0 then empty
  else begin
    let out = create ~dim:t.s_dim t.s_n in
    Vec.blit ~src:t.s_data ~dst:out.s_data;
    Bigarray.Array1.blit t.s_ids out.s_ids;
    out.s_fp <- t.s_fp;
    out
  end

(* --- Content fingerprint: FNV-1a folded into OCaml's native 63-bit int
   (multiplication wraps mod 2^63 identically on every 64-bit platform).
   Floats are fed as their IEEE bit patterns, split into 32-bit halves, so
   the hash sees exact values — including negative zeros — and never
   re-rounds. *)

let fnv_prime = 0x100000001b3

let fnv_basis = 0x0bf29ce484222325

let fnv h x = (h lxor x) * fnv_prime

let fnv_int64 h b =
  let lo = Int64.to_int (Int64.logand b 0xFFFFFFFFL) in
  let hi = Int64.to_int (Int64.shift_right_logical b 32) in
  fnv (fnv h lo) hi

let fingerprint_int t =
  let h = ref (fnv (fnv fnv_basis t.s_dim) t.s_n) in
  for i = 0 to t.s_n - 1 do
    h := fnv_int64 !h (Bigarray.Array1.get t.s_ids i)
  done;
  for i = 0 to (t.s_n * t.s_dim) - 1 do
    h := fnv_int64 !h (Int64.bits_of_float (Vec.get t.s_data i))
  done;
  !h

let fingerprint t =
  match t.s_fp with
  | Some fp -> fp
  | None ->
    let fp = Printf.sprintf "%016x" (fingerprint_int t) in
    t.s_fp <- Some fp;
    fp

(* --- Typed loader errors (shared by the CSV loaders in Dataset, which
   re-exports the exception under its historical name). *)

type load_error = { path : string option; row : int; reason : string }

exception Load_error of load_error

let load_failure ?path ~row reason = raise (Load_error { path; row; reason })

let load_error_message { path; row; reason } =
  let where = match path with Some p -> p | None -> "<string>" in
  if row > 0 then Printf.sprintf "%s, row %d: %s" where row reason
  else Printf.sprintf "%s: %s" where reason

let () =
  Printexc.register_printer (function
    | Load_error e ->
      Some ("Indq_dataset.Dataset.Load_error: " ^ load_error_message e)
    | _ -> None)

(* --- Versioned binary format (see store.mli for the layout). *)

let header_size = 64

let magic = "INDQSTOR"

let version = 1l

let endian_probe = 0x0102030405060708L

let map_ids fd ~shared ~pos n : id_column =
  Bigarray.array1_of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.Int64 Bigarray.c_layout
       shared [| n |])

let map_data fd ~shared ~pos len : Vec.buffer =
  Bigarray.array1_of_genarray
    (Unix.map_file fd ~pos:(Int64.of_int pos) Bigarray.Float64
       Bigarray.c_layout shared [| len |])

let save t path =
  let fp = fingerprint_int t in
  t.s_fp <- Some (Printf.sprintf "%016x" fp);
  let n = t.s_n and d = t.s_dim in
  let ids_bytes = 8 * n in
  let data_bytes = 8 * n * d in
  match
    Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  with
  | exception Unix.Unix_error (err, _, _) ->
    load_failure ~path ~row:0 (Unix.error_message err)
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Unix.ftruncate fd (header_size + ids_bytes + data_bytes);
        let hdr = Bytes.make header_size '\000' in
        Bytes.blit_string magic 0 hdr 0 (String.length magic);
        Bytes.set_int32_le hdr 8 version;
        Bytes.set_int32_le hdr 12 (Int32.of_int d);
        Bytes.set_int64_le hdr 16 (Int64.of_int n);
        Bytes.set_int64_ne hdr 24 endian_probe;
        Bytes.set_int64_le hdr 32 (Int64.of_int fp);
        if Unix.write fd hdr 0 header_size <> header_size then
          load_failure ~path ~row:0 "short header write";
        if n > 0 then begin
          Bigarray.Array1.blit t.s_ids
            (map_ids fd ~shared:true ~pos:header_size n);
          Vec.blit ~src:t.s_data
            ~dst:
              (Vec.of_buffer
                 (map_data fd ~shared:true ~pos:(header_size + ids_bytes)
                    (n * d)))
        end)

let really_read fd buf len ~path =
  let off = ref 0 in
  (try
     while !off < len do
       let k = Unix.read fd buf !off (len - !off) in
       if k = 0 then raise Exit;
       off := !off + k
     done
   with Exit -> ());
  if !off <> len then load_failure ~path ~row:0 "truncated header"

let load path =
  if Fault.fire "inject.dataset_load" then
    load_failure ~path ~row:0 "injected fault: source unreadable";
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (err, _, _) ->
    load_failure ~path ~row:0 (Unix.error_message err)
  | fd ->
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let file_size = (Unix.fstat fd).Unix.st_size in
        if file_size < header_size then
          load_failure ~path ~row:0
            (Printf.sprintf "truncated header: %d bytes, need %d" file_size
               header_size);
        let hdr = Bytes.create header_size in
        really_read fd hdr header_size ~path;
        if Bytes.sub_string hdr 0 (String.length magic) <> magic then
          load_failure ~path ~row:0 "bad magic (not an indq store file)";
        let v = Bytes.get_int32_le hdr 8 in
        if v <> version then
          load_failure ~path ~row:0
            (Printf.sprintf "unsupported store version %ld (expected %ld)" v
               version);
        if not (Int64.equal (Bytes.get_int64_ne hdr 24) endian_probe) then
          load_failure ~path ~row:0
            "byte-order mismatch (store written on an opposite-endian \
             machine)";
        let d = Int32.to_int (Bytes.get_int32_le hdr 12) in
        let n = Int64.to_int (Bytes.get_int64_le hdr 16) in
        if d < 0 || n < 0 || (d = 0 && n > 0) then
          load_failure ~path ~row:0
            (Printf.sprintf "invalid shape: %d rows x %d columns" n d);
        let expected = header_size + (8 * n) + (8 * n * d) in
        if file_size <> expected then
          load_failure ~path ~row:0
            (Printf.sprintf "truncated payload: %d bytes, expected %d"
               file_size expected);
        let fp = Printf.sprintf "%016x" (Int64.to_int (Bytes.get_int64_le hdr 32)) in
        if n = 0 then { empty with s_dim = d; s_fp = Some fp }
        else begin
          let ids = map_ids fd ~shared:false ~pos:header_size n in
          let data =
            map_data fd ~shared:false ~pos:(header_size + (8 * n)) (n * d)
          in
          {
            s_dim = d;
            s_n = n;
            s_data = Vec.of_buffer data;
            s_ids = ids;
            s_fp = Some fp;
          }
        end)

(* --- Streaming builder. *)

type store_alias = t

let create_store = create

module Builder = struct
  type t = {
    b_dim : int;
    mutable b_len : int;
    mutable b_cap : int;
    mutable b_data : Vec.t;
    mutable b_ids : id_column;
  }

  let create ?(capacity = 64) ~dim () =
    if dim <= 0 then invalid_arg "Store.Builder.create: dimension must be positive";
    let cap = max 1 capacity in
    {
      b_dim = dim;
      b_len = 0;
      b_cap = cap;
      b_data = Vec.make (cap * dim) 0.;
      b_ids = make_ids cap;
    }

  let length b = b.b_len

  let dim b = b.b_dim

  let ensure_room b =
    if b.b_len = b.b_cap then begin
      let cap = 2 * b.b_cap in
      let data = Vec.make (cap * b.b_dim) 0. in
      Vec.blit
        ~src:b.b_data
        ~dst:(Vec.sub_view data ~pos:0 ~len:(b.b_cap * b.b_dim));
      let ids = make_ids cap in
      Bigarray.Array1.blit b.b_ids (Bigarray.Array1.sub ids 0 b.b_cap);
      b.b_cap <- cap;
      b.b_data <- data;
      b.b_ids <- ids
    end

  let commit_row b id =
    Bigarray.Array1.set b.b_ids b.b_len (Int64.of_int id);
    b.b_len <- b.b_len + 1

  let add b ~id row =
    if Array.length row <> b.b_dim then
      invalid_arg "Store.Builder.add: row length mismatch";
    ensure_room b;
    let base = b.b_len * b.b_dim in
    for j = 0 to b.b_dim - 1 do
      Vec.set b.b_data (base + j) row.(j)
    done;
    commit_row b id

  let add_vec b ~id v =
    if Vec.dim v <> b.b_dim then
      invalid_arg "Store.Builder.add_vec: row length mismatch";
    ensure_room b;
    Vec.blit ~src:v ~dst:(Vec.sub_view b.b_data ~pos:(b.b_len * b.b_dim) ~len:b.b_dim);
    commit_row b id

  let finish b : store_alias =
    if b.b_len = 0 then empty
    else begin
      let out = create_store ~dim:b.b_dim b.b_len in
      Vec.blit
        ~src:(Vec.sub_view b.b_data ~pos:0 ~len:(b.b_len * b.b_dim))
        ~dst:out.s_data;
      Bigarray.Array1.blit
        (Bigarray.Array1.sub b.b_ids 0 b.b_len)
        out.s_ids;
      out
    end
end
