(** The columnar tuple store: one flat Float64 buffer for all attribute
    values (row-major, row [i] at offset [i*dim]) plus an Int64 id column.

    Every {!Dataset.t} is backed by one of these; {!Tuple.t} values handed
    out by a dataset are zero-copy {!Indq_linalg.Vec.sub_view}s into the
    flat buffer.  The store also has a versioned binary file format
    ([save]/[load]): the payload is written and mapped with
    [Unix.map_file], so opening a 10^7-row store is O(1) — no parsing, no
    per-row allocation — and the content fingerprint is cached in the
    header, making artifact lookups O(1) as well.

    {b File format} (version 1, 64-byte header; payload native-endian):
    {v
    offset  size  field
    0       8     magic "INDQSTOR"
    8       4     version (u32 LE) = 1
    12      4     dim (u32 LE)
    16      8     rows n (u64 LE)
    24      8     byte-order probe 0x0102030405060708 (native)
    32      8     content fingerprint (u64 LE, see {!fingerprint})
    40      24    reserved (zero)
    64      8n    id column (Int64, native)
    64+8n   8nd   value payload: row-major Float64, native
    v}
    A reader on a machine with the opposite byte order fails the probe and
    gets a typed {!Load_error} instead of silently-scrambled floats. *)

type t

val empty : t
(** The zero-row, zero-dimension store (the empty dataset's backing). *)

val create : dim:int -> int -> t
(** [create ~dim n] is an [n]-row store of zeros with ids [0 .. n-1].
    Fill rows in place through {!row} views.  [dim] must be positive,
    [n] non-negative. *)

val init : dim:int -> int -> (int -> Indq_linalg.Vec.t -> unit) -> t
(** [init ~dim n f] is {!create} where [f i row_i] has filled row [i], in
    ascending row order (generators rely on the order for deterministic
    RNG draws). *)

val dim : t -> int

val size : t -> int
(** Number of rows. *)

val row : t -> int -> Indq_linalg.Vec.t
(** [row t i] is a zero-copy mutable view of row [i]; writes through the
    view are visible in the store (and vice versa).  O(1). *)

val get : t -> int -> int -> float
(** [get t i j] is attribute [j] of row [i], without materializing a
    view. *)

val data : t -> Indq_linalg.Vec.t
(** The whole flat buffer (length [size * dim], row-major) — the input the
    packed R-tree builds from.  Treat as read-only. *)

val id : t -> int -> int

val set_id : t -> int -> int -> unit

val select : t -> int array -> t
(** [select t rows] copies the given row positions (in the given order,
    ids included) into a fresh compact store. *)

val copy : t -> t

val fingerprint : t -> string
(** A 16-hex-digit content hash (FNV-1a over dim, n, ids and the raw bits
    of every value, row-major).  Deterministic across runs and platforms;
    memoized, and persisted in the file header so {!load} never rescans
    the payload.  Keys the skyline artifact cache. *)

type load_error = {
  path : string option;  (** [None] when parsing an in-memory string *)
  row : int;  (** 1-based original line number; 0 when not row-specific *)
  reason : string;
}

exception Load_error of load_error
(** The typed error of every loader in this library (CSV and binary): I/O
    failures, malformed headers or rows, truncated files, and values the
    algorithm stack cannot accept. *)

val load_error_message : load_error -> string
(** Human-readable one-liner with path and row context. *)

val load_failure : ?path:string -> row:int -> string -> 'a
(** Raise {!Load_error} with the given context. *)

val save : t -> string -> unit
(** Write the versioned binary format: the file is sized up front and the
    payload is blitted through a shared mapping (no per-row encoding).
    Computes (and persists) the {!fingerprint}. *)

val load : string -> t
(** Map a file written by {!save}: O(1) in the store size.  The mapping is
    private (copy-on-write), so mutating the returned store never touches
    the file.  Raises {!Load_error} on a missing file, bad magic, version
    or byte-order mismatch, or a payload shorter than the header
    promises. *)

(** Bounded-memory accumulation for streaming ingest: rows arrive one at a
    time (CSV parsing, network feeds), capacity doubles as needed, and
    {!Builder.finish} compacts into an exact-size store. *)
module Builder : sig
  type store := t

  type t

  val create : ?capacity:int -> dim:int -> unit -> t
  (** An empty builder for [dim]-column rows ([dim] positive). *)

  val length : t -> int
  (** Rows added so far. *)

  val dim : t -> int

  val add : t -> id:int -> float array -> unit
  (** Append one row (copied).  Raises [Invalid_argument] when the row
      length differs from the builder's dimension. *)

  val add_vec : t -> id:int -> Indq_linalg.Vec.t -> unit

  val finish : t -> store
  (** The accumulated rows as a compact store; the builder may not be used
      afterwards. *)
end
