module Algo = Indq_core.Algo
module Indist = Indq_core.Indist
module Dataset = Indq_dataset.Dataset
module Realistic = Indq_dataset.Realistic
module Generator = Indq_dataset.Generator
module Utility = Indq_user.Utility
module Oracle = Indq_user.Oracle
module Rng = Indq_util.Rng
module Stats = Indq_util.Stats

type dataset_kind = Island_like | Nba_like | House_like

let dataset_name = function
  | Island_like -> "Island"
  | Nba_like -> "NBA"
  | House_like -> "House"

let scaled_size ~scale full = max 500 (int_of_float (scale *. float_of_int full))

let load ?(scale = 1.) ~seed kind =
  if scale <= 0. || scale > 1. then invalid_arg "Experiments.load: scale in (0,1]";
  let rng = Rng.create seed in
  match kind with
  | Island_like -> Realistic.island ~n:(scaled_size ~scale 63383) rng
  | Nba_like -> Realistic.nba ~n:(scaled_size ~scale 21961) rng
  | House_like -> Realistic.house ~n:(scaled_size ~scale 12793) rng

type cell = {
  alpha_mean : float;
  alpha_sd : float;
  time_mean : float;
  output_size_mean : float;
  false_negative_runs : int;
  metrics_mean : (string * float) list;
}

type sweep = {
  title : string;
  x_label : string;
  x_values : float list;
  algorithms : Algo.name list;
  cells : cell array array;
}

(* One (dataset, config, algorithm) measurement averaged over [utilities]
   random users.  The user's true error is [user_delta]; the algorithm's
   modeled delta is [config.delta]. *)
let measure ~utilities ~user_delta ~seed name data (config : Algo.config) =
  let d = Dataset.dim data in
  let alphas = Array.make utilities 0. in
  let times = Array.make utilities 0. in
  let sizes = Array.make utilities 0. in
  let false_negatives = ref 0 in
  let metric_sums : (string, float) Hashtbl.t = Hashtbl.create 16 in
  for trial = 0 to utilities - 1 do
    let rng = Rng.create ((seed * 7919) + (trial * 104729) + Hashtbl.hash name) in
    let u = Utility.random rng ~d in
    let oracle =
      if user_delta > 0. then
        Oracle.with_error ~delta:user_delta ~rng:(Rng.split rng) u
      else Oracle.exact u
    in
    let result = Algo.run name config ~data ~oracle ~rng:(Rng.split rng) in
    alphas.(trial) <-
      Indist.alpha ~eps:config.Algo.eps u ~data ~output:result.Algo.output;
    times.(trial) <- result.Algo.seconds;
    sizes.(trial) <- float_of_int (Dataset.size result.Algo.output);
    List.iter
      (fun (k, v) ->
        let sum = try Hashtbl.find metric_sums k with Not_found -> 0. in
        Hashtbl.replace metric_sums k (sum +. v))
      result.Algo.metrics;
    if
      Indist.has_false_negatives ~eps:config.Algo.eps u ~data
        ~output:result.Algo.output
    then incr false_negatives
  done;
  let metrics_mean =
    Hashtbl.fold
      (fun k sum acc -> (k, sum /. float_of_int utilities) :: acc)
      metric_sums []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    alpha_mean = Stats.mean alphas;
    alpha_sd = Stats.stddev alphas;
    time_mean = Stats.mean times;
    output_size_mean = Stats.mean sizes;
    false_negative_runs = !false_negatives;
    metrics_mean;
  }

let run_sweep ~title ~x_label ~algorithms ~points ~utilities ~user_delta ~seed =
  if utilities < 1 then invalid_arg "Experiments.run_sweep: utilities < 1";
  let cells =
    List.mapi
      (fun xi (_, data, config) ->
        Array.of_list
          (List.map
             (fun name ->
               measure ~utilities ~user_delta ~seed:(seed + (xi * 31)) name data
                 config)
             algorithms))
      points
    |> Array.of_list
  in
  {
    title;
    x_label;
    x_values = List.map (fun (x, _, _) -> x) points;
    algorithms;
    cells;
  }

let default_utilities = 10

let paper_config ~d = Algo.default_config ~d

(* --- Fig. 1: vary T (MinR / MinD on NBA) --- *)

let fig1 ?(utilities = default_utilities) ?(scale = 1.) ~seed () =
  let data = load ~scale ~seed Nba_like in
  let d = Dataset.dim data in
  let points =
    List.map
      (fun t ->
        (float_of_int t, data, { (paper_config ~d) with Algo.trials = t }))
      [ 1; 5; 10; 20; 50; 100 ]
  in
  run_sweep ~title:"Fig 1: varying T on NBA (q=3d, s=d, eps=0.05, delta=0)"
    ~x_label:"T" ~algorithms:[ Algo.MinD; Algo.MinR ] ~points ~utilities
    ~user_delta:0. ~seed

(* --- Fig. 2: vary q --- *)

let fig2 ?(utilities = default_utilities) ?(scale = 1.) ~seed kind =
  let data = load ~scale ~seed kind in
  let d = Dataset.dim data in
  let points =
    List.map
      (fun q -> (float_of_int q, data, { (paper_config ~d) with Algo.q }))
      (List.init 6 (fun i -> (i + 1) * d))
  in
  run_sweep
    ~title:
      (Printf.sprintf "Fig 2 (%s): varying questions q (s=d, eps=0.05, delta=0)"
         (dataset_name kind))
    ~x_label:"q" ~algorithms:Algo.all ~points ~utilities ~user_delta:0. ~seed

(* --- Fig. 3: vary s --- *)

let fig3 ?(utilities = default_utilities) ?(scale = 1.) ~seed kind =
  let data = load ~scale ~seed kind in
  let d = Dataset.dim data in
  let points =
    List.map
      (fun s -> (float_of_int s, data, { (paper_config ~d) with Algo.s }))
      (List.init (max 1 ((2 * d) - 1)) (fun i -> i + 2))
  in
  run_sweep
    ~title:
      (Printf.sprintf "Fig 3 (%s): varying display size s (q=3d, eps=0.05, delta=0)"
         (dataset_name kind))
    ~x_label:"s" ~algorithms:Algo.all ~points ~utilities ~user_delta:0. ~seed

(* --- Fig. 4: vary eps --- *)

let fig4 ?(utilities = default_utilities) ?(scale = 1.) ~seed kind =
  let data = load ~scale ~seed kind in
  let d = Dataset.dim data in
  let points =
    List.map
      (fun eps -> (eps, data, { (paper_config ~d) with Algo.eps }))
      [ 0.001; 0.005; 0.01; 0.05; 0.1 ]
  in
  run_sweep
    ~title:
      (Printf.sprintf "Fig 4 (%s): varying eps (s=d, q=3d, delta=0), log-x"
         (dataset_name kind))
    ~x_label:"eps" ~algorithms:Algo.all ~points ~utilities ~user_delta:0. ~seed

(* --- Fig. 5: vary delta --- *)

let fig5 ?(utilities = default_utilities) ?(scale = 1.) ~seed kind =
  let data = load ~scale ~seed kind in
  let d = Dataset.dim data in
  let deltas = [ 0.001; 0.005; 0.01; 0.05; 0.1 ] in
  (* The user really errs by delta and the algorithms model the same
     delta (the paper sets delta = eps-style symmetric defaults). *)
  let sweeps =
    List.map
      (fun delta ->
        let config = { (paper_config ~d) with Algo.delta } in
        let points = [ (delta, data, config) ] in
        run_sweep ~title:"" ~x_label:"delta" ~algorithms:Algo.all ~points
          ~utilities ~user_delta:delta ~seed)
      deltas
  in
  {
    title =
      Printf.sprintf "Fig 5 (%s): varying delta (s=d, q=3d, eps=0.05), log-x"
        (dataset_name kind);
    x_label = "delta";
    x_values = deltas;
    algorithms = Algo.all;
    cells = Array.concat (List.map (fun s -> s.cells) sweeps);
  }

(* --- Tables III / IV: running times --- *)

let time_table ~title ~utilities ~scale ~seed ~delta =
  let kinds = [ Island_like; Nba_like; House_like ] in
  let sweeps =
    List.mapi
      (fun i kind ->
        let data = load ~scale ~seed:(seed + i) kind in
        let d = Dataset.dim data in
        let config = { (paper_config ~d) with Algo.delta } in
        run_sweep ~title:"" ~x_label:"dataset" ~algorithms:Algo.all
          ~points:[ (float_of_int i, data, config) ]
          ~utilities ~user_delta:delta ~seed)
      kinds
  in
  {
    title;
    x_label = "dataset";
    x_values = List.mapi (fun i _ -> float_of_int i) kinds;
    algorithms = Algo.all;
    cells = Array.concat (List.map (fun s -> s.cells) sweeps);
  }

let tab3 ?(utilities = default_utilities) ?(scale = 1.) ~seed () =
  time_table
    ~title:"Table III: running time (s), eps=0.05, delta=0, s=d, q=3d"
    ~utilities ~scale ~seed ~delta:0.

let tab4 ?(utilities = default_utilities) ?(scale = 1.) ~seed () =
  time_table
    ~title:"Table IV: running time (s), eps=delta=0.05, s=d, q=3d" ~utilities
    ~scale ~seed ~delta:0.05

(* --- Fig. 6: scalability in n (anti-correlated, d = 3) --- *)

let fig6 ?(utilities = default_utilities) ?(max_n = 1_000_000) ~seed () =
  let d = 3 in
  let sizes = List.filter (fun n -> n <= max_n) [ 1_000; 10_000; 100_000; 1_000_000 ] in
  let config = { (paper_config ~d) with Algo.delta = 0.05 } in
  let points =
    List.map
      (fun n ->
        let rng = Rng.create (seed + n) in
        (float_of_int n, Generator.anti_correlated rng ~n ~d, config))
      sizes
  in
  run_sweep
    ~title:"Fig 6: anti-correlated, varying n (s=d=3, q=9, eps=delta=0.05)"
    ~x_label:"n" ~algorithms:Algo.all ~points ~utilities ~user_delta:0.05 ~seed

(* --- Fig. 7: scalability in d (anti-correlated, n = 10000) --- *)

let fig7 ?(utilities = default_utilities) ?(n = 10_000) ~seed () =
  let dims = [ 2; 3; 4; 5; 6 ] in
  let points =
    List.map
      (fun d ->
        let rng = Rng.create (seed + d) in
        let config =
          { (paper_config ~d) with Algo.s = 6; q = 18; delta = 0.05 }
        in
        (float_of_int d, Generator.anti_correlated rng ~n ~d, config))
      dims
  in
  run_sweep
    ~title:
      "Fig 7: anti-correlated, varying d (n=10000, s=6, q=18, eps=delta=0.05)"
    ~x_label:"d" ~algorithms:Algo.all ~points ~utilities ~user_delta:0.05 ~seed
