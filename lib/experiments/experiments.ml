module Algo = Indq_core.Algo
module Indist = Indq_core.Indist
module Dataset = Indq_dataset.Dataset
module Realistic = Indq_dataset.Realistic
module Generator = Indq_dataset.Generator
module Utility = Indq_user.Utility
module Oracle = Indq_user.Oracle
module Rng = Indq_util.Rng
module Stats = Indq_util.Stats
module Pool = Indq_exec.Pool
module Histogram = Indq_obs.Histogram

type dataset_kind = Island_like | Nba_like | House_like

let dataset_name = function
  | Island_like -> "Island"
  | Nba_like -> "NBA"
  | House_like -> "House"

let scaled_size ~scale full = max 500 (int_of_float (scale *. float_of_int full))

(* Generated workloads are deterministic in (kind, scale, seed), so a sweep
   that revisits the same configuration (every figure does, and fig5 /
   tab3 / tab4 reload per delta or per kind) reuses the dataset instead of
   regenerating 63k points each time.  Guarded by a mutex only because
   sweeps may one day be driven from several domains; the tables stay tiny
   (a handful of configurations per process). *)
let dataset_cache : (dataset_kind * float * int, Dataset.t) Hashtbl.t =
  Hashtbl.create 8

let dataset_cache_lock = Mutex.create ()

let clear_dataset_cache () =
  Mutex.protect dataset_cache_lock (fun () -> Hashtbl.reset dataset_cache)

let generate ~scale ~seed kind =
  let rng = Rng.create seed in
  match kind with
  | Island_like -> Realistic.island ~n:(scaled_size ~scale 63383) rng
  | Nba_like -> Realistic.nba ~n:(scaled_size ~scale 21961) rng
  | House_like -> Realistic.house ~n:(scaled_size ~scale 12793) rng

let load ?(scale = 1.) ~seed kind =
  if scale <= 0. then invalid_arg "Experiments.load: scale must be positive";
  let key = (kind, scale, seed) in
  match
    Mutex.protect dataset_cache_lock (fun () ->
        Hashtbl.find_opt dataset_cache key)
  with
  | Some data -> data
  | None ->
    (* Generate outside the lock; a racing generator produces the identical
       dataset, and whichever registers first wins. *)
    let data = generate ~scale ~seed kind in
    Mutex.protect dataset_cache_lock (fun () ->
        match Hashtbl.find_opt dataset_cache key with
        | Some cached -> cached
        | None ->
          Hashtbl.replace dataset_cache key data;
          data)

type cell = {
  alpha_mean : float;
  alpha_sd : float;
  time_mean : float;
  time_total : float;
  output_size_mean : float;
  false_negative_runs : int;
  metrics_mean : (string * float) list;
  hists : (string * Histogram.snap) list;
}

type sweep = {
  title : string;
  x_label : string;
  x_values : float list;
  algorithms : Algo.name list;
  cells : cell array array;
}

(* One trial of the sweep: (point, algorithm, simulated user).  The trial's
   whole context is derived up-front from its coordinates — the RNG seed is
   a pure function of (sweep seed, point index, algorithm, trial index) —
   so trials are independent and can run on any domain in any order with
   bit-identical results.  The user's true error is [user_delta]; the
   algorithm's modeled delta is [config.delta]. *)
type trial_outcome = {
  t_alpha : float;
  t_seconds : float;
  t_size : float;
  t_false_negative : bool;
  t_metrics : (string * float) list;
  t_hists : (string * Histogram.snap) list;
}

let run_trial ~user_delta ~seed name data (config : Algo.config) ~trial =
  let d = Dataset.dim data in
  let rng = Rng.create ((seed * 7919) + (trial * 104729) + Hashtbl.hash name) in
  let u = Utility.random rng ~d in
  let oracle =
    if user_delta > 0. then
      Oracle.with_error ~delta:user_delta ~rng:(Rng.split rng) u
    else Oracle.exact u
  in
  let result = Algo.run name config ~data ~oracle ~rng:(Rng.split rng) in
  {
    t_alpha =
      Indist.alpha ~eps:config.Algo.eps u ~data ~output:result.Algo.output;
    t_seconds = result.Algo.seconds;
    t_size = float_of_int (Dataset.size result.Algo.output);
    t_false_negative =
      Indist.has_false_negatives ~eps:config.Algo.eps u ~data
        ~output:result.Algo.output;
    t_metrics = result.Algo.metrics;
    t_hists = result.Algo.hists;
  }

(* Fold one cell's trials, in trial order, exactly as the sequential
   harness always has (so -j N output is byte-identical to -j 1). *)
let cell_of_trials (outcomes : trial_outcome array) =
  let utilities = Array.length outcomes in
  let metric_sums : (string, float) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun o ->
      List.iter
        (fun (k, v) ->
          let sum = try Hashtbl.find metric_sums k with Not_found -> 0. in
          Hashtbl.replace metric_sums k (sum +. v))
        o.t_metrics)
    outcomes;
  let metrics_mean =
    Hashtbl.fold
      (fun k sum acc -> (k, sum /. float_of_int utilities) :: acc)
      metric_sums []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  (* Histograms combine by exact bucket addition, folded in trial order
     like everything else; [Histogram.combine]'s float sums commute and
     the count-unit sums are integer-valued, so the combined snaps are the
     same for -j N and -j 1. *)
  let hist_sums : (string, Histogram.snap) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun o ->
      List.iter
        (fun (k, s) ->
          match Hashtbl.find_opt hist_sums k with
          | Some acc -> Hashtbl.replace hist_sums k (Histogram.combine acc s)
          | None -> Hashtbl.replace hist_sums k s)
        o.t_hists)
    outcomes;
  let hists =
    Hashtbl.fold (fun k s acc -> (k, s) :: acc) hist_sums []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    alpha_mean = Stats.mean (Array.map (fun o -> o.t_alpha) outcomes);
    alpha_sd = Stats.stddev (Array.map (fun o -> o.t_alpha) outcomes);
    time_mean = Stats.mean (Array.map (fun o -> o.t_seconds) outcomes);
    time_total = Array.fold_left (fun acc o -> acc +. o.t_seconds) 0. outcomes;
    output_size_mean = Stats.mean (Array.map (fun o -> o.t_size) outcomes);
    false_negative_runs =
      Array.fold_left
        (fun acc o -> if o.t_false_negative then acc + 1 else acc)
        0 outcomes;
    metrics_mean;
    hists;
  }

let run_sweep ?pool ~title ~x_label ~algorithms ~points ~utilities ~user_delta
    ~seed () =
  if utilities < 1 then invalid_arg "Experiments.run_sweep: utilities < 1";
  let points_arr = Array.of_list points in
  let algos = Array.of_list algorithms in
  let n_points = Array.length points_arr and n_algos = Array.length algos in
  (* Every (point × algorithm × user) trial of the sweep becomes one task,
     fanned across the pool.  Task order is point-major then algorithm then
     trial — the sequential harness's order — and each cell's fold consumes
     its trials in that order. *)
  let n_tasks = n_points * n_algos * utilities in
  let coords =
    Array.init n_tasks (fun k ->
        let xi = k / (n_algos * utilities) in
        let rest = k mod (n_algos * utilities) in
        (xi, rest / utilities, rest mod utilities))
  in
  let run (xi, ai, trial) =
    let _, data, config = points_arr.(xi) in
    run_trial ~user_delta ~seed:(seed + (xi * 31)) algos.(ai) data config ~trial
  in
  let outcomes =
    match pool with
    | None -> Array.map run coords
    | Some pool -> Pool.parallel_map pool run coords
  in
  let cells =
    Array.init n_points (fun xi ->
        Array.init n_algos (fun ai ->
            let base = ((xi * n_algos) + ai) * utilities in
            cell_of_trials (Array.sub outcomes base utilities)))
  in
  {
    title;
    x_label;
    x_values = List.map (fun (x, _, _) -> x) points;
    algorithms;
    cells;
  }

let default_utilities = 10

let paper_config ~d = Algo.default_config ~d

(* --- Fig. 1: vary T (MinR / MinD on NBA) --- *)

let fig1 ?(utilities = default_utilities) ?(scale = 1.) ?pool ~seed () =
  let data = load ~scale ~seed Nba_like in
  let d = Dataset.dim data in
  let points =
    List.map
      (fun t ->
        (float_of_int t, data, { (paper_config ~d) with Algo.trials = t }))
      [ 1; 5; 10; 20; 50; 100 ]
  in
  run_sweep ?pool ~title:"Fig 1: varying T on NBA (q=3d, s=d, eps=0.05, delta=0)"
    ~x_label:"T" ~algorithms:[ Algo.MinD; Algo.MinR ] ~points ~utilities
    ~user_delta:0. ~seed ()

(* --- Fig. 2: vary q --- *)

let fig2 ?(utilities = default_utilities) ?(scale = 1.) ?pool ~seed kind =
  let data = load ~scale ~seed kind in
  let d = Dataset.dim data in
  let points =
    List.map
      (fun q -> (float_of_int q, data, { (paper_config ~d) with Algo.q }))
      (List.init 6 (fun i -> (i + 1) * d))
  in
  run_sweep ?pool
    ~title:
      (Printf.sprintf "Fig 2 (%s): varying questions q (s=d, eps=0.05, delta=0)"
         (dataset_name kind))
    ~x_label:"q" ~algorithms:Algo.all ~points ~utilities ~user_delta:0. ~seed ()

(* --- Fig. 3: vary s --- *)

let fig3 ?(utilities = default_utilities) ?(scale = 1.) ?pool ~seed kind =
  let data = load ~scale ~seed kind in
  let d = Dataset.dim data in
  let points =
    List.map
      (fun s -> (float_of_int s, data, { (paper_config ~d) with Algo.s }))
      (List.init (max 1 ((2 * d) - 1)) (fun i -> i + 2))
  in
  run_sweep ?pool
    ~title:
      (Printf.sprintf "Fig 3 (%s): varying display size s (q=3d, eps=0.05, delta=0)"
         (dataset_name kind))
    ~x_label:"s" ~algorithms:Algo.all ~points ~utilities ~user_delta:0. ~seed ()

(* --- Fig. 4: vary eps --- *)

let fig4 ?(utilities = default_utilities) ?(scale = 1.) ?pool ~seed kind =
  let data = load ~scale ~seed kind in
  let d = Dataset.dim data in
  let points =
    List.map
      (fun eps -> (eps, data, { (paper_config ~d) with Algo.eps }))
      [ 0.001; 0.005; 0.01; 0.05; 0.1 ]
  in
  run_sweep ?pool
    ~title:
      (Printf.sprintf "Fig 4 (%s): varying eps (s=d, q=3d, delta=0), log-x"
         (dataset_name kind))
    ~x_label:"eps" ~algorithms:Algo.all ~points ~utilities ~user_delta:0. ~seed ()

(* --- Fig. 5: vary delta --- *)

let fig5 ?(utilities = default_utilities) ?(scale = 1.) ?pool ~seed kind =
  let data = load ~scale ~seed kind in
  let d = Dataset.dim data in
  let deltas = [ 0.001; 0.005; 0.01; 0.05; 0.1 ] in
  (* The user really errs by delta and the algorithms model the same
     delta (the paper sets delta = eps-style symmetric defaults). *)
  let sweeps =
    List.map
      (fun delta ->
        let config = { (paper_config ~d) with Algo.delta } in
        let points = [ (delta, data, config) ] in
        run_sweep ?pool ~title:"" ~x_label:"delta" ~algorithms:Algo.all ~points
          ~utilities ~user_delta:delta ~seed ())
      deltas
  in
  {
    title =
      Printf.sprintf "Fig 5 (%s): varying delta (s=d, q=3d, eps=0.05), log-x"
        (dataset_name kind);
    x_label = "delta";
    x_values = deltas;
    algorithms = Algo.all;
    cells = Array.concat (List.map (fun s -> s.cells) sweeps);
  }

(* --- Tables III / IV: running times --- *)

let time_table ?pool ~title ~utilities ~scale ~seed ~delta () =
  let kinds = [ Island_like; Nba_like; House_like ] in
  let sweeps =
    List.mapi
      (fun i kind ->
        let data = load ~scale ~seed:(seed + i) kind in
        let d = Dataset.dim data in
        let config = { (paper_config ~d) with Algo.delta } in
        run_sweep ?pool ~title:"" ~x_label:"dataset" ~algorithms:Algo.all
          ~points:[ (float_of_int i, data, config) ]
          ~utilities ~user_delta:delta ~seed ())
      kinds
  in
  {
    title;
    x_label = "dataset";
    x_values = List.mapi (fun i _ -> float_of_int i) kinds;
    algorithms = Algo.all;
    cells = Array.concat (List.map (fun s -> s.cells) sweeps);
  }

let tab3 ?(utilities = default_utilities) ?(scale = 1.) ?pool ~seed () =
  time_table ?pool
    ~title:"Table III: running time (s), eps=0.05, delta=0, s=d, q=3d"
    ~utilities ~scale ~seed ~delta:0. ()

let tab4 ?(utilities = default_utilities) ?(scale = 1.) ?pool ~seed () =
  time_table ?pool
    ~title:"Table IV: running time (s), eps=delta=0.05, s=d, q=3d" ~utilities
    ~scale ~seed ~delta:0.05 ()

(* --- Fig. 6: scalability in n (anti-correlated, d = 3) --- *)

let fig6 ?(utilities = default_utilities) ?(max_n = 1_000_000) ?pool ~seed () =
  let d = 3 in
  let sizes = List.filter (fun n -> n <= max_n) [ 1_000; 10_000; 100_000; 1_000_000 ] in
  let config = { (paper_config ~d) with Algo.delta = 0.05 } in
  let points =
    List.map
      (fun n ->
        let rng = Rng.create (seed + n) in
        (float_of_int n, Generator.anti_correlated rng ~n ~d, config))
      sizes
  in
  run_sweep ?pool
    ~title:"Fig 6: anti-correlated, varying n (s=d=3, q=9, eps=delta=0.05)"
    ~x_label:"n" ~algorithms:Algo.all ~points ~utilities ~user_delta:0.05 ~seed ()

(* --- Fig. 7: scalability in d (anti-correlated, n = 10000) --- *)

let fig7 ?(utilities = default_utilities) ?(n = 10_000) ?pool ~seed () =
  let dims = [ 2; 3; 4; 5; 6 ] in
  let points =
    List.map
      (fun d ->
        let rng = Rng.create (seed + d) in
        let config =
          { (paper_config ~d) with Algo.s = 6; q = 18; delta = 0.05 }
        in
        (float_of_int d, Generator.anti_correlated rng ~n ~d, config))
      dims
  in
  run_sweep ?pool
    ~title:
      "Fig 7: anti-correlated, varying d (n=10000, s=6, q=18, eps=delta=0.05)"
    ~x_label:"d" ~algorithms:Algo.all ~points ~utilities ~user_delta:0.05 ~seed ()
