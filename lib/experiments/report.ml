module Tabulate = Indq_util.Tabulate
module Algo = Indq_core.Algo
module Histogram = Indq_obs.Histogram

let algo_columns (sweep : Experiments.sweep) =
  List.map Algo.to_string sweep.Experiments.algorithms

let x_cell x =
  if Float.is_integer x && Float.abs x < 1e15 then
    string_of_int (int_of_float x)
  else Printf.sprintf "%g" x

let grid ~title ~value_of ~fmt (sweep : Experiments.sweep) =
  let t =
    Tabulate.create ~title
      ~columns:(sweep.Experiments.x_label :: algo_columns sweep)
  in
  List.iteri
    (fun xi x ->
      let row = Array.to_list sweep.Experiments.cells.(xi) in
      Tabulate.add_float_row ~fmt t (x_cell x) (List.map value_of row))
    sweep.Experiments.x_values;
  t

let alpha_table sweep =
  grid
    ~title:(sweep.Experiments.title ^ " -- alpha")
    ~value_of:(fun c -> c.Experiments.alpha_mean)
    ~fmt:Tabulate.float_cell sweep

let time_table sweep =
  grid
    ~title:(sweep.Experiments.title ^ " -- time (s)")
    ~value_of:(fun c -> c.Experiments.time_mean)
    ~fmt:Tabulate.seconds_cell sweep

let size_table sweep =
  grid
    ~title:(sweep.Experiments.title ^ " -- |output|")
    ~value_of:(fun c -> c.Experiments.output_size_mean)
    ~fmt:(fun x -> Printf.sprintf "%.1f" x)
    sweep

(* Counters are sparse per cell: take the union of names across the row so
   every algorithm lines up, printing a dash where a counter never fired. *)
let metric_cell name cell =
  match List.assoc_opt name cell.Experiments.metrics_mean with
  | None -> "-"
  | Some v ->
    if Float.abs (v -. Float.round v) < 1e-9 && Float.abs v < 1e15 then
      Printf.sprintf "%.0f" v
    else Printf.sprintf "%.1f" v

let metrics_table (sweep : Experiments.sweep) =
  let t =
    Tabulate.create
      ~title:(sweep.Experiments.title ^ " -- counters (mean/run)")
      ~columns:(sweep.Experiments.x_label :: "counter" :: algo_columns sweep)
  in
  List.iteri
    (fun xi x ->
      let row = Array.to_list sweep.Experiments.cells.(xi) in
      let names =
        List.concat_map
          (fun c -> List.map fst c.Experiments.metrics_mean)
          row
        |> List.sort_uniq String.compare
      in
      List.iter
        (fun name ->
          Tabulate.add_row t
            (x_cell x :: name :: List.map (metric_cell name) row))
        names)
    sweep.Experiments.x_values;
  t

let false_negative_total (sweep : Experiments.sweep) =
  Array.fold_left
    (fun acc row ->
      Array.fold_left
        (fun acc c -> acc + c.Experiments.false_negative_runs)
        acc row)
    0 sweep.Experiments.cells

(* [with_times = false] drops every wall-clock figure from the report so
   the remaining output is deterministic — the CI smoke job diffs a -j 1
   report against a -j 4 one byte for byte. *)
let print_sweep ?(with_sizes = false) ?(with_metrics = false)
    ?(with_times = true) sweep =
  Tabulate.print (alpha_table sweep);
  if with_times then Tabulate.print (time_table sweep);
  if with_sizes then Tabulate.print (size_table sweep);
  if with_metrics then Tabulate.print (metrics_table sweep);
  let fn = false_negative_total sweep in
  Printf.printf "false-negative audit: %d run(s) missed a tuple of I%s\n\n" fn
    (if fn = 0 then " [OK]" else " [VIOLATION]")

(* --- Machine-readable reports ------------------------------------------

   Hand-rolled JSON: the values are flat records of floats, ints and
   strings, and keeping the emitter dependency-free keeps the bench
   runnable everywhere.  Output is deterministic — keys in fixed order,
   floats via %.17g (shortest round-trippable form is not needed; exact
   re-reads are) — so two reports diff cleanly. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

let json_float x =
  if Float.is_nan x then json_string "nan"
  else if Float.is_integer x && Float.abs x < 1e15 then
    string_of_int (int_of_float x)
  else Printf.sprintf "%.17g" x

let json_list f xs = "[" ^ String.concat "," (List.map f xs) ^ "]"

(* One histogram as JSON: the unit tag, exact count/sum, and the
   log-bucket percentile estimates.  Everything here is deterministic for
   count-unit histograms; seconds-unit ones only appear when the report
   carries wall-clock figures at all. *)
let hist_to_json (s : Histogram.snap) =
  Printf.sprintf
    {|{"unit":%s,"count":%d,"sum":%s,"p50":%s,"p90":%s,"p99":%s}|}
    (json_string
       (match s.Histogram.s_unit with
       | Histogram.Seconds -> "s"
       | Histogram.Count -> "count"))
    s.Histogram.count (json_float s.Histogram.sum)
    (json_float (Histogram.p50 s))
    (json_float (Histogram.p90 s))
    (json_float (Histogram.p99 s))

let cell_hists ~with_times (c : Experiments.cell) =
  List.filter
    (fun (_, s) ->
      match s.Histogram.s_unit with
      | Histogram.Count -> true
      | Histogram.Seconds -> with_times)
    c.Experiments.hists

let cell_to_json ~with_times (c : Experiments.cell) =
  let fields =
    [ ("alpha_mean", json_float c.Experiments.alpha_mean);
      ("alpha_sd", json_float c.Experiments.alpha_sd) ]
    @ (if with_times then
         [ ("time_mean", json_float c.Experiments.time_mean);
           ("time_total", json_float c.Experiments.time_total) ]
       else [])
    @ [
        ("output_size_mean", json_float c.Experiments.output_size_mean);
        ( "false_negative_runs",
          string_of_int c.Experiments.false_negative_runs );
        ( "metrics_mean",
          "{"
          ^ String.concat ","
              (List.map
                 (fun (k, v) -> json_string k ^ ":" ^ json_float v)
                 c.Experiments.metrics_mean)
          ^ "}" );
        ( "hists",
          "{"
          ^ String.concat ","
              (List.map
                 (fun (k, s) -> json_string k ^ ":" ^ hist_to_json s)
                 (cell_hists ~with_times c))
          ^ "}" );
      ]
  in
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
  ^ "}"

let sweep_to_json ?(with_times = true) (sweep : Experiments.sweep) =
  let rows =
    List.mapi
      (fun xi _ ->
        json_list (cell_to_json ~with_times)
          (Array.to_list sweep.Experiments.cells.(xi)))
      sweep.Experiments.x_values
  in
  Printf.sprintf
    "{%s:%s,%s:%s,%s:%s,%s:%s,%s:[%s]}"
    (json_string "title") (json_string sweep.Experiments.title)
    (json_string "x_label") (json_string sweep.Experiments.x_label)
    (json_string "x_values") (json_list json_float sweep.Experiments.x_values)
    (json_string "algorithms")
    (json_list (fun a -> json_string (Algo.to_string a))
       sweep.Experiments.algorithms)
    (json_string "cells") (String.concat "," rows)

let print_time_sweep ?(with_metrics = false) ?(with_times = true) ~labels
    (sweep : Experiments.sweep) =
  if with_times then begin
    let t =
      Tabulate.create
        ~title:sweep.Experiments.title
        ~columns:("dataset" :: algo_columns sweep)
    in
    List.iteri
      (fun xi label ->
        let row = Array.to_list sweep.Experiments.cells.(xi) in
        Tabulate.add_float_row ~fmt:Tabulate.seconds_cell t label
          (List.map (fun c -> c.Experiments.time_mean) row))
      labels;
    Tabulate.print t
  end;
  if with_metrics then Tabulate.print (metrics_table sweep);
  let fn = false_negative_total sweep in
  Printf.printf "false-negative audit: %d run(s) missed a tuple of I%s\n\n" fn
    (if fn = 0 then " [OK]" else " [VIOLATION]")
