(** The evaluation harness: one generator per figure/table of Section VII.

    Every experiment follows the paper's protocol: draw [utilities]
    independent random linear utility functions (default 10), run each
    algorithm against a fresh simulated user per utility, and report the
    mean approximation value α (Definition 3) and the mean wall-clock
    seconds.  Defaults mirror the paper: [eps = delta = 0.05], [s = d],
    [q = 3d], [T = 10].

    A [scale] below 1 shrinks the data-set cardinalities proportionally
    (minimum 500 tuples) so the whole suite can be smoke-tested quickly;
    [scale = 1.] reproduces the paper's sizes, and larger values super-size
    them (the scale bench drives [n = 10^7] this way).  Any positive scale
    is accepted. *)

type dataset_kind = Island_like | Nba_like | House_like

val dataset_name : dataset_kind -> string
(** ["Island"], ["NBA"], ["House"] — paper labels (our data is simulated;
    see DESIGN.md). *)

val load : ?scale:float -> seed:int -> dataset_kind -> Indq_dataset.Dataset.t
(** Generated workloads are memoized per [(kind, scale, seed)] — a sweep
    that revisits the same configuration (fig5, tab3, tab4, and every
    multi-dataset driver) reuses the dataset instead of regenerating it.
    Generation is deterministic, so the cache is semantically invisible. *)

val clear_dataset_cache : unit -> unit
(** Drop every memoized dataset (frees the memory; the next {!load}
    regenerates identically). *)

type cell = {
  alpha_mean : float;
  alpha_sd : float;
  time_mean : float;  (** seconds per run *)
  time_total : float;  (** summed wall seconds over the cell's trials *)
  output_size_mean : float;
  false_negative_runs : int;
      (** runs in which the output missed a tuple of the exact [I];
          0 in every sound configuration *)
  metrics_mean : (string * float) list;
      (** mean per-run {!Indq_obs.Counter} deltas over the [utilities]
          trials, sorted by counter name *)
  hists : (string * Indq_obs.Histogram.snap) list;
      (** per-run {!Indq_obs.Histogram} deltas combined over the cell's
          trials (exact bucket addition, trial order), sorted by name *)
}

type sweep = {
  title : string;
  x_label : string;
  x_values : float list;
  algorithms : Indq_core.Algo.name list;
  cells : cell array array;  (** [cells.(xi).(algo)] *)
}

val run_sweep :
  ?pool:Indq_exec.Pool.t ->
  title:string ->
  x_label:string ->
  algorithms:Indq_core.Algo.name list ->
  points:(float * Indq_dataset.Dataset.t * Indq_core.Algo.config) list ->
  utilities:int ->
  user_delta:float ->
  seed:int ->
  unit ->
  sweep
(** The generic engine: for each (x, data, config) point, average over
    [utilities] random users.  [user_delta] is the {i simulated} user's
    true error; the algorithms' update rules use [config.delta].

    With [pool], every (point × algorithm × user) trial fans across the
    pool's domains.  Each trial's RNG seed is a pure function of its
    coordinates (fixed before anything runs) and each cell folds its
    trials in trial order, so the sweep — α, output sizes, false-negative
    counts and merged counter deltas — is {b bit-identical} for every pool
    size and schedule; only wall-clock [time_mean] varies.  Without
    [pool] (or with a size-1 pool) trials run inline, exactly the
    historical sequential harness. *)

(* Paper experiments.  [utilities] defaults to 10, [scale] to 1; [pool]
   parallelizes the sweep's trials (see {!run_sweep}). *)

val fig1 :
  ?utilities:int -> ?scale:float -> ?pool:Indq_exec.Pool.t -> seed:int ->
  unit -> sweep
(** Fig. 1: vary [T] in {1,5,10,20,50,100} for MinR/MinD on NBA
    ([q = 3d], [s = d], [eps = 0.05], [delta = 0]). *)

val fig2 :
  ?utilities:int -> ?scale:float -> ?pool:Indq_exec.Pool.t -> seed:int ->
  dataset_kind -> sweep
(** Fig. 2: vary the number of questions [q] in {d..6d} ([s = d],
    [eps = 0.05], [delta = 0]). *)

val fig3 :
  ?utilities:int -> ?scale:float -> ?pool:Indq_exec.Pool.t -> seed:int ->
  dataset_kind -> sweep
(** Fig. 3: vary the display size [s] in {2..2d} ([q = 3d]). *)

val fig4 :
  ?utilities:int -> ?scale:float -> ?pool:Indq_exec.Pool.t -> seed:int ->
  dataset_kind -> sweep
(** Fig. 4: vary [eps] in {0.001, 0.005, 0.01, 0.05, 0.1} (log x-axis). *)

val fig5 :
  ?utilities:int -> ?scale:float -> ?pool:Indq_exec.Pool.t -> seed:int ->
  dataset_kind -> sweep
(** Fig. 5: vary user error [delta] in {0.001, 0.005, 0.01, 0.05, 0.1}
    with [eps = 0.05]; algorithms run their δ-aware variants. *)

val tab3 :
  ?utilities:int -> ?scale:float -> ?pool:Indq_exec.Pool.t -> seed:int ->
  unit -> sweep
(** Table III: running time per algorithm per data set, [delta = 0]. *)

val tab4 :
  ?utilities:int -> ?scale:float -> ?pool:Indq_exec.Pool.t -> seed:int ->
  unit -> sweep
(** Table IV: running time with user error, [eps = delta = 0.05]. *)

val fig6 :
  ?utilities:int -> ?max_n:int -> ?pool:Indq_exec.Pool.t -> seed:int ->
  unit -> sweep
(** Fig. 6: anti-correlated, [d = 3], vary [n] in {1k, 10k, 100k, 1M}
    ([s = d = 3], [q = 9], [eps = delta = 0.05]).  [max_n] caps the sweep
    (default 1_000_000). *)

val fig7 :
  ?utilities:int -> ?n:int -> ?pool:Indq_exec.Pool.t -> seed:int ->
  unit -> sweep
(** Fig. 7: anti-correlated, [n = 10000], vary [d] in {2..6}
    ([s = 6], [q = 18], [eps = delta = 0.05] — the caption's settings). *)
