(** Rendering of experiment sweeps in the paper's layout.

    Figures become series tables (x in the first column, one α column per
    algorithm); the running-time tables become dataset-by-algorithm grids of
    seconds.  Every render also reports output sizes and the
    false-negative audit (which must read 0 everywhere). *)

val alpha_table : Experiments.sweep -> Indq_util.Tabulate.t
(** α(mean) per x per algorithm. *)

val time_table : Experiments.sweep -> Indq_util.Tabulate.t
(** Seconds (mean) per x per algorithm. *)

val size_table : Experiments.sweep -> Indq_util.Tabulate.t
(** Mean output-set size per x per algorithm. *)

val metrics_table : Experiments.sweep -> Indq_util.Tabulate.t
(** Mean per-run counter deltas: one row per (x, counter) pair, one column
    per algorithm ([-] where a counter never fired for that algorithm). *)

val false_negative_total : Experiments.sweep -> int
(** Sum of false-negative runs across all cells; must be 0. *)

val print_sweep :
  ?with_sizes:bool ->
  ?with_metrics:bool ->
  ?with_times:bool ->
  Experiments.sweep ->
  unit
(** α table, time table, optional size table, optional counter table, and
    the audit line.  [with_times = false] (default [true]) omits the time
    table, leaving only deterministic output — a [-j N] report then diffs
    byte-for-byte against a [-j 1] one (the CI smoke job does exactly
    that). *)

val sweep_to_json : ?with_times:bool -> Experiments.sweep -> string
(** One sweep as a single-line JSON object ({i title}, {i x_label},
    {i x_values}, {i algorithms}, {i cells}; each cell carries the
    {!Experiments.cell} fields with [metrics_mean] and [hists] as
    objects — per histogram its unit, exact count/sum and p50/p90/p99).
    Deterministic: fixed key order, floats printed exactly ([%.17g]), and
    [with_times = false] omits [time_mean]/[time_total] and every
    seconds-unit histogram — two reports from equivalent runs then diff
    byte-for-byte.  No JSON library needed or used.  [tools/benchdiff]
    consumes exactly this shape. *)

val print_time_sweep :
  ?with_metrics:bool ->
  ?with_times:bool ->
  labels:string list ->
  Experiments.sweep ->
  unit
(** For Tables III/IV: rows labeled by dataset name instead of x value.
    [with_times = false] omits the seconds grid (the table's whole point,
    but the counter table and audit line remain — the deterministic
    remainder the CI smoke diff checks). *)
