module Vec = Indq_linalg.Vec
module Lp = Indq_lp.Lp
module Rng = Indq_util.Rng
module Floatx = Indq_util.Floatx

type t = {
  dim : int;
  cuts : Halfspace.t list;  (* most recent first *)
  mutable emptiness : bool option;  (* cached LP feasibility verdict *)
}

let simplex d =
  if d < 1 then invalid_arg "Polytope.simplex: dimension must be >= 1";
  { dim = d; cuts = []; emptiness = Some false }

let dim r = r.dim

let halfspaces r = r.cuts

let cut r h =
  if Halfspace.dim h <> r.dim then invalid_arg "Polytope.cut: dimension mismatch";
  { dim = r.dim; cuts = h :: r.cuts; emptiness = None }

let cut_many r hs = List.fold_left cut r hs

let to_lp_constraints r =
  let ones = Array.make r.dim 1. in
  Lp.constr ones Lp.Eq 1. :: List.map Halfspace.to_lp_constr r.cuts

let is_empty r =
  match r.emptiness with
  | Some verdict -> verdict
  | None ->
    let verdict = not (Lp.is_feasible ~n:r.dim (to_lp_constraints r)) in
    r.emptiness <- Some verdict;
    verdict

let maximize r c =
  if Array.length c <> r.dim then invalid_arg "Polytope.maximize: bad objective";
  match Lp.maximize ~n:r.dim ~objective:c (to_lp_constraints r) with
  | Lp.Optimal { objective; point } ->
    r.emptiness <- Some false;
    Some (objective, point)
  | Lp.Infeasible ->
    r.emptiness <- Some true;
    None
  | Lp.Unbounded ->
    (* Impossible over the compact simplex; flag loudly if the LP ever
       reports it. *)
    assert false

let minimize r c =
  match maximize r (Array.map (fun x -> -.x) c) with
  | Some (value, point) -> Some (-.value, point)
  | None -> None

let contains ?tol r v =
  Array.length v = r.dim
  && Array.for_all (fun x -> Floatx.geq ?tol x 0.) v
  && Floatx.approx_equal ?tol (Vec.sum v) 1.
  && List.for_all (fun h -> Halfspace.satisfies ?tol h v) r.cuts

let require_nonempty name r =
  if is_empty r then invalid_arg (name ^ ": empty region")

let coordinate_profile r =
  require_nonempty "Polytope.coordinate_bounds" r;
  let witnesses = ref [] in
  let bounds =
    Array.init r.dim (fun i ->
        let e = Vec.basis r.dim i in
        let lo, p_lo =
          match minimize r e with Some (v, p) -> (v, p) | None -> assert false
        in
        let hi, p_hi =
          match maximize r e with Some (v, p) -> (v, p) | None -> assert false
        in
        witnesses := p_lo :: p_hi :: !witnesses;
        (lo, hi))
  in
  (bounds, !witnesses)

let coordinate_bounds r = fst (coordinate_profile r)

let width r =
  let bounds = coordinate_bounds r in
  Array.fold_left (fun acc (lo, hi) -> Float.max acc (hi -. lo)) 0. bounds

let support_width r dir =
  require_nonempty "Polytope.support_width" r;
  match (maximize r dir, minimize r dir) with
  | Some (hi, _), Some (lo, _) -> hi -. lo
  | _ -> assert false

let axis_pair_directions d =
  let dirs = ref [] in
  for i = 0 to d - 1 do
    for j = i + 1 to d - 1 do
      let dir = Array.make d 0. in
      dir.(i) <- 1.;
      dir.(j) <- -1.;
      dirs := dir :: !dirs
    done
  done;
  !dirs

let diameter ?(extra_directions = [||]) r =
  require_nonempty "Polytope.diameter" r;
  let axes = List.init r.dim (fun i -> Vec.basis r.dim i) in
  let dirs = axes @ axis_pair_directions r.dim @ Array.to_list extra_directions in
  List.fold_left
    (fun acc dir ->
      let extent = support_width r dir /. Float.max (Vec.norm2 dir) 1e-12 in
      Float.max acc extent)
    0. dirs

let center_estimate r =
  require_nonempty "Polytope.center_estimate" r;
  let acc = Array.make r.dim 0. in
  let count = ref 0 in
  for i = 0 to r.dim - 1 do
    let e = Vec.basis r.dim i in
    (match maximize r e with
    | Some (_, p) ->
      Vec.add_ip acc p;
      incr count
    | None -> assert false);
    match minimize r e with
    | Some (_, p) ->
      Vec.add_ip acc p;
      incr count
    | None -> assert false
  done;
  Array.map (fun x -> x /. float_of_int !count) acc

(* How far can we move from [x] along [w] (with sum w_i = 0) before leaving
   the region?  Clips against v >= 0 and each cut; returns (t_min, t_max). *)
let line_clip r x w =
  let t_lo = ref neg_infinity and t_hi = ref infinity in
  let tighten coeff bound =
    (* constraint: coeff * t >= bound *)
    if Float.abs coeff < 1e-14 then begin
      (* Direction parallel to the constraint: if violated we produce an
         empty interval. *)
      if bound > 1e-12 then begin
        t_lo := infinity;
        t_hi := neg_infinity
      end
    end
    else if coeff > 0. then t_lo := Float.max !t_lo (bound /. coeff)
    else t_hi := Float.min !t_hi (bound /. coeff)
  in
  (* v_i = x_i + t w_i >= 0  <=>  w_i * t >= -x_i *)
  for i = 0 to r.dim - 1 do
    tighten w.(i) (-.x.(i))
  done;
  List.iter
    (fun (h : Halfspace.t) ->
      (* normal.(x + t w) >= offset  <=>  (normal.w) t >= offset - normal.x *)
      let coeff = Vec.dot (h.normal : float array) w in
      tighten coeff (-.Halfspace.slack h x))
    r.cuts;
  (!t_lo, !t_hi)

let random_point r rng ~steps =
  require_nonempty "Polytope.random_point" r;
  (* [center_estimate] returns a fresh vector, so the walk can step it in
     place ([axpy_ip] computes the same bits as [axpy]). *)
  let x = center_estimate r in
  for _ = 1 to steps do
    (* Random direction on the simplex hyperplane: gaussian, centered. *)
    let raw = Array.init r.dim (fun _ -> Rng.gaussian rng) in
    let mean = Vec.sum raw /. float_of_int r.dim in
    let w = Array.map (fun v -> v -. mean) raw in
    if Vec.norm2 w > 1e-9 then begin
      let t_lo, t_hi = line_clip r x w in
      if t_lo < t_hi && Float.is_finite t_lo && Float.is_finite t_hi then begin
        let t = Rng.in_range rng t_lo t_hi in
        Vec.axpy_ip t w x
      end
    end
  done;
  x
