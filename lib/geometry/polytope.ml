module Vec = Indq_linalg.Vec
module Lp = Indq_lp.Lp
module Rng = Indq_util.Rng
module Floatx = Indq_util.Floatx
module Counter = Indq_obs.Counter

let c_cache_hits = Counter.make "poly.cache_hits"

exception Solver_error of Lp.error
(* The LP solver returned [Lp.Failed] where a verdict was required (an
   extreme value, a profile, a width).  The region's geometry is unknown —
   callers either degrade (score the display set as unusable, keep the
   previous region) or let the typed error surface.  [is_empty] handles
   [Lp.Failed] itself and never raises this. *)

let () =
  Printexc.register_printer (function
    | Solver_error e -> Some ("Indq_geom.Polytope.Solver_error: " ^ Lp.error_message e)
    | _ -> None)

(* Master switch for the incremental engine: artifact revalidation across
   cuts, per-polytope memoization, and LP warm starts.  Off = every query
   recomputes from scratch (the historical cold path); used by tests and by
   [bench -cold] to prove both paths agree. *)
let incremental = ref true

let set_incremental b = incremental := b

let incremental_enabled () = !incremental

(* Per-coordinate / per-direction extreme: optimal value plus the region
   point (LP vertex) where it is attained.  The point doubles as the cache
   invalidation certificate: it survives a cut iff a dot product says so,
   and while it survives, the cached value is still exact (the point
   attains it and the region only shrank). *)
type extreme = { value : float; witness : float array }

(* Cached artifacts, filled lazily as queries run.  [profile] is the
   canonical coordinate profile: always computed by cold LP solves so its
   witness points (which feed [center_estimate] and Lemma-2 witness lists)
   are bit-identical to the from-scratch path.  [fast_bounds] and
   [support] memoize per-direction extremes, also cold-solved: their
   values feed strict float comparisons downstream (trial scores can tie
   to the last ulp), so only bit-exact reuse — a memo of the identical
   pure solve — is admissible; ancestors contribute *upper-bound hints*
   for skipping, never values.  [warm] is the last optimal simplex basis
   seen for this cut list, reused to skip phase 1 on later verdict-grade
   solves (feasibility, prune thresholds) over the same polytope. *)
type artifacts = {
  mutable feas_point : float array option;
  mutable profile : ((float * float) array * float array list) option;
  mutable fast_bounds : (extreme * extreme) option array;
      (* per coordinate: (min, max); empty array until first use *)
  support : (int, extreme * extreme) Hashtbl.t;
      (* canonical direction index -> (min, max) *)
  mutable warm : Lp.basis option;
}

type t = {
  dim : int;
  cuts : Halfspace.t list;  (* most recent first *)
  parent : t option;  (* the polytope this was cut from *)
  depth : int;  (* List.length cuts *)
  mutable emptiness : bool option;  (* cached LP feasibility verdict *)
  art : artifacts;
}

let fresh_artifacts () =
  {
    feas_point = None;
    profile = None;
    fast_bounds = [||];
    support = Hashtbl.create 8;
    warm = None;
  }

let simplex d =
  if d < 1 then invalid_arg "Polytope.simplex: dimension must be >= 1";
  let art = fresh_artifacts () in
  (* Any basis vector is a point of the full simplex. *)
  art.feas_point <- Some (Vec.basis d 0);
  { dim = d; cuts = []; parent = None; depth = 0; emptiness = Some false; art }

let dim r = r.dim

let halfspaces r = r.cuts

let cut r h =
  if Halfspace.dim h <> r.dim then invalid_arg "Polytope.cut: dimension mismatch";
  {
    dim = r.dim;
    cuts = h :: r.cuts;
    parent = Some r;
    depth = r.depth + 1;
    emptiness = None;
    art = fresh_artifacts ();
  }

let cut_many r hs = List.fold_left cut r hs

let to_lp_constraints r =
  let ones = Array.make r.dim 1. in
  Lp.constr ones Lp.Eq 1. :: List.map Halfspace.to_lp_constr r.cuts

(* --- LP plumbing ------------------------------------------------------- *)

(* Cold solve: no warm start, so pivot order — and hence the optimal vertex
   reported on a degenerate face — is exactly the historical one.  Still
   records the resulting basis and point for *later* warm/value reuse. *)
let solve_cold r objective direction =
  let outcome, basis =
    Lp.solve ~n:r.dim ~objective direction (to_lp_constraints r)
  in
  (match basis with Some _ -> r.art.warm <- basis | None -> ());
  (match outcome with
  | Lp.Optimal { point; _ } ->
    r.emptiness <- Some false;
    if r.art.feas_point = None then r.art.feas_point <- Some point
  | Lp.Infeasible -> r.emptiness <- Some true
  | Lp.Unbounded | Lp.Failed _ -> ());
  outcome

(* Warm-eligible solve: value-grade results (feasibility verdicts and
   optimal values; points may sit elsewhere on a degenerate optimal
   face). *)
let solve_warm r objective direction =
  let warm = if !incremental then r.art.warm else None in
  let outcome, basis =
    Lp.solve ?warm ~n:r.dim ~objective direction (to_lp_constraints r)
  in
  (match basis with Some _ -> r.art.warm <- basis | None -> ());
  (match outcome with
  | Lp.Optimal { point; _ } ->
    r.emptiness <- Some false;
    if r.art.feas_point = None then r.art.feas_point <- Some point
  | Lp.Infeasible -> r.emptiness <- Some true
  | Lp.Unbounded | Lp.Failed _ -> ());
  outcome

(* --- Ancestor-cache lookup --------------------------------------------- *)

(* Every ancestor artifact [probe] finds along the cut chain (nearest
   first), each paired with the halfspaces a witness from that ancestor
   must satisfy to still be a point of [r].  Trying the whole chain
   matters: when the nearest cached witness dies on a new cut, an older
   one — a different vertex — may still survive, and its value is equally
   exact (if an outer ancestor's extreme witness lies in [r], every
   region between them has the same extreme, attained at that point). *)
let ancestor_candidates r ~probe =
  let rec go node cuts acc =
    let acc =
      match probe node with
      | Some artifact -> (artifact, cuts) :: acc
      | None -> acc
    in
    match (node.parent, node.cuts) with
    | Some p, newest :: _ -> go p (newest :: cuts) acc
    | _ -> List.rev acc
  in
  go r [] []

let survives cuts point = List.for_all (fun h -> Halfspace.satisfies h point) cuts

(* --- Feasibility ------------------------------------------------------- *)

(* Points of [r] already known from any cached artifact, cheapest first.
   Which point settles a feasibility probe is irrelevant downstream (only
   the verdict escapes), so every cached witness is fair game. *)
let known_points r =
  let acc = match r.art.feas_point with Some p -> [ p ] | None -> [] in
  let acc =
    match r.art.profile with
    | Some (_, witnesses) -> acc @ witnesses
    | None -> acc
  in
  let acc =
    Array.fold_left
      (fun acc slot ->
        match slot with
        | Some ((mn : extreme), (mx : extreme)) ->
          mn.witness :: mx.witness :: acc
        | None -> acc)
      acc r.art.fast_bounds
  in
  (* The support memo is a hash table; fold order is bucket order, which
     depends on insertion history.  Which cached witness settles a
     feasibility probe picks the [feas_point] that seeds descendant
     probes, so enumerate in canonical-direction-index order to keep the
     candidate sequence a pure function of the cut list (IND001). *)
  Hashtbl.fold (fun idx pair acc -> (idx, pair) :: acc) r.art.support []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.fold_left
       (fun acc (_, ((mn : extreme), (mx : extreme))) ->
         mn.witness :: mx.witness :: acc)
       acc

let is_empty r =
  match r.emptiness with
  | Some verdict -> verdict
  | None ->
    let cached_point =
      if not !incremental then None
      else
        (* Any ancestor point surviving the interleaving cuts is a point of
           [r]: feasibility settled by dot products alone. *)
        ancestor_candidates r ~probe:(fun a ->
            match known_points a with [] -> None | ps -> Some ps)
        |> List.find_map (fun (points, cuts) ->
               List.find_opt (survives cuts) points)
    in
    (match cached_point with
    | Some p ->
      Counter.incr c_cache_hits;
      r.art.feas_point <- Some p;
      r.emptiness <- Some false;
      false
    | None ->
      (* d = 2 analytic verdict: on the simplex line every polytope is an
         interval, so the parent's two profile witnesses are its complete
         vertex set; the newest cut excluding both excludes the whole
         interval (a linear function attains its max at an endpoint).
         Only sound in d = 2 — in higher dimension the 2d profile
         vertices are not all vertices. *)
      let analytic_empty =
        !incremental && r.dim = 2
        &&
        match (r.parent, r.cuts) with
        | Some p, newest :: _ -> (
          match p.art.profile with
          | Some (_, witnesses) ->
            witnesses <> []
            && List.for_all
                 (fun w -> not (Halfspace.satisfies newest w))
                 witnesses
          | None -> false)
        | _ -> false
      in
      if analytic_empty then begin
        Counter.incr c_cache_hits;
        r.emptiness <- Some true;
        true
      end
      else
        match solve_warm r (Array.make r.dim 0.) `Minimize with
        | Lp.Optimal _ ->
          r.emptiness <- Some false;
          false
        | Lp.Infeasible ->
          r.emptiness <- Some true;
          true
        | Lp.Unbounded -> assert false
        | Lp.Failed _ ->
          (* The solver could not reach a verdict, so the region's
             feasibility is unknown.  Report it as unusable (empty) —
             callers discard an empty posterior and keep their last sound
             region, which preserves no-false-negatives — but do NOT cache
             the verdict: a later query may succeed and must not inherit a
             fabricated emptiness. *)
          true)

let maximize r c =
  if Array.length c <> r.dim then invalid_arg "Polytope.maximize: bad objective";
  match solve_warm r c `Maximize with
  | Lp.Optimal { objective; point } -> Some (objective, point)
  | Lp.Infeasible -> None
  | Lp.Unbounded ->
    (* Impossible over the compact simplex; flag loudly if the LP ever
       reports it. *)
    assert false
  | Lp.Failed e -> raise (Solver_error e)

let minimize r c =
  match maximize r (Array.map (fun x -> -.x) c) with
  | Some (value, point) -> Some (-.value, point)
  | None -> None

let contains ?tol r v =
  Array.length v = r.dim
  && Array.for_all (fun x -> Floatx.geq ?tol x 0.) v
  && Floatx.approx_equal ?tol (Vec.sum v) 1.
  && List.for_all (fun h -> Halfspace.satisfies ?tol h v) r.cuts

let require_nonempty name r =
  if is_empty r then invalid_arg (name ^ ": empty region")

(* --- Canonical coordinate profile (cold-solved, memoized) -------------- *)

(* The profile's witnesses feed [center_estimate] and the Lemma-2 witness
   list, where the *identity* of the optimal vertex matters for downstream
   decisions (anchor selection), not just the optimal value.  Cold solves
   keep those vertices bit-identical to the from-scratch path; memoization
   per polytope value is free of behaviour change because the solver is a
   pure function of (constraints, objective). *)
let compute_profile r =
  require_nonempty "Polytope.coordinate_bounds" r;
  let witnesses = ref [] in
  let bounds =
    Array.init r.dim (fun i ->
        (* A fast-bound slot memoizes the results of the very same two
           cold solves this loop would issue (same pure function, same
           arguments), so reusing value and witness alike is bit-exact. *)
        let memo =
          if !incremental && Array.length r.art.fast_bounds > 0 then
            r.art.fast_bounds.(i)
          else None
        in
        match memo with
        | Some ((mn : extreme), (mx : extreme)) ->
          Counter.incr c_cache_hits;
          witnesses := mn.witness :: mx.witness :: !witnesses;
          (mn.value, mx.value)
        | None ->
          let e = Vec.basis r.dim i in
          let lo, p_lo =
            match solve_cold r (Array.map (fun x -> -.x) e) `Maximize with
            | Lp.Optimal { objective; point } -> (-.objective, point)
            | Lp.Failed err -> raise (Solver_error err)
            | _ -> assert false
          in
          let hi, p_hi =
            match solve_cold r e `Maximize with
            | Lp.Optimal { objective; point } -> (objective, point)
            | Lp.Failed err -> raise (Solver_error err)
            | _ -> assert false
          in
          witnesses := p_lo :: p_hi :: !witnesses;
          (lo, hi))
  in
  (bounds, !witnesses)

let coordinate_profile r =
  match r.art.profile with
  | Some p when !incremental ->
    Counter.incr c_cache_hits;
    p
  | _ ->
    let p = compute_profile r in
    if !incremental then r.art.profile <- Some p;
    p

let coordinate_bounds r = fst (coordinate_profile r)

(* --- Value-grade extremes with cut revalidation ------------------------ *)

let ensure_fast_bounds r =
  if Array.length r.art.fast_bounds = 0 then
    r.art.fast_bounds <- Array.make r.dim None

(* The (min, max) extreme pair of [objective] over [r].

   Bit-identity discipline: these values feed strict float comparisons
   downstream (MinR/MinD trial scores, which can tie to the last ulp when
   posteriors partition a region), so they must be the EXACT floats the
   from-scratch path computes — produced by cold solves replicating its
   operation order, then memoized per polytope (the solver is a pure
   function of constraints and objective, so a memo hit is bit-safe where
   a revalidated parent value or a warm-started re-solve is not). *)
let extreme_pair r objective ~get ~set =
  match get r with
  | Some pair ->
    Counter.incr c_cache_hits;
    pair
  | None ->
    (* Low side first, matching [compute_profile]; value float ops mirror
       the historical [minimize]-via-[maximize] path exactly. *)
    let lo =
      match
        solve_cold r (Array.map (fun x -> -.x) objective) `Maximize
      with
      | Lp.Optimal { objective = o; point } -> { value = -.o; witness = point }
      | Lp.Failed err -> raise (Solver_error err)
      | _ -> assert false
    in
    let hi =
      match solve_cold r objective `Maximize with
      | Lp.Optimal { objective = o; point } -> { value = o; witness = point }
      | Lp.Failed err -> raise (Solver_error err)
      | _ -> assert false
    in
    if !incremental then set r (lo, hi);
    (lo, hi)

(* Seed a polytope's fast-bound slot for coordinate [i] from its canonical
   profile if one was already paid for: profile witnesses are genuine
   extremes.  Witness lists are built back-to-front — for coordinate k
   (from d-1 down to 0) they hold [p_lo k; p_hi k; ...] — so coordinate
   i's pair sits at offset [2 * (dim - 1 - i)]. *)
let seed_fast_bound_from_profile r i =
  match r.art.profile with
  | None -> ()
  | Some (bounds, witnesses) ->
    ensure_fast_bounds r;
    if r.art.fast_bounds.(i) = None then begin
      let base = 2 * (r.dim - 1 - i) in
      match (List.nth_opt witnesses base, List.nth_opt witnesses (base + 1)) with
      | Some p_lo, Some p_hi ->
        let lo, hi = bounds.(i) in
        r.art.fast_bounds.(i) <-
          Some ({ value = lo; witness = p_lo }, { value = hi; witness = p_hi })
      | _ -> ()
    end

let fast_coordinate_extremes r i =
  extreme_pair r (Vec.basis r.dim i)
    ~get:(fun a ->
      seed_fast_bound_from_profile a i;
      if Array.length a.art.fast_bounds = 0 then None else a.art.fast_bounds.(i))
    ~set:(fun a pair ->
      ensure_fast_bounds a;
      a.art.fast_bounds.(i) <- Some pair)

(* Skip margin for hint-based pruning of max-fold directions.  A hint is
   an ancestor's cached float, and the skipped direction's would-be cold
   float both carry LP round-off (~1e-9 at worst on the unit simplex);
   skipping only when the hint trails the running maximum by more than
   this margin guarantees the skipped cold float could not have changed
   the fold, keeping the returned value bit-identical to the cold path.
   Directions within the margin — ties included — are solved cold. *)
let skip_margin = 1e-6

(* An upper bound on coordinate [i]'s range over [r], from the nearest
   ancestor (or [r] itself) that ever solved it: regions only shrink, so
   an ancestor's range bounds every descendant's — no witness revalidation
   needed.  [None] when nothing in the chain has touched coordinate [i]. *)
let rec range_hint r i =
  let here =
    if Array.length r.art.fast_bounds > 0 && r.art.fast_bounds.(i) <> None then
      match r.art.fast_bounds.(i) with
      | Some (mn, mx) -> Some (mx.value -. mn.value)
      | None -> None
    else
      match r.art.profile with
      | Some (bounds, _) ->
        let lo, hi = bounds.(i) in
        Some (hi -. lo)
      | None -> None
  in
  match here with
  | Some _ as s -> s
  | None -> (match r.parent with Some p -> range_hint p i | None -> None)

(* Process directions in descending order of their inherited upper bound,
   so the true maximum is met early and every direction whose bound cannot
   beat the running maximum is skipped without an LP.  Exact by the subset
   argument above; [None] hints sort first (they must be solved). *)
let by_descending_hint hints =
  let arr = Array.mapi (fun i h -> (i, h)) hints in
  Array.sort
    (fun (i, a) (j, b) ->
      match (a, b) with
      | None, None -> compare i j
      | None, Some _ -> -1
      | Some _, None -> 1
      | Some x, Some y ->
        let c = Float.compare y x in
        if c <> 0 then c else compare i j)
    arr;
  arr

(* Break out of a max-fold once the caller has seen enough. *)
exception Stopped

let width ?stop_when r =
  require_nonempty "Polytope.coordinate_bounds" r;
  if not !incremental then
    let bounds = coordinate_bounds r in
    Array.fold_left (fun acc (lo, hi) -> Float.max acc (hi -. lo)) 0. bounds
  else begin
    let order = by_descending_hint (Array.init r.dim (range_hint r)) in
    let acc = ref 0. in
    (try
       Array.iter
         (fun (i, hint) ->
           (match hint with
           | Some h when h +. skip_margin <= !acc -> Counter.incr c_cache_hits
           | _ ->
             let lo, hi = fast_coordinate_extremes r i in
             acc := Float.max !acc (hi.value -. lo.value));
           match stop_when with
           | Some f when f !acc -> raise Stopped
           | _ -> ())
         order
     with Stopped -> ());
    !acc
  end

let support_width r dir =
  require_nonempty "Polytope.support_width" r;
  match (maximize r dir, minimize r dir) with
  | Some (hi, _), Some (lo, _) -> hi -. lo
  | _ -> assert false

let axis_pair_directions d =
  let dirs = ref [] in
  for i = 0 to d - 1 do
    for j = i + 1 to d - 1 do
      let dir = Array.make d 0. in
      dir.(i) <- 1.;
      dir.(j) <- -1.;
      dirs := dir :: !dirs
    done
  done;
  !dirs

(* Support extremes along canonical direction [idx] (the position in
   [axes @ axis_pair_directions dim]), cached per polytope and inherited
   through cuts like the coordinate bounds. *)
let fast_support_extremes r idx dir =
  extreme_pair r dir
    ~get:(fun a -> Hashtbl.find_opt a.art.support idx)
    ~set:(fun a pair -> Hashtbl.replace a.art.support idx pair)

(* [range_hint]'s analogue for canonical support directions; for axis
   directions the coordinate caches hint too (an axis support width IS
   that coordinate's range). *)
let rec support_hint r idx =
  match Hashtbl.find_opt r.art.support idx with
  | Some ((mn : extreme), (mx : extreme)) -> Some (mx.value -. mn.value)
  | None -> (match r.parent with Some p -> support_hint p idx | None -> None)

let diameter ?(extra_directions = [||]) ?stop_when r =
  require_nonempty "Polytope.diameter" r;
  let axes = List.init r.dim (fun i -> Vec.basis r.dim i) in
  let canonical = Array.of_list (axes @ axis_pair_directions r.dim) in
  let extent_of support dir =
    support /. Float.max (Vec.norm2 dir) 1e-12
  in
  let acc = ref 0. in
  (try
     if not !incremental then
       Array.iteri
         (fun _ dir ->
           acc := Float.max !acc (extent_of (support_width r dir) dir))
         canonical
     else begin
       let hints =
         Array.mapi
           (fun idx dir ->
             let h =
               match support_hint r idx with
               | Some _ as s -> s
               | None -> if idx < r.dim then range_hint r idx else None
             in
             Option.map (fun h -> extent_of h dir) h)
           canonical
       in
       Array.iter
         (fun (idx, hint) ->
           (match hint with
           | Some h when h +. skip_margin <= !acc -> Counter.incr c_cache_hits
           | _ ->
             let dir = canonical.(idx) in
             let lo, hi = fast_support_extremes r idx dir in
             acc := Float.max !acc (extent_of (hi.value -. lo.value) dir));
           match stop_when with
           | Some f when f !acc -> raise Stopped
           | _ -> ())
         (by_descending_hint hints)
     end;
     Array.iter
       (fun dir -> acc := Float.max !acc (extent_of (support_width r dir) dir))
       extra_directions
   with Stopped -> ());
  !acc

let center_estimate r =
  require_nonempty "Polytope.center_estimate" r;
  (* Built from the canonical profile: the 2d cold-solved extreme vertices,
     summed in the historical order (max then min per coordinate), so the
     estimate is bit-identical to the from-scratch path while paying its
     LPs only once per polytope. *)
  let _, witnesses = coordinate_profile r in
  (* witnesses = [p_lo(d-1); p_hi(d-1); ...; p_lo(0); p_hi(0)] *)
  let arr = Array.of_list witnesses in
  let acc = Array.make r.dim 0. in
  let count = ref 0 in
  for i = 0 to r.dim - 1 do
    let base = 2 * (r.dim - 1 - i) in
    let p_lo = arr.(base) and p_hi = arr.(base + 1) in
    Vec.add_ip acc p_hi;
    incr count;
    Vec.add_ip acc p_lo;
    incr count
  done;
  Array.map (fun x -> x /. float_of_int !count) acc

(* How far can we move from [x] along [w] (with sum w_i = 0) before leaving
   the region?  Clips against v >= 0 and each cut; returns (t_min, t_max). *)
let line_clip r x w =
  let t_lo = ref neg_infinity and t_hi = ref infinity in
  let tighten coeff bound =
    (* constraint: coeff * t >= bound *)
    if Float.abs coeff < 1e-14 then begin
      (* Direction parallel to the constraint: if violated we produce an
         empty interval. *)
      if bound > 1e-12 then begin
        t_lo := infinity;
        t_hi := neg_infinity
      end
    end
    else if coeff > 0. then t_lo := Float.max !t_lo (bound /. coeff)
    else t_hi := Float.min !t_hi (bound /. coeff)
  in
  (* v_i = x_i + t w_i >= 0  <=>  w_i * t >= -x_i *)
  for i = 0 to r.dim - 1 do
    tighten w.(i) (-.x.(i))
  done;
  List.iter
    (fun (h : Halfspace.t) ->
      (* normal.(x + t w) >= offset  <=>  (normal.w) t >= offset - normal.x *)
      let coeff = Vec.dot (h.normal : float array) w in
      tighten coeff (-.Halfspace.slack h x))
    r.cuts;
  (!t_lo, !t_hi)

let random_point r rng ~steps =
  require_nonempty "Polytope.random_point" r;
  (* [center_estimate] returns a fresh vector, so the walk can step it in
     place ([axpy_ip] computes the same bits as [axpy]). *)
  let x = center_estimate r in
  for _ = 1 to steps do
    (* Random direction on the simplex hyperplane: gaussian, centered. *)
    let raw = Array.init r.dim (fun _ -> Rng.gaussian rng) in
    let mean = Vec.sum raw /. float_of_int r.dim in
    let w = Array.map (fun v -> v -. mean) raw in
    if Vec.norm2 w > 1e-9 then begin
      let t_lo, t_hi = line_clip r x w in
      if t_lo < t_hi && Float.is_finite t_lo && Float.is_finite t_hi then begin
        let t = Rng.in_range rng t_lo t_hi in
        Vec.axpy_ip t w x
      end
    end
  done;
  x
