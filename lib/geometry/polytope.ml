module Vec = Indq_linalg.Vec
module Lp = Indq_lp.Lp
module Rng = Indq_util.Rng
module Floatx = Indq_util.Floatx
module Counter = Indq_obs.Counter

let c_cache_hits = Counter.make "poly.cache_hits"

exception Solver_error of Lp.error
(* The LP solver returned [Lp.Failed] where a verdict was required (an
   extreme value, a profile, a width).  The region's geometry is unknown —
   callers either degrade (score the display set as unusable, keep the
   previous region) or let the typed error surface.  [is_empty] handles
   [Lp.Failed] itself and never raises this. *)

let () =
  Printexc.register_printer (function
    | Solver_error e -> Some ("Indq_geom.Polytope.Solver_error: " ^ Lp.error_message e)
    | _ -> None)

(* Master switch for the incremental engine: per-polytope memoization of
   the frozen tableau, extreme pairs, profiles and feasibility verdicts.
   Off = every query recomputes from scratch (the canonical replay, run
   without any cross-query cache); used by tests and by [bench -cold] to
   prove both paths agree.

   The central determinism discipline of this module: every LP-derived
   value is a *pure function of the cut list* (plus static query
   parameters).  Each region owns a canonical "frozen" dual-simplex
   tableau obtained by replaying its cuts oldest-to-newest through
   [Lp.Live.add_cut] under the zero objective; every value query forks
   that tableau and optimizes on the fork, so the pivot sequence — and
   hence every float — depends only on (cuts, query), never on which
   queries ran before.  Incremental mode memoizes the frozen tableau and
   the query results per node; cold mode rebuilds the same objects per
   query and necessarily lands on the same bits. *)
let incremental = Atomic.make true

let set_incremental b = Atomic.set incremental b

let incremental_enabled () = Atomic.get incremental

(* Per-coordinate / per-direction extreme: optimal value plus the region
   point (LP vertex) where it is attained.  The point doubles as the cache
   invalidation certificate: it survives a cut iff a dot product says so,
   and while it survives, the cached value is still exact (the point
   attains it and the region only shrank). *)
type extreme = { value : float; witness : Vec.t }

(* The canonical frozen tableau of a region: the [Lp.Live] state after
   replaying the cut list from the root simplex, one [add_cut] per node,
   always under the zero objective.  Never mutated after construction —
   value queries fork it ([Lp.Live.copy]) and pivot on the fork, so one
   parent setup is reused across every candidate child and every
   per-candidate objective (the Lemma-2 batch shape).  [Empty] is the
   exact dual-ratio infeasibility verdict; [Fallback] records that the
   replay failed (pivot budget, numerics) — deterministically, so both
   engine modes take the same branch — and all queries on the region use
   the legacy cold two-phase solver instead. *)
type frozen = Tableau of Lp.Live.t | Empty | Fallback

type artifacts = {
  mutable feas_point : Vec.t option;
  mutable profile : ((float * float) array * Vec.t list) option;
  mutable fast_bounds : (extreme * extreme) option array;
      (* per coordinate: (min, max); empty array until first use *)
  support : (int, extreme * extreme) Hashtbl.t;
      (* canonical direction index -> (min, max) *)
  mutable frozen : frozen option;
}

type t = {
  dim : int;
  cuts : Halfspace.t list;  (* most recent first *)
  parent : t option;  (* the polytope this was cut from *)
  depth : int;  (* List.length cuts *)
  mutable emptiness : bool option;  (* cached feasibility verdict *)
  art : artifacts;
}

let fresh_artifacts () =
  {
    feas_point = None;
    profile = None;
    fast_bounds = [||];
    support = Hashtbl.create 8;
    frozen = None;
  }

let simplex d =
  if d < 1 then invalid_arg "Polytope.simplex: dimension must be >= 1";
  let art = fresh_artifacts () in
  (* Any basis vector is a point of the full simplex. *)
  art.feas_point <- Some (Vec.basis d 0);
  { dim = d; cuts = []; parent = None; depth = 0; emptiness = Some false; art }

let dim r = r.dim

let halfspaces r = r.cuts

let cut r h =
  if Halfspace.dim h <> r.dim then invalid_arg "Polytope.cut: dimension mismatch";
  {
    dim = r.dim;
    cuts = h :: r.cuts;
    parent = Some r;
    depth = r.depth + 1;
    emptiness = None;
    art = fresh_artifacts ();
  }

let cut_many r hs = List.fold_left cut r hs

let to_lp_constraints r =
  let ones = Vec.make r.dim 1. in
  Lp.constr ones Lp.Eq 1. :: List.map Halfspace.to_lp_constr r.cuts

(* --- Legacy cold solver (fallback path) -------------------------------- *)

(* Two-phase primal solve over the full constraint list.  Only reached
   when the canonical replay reported [Fallback] for this region — a
   deterministic event — so both engine modes agree on when it runs. *)
let solve_cold r objective direction =
  let outcome = Lp.solve ~n:r.dim ~objective direction (to_lp_constraints r) in
  (match outcome with
  | Lp.Optimal { point; _ } ->
    r.emptiness <- Some false;
    if r.art.feas_point = None then r.art.feas_point <- Some point
  | Lp.Infeasible -> r.emptiness <- Some true
  | Lp.Unbounded | Lp.Failed _ -> ());
  outcome

(* --- Canonical frozen tableau ------------------------------------------ *)

(* Query-local replay memo for cold mode: the frozen chain root -> r is
   built once per public query and shared by every direction that query
   probes, instead of being rebuilt per direction (which would square the
   replay cost).  Keyed by physical node. *)
type ctx = (t * frozen) list ref

let new_ctx () : ctx = ref []

let rec frozen_via (ctx : ctx) r =
  let cached =
    if Atomic.get incremental then r.art.frozen else List.assq_opt r !ctx
  in
  match cached with
  | Some f ->
    if Atomic.get incremental then Counter.incr c_cache_hits;
    f
  | None ->
    let f =
      match r.parent with
      | None -> (
        match Lp.Live.create ~n:r.dim (to_lp_constraints r) with
        | `Feasible h -> Tableau h
        | `Infeasible -> Empty
        | `Failed _ -> Fallback)
      | Some p -> (
        match frozen_via ctx p with
        | Empty -> Empty
        | Fallback -> Fallback
        | Tableau ph -> (
          (* Each [cut] node carries exactly one halfspace of its own:
             the head of its cut list. *)
          let h = Lp.Live.copy ph in
          match Lp.Live.add_cut h (Halfspace.to_lp_constr (List.hd r.cuts)) with
          | `Sat | `Reopt _ -> Tableau h
          | `Infeasible -> Empty
          | `Failed _ -> Fallback))
    in
    (if Atomic.get incremental then r.art.frozen <- Some f else ctx := (r, f) :: !ctx);
    f

(* --- The d = 2 analytic path ------------------------------------------- *)

(* On the simplex line [u = (a, 1-a)], [a in [0, 1]], every region is an
   interval: cut [n . u >= b] reduces to [(n0 - n1) a >= b - n1].  The
   same thresholds as [line_clip] decide parallel cuts.  A pure function
   of the cut list, shared verbatim by both engine modes, and the reason
   the d = 2 experiment cells run without a single LP pivot. *)
let d2_interval r =
  let lo = ref 0. and hi = ref 1. in
  List.iter
    (fun (h : Halfspace.t) ->
      let n0 = Vec.get h.normal 0 and n1 = Vec.get h.normal 1 in
      let coeff = n0 -. n1 and bound = h.offset -. n1 in
      if Float.abs coeff < 1e-14 then begin
        if bound > 1e-12 then begin
          lo := infinity;
          hi := neg_infinity
        end
      end
      else if coeff > 0. then lo := Float.max !lo (bound /. coeff)
      else hi := Float.min !hi (bound /. coeff))
    r.cuts;
  (!lo, !hi)

(* Same feasibility slack as the LP tolerance regime: an interval inverted
   by no more than [d2_tol] is a degenerate (single-point) region, not an
   empty one — matching how the simplex method absorbs round-off on a
   boundary vertex. *)
let d2_tol = 1e-9

let d2_range r =
  let lo, hi = d2_interval r in
  if lo > hi +. d2_tol then None
  else if lo > hi then
    let m = 0.5 *. (lo +. hi) in
    Some (m, m)
  else Some (lo, hi)

let d2_point a = Vec.init 2 (fun i -> if i = 0 then a else 1. -. a)

let d2_range_exn r =
  match d2_range r with Some iv -> iv | None -> assert false

(* --- Feasibility ------------------------------------------------------- *)

(* Points of [r] already known from any cached artifact, cheapest first.
   Which point settles a feasibility probe is irrelevant downstream (only
   the verdict escapes), so every cached witness is fair game. *)
let known_points r =
  let acc = match r.art.feas_point with Some p -> [ p ] | None -> [] in
  let acc =
    match r.art.profile with
    | Some (_, witnesses) -> acc @ witnesses
    | None -> acc
  in
  let acc =
    Array.fold_left
      (fun acc slot ->
        match slot with
        | Some ((mn : extreme), (mx : extreme)) ->
          mn.witness :: mx.witness :: acc
        | None -> acc)
      acc r.art.fast_bounds
  in
  (* The support memo is a hash table; fold order is bucket order, which
     depends on insertion history.  Which cached witness settles a
     feasibility probe picks the [feas_point] that seeds descendant
     probes, so enumerate in canonical-direction-index order to keep the
     candidate sequence a pure function of the cut list (IND001). *)
  Hashtbl.fold (fun idx pair acc -> (idx, pair) :: acc) r.art.support []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.fold_left
       (fun acc (_, ((mn : extreme), (mx : extreme))) ->
         mn.witness :: mx.witness :: acc)
       acc

(* Every ancestor artifact [probe] finds along the cut chain (nearest
   first), each paired with the halfspaces a witness from that ancestor
   must satisfy to still be a point of [r]. *)
let ancestor_candidates r ~probe =
  let rec go node cuts acc =
    let acc =
      match probe node with
      | Some artifact -> (artifact, cuts) :: acc
      | None -> acc
    in
    match (node.parent, node.cuts) with
    | Some p, newest :: _ -> go p (newest :: cuts) acc
    | _ -> List.rev acc
  in
  go r [] []

let survives cuts point = List.for_all (fun h -> Halfspace.satisfies h point) cuts

let is_empty r =
  match r.emptiness with
  | Some verdict -> verdict
  | None ->
    if r.dim = 2 then begin
      let verdict = d2_range r = None in
      r.emptiness <- Some verdict;
      verdict
    end
    else
      let cached_point =
        if not (Atomic.get incremental) then None
        else
          (* Any ancestor point surviving the interleaving cuts is a point
             of [r]: feasibility settled by dot products alone. *)
          ancestor_candidates r ~probe:(fun a ->
              match known_points a with [] -> None | ps -> Some ps)
          |> List.find_map (fun (points, cuts) ->
                 List.find_opt (survives cuts) points)
      in
      (match cached_point with
      | Some p ->
        Counter.incr c_cache_hits;
        r.art.feas_point <- Some p;
        r.emptiness <- Some false;
        false
      | None -> (
        let ctx = new_ctx () in
        match frozen_via ctx r with
        | Empty ->
          r.emptiness <- Some true;
          true
        | Tableau h ->
          r.emptiness <- Some false;
          if r.art.feas_point = None then r.art.feas_point <- Some (Lp.Live.point h);
          false
        | Fallback -> (
          match solve_cold r (Vec.make r.dim 0.) `Minimize with
          | Lp.Optimal _ -> false
          | Lp.Infeasible -> true
          | Lp.Unbounded -> assert false
          | Lp.Failed _ ->
            (* The solver could not reach a verdict, so the region's
               feasibility is unknown.  Report it as unusable (empty) —
               callers discard an empty posterior and keep their last
               sound region, which preserves no-false-negatives — but do
               NOT cache the verdict: a later query may succeed and must
               not inherit a fabricated emptiness. *)
            true)))

let contains ?tol r v =
  Vec.dim v = r.dim
  && Vec.for_all (fun x -> Floatx.geq ?tol x 0.) v
  && Floatx.approx_equal ?tol (Vec.sum v) 1.
  && List.for_all (fun h -> Halfspace.satisfies ?tol h v) r.cuts

let require_nonempty name r =
  if is_empty r then invalid_arg (name ^ ": empty region")

(* --- Canonical extremes ------------------------------------------------ *)

(* One side of an extreme pair, by the legacy cold solver.  Only reached
   below a [Fallback] replay. *)
let cold_side r dir side =
  match side with
  | `Minimize -> (
    match solve_cold r (Vec.neg dir) `Maximize with
    | Lp.Optimal { objective = o; point } -> { value = -.o; witness = point }
    | Lp.Failed err -> raise (Solver_error err)
    | _ -> assert false)
  | `Maximize -> (
    match solve_cold r dir `Maximize with
    | Lp.Optimal { objective = o; point } -> { value = o; witness = point }
    | Lp.Failed err -> raise (Solver_error err)
    | _ -> assert false)

(* The (min, max) extreme pair of [dir] over [r], computed fresh at this
   node: fork the frozen tableau and re-optimize both senses on the fork
   (low side first).  [adopt_lo] / [adopt_hi] carry a parent-pair side
   whose witness survived this node's cut — its value is still exact (the
   witness attains it and the region only shrank), so that side is reused
   verbatim and only the broken side pays pivots.  Which sides are
   adopted is itself a pure function of the cut list, so the fork's pivot
   sequence — and every produced float — is canonical. *)
let fresh_pair ctx r dir ~adopt_lo ~adopt_hi =
  match frozen_via ctx r with
  | Empty -> invalid_arg "Polytope: extreme of empty region"
  | Fallback ->
    let lo = match adopt_lo with Some e -> e | None -> cold_side r dir `Minimize in
    let hi = match adopt_hi with Some e -> e | None -> cold_side r dir `Maximize in
    (lo, hi)
  | Tableau fh ->
    let fork = lazy (Lp.Live.copy fh) in
    let side adopt sense =
      match adopt with
      | Some e -> e
      | None -> (
        match Lp.Live.optimize (Lazy.force fork) ~objective:dir sense with
        | Lp.Optimal { objective; point } -> { value = objective; witness = point }
        | Lp.Failed _ ->
          (* Deterministic failure (budget, numerics): same fallback in
             both engine modes. *)
          cold_side r dir sense
        | Lp.Infeasible | Lp.Unbounded -> assert false)
    in
    let lo = side adopt_lo `Minimize in
    let hi = side adopt_hi `Maximize in
    (lo, hi)

(* The canonical extreme pair of [dir] over [r]: adopt the parent's pair
   where its witnesses survive [r]'s cut, fork-and-pivot the rest.  The
   recursion bottoms out at the root (or, in incremental mode, at the
   nearest ancestor with a memoized pair).  Memo writes go to the queried
   node only — ancestors are read, never written, preserving the
   trial-local ownership discipline the parallel bench relies on. *)
let canonical_pair ctx r dir ~get ~set =
  let rec lookup node =
    match (if Atomic.get incremental then get node else None) with
    | Some pair ->
      Counter.incr c_cache_hits;
      pair
    | None -> (
      match node.parent with
      | Some p ->
        let ((plo, phi) as parent_pair) = lookup p in
        let cut = List.hd node.cuts in
        let lo_ok = Halfspace.satisfies cut plo.witness in
        let hi_ok = Halfspace.satisfies cut phi.witness in
        if lo_ok && hi_ok then begin
          if Atomic.get incremental then Counter.incr c_cache_hits;
          parent_pair
        end
        else
          fresh_pair ctx node dir
            ~adopt_lo:(if lo_ok then Some plo else None)
            ~adopt_hi:(if hi_ok then Some phi else None)
      | None -> fresh_pair ctx node dir ~adopt_lo:None ~adopt_hi:None)
  in
  let pair = lookup r in
  if Atomic.get incremental then set r pair;
  pair

let ensure_fast_bounds r =
  if Array.length r.art.fast_bounds = 0 then
    r.art.fast_bounds <- Array.make r.dim None

let axis_pair ctx r i =
  canonical_pair ctx r (Vec.basis r.dim i)
    ~get:(fun a ->
      if Array.length a.art.fast_bounds = 0 then None else a.art.fast_bounds.(i))
    ~set:(fun a pair ->
      ensure_fast_bounds a;
      a.art.fast_bounds.(i) <- Some pair)

(* --- Coordinate profile ------------------------------------------------ *)

(* d = 2: both endpoints of the interval are the region's complete vertex
   set; the witness list keeps the legacy layout
   [p_lo(d-1); p_hi(d-1); ...; p_lo(0); p_hi(0)]. *)
let d2_profile r =
  let lo, hi = d2_range_exn r in
  let pt_lo = d2_point lo and pt_hi = d2_point hi in
  let bounds = [| (lo, hi); (1. -. hi, 1. -. lo) |] in
  (* Coordinate 1 is minimized at [a = hi] and maximized at [a = lo]. *)
  let witnesses = [ pt_hi; pt_lo; pt_lo; pt_hi ] in
  (bounds, witnesses)

let compute_profile ctx r =
  require_nonempty "Polytope.coordinate_bounds" r;
  if r.dim = 2 then d2_profile r
  else begin
    let witnesses = ref [] in
    let bounds =
      Array.init r.dim (fun i ->
          let lo, hi = axis_pair ctx r i in
          witnesses := lo.witness :: hi.witness :: !witnesses;
          (lo.value, hi.value))
    in
    (bounds, !witnesses)
  end

let coordinate_profile r =
  match r.art.profile with
  | Some p when Atomic.get incremental ->
    Counter.incr c_cache_hits;
    p
  | _ ->
    let p = compute_profile (new_ctx ()) r in
    if Atomic.get incremental then r.art.profile <- Some p;
    p

let coordinate_bounds r = fst (coordinate_profile r)

(* --- Complete vertex enumeration (small dimensions) -------------------- *)

(* d = 3: the region is a polygon on the plane x + y + z = 1.  Clip the
   simplex triangle (e_0, e_1, e_2) by every cut, oldest to newest, with
   Sutherland–Hodgman.  Pure float arithmetic over the cut list — no LP,
   no cache, no RNG — so the vertex list is a deterministic function of
   the cuts, identical in incremental and cold mode.  Returns [] when the
   clipping degenerates away (the region may still be nonempty within
   solver tolerance; callers must fall back to LP-grade queries). *)
let d3_polygon r =
  let dim = r.dim in
  let clip poly h =
    match poly with
    | [] -> []
    | first :: _ ->
      let crossing p q sp sq =
        let t = sp /. (sp -. sq) in
        Vec.init dim (fun i ->
            Vec.get p i +. (t *. (Vec.get q i -. Vec.get p i)))
      in
      (* Emit, per directed edge (p, q): p when inside, plus the boundary
         crossing when the edge straddles it. *)
      let edge p q =
        let sp = Halfspace.slack h p and sq = Halfspace.slack h q in
        if sp >= 0. then
          if sq >= 0. then [ p ] else [ p; crossing p q sp sq ]
        else if sq >= 0. then [ crossing p q sp sq ]
        else []
      in
      let rec go = function
        | [] -> []
        | [ p ] -> edge p first
        | p :: (q :: _ as rest) -> edge p q @ go rest
      in
      go poly
  in
  List.fold_left clip
    [ Vec.basis dim 0; Vec.basis dim 1; Vec.basis dim 2 ]
    (List.rev r.cuts)

let complete_vertices r =
  if r.dim = 2 then Some (snd (coordinate_profile r))
  else if r.dim = 3 then
    match d3_polygon r with [] -> None | vs -> Some vs
  else None

(* --- Width / diameter folds -------------------------------------------- *)

(* Skip margin for hint-based pruning of max-fold directions.  A hint is
   an ancestor's cached float, and the skipped direction's canonical
   float both carry LP round-off (~1e-9 at worst on the unit simplex);
   skipping only when the hint trails the running maximum by more than
   this margin guarantees the skipped float could not have changed the
   fold, keeping the returned value identical to the skip-free fold.
   Directions within the margin — ties included — are computed. *)
let skip_margin = 1e-6

(* An upper bound on coordinate [i]'s range over [r], from the nearest
   ancestor (or [r] itself) that ever solved it: regions only shrink, so
   an ancestor's range bounds every descendant's — no witness revalidation
   needed.  [None] when nothing in the chain has touched coordinate [i]. *)
let rec range_hint r i =
  let here =
    if Array.length r.art.fast_bounds > 0 && r.art.fast_bounds.(i) <> None then
      match r.art.fast_bounds.(i) with
      | Some (mn, mx) -> Some (mx.value -. mn.value)
      | None -> None
    else
      match r.art.profile with
      | Some (bounds, _) ->
        let lo, hi = bounds.(i) in
        Some (hi -. lo)
      | None -> None
  in
  match here with
  | Some _ as s -> s
  | None -> (match r.parent with Some p -> range_hint p i | None -> None)

(* Process directions in descending order of their inherited upper bound,
   so the true maximum is met early and every direction whose bound cannot
   beat the running maximum is skipped without touching a tableau.  Exact
   by the margin argument above; [None] hints sort first (they must be
   computed). *)
let by_descending_hint hints =
  let arr = Array.mapi (fun i h -> (i, h)) hints in
  Array.sort
    (fun (i, a) (j, b) ->
      match (a, b) with
      | None, None -> compare i j
      | None, Some _ -> -1
      | Some _, None -> 1
      | Some x, Some y ->
        let c = Float.compare y x in
        if c <> 0 then c else compare i j)
    arr;
  arr

(* Break out of a max-fold once the caller has seen enough. *)
exception Stopped

let width ?stop_when r =
  require_nonempty "Polytope.coordinate_bounds" r;
  if r.dim = 2 then begin
    let lo, hi = d2_range_exn r in
    (* Both coordinate ranges, folded like the generic path folds the
       profile bounds, so the floats agree with [coordinate_bounds]. *)
    Float.max (Float.max 0. (hi -. lo)) ((1. -. lo) -. (1. -. hi))
  end
  else
    let ctx = new_ctx () in
    if not (Atomic.get incremental) then begin
      let acc = ref 0. in
      for i = 0 to r.dim - 1 do
        let lo, hi = axis_pair ctx r i in
        acc := Float.max !acc (hi.value -. lo.value)
      done;
      !acc
    end
    else begin
      let order = by_descending_hint (Array.init r.dim (range_hint r)) in
      let acc = ref 0. in
      (try
         Array.iter
           (fun (i, hint) ->
             (match hint with
             | Some h when h +. skip_margin <= !acc -> Counter.incr c_cache_hits
             | _ ->
               let lo, hi = axis_pair ctx r i in
               acc := Float.max !acc (hi.value -. lo.value));
             match stop_when with
             | Some f when f !acc -> raise Stopped
             | _ -> ())
           order
       with Stopped -> ());
      !acc
    end

(* Support extremes along an arbitrary direction, uncached: a fresh fork
   of the frozen tableau per call (d = 2: the interval endpoints). *)
let support_pair ctx r dir =
  if r.dim = 2 then begin
    let lo, hi = d2_range_exn r in
    let pt_lo = d2_point lo and pt_hi = d2_point hi in
    let v_lo = Vec.dot dir pt_lo and v_hi = Vec.dot dir pt_hi in
    if v_lo <= v_hi then
      ({ value = v_lo; witness = pt_lo }, { value = v_hi; witness = pt_hi })
    else ({ value = v_hi; witness = pt_hi }, { value = v_lo; witness = pt_lo })
  end
  else fresh_pair ctx r dir ~adopt_lo:None ~adopt_hi:None

let support_width r dir =
  require_nonempty "Polytope.support_width" r;
  let lo, hi = support_pair (new_ctx ()) r dir in
  hi.value -. lo.value

let axis_pair_directions d =
  let dirs = ref [] in
  for i = 0 to d - 1 do
    for j = i + 1 to d - 1 do
      let dir = Vec.make d 0. in
      Vec.set dir i 1.;
      Vec.set dir j (-1.);
      dirs := dir :: !dirs
    done
  done;
  !dirs

(* Support extremes along canonical direction [idx] (the position in
   [axes @ axis_pair_directions dim]), cached per polytope and adopted
   through cuts like the coordinate bounds. *)
let fast_support_extremes ctx r idx dir =
  canonical_pair ctx r dir
    ~get:(fun a -> Hashtbl.find_opt a.art.support idx)
    ~set:(fun a pair -> Hashtbl.replace a.art.support idx pair)

(* [range_hint]'s analogue for canonical support directions; for axis
   directions the coordinate caches hint too (an axis support width IS
   that coordinate's range). *)
let rec support_hint r idx =
  match Hashtbl.find_opt r.art.support idx with
  | Some ((mn : extreme), (mx : extreme)) -> Some (mx.value -. mn.value)
  | None -> (match r.parent with Some p -> support_hint p idx | None -> None)

let diameter ?(extra_directions = [||]) ?stop_when r =
  require_nonempty "Polytope.diameter" r;
  let ctx = new_ctx () in
  let axes = List.init r.dim (fun i -> Vec.basis r.dim i) in
  let canonical = Array.of_list (axes @ axis_pair_directions r.dim) in
  let extent_of support dir = support /. Float.max (Vec.norm2 dir) 1e-12 in
  let acc = ref 0. in
  (try
     if r.dim = 2 || not (Atomic.get incremental) then
       Array.iter
         (fun dir ->
           let lo, hi = support_pair ctx r dir in
           acc := Float.max !acc (extent_of (hi.value -. lo.value) dir))
         canonical
     else begin
       let hints =
         Array.mapi
           (fun idx dir ->
             let h =
               match support_hint r idx with
               | Some _ as s -> s
               | None -> if idx < r.dim then range_hint r idx else None
             in
             Option.map (fun h -> extent_of h dir) h)
           canonical
       in
       Array.iter
         (fun (idx, hint) ->
           (match hint with
           | Some h when h +. skip_margin <= !acc -> Counter.incr c_cache_hits
           | _ ->
             let dir = canonical.(idx) in
             let lo, hi = fast_support_extremes ctx r idx dir in
             acc := Float.max !acc (extent_of (hi.value -. lo.value) dir));
           match stop_when with
           | Some f when f !acc -> raise Stopped
           | _ -> ())
         (by_descending_hint hints)
     end;
     Array.iter
       (fun dir ->
         let lo, hi = support_pair ctx r dir in
         acc := Float.max !acc (extent_of (hi.value -. lo.value) dir))
       extra_directions
   with Stopped -> ());
  !acc

(* --- Representative points --------------------------------------------- *)

let center_estimate r =
  require_nonempty "Polytope.center_estimate" r;
  (* Built from the canonical profile: the 2d extreme vertices, summed in
     the historical order (max then min per coordinate), so the estimate
     is a pure function of the cut list while paying its pivots only once
     per polytope. *)
  let _, witnesses = coordinate_profile r in
  (* witnesses = [p_lo(d-1); p_hi(d-1); ...; p_lo(0); p_hi(0)] *)
  let arr = Array.of_list witnesses in
  let acc = Vec.make r.dim 0. in
  let count = ref 0 in
  for i = 0 to r.dim - 1 do
    let base = 2 * (r.dim - 1 - i) in
    let p_lo = arr.(base) and p_hi = arr.(base + 1) in
    Vec.add_ip acc p_hi;
    incr count;
    Vec.add_ip acc p_lo;
    incr count
  done;
  Vec.map (fun x -> x /. float_of_int !count) acc

(* --- Optimization over the region -------------------------------------- *)

let maximize r c =
  if Vec.dim c <> r.dim then invalid_arg "Polytope.maximize: bad objective";
  if is_empty r then None
  else if r.dim = 2 then begin
    let lo, hi = d2_range_exn r in
    let pt_lo = d2_point lo and pt_hi = d2_point hi in
    let v_lo = Vec.dot c pt_lo and v_hi = Vec.dot c pt_hi in
    if v_hi >= v_lo then Some (v_hi, pt_hi) else Some (v_lo, pt_lo)
  end
  else
    let ctx = new_ctx () in
    match frozen_via ctx r with
    | Empty -> None
    | Tableau fh -> (
      let fork = Lp.Live.copy fh in
      match Lp.Live.optimize fork ~objective:c `Maximize with
      | Lp.Optimal { objective; point } ->
        if r.art.feas_point = None then r.art.feas_point <- Some point;
        Some (objective, point)
      | Lp.Failed _ -> (
        match solve_cold r c `Maximize with
        | Lp.Optimal { objective; point } -> Some (objective, point)
        | Lp.Infeasible -> None
        | Lp.Unbounded -> assert false
        | Lp.Failed e -> raise (Solver_error e))
      | Lp.Infeasible | Lp.Unbounded -> assert false)
    | Fallback -> (
      match solve_cold r c `Maximize with
      | Lp.Optimal { objective; point } -> Some (objective, point)
      | Lp.Infeasible -> None
      | Lp.Unbounded ->
        (* Impossible over the compact simplex; flag loudly if the LP ever
           reports it. *)
        assert false
      | Lp.Failed e -> raise (Solver_error e))

let minimize r c =
  match maximize r (Vec.neg c) with
  | Some (value, point) -> Some (-.value, point)
  | None -> None

(* How far can we move from [x] along [w] (with sum w_i = 0) before leaving
   the region?  Clips against v >= 0 and each cut; returns (t_min, t_max). *)
let line_clip r x w =
  let t_lo = ref neg_infinity and t_hi = ref infinity in
  let tighten coeff bound =
    (* constraint: coeff * t >= bound *)
    if Float.abs coeff < 1e-14 then begin
      (* Direction parallel to the constraint: if violated we produce an
         empty interval. *)
      if bound > 1e-12 then begin
        t_lo := infinity;
        t_hi := neg_infinity
      end
    end
    else if coeff > 0. then t_lo := Float.max !t_lo (bound /. coeff)
    else t_hi := Float.min !t_hi (bound /. coeff)
  in
  (* v_i = x_i + t w_i >= 0  <=>  w_i * t >= -x_i *)
  for i = 0 to r.dim - 1 do
    tighten (Vec.get w i) (-.Vec.get x i)
  done;
  List.iter
    (fun (h : Halfspace.t) ->
      (* normal.(x + t w) >= offset  <=>  (normal.w) t >= offset - normal.x *)
      let coeff = Vec.dot h.normal w in
      tighten coeff (-.Halfspace.slack h x))
    r.cuts;
  (!t_lo, !t_hi)

let random_point r rng ~steps =
  require_nonempty "Polytope.random_point" r;
  (* [center_estimate] returns a fresh vector, so the walk can step it in
     place ([axpy_ip] computes the same bits as [axpy]). *)
  let x = center_estimate r in
  for _ = 1 to steps do
    (* Random direction on the simplex hyperplane: gaussian, centered. *)
    let raw = Vec.init r.dim (fun _ -> Rng.gaussian rng) in
    let mean = Vec.sum raw /. float_of_int r.dim in
    let w = Vec.map (fun v -> v -. mean) raw in
    if Vec.norm2 w > 1e-9 then begin
      let t_lo, t_hi = line_clip r x w in
      if t_lo < t_hi && Float.is_finite t_lo && Float.is_finite t_hi then begin
        let t = Rng.in_range rng t_lo t_hi in
        Vec.axpy_ip t w x
      end
    end
  done;
  x
