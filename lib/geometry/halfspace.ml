module Vec = Indq_linalg.Vec
module Lp = Indq_lp.Lp

type t = { normal : Vec.t; offset : float }

let ge normal offset =
  if Vec.dim normal = 0 then invalid_arg "Halfspace.ge: empty normal";
  { normal = Vec.copy normal; offset }

let le normal offset = ge (Vec.neg normal) (-.offset)

let dim h = Vec.dim h.normal

let of_preference ?(delta = 0.) ~winner ~loser () =
  if delta < 0. then invalid_arg "Halfspace.of_preference: negative delta";
  let normal = Vec.sub (Vec.scale (1. +. delta) winner) loser in
  ge normal 0.

let slack h x = Vec.dot h.normal x -. h.offset

let satisfies ?tol h x = Indq_util.Floatx.geq ?tol (slack h x) 0.

let to_lp_constr h = Lp.constr h.normal Lp.Ge h.offset

let pp ppf h =
  Format.fprintf ppf "%a . x >= %.6g" Vec.pp h.normal h.offset
