(** The feasible utility region [R_j]: a convex subset of the standard
    simplex [{ u in R^d : u >= 0, sum u_i = 1 }] cut by the preference
    halfspaces accumulated so far.

    Every question asked of the user adds up to [s - 1] halfspaces; the MinR
    and MinD heuristics rank candidate question sets by the expected
    post-answer width / diameter of this region (Algorithm 2), and Lemma 2
    prunes candidate tuples by checking emptiness of a cut of this region.
    All of those reduce to small LPs solved by {!Indq_lp.Lp}.

    {b Canonical dual-simplex engine.}  Every LP-derived value here is a
    {i pure function of the cut list} (plus static query parameters).
    Each region owns a canonical {i frozen} tableau: the {!Indq_lp.Lp.Live}
    state after replaying its cuts oldest-to-newest through one dual-simplex
    [add_cut] per cut, always under the zero objective.  Value queries fork
    that tableau and re-optimize on the fork — one parent setup reused
    across every candidate child and every per-candidate objective (the
    Lemma 2 batch) — so the pivot sequence, and hence every float, depends
    only on (cuts, query), never on which queries ran before.  Per-direction
    extreme pairs additionally {i adopt} the parent's pair wherever its
    witness vertices survive the new cut (a dot product per witness): the
    witness still attains the optimum over the shrunken region, so the value
    is exact and costs zero pivots.  At [d = 2] the region is an interval of
    the simplex line and everything is answered analytically, without a
    tableau at all.

    Incremental mode (the default) memoizes the frozen tableau, extreme
    pairs, profiles and verdicts per region and skips fold directions whose
    inherited upper-bound hints cannot affect the result; reuse shows up in
    ["poly.cache_hits"] and dual activity in ["lp.dual_reopt"] /
    ["lp.dual_pivots"].  {!set_incremental}[ false] (used by tests and
    [bench -cold]) turns every cache off: each query then replays the same
    canonical construction from scratch and lands on byte-identical
    results. *)

type t

exception Solver_error of Indq_lp.Lp.error
(** The LP solver returned {!Indq_lp.Lp.Failed} where a value-grade answer
    was required (an extreme, a profile, a width or diameter).  The
    region's geometry is {i unknown} — never assume empty or feasible.
    {!is_empty} absorbs solver failures itself (reporting the region
    unusable without caching a verdict) and never raises this. *)

val simplex : int -> t
(** [simplex d] is the initial region [R_0] for [d] attributes.
    Raises [Invalid_argument] if [d < 1]. *)

val set_incremental : bool -> unit
(** Globally enable / disable the per-region caches and hint-based fold
    skipping (default: enabled).  Used by equivalence tests and
    [bench -cold]; both settings produce byte-identical results by the
    canonical-replay construction above. *)

val incremental_enabled : unit -> bool

val dim : t -> int

val halfspaces : t -> Halfspace.t list
(** The accumulated cuts, most recent first (without the simplex itself). *)

val cut : t -> Halfspace.t -> t
(** [cut r h] is the region [r ∩ h].  O(1); feasibility is evaluated
    lazily.  The child extends the parent's frozen tableau by one
    dual-simplex row and adopts its surviving cached artifacts (see the
    module preamble). *)

val cut_many : t -> Halfspace.t list -> t

val is_empty : t -> bool
(** Feasibility check: the dual-simplex replay verdict (exact — the dual
    ratio test certifies infeasibility), the analytic interval at [d = 2],
    or a surviving cached ancestor point.  Cached per region.  When the
    solver fails ({!Indq_lp.Lp.Failed}), returns [true] — the region is
    unusable — but caches nothing, so a later query may still reach a real
    verdict. *)

val maximize : t -> Indq_linalg.Vec.t -> (float * Indq_linalg.Vec.t) option
(** [maximize r c] is [Some (value, argmax)] of [max c . v] over the region,
    or [None] when the region is empty.  The maximum always exists because
    the region is compact. *)

val minimize : t -> Indq_linalg.Vec.t -> (float * Indq_linalg.Vec.t) option

val contains : ?tol:float -> t -> Indq_linalg.Vec.t -> bool
(** Membership: on the simplex and inside every cut. *)

val coordinate_bounds : t -> (float * float) array
(** [(lo_i, hi_i)] per coordinate.  Raises [Invalid_argument] on an empty
    region. *)

val coordinate_profile : t -> (float * float) array * Indq_linalg.Vec.t list
(** {!coordinate_bounds} plus the [2d] witness vertices where the extremes
    are attained (each a point of the region).  The witnesses let callers
    disprove "max over the region < 0" claims without further LPs. *)

val complete_vertices : t -> Indq_linalg.Vec.t list option
(** The region's {i complete} vertex set, when one is cheaply available:
    the interval endpoints at [d = 2] (the {!coordinate_profile}
    witnesses), the clipped simplex-triangle polygon at [d = 3]
    (Sutherland–Hodgman over the cut list — deterministic float
    arithmetic, no LP).  [None] at higher dimensions or when the [d = 3]
    clipping degenerates to nothing.  With a complete set, any linear
    extreme over the region is a dot-product fold over the list — Lemma 2
    pruning uses this to answer "max over the region < 0" in {i both}
    directions without LPs.  Requires a nonempty region at [d = 2]. *)

val width : ?stop_when:(float -> bool) -> t -> float
(** Paper's MinR metric: the largest coordinate range
    [max_i (hi_i - lo_i)].  0 for a point; raises on an empty region.

    [stop_when] (incremental engine only) is polled with the running
    maximum after each direction; when it answers [true] the fold stops
    and the partial maximum — a lower bound on the true width — is
    returned.  The predicate must be monotone (once true, true for every
    larger value), which lets callers abort a doomed score without
    affecting any decision the full value would have produced. *)

val support_width : t -> Indq_linalg.Vec.t -> float
(** [support_width r dir] is [max dir.v - min dir.v] over the region —
    the extent along [dir].  Raises on an empty region. *)

val diameter :
  ?extra_directions:Indq_linalg.Vec.t array ->
  ?stop_when:(float -> bool) ->
  t ->
  float
(** Paper's MinD metric.  Estimated as the largest support width over a
    direction set: all coordinate axes, all pairwise axis differences
    [e_i - e_j], plus any [extra_directions].  This is a lower bound on the
    true diameter and exact whenever the diameter is realized along one of
    the probed directions; MinD only uses it to {i rank} candidate question
    sets.  Raises on an empty region.  [stop_when] as in {!width}. *)

val center_estimate : t -> Indq_linalg.Vec.t
(** An interior-ish representative point: the average of the [2d]
    coordinate-extreme vertices.  Raises on an empty region. *)

val random_point : t -> Indq_util.Rng.t -> steps:int -> Indq_linalg.Vec.t
(** Hit-and-run sampling from {!center_estimate}, staying on the simplex
    hyperplane.  More [steps] decorrelates from the center.  Raises on an
    empty region. *)

val to_lp_constraints : t -> Indq_lp.Lp.constr list
(** Simplex equality + cuts, for composing custom LPs over the region. *)
