(** Closed halfspaces [normal . x >= offset] in R^d.

    The interactive algorithms narrow the feasible region of the user's
    utility vector with one halfspace per discarded tuple per round: if the
    user prefers [a] to [b], every consistent utility [v] satisfies
    [(a - b) . v > 0] (Section V), weakened to [((1+delta) a - b) . v >= 0]
    when the user may err on delta-indistinguishable tuples (Section VI-B).
    We store the closure of these constraints; see DESIGN.md for why that is
    sound. *)

type t = private { normal : Indq_linalg.Vec.t; offset : float }

val ge : Indq_linalg.Vec.t -> float -> t
(** [ge normal offset] is the halfspace [normal . x >= offset]. *)

val le : Indq_linalg.Vec.t -> float -> t
(** [le normal offset] is [normal . x <= offset], stored negated. *)

val dim : t -> int

val of_preference :
  ?delta:float ->
  winner:Indq_linalg.Vec.t ->
  loser:Indq_linalg.Vec.t ->
  unit ->
  t
(** The hyperplane constraint learned from "user prefers [winner] over
    [loser]": [((1+delta) winner - loser) . v >= 0].  [delta] defaults to 0
    (the error-free update rule). *)

val satisfies : ?tol:float -> t -> Indq_linalg.Vec.t -> bool
(** Membership in the closed halfspace, within tolerance. *)

val slack : t -> Indq_linalg.Vec.t -> float
(** [slack h x] is [normal . x - offset]; non-negative iff [x] inside. *)

val to_lp_constr : t -> Indq_lp.Lp.constr
(** The same constraint in LP form. *)

val pp : Format.formatter -> t -> unit
