(** Deterministic log-bucketed distributions.

    A histogram records a stream of non-negative observations into
    logarithmic buckets — four sub-buckets per power of two, relative
    width 2^0.25 ≈ 1.19 — together with the exact observation count and
    exact float sum.  Bucket boundaries are computed with
    [frexp]/[ldexp] only (never [log] or [**]), so bucketing is
    bit-identical across platforms; bucket counts are integers, so
    merging per-domain snapshots is exact addition and every aggregate —
    including the p50/p90/p99 estimates — is bit-identical for [-j N]
    and [-j 1].

    Like {!Counter}, names are registered process-wide while values live
    in per-domain cells: {!observe} never takes a lock.  Cross-domain
    aggregation goes through {!snapshot}/{!since}/{!merge} (see
    {!Indq_obs.Obs}).

    The histogram catalog (all names appear in DESIGN.md §5):
    - [lp.pivots_per_solve] — simplex pivots per {!Indq_lp.Lp.solve} call
      (count unit; deterministic).
    - [region.halfspaces_per_round] — cuts added per
      [Region.observe] round (count unit; deterministic).
    - [session.round_latency] — wall seconds per interactive
      [Session.answer] round (seconds unit).
    - one seconds-unit histogram per {!Span} name, fed automatically on
      every span completion (e.g. [squeeze_u.ladder]). *)

type t
(** A registered histogram handle (name + slot index + unit). *)

type unit_ = Count | Seconds
(** What an observation measures.  [Seconds] histograms are wall-clock
    valued and therefore nondeterministic; reports gate them behind the
    same [with_times] switch as every other timing output.  [Count]
    histograms observe integer-valued quantities, so even their float
    [sum] merges exactly. *)

type snap = {
  s_unit : unit_;
  count : int;  (** total observations, including non-positive ones *)
  sum : float;  (** exact sum of all observations *)
  zeros : int;  (** observations <= 0 (reported as percentile 0) *)
  buckets : (int * int) list;
      (** (bucket index, occupancy), sorted by index, zero-free *)
}
(** An immutable snapshot of one histogram.  Canonical: two snaps of equal
    distributions are structurally equal. *)

val make : ?unit_:unit_ -> string -> t
(** Register (or look up) the histogram named [name].  [unit_] defaults
    to [Count] and is fixed by the first registration. *)

val observe : t -> float -> unit
(** Record one observation in the calling domain's cell. *)

val name : t -> string

val kind : t -> unit_

val value : t -> snap
(** This domain's current snapshot of [t]. *)

val find : string -> t option

val all : unit -> t list
(** Every registered histogram, sorted by name. *)

val snapshot : unit -> (string * snap) list
(** [(name, value)] for every registered histogram, sorted by name. *)

val since : (string * snap) list -> (string * snap) list
(** Per-histogram delta against an earlier {!snapshot}, dropping
    histograms with no new observations. *)

val merge : (string * snap) list -> unit
(** Fold snapshot deltas into the calling domain's cells — exact integer
    bucket addition, used by {!Indq_obs.Obs.merge} to aggregate worker
    domains deterministically. *)

val combine : snap -> snap -> snap
(** Pure merge of two snaps (exact on counts and buckets; float [sum]
    addition commutes, and is associative whenever the observations are
    integer-valued, as all [Count]-unit histograms are). *)

val empty : unit_ -> snap

val sub_snap : snap -> snap -> snap
(** [sub_snap after before] — pointwise difference; inverse of
    {!combine}. *)

val reset_all : unit -> unit
(** Zero every histogram's cell in the calling domain (tests). *)

val bucket_of : float -> int
(** The bucket index of a positive value: [4*e + k] where
    [frexp v = (m, e)] and [k] is the sub-bucket of the mantissa. *)

val bucket_bounds : int -> float * float
(** Inclusive lower / exclusive upper bound of a bucket index; exact, and
    inverse to {!bucket_of}: [fst (bucket_bounds (bucket_of v)) <= v] and
    [v < snd (bucket_bounds (bucket_of v))] for every positive finite
    [v]. *)

val percentile : snap -> float -> float
(** [percentile s p] for p ∈ [0,1]: the upper bound of the bucket holding
    the observation at nearest rank ⌈p·count⌉ — a deterministic
    over-estimate within one bucket width (< 19 %).  0 on an empty snap
    and whenever the rank falls among the non-positive observations. *)

val p50 : snap -> float

val p90 : snap -> float

val p99 : snap -> float

val mean : snap -> float
(** [sum/count] (0 on an empty snap). *)
