(** Structured event stream for interactive-algorithm runs.

    Algorithms emit one {!event} per notable step: a run starting, a round
    starting with the current candidate-set size, a question shown to the
    user, a pruning stage shrinking the candidates, a region cut applied, a
    run finishing.  Events flow to at most one {b sink}; with no sink
    installed (the default) {!emit_with} does not even build the event —
    one ref read and a branch — so tracing can stay wired into every
    algorithm permanently (the zero-cost-when-disabled contract).

    Two ready-made sinks: {!jsonl_sink} serializes events one JSON object
    per line for offline analysis ({!of_json_line} parses them back), and
    {!console_sink} renders a live per-round table for the CLI.

    Round numbers are 1-based and local to the emitting component: a fresh
    oracle and a single run number rounds identically everywhere. *)

type event =
  | Run_started of {
      algo : string;
      n : int;  (** dataset size *)
      d : int;  (** dimensions *)
      s : int;
      q : int;
      eps : float;
      delta : float;
    }
  | Round_started of { round : int; candidates : int }
      (** [candidates] is the candidate-set size entering the round. *)
  | Question_asked of { round : int; options : int; choice : int }
      (** [choice] is the 0-based index the user picked. *)
  | Prune_stage of { stage : string; before : int; after : int }
      (** One pruning stage ran: ["skyline"], ["box_fast"], ["box_exact"]
          or ["lemma2"]. *)
  | Region_updated of { round : int; halfspaces : int; empty : bool }
      (** A feasible-region cut was applied; [halfspaces] is the region's
          total cut count afterwards. *)
  | Run_finished of { questions : int; output : int; seconds : float }
  | Span_started of { id : int; parent : int; name : string; at : float }
      (** A {!Span.timed} scope opened.  [id] is stable within the
          emitting domain (1-based, monotonic for the domain's lifetime);
          [parent] is the id of the enclosing open span, or 0 at the top
          of the stack — together they reconstruct the span tree (see
          {!Profile}).  [at] is a raw [Timer.wall] reading, serialized at
          full double precision. *)
  | Span_finished of { id : int; at : float }
      (** The matching scope closed. *)

type sink = event -> unit

(** The installed sink is {b domain-local}: each domain delivers its events
    to its own sink (or drops them when none is installed, the default for
    every freshly spawned domain), so parallel workers never interleave
    writes into a sink they did not install. *)

val set_sink : sink -> unit
(** Install the calling domain's sink (replacing any previous one). *)

val clear_sink : unit -> unit
(** Back to the no-op default on the calling domain. *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** [with_sink s f] runs [f ()] with [s] installed on the calling domain,
    restoring the previously installed sink (if any) afterwards, even when
    [f] raises.  This is how callers pass a trace context {i explicitly}
    to a run (see {!Indq_core.Algo.run}) instead of mutating global
    state. *)

val active : unit -> bool

val emit : event -> unit
(** Deliver to the sink, or do nothing when none is installed. *)

val emit_with : (unit -> event) -> unit
(** Like {!emit} but builds the event lazily: the thunk only runs when a
    sink is installed.  Use this on hot paths where constructing the event
    allocates. *)

val escape : string -> string
(** JSON string-content escaping as used by {!to_json} (shared with
    {!Profile}'s exporters). *)

val to_json : event -> string
(** One flat JSON object, no trailing newline. *)

val of_json_line : string -> event option
(** Parse a line produced by {!to_json}; [None] on anything else. *)

val jsonl_sink : out_channel -> sink
(** Append [to_json event ^ "\n"] per event.  The caller owns the channel
    (flush/close after {!clear_sink}). *)

val console_sink : unit -> sink
(** A stateful sink printing a live table to stdout: one row per round
    (candidates entering, options shown, user choice, tuples pruned, region
    cuts), plus summary lines for run start/finish and out-of-round pruning
    stages. *)
