(* Counter *names* are registered process-wide (so reporting is stable
   across domains and independent of module-initialization order), but the
   *values* live in a per-domain cell array reached through [Domain.DLS]:
   a bump is an unsynchronized float store into the owning domain's cell,
   so the hot path never touches a lock and never contends with other
   domains.  Cross-domain aggregation is explicit — see {!Indq_obs.Obs}. *)

type t = { name : string; index : int }

(* Process-wide name registry.  Registration happens at module-init time
   (cold path); the mutex only matters for counters created dynamically
   from worker domains (tests do this). *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let registry_lock = Mutex.create ()

(* Atomic, not ref: the DLS init closure below reads it on whichever
   domain first touches a counter, concurrently with [make] on another —
   an unsynchronized plain ref read would be a data race (ANA001). *)
let registered = Atomic.make 0

(* Per-domain value cells, indexed by [t.index].  Sized for the counters
   registered when the domain first touches a counter; grows on demand if
   more are registered later. *)
let cells_key : float array ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref (Array.make (max 8 (Atomic.get registered)) 0.))

let cells (c : t) =
  let r = (Domain.DLS.get cells_key
           [@indq.alloc_ok
             "DLS slot lookup: allocation-free after the key's first touch \
              on this domain; the init closure only runs once per domain"])
  in
  let arr = !r in
  if c.index < Array.length arr then arr
  else
    (begin
       let grown = Array.make (max (c.index + 1) (2 * Array.length arr)) 0. in
       Array.blit arr 0 grown 0 (Array.length arr);
       r := grown;
       grown
     end
    [@indq.alloc_ok
      "cold growth path: only taken when a counter was registered after \
       this domain first touched the cell array"])
[@@indq.alloc_free
  "hot probe path: a DLS lookup plus an index compare; the growth branch \
   is audited above"]

let make name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some c -> c
      | None ->
        let c = { name; index = Atomic.get registered } in
        Atomic.incr registered;
        Hashtbl.replace registry name c;
        c)

let incr c =
  let arr = cells c in
  arr.(c.index) <- arr.(c.index) +. 1.
[@@indq.alloc_free
  "hot probe: unsynchronized float store into the domain-local cell array"]

let add c x =
  let arr = cells c in
  arr.(c.index) <- arr.(c.index) +. x
[@@indq.alloc_free
  "hot probe: unsynchronized float store into the domain-local cell array"]

let value c = (cells c).(c.index)

let name c = c.name

(* Every registered counter, sorted by name: the order is a pure function
   of the name set, never of module-initialization order, so reports are
   reproducible across builds and link orders. *)
let all () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.fold (fun _ c acc -> c :: acc) registry [])
  |> List.sort (fun a b -> String.compare a.name b.name)

let find name =
  Mutex.protect registry_lock (fun () -> Hashtbl.find_opt registry name)

let get n = match find n with Some c -> value c | None -> 0.

let snapshot () = List.map (fun c -> (c.name, value c)) (all ())

let since before =
  List.map
    (fun (n, v) ->
      let b = match List.assoc_opt n before with Some x -> x | None -> 0. in
      (n, v -. b))
    (snapshot ())

let merge deltas = List.iter (fun (n, v) -> add (make n) v) deltas

let reset_all () = List.iter (fun c -> (cells c).(c.index) <- 0.) (all ())
