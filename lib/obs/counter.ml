type t = { name : string; mutable value : float }

(* Registry of every counter ever created.  Counters are created once at
   module-initialization time in the instrumented modules, so the hot path
   (incr/add on a handle) is a single float store — no hashing. *)
let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let all : t list ref = ref []

let make name =
  match Hashtbl.find_opt registry name with
  | Some c -> c
  | None ->
    let c = { name; value = 0. } in
    Hashtbl.replace registry name c;
    all := c :: !all;
    c

let incr c = c.value <- c.value +. 1.

let add c x = c.value <- c.value +. x

let value c = c.value

let name c = c.name

let get n =
  match Hashtbl.find_opt registry n with Some c -> c.value | None -> 0.

let snapshot () =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.rev_map (fun c -> (c.name, c.value)) !all)

let since before =
  List.map
    (fun (n, v) ->
      let b = match List.assoc_opt n before with Some x -> x | None -> 0. in
      (n, v -. b))
    (snapshot ())

let reset_all () = List.iter (fun c -> c.value <- 0.) !all
