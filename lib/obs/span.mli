(** Nestable named timing scopes over the monotonic-enough wall clock
    ({!Indq_util.Timer.wall}).

    A span accumulates, per name, the number of calls, cumulative wall time
    and {i self} time (cumulative minus time spent in nested spans), so a
    profile like "Squeeze-u spends 80% of its round in the final box filter"
    falls straight out of a run.

    Spans are {b disabled by default}: when disabled, {!timed} costs one
    branch and calls the thunk directly, so instrumentation can stay in the
    hot paths permanently (the zero-cost-when-disabled contract, see
    DESIGN.md "Observability").  Not thread-safe. *)

type stat = { calls : int; cumulative : float; self : float }

val enabled : unit -> bool

val enable : unit -> unit

val disable : unit -> unit

val timed : string -> (unit -> 'a) -> 'a
(** [timed name f] runs [f ()] inside a span named [name] when enabled,
    or just runs [f ()] when disabled.  Re-entrant and exception-safe:
    the span is recorded even when [f] raises. *)

val snapshot : unit -> (string * stat) list
(** Accumulated statistics per span name, sorted by name. *)

val reset : unit -> unit
(** Drop all accumulated statistics (and any dangling frames). *)
