(** Nestable named timing scopes over the monotonic-enough wall clock
    ({!Indq_util.Timer.wall}).

    A span accumulates, per name, the number of calls, cumulative wall time
    and {i self} time (cumulative minus time spent in nested spans), so a
    profile like "Squeeze-u spends 80% of its round in the final box filter"
    falls straight out of a run.

    Spans are {b disabled by default}: when disabled, {!timed} costs one
    domain-local read and a branch and calls the thunk directly, so
    instrumentation can stay in the hot paths permanently (the
    zero-cost-when-disabled contract, see DESIGN.md "Observability").

    All span state — the enabled flag, the accumulated cells and the frame
    stack — is {b domain-local}: each domain profiles its own work without
    synchronization.  A freshly spawned domain starts disabled and empty;
    fold a worker's statistics into another domain explicitly with
    {!merge} (or {!Indq_obs.Obs.merge}). *)

type stat = { calls : int; cumulative : float; self : float }

val enabled : unit -> bool
(** Whether the calling domain records spans. *)

val enable : unit -> unit
(** Start recording on the calling domain. *)

val disable : unit -> unit

val timed : string -> (unit -> 'a) -> 'a
(** [timed name f] runs [f ()] inside a span named [name] when enabled,
    or just runs [f ()] when disabled.  Re-entrant and exception-safe:
    the span is recorded even when [f] raises.

    Every completion additionally (1) feeds the elapsed wall time into a
    [Seconds]-unit {!Histogram} named after the span, so p50/p90/p99 per
    span name fall out of any run, and (2) — when a {!Trace} sink is
    installed — emits a {!Trace.Span_started}/{!Trace.Span_finished} pair
    carrying this frame's stable id and its parent's id, so the JSONL
    stream reconstructs the span tree ([indq profile] consumes this). *)

val snapshot : unit -> (string * stat) list
(** The calling domain's accumulated statistics per span name, sorted by
    name. *)

val merge : (string * stat) list -> unit
(** [merge stats] adds calls/cumulative/self per name into the calling
    domain's cells — used to fold a worker domain's profile into its
    coordinator. *)

val reset : unit -> unit
(** Drop the calling domain's accumulated statistics (and any dangling
    frames). *)
