type t = {
  counters : (string * float) list;
  spans : (string * Span.stat) list;
  hists : (string * Histogram.snap) list;
}

let snapshot () =
  {
    counters = Counter.snapshot ();
    spans = Span.snapshot ();
    hists = Histogram.snapshot ();
  }

let diff after before =
  let counters =
    List.map
      (fun (n, v) ->
        let b =
          match List.assoc_opt n before.counters with Some x -> x | None -> 0.
        in
        (n, v -. b))
      after.counters
  in
  let spans =
    List.filter_map
      (fun (n, (a : Span.stat)) ->
        let s =
          match List.assoc_opt n before.spans with
          | Some (b : Span.stat) ->
            {
              Span.calls = a.Span.calls - b.Span.calls;
              cumulative = a.Span.cumulative -. b.Span.cumulative;
              self = a.Span.self -. b.Span.self;
            }
          | None -> a
        in
        if s.Span.calls = 0 && Float.equal s.Span.cumulative 0. then None
        else Some (n, s))
      after.spans
  in
  let hists =
    List.filter_map
      (fun (n, (a : Histogram.snap)) ->
        let d =
          match List.assoc_opt n before.hists with
          | Some b -> Histogram.sub_snap a b
          | None -> a
        in
        if d.Histogram.count = 0 then None else Some (n, d))
      after.hists
  in
  { counters; spans; hists }

let merge t =
  Counter.merge t.counters;
  Span.merge t.spans;
  Histogram.merge t.hists

let is_empty t =
  List.for_all (fun (_, v) -> Float.equal v 0.) t.counters
  && t.spans = [] && t.hists = []
