module Timer = Indq_util.Timer

type stat = { calls : int; cumulative : float; self : float }

type cell = {
  mutable calls : int;
  mutable cumulative : float;
  mutable self : float;
  hist : Histogram.t;
      (* per-span-name duration distribution, fed on every completion *)
}

type frame = {
  cell_name : string;
  start : float;
  mutable child : float;
  id : int;
  parent : int;
}

(* All span state — the enabled flag, the per-name cells and the frame
   stack — is domain-local: each domain profiles its own work and never
   synchronizes with the others.  Cross-domain aggregation goes through
   {!snapshot}/{!merge} (see Indq_obs.Obs).  [next_id] numbers this
   domain's frames 1, 2, … for the trace stream's span/parent ids; it is
   monotonic for the domain's lifetime (never reset) so ids in one trace
   file stay unique per domain. *)
type state = {
  mutable on : bool;
  cells : (string, cell) Hashtbl.t;
  mutable names : string list;
  mutable stack : frame list;
  mutable next_id : int;
}

let key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        on = false;
        cells = Hashtbl.create 16;
        names = [];
        stack = [];
        next_id = 0;
      })

let state () = Domain.DLS.get key

let enabled () = (state ()).on

let enable () = (state ()).on <- true

let disable () = (state ()).on <- false

let cell st name =
  match Hashtbl.find_opt st.cells name with
  | Some c -> c
  | None ->
    let c =
      {
        calls = 0;
        cumulative = 0.;
        self = 0.;
        hist = Histogram.make ~unit_:Seconds name;
      }
    in
    Hashtbl.replace st.cells name c;
    st.names <- name :: st.names;
    c

let record st fr =
  let stop = Timer.wall () in
  let elapsed = stop -. fr.start in
  (match st.stack with
  | top :: rest when top == fr -> st.stack <- rest
  | _ -> st.stack <- List.filter (fun f -> f != fr) st.stack);
  (match st.stack with
  | parent :: _ -> parent.child <- parent.child +. elapsed
  | [] -> ());
  let c = cell st fr.cell_name in
  c.calls <- c.calls + 1;
  c.cumulative <- c.cumulative +. elapsed;
  c.self <- c.self +. Float.max 0. (elapsed -. fr.child);
  Histogram.observe c.hist elapsed;
  Trace.emit_with (fun () -> Trace.Span_finished { id = fr.id; at = stop })

let timed name f =
  let st = state () in
  if not st.on then f ()
  else begin
    let parent = match st.stack with top :: _ -> top.id | [] -> 0 in
    st.next_id <- st.next_id + 1;
    let id = st.next_id in
    let fr = { cell_name = name; start = Timer.wall (); child = 0.; id; parent } in
    st.stack <- fr :: st.stack;
    Trace.emit_with (fun () ->
        Trace.Span_started { id = fr.id; parent = fr.parent; name; at = fr.start });
    match f () with
    | v ->
      record st fr;
      v
    | exception e ->
      record st fr;
      raise e
  end

let snapshot () =
  let st = state () in
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.rev_map
       (fun n ->
         let c = Hashtbl.find st.cells n in
         (n, { calls = c.calls; cumulative = c.cumulative; self = c.self }
              : string * stat))
       st.names)

let merge stats =
  let st = state () in
  List.iter
    (fun (name, (s : stat)) ->
      let c = cell st name in
      c.calls <- c.calls + s.calls;
      c.cumulative <- c.cumulative +. s.cumulative;
      c.self <- c.self +. s.self)
    stats

let reset () =
  let st = state () in
  Hashtbl.reset st.cells;
  st.names <- [];
  st.stack <- []
