module Timer = Indq_util.Timer

type stat = { calls : int; cumulative : float; self : float }

type cell = {
  mutable calls : int;
  mutable cumulative : float;
  mutable self : float;
}

type frame = { cell_name : string; start : float; mutable child : float }

let on = ref false

let cells : (string, cell) Hashtbl.t = Hashtbl.create 16

let names : string list ref = ref []

let stack : frame list ref = ref []

let enabled () = !on

let enable () = on := true

let disable () = on := false

let cell name =
  match Hashtbl.find_opt cells name with
  | Some c -> c
  | None ->
    let c = { calls = 0; cumulative = 0.; self = 0. } in
    Hashtbl.replace cells name c;
    names := name :: !names;
    c

let record fr =
  let elapsed = Timer.wall () -. fr.start in
  (match !stack with
  | top :: rest when top == fr -> stack := rest
  | _ -> stack := List.filter (fun f -> f != fr) !stack);
  (match !stack with
  | parent :: _ -> parent.child <- parent.child +. elapsed
  | [] -> ());
  let c = cell fr.cell_name in
  c.calls <- c.calls + 1;
  c.cumulative <- c.cumulative +. elapsed;
  c.self <- c.self +. Float.max 0. (elapsed -. fr.child)

let timed name f =
  if not !on then f ()
  else begin
    let fr = { cell_name = name; start = Timer.wall (); child = 0. } in
    stack := fr :: !stack;
    match f () with
    | v ->
      record fr;
      v
    | exception e ->
      record fr;
      raise e
  end

let snapshot () =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.rev_map
       (fun n ->
         let c = Hashtbl.find cells n in
         (n, { calls = c.calls; cumulative = c.cumulative; self = c.self }
              : string * stat))
       !names)

let reset () =
  Hashtbl.reset cells;
  names := [];
  stack := []
