(* Offline trace profiler: replay a stream of {!Trace} events (usually the
   span_started/span_finished lines of a JSONL trace file) into the span
   tree, attribute self time per phase, and export flamegraph.pl
   folded-stack and speedscope JSON renderings.  Pure — no clocks, no
   domain state: the same event list always produces byte-identical
   reports. *)

type node = {
  node_id : int;
  node_name : string;
  n_start : float;  (* seconds since the trace's first span event *)
  n_stop : float;
  n_children : node list;  (* in start order *)
}

type phase = {
  phase_name : string;
  calls : int;
  total : float;  (* Σ (stop - start) over this phase's nodes *)
  self : float;  (* total minus time attributed to child spans *)
}

type t = { roots : node list; phases : phase list; total : float }

(* --- tree reconstruction ------------------------------------------------ *)

type builder = {
  b_id : int;
  b_name : string;
  b_start : float;
  mutable b_stop : float option;
  mutable b_children : builder list;  (* reversed *)
}

let of_events events =
  let by_id : (int, builder) Hashtbl.t = Hashtbl.create 64 in
  let roots = ref [] in
  let t0 = ref Float.infinity in
  let t_max = ref Float.neg_infinity in
  let see at =
    if at < !t0 then t0 := at;
    if at > !t_max then t_max := at
  in
  List.iter
    (fun ev ->
      match (ev : Trace.event) with
      | Trace.Span_started { id; parent; name; at } ->
        see at;
        let b =
          { b_id = id; b_name = name; b_start = at; b_stop = None;
            b_children = [] }
        in
        (match Hashtbl.find_opt by_id parent with
        | Some p -> p.b_children <- b :: p.b_children
        | None -> roots := b :: !roots);
        Hashtbl.replace by_id id b
      | Trace.Span_finished { id; at } -> (
        see at;
        match Hashtbl.find_opt by_id id with
        | Some b -> b.b_stop <- Some at
        | None -> ())
      | _ -> ())
    events;
  let t0 = if Float.is_finite !t0 then !t0 else 0. in
  let t_max = if Float.is_finite !t_max then !t_max else 0. in
  (* Builders are frozen by walking from the roots (never by iterating the
     id table, whose order is not deterministic).  A span with no finish
     event — a truncated trace — is closed at the last timestamp seen. *)
  let rec freeze b =
    let stop = match b.b_stop with Some s -> s | None -> t_max in
    {
      node_id = b.b_id;
      node_name = b.b_name;
      n_start = b.b_start -. t0;
      n_stop = Float.max 0. (stop -. t0);
      (* [b_children] is built reversed, so [rev_map] restores start
         order. *)
      n_children = List.rev_map freeze b.b_children;
    }
  in
  let roots = List.rev_map freeze !roots in
  let node_total n = n.n_stop -. n.n_start in
  let node_self n =
    node_total n
    -. List.fold_left (fun acc c -> acc +. node_total c) 0. n.n_children
  in
  (* Per-phase aggregation: (name, calls, total, self), sorted by name. *)
  let acc : (string, int ref * float ref * float ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let names = ref [] in
  let rec tally n =
    (match Hashtbl.find_opt acc n.node_name with
    | Some (c, tot, slf) ->
      incr c;
      tot := !tot +. node_total n;
      slf := !slf +. node_self n
    | None ->
      Hashtbl.replace acc n.node_name
        (ref 1, ref (node_total n), ref (node_self n));
      names := n.node_name :: !names);
    List.iter tally n.n_children
  in
  List.iter tally roots;
  let phases =
    List.rev_map
      (fun name ->
        let c, tot, slf = Hashtbl.find acc name in
        { phase_name = name; calls = !c; total = !tot; self = !slf })
      !names
    |> List.sort (fun a b -> String.compare a.phase_name b.phase_name)
  in
  let total = List.fold_left (fun s n -> s +. node_total n) 0. roots in
  { roots; phases; total }

let of_lines lines = of_events (List.filter_map Trace.of_json_line lines)

let node_self n =
  n.n_stop -. n.n_start
  -. List.fold_left (fun acc c -> acc +. (c.n_stop -. c.n_start)) 0. n.n_children

(* --- folded stacks (flamegraph.pl) -------------------------------------- *)

(* One line per distinct stack, "a;b;c <weight>", weight = self time in
   integer microseconds, lines sorted lexicographically. *)
let folded t =
  let rows = ref [] in
  let rec go prefix n =
    let path =
      if prefix = "" then n.node_name else prefix ^ ";" ^ n.node_name
    in
    rows := (path, node_self n) :: !rows;
    List.iter (go path) n.n_children
  in
  List.iter (go "") t.roots;
  let sorted =
    List.sort (fun (a, _) (b, _) -> String.compare a b) !rows
  in
  let rec squash = function
    | (p1, s1) :: (p2, s2) :: rest when String.equal p1 p2 ->
      squash ((p1, s1 +. s2) :: rest)
    | row :: rest -> row :: squash rest
    | [] -> []
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (path, self) ->
      let us = int_of_float (Float.round (self *. 1e6)) in
      Buffer.add_string buf (Printf.sprintf "%s %d\n" path us))
    (squash sorted);
  Buffer.contents buf

(* --- speedscope ---------------------------------------------------------- *)

let json_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

(* The "evented" speedscope format: a shared frame table plus a single
   profile of open/close events in timestamp order (the tree walk emits
   them properly nested). *)
let speedscope ?(name = "indq trace") t =
  let frames = ref [] in
  let frame_count = ref 0 in
  let frame_index : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let index_of fname =
    match Hashtbl.find_opt frame_index fname with
    | Some i -> i
    | None ->
      let i = !frame_count in
      incr frame_count;
      Hashtbl.replace frame_index fname i;
      frames := fname :: !frames;
      i
  in
  let events = Buffer.create 256 in
  let first = ref true in
  let emit kind frame at =
    if not !first then Buffer.add_char events ',';
    first := false;
    Buffer.add_string events
      (Printf.sprintf {|{"type":"%s","frame":%d,"at":%s}|} kind frame
         (json_float at))
  in
  let rec go n =
    let i = index_of n.node_name in
    emit "O" i n.n_start;
    List.iter go n.n_children;
    emit "C" i n.n_stop
  in
  List.iter go t.roots;
  let frames_json =
    String.concat ","
      (List.rev_map
         (fun f -> Printf.sprintf {|{"name":"%s"}|} (Trace.escape f))
         !frames)
  in
  (* Not [t.total]: root spans may have gaps between them, and speedscope
     requires endValue >= every event timestamp. *)
  let end_value =
    List.fold_left (fun acc n -> Float.max acc n.n_stop) 0. t.roots
  in
  Printf.sprintf
    {|{"$schema":"https://www.speedscope.app/file-format-schema.json","shared":{"frames":[%s]},"profiles":[{"type":"evented","name":"%s","unit":"seconds","startValue":0,"endValue":%s,"events":[%s]}],"exporter":"indq profile","name":"%s"}|}
    frames_json (Trace.escape name) (json_float end_value)
    (Buffer.contents events) (Trace.escape name)

(* --- phase catalog ------------------------------------------------------- *)

(* [phase] marks a known span/phase name with its one-line description;
   indq-lint collects the names (IND006) and cross-checks them against the
   docs exactly like Counter.make/Span.timed/Histogram.make sites. *)
let phase name ~doc = (name, doc)

let catalog =
  [
    phase "baselines.greedy_regret_set" ~doc:"greedy k-regret seeding pass";
    phase "real_points.lemma2_prune" ~doc:"Lemma 2 utility-bound pruning";
    phase "real_points.observe" ~doc:"feasible-region cut per answer";
    phase "real_points.pick_display" ~doc:"display-set selection per round";
    phase "real_points.skyline" ~doc:"skyline prefilter (RealPoints)";
    phase "session.replay" ~doc:"journal replay on session resume";
    phase "squeeze_u.box_prune" ~doc:"terminal box-pruning pass";
    phase "squeeze_u.ladder" ~doc:"utility-ladder construction";
    phase "squeeze_u.phase1" ~doc:"phase-1 interval shrinking rounds";
    phase "squeeze_u.skyline" ~doc:"skyline prefilter (Squeeze-u)";
    phase "squeeze_u2.box_prune" ~doc:"terminal box-pruning pass (2-d)";
    phase "squeeze_u2.ladder" ~doc:"utility-ladder construction (2-d)";
    phase "squeeze_u2.phase1" ~doc:"phase-1 interval shrinking rounds (2-d)";
    phase "squeeze_u2.skyline" ~doc:"skyline prefilter (Squeeze-u2)";
  ]

let phase_doc name = List.assoc_opt name catalog
