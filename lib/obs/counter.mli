(** Named work counters for the algorithm stack's hot paths.

    Instrumented modules create a handle once at module-initialization time
    ([let c = Counter.make "lp.solves"]) and bump it on the hot path; a bump
    is an unsynchronized float store into the {b owning domain's} cell, so
    counters stay on permanently and parallel domains never contend.

    Counter {i names} are process-wide (a handle is shared by every domain)
    but {i values} are domain-local: each domain accumulates its own work,
    and reads ({!value}, {!snapshot}, {!get}) see only the calling domain's
    cells.  Cross-domain aggregation is explicit — a parallel harness
    captures per-task deltas with {!Indq_obs.Obs.snapshot}/[diff] on the
    worker and folds them into the coordinating domain with
    {!Indq_obs.Obs.merge} (see {!Indq_exec.Pool}), keeping merged totals
    deterministic regardless of scheduling.

    Conventional names used across the reproduction (dotted,
    [subsystem.event]):

    - ["lp.solves"], ["lp.iterations"] — simplex runs and pivots;
    - ["lp.warm_starts"], ["lp.warm_iterations_saved"] — solves that reused
      a cached optimal basis and skipped phase 1, and the phase-1 pivot
      count they avoided;
    - ["poly.cache_hits"] — polytope queries answered from cached
      artifacts (memoized extremes, inherited feasibility witnesses,
      hint-skipped directions) instead of fresh LPs;
    - ["prune.scalar_hits"], ["prune.corner_hits"], ["prune.lp_calls"],
      ["prune.witness_hits"] — the pruning cascade (Section IV-A / Lemma 2);
    - ["prune.store_hits"] — prune decisions settled by the cross-round
      candidate store's cached certificates (floors and non-prunability
      witnesses revalidated by dot products);
    - ["region.halfspaces"] — hyperplane cuts applied to feasible regions;
    - ["oracle.questions"] — rounds asked of the user;
    - ["rtree.nodes_visited"] — R-tree nodes touched by queries. *)

type t
(** A counter handle. *)

val make : string -> t
(** [make name] returns the counter registered under [name], creating it at
    zero on first call.  Handles for the same name are shared (across
    domains too — only the values are per-domain). *)

val incr : t -> unit
(** Add 1 in the calling domain. *)

val add : t -> float -> unit
(** Add an arbitrary (possibly fractional) amount in the calling domain. *)

val value : t -> float
(** The calling domain's accumulated value. *)

val name : t -> string

val all : unit -> t list
(** Every registered counter, sorted by name — a pure function of the name
    set, independent of module-initialization or link order, so reports
    built from it are reproducible across builds. *)

val get : string -> float
(** Current value by name in the calling domain; 0 for names never
    registered. *)

val snapshot : unit -> (string * float) list
(** Every registered counter with the calling domain's value, sorted by
    name. *)

val since : (string * float) list -> (string * float) list
(** [since before] subtracts an earlier {!snapshot} (taken on the same
    domain) from the current one, yielding the work done in between.
    Counters created after [before] was taken are reported in full.  Sorted
    by name; zero deltas are kept so lookups are total. *)

val merge : (string * float) list -> unit
(** [merge deltas] adds each named delta into the calling domain's cells,
    registering unknown names.  Used to fold a worker domain's work into
    its coordinator. *)

val reset_all : unit -> unit
(** Zero every registered counter in the calling domain. *)
