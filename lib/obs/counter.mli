(** Process-wide work counters for the algorithm stack's hot paths.

    Instrumented modules create a handle once at module-initialization time
    ([let c = Counter.make "lp.solves"]) and bump it on the hot path; a bump
    is a single float store, so counters stay on permanently.  Reporting
    code reads the registry through {!snapshot} / {!since}.

    Conventional names used across the reproduction (dotted,
    [subsystem.event]):

    - ["lp.solves"], ["lp.iterations"] — simplex runs and pivots;
    - ["prune.scalar_hits"], ["prune.corner_hits"], ["prune.lp_calls"],
      ["prune.witness_hits"] — the pruning cascade (Section IV-A / Lemma 2);
    - ["region.halfspaces"] — hyperplane cuts applied to feasible regions;
    - ["oracle.questions"] — rounds asked of the user;
    - ["rtree.nodes_visited"] — R-tree nodes touched by queries.

    Counters are process-wide and not thread-safe (the whole reproduction is
    single-threaded). *)

type t
(** A counter handle. *)

val make : string -> t
(** [make name] returns the counter registered under [name], creating it at
    zero on first call.  Handles for the same name are shared. *)

val incr : t -> unit
(** Add 1. *)

val add : t -> float -> unit
(** Add an arbitrary (possibly fractional) amount. *)

val value : t -> float

val name : t -> string

val get : string -> float
(** Current value by name; 0 for names never registered. *)

val snapshot : unit -> (string * float) list
(** Every registered counter with its current value, sorted by name. *)

val since : (string * float) list -> (string * float) list
(** [since before] subtracts an earlier {!snapshot} from the current one,
    yielding the work done in between.  Counters created after [before] was
    taken are reported in full.  Sorted by name; zero deltas are kept so
    lookups are total. *)

val reset_all : unit -> unit
(** Zero every registered counter. *)
