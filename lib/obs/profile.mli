(** Offline profiler over {!Trace} span events.

    {!Span.timed} emits [Span_started]/[Span_finished] events carrying
    stable span ids and parent ids; {!of_events} (or {!of_lines}, for a
    JSONL trace file) replays such a stream into the span tree and
    attributes wall time per phase: for every span name, the number of
    calls, the cumulative {e total} time and the {e self} time (total
    minus time inside child spans).  Self times telescope — summed over
    all phases they equal the total traced wall time — which is what
    makes the attribution trustworthy.

    Two export formats: {!folded} produces flamegraph.pl folded stacks
    (one ["a;b;c <microseconds>"] line per distinct stack) and
    {!speedscope} produces a speedscope.app "evented" JSON document.
    Both are pure functions of the event list, so re-profiling a trace
    file is byte-reproducible.  The [indq profile] subcommand wraps all
    of this. *)

type node = {
  node_id : int;  (** the trace stream's span id *)
  node_name : string;
  n_start : float;  (** seconds since the trace's first span event *)
  n_stop : float;
  n_children : node list;  (** in start order *)
}

type phase = {
  phase_name : string;
  calls : int;
  total : float;  (** Σ (stop − start) over this phase's spans *)
  self : float;  (** total minus time attributed to child spans *)
}

type t = {
  roots : node list;  (** top-level spans, in start order *)
  phases : phase list;  (** per-name attribution, sorted by name *)
  total : float;  (** Σ total over [roots] = Σ self over [phases] *)
}

val of_events : Trace.event list -> t
(** Reconstruct the span tree from span events (other events are
    ignored).  Timestamps are re-based so the first span event is 0.  A
    span with no finish event (truncated trace) is closed at the last
    timestamp seen; a finish with no matching start is dropped. *)

val of_lines : string list -> t
(** {!of_events} over [Trace.of_json_line]-parseable lines; anything
    else (including non-span events) is skipped. *)

val node_self : node -> float
(** One node's self time: its duration minus its children's durations. *)

val folded : t -> string
(** flamegraph.pl folded-stack rendering: per distinct stack one line
    ["root;child;leaf <self-microseconds>"], sorted lexicographically. *)

val speedscope : ?name:string -> t -> string
(** A speedscope "evented" JSON document (open/close event per span, a
    shared frame table, seconds unit).  Load it at speedscope.app or
    with [speedscope <file>]. *)

val phase : string -> doc:string -> string * string
(** [phase name ~doc] declares a known phase name with its one-line
    description.  indq-lint collects literal [Profile.phase] names into
    the IND006 doc cross-check, exactly like [Counter.make] /
    [Span.timed] / [Histogram.make] registration sites. *)

val catalog : (string * string) list
(** Every known span/phase name with its description, sorted by name —
    the reference list behind [indq profile]'s phase table.  See
    DESIGN.md §5. *)

val phase_doc : string -> string option
(** Look a phase name up in {!catalog}. *)
