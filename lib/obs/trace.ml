type event =
  | Run_started of {
      algo : string;
      n : int;
      d : int;
      s : int;
      q : int;
      eps : float;
      delta : float;
    }
  | Round_started of { round : int; candidates : int }
  | Question_asked of { round : int; options : int; choice : int }
  | Prune_stage of { stage : string; before : int; after : int }
  | Region_updated of { round : int; halfspaces : int; empty : bool }
  | Run_finished of { questions : int; output : int; seconds : float }
  | Span_started of { id : int; parent : int; name : string; at : float }
  | Span_finished of { id : int; at : float }

type sink = event -> unit

(* The installed sink is domain-local: a worker domain starts with no sink
   (events cost one domain-local read and a branch), and installing a sink
   on one domain never makes another domain's hot path pay for it. *)
let sink_key : sink option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let sink () = Domain.DLS.get sink_key

let set_sink s = sink () := Some s

let clear_sink () = sink () := None

let active () = !(sink ()) <> None

let with_sink s f =
  let r = sink () in
  let previous = !r in
  r := Some s;
  Fun.protect ~finally:(fun () -> r := previous) f

let emit ev = match !(sink ()) with None -> () | Some s -> s ev

let emit_with f = match !(sink ()) with None -> () | Some s -> s (f ())

(* --- JSONL serialization --- *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '\\' when !i + 1 < n ->
      incr i;
      (match s.[!i] with
      | 'n' -> Buffer.add_char buf '\n'
      | 't' -> Buffer.add_char buf '\t'
      | 'u' when !i + 4 < n ->
        let code = int_of_string ("0x" ^ String.sub s (!i + 1) 4) in
        Buffer.add_char buf (Char.chr (code land 0xff));
        i := !i + 4
      | c -> Buffer.add_char buf c)
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let float_token x = Printf.sprintf "%g" x

(* Span timestamps are raw epoch-scale [Timer.wall] readings; "%g" would
   truncate them to ~100 s precision, so they round-trip at full double
   precision instead. *)
let time_token x = Printf.sprintf "%.17g" x

let to_json = function
  | Run_started { algo; n; d; s; q; eps; delta } ->
    Printf.sprintf
      {|{"type":"run_started","algo":"%s","n":%d,"d":%d,"s":%d,"q":%d,"eps":%s,"delta":%s}|}
      (escape algo) n d s q (float_token eps) (float_token delta)
  | Round_started { round; candidates } ->
    Printf.sprintf {|{"type":"round_started","round":%d,"candidates":%d}|} round
      candidates
  | Question_asked { round; options; choice } ->
    Printf.sprintf
      {|{"type":"question_asked","round":%d,"options":%d,"choice":%d}|} round
      options choice
  | Prune_stage { stage; before; after } ->
    Printf.sprintf {|{"type":"prune_stage","stage":"%s","before":%d,"after":%d}|}
      (escape stage) before after
  | Region_updated { round; halfspaces; empty } ->
    Printf.sprintf
      {|{"type":"region_updated","round":%d,"halfspaces":%d,"empty":%b}|} round
      halfspaces empty
  | Run_finished { questions; output; seconds } ->
    Printf.sprintf
      {|{"type":"run_finished","questions":%d,"output":%d,"seconds":%s}|}
      questions output (float_token seconds)
  | Span_started { id; parent; name; at } ->
    Printf.sprintf
      {|{"type":"span_started","id":%d,"parent":%d,"name":"%s","at":%s}|} id
      parent (escape name) (time_token at)
  | Span_finished { id; at } ->
    Printf.sprintf {|{"type":"span_finished","id":%d,"at":%s}|} id
      (time_token at)

(* Minimal field extraction for the flat one-line objects emitted above; not
   a general JSON parser. *)

let find_sub line pat =
  let n = String.length line and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = pat then Some (i + m)
    else go (i + 1)
  in
  go 0

let string_field line key =
  match find_sub line (Printf.sprintf {|"%s":"|} key) with
  | None -> None
  | Some start ->
    let buf = Buffer.create 16 in
    let n = String.length line in
    let rec go i =
      if i >= n then None
      else
        match line.[i] with
        | '"' -> Some (unescape (Buffer.contents buf))
        | '\\' when i + 1 < n ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf line.[i + 1];
          go (i + 2)
        | c ->
          Buffer.add_char buf c;
          go (i + 1)
    in
    go start

let scalar_field line key =
  match find_sub line (Printf.sprintf {|"%s":|} key) with
  | None -> None
  | Some start ->
    let n = String.length line in
    let stop = ref start in
    while !stop < n && line.[!stop] <> ',' && line.[!stop] <> '}' do
      incr stop
    done;
    Some (String.trim (String.sub line start (!stop - start)))

let int_field line key = Option.bind (scalar_field line key) int_of_string_opt

let float_field line key =
  Option.bind (scalar_field line key) float_of_string_opt

let bool_field line key = Option.bind (scalar_field line key) bool_of_string_opt

let of_json_line line =
  let ( let* ) = Option.bind in
  match string_field line "type" with
  | Some "run_started" ->
    let* algo = string_field line "algo" in
    let* n = int_field line "n" in
    let* d = int_field line "d" in
    let* s = int_field line "s" in
    let* q = int_field line "q" in
    let* eps = float_field line "eps" in
    let* delta = float_field line "delta" in
    Some (Run_started { algo; n; d; s; q; eps; delta })
  | Some "round_started" ->
    let* round = int_field line "round" in
    let* candidates = int_field line "candidates" in
    Some (Round_started { round; candidates })
  | Some "question_asked" ->
    let* round = int_field line "round" in
    let* options = int_field line "options" in
    let* choice = int_field line "choice" in
    Some (Question_asked { round; options; choice })
  | Some "prune_stage" ->
    let* stage = string_field line "stage" in
    let* before = int_field line "before" in
    let* after = int_field line "after" in
    Some (Prune_stage { stage; before; after })
  | Some "region_updated" ->
    let* round = int_field line "round" in
    let* halfspaces = int_field line "halfspaces" in
    let* empty = bool_field line "empty" in
    Some (Region_updated { round; halfspaces; empty })
  | Some "run_finished" ->
    let* questions = int_field line "questions" in
    let* output = int_field line "output" in
    let* seconds = float_field line "seconds" in
    Some (Run_finished { questions; output; seconds })
  | Some "span_started" ->
    let* id = int_field line "id" in
    let* parent = int_field line "parent" in
    let* name = string_field line "name" in
    let* at = float_field line "at" in
    Some (Span_started { id; parent; name; at })
  | Some "span_finished" ->
    let* id = int_field line "id" in
    let* at = float_field line "at" in
    Some (Span_finished { id; at })
  | _ -> None

let jsonl_sink oc ev =
  output_string oc (to_json ev);
  output_char oc '\n'

(* --- live per-round console table --- *)

let console_sink () =
  let header = ref false in
  let pending = ref false in
  let round = ref 0 in
  let candidates = ref (-1) in
  let options = ref 0 in
  let choice = ref (-1) in
  let pruned = ref 0 in
  let cuts = ref (-1) in
  let opt_int v = if v >= 0 then string_of_int v else "-" in
  let ensure_header () =
    if not !header then begin
      Printf.printf "%6s %11s %8s %7s %7s %5s\n" "round" "candidates" "options"
        "choice" "pruned" "cuts";
      header := true
    end
  in
  let flush () =
    if !pending then begin
      ensure_header ();
      Printf.printf "%6d %11s %8d %7s %7d %5s\n%!" !round (opt_int !candidates)
        !options
        (if !choice >= 0 then string_of_int (!choice + 1) else "-")
        !pruned (opt_int !cuts);
      pending := false;
      candidates := -1;
      options := 0;
      choice := -1;
      pruned := 0;
      cuts := -1
    end
  in
  fun ev ->
    match ev with
    | Run_started r ->
      Printf.printf "# %s: n=%d d=%d s=%d q=%d eps=%g delta=%g\n%!" r.algo r.n
        r.d r.s r.q r.eps r.delta
    | Round_started r ->
      flush ();
      pending := true;
      round := r.round;
      candidates := r.candidates
    | Question_asked qa ->
      if not !pending then begin
        pending := true;
        round := qa.round
      end;
      options := qa.options;
      choice := qa.choice
    | Prune_stage p ->
      if !pending then pruned := !pruned + (p.before - p.after)
      else Printf.printf "# prune[%s]: %d -> %d\n%!" p.stage p.before p.after
    | Region_updated r -> if !pending then cuts := r.halfspaces
    | Run_finished f ->
      flush ();
      Printf.printf "# finished: %d questions, %d tuples, %.3fs\n%!" f.questions
        f.output f.seconds
    (* Span events are for `indq profile`, not the live table. *)
    | Span_started _ | Span_finished _ -> ()
