(** Whole-stack observability snapshots, for moving work accounting between
    domains.

    {!Counter} values and {!Span} statistics are domain-local; a parallel
    harness that wants the coordinating domain's totals to look exactly as
    if every task had run there brackets each task with {!snapshot} /
    {!diff} on the worker and folds the delta back with {!merge} on the
    coordinator:

    {[
      (* on the worker domain, around one task *)
      let before = Obs.snapshot () in
      let result = task () in
      let delta = Obs.diff (Obs.snapshot ()) before in
      (result, delta)

      (* on the coordinating domain, after joining, in task order *)
      List.iter (fun (_, delta) -> Obs.merge delta) joined
    ]}

    Merging in a fixed (task-index) order makes the folded totals
    deterministic regardless of how tasks were scheduled across domains —
    the determinism invariant {!Indq_exec.Pool.parallel_map} relies on.
    {!Trace} events are not part of a snapshot: they stream to the emitting
    domain's own sink (or nowhere). *)

type t = {
  counters : (string * float) list;
      (** per-counter values ({!Counter.snapshot} order: sorted by name) *)
  spans : (string * Span.stat) list;
      (** per-span accumulated statistics, sorted by name *)
  hists : (string * Histogram.snap) list;
      (** per-histogram snapshots, sorted by name *)
}

val snapshot : unit -> t
(** The calling domain's current counter values, span statistics and
    histogram snapshots. *)

val diff : t -> t -> t
(** [diff after before] subtracts [before] from [after] entry-wise: the
    work done between the two snapshots (both taken on the same domain).
    Counters keep zero entries so lookups stay total; spans and
    histograms drop all-zero entries. *)

val merge : t -> unit
(** Add every counter delta, span statistic and histogram bucket into the
    calling domain, as if the work had happened here.  Histogram merging
    is exact integer bucket addition ({!Histogram.merge}), so the folded
    distributions are bit-identical for every pool size. *)

val is_empty : t -> bool
(** No non-zero counter delta, no span entry, no histogram entry. *)
